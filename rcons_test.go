// Tests for the public facade: everything a downstream user touches must
// work through package rcons alone (plus the harness witnesses).
package rcons_test

import (
	"strings"
	"testing"

	"rcons"
	"rcons/internal/harness"
)

func TestTypeByNameAndZoo(t *testing.T) {
	if len(rcons.Zoo()) < 15 {
		t.Fatalf("zoo has only %d types", len(rcons.Zoo()))
	}
	for _, name := range []string{"register", "cas", "stack", "T_4", "S_2", "peek-queue"} {
		typ, err := rcons.TypeByName(name)
		if err != nil {
			t.Fatalf("TypeByName(%q): %v", name, err)
		}
		if typ.Name() == "" {
			t.Fatalf("type %q has empty name", name)
		}
	}
	if _, err := rcons.TypeByName("no-such-type"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestClassifyHeadlineNumbers(t *testing.T) {
	cases := []struct {
		name        string
		cons, rcons string
	}{
		{"register", "1", "1"},
		{"S_3", "3", "3"},
		{"T_4", "4", "2–3"},
		{"test&set", "2", "1–2"},
	}
	for _, c := range cases {
		typ, err := rcons.TypeByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := rcons.Classify(typ, 6)
		if err != nil {
			t.Fatal(err)
		}
		if cl.ConsBand() != c.cons || cl.RconsBand() != c.rcons {
			t.Errorf("%s: cons %s rcons %s, want %s %s",
				c.name, cl.ConsBand(), cl.RconsBand(), c.cons, c.rcons)
		}
	}
}

func TestReadableFlagThroughFacade(t *testing.T) {
	st, _ := rcons.TypeByName("stack")
	if rcons.Readable(st) {
		t.Error("stack readable through facade")
	}
	reg, _ := rcons.TypeByName("register")
	if !rcons.Readable(reg) {
		t.Error("register non-readable through facade")
	}
}

func TestSearchAndSolveEndToEnd(t *testing.T) {
	typ, err := rcons.TypeByName("S_2")
	if err != nil {
		t.Fatal(err)
	}
	w, err := rcons.SearchRecording(typ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("no 2-recording witness for S_2")
	}
	tc, err := rcons.NewTeamConsensus(typ, *w, "api")
	if err != nil {
		t.Fatal(err)
	}
	inputs := tc.TeamInputs("a", "b")
	for seed := int64(0); seed < 50; seed++ {
		if _, err := rcons.RunRC(tc, inputs, rcons.Config{Seed: seed, CrashProb: 0.3, MaxCrashes: 4}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTournamentThroughFacade(t *testing.T) {
	typ, _ := rcons.TypeByName("cas")
	tr, err := rcons.NewTournament(typ, harness.CASWitness(2, 4), 4, "api")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []rcons.Value{"p", "q", "r", "s"}
	if _, err := rcons.RunRC(tr, inputs, rcons.Config{Seed: 3, CrashProb: 0.2, MaxCrashes: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestSimultaneousThroughFacade(t *testing.T) {
	alg := rcons.NewSimultaneousRC(3, "api")
	inputs := []rcons.Value{"x", "y", "z"}
	cfg := rcons.Config{Seed: 5, Model: rcons.SimultaneousCrashes, CrashProb: 0.1, MaxCrashes: 2}
	if _, err := rcons.RunRC(alg, inputs, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUniversalThroughFacade(t *testing.T) {
	typ, _ := rcons.TypeByName("counter")
	u := rcons.NewUniversal(2, typ, "0", "api")
	m := rcons.NewMemory()
	u.Setup(m)
	bodies := []rcons.Body{
		func(p *rcons.Proc) rcons.Value { return rcons.Value(u.Invoke(p, 0, 0, "inc")) },
		func(p *rcons.Proc) rcons.Value { return rcons.Value(u.Invoke(p, 1, 0, "inc")) },
	}
	out, err := rcons.NewRunner(m, bodies, rcons.Config{Seed: 9, CrashProb: 0.2, MaxCrashes: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Decided[0] || !out.Decided[1] {
		t.Fatal("processes did not finish")
	}
	if err := u.VerifyList(m); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperimentsThroughFacade(t *testing.T) {
	reps, err := rcons.RunExperiments(rcons.ExperimentOptions{Seeds: 5, MaxN: 3, Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) < 10 {
		t.Fatalf("only %d experiment reports", len(reps))
	}
	for _, r := range reps {
		if !r.Pass {
			t.Errorf("experiment %s failed:\n%s", r.ID, r)
		}
		if !strings.HasPrefix(r.ID, "E") {
			t.Errorf("unexpected experiment id %q", r.ID)
		}
	}
}

func TestCASConsensusThroughFacade(t *testing.T) {
	alg := rcons.NewCASConsensus(2, "api")
	if _, err := rcons.RunRC(alg, []rcons.Value{"l", "r"}, rcons.Config{Seed: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLevelsThroughFacade(t *testing.T) {
	typ, _ := rcons.TypeByName("S_3")
	rec, err := rcons.MaxRecording(typ, 5)
	if err != nil || rec.Max != 3 {
		t.Fatalf("MaxRecording(S_3) = %v (%v)", rec, err)
	}
	disc, err := rcons.MaxDiscerning(typ, 5)
	if err != nil || disc.Max != 3 {
		t.Fatalf("MaxDiscerning(S_3) = %v (%v)", disc, err)
	}
	if w, err := rcons.SearchDiscerning(typ, 4); err != nil || w != nil {
		t.Fatalf("SearchDiscerning(S_3, 4) = %v (%v), want nil", w, err)
	}
}
