// Bank: a crash-recoverable account ledger built from the typed
// recoverable data structures (package internal/recoverable, which sits
// on the paper's Figure 7 universal construction).
//
// Three tellers concurrently post deposits to a shared fetch&add balance
// and append an audit record per deposit to a shared queue, while an
// adversary crashes them mid-operation. Exactly-once semantics — the
// heart of the paper's detectability discussion — mean that despite the
// crashes (a) the final balance equals the sum of the intended deposits
// and (b) the audit log holds exactly one record per deposit.
//
// Run: go run ./examples/bank
package main

import (
	"fmt"
	"log"

	"rcons"
	"rcons/internal/recoverable"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const tellers = 3
	deposits := [][]int{
		{25, 100},
		{5, 5, 5},
		{60},
	}

	balance := recoverable.NewCounter(tellers, 1_000_000, "balance")
	audit := recoverable.NewQueue(tellers, 32, "audit")

	m := rcons.NewMemory()
	balance.Setup(m)
	audit.Setup(m)

	bodies := make([]rcons.Body, tellers)
	for i := range bodies {
		i := i
		bodies[i] = func(p *rcons.Proc) rcons.Value {
			bal := balance.Handle(p)
			aud := audit.Handle(p)
			for _, amount := range deposits[i] {
				before := bal.Add(amount)
				aud.Enqueue(fmt.Sprintf("t%d+%d@%d", i, amount, before))
			}
			return "done"
		}
	}

	out, err := rcons.NewRunner(m, bodies, rcons.Config{
		Seed:       7,
		CrashProb:  0.3,
		MaxCrashes: 9,
	}).Run()
	if err != nil {
		return err
	}
	crashes := 0
	for _, c := range out.Crashes {
		crashes += c
	}

	want := 0
	records := 0
	for _, ds := range deposits {
		for _, d := range ds {
			want += d
			records++
		}
	}

	balList, err := balance.Universal().ListOrder(m)
	if err != nil {
		return err
	}
	final := "0"
	if len(balList) > 0 {
		final = string(balList[len(balList)-1].State)
	}
	audList, err := audit.Universal().ListOrder(m)
	if err != nil {
		return err
	}

	fmt.Printf("tellers: %d, crashes injected: %d\n", tellers, crashes)
	fmt.Printf("final balance: %s (expected %d)\n", final, want)
	fmt.Printf("audit records: %d (expected %d)\n", len(audList), records)
	fmt.Println("\naudit log (linearization order):")
	for i, nd := range audList {
		fmt.Printf("  %2d. %s\n", i+1, nd.Op)
	}

	if final != fmt.Sprint(want) {
		return fmt.Errorf("balance mismatch: deposits were lost or double-applied")
	}
	if len(audList) != records {
		return fmt.Errorf("audit mismatch: records were lost or duplicated")
	}
	if err := balance.Universal().VerifyList(m); err != nil {
		return err
	}
	if err := audit.Universal().VerifyList(m); err != nil {
		return err
	}
	fmt.Println("\nexactly-once verified: no deposit lost, none double-applied")
	return nil
}
