// Quickstart: classify a type in the recoverable consensus hierarchy and
// then actually solve recoverable consensus with it, under crash
// injection.
//
// The example uses S_3, the paper's Figure 6 family member with
// rcons(S_3) = cons(S_3) = 3: the classifier derives the exact band, and
// the tournament construction (Figure 2 + Appendix B) lets three
// processes with distinct inputs agree even while the adversary crashes
// and restarts them.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rcons"
	"rcons/internal/harness"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Pick a type and classify it.
	t, err := rcons.TypeByName("S_3")
	if err != nil {
		return err
	}
	c, err := rcons.Classify(t, 6)
	if err != nil {
		return err
	}
	fmt.Printf("type %s: cons = %s, rcons = %s (max %s-recording, max %s-discerning)\n",
		c.TypeName, c.ConsBand(), c.RconsBand(), c.Recording, c.Discerning)

	// 2. Build full 3-process recoverable consensus from the paper's
	//    witness: team consensus (Figure 2) lifted by the tournament
	//    (Appendix B).
	tournament, err := rcons.NewTournament(t, harness.SnPaperWitness(3), 3, "quickstart")
	if err != nil {
		return err
	}

	// 3. Run it under an adversary that crashes processes randomly.
	//    Every crash wipes the process's local state; it restarts its
	//    code from the beginning, with only non-volatile shared memory
	//    surviving. Agreement and validity are checked by RunRC.
	inputs := []rcons.Value{"apple", "banana", "cherry"}
	for seed := int64(0); seed < 5; seed++ {
		out, err := rcons.RunRC(tournament, inputs, rcons.Config{
			Seed:       seed,
			CrashProb:  0.3,
			MaxCrashes: 6,
		})
		if err != nil {
			return err
		}
		crashes := 0
		for _, c := range out.Crashes {
			crashes += c
		}
		fmt.Printf("seed %d: decided %q after %d steps and %d crashes\n",
			seed, out.Decisions[0], out.Steps, crashes)
	}
	return nil
}
