// Hierarchy: compute the recoverable consensus hierarchy table for the
// whole type zoo — the executable version of the paper's classification
// results — and print the transition diagrams of the two separating
// families (Figures 5 and 6).
//
// Run: go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"rcons/internal/harness"
	"rcons/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rep, err := harness.HierarchyTable(harness.Options{Seeds: 1, MaxN: 5, Limit: 6})
	if err != nil {
		return err
	}
	fmt.Println(rep)

	// Figure 5: T_4 forgets everything after enough updates of one kind,
	// which costs it two levels of recoverable consensus power.
	d, err := harness.Diagram(types.NewTn(4), types.TnBottom)
	if err != nil {
		return err
	}
	fmt.Println(d)

	// Figure 6: S_3 also forgets, but only after the *losing* team is
	// fully exhausted — which is exactly recoverable-consensus-safe.
	d, err = harness.Diagram(types.NewSn(3), types.SnInitial)
	if err != nil {
		return err
	}
	fmt.Println(d)
	return nil
}
