// Crashlog: a crash-recoverable replicated operation log built on the
// paper's recoverable universal construction (Section 4, Figure 7).
//
// Three worker processes apply operations to a shared FIFO queue through
// RUniversal while an adversary crashes them aggressively. Every crash
// wipes a worker's local state; on recovery the worker re-runs its code,
// and the construction's persistent announce slots guarantee each
// operation takes effect exactly once and its response is recoverable
// (detectability). The example prints the final linearization (the
// construction's linked list) and checks the recorded client history is
// linearizable.
//
// Run: go run ./examples/crashlog
package main

import (
	"fmt"
	"log"

	"rcons"
	"rcons/internal/history"
	"rcons/internal/spec"
	"rcons/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 3
	u := rcons.NewUniversal(n, types.NewQueue(16), "", "log")
	u.Rec = history.NewRecorder()

	m := rcons.NewMemory()
	u.Setup(m)

	workloads := [][]spec.Op{
		{"enq(0)", "enq(1)", "deq"},
		{"enq(1)", "deq", "deq"},
		{"deq", "enq(0)", "enq(1)"},
	}
	bodies := make([]rcons.Body, n)
	for i := range bodies {
		i := i
		bodies[i] = func(p *rcons.Proc) rcons.Value {
			last := rcons.Value("")
			for k, op := range workloads[i] {
				resp := u.Invoke(p, i, k, op)
				last = rcons.Value(resp)
			}
			return last
		}
	}

	out, err := rcons.NewRunner(m, bodies, rcons.Config{
		Seed:       2026,
		CrashProb:  0.35,
		MaxCrashes: 12,
	}).Run()
	if err != nil {
		return err
	}

	crashes := 0
	for _, c := range out.Crashes {
		crashes += c
	}
	fmt.Printf("execution: %d steps, %d crashes across %d workers\n", out.Steps, crashes, n)

	list, err := u.ListOrder(m)
	if err != nil {
		return err
	}
	fmt.Println("\nlinearization (the construction's linked list):")
	for i, nd := range list {
		fmt.Printf("  %2d. %-8s → %-6s state=%q\n", i+1, nd.Op, nd.Resp, nd.State)
	}
	if err := u.VerifyList(m); err != nil {
		return fmt.Errorf("list replay failed: %w", err)
	}
	fmt.Println("\nlist replay against the sequential queue spec: OK")

	hist := u.Rec.Events()
	if err := history.CheckProgramOrder(hist); err != nil {
		return err
	}
	_, ok, err := history.CheckLinearizable(types.NewQueue(16), "", hist)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("client history is not linearizable:\n%s", history.FormatHistory(hist))
	}
	fmt.Println("client-observed history linearizable: OK")
	return nil
}
