// Adversary: replay the paper's §3.1 counterexample schedules.
//
// Figure 2's line 19 — "if |B| = 1 and R_A ≠ ⊥ then return R_A" — looks
// innocuous, but the paper justifies both halves of it with explicit bad
// schedules. This example runs deliberately broken variants of the
// algorithm (one drops the |B| = 1 test, the other drops the yield
// entirely) under exactly those schedules and shows agreement breaking;
// then it runs the real algorithm on the same schedules and shows it
// deciding safely.
//
// Run: go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"rcons/internal/harness"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := scenarioYieldWithoutSizeCheck(); err != nil {
		return err
	}
	return scenarioNoYield()
}

// scenarioYieldWithoutSizeCheck: with |B| = 2 and the |B| = 1 test
// removed, one team-B process defers to team A while another goes on to
// update O first.
func scenarioYieldWithoutSizeCheck() error {
	fmt.Println("=== bad scenario 1: yielding without the |B| = 1 test (CAS witness, |B| = 2) ===")
	tc, err := rc.NewTeamConsensus(types.NewCAS(), harness.CASWitness(1, 3), "adv1")
	if err != nil {
		return err
	}
	script := []sim.Action{
		sim.Step(1), sim.Step(1), sim.Step(1), // p1 ∈ B: poised to update O
		sim.Step(0),                           // p0 ∈ A: writes R_A
		sim.Step(2), sim.Step(2), sim.Step(2), // p2 ∈ B: defers, decides vA
		sim.Step(1), sim.Step(1), sim.Step(1), // p1: first update! decides vB
	}
	broken := rc.NewTeamConsensusVariant(tc, rc.VariantYieldAlways)
	if _, err := rc.Run(broken, broken.TeamInputs("vA", "vB"), sim.Config{Seed: 1, Script: script}); err != nil {
		fmt.Println("broken variant:", err)
	} else {
		return fmt.Errorf("expected the broken variant to violate agreement")
	}

	// The real algorithm never executes the yield with |B| = 2, so the
	// prefix of the schedule that is still meaningful decides safely.
	safe := []sim.Action{
		sim.Step(1), sim.Step(1),
		sim.Step(0),
		sim.Step(2), sim.Step(2),
	}
	out, err := rc.Run(tc, tc.TeamInputs("vA", "vB"), sim.Config{Seed: 1, Script: safe})
	if err != nil {
		return fmt.Errorf("real algorithm failed: %w", err)
	}
	fmt.Printf("real algorithm: all decided %q — agreement preserved\n\n", out.Decisions[0])
	return nil
}

// scenarioNoYield: with q0 ∈ Q_A and |B| = 1 (the S_2 witness after the
// role swap), the lone team-B process updates O, crashes, finds O back in
// q0, and — without the yield — updates again, flipping the winner.
func scenarioNoYield() error {
	fmt.Println("=== bad scenario 2: no yield after a crash (S_2 witness, |B| = 1, q0 ∈ Q_A) ===")
	tc, err := rc.NewTeamConsensus(types.NewSn(2), harness.SnPaperWitness(2), "adv2")
	if err != nil {
		return err
	}
	script := []sim.Action{
		sim.Step(0), sim.Step(0), // p0 (role B): poised at the update
		sim.Step(1), sim.Step(1), sim.Step(1), sim.Step(1), sim.Step(1), // p1 decides vA
		sim.Step(0), sim.Crash(0), // p0 updates (O returns to q0), crashes
		sim.Step(0), sim.Step(0), sim.Step(0), sim.Step(0), sim.Step(0), // p0 re-runs, updates AGAIN
	}
	broken := rc.NewTeamConsensusVariant(tc, rc.VariantNoYield)
	if _, err := rc.Run(broken, broken.TeamInputs("vA", "vB"), sim.Config{Seed: 1, Script: script}); err != nil {
		fmt.Println("broken variant:", err)
	} else {
		return fmt.Errorf("expected the broken variant to violate agreement")
	}

	// Real algorithm, same adversary (with the extra R_A-read step the
	// real control flow has): the recovered process yields at line 19.
	safe := []sim.Action{
		sim.Step(0), sim.Step(0), sim.Step(0),
		sim.Step(1), sim.Step(1), sim.Step(1), sim.Step(1), sim.Step(1),
		sim.Step(0), sim.Crash(0),
		sim.Step(0), sim.Step(0), sim.Step(0),
	}
	out, err := rc.Run(tc, tc.TeamInputs("vA", "vB"), sim.Config{Seed: 1, Script: safe})
	if err != nil {
		return fmt.Errorf("real algorithm failed: %w", err)
	}
	fmt.Printf("real algorithm: all decided %q — the yield rule saved agreement\n", out.Decisions[0])
	return nil
}
