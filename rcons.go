// Package rcons is a Go reproduction of the PODC 2022 paper "When Is
// Recoverable Consensus Harder Than Consensus?" by Delporte-Gallet,
// Fatourou, Fauconnier and Ruppert (arXiv:2205.14213).
//
// Recoverable consensus (RC) is consensus in an asynchronous shared-
// memory system with non-volatile shared memory, where processes may
// crash — losing all local state, including their program counter — and
// recover, restarting their code from the beginning. The paper
// characterizes which deterministic *readable* object types can solve RC
// among n processes via the n-recording property, relates it to
// Ruppert's n-discerning property (which characterizes standard
// consensus), and proves cons(T) − 2 ≤ rcons(T) ≤ cons(T).
//
// This package is the public facade over the implementation:
//
//   - sequential specifications and the type zoo, including the paper's
//     separating families T_n (Figure 5) and S_n (Figure 6)
//     (internal/spec, internal/types);
//   - exact decision procedures for n-recording (Definition 4) and
//     n-discerning (Definition 2), with exhaustive witness search and
//     cons/rcons band derivation (internal/checker);
//   - a deterministic crash-recovery simulator with non-volatile shared
//     memory and independent or simultaneous failures (internal/sim);
//   - the paper's algorithms: Figure 2 recoverable team consensus, the
//     Appendix B tournament, the Figure 4 simultaneous-crash transform
//     (internal/rc), and the Figure 7 recoverable universal construction
//     (internal/universal) with linearizability checking
//     (internal/history);
//   - an experiment harness regenerating every figure-level artifact
//     (internal/harness), exposed here via RunExperiments;
//   - a sharded, memoizing, worker-pool-parallel classification engine
//     (internal/engine) exposed here via NewEngine, and served over HTTP
//     by cmd/rcserve.
//
// See README.md for a tour of the commands, packages and experiments.
package rcons

import (
	"context"

	"rcons/internal/checker"
	"rcons/internal/engine"
	"rcons/internal/harness"
	"rcons/internal/history"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
	"rcons/internal/universal"
)

// Core specification types.
type (
	// Type is a deterministic sequential object specification.
	Type = spec.Type
	// State is a canonical object state encoding.
	State = spec.State
	// Op is an update operation (name plus arguments).
	Op = spec.Op
	// Response is an operation response.
	Response = spec.Response
	// Object is an atomic shared object instance.
	Object = spec.Object
)

// Checker types.
type (
	// Witness is a candidate (q0, teams, ops) assignment for the
	// n-recording / n-discerning properties.
	Witness = checker.Witness
	// Classification reports a type's derived cons/rcons bands.
	Classification = checker.Classification
	// MaxLevel is the maximal level at which a property holds.
	MaxLevel = checker.MaxLevel
	// SearchOptions tunes witness searches.
	SearchOptions = checker.SearchOptions
)

// Engine types: the concurrent, memoizing classification engine.
type (
	// Engine runs sharded parallel witness searches with result caching.
	Engine = engine.Engine
	// EngineOptions sets the worker-pool width and cache bound.
	EngineOptions = engine.Options
	// EngineCacheStats reports engine cache hits/misses/evictions.
	EngineCacheStats = engine.CacheStats
	// Property selects n-recording or n-discerning for engine searches.
	Property = engine.Property
)

// Engine property selectors (re-exported constants).
const (
	// Recording is the n-recording property (Definition 4).
	Recording = engine.Recording
	// Discerning is the n-discerning property (Definition 2).
	Discerning = engine.Discerning
)

// Simulator types.
type (
	// Memory is the non-volatile shared heap.
	Memory = sim.Memory
	// Proc is a process handle inside a simulated execution.
	Proc = sim.Proc
	// Body is one process's code.
	Body = sim.Body
	// Config parameterizes an execution (seed, crash model, script).
	Config = sim.Config
	// Outcome summarizes a finished execution.
	Outcome = sim.Outcome
	// Value is a register value / input / decision.
	Value = sim.Value
)

// Algorithm types.
type (
	// Algorithm is a recoverable consensus protocol.
	Algorithm = rc.Algorithm
	// TeamConsensus is the Figure 2 algorithm.
	TeamConsensus = rc.TeamConsensus
	// Tournament is the Appendix B reduction to full RC.
	Tournament = rc.Tournament
	// SimultaneousRC is the Figure 4 transform.
	SimultaneousRC = rc.SimultaneousRC
	// Universal is the Figure 7 recoverable universal construction.
	Universal = universal.Universal
	// Recorder collects operation histories for linearizability checks.
	Recorder = history.Recorder
)

// Failure models (re-exported constants).
const (
	// IndependentCrashes is the paper's main model: processes crash and
	// recover individually.
	IndependentCrashes = sim.Independent
	// SimultaneousCrashes is the system-wide failure model of Section 2.
	SimultaneousCrashes = sim.Simultaneous
)

// TypeByName resolves a zoo type by name (e.g. "cas", "stack", "T_5",
// "S_3"); see internal/types.ByName for the accepted syntax.
func TypeByName(name string) (Type, error) { return types.ByName(name) }

// Zoo returns representative instances of every implemented type.
func Zoo() []Type { return types.Zoo() }

// Readable reports whether t is readable in the paper's sense (required
// by Theorems 3 and 8).
func Readable(t Type) bool { return types.Readable(t) }

// Classify scans t's n-recording and n-discerning levels up to limit and
// derives its cons/rcons bands per the paper's theorems.
func Classify(t Type, limit int) (Classification, error) {
	return checker.Classify(t, limit, nil)
}

// NewEngine builds a concurrent classification engine; its Classify,
// ClassifyAll, Scan and Search methods produce results identical to the
// sequential functions above, sharded over a worker pool and memoized
// behind canonical type fingerprints.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// ClassifyParallel classifies t on a throwaway engine with one worker
// per CPU — the one-call parallel counterpart of Classify. Reuse a
// NewEngine instance instead when classifying repeatedly, so the cache
// accumulates.
func ClassifyParallel(ctx context.Context, t Type, limit int) (Classification, error) {
	return engine.New(engine.Options{}).Classify(ctx, t, limit)
}

// MaxRecording returns the largest n ≤ limit at which t is n-recording.
func MaxRecording(t Type, limit int) (MaxLevel, error) {
	return checker.MaxRecording(t, limit, nil)
}

// MaxDiscerning returns the largest n ≤ limit at which t is n-discerning.
func MaxDiscerning(t Type, limit int) (MaxLevel, error) {
	return checker.MaxDiscerning(t, limit, nil)
}

// SearchRecording looks for an n-recording witness for t (nil if none
// exists over the candidate sets).
func SearchRecording(t Type, n int) (*Witness, error) {
	return checker.SearchRecording(t, n, nil)
}

// SearchDiscerning looks for an n-discerning witness for t.
func SearchDiscerning(t Type, n int) (*Witness, error) {
	return checker.SearchDiscerning(t, n, nil)
}

// NewTeamConsensus builds the Figure 2 recoverable team consensus from a
// verified n-recording witness for a readable type.
func NewTeamConsensus(t Type, w Witness, namespace string) (*TeamConsensus, error) {
	return rc.NewTeamConsensus(t, w, namespace)
}

// NewTournament builds full k-process recoverable consensus from an
// n-recording witness (k ≤ n) via the Appendix B tournament.
func NewTournament(t Type, w Witness, k int, namespace string) (*Tournament, error) {
	return rc.NewTournament(t, w, k, namespace)
}

// NewSimultaneousRC builds the Figure 4 algorithm for the simultaneous
// crash model.
func NewSimultaneousRC(n int, namespace string) *SimultaneousRC {
	return rc.NewSimultaneousRC(n, namespace)
}

// NewCASConsensus builds the compare&swap RC baseline.
func NewCASConsensus(n int, namespace string) Algorithm {
	return rc.NewCASConsensus(n, namespace)
}

// RunRC executes an RC algorithm in a fresh memory under cfg and
// validates agreement and validity; see rc.Run.
func RunRC(alg Algorithm, inputs []Value, cfg Config) (*Outcome, error) {
	return rc.Run(alg, inputs, cfg)
}

// NewUniversal builds the Figure 7 recoverable universal construction
// implementing an object of type t (initial state q0) for n processes.
func NewUniversal(n int, t Type, q0 State, namespace string) *Universal {
	return universal.New(n, t, q0, namespace)
}

// NewMemory returns an empty non-volatile shared heap.
func NewMemory() *Memory { return sim.NewMemory() }

// NewRunner prepares a simulated execution; see sim.NewRunner.
func NewRunner(m *Memory, bodies []Body, cfg Config) *sim.Runner {
	return sim.NewRunner(m, bodies, cfg)
}

// ExperimentOptions tunes the paper-reproduction experiments.
type ExperimentOptions = harness.Options

// ExperimentReport is the outcome of one reproduction experiment.
type ExperimentReport = harness.Report

// RunExperiments regenerates every figure-level artifact of the paper
// and returns the reports (see harness.All for the index).
func RunExperiments(opts ExperimentOptions) ([]*ExperimentReport, error) {
	return harness.RunAll(opts)
}
