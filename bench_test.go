// Benchmarks regenerating every figure-level artifact of the paper (one
// benchmark per experiment in harness.All), plus micro-benchmarks and
// ablations for the core machinery. The paper reports no wall-clock
// numbers — it is a solvability paper — so the benches measure this
// reproduction's own cost of (a) mechanically re-verifying each claim
// and (b) executing each algorithm under crash injection; the boolean
// outcomes (who can solve what) are asserted to match the paper on every
// iteration.
package rcons_test

import (
	"context"
	"testing"

	"rcons"
	"rcons/internal/bench"
	"rcons/internal/checker"
	"rcons/internal/engine"
	"rcons/internal/harness"
	"rcons/internal/history"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
	"rcons/internal/universal"
)

// benchOpts keeps per-iteration work bounded.
func benchOpts() harness.Options { return harness.Options{Seeds: 10, MaxN: 4, Limit: 5} }

func runExperiment(b *testing.B, run func(harness.Options) (*harness.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Pass {
			b.Fatalf("experiment failed:\n%s", rep)
		}
	}
}

// BenchmarkFig1Implications regenerates Figure 1 (the implication diagram
// between n-recording, n-discerning and solvability) over the type zoo.
func BenchmarkFig1Implications(b *testing.B) { runExperiment(b, harness.Fig1Implications) }

// BenchmarkFig2TeamConsensus regenerates Figure 2: recoverable team
// consensus executions under randomized independent crashes for every
// readable type with a recording witness.
func BenchmarkFig2TeamConsensus(b *testing.B) { runExperiment(b, harness.Fig2TeamConsensus) }

// BenchmarkFig4Simultaneous regenerates Figure 4 / Theorem 1: RC from
// consensus under simultaneous crashes.
func BenchmarkFig4Simultaneous(b *testing.B) { runExperiment(b, harness.Fig4Simultaneous) }

// BenchmarkFig5Tn regenerates Figure 5 / Proposition 19: T_n is
// n-discerning but not (n-1)-recording.
func BenchmarkFig5Tn(b *testing.B) { runExperiment(b, harness.Fig5Tn) }

// BenchmarkFig6Sn regenerates Figure 6 / Proposition 21:
// rcons(S_n) = cons(S_n) = n.
func BenchmarkFig6Sn(b *testing.B) { runExperiment(b, harness.Fig6Sn) }

// BenchmarkFig7Universal regenerates Figure 7: the recoverable universal
// construction under crash injection with linearizability checking.
func BenchmarkFig7Universal(b *testing.B) { runExperiment(b, harness.Fig7Universal) }

// BenchmarkFig8Stack regenerates Figure 8 / Appendix H: the mechanical
// ingredients of rcons(stack) = 1 plus Herlihy's stack consensus.
func BenchmarkFig8Stack(b *testing.B) { runExperiment(b, harness.Fig8Stack) }

// BenchmarkHierarchyTable regenerates the implicit hierarchy table:
// cons/rcons bands for the whole zoo.
func BenchmarkHierarchyTable(b *testing.B) { runExperiment(b, harness.HierarchyTable) }

// BenchmarkThm22Sets regenerates the Theorem 22 table: RC power of sets
// of readable types.
func BenchmarkThm22Sets(b *testing.B) { runExperiment(b, harness.Thm22Sets) }

// BenchmarkModelCheck runs E10: bounded exhaustive model checking of
// Figure 2 (every interleaving + crash placement in bounds) plus the
// rediscovery of both §3.1 counterexamples on the broken variants.
func BenchmarkModelCheck(b *testing.B) { runExperiment(b, harness.ModelCheck) }

// BenchmarkMCFingerprint measures ONE configuration-fingerprint
// computation of the systematic model checker (internal/mc) — the
// dominant per-node cost of exhaustive verification — on a fixed
// crash-containing prefix of the Figure 2 target. The sub-benchmarks
// compare the incremental pipeline (interned values, maintained memory
// digest, rolling per-process event hashes; the default) against the
// legacy pipeline (textual Memory.Snapshot + full trace re-walk +
// SHA-256; kept behind mc.Options.LegacyFingerprint for parity
// testing). The two pipelines are verdict-equivalent — see
// FuzzFingerprintParity and TestVerdictParityAllTargets in internal/mc.
func BenchmarkMCFingerprint(b *testing.B) {
	probe, err := bench.StandardFingerprintProbe()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = probe.Incremental()
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = probe.Legacy()
		}
	})
}

// BenchmarkMotivation runs E11: test&set consensus vs CAS consensus with
// and without crash recovery — the paper's opening gap, found
// exhaustively.
func BenchmarkMotivation(b *testing.B) { runExperiment(b, harness.Motivation) }

// BenchmarkScaling runs E12: step-cost growth of the constructions with
// process count, crash-free vs crash-injected.
func BenchmarkScaling(b *testing.B) { runExperiment(b, harness.Scaling) }

// ---- Micro-benchmarks for the core machinery. ----

// BenchmarkQSet measures one Q_X computation (the checker's inner loop)
// on S_5's paper witness.
func BenchmarkQSet(b *testing.B) {
	t := types.NewSn(5)
	w := harness.SnPaperWitness(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := checker.QSet(t, w, checker.TeamA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyRecording measures a full Definition 4 verification.
func BenchmarkVerifyRecording(b *testing.B) {
	t := types.NewSn(5)
	w := harness.SnPaperWitness(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := checker.VerifyRecording(t, w)
		if err != nil || !res.OK {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkVerifyDiscerning measures a full Definition 2 verification
// (2n R-set computations) on T_6's paper witness.
func BenchmarkVerifyDiscerning(b *testing.B) {
	t := types.NewTn(6)
	w := harness.TnPaperWitness(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := checker.VerifyDiscerning(t, w)
		if err != nil || !res.OK {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkSearchRecordingNegative measures the exhaustive "not
// (n-1)-recording" search for T_5 — the expensive negative certificate
// behind Proposition 19.
func BenchmarkSearchRecordingNegative(b *testing.B) {
	t := types.NewTn(5)
	for i := 0; i < b.N; i++ {
		w, err := checker.SearchRecording(t, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		if w != nil {
			b.Fatalf("T_5 unexpectedly 4-recording: %s", w)
		}
	}
}

// BenchmarkClassifyZoo measures classifying the entire zoo at limit 5.
func BenchmarkClassifyZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, t := range types.Zoo() {
			if _, err := checker.Classify(t, 5, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- Parallel classification engine (internal/engine) benchmarks. ----

// classifyBenchCases are the separating family members whose exhaustive
// searches dominate classification cost — the paper's hard instances.
func classifyBenchCases() []spec.Type {
	return []spec.Type{types.NewTn(5), types.NewSn(4)}
}

// BenchmarkClassifySequential is the single-core baseline: sequential
// checker.Classify of T_5 and S_4 at limit 5.
func BenchmarkClassifySequential(b *testing.B) {
	for _, t := range classifyBenchCases() {
		b.Run(t.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := checker.Classify(t, 5, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClassifyParallel is the sharded worker-pool counterpart
// (compare against BenchmarkClassifySequential; the ratio is the
// engine's speedup on this machine). A fresh engine per iteration keeps
// the cache cold, so this measures the parallel search itself.
func BenchmarkClassifyParallel(b *testing.B) {
	for _, t := range classifyBenchCases() {
		b.Run(t.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.New(engine.Options{})
				if _, err := eng.Classify(context.Background(), t, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClassifyParallelCached shares one engine across iterations —
// the rcserve steady state, where repeated queries hit the memoization
// cache instead of re-searching.
func BenchmarkClassifyParallelCached(b *testing.B) {
	eng := engine.New(engine.Options{})
	for _, t := range classifyBenchCases() {
		b.Run(t.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Classify(context.Background(), t, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClassifyZooParallel is the batch counterpart of
// BenchmarkClassifyZoo: the whole zoo at limit 5 through engine.Scan,
// cache cold each iteration.
func BenchmarkClassifyZooParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := engine.New(engine.Options{})
		if _, err := eng.Scan(context.Background(), 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTeamConsensusDecide measures one crash-free Figure 2
// execution (4 processes over compare&swap).
func BenchmarkTeamConsensusDecide(b *testing.B) {
	tc, err := rc.NewTeamConsensus(types.NewCAS(), harness.CASWitness(2, 4), "b")
	if err != nil {
		b.Fatal(err)
	}
	inputs := tc.TeamInputs("a", "z")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rc.Run(tc, inputs, sim.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTeamConsensusDecideWithCrashes is the crash-injected variant
// (ablation: the cost of recovery re-runs).
func BenchmarkTeamConsensusDecideWithCrashes(b *testing.B) {
	tc, err := rc.NewTeamConsensus(types.NewCAS(), harness.CASWitness(2, 4), "b")
	if err != nil {
		b.Fatal(err)
	}
	inputs := tc.TeamInputs("a", "z")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{Seed: int64(i), CrashProb: 0.3, MaxCrashes: 8}
		if _, err := rc.Run(tc, inputs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTournament measures full 4-process RC over S_4 (tournament of
// team consensus instances) — the paper's positive result end to end.
func BenchmarkTournament(b *testing.B) {
	tr, err := rc.NewTournament(types.NewSn(4), harness.SnPaperWitness(4), 4, "b")
	if err != nil {
		b.Fatal(err)
	}
	inputs := []sim.Value{"w", "x", "y", "z"}
	for i := 0; i < b.N; i++ {
		if _, err := rc.Run(tr, inputs, sim.Config{Seed: int64(i), CrashProb: 0.2, MaxCrashes: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimultaneousRC measures one Figure 4 execution with crash-all
// events (3 processes).
func BenchmarkSimultaneousRC(b *testing.B) {
	alg := rc.NewSimultaneousRC(3, "b")
	inputs := []sim.Value{"x", "y", "z"}
	for i := 0; i < b.N; i++ {
		cfg := sim.Config{Seed: int64(i), Model: sim.Simultaneous, CrashProb: 0.1, MaxCrashes: 3}
		if _, err := rc.Run(alg, inputs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUniversalCAS measures the universal construction's throughput
// (appends/sec) over the default CAS-based RC instances.
func BenchmarkUniversalCAS(b *testing.B) {
	benchUniversal(b, nil)
}

// BenchmarkUniversalTournamentRC is the ablation partner: the same
// workload with per-node RC instances built from S_2 via the full
// Figure 2 + tournament stack instead of raw compare&swap.
func BenchmarkUniversalTournamentRC(b *testing.B) {
	inst, err := rc.NewTournamentInstance(types.NewSn(2), harness.SnPaperWitness(2), 2)
	if err != nil {
		b.Fatal(err)
	}
	benchUniversal(b, inst)
}

func benchUniversal(b *testing.B, inst rc.Instance) {
	b.Helper()
	const opsEach = 4
	for i := 0; i < b.N; i++ {
		u := universal.New(2, types.NewFetchAdd(1_000_000), "0", "u")
		if inst != nil {
			u.RC = inst
		}
		m := sim.NewMemory()
		u.Setup(m)
		bodies := make([]sim.Body, 2)
		for pi := 0; pi < 2; pi++ {
			pi := pi
			bodies[pi] = func(p *sim.Proc) sim.Value {
				last := sim.Value("")
				for k := 0; k < opsEach; k++ {
					last = sim.Value(u.Invoke(p, pi, k, "add(1)"))
				}
				return last
			}
		}
		cfg := sim.Config{Seed: int64(i), CrashProb: 0.1, MaxCrashes: 4}
		if _, err := sim.NewRunner(m, bodies, cfg).Run(); err != nil {
			b.Fatal(err)
		}
		if err := u.VerifyList(m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*opsEach), "appends/op")
}

// BenchmarkLinearizabilityCheck measures the history checker on a
// 12-operation crash-recovered queue history.
func BenchmarkLinearizabilityCheck(b *testing.B) {
	u := universal.New(3, types.NewQueue(10), "", "u")
	u.Rec = history.NewRecorder()
	m := sim.NewMemory()
	u.Setup(m)
	ops := [][]spec.Op{
		{"enq(0)", "deq", "enq(0)", "deq"},
		{"enq(1)", "deq", "enq(1)", "deq"},
		{"deq", "enq(1)", "deq", "enq(0)"},
	}
	bodies := make([]sim.Body, 3)
	for pi := range bodies {
		pi := pi
		bodies[pi] = func(p *sim.Proc) sim.Value {
			for k, op := range ops[pi] {
				u.Invoke(p, pi, k, op)
			}
			return ""
		}
	}
	if _, err := sim.NewRunner(m, bodies, sim.Config{Seed: 7, CrashProb: 0.2, MaxCrashes: 6}).Run(); err != nil {
		b.Fatal(err)
	}
	hist := u.Rec.Events()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := history.CheckLinearizable(types.NewQueue(10), "", hist)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkSimulatorStep measures raw simulator step throughput.
func BenchmarkSimulatorStep(b *testing.B) {
	const stepsPerRun = 1000
	for i := 0; i < b.N; i++ {
		m := sim.NewMemory()
		m.AddRegister("R", sim.None)
		body := func(p *sim.Proc) sim.Value {
			for s := 0; s < stepsPerRun; s++ {
				p.Read("R")
			}
			return "done"
		}
		if _, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 1}).Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stepsPerRun, "steps/op")
}

// BenchmarkPublicAPI exercises the facade end to end: classify a family
// member and solve RC with it at its level.
func BenchmarkPublicAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := rcons.TypeByName("S_3")
		if err != nil {
			b.Fatal(err)
		}
		c, err := rcons.Classify(t, 5)
		if err != nil {
			b.Fatal(err)
		}
		if c.RconsLo != 3 || c.RconsHi != 3 {
			b.Fatalf("rcons(S_3) band = [%d,%d], want [3,3]", c.RconsLo, c.RconsHi)
		}
		tr, err := rcons.NewTournament(t, harness.SnPaperWitness(3), 3, "b")
		if err != nil {
			b.Fatal(err)
		}
		inputs := []rcons.Value{"x", "y", "z"}
		cfg := rcons.Config{Seed: int64(i), CrashProb: 0.2, MaxCrashes: 6}
		if _, err := rcons.RunRC(tr, inputs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
