// Package recoverable provides typed, crash-recoverable shared data
// structures — queue, stack, counter and last-writer register — built on
// the paper's recoverable universal construction (Section 4, Figure 7).
// It is the "downstream user" payoff of the paper's universality result:
// any algorithm written against these objects runs correctly in the
// independent-crash model, with every operation taking effect exactly
// once and its response recoverable after a crash (detectability).
//
// Usage pattern: construct the object and call Setup once, then inside
// each process body obtain a Handle and call the typed operations. A
// handle counts the process's operations; because bodies restart from
// the beginning after a crash, a fresh handle re-walks the same
// operation indices and the construction's persistent announce slots
// return the already-applied operations' responses instead of applying
// them twice. A body must perform the same operation sequence on every
// re-run up to its crash point — which it does automatically if its
// control flow depends only on shared state and handle responses.
package recoverable

import (
	"fmt"
	"strconv"

	"rcons/internal/history"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
	"rcons/internal/universal"
)

// object wraps a universal construction with per-handle op counting.
type object struct {
	u *universal.Universal
}

func newObject(n int, t spec.Type, q0 spec.State, ns string) *object {
	u := universal.New(n, t, q0, ns)
	u.Rec = history.NewRecorder()
	return &object{u: u}
}

// handle tracks one process's position in its operation sequence.
type handle struct {
	obj  *object
	p    *sim.Proc
	next int
}

func (h *handle) invoke(op spec.Op) spec.Response {
	k := h.next
	h.next++
	return h.obj.u.Invoke(h.p, h.p.ID(), k, op)
}

// Queue is a crash-recoverable FIFO queue shared by n processes.
type Queue struct {
	o   *object
	cap int
}

// NewQueue returns a recoverable queue of the given capacity for n
// processes, namespaced by ns.
func NewQueue(n, capacity int, ns string) *Queue {
	return &Queue{o: newObject(n, types.NewQueue(capacity), "", ns), cap: capacity}
}

// Setup installs the queue's cells into m (call once, before running).
func (q *Queue) Setup(m *sim.Memory) { q.o.u.Setup(m) }

// Universal exposes the underlying construction for verification.
func (q *Queue) Universal() *universal.Universal { return q.o.u }

// QueueHandle is a process's session with the queue.
type QueueHandle struct{ h handle }

// Handle binds the queue to the calling process; call inside the body.
func (q *Queue) Handle(p *sim.Proc) *QueueHandle {
	return &QueueHandle{h: handle{obj: q.o, p: p}}
}

// Enqueue appends v; it reports false when the queue was full.
func (h *QueueHandle) Enqueue(v string) bool {
	return h.h.invoke(spec.FormatOp("enq", v)) != types.RespFull
}

// Dequeue removes and returns the front item; ok is false when empty.
func (h *QueueHandle) Dequeue() (v string, ok bool) {
	r := h.h.invoke("deq")
	if r == types.RespEmpty {
		return "", false
	}
	return string(r), true
}

// Stack is a crash-recoverable LIFO stack shared by n processes.
type Stack struct {
	o *object
}

// NewStack returns a recoverable stack of the given capacity.
func NewStack(n, capacity int, ns string) *Stack {
	return &Stack{o: newObject(n, types.NewStack(capacity), "", ns)}
}

// Setup installs the stack's cells into m.
func (s *Stack) Setup(m *sim.Memory) { s.o.u.Setup(m) }

// Universal exposes the underlying construction for verification.
func (s *Stack) Universal() *universal.Universal { return s.o.u }

// StackHandle is a process's session with the stack.
type StackHandle struct{ h handle }

// Handle binds the stack to the calling process.
func (s *Stack) Handle(p *sim.Proc) *StackHandle {
	return &StackHandle{h: handle{obj: s.o, p: p}}
}

// Push appends v; it reports false when the stack was full.
func (h *StackHandle) Push(v string) bool {
	return h.h.invoke(spec.FormatOp("push", v)) != types.RespFull
}

// Pop removes and returns the top item; ok is false when empty.
func (h *StackHandle) Pop() (v string, ok bool) {
	r := h.h.invoke("pop")
	if r == types.RespEmpty {
		return "", false
	}
	return string(r), true
}

// Counter is a crash-recoverable fetch&add counter.
type Counter struct {
	o   *object
	mod int
}

// NewCounter returns a recoverable counter modulo mod.
func NewCounter(n, mod int, ns string) *Counter {
	return &Counter{o: newObject(n, types.NewFetchAdd(mod), "0", ns), mod: mod}
}

// Setup installs the counter's cells into m.
func (c *Counter) Setup(m *sim.Memory) { c.o.u.Setup(m) }

// Universal exposes the underlying construction for verification.
func (c *Counter) Universal() *universal.Universal { return c.o.u }

// CounterHandle is a process's session with the counter.
type CounterHandle struct{ h handle }

// Handle binds the counter to the calling process.
func (c *Counter) Handle(p *sim.Proc) *CounterHandle {
	return &CounterHandle{h: handle{obj: c.o, p: p}}
}

// Add atomically adds k and returns the previous value.
func (h *CounterHandle) Add(k int) int {
	r := h.h.invoke(spec.FormatOp("add", strconv.Itoa(k)))
	v, err := strconv.Atoi(string(r))
	if err != nil {
		panic(fmt.Sprintf("recoverable: corrupt counter response %q", r))
	}
	return v
}

// Increment is Add(1).
func (h *CounterHandle) Increment() int { return h.Add(1) }

// Register is a crash-recoverable read/write register. Both writes and
// reads are first-class operations of the underlying readableRegister
// type, so Get responses are linearized through the construction's list
// like any other operation.
type Register struct {
	o *object
}

// readableRegister extends the plain register with an explicit "get"
// update operation that leaves the state unchanged and responds with the
// current value — making reads first-class list entries in the
// universal construction (and hence trivially linearizable).
type readableRegister struct{}

var _ spec.Type = readableRegister{}

func (readableRegister) Name() string { return "rw-register" }

func (readableRegister) InitialStates() []spec.State { return []spec.State{spec.State(types.Bottom)} }

func (readableRegister) Ops() []spec.Op { return []spec.Op{"get", "write(0)", "write(1)"} }

func (readableRegister) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	switch {
	case name == "get" && len(args) == 0:
		return s, spec.Response(s), nil
	case name == "write" && len(args) == 1:
		return spec.State(args[0]), spec.Ack, nil
	default:
		return "", "", fmt.Errorf("%w: rw-register does not support %q", spec.ErrBadOp, op)
	}
}

// NewRegister returns a recoverable read/write register.
func NewRegister(n int, ns string) *Register {
	return &Register{o: newObject(n, readableRegister{}, spec.State(types.Bottom), ns)}
}

// Setup installs the register's cells into m.
func (r *Register) Setup(m *sim.Memory) { r.o.u.Setup(m) }

// Universal exposes the underlying construction for verification.
func (r *Register) Universal() *universal.Universal { return r.o.u }

// RegisterHandle is a process's session with the register.
type RegisterHandle struct{ h handle }

// Handle binds the register to the calling process.
func (r *Register) Handle(p *sim.Proc) *RegisterHandle {
	return &RegisterHandle{h: handle{obj: r.o, p: p}}
}

// Set writes v.
func (h *RegisterHandle) Set(v string) {
	h.h.invoke(spec.FormatOp("write", v))
}

// Get returns the current value (types.Bottom when unwritten).
func (h *RegisterHandle) Get() string {
	return string(h.h.invoke("get"))
}
