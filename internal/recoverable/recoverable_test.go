package recoverable

import (
	"fmt"
	"strconv"
	"testing"

	"rcons/internal/history"
	"rcons/internal/sim"
	"rcons/internal/types"
)

func TestCounterTotalViaList(t *testing.T) {
	const n, incsEach = 3, 3
	for seed := int64(0); seed < 60; seed++ {
		c := NewCounter(n, 1_000_000, "cnt")
		m := sim.NewMemory()
		c.Setup(m)
		bodies := make([]sim.Body, n)
		for i := range bodies {
			bodies[i] = func(p *sim.Proc) sim.Value {
				h := c.Handle(p)
				for k := 0; k < incsEach; k++ {
					h.Increment()
				}
				return "done"
			}
		}
		if _, err := sim.NewRunner(m, bodies, sim.Config{Seed: seed, CrashProb: 0.3, MaxCrashes: 9}).Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Universal().VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		list, err := c.Universal().ListOrder(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(list) != n*incsEach {
			t.Fatalf("seed %d: %d increments applied, want %d", seed, len(list), n*incsEach)
		}
		final := list[len(list)-1].State
		if string(final) != strconv.Itoa(n*incsEach) {
			t.Fatalf("seed %d: final counter %q, want %d", seed, final, n*incsEach)
		}
	}
}

func TestCounterResponsesAreDistinctPositions(t *testing.T) {
	// fetch&add responses are unique positions; across all processes the
	// multiset of responses must be exactly {0, 1, …, total-1}.
	const n, incsEach = 2, 3
	c := NewCounter(n, 1_000_000, "cnt")
	m := sim.NewMemory()
	c.Setup(m)
	var got []int
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = func(p *sim.Proc) sim.Value {
			h := c.Handle(p)
			var mine []int
			for k := 0; k < incsEach; k++ {
				mine = append(mine, h.Increment())
			}
			got = append(got, mine...) // post-crash duplicates excluded: body returns only on success
			return "done"
		}
	}
	// No crashes here so the in-memory `got` slice is exact.
	if _, err := sim.NewRunner(m, bodies, sim.Config{Seed: 4}).Run(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate fetch&add response %d in %v", v, got)
		}
		seen[v] = true
	}
	for want := 0; want < n*incsEach; want++ {
		if !seen[want] {
			t.Fatalf("missing fetch&add response %d in %v", want, got)
		}
	}
}

func TestQueueFIFOAcrossCrashes(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		q := NewQueue(2, 16, "q")
		m := sim.NewMemory()
		q.Setup(m)
		bodies := []sim.Body{
			func(p *sim.Proc) sim.Value {
				h := q.Handle(p)
				h.Enqueue("a")
				h.Enqueue("b")
				return "done"
			},
			func(p *sim.Proc) sim.Value {
				h := q.Handle(p)
				v1, ok1 := h.Dequeue()
				v2, ok2 := h.Dequeue()
				return fmt.Sprintf("%s/%v %s/%v", v1, ok1, v2, ok2)
			},
		}
		if _, err := sim.NewRunner(m, bodies, sim.Config{Seed: seed, CrashProb: 0.25, MaxCrashes: 6}).Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := q.Universal().VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Client history must linearize against the queue spec.
		hist := q.Universal().Rec.Events()
		_, ok, err := history.CheckLinearizable(types.NewQueue(16), "", hist)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: non-linearizable:\n%s", seed, history.FormatHistory(hist))
		}
	}
}

func TestStackLIFO(t *testing.T) {
	s := NewStack(1, 8, "s")
	m := sim.NewMemory()
	s.Setup(m)
	body := func(p *sim.Proc) sim.Value {
		h := s.Handle(p)
		h.Push("1")
		h.Push("2")
		v1, _ := h.Pop()
		v2, _ := h.Pop()
		_, ok := h.Pop()
		return fmt.Sprintf("%s%s empty=%v", v1, v2, !ok)
	}
	out, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != "21 empty=true" {
		t.Fatalf("decision = %q", out.Decisions[0])
	}
}

func TestStackCapacity(t *testing.T) {
	s := NewStack(1, 1, "s")
	m := sim.NewMemory()
	s.Setup(m)
	body := func(p *sim.Proc) sim.Value {
		h := s.Handle(p)
		ok1 := h.Push("1")
		ok2 := h.Push("2") // over capacity
		return fmt.Sprintf("%v %v", ok1, ok2)
	}
	out, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != "true false" {
		t.Fatalf("decision = %q", out.Decisions[0])
	}
}

func TestRegisterLastWriterWins(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := NewRegister(2, "r")
		m := sim.NewMemory()
		r.Setup(m)
		bodies := []sim.Body{
			func(p *sim.Proc) sim.Value {
				h := r.Handle(p)
				h.Set("zero")
				return h.Get()
			},
			func(p *sim.Proc) sim.Value {
				h := r.Handle(p)
				h.Set("one")
				return h.Get()
			},
		}
		if _, err := sim.NewRunner(m, bodies, sim.Config{Seed: seed, CrashProb: 0.2, MaxCrashes: 4}).Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Universal().VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Final state must be the value of the last write in the list.
		list, err := r.Universal().ListOrder(m)
		if err != nil {
			t.Fatal(err)
		}
		lastWrite := ""
		for _, nd := range list {
			if nd.Op != "get" {
				lastWrite = string(nd.State)
			}
		}
		if final := string(list[len(list)-1].State); final != lastWrite {
			t.Fatalf("seed %d: final state %q, last write %q", seed, final, lastWrite)
		}
	}
}

func TestRegisterGetSeesPriorSet(t *testing.T) {
	r := NewRegister(1, "r")
	m := sim.NewMemory()
	r.Setup(m)
	body := func(p *sim.Proc) sim.Value {
		h := r.Handle(p)
		before := h.Get()
		h.Set("v")
		after := h.Get()
		return before + "|" + after
	}
	out, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != types.Bottom+"|v" {
		t.Fatalf("decision = %q", out.Decisions[0])
	}
}

func TestHandleReplayAfterScriptedCrash(t *testing.T) {
	// Crash a process between its two increments; the re-run's fresh
	// handle must replay increment #0 from the persisted response rather
	// than applying it again.
	c := NewCounter(1, 100, "cnt")
	m := sim.NewMemory()
	c.Setup(m)
	var responses [][]int
	body := func(p *sim.Proc) sim.Value {
		h := c.Handle(p)
		a := h.Increment()
		b := h.Increment()
		responses = append(responses, []int{a, b})
		return fmt.Sprintf("%d,%d", a, b)
	}
	script := []sim.Action{
		sim.Step(0), sim.Step(0), sim.Step(0), sim.Step(0), sim.Step(0), sim.Crash(0),
	}
	out, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 1, Script: script}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != "0,1" {
		t.Fatalf("decision = %q, want 0,1 (idempotent replay)", out.Decisions[0])
	}
	list, err := c.Universal().ListOrder(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("%d increments applied, want 2", len(list))
	}
}
