package serve

// Telemetry wiring: every rcserve instance owns one obs.Registry. HTTP
// middleware feeds the rc_http_* series directly; the engine memo
// cache, persistent store and job manager are re-published through
// func-backed metrics that sample each subsystem's own Stats() atomics
// at collection time — the subsystem counter stays the single source of
// truth, and /healthz (rebuilt from the same registry reads) can never
// drift from /metrics.

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"rcons/internal/atlas/census"
	"rcons/internal/engine"
	"rcons/internal/jobs"
	"rcons/internal/mc"
	"rcons/internal/obs"
	"rcons/internal/store"
)

// metrics holds the hot-path handles the middleware and job handlers
// update directly (func-backed series need no handles).
type metrics struct {
	requests   *obs.CounterVec // rc_http_requests_total{method,path,code}
	latency    *obs.HistogramVec
	stage      *obs.HistogramVec // rc_stage_duration_seconds{stage}
	inFlight   *obs.Gauge
	shed       *obs.CounterVec
	coalesced  *obs.CounterVec
	limited    *obs.CounterVec
	cancelled  *obs.CounterVec
	panics     *obs.CounterVec // rc_http_panics_total{path}
	mcRuns     *obs.Counter
	mcNodes    *obs.Counter
	mcSwarm    *obs.Counter
	censusRuns *obs.Counter
	censusRows *obs.Counter
}

// setupMetrics registers every rcserve metric family on s.reg. Called
// once from newServer, after engine/store/jobs exist.
func (s *Server) setupMetrics() {
	r := s.reg
	s.m = metrics{
		requests: r.Counter("rc_http_requests_total",
			"HTTP requests served, by method, route and status code.",
			"method", "path", "code"),
		latency: r.Histogram("rc_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", nil, "path"),
		stage: r.Histogram("rc_stage_duration_seconds",
			"Span duration in seconds by stage (span name), fed by the tracer.",
			// Stages go well below HTTP latencies (a memo lookup is
			// sub-microsecond), so the buckets start two decades finer
			// than the request histogram's.
			[]float64{1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10},
			"stage"),
		inFlight: r.Gauge("rc_http_in_flight",
			"HTTP requests currently being served.").With(),
		shed: r.Counter("rc_http_shed_total",
			"Requests shed with 503 at the in-flight cap, by route.", "path"),
		coalesced: r.Counter("rc_http_coalesced_total",
			"Requests served a payload shared with a concurrent identical request, by route.", "path"),
		limited: r.Counter("rc_http_rate_limited_total",
			"Requests rejected with 429 by the per-client rate limiter, by route.", "path"),
		cancelled: r.Counter("rc_http_client_cancelled_total",
			"Requests abandoned by the client before completion, by route.", "path"),
		panics: r.Counter("rc_http_panics_total",
			"Handler panics recovered by the middleware, by route.", "path"),
		mcRuns: r.Counter("rc_mc_runs_total",
			"Model-checker runs completed (sync requests and jobs).").With(),
		mcNodes: r.Counter("rc_mc_nodes_total",
			"Schedule prefixes executed across all model-checker runs.").With(),
		mcSwarm: r.Counter("rc_mc_swarm_runs_total",
			"Randomized swarm schedules executed across all runs.").With(),
		censusRuns: r.Counter("rc_census_runs_total",
			"Census runs completed (sync requests and jobs).").With(),
		censusRows: r.Counter("rc_census_rows_total",
			"Census rows produced across all runs.").With(),
	}

	// Every span End feeds the stage histogram, so per-stage latency is
	// visible on /metrics even when the recorder has rotated the trace
	// out. Span names are the bounded stage vocabulary.
	s.tracer.SetStageObserver(func(stage string, seconds float64) {
		s.m.stage.With(stage).Observe(seconds)
	})

	// Engine memo cache + persistent-store counters.
	eng := s.eng
	ctrf := func(name, help string, f func(engine.CacheStats) int64) {
		r.CounterFunc(name, help, func() float64 { return float64(f(eng.Stats())) })
	}
	ctrf("rc_engine_memo_hits_total", "Engine memo-cache hits.",
		func(c engine.CacheStats) int64 { return c.Hits })
	ctrf("rc_engine_memo_misses_total", "Engine memo-cache misses.",
		func(c engine.CacheStats) int64 { return c.Misses })
	ctrf("rc_engine_memo_evictions_total", "Engine memo-cache evictions.",
		func(c engine.CacheStats) int64 { return c.Evictions })
	ctrf("rc_engine_persist_hits_total", "Engine persistent-store hits.",
		func(c engine.CacheStats) int64 { return c.PersistHits })
	ctrf("rc_engine_persist_misses_total", "Engine persistent-store misses.",
		func(c engine.CacheStats) int64 { return c.PersistMisses })
	ctrf("rc_engine_persist_errors_total", "Engine persistent-store errors.",
		func(c engine.CacheStats) int64 { return c.PersistErrors })
	r.GaugeFunc("rc_engine_memo_entries", "Engine memo-cache entries.",
		func() float64 { return float64(eng.Stats().Entries) })

	// Job-manager lifecycle counters and queue gauges.
	jm := s.jobs
	jctr := func(name, help string, f func(jobs.Stats) int64) {
		r.CounterFunc(name, help, func() float64 { return float64(f(jm.Stats())) })
	}
	jctr("rc_jobs_done_total", "Jobs finished successfully.",
		func(j jobs.Stats) int64 { return j.Done })
	jctr("rc_jobs_failed_total", "Jobs that failed.",
		func(j jobs.Stats) int64 { return j.Failed })
	jctr("rc_jobs_cancelled_total", "Jobs cancelled.",
		func(j jobs.Stats) int64 { return j.Cancelled })
	jctr("rc_jobs_submitted_total", "Job executions enqueued.",
		func(j jobs.Stats) int64 { return j.Submitted })
	jctr("rc_jobs_coalesced_total", "Submissions coalesced onto a live job.",
		func(j jobs.Stats) int64 { return j.Coalesced })
	jctr("rc_jobs_store_hits_total", "Submissions answered from the persistent store.",
		func(j jobs.Stats) int64 { return j.StoreHits })
	jctr("rc_jobs_evicted_total", "Terminal jobs evicted past the retention cap.",
		func(j jobs.Stats) int64 { return j.Evicted })
	jg := func(name, help string, f func(jobs.Stats) int) {
		r.GaugeFunc(name, help, func() float64 { return float64(f(jm.Stats())) })
	}
	jg("rc_jobs_queued", "Jobs currently queued.", func(j jobs.Stats) int { return j.Queued })
	jg("rc_jobs_running", "Jobs currently running.", func(j jobs.Stats) int { return j.Running })
	jg("rc_jobs_workers", "Configured job workers.", func(j jobs.Stats) int { return j.Workers })
	jg("rc_jobs_queue_cap", "Configured job queue capacity.", func(j jobs.Stats) int { return j.QueueCap })

	// Content-addressed store counters (only with -store).
	if st := s.store; st != nil {
		r.CounterFunc("rc_store_hits_total", "Store gets served from the memory front.",
			func() float64 { return float64(st.Stats().MemHits) }, "tier", "mem")
		r.CounterFunc("rc_store_hits_total", "Store gets served from disk.",
			func() float64 { return float64(st.Stats().DiskHits) }, "tier", "disk")
		sctr := func(name, help string, f func(store.Stats) int64) {
			r.CounterFunc(name, help, func() float64 { return float64(f(st.Stats())) })
		}
		sctr("rc_store_misses_total", "Store gets that found nothing.",
			func(t store.Stats) int64 { return t.Misses })
		sctr("rc_store_puts_total", "Store puts that wrote an entry.",
			func(t store.Stats) int64 { return t.Puts })
		sctr("rc_store_put_noops_total", "Store puts skipped as identical.",
			func(t store.Stats) int64 { return t.PutNoops })
		sctr("rc_store_evictions_total", "Memory-front entries evicted.",
			func(t store.Stats) int64 { return t.Evictions })
		sctr("rc_store_quarantined_total", "Corrupt store entries quarantined.",
			func(t store.Stats) int64 { return t.Quarantined })
		sctr("rc_store_disk_evictions_total", "Entry files deleted to respect the disk budget.",
			func(t store.Stats) int64 { return t.DiskEvictions })
		sctr("rc_store_compactions_total", "Completed store compaction passes.",
			func(t store.Stats) int64 { return t.Compactions })
		r.GaugeFunc("rc_store_entries", "Valid entries on disk.",
			func() float64 { return float64(st.Stats().Entries) })
		r.GaugeFunc("rc_store_bytes", "Bytes of valid entries on disk.",
			func() float64 { return float64(st.Stats().Bytes) })
		r.GaugeFunc("rc_store_budget_bytes", "Configured store disk budget in bytes (0 = unlimited).",
			func() float64 { return float64(st.Budget()) })
	}

	// Peer read-through tiers (one labeled series set per -store-peer).
	for _, p := range s.peers {
		pctr := func(name, help string, f func(store.PeerStats) int64) {
			r.CounterFunc(name, help,
				func() float64 { return float64(f(p.Stats())) }, "peer", p.Name())
		}
		pctr("rc_store_peer_hits_total", "Peer store fetches that returned a verified entry.",
			func(t store.PeerStats) int64 { return t.Hits })
		pctr("rc_store_peer_misses_total", "Peer store fetches answered 404.",
			func(t store.PeerStats) int64 { return t.Misses })
		pctr("rc_store_peer_errors_total", "Peer store fetches that failed (down, slow or corrupt peer).",
			func(t store.PeerStats) int64 { return t.Errors })
		pctr("rc_store_peer_puts_total", "Entries pushed to the peer.",
			func(t store.PeerStats) int64 { return t.Puts })
		pctr("rc_store_peer_put_errors_total", "Entry pushes the peer rejected or that failed in transit.",
			func(t store.PeerStats) int64 { return t.PutErrors })
		pctr("rc_store_peer_gets_total", "Peer store fetches attempted.",
			func(t store.PeerStats) int64 { return t.Gets })
		r.CounterFunc("rc_store_peer_latency_seconds_total",
			"Summed wall-clock seconds spent on peer store fetches.",
			func() float64 { return p.Stats().GetSeconds }, "peer", p.Name())
	}
}

// recordMCRun folds one finished model-checker run into the cumulative
// rc_mc_* counters (sync /v1/mc requests and async mc jobs alike).
func (s *Server) recordMCRun(res *mc.Result) {
	s.m.mcRuns.Inc()
	s.m.mcNodes.Add(int64(res.Stats.Nodes))
	s.m.mcSwarm.Add(int64(res.Stats.SwarmRuns))
}

// recordCensusRun folds one finished census into the rc_census_*
// counters (sync /v1/atlas requests and async census jobs alike).
func (s *Server) recordCensusRun(a *census.Artifact) {
	s.m.censusRuns.Inc()
	s.m.censusRows.Add(int64(a.Types))
}

// Registry-backed views of the subsystem stats, consumed by /healthz.
// Rebuilding the exact Stats structs from Registry.Value reads keeps
// the JSON shape byte-compatible with the pre-registry handler while
// guaranteeing /healthz and /metrics expose the same numbers — both
// flow through the same func-backed series.

func (s *Server) cacheStatsFromRegistry() engine.CacheStats {
	v := s.reg.Value
	return engine.CacheStats{
		Hits:          int64(v("rc_engine_memo_hits_total")),
		Misses:        int64(v("rc_engine_memo_misses_total")),
		Entries:       int(v("rc_engine_memo_entries")),
		Evictions:     int64(v("rc_engine_memo_evictions_total")),
		PersistHits:   int64(v("rc_engine_persist_hits_total")),
		PersistMisses: int64(v("rc_engine_persist_misses_total")),
		PersistErrors: int64(v("rc_engine_persist_errors_total")),
	}
}

func (s *Server) jobsStatsFromRegistry() jobs.Stats {
	v := s.reg.Value
	return jobs.Stats{
		Workers:   int(v("rc_jobs_workers")),
		QueueCap:  int(v("rc_jobs_queue_cap")),
		Queued:    int(v("rc_jobs_queued")),
		Running:   int(v("rc_jobs_running")),
		Done:      int64(v("rc_jobs_done_total")),
		Failed:    int64(v("rc_jobs_failed_total")),
		Cancelled: int64(v("rc_jobs_cancelled_total")),
		Submitted: int64(v("rc_jobs_submitted_total")),
		Coalesced: int64(v("rc_jobs_coalesced_total")),
		StoreHits: int64(v("rc_jobs_store_hits_total")),
		Evicted:   int64(v("rc_jobs_evicted_total")),
	}
}

func (s *Server) storeStatsFromRegistry() store.Stats {
	v := s.reg.Value
	return store.Stats{
		Entries:       int64(v("rc_store_entries")),
		Bytes:         int64(v("rc_store_bytes")),
		MemHits:       int64(v("rc_store_hits_total", "mem")),
		DiskHits:      int64(v("rc_store_hits_total", "disk")),
		Misses:        int64(v("rc_store_misses_total")),
		Puts:          int64(v("rc_store_puts_total")),
		PutNoops:      int64(v("rc_store_put_noops_total")),
		Evictions:     int64(v("rc_store_evictions_total")),
		DiskEvictions: int64(v("rc_store_disk_evictions_total")),
		Quarantined:   int64(v("rc_store_quarantined_total")),
		Compactions:   int64(v("rc_store_compactions_total")),
	}
}

// peerStatsFromRegistry rebuilds each -store-peer tier's stats from the
// registry's labeled series, keyed by peer base URL.
func (s *Server) peerStatsFromRegistry() map[string]store.PeerStats {
	v := s.reg.Value
	out := make(map[string]store.PeerStats, len(s.peers))
	for _, p := range s.peers {
		name := p.Name()
		out[name] = store.PeerStats{
			Hits:       int64(v("rc_store_peer_hits_total", name)),
			Misses:     int64(v("rc_store_peer_misses_total", name)),
			Errors:     int64(v("rc_store_peer_errors_total", name)),
			Puts:       int64(v("rc_store_peer_puts_total", name)),
			PutErrors:  int64(v("rc_store_peer_put_errors_total", name)),
			Gets:       int64(v("rc_store_peer_gets_total", name)),
			GetSeconds: v("rc_store_peer_latency_seconds_total", name),
		}
	}
	return out
}

// statusWriter captures the response status plus the request's outcome
// class for metrics and the access log. limited() marks sheds,
// rateLimited marks 429s, and writeEngineError marks deadline 503s and
// client-cancel 499s — statuses alone can't separate these causes, and
// they mean very different things for capacity planning: "shed" is the
// server out of slots, "limited" is one client over its budget,
// "deadline" is work that blew its time box, "cancelled" is a client
// that stopped caring.
type statusWriter struct {
	http.ResponseWriter
	status  int
	outcome string // "", "shed", "limited", "deadline", "cancelled"
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// markOutcome tags the in-flight request's statusWriter (a no-op for
// writers that did not pass through instrument, e.g. in unit tests that
// call handlers directly).
func markOutcome(w http.ResponseWriter, outcome string) {
	if sw, ok := w.(*statusWriter); ok && sw.outcome == "" {
		sw.outcome = outcome
	}
}

// instrument is the outermost per-route middleware: it adopts or mints
// the request's trace ID, opens the root span, stashes a trace-tagged
// logger in the context, records the rc_http_* metrics and emits one
// structured access-log line per request. path is the route pattern,
// not the raw URL, so the label space stays bounded.
//
// All bookkeeping lives in a single deferred block so a panicking
// handler cannot leak the in-flight gauge or skip the metrics/log/span
// teardown: the panic is recovered, counted in rc_http_panics_total,
// and answered with a 500 if the handler had not written yet.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.m.latency.With(path)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()

		// A valid propagated header (peer store hop, rcload -trace)
		// wins over minting and forces sampling, so a cross-process
		// trace is never cut short by this side's 1-in-N dice.
		propagated := false
		if hdr := r.Header.Get(obs.TraceHeader); obs.ValidTraceID(hdr) {
			ctx = obs.WithTrace(ctx, hdr)
			propagated = true
		}
		ctx, trace := obs.EnsureTrace(ctx)
		ctx, span := s.tracer.StartTrace(ctx, path, trace, propagated)
		logger := s.logger.With("trace", trace)
		ctx = obs.ContextWithLogger(ctx, logger)
		// Echo the ID so callers can fetch /debug/requests/{trace}.
		w.Header().Set(obs.TraceHeader, trace)

		sw := &statusWriter{ResponseWriter: w}
		s.m.inFlight.Add(1)
		defer func() {
			rec := recover()
			if rec != nil && rec != http.ErrAbortHandler {
				s.m.panics.With(path).Inc()
				logger.Error("handler panic",
					"method", r.Method,
					"path", path,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()),
				)
				if sw.status == 0 {
					http.Error(sw, "internal server error", http.StatusInternalServerError)
				}
				markOutcome(sw, "panic")
			}
			s.m.inFlight.Add(-1)

			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			dur := time.Since(start)
			lat.Observe(dur.Seconds())
			s.m.requests.With(r.Method, path, strconv.Itoa(sw.status)).Inc()
			outcome := sw.outcome
			if outcome == "" {
				outcome = "ok"
			}
			switch outcome {
			case "shed":
				s.m.shed.With(path).Inc()
			case "limited":
				s.m.limited.With(path).Inc()
			case "cancelled":
				s.m.cancelled.With(path).Inc()
			}
			span.SetAttr("method", r.Method)
			span.SetAttr("status", strconv.Itoa(sw.status))
			if sw.status >= 500 {
				span.MarkError()
			}
			span.End()
			logger.Info("request",
				"method", r.Method,
				"path", path,
				"status", sw.status,
				"outcome", outcome,
				"durMs", dur.Milliseconds(),
			)
			if rec == http.ErrAbortHandler {
				// net/http's sentinel for "drop the connection" — keep
				// its contract after our own accounting is done.
				panic(rec)
			}
		}()
		h(sw, r.WithContext(ctx))
	}
}
