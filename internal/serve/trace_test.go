package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rcons/internal/obs"
)

// JSON shapes served by /debug/requests (mirrors debug.go).
type debugListJSON struct {
	Sampled  int64              `json:"sampled"`
	Capacity int                `json:"capacity"`
	Recent   []debugSummaryJSON `json:"recent"`
	Slowest  []debugSummaryJSON `json:"slowest"`
	Errored  []debugSummaryJSON `json:"errored"`
}

type debugSummaryJSON struct {
	Trace      string  `json:"trace"`
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
	Err        bool    `json:"err"`
	Spans      int     `json:"spans"`
}

type debugNodeJSON struct {
	Name  string          `json:"name"`
	Attrs []obs.Attr      `json:"attrs"`
	Err   bool            `json:"err"`
	Spans []debugNodeJSON `json:"spans"`
}

type debugTraceJSON struct {
	Trace string          `json:"trace"`
	Name  string          `json:"name"`
	Err   bool            `json:"err"`
	Spans []debugNodeJSON `json:"spans"`
}

// findSpan walks a span tree depth-first for the first node with name.
func findSpan(nodes []debugNodeJSON, name string) *debugNodeJSON {
	for i := range nodes {
		if nodes[i].Name == name {
			return &nodes[i]
		}
		if n := findSpan(nodes[i].Spans, name); n != nil {
			return n
		}
	}
	return nil
}

func attr(n *debugNodeJSON, key string) string {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestInstrumentPanicRecovery is the regression test for the leak: a
// panicking handler must not propagate, must answer 500, must restore
// the in-flight gauge and must still be counted and access-logged.
func TestInstrumentPanicRecovery(t *testing.T) {
	s, _ := testServer(t)
	h := s.instrument("/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})

	rw := httptest.NewRecorder()
	h(rw, httptest.NewRequest(http.MethodGet, "/panic", nil)) // must not re-panic

	if rw.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rw.Code)
	}
	if v := s.reg.Value("rc_http_in_flight"); v != 0 {
		t.Errorf("rc_http_in_flight = %v after panic, want 0 (gauge leaked)", v)
	}
	if v := s.reg.Value("rc_http_panics_total", "/panic"); v != 1 {
		t.Errorf("rc_http_panics_total{/panic} = %v, want 1", v)
	}
	if v := s.reg.Value("rc_http_requests_total", http.MethodGet, "/panic", "500"); v != 1 {
		t.Errorf("rc_http_requests_total{GET,/panic,500} = %v, want 1 (metrics skipped on panic)", v)
	}

	// The trace must have been sealed and recorded as errored.
	trace := rw.Header().Get(obs.TraceHeader)
	if trace == "" {
		t.Fatal("no X-RC-Trace response header")
	}
	tr := s.recorder.Lookup(trace)
	if tr == nil {
		t.Fatalf("recorder lost trace %s of panicked request", trace)
	}
	if !tr.Err {
		t.Error("panicked request's trace not marked errored")
	}

	// A panic after a partial write keeps the handler's status and must
	// not double-WriteHeader.
	h2 := s.instrument("/panic2", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		panic("late boom")
	})
	rw2 := httptest.NewRecorder()
	h2(rw2, httptest.NewRequest(http.MethodGet, "/panic2", nil))
	if rw2.Code != http.StatusAccepted {
		t.Errorf("partial-write panic status = %d, want 202", rw2.Code)
	}
	if v := s.reg.Value("rc_http_in_flight"); v != 0 {
		t.Errorf("rc_http_in_flight = %v, want 0", v)
	}
	if v := s.reg.Value("rc_http_panics_total", "/panic2"); v != 1 {
		t.Errorf("rc_http_panics_total{/panic2} = %v, want 1", v)
	}
}

// TestDebugRequests exercises the flight-recorder surface end to end:
// a classify request must land in the ring with a span tree whose root
// is the route pattern and whose children include the engine stages.
func TestDebugRequests(t *testing.T) {
	s, ts := testServer(t)

	resp, err := http.Get(ts.URL + "/v1/classify?type=S_3&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	trace := resp.Header.Get(obs.TraceHeader)
	if trace == "" {
		t.Fatal("classify response carries no X-RC-Trace header")
	}

	var list debugListJSON
	getJSON(t, ts.URL+"/debug/requests", http.StatusOK, &list)
	if list.Sampled < 1 || len(list.Recent) < 1 {
		t.Fatalf("recorder empty after traffic: sampled=%d recent=%d", list.Sampled, len(list.Recent))
	}
	if list.Capacity != 128 {
		t.Errorf("default recorder capacity = %d, want 128", list.Capacity)
	}
	if list.Recent[0].Spans < 2 {
		t.Errorf("newest trace has %d spans, want a tree", list.Recent[0].Spans)
	}

	var full debugTraceJSON
	getJSON(t, ts.URL+"/debug/requests/"+trace, http.StatusOK, &full)
	if full.Trace != trace {
		t.Fatalf("trace id = %q, want %q", full.Trace, trace)
	}
	if len(full.Spans) == 0 || full.Spans[0].Name != "/v1/classify" {
		t.Fatalf("root span = %+v, want /v1/classify root", full.Spans)
	}
	cls := findSpan(full.Spans, "engine.classify")
	if cls == nil {
		t.Fatalf("no engine.classify span in tree: %+v", full.Spans)
	}
	if got := attr(cls, "type"); got != "S_3" {
		t.Errorf("engine.classify type attr = %q, want S_3", got)
	}

	// Unknown IDs are a clean 404, not a 500 or an empty 200.
	getJSON(t, ts.URL+"/debug/requests/deadbeef00000000", http.StatusNotFound, nil)

	// The stage histogram saw the same stages the tree shows.
	if v := s.reg.Value("rc_stage_duration_seconds", "engine.classify"); v < 1 {
		t.Errorf("rc_stage_duration_seconds{stage=engine.classify} count = %v, want ≥ 1", v)
	}
}

// TestTraceSampleZero asserts the off switch: no traces recorded, but
// requests still work and still carry a trace ID for log correlation.
func TestTraceSampleZero(t *testing.T) {
	_, ts := testServer(t, "-trace-sample", "0")
	resp, err := http.Get(ts.URL + "/v1/classify?type=S_3&limit=4")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(obs.TraceHeader) == "" {
		t.Error("trace header should still be echoed with sampling off")
	}
	var list debugListJSON
	getJSON(t, ts.URL+"/debug/requests", http.StatusOK, &list)
	if list.Sampled != 0 || len(list.Recent) != 0 {
		t.Fatalf("recorder not empty with -trace-sample 0: %+v", list)
	}
	if list.Recent == nil || list.Slowest == nil || list.Errored == nil {
		t.Error("empty recorder lists must still be JSON arrays")
	}
}

// TestTracePropagationAcrossPeers is the PR's acceptance scenario: two
// in-process servers, B configured with -store-peer at A. A classify on
// cold B reads through B's store chain to warm A, and the whole journey
// is ONE trace: B's tree shows root → store.chain → store.peer with the
// peer URL, and A's recorder holds the same trace ID for its store hit.
func TestTracePropagationAcrossPeers(t *testing.T) {
	_, tsA := testServer(t, "-store", t.TempDir())
	// Warm A: classify once so A's persist tier holds the artifact.
	getJSON(t, tsA.URL+"/v1/classify?type=S_3&limit=5", http.StatusOK, nil)

	_, tsB := testServer(t, "-store", t.TempDir(), "-store-peer", tsA.URL)
	resp, err := http.Get(tsB.URL + "/v1/classify?type=S_3&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify via B = %d", resp.StatusCode)
	}
	trace := resp.Header.Get(obs.TraceHeader)
	if trace == "" {
		t.Fatal("no trace ID from B")
	}

	// B's tree: root route span, store.chain under it, peer hop under
	// the chain carrying A's URL and a hit.
	var full debugTraceJSON
	getJSON(t, tsB.URL+"/debug/requests/"+trace, http.StatusOK, &full)
	if len(full.Spans) == 0 || full.Spans[0].Name != "/v1/classify" {
		t.Fatalf("B root span = %+v, want /v1/classify", full.Spans)
	}
	chain := findSpan(full.Spans, "store.chain")
	if chain == nil {
		t.Fatalf("no store.chain span in B's tree")
	}
	peer := findSpan(chain.Spans, "store.peer")
	if peer == nil {
		t.Fatalf("no store.peer span under store.chain: %+v", chain)
	}
	if got := attr(peer, "peer"); !strings.HasPrefix(tsA.URL, got) || got == "" {
		t.Errorf("peer attr = %q, want A's URL %q", got, tsA.URL)
	}
	if got := attr(peer, "hit"); got != "true" {
		t.Errorf("peer hit attr = %q, want true (A was warm)", got)
	}

	// A saw the hop under the SAME trace ID: the header forced sampling
	// on A's side, so its recorder holds a store-route trace with it.
	var listA debugListJSON
	getJSON(t, tsA.URL+"/debug/requests", http.StatusOK, &listA)
	found := false
	for _, tr := range listA.Recent {
		if tr.Trace == trace {
			found = true
			if tr.Name != "/v1/store/{kind}/{addr}" {
				t.Errorf("A's half of trace %s rooted at %q, want store route", trace, tr.Name)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in A's recorder; A only saw %+v", trace, listA.Recent)
	}
}
