package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"rcons/internal/checker"
	"rcons/internal/spec"
	"rcons/internal/types"
)

func testServer(t *testing.T, extraFlags ...string) (*Server, *httptest.Server) {
	t.Helper()
	// -log-level error keeps per-request access logs out of test output
	// (job polls alone would emit thousands of lines).
	cfg, err := parseFlags(append([]string{"-workers", "4", "-max-limit", "6", "-log-level", "error"}, extraFlags...))
	if err != nil {
		t.Fatal(err)
	}
	return testServerFromConfig(t, cfg)
}

func testServerFromConfig(t *testing.T, cfg config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.drainJobs(ctx)
	})
	return s, ts
}

func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("GET %s = %d (want %d): %v", url, resp.StatusCode, wantStatus, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

// TestClassifyEndToEnd is the acceptance check: /v1/classify?type=S_3
// must return exactly the bands the CLI derives via checker.Classify.
func TestClassifyEndToEnd(t *testing.T) {
	_, ts := testServer(t)
	var got classificationJSON
	getJSON(t, ts.URL+"/v1/classify?type=S_3&limit=5", http.StatusOK, &got)

	want, err := checker.Classify(mustType(t, "S_3"), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.TypeName || got.Readable != want.Readable {
		t.Fatalf("identity mismatch: %+v vs %+v", got, want)
	}
	if got.Cons.Display != want.ConsBand() || got.Rcons.Display != want.RconsBand() {
		t.Fatalf("bands: served cons=%q rcons=%q, CLI cons=%q rcons=%q",
			got.Cons.Display, got.Rcons.Display, want.ConsBand(), want.RconsBand())
	}
	if got.Cons.Display != "3" || got.Rcons.Display != "3" {
		t.Fatalf("rcons(S_3) should serve band 3/3, got cons=%q rcons=%q",
			got.Cons.Display, got.Rcons.Display)
	}
	if got.Recording.Display != want.Recording.String() ||
		got.Discerning.Display != want.Discerning.String() {
		t.Fatalf("levels: %+v vs %+v", got, want)
	}
	if got.Recording.Witness == nil || got.Recording.Witness.Q0 == "" {
		t.Fatal("recording witness missing from response")
	}
}

// TestClassifyUnboundedBand checks the null-Hi encoding on a type whose
// scan hits the limit (compare&swap).
func TestClassifyUnboundedBand(t *testing.T) {
	_, ts := testServer(t)
	var got classificationJSON
	getJSON(t, ts.URL+"/v1/classify?type=cas&limit=4", http.StatusOK, &got)
	if got.Cons.Hi != nil || got.Rcons.Hi != nil {
		t.Fatalf("cas bands should be unbounded: %+v", got)
	}
	if !strings.HasPrefix(got.Cons.Display, "≥") {
		t.Fatalf("cas cons display = %q", got.Cons.Display)
	}
}

func TestClassifyCustomSpec(t *testing.T) {
	_, ts := testServer(t)
	body, err := os.ReadFile("../../testdata/sticky.json")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/classify?limit=3", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST custom spec: %d", resp.StatusCode)
	}
	var got classificationJSON
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Type != "sticky-json" {
		t.Fatalf("custom type name = %q", got.Type)
	}
	// The JSON table is a 2-value sticky register: consensus number ∞.
	if got.Cons.Hi != nil {
		t.Fatalf("sticky table should classify unbounded, got %+v", got.Cons)
	}

	bad, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(`{"name":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid table accepted: %d", bad.StatusCode)
	}
}

func TestSearchEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var got struct {
		Type     string       `json:"type"`
		Property string       `json:"property"`
		N        int          `json:"n"`
		Found    bool         `json:"found"`
		Witness  *witnessJSON `json:"witness"`
	}
	getJSON(t, ts.URL+"/v1/search?type=S_3&property=recording&n=3", http.StatusOK, &got)
	if !got.Found || got.Witness == nil || len(got.Witness.Teams) != 3 {
		t.Fatalf("S_3 3-recording search: %+v", got)
	}
	getJSON(t, ts.URL+"/v1/search?type=S_3&property=recording&n=4", http.StatusOK, &got)
	if got.Found || got.Witness != nil {
		t.Fatalf("S_3 4-recording should not be found: %+v", got)
	}
}

func TestZooEndpoint(t *testing.T) {
	s, ts := testServer(t)
	var got struct {
		Limit   int                  `json:"limit"`
		Count   int                  `json:"count"`
		Results []classificationJSON `json:"results"`
	}
	getJSON(t, ts.URL+"/v1/zoo?limit=3", http.StatusOK, &got)
	if got.Count != len(types.Zoo()) || len(got.Results) != got.Count {
		t.Fatalf("zoo count = %d, want %d", got.Count, len(types.Zoo()))
	}
	if got.Results[0].Type != types.Zoo()[0].Name() {
		t.Fatalf("zoo order: first is %q", got.Results[0].Type)
	}
	// A second scan must be served from a cache (the encoded-response
	// memo, or on its miss the engine memos): no new engine misses.
	before := s.eng.Stats().Misses
	getJSON(t, ts.URL+"/v1/zoo?limit=3", http.StatusOK, &got)
	if after := s.eng.Stats().Misses; after > before {
		t.Fatalf("repeated zoo scan recomputed instead of hitting a cache (misses %d → %d)", before, after)
	}
}

func TestRequestLimits(t *testing.T) {
	s, ts := testServer(t)
	getJSON(t, ts.URL+"/v1/classify?type=S_3&limit=99", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/classify?type=S_3&limit=x", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/classify?type=nope", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/classify", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/search?type=S_3&property=bogus&n=3", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/search?property=recording", http.StatusBadRequest, nil)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/zoo", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/zoo = %d", resp.StatusCode)
	}

	// Load shedding: with every in-flight slot occupied, requests get 503.
	for i := 0; i < cap(s.inflight); i++ {
		s.inflight <- struct{}{}
	}
	getJSON(t, ts.URL+"/v1/classify?type=S_3", http.StatusServiceUnavailable, nil)
	for i := 0; i < cap(s.inflight); i++ {
		<-s.inflight
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	var got struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &got)
	if got.Status != "ok" || got.Workers != 4 {
		t.Fatalf("healthz: %+v", got)
	}
}

func TestParseFlagErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-max-limit", "1"}); err == nil {
		t.Error("max-limit 1 accepted")
	}
	if _, err := parseFlags([]string{"-max-inflight", "0"}); err == nil {
		t.Error("max-inflight 0 accepted")
	}
	if _, err := parseFlags([]string{"-badflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func mustType(t *testing.T, name string) spec.Type {
	t.Helper()
	typ, err := types.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return typ
}
