package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"rcons/internal/store"
)

func TestStoreRoutes(t *testing.T) {
	s, ts := testServer(t, "-store", t.TempDir())
	if err := s.store.Put(context.Background(), "search", "k", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	raw, ok, err := s.store.GetRaw("search", entryAddr(t, s, "search", "k"))
	if err != nil || !ok {
		t.Fatalf("GetRaw: ok=%v err=%v", ok, err)
	}

	// GET an existing entry: exact raw envelope bytes.
	resp, err := http.Get(ts.URL + "/v1/store/search/" + entryAddr(t, s, "search", "k"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != string(raw) {
		t.Fatalf("store GET: %d %q", resp.StatusCode, body)
	}

	// Absent entry and invalid address.
	getJSON(t, ts.URL+"/v1/store/search/"+strings.Repeat("0", 64), http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/store/search/nothex", http.StatusBadRequest, nil)

	// PUT round-trips through a second server.
	s2, ts2 := testServer(t, "-store", t.TempDir())
	req, _ := http.NewRequest(http.MethodPut,
		ts2.URL+"/v1/store/search/"+entryAddr(t, s, "search", "k"), strings.NewReader(string(raw)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("store PUT: %d", resp.StatusCode)
	}
	if got, ok, _ := s2.store.Get(context.Background(), "search", "k"); !ok || string(got) != `{"n":1}` {
		t.Fatalf("entry did not land on the second server: %q ok=%v", got, ok)
	}

	// A tampered envelope is rejected and nothing is stored.
	tampered := strings.Replace(string(raw), `{"n":1}`, `{"n":666}`, 1)
	req, _ = http.NewRequest(http.MethodPut,
		ts2.URL+"/v1/store/search/"+entryAddr(t, s, "search", "k"), strings.NewReader(tampered))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered PUT accepted: %d", resp.StatusCode)
	}
}

func TestStoreRoutesWithoutStore(t *testing.T) {
	_, ts := testServer(t)
	getJSON(t, ts.URL+"/v1/store/search/"+strings.Repeat("a", 64), http.StatusNotFound, nil)
	resp, err := http.Post(ts.URL+"/v1/store/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("compact without store: %d", resp.StatusCode)
	}
}

func TestStoreCompactRoute(t *testing.T) {
	s, ts := testServer(t, "-store", t.TempDir())
	for i := 0; i < 3; i++ {
		if err := s.store.Put(context.Background(), "search", fmt.Sprintf("k%d", i), []byte(`{"n":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/store/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %d", resp.StatusCode)
	}
	var cs store.CompactStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	if cs.EntriesAfter != 3 || cs.Evicted != 0 {
		t.Fatalf("compact stats: %+v", cs)
	}
	if st := s.store.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions counter: %+v", st)
	}
}

// TestPeerReadThroughClassify is the in-process acceptance test for the
// fleet tiering: replica A computes and persists a classification;
// replica B — empty store, A as its peer — answers the same query by
// read-through with ZERO engine search work (PersistMisses stays 0),
// and the fetched entries heal B's local store.
func TestPeerReadThroughClassify(t *testing.T) {
	_, tsA := testServer(t, "-store", t.TempDir())
	// Warm A: classify S_3 so every per-level search result persists.
	getJSON(t, tsA.URL+"/v1/classify?type=S_3&limit=4", http.StatusOK, nil)

	sB, tsB := testServer(t, "-store", t.TempDir(), "-store-peer", tsA.URL)
	getJSON(t, tsB.URL+"/v1/classify?type=S_3&limit=4", http.StatusOK, nil)

	cs := sB.eng.Stats()
	if cs.PersistMisses != 0 || cs.PersistErrors != 0 {
		t.Fatalf("replica B searched instead of reading through: %+v", cs)
	}
	if cs.PersistHits == 0 {
		t.Fatalf("replica B recorded no persist hits: %+v", cs)
	}
	if len(sB.peers) != 1 {
		t.Fatalf("replica B has %d peers", len(sB.peers))
	}
	ps := sB.peers[0].Stats()
	if ps.Hits == 0 || ps.Errors != 0 {
		t.Fatalf("peer tier stats: %+v", ps)
	}
	// Write-back healing: B's local store now holds the fetched entries.
	if st := sB.store.Stats(); st.Puts == 0 {
		t.Fatalf("peer hits did not heal B's local store: %+v", st)
	}
	// B's metrics expose the per-peer series with A's URL as the label.
	if hits := sB.reg.Value("rc_store_peer_hits_total", tsA.URL); hits == 0 {
		t.Fatalf("rc_store_peer_hits_total{peer=%q} = %v", tsA.URL, hits)
	}
	// And /healthz carries the same numbers.
	var health struct {
		StorePeers map[string]store.PeerStats `json:"storePeers"`
	}
	getJSON(t, tsB.URL+"/healthz", http.StatusOK, &health)
	if health.StorePeers[tsA.URL].Hits != ps.Hits {
		t.Fatalf("healthz peer stats %+v drifted from %+v", health.StorePeers[tsA.URL], ps)
	}
}

// TestDisklessPeerOnly: a replica with -store-peer but no -store serves
// classifications against the fleet pool and pushes results back to it.
func TestDisklessPeerOnly(t *testing.T) {
	sA, tsA := testServer(t, "-store", t.TempDir())
	sB, tsB := testServer(t, "-store-peer", tsA.URL)
	if sB.store != nil {
		t.Fatal("diskless replica opened a store")
	}
	getJSON(t, tsB.URL+"/v1/classify?type=S_3&limit=3", http.StatusOK, nil)
	// B computed (A was cold) and pushed its results into A's store.
	if st := sA.store.Stats(); st.Puts == 0 {
		t.Fatalf("diskless replica did not contribute to the pool: %+v", st)
	}
	if ps := sB.peers[0].Stats(); ps.Puts == 0 {
		t.Fatalf("peer put counters: %+v", ps)
	}
}

// TestPeerDownDegradesToCompute: replica B pointed at a dead peer still
// answers queries; the failures are counted, never surfaced.
func TestPeerDownDegradesToCompute(t *testing.T) {
	sB, tsB := testServer(t, "-store", t.TempDir(), "-store-peer", "http://127.0.0.1:1")
	getJSON(t, tsB.URL+"/v1/classify?type=S_3&limit=3", http.StatusOK, nil)
	if ps := sB.peers[0].Stats(); ps.Errors == 0 || ps.Hits != 0 {
		t.Fatalf("dead peer stats: %+v", ps)
	}
	// Local results still persisted; the dead tier cost nothing but time.
	if st := sB.store.Stats(); st.Puts == 0 {
		t.Fatalf("local store not written: %+v", st)
	}
}

func TestStoreFlagValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-store-budget", "64M"}); err == nil {
		t.Fatal("-store-budget without -store accepted")
	}
	if _, err := parseFlags([]string{"-store", "d", "-store-budget", "sixty"}); err == nil {
		t.Fatal("bad -store-budget accepted")
	}
	if _, err := NewFromFlags("-store-peer", "not-a-url", "-log-level", "error"); err == nil {
		t.Fatal("bad -store-peer accepted")
	}
	cfg, err := parseFlags([]string{"-store", "d", "-store-budget", "64M",
		"-store-peer", "http://a:1, http://b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.storeBudget != 64<<20 || len(cfg.storePeers) != 2 || cfg.storePeers[1] != "http://b:2" {
		t.Fatalf("parsed config: %+v", cfg)
	}
}

// entryAddr computes an entry's content address for building route URLs.
func entryAddr(t *testing.T, s *Server, kind, key string) string {
	t.Helper()
	return store.Addr(kind, key)
}
