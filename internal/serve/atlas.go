package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"

	"rcons/internal/atlas"
	"rcons/internal/atlas/census"
)

// Atlas request caps: a census classifies thousands of generated types
// inside one request, so the per-request universe is kept small and the
// summaries are memoized (census artifacts are deterministic, so the
// cache never serves a stale answer).
const (
	atlasMaxStates  = 3
	atlasMaxOps     = 3
	atlasMaxResps   = 2
	atlasMaxRaw     = 30_000
	atlasMaxRandom  = 2_000
	atlasMaxMutants = 2
	atlasMaxLimit   = 4

	atlasTypeMaxStates = 5
	atlasTypeMaxOps    = 4
	atlasTypeMaxResps  = 4

	atlasCacheCap = 256
)

// handleAtlas runs (or serves from cache) a small census and returns
// its summary: band histograms, zoo comparison, novel bands and the
// extremal gallery — everything in the artifact except the per-type
// rows. states=0 or ops=0 skips the enumeration stage (random-only or
// mutant-only censuses).
//
//	GET /v1/atlas?states=2&ops=2&resps=2&random=500&mutants=1&seed=1&limit=3
func (s *Server) handleAtlas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	states, ok := s.boundedParam(w, r, "states", 2, 0, atlasMaxStates)
	if !ok {
		return
	}
	ops, ok := s.boundedParam(w, r, "ops", 2, 0, atlasMaxOps)
	if !ok {
		return
	}
	resps, ok := s.boundedParam(w, r, "resps", 1, 1, atlasMaxResps)
	if !ok {
		return
	}
	random, ok := s.boundedParam(w, r, "random", 500, 0, atlasMaxRandom)
	if !ok {
		return
	}
	mutants, ok := s.boundedParam(w, r, "mutants", 1, 0, atlasMaxMutants)
	if !ok {
		return
	}
	limit, ok := s.boundedParam(w, r, "limit", 3, 2, min(atlasMaxLimit, s.cfg.maxLimit))
	if !ok {
		return
	}
	seed, ok := s.seedParam(w, r)
	if !ok {
		return
	}
	var bounds atlas.Bounds
	if states > 0 && ops > 0 {
		bounds = atlas.Bounds{States: states, Ops: ops, Resps: resps}
		if rc := bounds.RawCount(); rc > atlasMaxRaw {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("bounds %s enumerate %d raw tables, above this server's cap of %d", bounds, rc, atlasMaxRaw))
			return
		}
	}
	if random == 0 && mutants == 0 && bounds == (atlas.Bounds{}) {
		writeError(w, http.StatusBadRequest, "nothing to census: set states/ops, random or mutants")
		return
	}

	// Serve from cache, with in-flight dedup through the server-wide
	// coalescing group: a census costs seconds of CPU, so concurrent
	// cold requests for the same parameters share one computation
	// instead of multiplying the load.
	key := fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d", states, ops, resps, random, mutants, limit, seed)
	if cached, hit := s.atlasCache.Get(key); hit {
		writeRawJSON(w, http.StatusOK, cached)
		return
	}
	s.coalesced(w, r, "/v1/atlas", key, func() ([]byte, error) {
		a, err := census.Run(r.Context(), census.Options{
			Bounds:        bounds,
			Random:        random,
			MutantsPerZoo: mutants,
			Seed:          seed,
			Limit:         limit,
			Workers:       s.cfg.workers,
			Engine:        s.eng,
			Progress:      s.progress,
		})
		if err != nil {
			return nil, err
		}
		s.recordCensusRun(a)
		payload, err := json.Marshal(a.Summary)
		if err != nil {
			return nil, err
		}
		// Only deterministic (timeout-free) summaries are cacheable: a
		// census degraded by per-type timeouts under load must not be
		// served forever to an idle server.
		if len(a.Skipped) == 0 {
			s.atlasCache.Put(key, payload)
		}
		return payload, nil
	})
}

// handleAtlasType generates one seeded random table and classifies it —
// "show me type #seed of the (states, ops, resps) universe":
//
//	GET /v1/atlas/type?seed=42&states=3&ops=2&resps=2&limit=4
//
// The response carries the full transition table (re-POSTable to
// /v1/classify), the atlas canonical key, and the classification.
func (s *Server) handleAtlasType(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	states, ok := s.boundedParam(w, r, "states", 3, 1, atlasTypeMaxStates)
	if !ok {
		return
	}
	ops, ok := s.boundedParam(w, r, "ops", 2, 1, atlasTypeMaxOps)
	if !ok {
		return
	}
	resps, ok := s.boundedParam(w, r, "resps", 2, 1, atlasTypeMaxResps)
	if !ok {
		return
	}
	limit, ok := s.intParam(w, r, "limit", 4)
	if !ok {
		return
	}
	seed, ok := s.seedParam(w, r)
	if !ok {
		return
	}
	t := atlas.Random(rand.New(rand.NewSource(seed)), states, ops, resps)
	canon, key, canonOK := t.CanonicalWithKey()
	if canonOK {
		t = canon.WithLabel("atlas:" + key)
	}
	c, err := s.eng.Classify(r.Context(), t, limit)
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	enc := s.encodeClassificationWithFP(c, t, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"seed":           seed,
		"dims":           t.Dims(),
		"key":            key,
		"table":          t.Custom(),
		"classification": enc,
	})
}

// seedParam parses the optional int64 seed parameter (default 1).
func (s *Server) seedParam(w http.ResponseWriter, r *http.Request) (int64, bool) {
	raw := r.URL.Query().Get("seed")
	if raw == "" {
		return 1, true
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "seed must be a 64-bit integer")
		return 0, false
	}
	return v, true
}
