package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestErrorPaths is the table-driven sweep over the service's failure
// modes: malformed bodies, oversized bodies, unknown names, out-of-range
// parameters and wrong methods must all map to the right status codes
// with a JSON error payload — never a hang, panic or silent 200.
func TestErrorPaths(t *testing.T) {
	_, ts := testServer(t)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		// /v1/classify
		{"classify missing type", http.MethodGet, "/v1/classify", "", http.StatusBadRequest},
		{"classify unknown type", http.MethodGet, "/v1/classify?type=nope", "", http.StatusNotFound},
		{"classify limit too small", http.MethodGet, "/v1/classify?type=cas&limit=1", "", http.StatusBadRequest},
		{"classify limit not a number", http.MethodGet, "/v1/classify?type=cas&limit=abc", "", http.StatusBadRequest},
		{"classify limit over cap", http.MethodGet, "/v1/classify?type=cas&limit=99", "", http.StatusBadRequest},
		{"classify malformed JSON", http.MethodPost, "/v1/classify", "{not json", http.StatusBadRequest},
		{"classify JSON wrong shape", http.MethodPost, "/v1/classify", `{"name":"x"}`, http.StatusBadRequest},
		{"classify incomplete table", http.MethodPost, "/v1/classify",
			`{"name":"x","transitions":{"q0":{"op":{"next":"missing","resp":"r"}}}}`, http.StatusBadRequest},
		{"classify wrong method", http.MethodDelete, "/v1/classify?type=cas", "", http.StatusMethodNotAllowed},

		// /v1/search
		{"search missing type", http.MethodGet, "/v1/search?property=recording", "", http.StatusBadRequest},
		{"search unknown type", http.MethodGet, "/v1/search?type=nope&property=recording", "", http.StatusNotFound},
		{"search unknown property", http.MethodGet, "/v1/search?type=cas&property=weird", "", http.StatusBadRequest},
		{"search bad n", http.MethodGet, "/v1/search?type=cas&property=recording&n=0", "", http.StatusBadRequest},
		{"search wrong method", http.MethodPost, "/v1/search?type=cas&property=recording", "", http.StatusMethodNotAllowed},

		// /v1/zoo
		{"zoo bad limit", http.MethodGet, "/v1/zoo?limit=-3", "", http.StatusBadRequest},
		{"zoo wrong method", http.MethodPost, "/v1/zoo", "", http.StatusMethodNotAllowed},

		// /v1/mc
		{"mc missing target", http.MethodGet, "/v1/mc", "", http.StatusBadRequest},
		{"mc unknown target", http.MethodGet, "/v1/mc?target=no-such-protocol", "", http.StatusNotFound},
		{"mc n too small", http.MethodGet, "/v1/mc?target=cas&n=1", "", http.StatusBadRequest},
		{"mc n over cap", http.MethodGet, "/v1/mc?target=cas&n=9", "", http.StatusBadRequest},
		{"mc depth over cap", http.MethodGet, "/v1/mc?target=cas&depth=99", "", http.StatusBadRequest},
		{"mc crashes not a number", http.MethodGet, "/v1/mc?target=cas&crashes=x", "", http.StatusBadRequest},
		{"mc target/n mismatch", http.MethodGet, "/v1/mc?target=unsafe-yieldalways&n=2", "", http.StatusBadRequest},
		{"mc wrong method", http.MethodPost, "/v1/mc?target=cas", "", http.StatusMethodNotAllowed},
		{"mc targets wrong method", http.MethodPost, "/v1/mc/targets", "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error response is not JSON: %v", err)
			}
			if e["error"] == "" {
				t.Fatalf("error response missing the error field: %v", e)
			}
		})
	}
}

// TestOversizedBody checks the request-body cap: a POST beyond maxBody
// must be rejected with 413, not buffered.
func TestOversizedBody(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.maxBody = 256 // shrink the cap so the test stays cheap
	_, ts := testServerFromConfig(t, cfg)

	big := strings.Repeat("x", 1024)
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}

// TestDeadlineExceeded checks the per-request deadline path: with a
// vanishing timeout, work-heavy endpoints must shed with 503 instead of
// computing past their budget.
func TestDeadlineExceeded(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.timeout = time.Nanosecond
	_, ts := testServerFromConfig(t, cfg)

	for _, path := range []string{
		"/v1/zoo?limit=5",
		"/v1/classify?type=S_3&limit=6",
		"/v1/mc?target=team-sn&depth=10",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s with 1ns deadline = %d, want 503", path, resp.StatusCode)
		}
	}
}

// TestModelCheckEndpoint exercises the happy paths of /v1/mc: a safe
// protocol, a broken protocol with a replayable counterexample, and the
// target listing.
func TestModelCheckEndpoint(t *testing.T) {
	_, ts := testServer(t)

	var safe struct {
		Safe       bool `json:"safe"`
		Exhaustive bool `json:"exhaustive"`
		Stats      struct {
			Nodes       int `json:"nodes"`
			Completions int `json:"completions"`
		} `json:"stats"`
	}
	getJSON(t, ts.URL+"/v1/mc?target=cas&n=2&depth=8&crashes=1", http.StatusOK, &safe)
	if !safe.Safe || !safe.Exhaustive {
		t.Fatalf("cas n=2 not verified: %+v", safe)
	}
	if safe.Stats.Nodes == 0 || safe.Stats.Completions == 0 {
		t.Fatalf("stats missing: %+v", safe)
	}

	var bad struct {
		Safe           bool `json:"safe"`
		Counterexample *struct {
			Schedule  []string `json:"schedule"`
			Display   string   `json:"display"`
			Violation string   `json:"violation"`
			Trace     []string `json:"trace"`
		} `json:"counterexample"`
	}
	getJSON(t, ts.URL+"/v1/mc?target=unsafe-noyield&n=2&depth=12&crashes=1", http.StatusOK, &bad)
	if bad.Safe || bad.Counterexample == nil {
		t.Fatalf("broken protocol reported safe: %+v", bad)
	}
	if len(bad.Counterexample.Schedule) == 0 || bad.Counterexample.Violation == "" {
		t.Fatalf("counterexample incomplete: %+v", bad.Counterexample)
	}
	if !strings.Contains(bad.Counterexample.Violation, "agreement") {
		t.Fatalf("expected an agreement violation, got %q", bad.Counterexample.Violation)
	}

	var targets struct {
		Targets []struct {
			Name string `json:"name"`
			Doc  string `json:"doc"`
		} `json:"targets"`
	}
	getJSON(t, ts.URL+"/v1/mc/targets", http.StatusOK, &targets)
	if len(targets.Targets) < 6 {
		t.Fatalf("expected ≥ 6 targets, got %d", len(targets.Targets))
	}
}

// TestClassifyCanonicalFingerprint checks the classify response carries
// the label-free canonical fingerprint, and that isomorphic custom
// tables share it.
func TestClassifyCanonicalFingerprint(t *testing.T) {
	_, ts := testServer(t)

	table := func(s0, s1, op, r0, r1 string) string {
		return `{"name":"iso","initial":["` + s0 + `"],"transitions":{` +
			`"` + s0 + `":{"` + op + `":{"next":"` + s1 + `","resp":"` + r0 + `"}},` +
			`"` + s1 + `":{"` + op + `":{"next":"` + s1 + `","resp":"` + r1 + `"}}}}`
	}
	post := func(body string) string {
		resp, err := http.Post(ts.URL+"/v1/classify?limit=3", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST classify = %d", resp.StatusCode)
		}
		var out struct {
			CanonicalFingerprint string `json:"canonicalFingerprint"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.CanonicalFingerprint
	}
	fp1 := post(table("q0", "q1", "set", "old", "new"))
	fp2 := post(table("stateA", "stateB", "flip", "x", "y"))
	if fp1 == "" || fp2 == "" {
		t.Fatal("classify response missing canonicalFingerprint")
	}
	if fp1 != fp2 {
		t.Fatalf("isomorphic tables got different canonical fingerprints:\n%s\n%s", fp1, fp2)
	}
}
