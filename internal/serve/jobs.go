package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"rcons/internal/atlas"
	"rcons/internal/atlas/census"
	"rcons/internal/jobs"
	"rcons/internal/mc"
	"rcons/internal/types"
)

// The async job subsystem: work too heavy for a synchronous request
// deadline (census runs, deep model checks, zoo scans) is submitted
// once, executed on the manager's bounded pool, and polled by ID.
// Parameters are normalized (defaults applied, caps enforced) BEFORE
// the job ID is derived, so every equivalent request — explicit or
// defaulted, whatever the key order — coalesces onto the same job. With
// -store, finished results also answer resubmissions across restarts.

// jobSubmitRequest is the POST /v1/jobs body.
type jobSubmitRequest struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params"`
}

// censusJobParams / mcJobParams / zooJobParams are the canonical
// (fully-defaulted) parameter forms; their field order fixes the
// canonical JSON the job ID is derived from.
type censusJobParams struct {
	States  int   `json:"states"`
	Ops     int   `json:"ops"`
	Resps   int   `json:"resps"`
	Random  int   `json:"random"`
	Mutants int   `json:"mutants"`
	Seed    int64 `json:"seed"`
	Limit   int   `json:"limit"`
}

type mcJobParams struct {
	Target  string `json:"target"`
	N       int    `json:"n"`
	Depth   int    `json:"depth"`
	Crashes int    `json:"crashes"`
}

type zooJobParams struct {
	Limit int `json:"limit"`
}

// registerJobKinds installs the server's job kinds on its manager.
func (s *Server) registerJobKinds() {
	s.jobs.Register("census", s.censusJob)
	s.jobs.Register("mc", s.mcJob)
	s.jobs.Register("zoo", s.zooJob)
}

// normalizeJobParams validates raw parameters for kind and returns
// their canonical JSON. Every error is a client error (400).
func (s *Server) normalizeJobParams(kind string, raw json.RawMessage) (json.RawMessage, error) {
	if len(raw) == 0 {
		raw = json.RawMessage(`{}`)
	}
	decode := func(into any) error {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(into); err != nil {
			return fmt.Errorf("invalid %s params: %w", kind, err)
		}
		return nil
	}
	bound := func(name string, v *int, def, lo, hi int) error {
		if *v == absentInt {
			*v = def
		}
		if *v < lo || *v > hi {
			return fmt.Errorf("%s must be in [%d, %d], got %d", name, lo, hi, *v)
		}
		return nil
	}
	switch kind {
	case "census":
		in := struct {
			States  int    `json:"states"`
			Ops     int    `json:"ops"`
			Resps   int    `json:"resps"`
			Random  int    `json:"random"`
			Mutants int    `json:"mutants"`
			Seed    *int64 `json:"seed"`
			Limit   int    `json:"limit"`
		}{States: absentInt, Ops: absentInt, Resps: absentInt, Random: absentInt, Mutants: absentInt, Limit: absentInt}
		if err := decode(&in); err != nil {
			return nil, err
		}
		p := censusJobParams{Seed: 1}
		if in.Seed != nil {
			p.Seed = *in.Seed
		}
		for _, f := range []struct {
			name        string
			dst, src    *int
			def, lo, hi int
		}{
			{"states", &p.States, &in.States, 2, 0, atlasMaxStates},
			{"ops", &p.Ops, &in.Ops, 2, 0, atlasMaxOps},
			{"resps", &p.Resps, &in.Resps, 1, 1, atlasMaxResps},
			{"random", &p.Random, &in.Random, 500, 0, atlasMaxRandom},
			{"mutants", &p.Mutants, &in.Mutants, 1, 0, atlasMaxMutants},
			{"limit", &p.Limit, &in.Limit, min(3, s.cfg.maxLimit), 2, min(atlasMaxLimit, s.cfg.maxLimit)},
		} {
			*f.dst = *f.src
			if err := bound(f.name, f.dst, f.def, f.lo, f.hi); err != nil {
				return nil, err
			}
		}
		if p.States > 0 && p.Ops > 0 {
			b := atlas.Bounds{States: p.States, Ops: p.Ops, Resps: p.Resps}
			if rc := b.RawCount(); rc > atlasMaxRaw {
				return nil, fmt.Errorf("bounds %s enumerate %d raw tables, above this server's cap of %d", b, rc, atlasMaxRaw)
			}
		} else if p.Random == 0 && p.Mutants == 0 {
			return nil, fmt.Errorf("nothing to census: set states/ops, random or mutants")
		}
		return json.Marshal(p)
	case "mc":
		in := struct {
			Target  string `json:"target"`
			N       int    `json:"n"`
			Depth   int    `json:"depth"`
			Crashes int    `json:"crashes"`
		}{N: absentInt, Depth: absentInt, Crashes: absentInt}
		if err := decode(&in); err != nil {
			return nil, err
		}
		if in.Target == "" {
			return nil, fmt.Errorf("missing target (see /v1/mc/targets)")
		}
		if mc.TargetDoc(in.Target) == "" {
			return nil, fmt.Errorf("unknown target %q (see /v1/mc/targets)", in.Target)
		}
		p := mcJobParams{Target: in.Target, N: in.N, Depth: in.Depth, Crashes: in.Crashes}
		if err := bound("n", &p.N, 2, 2, mcMaxN); err != nil {
			return nil, err
		}
		if err := bound("depth", &p.Depth, 8, 2, mcMaxDepth); err != nil {
			return nil, err
		}
		if err := bound("crashes", &p.Crashes, 1, 0, mcMaxCrashes); err != nil {
			return nil, err
		}
		if _, err := mc.TargetByName(p.Target, p.N); err != nil {
			return nil, err
		}
		return json.Marshal(p)
	case "zoo":
		in := struct {
			Limit int `json:"limit"`
		}{Limit: absentInt}
		if err := decode(&in); err != nil {
			return nil, err
		}
		p := zooJobParams{Limit: in.Limit}
		if err := bound("limit", &p.Limit, min(5, s.cfg.maxLimit), 2, s.cfg.maxLimit); err != nil {
			return nil, err
		}
		return json.Marshal(p)
	}
	return nil, fmt.Errorf("unknown job kind %q (want census, mc or zoo)", kind)
}

// absentInt marks integer fields the client did not send; no request
// cap reaches it, so it cannot collide with a real value.
const absentInt = -1 << 30

// ---- job handlers (run on the manager's worker pool) ----

func (s *Server) censusJob(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
	var p censusJobParams
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, err
	}
	o := census.Options{
		Random:        p.Random,
		MutantsPerZoo: p.Mutants,
		Seed:          p.Seed,
		Limit:         p.Limit,
		Workers:       s.cfg.workers,
		Engine:        s.eng,
		Progress:      s.progress,
	}
	if p.States > 0 && p.Ops > 0 {
		o.Bounds = atlas.Bounds{States: p.States, Ops: p.Ops, Resps: p.Resps}
	}
	if s.store != nil {
		o.Store = s.store
	}
	a, err := census.Run(ctx, o)
	if err != nil {
		return nil, err
	}
	s.recordCensusRun(a)
	return json.Marshal(a.Summary)
}

func (s *Server) mcJob(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
	var p mcJobParams
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, err
	}
	tgt, err := mc.TargetByName(p.Target, p.N)
	if err != nil {
		return nil, err
	}
	res, err := mc.Check(ctx, tgt, mc.Options{
		MaxDepth:    p.Depth,
		CrashBudget: p.Crashes,
		NodeBudget:  mcNodeBudget,
		Workers:     s.cfg.workers,
		Progress:    s.progress,
	})
	if err != nil {
		return nil, err
	}
	s.recordMCRun(res)
	return json.Marshal(map[string]any{
		"target":         res.Target,
		"n":              p.N,
		"model":          res.Model.String(),
		"depth":          res.MaxDepth,
		"crashes":        res.CrashBudget,
		"safe":           res.Safe,
		"exhaustive":     res.Exhaustive,
		"complete":       res.Complete,
		"stats":          res.Stats,
		"counterexample": encodeCounterexample(res.CE),
	})
}

func (s *Server) zooJob(ctx context.Context, raw json.RawMessage) (json.RawMessage, error) {
	var p zooJobParams
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, err
	}
	cs, err := s.eng.Scan(ctx, p.Limit)
	if err != nil {
		return nil, err
	}
	// Scan classifies types.Zoo() in order; stamp each entry's canonical
	// fingerprint so job results match the sync /v1/zoo payloads.
	zoo := types.Zoo()
	results := make([]classificationJSON, len(cs))
	for i, c := range cs {
		results[i] = s.encodeClassificationWithFP(c, zoo[i], p.Limit)
	}
	return json.Marshal(map[string]any{
		"limit":   p.Limit,
		"count":   len(results),
		"results": results,
	})
}

// ---- HTTP endpoints ----

// handleJobSubmit accepts {"kind": "...", "params": {...}} and returns
// the job snapshot: 202 for a newly queued execution, 200 when the
// submission coalesced onto an existing job or a stored result.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		} else {
			writeError(w, http.StatusBadRequest, "could not read request body")
		}
		return
	}
	var req jobSubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid job request: %v", err))
		return
	}
	canon, err := s.normalizeJobParams(req.Kind, req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	info, existing, err := s.jobs.Submit(r.Context(), req.Kind, canon)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "job queue full, retry later")
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	default:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+info.ID)
	status := http.StatusAccepted
	if existing {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job (it may have been evicted)")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := s.jobs.List()
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(list),
		"jobs":  list,
		"kinds": s.jobs.Kinds(),
	})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, "no such job (it may have been evicted)")
	case errors.Is(err, jobs.ErrTerminal):
		writeError(w, http.StatusConflict, fmt.Sprintf("job already %s", info.State))
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, info)
	}
}
