package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rcons/internal/engine"
	"rcons/internal/types"
)

// ---- satellite regression: defaults must respect lowered caps ----

// TestBoundedParamDefaultClamped is the -max-limit 2 regression: an
// /v1/atlas request with NO limit parameter used to run at the endpoint
// default (3) even when the operator capped the server at 2 — absent
// parameters skipped the clamp that explicit ones went through.
func TestBoundedParamDefaultClamped(t *testing.T) {
	_, ts := testServer(t, "-max-limit", "2")

	var summary struct {
		Limit int `json:"limit"`
	}
	getJSON(t, ts.URL+"/v1/atlas?states=2&ops=2&resps=1&random=10&mutants=0", http.StatusOK, &summary)
	if summary.Limit != 2 {
		t.Fatalf("defaulted atlas limit = %d on a -max-limit 2 server, want 2", summary.Limit)
	}

	// An explicit limit above the cap is still rejected outright.
	resp, err := http.Get(ts.URL + "/v1/atlas?states=2&ops=2&resps=1&limit=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("explicit limit=3 on -max-limit 2 server = %d, want 400", resp.StatusCode)
	}
}

// ---- satellite regression: client cancel ≠ server deadline ----

// TestWriteEngineErrorSeparatesCancelFromDeadline pins the status and
// outcome mapping: a server-side deadline is a 503 capacity signal, a
// client disconnect is a 499 with its own outcome label; conflating
// them (the old behavior) made abandoned requests look like overload.
func TestWriteEngineErrorSeparatesCancelFromDeadline(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/zoo", nil)

	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	s.writeEngineError(sw, req, context.DeadlineExceeded)
	if rec.Code != http.StatusServiceUnavailable || sw.outcome != "deadline" {
		t.Fatalf("deadline: status=%d outcome=%q, want 503/deadline", rec.Code, sw.outcome)
	}

	rec = httptest.NewRecorder()
	sw = &statusWriter{ResponseWriter: rec}
	s.writeEngineError(sw, req, context.Canceled)
	if rec.Code != statusClientClosedRequest || sw.outcome != "cancelled" {
		t.Fatalf("cancel: status=%d outcome=%q, want 499/cancelled", rec.Code, sw.outcome)
	}
}

// TestClientCancelCounted drives the cancel path end to end: a client
// that abandons an expensive request must increment
// rc_http_client_cancelled_total, not the shed or deadline series.
func TestClientCancelCounted(t *testing.T) {
	s, ts := testServer(t)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/zoo?limit=6", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	time.Sleep(50 * time.Millisecond) // let the scan start
	cancel()
	<-done

	// The handler finishes (and the counter lands) asynchronously after
	// the client goroutine returns; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.reg.Value("rc_http_client_cancelled_total", "/v1/zoo") >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("rc_http_client_cancelled_total{/v1/zoo} never incremented after a client cancel")
}

// ---- satellite regression: every classification carries its identity ----

// TestZooCanonicalFingerprints: /v1/zoo responses used to omit
// canonicalFingerprint; now every entry must carry one (the encoders all
// flow through encodeClassificationWithFP).
func TestZooCanonicalFingerprints(t *testing.T) {
	_, ts := testServer(t)
	var zoo struct {
		Results []classificationJSON `json:"results"`
	}
	getJSON(t, ts.URL+"/v1/zoo?limit=3", http.StatusOK, &zoo)
	if len(zoo.Results) == 0 {
		t.Fatal("empty zoo")
	}
	// Every zoo entry whose type is canonicalizable must carry the
	// fingerprint (a few built-ins, e.g. read-only, have no finite
	// canonical form and legitimately serve an empty one).
	zooTypes := types.Zoo()
	if len(zooTypes) != len(zoo.Results) {
		t.Fatalf("served %d results for %d zoo types", len(zoo.Results), len(zooTypes))
	}
	stamped := 0
	for i, c := range zoo.Results {
		want, _ := engine.CanonicalFingerprint(zooTypes[i], 3)
		if c.CanonicalFingerprint != want {
			t.Fatalf("zoo entry %q canonicalFingerprint = %q, want %q",
				c.Type, c.CanonicalFingerprint, want)
		}
		if want != "" {
			stamped++
		}
	}
	if stamped == 0 {
		t.Fatal("no zoo entry carries a canonical fingerprint")
	}
}

// ---- batch classification ----

// TestClassifyBatch exercises the bulk endpoint: built-in names and
// custom tables mixed, per-item errors isolated, fingerprints present,
// and each item equal to its single-request counterpart.
func TestClassifyBatch(t *testing.T) {
	_, ts := testServer(t)

	body := `{"limit": 3, "items": [
		{"type": "S_3"},
		{"type": "no-such-type"},
		{"table": {"name":"custom","initial":["q0"],"transitions":{
			"q0":{"op":{"next":"q1","resp":"a"}},
			"q1":{"op":{"next":"q1","resp":"b"}}}}},
		{},
		{"type": "cas"}
	]}`
	var out struct {
		Limit int           `json:"limit"`
		Count int           `json:"count"`
		OK    int           `json:"ok"`
		Items []batchResult `json:"items"`
	}
	resp, err := http.Post(ts.URL+"/v1/classify/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch = %d: %s", resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 5 || out.OK != 3 {
		t.Fatalf("count/ok = %d/%d, want 5/3", out.Count, out.OK)
	}
	for i, want := range []bool{true, false, true, false, true} {
		if out.Items[i].OK != want {
			t.Fatalf("item %d ok = %v, want %v (err %q)", i, out.Items[i].OK, want, out.Items[i].Error)
		}
	}
	if out.Items[1].Error == "" || out.Items[3].Error == "" {
		t.Fatal("failed items missing error messages")
	}
	for _, i := range []int{0, 2, 4} {
		var c classificationJSON
		if err := json.Unmarshal(out.Items[i].Classification, &c); err != nil {
			t.Fatalf("item %d classification: %v", i, err)
		}
		if c.CanonicalFingerprint == "" {
			t.Fatalf("item %d missing canonicalFingerprint", i)
		}
	}

	// Batch results match the single-request endpoint exactly (compare
	// re-encoded JSON: the structs hold witness pointers).
	var solo classificationJSON
	getJSON(t, ts.URL+"/v1/classify?type=S_3&limit=3", http.StatusOK, &solo)
	gotJSON, _ := json.Marshal(out.Items[0].Classification)
	soloJSON, _ := json.Marshal(solo)
	if string(gotJSON) != string(soloJSON) {
		t.Fatalf("batch S_3 diverges from /v1/classify:\n%s\n%s", gotJSON, soloJSON)
	}
}

// TestClassifyBatchRequestErrors sweeps the request-level rejections:
// they must fail the whole batch with 400, before any engine work.
func TestClassifyBatchRequestErrors(t *testing.T) {
	_, ts := testServer(t)

	tooMany := `{"items": [` + strings.Repeat(`{"type":"S_3"},`, batchMaxItems) + `{"type":"S_3"}]}`
	for name, body := range map[string]string{
		"malformed":      `{not json`,
		"empty items":    `{"items": []}`,
		"no items":       `{"limit": 3}`,
		"limit too big":  `{"limit": 99, "items": [{"type":"S_3"}]}`,
		"limit too low":  `{"limit": 1, "items": [{"type":"S_3"}]}`,
		"over item cap":  tooMany,
		"type and table": `{"items": [{"type":"S_3","table":{}}]}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/classify/batch", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if name == "type and table" {
				// Item-level problem: the batch succeeds, the item fails.
				var out struct {
					Items []batchResult `json:"items"`
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("batch = %d, want 200", resp.StatusCode)
				}
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Fatal(err)
				}
				if len(out.Items) != 1 || out.Items[0].OK || out.Items[0].Error == "" {
					t.Fatalf("ambiguous item not rejected per-item: %+v", out.Items)
				}
				return
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("batch %q = %d, want 400", name, resp.StatusCode)
			}
		})
	}
}

// ---- coalescing ----

// TestCoalescedResponsesByteIdentical fires concurrent identical cold
// requests and checks (a) every response body is byte-identical and
// (b) at least one was served from the leader's shared payload
// (rc_http_coalesced_total > 0).
func TestCoalescedResponsesByteIdentical(t *testing.T) {
	s, ts := testServer(t)

	const callers = 8
	bodies := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/zoo?limit=5")
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("caller %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}()
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("caller %d body differs from caller 0:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	if n := s.reg.Value("rc_http_coalesced_total", "/v1/zoo"); n < 1 {
		t.Fatalf("rc_http_coalesced_total{/v1/zoo} = %v, want ≥ 1", n)
	}
}

// TestAtlasLeaderFailureFollowersRecompute is the serve-level leader-
// failure test: a leader whose client disconnects mid-census must not
// hang followers, poison them with its error, or cache anything — the
// follower recomputes under its own context and succeeds.
func TestAtlasLeaderFailureFollowersRecompute(t *testing.T) {
	_, ts := testServer(t)
	const path = "/v1/atlas?states=2&ops=2&resps=1&random=300&mutants=0&limit=3"

	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		req, err := http.NewRequestWithContext(leaderCtx, http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(30 * time.Millisecond) // leader's census is in flight

	followerStatus := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			followerStatus <- 0
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		followerStatus <- resp.StatusCode
	}()
	time.Sleep(30 * time.Millisecond) // follower is parked on the leader
	leaderCancel()
	<-leaderDone

	select {
	case status := <-followerStatus:
		if status != http.StatusOK {
			t.Fatalf("follower after leader cancel = %d, want 200", status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("follower hung after leader failure")
	}

	// Nothing poisonous was cached: a fresh request succeeds too.
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-failure request = %d, want 200", resp.StatusCode)
	}
}

// ---- rate limiting ----

// TestRateLimiterBucket unit-tests the token bucket against a fake
// clock: burst spends, refill restores, and the Retry-After hint is
// positive when empty.
func TestRateLimiterBucket(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRateLimiter(2, 3) // 2 tokens/s, burst 3
	l.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := l.allow("c")
	if ok {
		t.Fatal("4th immediate request allowed past burst 3")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint = %v, want (0, 1s] at 2 tokens/s", retry)
	}

	now = now.Add(time.Second) // refills 2 tokens
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("request after refill rejected")
	}
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("second request after refill rejected")
	}
	if ok, _ := l.allow("c"); ok {
		t.Fatal("third request after 1s refill allowed (only 2 tokens refilled)")
	}

	// Distinct clients have independent buckets.
	if ok, _ := l.allow("other"); !ok {
		t.Fatal("fresh client rejected while another is limited")
	}
}

// TestRateLimitEndToEnd runs a -rate server: past the burst the client
// gets 429 with a Retry-After hint, the "limited" counter increments,
// and unlimited routes (/healthz, /metrics) stay reachable.
func TestRateLimitEndToEnd(t *testing.T) {
	s, ts := testServer(t, "-rate", "0.5", "-burst", "2")

	var got429 int
	var retryAfter string
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/mc/targets")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			got429++
			retryAfter = resp.Header.Get("Retry-After")
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d", i, resp.StatusCode)
		}
	}
	if got429 == 0 {
		t.Fatal("5 rapid requests at burst 2 never hit 429")
	}
	if v, err := strconv.Atoi(retryAfter); err != nil || v < 1 {
		t.Fatalf("Retry-After = %q, want an integer ≥ 1", retryAfter)
	}
	if n := s.reg.Value("rc_http_rate_limited_total", "/v1/mc/targets"); int(n) != got429 {
		t.Fatalf("rc_http_rate_limited_total = %v, want %d", n, got429)
	}

	// Probes and scrapes bypass the limiter.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s while limited = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestRateLimitFlagValidation: nonsense flag combinations must be
// rejected at startup, not silently accepted.
func TestRateLimitFlagValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-rate", "-1"}); err == nil {
		t.Fatal("negative -rate accepted")
	}
	if _, err := parseFlags([]string{"-rate", "5", "-burst", "0"}); err == nil {
		t.Fatal("-burst 0 with -rate accepted")
	}
	if _, err := parseFlags([]string{"-burst", "0"}); err != nil {
		t.Fatalf("-burst without -rate should be ignored: %v", err)
	}
}
