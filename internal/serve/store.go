package serve

// The /v1/store routes are the peer side of the store's read-through
// tiering (see internal/store): replicas fetch each other's entries as
// raw envelopes and re-verify checksum and identity on receipt, so a
// confused peer can degrade a fleet to recomputation but never poison
// it. These routes serve infrastructure traffic between replicas, so
// they bypass the per-client rate limiter and the in-flight cap — a
// throttled peer fetch would silently turn fleet-wide cache hits into
// recomputed searches. Compaction, in contrast, is an operator action
// and goes through the normal limits.

import (
	"io"
	"net/http"
)

// handleStoreGet serves GET /v1/store/{kind}/{addr}: the verified raw
// envelope bytes at that address, 404 when absent (or when this replica
// has no local store to serve from).
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, "this replica has no local store")
		return
	}
	raw, ok, err := s.store.GetRaw(r.PathValue("kind"), r.PathValue("addr"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no entry at this address")
		return
	}
	writeRawJSON(w, http.StatusOK, raw)
}

// handleStorePut accepts PUT /v1/store/{kind}/{addr}: a diskless worker
// (or a healing chain) contributing an entry. The envelope is fully
// re-verified — version, kind, payload checksum, and that its identity
// hashes to the address it was sent for — before anything is stored.
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, "this replica has no local store")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "envelope too large or unreadable")
		return
	}
	if err := s.store.PutRaw(r.PathValue("kind"), r.PathValue("addr"), data); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleStoreCompact runs POST /v1/store/compact: the online compaction
// pass — drop quarantine debris, reconcile the entry count against the
// directory, re-apply the disk budget — and reports what it did.
func (s *Server) handleStoreCompact(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, "this replica has no local store")
		return
	}
	cs, err := s.store.Compact(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.logger.Info("store compacted",
		"quarantineRemoved", cs.QuarantineRemoved,
		"entries", cs.EntriesAfter, "bytes", cs.BytesAfter, "evicted", cs.Evicted)
	writeJSON(w, http.StatusOK, cs)
}
