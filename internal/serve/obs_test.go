package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"rcons/internal/engine"
	"rcons/internal/jobs"
)

// TestMetricsEndpoint drives real traffic through the server and then
// checks /metrics: exposition content type, the http series the
// middleware maintains, and the func-backed engine series.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)

	getJSON(t, ts.URL+"/v1/classify?type=S_3&limit=4", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/classify?type=S_3&limit=4", http.StatusOK, nil)
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`rc_http_requests_total{method="GET",path="/v1/classify",code="200"} 2`,
		`rc_http_requests_total{method="GET",path="/healthz",code="200"} 1`,
		"# TYPE rc_http_request_duration_seconds histogram",
		`rc_http_request_duration_seconds_count{path="/v1/classify"} 2`,
		"rc_http_in_flight 0",
		"# TYPE rc_engine_memo_hits_total counter",
		"rc_engine_memo_misses_total",
		"rc_jobs_done_total 0",
		"rc_jobs_workers 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHealthzMatchesMetrics asserts the tentpole's single-source-of-
// truth property: the counters /healthz reports are exactly the values
// the registry serves on /metrics, because both read the same
// func-backed series.
func TestHealthzMatchesMetrics(t *testing.T) {
	s, ts := testServer(t)

	// Generate some engine traffic so the counters are non-zero.
	getJSON(t, ts.URL+"/v1/classify?type=S_3&limit=4", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/classify?type=S_3&limit=4", http.StatusOK, nil)

	var health struct {
		Cache engine.CacheStats `json:"cache"`
		Jobs  jobs.Stats        `json:"jobs"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Cache.Misses == 0 {
		t.Fatal("expected engine misses after classification traffic")
	}

	if got := int64(s.reg.Value("rc_engine_memo_hits_total")); got != health.Cache.Hits {
		t.Errorf("registry hits %d != healthz hits %d", got, health.Cache.Hits)
	}
	if got := int64(s.reg.Value("rc_engine_memo_misses_total")); got != health.Cache.Misses {
		t.Errorf("registry misses %d != healthz misses %d", got, health.Cache.Misses)
	}
	if got := int(s.reg.Value("rc_jobs_workers")); got != health.Jobs.Workers {
		t.Errorf("registry workers %d != healthz workers %d", got, health.Jobs.Workers)
	}
}

// TestShedMetric fills the in-flight slots and checks that a shed
// request is counted with its outcome label and a 503.
func TestShedMetric(t *testing.T) {
	s, ts := testServer(t, "-max-inflight", "1")
	// Occupy the only slot directly.
	s.inflight <- struct{}{}
	defer func() { <-s.inflight }()

	resp, err := http.Get(ts.URL + "/v1/classify?type=S_3&limit=4")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := s.reg.Value("rc_http_shed_total", "/v1/classify"); got != 1 {
		t.Errorf("rc_http_shed_total = %v, want 1", got)
	}
	if got := s.reg.Value("rc_http_requests_total", "GET", "/v1/classify", "503"); got != 1 {
		t.Errorf("rc_http_requests_total{503} = %v, want 1", got)
	}
}

// TestJobMetricsAfterRun submits a job and checks the job + mc series.
func TestJobMetricsAfterRun(t *testing.T) {
	s, ts := testServer(t)

	body := strings.NewReader(`{"kind":"mc","params":{"target":"team-sn","n":2,"depth":4}}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var info jobs.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if done := pollJob(t, ts.URL, info.ID); done.State != string(jobs.StateDone) {
		t.Fatalf("job finished %s: %s", done.State, done.Error)
	}

	if got := s.reg.Value("rc_jobs_done_total"); got != 1 {
		t.Errorf("rc_jobs_done_total = %v, want 1", got)
	}
	if got := s.reg.Value("rc_mc_runs_total"); got != 1 {
		t.Errorf("rc_mc_runs_total = %v, want 1", got)
	}
	if got := s.reg.Value("rc_mc_nodes_total"); got <= 0 {
		t.Errorf("rc_mc_nodes_total = %v, want > 0", got)
	}
	// The progress sink mirrored the run's final state into the gauges.
	if got := s.reg.Value("rc_progress_nodes", "mc"); got <= 0 {
		t.Errorf("rc_progress_nodes{mc} = %v, want > 0", got)
	}
	if got := s.reg.Value("rc_progress_frontier", "mc"); got != 0 {
		t.Errorf("rc_progress_frontier{mc} = %v, want 0 after the run", got)
	}

	// A violating run stops early with most roots unclaimed — the
	// sensitive case for the frontier's exact accounting (there is no
	// blanket end-of-round reset hiding a leak).
	body = strings.NewReader(`{"kind":"mc","params":{"target":"unsafe-noyield","n":2,"depth":12}}`)
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if done := pollJob(t, ts.URL, info.ID); done.State != string(jobs.StateDone) {
		t.Fatalf("violating job finished %s: %s", done.State, done.Error)
	}
	if got := s.reg.Value("rc_progress_frontier", "mc"); got != 0 {
		t.Errorf("rc_progress_frontier{mc} = %v, want 0 after early stop", got)
	}
}

// TestPprofFlag checks that /debug/pprof is absent by default and
// served under -pprof.
func TestPprofFlag(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("without -pprof: /debug/pprof/cmdline = %d, want 404", resp.StatusCode)
	}

	_, ts2 := testServer(t, "-pprof")
	resp, err = http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("with -pprof: /debug/pprof/cmdline = %d, want 200", resp.StatusCode)
	}
}

// TestLogFlagsValidation pins the new flag validation.
func TestLogFlagsValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-log-format", "xml"}); err == nil {
		t.Error("bad -log-format accepted")
	}
	if _, err := parseFlags([]string{"-log-level", "verbose"}); err == nil {
		t.Error("bad -log-level accepted")
	}
	if _, err := parseFlags([]string{"-log-format", "json", "-log-level", "debug"}); err != nil {
		t.Errorf("valid log flags rejected: %v", err)
	}
}
