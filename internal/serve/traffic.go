package serve

// Traffic hardening: in-flight request coalescing, per-client rate
// limiting, and the batch classification endpoint. These are the
// defenses that keep a thundering herd of identical expensive queries
// (or one over-eager client) from multiplying engine load, and the
// bulk path that amortizes HTTP overhead across many classifications.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// ---- request coalescing ----

// coalesced serves one expensive request through the server's
// singleflight group: concurrent requests whose keys match share a
// single computation, and every caller receives a byte-identical copy
// of the leader's encoded payload. A leader whose compute fails (its
// client hung up, the search errored) reports only to itself —
// waiting followers elect a new leader and recompute rather than
// inheriting the error, and a follower whose own context ends stops
// waiting immediately. compute must capture the caller's own request
// context so a re-elected leader runs under a live deadline.
//
// Keys are prefixed by the route, so equal parameter strings on
// different endpoints never collide. Note the key-granularity choice
// for classification: the ISSUE-level idea "share by canonical
// fingerprint" is deliberately narrowed to the exact fingerprint,
// because responses embed concrete state/op labels (witness schedules,
// type names) that differ between isomorphic-but-relabeled tables.
func (s *Server) coalesced(w http.ResponseWriter, r *http.Request, path, key string, compute func() ([]byte, error)) {
	payload, shared, err := s.flights.Do(r.Context(), path+"|"+key, compute)
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	if shared {
		s.m.coalesced.With(path).Inc()
	}
	writeRawJSON(w, http.StatusOK, payload)
}

// ---- per-client rate limiting ----

// rateLimiterMaxClients bounds the bucket table; past it, idle (fully
// refilled) buckets are pruned. A full bucket is indistinguishable
// from a brand-new one, so pruning never changes any client's outcome.
const rateLimiterMaxClients = 4096

// rateLimiter is a classic token bucket per client key: each request
// spends one token, tokens refill at rate/s up to burst. It deliberately
// charges a batch request one token — bulk endpoints are the sanctioned
// way to ask for more work per request.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate, burst float64) *rateLimiter {
	return &rateLimiter{
		rate:    rate,
		burst:   burst,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token from key's bucket. When the bucket is empty it
// returns false and how long until one token will have refilled.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= rateLimiterMaxClients {
			l.prune(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens = min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// prune drops fully-refilled buckets (callers holding l.mu).
func (l *rateLimiter) prune(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// rateLimited applies the per-client token bucket before h. Clients are
// keyed by remote host (the port changes per connection). A rejected
// request gets 429 with a Retry-After hint and the "limited" outcome —
// distinct from "shed" (503 at the in-flight cap): limited means THIS
// client is over its budget, shed means the SERVER is at capacity.
func (s *Server) rateLimited(h http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		if ok, retry := s.limiter.allow(host); !ok {
			markOutcome(w, "limited")
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(max(retry.Seconds(), 1)))))
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded, retry later")
			return
		}
		h(w, r)
	}
}

// ---- batch classification ----

// batchMaxItems caps the types per batch request; large collections
// split into several requests (each still costs one rate-limit token).
const batchMaxItems = 256

// batchItem is one entry of a batch request: exactly one of Type (a
// built-in name) or Table (a custom transition table, the same JSON
// shape POST /v1/classify accepts) must be set.
type batchItem struct {
	Type  string          `json:"type,omitempty"`
	Table json.RawMessage `json:"table,omitempty"`
}

type batchRequest struct {
	Limit int         `json:"limit"`
	Items []batchItem `json:"items"`
}

// batchResult reports one item's outcome: a classification, or the
// item's own error. A bad item never fails the batch — per-item errors
// are the point of the bulk endpoint.
type batchResult struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Classification carries the pre-encoded payload (the same bytes
	// the item memo and /v1/classify serve), embedded verbatim instead
	// of being re-marshaled per batch.
	Classification json.RawMessage `json:"classification,omitempty"`
}

// handleClassifyBatch classifies many types in one request:
//
//	POST /v1/classify/batch
//	{"limit": 4, "items": [{"type": "S_3"}, {"table": {...}}, ...]}
//
// Built-in names and custom tables mix freely. Items run concurrently
// on the engine's worker pool, so a batch of B types costs far less
// than B round trips; each item reports its own error or its
// classification (canonical fingerprint included).
func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
		} else {
			writeError(w, http.StatusBadRequest, "could not read request body")
		}
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid batch request: %v", err))
		return
	}
	limit := req.Limit
	if limit == 0 {
		limit = min(6, s.cfg.maxLimit)
	}
	if limit < 2 || limit > s.cfg.maxLimit {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("limit must be in [2, %d], got %d", s.cfg.maxLimit, limit))
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: provide at least one item")
		return
	}
	if len(req.Items) > batchMaxItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d items exceeds this server's cap of %d", len(req.Items), batchMaxItems))
		return
	}

	// Resolve items first so malformed ones consume no engine time, then
	// classify the resolvable ones concurrently. Items already in the
	// encoded-classification memo are answered before parsing; the rest
	// go through ClassifyEach, which keeps per-item errors isolated: a
	// type a theorem rejects reports in its own slot without disturbing
	// its neighbors.
	results := make([]batchResult, len(req.Items))
	var ts []spec.Type
	var idx []int
	var keys []string
	for i, item := range req.Items {
		if item.Type != "" && item.Table != nil {
			results[i] = batchResult{Error: "set either type or table, not both"}
			continue
		}
		if item.Type == "" && item.Table == nil {
			results[i] = batchResult{Error: "item needs a type name or a table"}
			continue
		}
		key := classifyItemKey(item.Type, item.Table, limit)
		if payload, hit := s.itemGet(key); hit {
			results[i] = batchResult{OK: true, Classification: json.RawMessage(payload)}
			continue
		}
		var t spec.Type
		var err error
		if item.Type != "" {
			t, err = types.ByName(item.Type)
		} else {
			t, err = types.NewCustomFromJSON(item.Table)
		}
		if err != nil {
			results[i] = batchResult{Error: err.Error()}
			continue
		}
		ts = append(ts, t)
		idx = append(idx, i)
		keys = append(keys, key)
	}
	out, errs := s.eng.ClassifyEach(r.Context(), ts, limit)
	// The whole batch failing on the request's own context is a request-
	// level condition (deadline, disconnect), not per-item noise.
	if err := r.Context().Err(); err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	for j, i := range idx {
		if errs[j] != nil {
			results[i] = batchResult{Error: errs[j].Error()}
			continue
		}
		enc := s.encodeClassificationWithFP(out[j], ts[j], limit)
		payload, err := marshalJSON(enc)
		if err != nil {
			results[i] = batchResult{Error: err.Error()}
			continue
		}
		s.itemPut(keys[j], payload)
		results[i] = batchResult{OK: true, Classification: json.RawMessage(payload)}
	}
	ok := 0
	for _, res := range results {
		if res.OK {
			ok++
		}
	}
	// Assemble the response by hand: the item payloads are JSON we
	// marshaled ourselves, so splicing them verbatim skips a full
	// re-encode (and re-compaction) of what is by far the largest part
	// of the body. The envelope counters deliberately precede the items
	// array — clients that only want the tallies (rcload) can stop
	// parsing before the bulk.
	var buf bytes.Buffer
	buf.Grow(64 + len(results)*1024)
	fmt.Fprintf(&buf, `{"limit":%d,"count":%d,"ok":%d,"items":[`, limit, len(results), ok)
	for i := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		if results[i].OK {
			buf.WriteString(`{"ok":true,"classification":`)
			buf.Write(bytes.TrimSuffix(results[i].Classification, []byte("\n")))
			buf.WriteByte('}')
		} else {
			item, err := marshalJSON(results[i])
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			buf.Write(bytes.TrimSuffix(item, []byte("\n")))
		}
	}
	buf.WriteString("]}\n")
	writeRawJSON(w, http.StatusOK, buf.Bytes())
}
