package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"rcons/internal/jobs"
)

// leakCheck snapshots the goroutine count and, after every cleanup
// registered later has run (server closed, jobs drained), polls until
// the count is back at the baseline. A telemetry goroutine that
// outlives -drain — a progress publisher left running, a sink still
// flushing — fails the test here with a full stack dump.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak after teardown: %d before, %d now\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// jobInfoJSON mirrors the wire form of jobs.Info.
type jobInfoJSON struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind"`
	State     string          `json:"state"`
	Params    json.RawMessage `json:"params"`
	Result    json.RawMessage `json:"result"`
	Error     string          `json:"error"`
	FromStore bool            `json:"fromStore"`
}

func postJob(t *testing.T, url, body string, wantStatus int) jobInfoJSON {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info jobInfoJSON
	if resp.StatusCode != wantStatus {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/jobs %s = %d (want %d): %v", body, resp.StatusCode, wantStatus, e)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode job response: %v", err)
	}
	return info
}

func pollJob(t *testing.T, url, id string) jobInfoJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var info jobInfoJSON
		getJSON(t, url+"/v1/jobs/"+id, http.StatusOK, &info)
		switch info.State {
		case string(jobs.StateDone), string(jobs.StateFailed), string(jobs.StateCancelled):
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobInfoJSON{}
}

// TestJobsEndToEnd submits a census job, polls it to completion, and
// checks coalescing of an equivalent (differently-spelled) submission.
func TestJobsEndToEnd(t *testing.T) {
	_, ts := testServer(t)

	info := postJob(t, ts.URL, `{"kind":"census","params":{"states":2,"ops":2,"random":50}}`, http.StatusAccepted)
	if info.ID == "" || info.Kind != "census" {
		t.Fatalf("submit: %+v", info)
	}
	// Equivalent params (defaults spelled out, different key order) must
	// coalesce onto the same job with a 200.
	dup := postJob(t, ts.URL,
		`{"kind":"census","params":{"random":50,"ops":2,"states":2,"resps":1,"mutants":1,"seed":1,"limit":3}}`,
		http.StatusOK)
	if dup.ID != info.ID {
		t.Fatalf("equivalent submissions got distinct jobs: %s vs %s", dup.ID, info.ID)
	}
	done := pollJob(t, ts.URL, info.ID)
	if done.State != string(jobs.StateDone) || done.Error != "" {
		t.Fatalf("job finished badly: %+v", done)
	}
	var summary struct {
		Types      int            `json:"types"`
		RconsBands map[string]int `json:"rconsBands"`
	}
	if err := json.Unmarshal(done.Result, &summary); err != nil {
		t.Fatalf("census result: %v (%s)", err, done.Result)
	}
	if summary.Types == 0 || len(summary.RconsBands) == 0 {
		t.Fatalf("census result empty: %+v", summary)
	}
	// Distinct params → distinct job.
	other := postJob(t, ts.URL, `{"kind":"census","params":{"states":2,"ops":2,"random":51}}`, http.StatusAccepted)
	if other.ID == info.ID {
		t.Fatal("different params share a job ID")
	}
}

func TestJobsZooAndMcKinds(t *testing.T) {
	_, ts := testServer(t)

	zoo := postJob(t, ts.URL, `{"kind":"zoo","params":{"limit":3}}`, http.StatusAccepted)
	done := pollJob(t, ts.URL, zoo.ID)
	if done.State != string(jobs.StateDone) {
		t.Fatalf("zoo job: %+v", done)
	}
	var zr struct {
		Count   int `json:"count"`
		Results []struct {
			Type string `json:"type"`
		} `json:"results"`
	}
	if err := json.Unmarshal(done.Result, &zr); err != nil || zr.Count == 0 || len(zr.Results) != zr.Count {
		t.Fatalf("zoo result: %v %+v", err, zr)
	}

	mcj := postJob(t, ts.URL, `{"kind":"mc","params":{"target":"team-sn","n":2,"depth":8,"crashes":1}}`, http.StatusAccepted)
	done = pollJob(t, ts.URL, mcj.ID)
	if done.State != string(jobs.StateDone) {
		t.Fatalf("mc job: %+v", done)
	}
	var mr struct {
		Safe       bool `json:"safe"`
		Exhaustive bool `json:"exhaustive"`
	}
	if err := json.Unmarshal(done.Result, &mr); err != nil || !mr.Safe || !mr.Exhaustive {
		t.Fatalf("mc result: %v %+v", err, mr)
	}
}

func TestJobsValidation(t *testing.T) {
	_, ts := testServer(t)
	for name, body := range map[string]string{
		"unknown kind":        `{"kind":"frobnicate","params":{}}`,
		"malformed body":      `{kind:`,
		"unknown param":       `{"kind":"census","params":{"stats":3}}`,
		"census over cap":     `{"kind":"census","params":{"random":1000000}}`,
		"census nothing":      `{"kind":"census","params":{"states":0,"ops":0,"random":0,"mutants":0}}`,
		"mc missing target":   `{"kind":"mc","params":{}}`,
		"mc unknown target":   `{"kind":"mc","params":{"target":"nope"}}`,
		"mc depth over cap":   `{"kind":"mc","params":{"target":"cas","depth":99}}`,
		"mc target/n clash":   `{"kind":"mc","params":{"target":"unsafe-yieldalways","n":2}}`,
		"zoo limit over cap":  `{"kind":"zoo","params":{"limit":99}}`,
		"zoo limit too small": `{"kind":"zoo","params":{"limit":1}}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("POST %s = %d, want 400", body, resp.StatusCode)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
				t.Fatalf("error payload: %v %v", e, err)
			}
		})
	}
	// Unknown job ID and wrong methods.
	getJSON(t, ts.URL+"/v1/jobs/jdoesnotexist", http.StatusNotFound, nil)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/jdoesnotexist", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job = %d", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", strings.NewReader("{}"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/jobs = %d", resp.StatusCode)
	}
}

func TestJobsListing(t *testing.T) {
	s, ts := testServer(t)
	a := postJob(t, ts.URL, `{"kind":"zoo","params":{"limit":3}}`, http.StatusAccepted)
	pollJob(t, ts.URL, a.ID)
	var list struct {
		Count int           `json:"count"`
		Jobs  []jobInfoJSON `json:"jobs"`
		Kinds []string      `json:"kinds"`
	}
	getJSON(t, ts.URL+"/v1/jobs", http.StatusOK, &list)
	if list.Count == 0 || len(list.Jobs) != list.Count {
		t.Fatalf("listing: %+v", list)
	}
	if want := []string{"census", "mc", "zoo"}; fmt.Sprint(list.Kinds) != fmt.Sprint(want) {
		t.Fatalf("kinds = %v, want %v", list.Kinds, want)
	}
	for _, j := range list.Jobs {
		if len(j.Result) != 0 || len(j.Params) != 0 {
			t.Fatalf("listing leaks payloads: %+v", j)
		}
	}
	_ = s
}

// TestJobCancelMidRun registers a test-only blocking kind directly on
// the manager and cancels it while running.
func TestJobCancelMidRun(t *testing.T) {
	s, ts := testServer(t)
	release := make(chan struct{})
	s.jobs.Register("block", func(ctx context.Context, _ json.RawMessage) (json.RawMessage, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return json.RawMessage(`{}`), nil
		}
	})
	defer close(release)
	info, existing, err := s.jobs.Submit(context.Background(), "block", json.RawMessage(`{"i":1}`))
	if err != nil || existing {
		t.Fatalf("submit: %v existing=%v", err, existing)
	}
	// Wait until it is actually running, then cancel over HTTP.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := s.jobs.Get(info.ID)
		if got.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE running job = %d", resp.StatusCode)
	}
	final := pollJob(t, ts.URL, info.ID)
	if final.State != string(jobs.StateCancelled) {
		t.Fatalf("after cancel: %+v", final)
	}
	// Cancelling a finished job conflicts.
	done := postJob(t, ts.URL, `{"kind":"zoo","params":{"limit":3}}`, http.StatusAccepted)
	pollJob(t, ts.URL, done.ID)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+done.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE done job = %d, want 409", resp.StatusCode)
	}
}

// TestJobsSurviveRestart is the PR's acceptance test: a census job's
// result must be served from the on-disk store after a full server
// restart — same store dir, brand-new server, engine and job manager —
// and the duplicate submission must return the same job ID without
// recomputation.
func TestJobsSurviveRestart(t *testing.T) {
	leakCheck(t)
	dir := t.TempDir()
	body := `{"kind":"census","params":{"states":2,"ops":2,"random":60}}`

	cfg, err := parseFlags([]string{"-workers", "4", "-store", dir})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	first := postJob(t, ts1.URL, body, http.StatusAccepted)
	done := pollJob(t, ts1.URL, first.ID)
	if done.State != string(jobs.StateDone) {
		t.Fatalf("first run: %+v", done)
	}
	// Stop the world: server closed, manager drained.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()

	// Restart on the same store directory.
	s2, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(func() { _ = s2.drainJobs(ctx) })

	engineSearches := s2.eng.Stats()
	again := postJob(t, ts2.URL, body, http.StatusOK)
	if again.ID != first.ID {
		t.Fatalf("restarted submission got a new ID: %s vs %s", again.ID, first.ID)
	}
	if again.State != string(jobs.StateDone) || !again.FromStore {
		t.Fatalf("restarted submission not served from store: %+v", again)
	}
	if string(again.Result) != string(done.Result) {
		t.Fatalf("stored result differs across restart:\n%s\nvs\n%s", again.Result, done.Result)
	}
	// No recomputation: the engine never ran a search for it.
	after := s2.eng.Stats()
	if after.Misses != engineSearches.Misses || after.PersistMisses != engineSearches.PersistMisses {
		t.Fatalf("restarted submission recomputed: %+v vs %+v", after, engineSearches)
	}
	// And the store-backed /healthz shows the store.
	var health struct {
		Status string `json:"status"`
		Store  *struct {
			Entries int64 `json:"entries"`
		} `json:"store"`
		Jobs struct {
			StoreHits int64 `json:"storeHits"`
		} `json:"jobs"`
	}
	getJSON(t, ts2.URL+"/healthz", http.StatusOK, &health)
	if health.Store == nil || health.Store.Entries == 0 {
		t.Fatalf("healthz store stats missing: %+v", health)
	}
	if health.Jobs.StoreHits != 1 {
		t.Fatalf("healthz job stats: %+v", health.Jobs)
	}
}

// TestServerDrain checks the graceful-shutdown satellite: drain waits
// for in-flight limited handlers and running jobs.
func TestServerDrain(t *testing.T) {
	s, _ := testServer(t)
	release := make(chan struct{})
	s.jobs.Register("block", func(ctx context.Context, _ json.RawMessage) (json.RawMessage, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return json.RawMessage(`{"finished":true}`), nil
		}
	})
	info, _, err := s.jobs.Submit(context.Background(), "block", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy an in-flight slot like a running handler would.
	s.inflight <- struct{}{}
	go func() {
		time.Sleep(50 * time.Millisecond)
		<-s.inflight // handler finishes
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	got, _ := s.jobs.Get(info.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("job not drained to completion: %+v", got)
	}
	// After drain, submissions shed.
	if _, _, err := s.jobs.Submit(context.Background(), "block", nil); err == nil {
		t.Fatal("submit accepted after drain")
	}
}

// TestHealthzJobStats checks /healthz carries queue statistics.
func TestHealthzJobStats(t *testing.T) {
	_, ts := testServer(t)
	info := postJob(t, ts.URL, `{"kind":"zoo","params":{"limit":3}}`, http.StatusAccepted)
	pollJob(t, ts.URL, info.ID)
	var health struct {
		Jobs *struct {
			Workers   int   `json:"workers"`
			Done      int64 `json:"done"`
			Submitted int64 `json:"submitted"`
		} `json:"jobs"`
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Jobs == nil || health.Jobs.Workers != 2 || health.Jobs.Done == 0 || health.Jobs.Submitted == 0 {
		t.Fatalf("healthz jobs: %+v", health.Jobs)
	}
	if health.Cache.Misses == 0 {
		t.Fatalf("healthz cache counters missing: %+v", health.Cache)
	}
}
