package serve

// Flight-recorder debug surface: GET /debug/requests summarises the
// traces the recorder currently holds (recent ring, reserved slowest,
// recent errors); GET /debug/requests/{trace} renders one trace as a
// nested span tree. Shapes are JSON-stable for the CI smoke test:
// every list field is always an array, never null.

import (
	"net/http"
	"sort"
	"time"

	"rcons/internal/obs"
)

// debugSummary is one trace's row in the /debug/requests listing.
type debugSummary struct {
	Trace      string  `json:"trace"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Err        bool    `json:"err"`
	Spans      int     `json:"spans"`
}

// debugSpanNode is one span in the nested tree view. Start is the
// offset from the trace's own start, so a tree reads as a waterfall
// without the reader subtracting wall-clock timestamps.
type debugSpanNode struct {
	ID         uint32           `json:"id"`
	Name       string           `json:"name"`
	StartUS    int64            `json:"start_us"`
	DurationUS int64            `json:"duration_us"`
	Err        bool             `json:"err,omitempty"`
	Attrs      []obs.Attr       `json:"attrs"`
	Spans      []*debugSpanNode `json:"spans"`
}

func summarize(trs []*obs.TraceRecord) []debugSummary {
	out := make([]debugSummary, 0, len(trs))
	for _, tr := range trs {
		out = append(out, debugSummary{
			Trace:      tr.TraceID,
			Name:       tr.Name,
			Start:      tr.Start.UTC().Format(time.RFC3339Nano),
			DurationMS: float64(tr.Duration) / float64(time.Millisecond),
			Err:        tr.Err,
			Spans:      len(tr.Spans),
		})
	}
	return out
}

// spanTree rebuilds the parent/child nesting from the flat span list.
// Spans whose parent was dropped at the per-trace cap surface as extra
// roots rather than vanishing.
func spanTree(tr *obs.TraceRecord) []*debugSpanNode {
	nodes := make(map[uint32]*debugSpanNode, len(tr.Spans))
	for _, sp := range tr.Spans {
		attrs := sp.Attrs
		if attrs == nil {
			attrs = []obs.Attr{}
		}
		nodes[sp.ID] = &debugSpanNode{
			ID:         sp.ID,
			Name:       sp.Name,
			StartUS:    sp.Start.Sub(tr.Start).Microseconds(),
			DurationUS: sp.Duration.Microseconds(),
			Err:        sp.Err,
			Attrs:      attrs,
			Spans:      []*debugSpanNode{},
		}
	}
	roots := []*debugSpanNode{}
	for _, sp := range tr.Spans {
		n := nodes[sp.ID]
		if parent, ok := nodes[sp.Parent]; ok && sp.Parent != sp.ID {
			parent.Spans = append(parent.Spans, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(ns []*debugSpanNode) {
		sort.SliceStable(ns, func(i, j int) bool {
			if ns[i].StartUS != ns[j].StartUS {
				return ns[i].StartUS < ns[j].StartUS
			}
			return ns[i].ID < ns[j].ID
		})
	}
	for _, n := range nodes {
		byStart(n.Spans)
	}
	byStart(roots)
	return roots
}

// handleDebugRequests serves the recorder summary.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	rec := s.recorder
	writeJSON(w, http.StatusOK, map[string]any{
		"sampled":  rec.Total(),
		"capacity": rec.Capacity(),
		"recent":   summarize(rec.Recent()),
		"slowest":  summarize(rec.Slowest()),
		"errored":  summarize(rec.Errored()),
	})
}

// handleDebugRequestsTrace serves one trace's full span tree.
func (s *Server) handleDebugRequestsTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("trace")
	tr := s.recorder.Lookup(id)
	if tr == nil {
		writeError(w, http.StatusNotFound, "trace not held by the recorder (rotated out, unsampled, or never seen)")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trace":       tr.TraceID,
		"name":        tr.Name,
		"start":       tr.Start.UTC().Format(time.RFC3339Nano),
		"duration_ms": float64(tr.Duration) / float64(time.Millisecond),
		"err":         tr.Err,
		"dropped":     tr.Dropped,
		"spans":       spanTree(tr),
	})
}
