// Package serve implements the rcserve HTTP service (cmd/rcserve is a
// thin wrapper around Run). It exposes the parallel classification engine
// (internal/engine) as an HTTP JSON service, turning the paper's
// decision procedures into a queryable recoverable-consensus hierarchy:
//
//	GET  /v1/classify?type=S_3&limit=6   classify a built-in type
//	POST /v1/classify?limit=6            classify a custom JSON transition table
//	POST /v1/classify/batch              classify up to 256 types in one request
//	                                     ({"limit","items":[{"type"}|{"table"}]});
//	                                     per-item errors, a bad item never
//	                                     fails the batch
//	GET  /v1/search?type=T_5&property=recording&n=3
//	GET  /v1/zoo?limit=5                 classify the whole built-in zoo
//	GET  /v1/mc?target=team-sn&n=2&depth=8&crashes=1
//	                                     model-check an RC protocol; violations
//	                                     come back as replayable schedules
//	GET  /v1/mc/targets                  list the model-checkable protocols
//	GET  /v1/atlas?states=2&ops=2&random=500&limit=3
//	                                     census summary over a small generated
//	                                     type universe (memoized; deterministic)
//	GET  /v1/atlas/type?seed=42&states=3&ops=2&resps=2
//	                                     generate + classify one seeded type
//	POST /v1/jobs                        submit async work ({"kind","params"});
//	                                     kinds: census, mc, zoo. Duplicate
//	                                     submissions coalesce onto one job ID.
//	GET  /v1/jobs                        list retained jobs
//	GET  /v1/jobs/{id}                   job status + result when done
//	DELETE /v1/jobs/{id}                 cancel a queued/running job
//	GET  /v1/store/{kind}/{addr}         serve one store entry (raw verified
//	                                     envelope) to a peer replica
//	PUT  /v1/store/{kind}/{addr}         accept an entry from a peer; fully
//	                                     re-verified before storage
//	POST /v1/store/compact               run the store compaction pass
//	GET  /healthz                        liveness + cache/store/queue statistics
//
// One engine (and therefore one memoization cache) is shared by all
// requests, so repeated and overlapping queries are served from cache.
// Requests are bounded: limits/levels are capped, request bodies are
// size-limited, each request gets a deadline, and an in-flight cap sheds
// load with 503 instead of queueing unboundedly. Work that outlives a
// request deadline goes through /v1/jobs instead: submissions return a
// deterministic job ID derived from the request fingerprint and execute
// on a bounded worker pool.
//
// Traffic hardening: concurrent requests with identical keys on the
// expensive routes (/v1/classify, /v1/search, /v1/zoo, /v1/mc,
// /v1/atlas) coalesce onto one computation and share byte-identical
// response bytes (rc_http_coalesced_total), a bounded response memo
// answers repeated classify/zoo requests without re-entering the
// engine, and -rate/-burst give each client (keyed by remote host) a
// token bucket — over-budget requests get 429 with Retry-After
// (rc_http_rate_limited_total), distinct from 503 shedding, which
// signals server saturation. cmd/rcload drives all of this as a load
// generator; the rcbench serve/* entries keep throughput and p99 under
// the regression gate.
//
// With -store DIR, results persist in a crash-safe content-addressed
// store under DIR: the engine's memoized searches, census rows and
// finished job results all survive restarts, and a resubmitted job is
// answered from disk without recomputation. The same directory can be
// warmed offline with `rcatlas census -store DIR`. -store-budget caps
// the directory's disk usage with size-aware LRU eviction, and
// -store-peer chains one or more peer replicas behind the local store:
// a local miss reads through to each peer's /v1/store routes (checksums
// re-verified on receipt), far hits heal the local tier, and a down or
// slow peer degrades to recomputation — never to failure. With peers
// but no -store, the server runs diskless against the fleet pool.
//
// On SIGINT/SIGTERM the server drains: in-flight requests finish,
// queued and running jobs get the drain timeout to complete, and
// whatever remains is cancelled.
//
// Usage:
//
//	rcserve [-addr :8372] [-workers 0] [-max-limit 6] [-cache 4096]
//	        [-timeout 30s] [-max-inflight 64] [-store DIR]
//	        [-store-budget 256M] [-store-peer URL[,URL]] [-store-peer-timeout 2s]
//	        [-job-workers 2] [-job-timeout 10m] [-drain 30s]
//	        [-rate 0] [-burst 10] [-pprof] [-log-format text] [-log-level info]
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rcons/internal/checker"
	"rcons/internal/engine"
	"rcons/internal/flight"
	"rcons/internal/jobs"
	"rcons/internal/mc"
	"rcons/internal/obs"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/store"
	"rcons/internal/types"
)

type config struct {
	addr        string
	workers     int
	maxLimit    int
	cacheSize   int
	timeout     time.Duration
	maxInflight int
	maxBody     int64
	storeDir    string
	storeBudget int64
	storePeers  []string
	peerTimeout time.Duration
	jobWorkers  int
	jobTimeout  time.Duration
	drain       time.Duration
	rate        float64
	burst       int
	pprofOn     bool
	logFormat   string
	logLevel    string
	traceSample int
	recorder    int
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("rcserve", flag.ContinueOnError)
	cfg := config{maxBody: 1 << 20}
	fs.StringVar(&cfg.addr, "addr", ":8372", "listen address")
	fs.IntVar(&cfg.workers, "workers", 0, "shard-verification workers per search (0 = all CPUs)")
	fs.IntVar(&cfg.maxLimit, "max-limit", 6, "cap on the limit/n request parameters")
	fs.IntVar(&cfg.cacheSize, "cache", 4096, "memoized search results to keep (negative disables)")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request deadline")
	fs.IntVar(&cfg.maxInflight, "max-inflight", 64, "concurrent requests before shedding with 503")
	fs.StringVar(&cfg.storeDir, "store", "", "persist results in a content-addressed store under this directory")
	var storeBudget, storePeers string
	fs.StringVar(&storeBudget, "store-budget", "", "disk budget for the -store directory, e.g. 256M or 2G (empty = unlimited)")
	fs.StringVar(&storePeers, "store-peer", "", "comma-separated peer replica base URLs to read results through, e.g. http://replica-a:8372")
	fs.DurationVar(&cfg.peerTimeout, "store-peer-timeout", 2*time.Second, "per-fetch deadline for -store-peer reads")
	fs.IntVar(&cfg.jobWorkers, "job-workers", 2, "concurrently executing async jobs")
	fs.DurationVar(&cfg.jobTimeout, "job-timeout", 10*time.Minute, "per-job execution deadline")
	fs.DurationVar(&cfg.drain, "drain", 30*time.Second, "shutdown budget for in-flight requests and jobs")
	fs.Float64Var(&cfg.rate, "rate", 0, "per-client request rate limit in req/s on /v1 routes (0 disables)")
	fs.IntVar(&cfg.burst, "burst", 10, "per-client burst allowance when -rate is set")
	fs.BoolVar(&cfg.pprofOn, "pprof", false, "expose net/http/pprof under /debug/pprof/")
	fs.StringVar(&cfg.logFormat, "log-format", "text", "structured log format: text or json")
	fs.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.IntVar(&cfg.traceSample, "trace-sample", 1, "trace 1 in N requests into the flight recorder (1 = every request, 0 disables tracing)")
	fs.IntVar(&cfg.recorder, "recorder", 128, "completed traces the flight recorder retains for /debug/requests")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	switch cfg.logFormat {
	case "text", "json":
	default:
		return config{}, fmt.Errorf("-log-format must be text or json, got %q", cfg.logFormat)
	}
	switch cfg.logLevel {
	case "debug", "info", "warn", "error":
	default:
		return config{}, fmt.Errorf("-log-level must be debug, info, warn or error, got %q", cfg.logLevel)
	}
	if cfg.maxLimit < 2 {
		return config{}, fmt.Errorf("-max-limit must be ≥ 2, got %d", cfg.maxLimit)
	}
	if cfg.maxInflight < 1 {
		return config{}, fmt.Errorf("-max-inflight must be ≥ 1, got %d", cfg.maxInflight)
	}
	if cfg.jobWorkers < 1 {
		return config{}, fmt.Errorf("-job-workers must be ≥ 1, got %d", cfg.jobWorkers)
	}
	if cfg.rate < 0 {
		return config{}, fmt.Errorf("-rate must be ≥ 0, got %g", cfg.rate)
	}
	if cfg.rate > 0 && cfg.burst < 1 {
		return config{}, fmt.Errorf("-burst must be ≥ 1 when -rate is set, got %d", cfg.burst)
	}
	if cfg.traceSample < 0 {
		return config{}, fmt.Errorf("-trace-sample must be ≥ 0, got %d", cfg.traceSample)
	}
	if cfg.recorder < 1 {
		return config{}, fmt.Errorf("-recorder must be ≥ 1, got %d", cfg.recorder)
	}
	if storeBudget != "" {
		if cfg.storeDir == "" {
			return config{}, fmt.Errorf("-store-budget requires -store")
		}
		b, err := store.ParseSize(storeBudget)
		if err != nil {
			return config{}, fmt.Errorf("-store-budget: %w", err)
		}
		cfg.storeBudget = b
	}
	if storePeers != "" {
		for _, u := range strings.Split(storePeers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.storePeers = append(cfg.storePeers, u)
			}
		}
	}
	return cfg, nil
}

// Run parses flags, starts the HTTP server and blocks until it fails
// or a SIGINT/SIGTERM triggers a graceful drain. It is the whole of
// cmd/rcserve; living here lets tests and the bench/load harnesses run
// the exact production handler in-process.
func Run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	srv, err := newServer(cfg)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	srv.logger.Info("listening",
		"addr", cfg.addr, "workers", srv.eng.Workers(),
		"maxLimit", cfg.maxLimit, "store", cfg.storeDir, "pprof", cfg.pprofOn)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		_ = srv.drainJobs(sctx)
		return err
	case <-sigc:
		// Graceful shutdown: stop accepting, let in-flight limited
		// handlers finish (Shutdown waits for active requests, and the
		// explicit drain below additionally waits until every in-flight
		// slot is released), then give queued/running jobs the remainder
		// of the budget before cancelling them. Progress publishers are
		// per-run and flushed by the runs they instrument, so a finished
		// drain leaves no telemetry goroutines behind; the access logger
		// writes synchronously and needs no flush.
		srv.logger.Info("shutting down", "drain", cfg.drain)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		serr := hs.Shutdown(ctx)
		if derr := srv.Drain(ctx); serr == nil {
			serr = derr
		}
		srv.logger.Info("drained", "err", serr)
		return serr
	}
}

// server holds the shared engine, the optional persistent store, the
// async job manager and the request-limiting state.
type Server struct {
	cfg      config
	eng      *engine.Engine
	store    *store.Store  // nil without -store
	peers    []*store.Peer // read-through tiers from -store-peer
	jobs     *jobs.Manager
	inflight chan struct{}

	// reg is this server's metrics registry (per-server, not process-
	// global, so test servers never share counters); m holds the hot-path
	// metric handles, logger the structured root logger, and progress the
	// sink long-running jobs publish live search state through.
	reg      *obs.Registry
	m        metrics
	logger   *slog.Logger
	progress obs.Sink

	// tracer samples requests into span traces; recorder is the flight
	// ring behind GET /debug/requests. Both are per-server, like reg.
	tracer   *obs.Tracer
	recorder *obs.Recorder

	// flights coalesces concurrent identical expensive requests onto one
	// computation: followers receive a byte-identical copy of the
	// leader's encoded payload. Keys are per-route (see coalesced).
	flights flight.Group[[]byte]

	// limiter is the per-client token bucket (-rate/-burst); nil when
	// rate limiting is disabled.
	limiter *rateLimiter

	// canon memoizes CanonicalFingerprint results keyed by the exact
	// (label-sensitive) fingerprint: the canonical form is a pure
	// function of the transition structure, and its permutation
	// minimization is orders of magnitude costlier than the cache-hit
	// classification it rides along with. A bounded LRU, so a burst of
	// one-off custom types ages entries out gradually instead of wiping
	// the hot built-in entries with them.
	canon *engine.LRU[string, string]

	// atlasCache memoizes encoded census summaries by request
	// parameters; census artifacts are deterministic functions of those
	// parameters, so cached summaries are always exact. Concurrent cold
	// requests for the same key dedup through flights.
	atlasCache *engine.LRU[string, []byte]

	// items memoizes encoded classification payloads keyed by the
	// request's own bytes (built-in name or raw table JSON, plus limit)
	// — see classifyItemKey. A classification is a pure function of
	// that key, so entries can never go stale, and a hit skips JSON
	// parsing, fingerprinting and engine dispatch entirely: this is
	// what lets a warm /v1/classify/batch stream items at memory speed
	// instead of paying ~tens of µs of per-item bookkeeping. nil when
	// -cache is negative (memoization disabled server-wide).
	items *engine.LRU[string, []byte]
}

// canonCacheCap bounds the canonical-fingerprint memo (entries are two
// short hashes; the cap only guards against unbounded custom-type spam).
const canonCacheCap = 4096

// itemCacheCap bounds the encoded-classification memo; entries carry a
// full response payload (~KB), so it is kept smaller than the hash-
// sized memos.
const itemCacheCap = 2048

// NewFromFlags builds a Server from rcserve command-line flags without
// binding a listener: callers drive Handler() directly (httptest, the
// bench harness, rcload's self-serve mode) and Drain it when done.
func NewFromFlags(args ...string) (*Server, error) {
	cfg, err := parseFlags(args)
	if err != nil {
		return nil, err
	}
	return newServer(cfg)
}

func newServer(cfg config) (*Server, error) {
	s := &Server{
		cfg:        cfg,
		inflight:   make(chan struct{}, cfg.maxInflight),
		canon:      engine.NewLRU[string, string](canonCacheCap),
		atlasCache: engine.NewLRU[string, []byte](atlasCacheCap),
		reg:        obs.NewRegistry(),
		logger:     obs.NewLogger(os.Stderr, cfg.logFormat, cfg.logLevel),
	}
	s.recorder = obs.NewRecorder(cfg.recorder)
	s.tracer = obs.NewTracer(cfg.traceSample, s.recorder)
	if cfg.rate > 0 {
		s.limiter = newRateLimiter(cfg.rate, float64(cfg.burst))
	}
	if cfg.cacheSize >= 0 {
		s.items = engine.NewLRU[string, []byte](itemCacheCap)
	}
	s.progress = obs.RegistrySink(s.reg)
	// Interface-typed nils must stay nil interfaces, so only assign the
	// store once it exists.
	engOpts := engine.Options{Workers: cfg.workers, CacheSize: cfg.cacheSize}
	jobOpts := jobs.Options{
		Workers: cfg.jobWorkers,
		Timeout: cfg.jobTimeout,
		Logger:  s.logger.With("subsystem", "jobs"),
		Tracer:  s.tracer,
	}
	// Result-store tiers, nearest first: the local on-disk store (budget
	// enforced here, the single budgeted writer of its directory), then
	// each -store-peer replica. One tier plugs in directly; several
	// compose into a read-through chain that heals the local tier on far
	// hits. With peers but no -store, the server runs diskless against
	// the fleet pool.
	var tiers []store.Backend
	if cfg.storeDir != "" {
		st, err := store.Open(cfg.storeDir, store.Options{BudgetBytes: cfg.storeBudget})
		if err != nil {
			return nil, err
		}
		s.store = st
		tiers = append(tiers, st)
	}
	for _, u := range cfg.storePeers {
		p, err := store.NewPeer(u, cfg.peerTimeout)
		if err != nil {
			return nil, err
		}
		s.peers = append(s.peers, p)
		tiers = append(tiers, p)
	}
	switch {
	case len(tiers) == 1:
		engOpts.Persist = tiers[0]
		jobOpts.Store = tiers[0]
	case len(tiers) > 1:
		c := store.NewChain(tiers...)
		engOpts.Persist = c
		jobOpts.Store = c
	}
	s.eng = engine.New(engOpts)
	s.jobs = jobs.New(jobOpts)
	s.setupMetrics()
	s.registerJobKinds()
	return s, nil
}

// drainJobs shuts the job manager down within ctx.
func (s *Server) drainJobs(ctx context.Context) error {
	err := s.jobs.Drain(ctx)
	if errors.Is(err, jobs.ErrClosed) {
		return nil
	}
	return err
}

// drain completes a graceful shutdown: it waits until every in-flight
// limited handler has released its slot (acquiring all of them proves
// none is held), then drains the job manager. Jobs that outlive ctx are
// cancelled by the manager.
func (s *Server) Drain(ctx context.Context) error {
	acquired := 0
	for ; acquired < cap(s.inflight); acquired++ {
		select {
		case s.inflight <- struct{}{}:
		case <-ctx.Done():
			// Keep draining jobs even if a handler is wedged.
			for i := 0; i < acquired; i++ {
				<-s.inflight
			}
			_ = s.drainJobs(ctx)
			return ctx.Err()
		}
	}
	for i := 0; i < acquired; i++ {
		<-s.inflight
	}
	return s.drainJobs(ctx)
}

// canonicalFingerprint returns the memoized canonical fingerprint of t
// at limit ("" when the type is not canonicalizable).
func (s *Server) canonicalFingerprint(t spec.Type, limit int) string {
	exact, ok := engine.Fingerprint(t, limit)
	if !ok {
		// Not exactly fingerprintable ⇒ compute (uncached) if possible.
		fp, _ := engine.CanonicalFingerprint(t, limit)
		return fp
	}
	key := exact + "|" + strconv.Itoa(limit)
	if fp, hit := s.canon.Get(key); hit {
		return fp
	}
	fp, _ := engine.CanonicalFingerprint(t, limit)
	s.canon.Put(key, fp)
	return fp
}

// handler builds the route table. Every route passes through instrument
// (trace ID, metrics, access log); the expensive ones additionally pass
// through limited (in-flight cap + deadline). The route pattern — not
// the raw URL — is the metrics path label, keeping the label space
// bounded.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Every /v1 route passes through the per-client rate limiter (a
	// no-op without -rate); /healthz and /metrics stay unlimited so
	// probes and scrapes keep working while clients are throttled.
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(label, s.rateLimited(h)))
	}
	route("/v1/classify", "/v1/classify", s.limited(s.handleClassify))
	route("POST /v1/classify/batch", "/v1/classify/batch", s.limited(s.handleClassifyBatch))
	route("/v1/search", "/v1/search", s.limited(s.handleSearch))
	route("/v1/zoo", "/v1/zoo", s.limited(s.handleZoo))
	route("/v1/mc", "/v1/mc", s.limited(s.handleModelCheck))
	route("/v1/mc/targets", "/v1/mc/targets", s.handleModelCheckTargets)
	route("/v1/atlas", "/v1/atlas", s.limited(s.handleAtlas))
	route("/v1/atlas/type", "/v1/atlas/type", s.limited(s.handleAtlasType))
	// Peer store routes skip rateLimited and limited on purpose: they
	// carry replica-to-replica cache traffic (like /metrics scrapes),
	// and throttling them would silently convert fleet-wide store hits
	// into recomputed searches. Compaction is an operator action and
	// takes the normal limits.
	mux.HandleFunc("GET /v1/store/{kind}/{addr}",
		s.instrument("/v1/store/{kind}/{addr}", s.handleStoreGet))
	mux.HandleFunc("PUT /v1/store/{kind}/{addr}",
		s.instrument("/v1/store/{kind}/{addr}", s.handleStorePut))
	route("POST /v1/store/compact", "/v1/store/compact", s.limited(s.handleStoreCompact))
	route("POST /v1/jobs", "/v1/jobs", s.limited(s.handleJobSubmit))
	route("GET /v1/jobs", "/v1/jobs", s.handleJobList)
	route("GET /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobGet)
	route("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealth))
	mux.Handle("GET /metrics", s.reg.Handler())
	// The flight-recorder debug surface is deliberately outside
	// instrument (like /metrics): inspecting traces must not generate
	// traces, or the recorder would fill with reads of itself.
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/requests/{trace}", s.handleDebugRequestsTrace)
	if s.cfg.pprofOn {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// limited applies the in-flight cap and per-request deadline.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			markOutcome(w, "shed")
			writeError(w, http.StatusServiceUnavailable, "server at capacity, retry later")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.timeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// ---- JSON encoding of checker results ----

// witnessJSON is the wire form of a checker.Witness.
type witnessJSON struct {
	Q0    string   `json:"q0"`
	Teams []int    `json:"teams"`
	Ops   []string `json:"ops"`
	Human string   `json:"display"`
}

func encodeWitness(w *checker.Witness) *witnessJSON {
	if w == nil {
		return nil
	}
	ops := make([]string, len(w.Ops))
	for i, op := range w.Ops {
		ops[i] = string(op)
	}
	return &witnessJSON{Q0: string(w.Q0), Teams: w.Teams, Ops: ops, Human: w.String()}
}

// levelJSON is the wire form of a checker.MaxLevel.
type levelJSON struct {
	Max     int          `json:"max"`
	AtLimit bool         `json:"atLimit"`
	Limit   int          `json:"limit"`
	Display string       `json:"display"`
	Witness *witnessJSON `json:"witness,omitempty"`
}

func encodeLevel(m checker.MaxLevel) levelJSON {
	return levelJSON{
		Max: m.Max, AtLimit: m.AtLimit, Limit: m.Limit,
		Display: m.String(), Witness: encodeWitness(m.Witness),
	}
}

// bandJSON is a [lo, hi] bound; Hi is null when the band is unbounded
// above (the scan hit its limit).
type bandJSON struct {
	Lo      int    `json:"lo"`
	Hi      *int   `json:"hi"`
	Display string `json:"display"`
}

func encodeBand(lo, hi int, display string) bandJSON {
	b := bandJSON{Lo: lo, Display: display}
	if hi < checker.Unbounded {
		b.Hi = &hi
	}
	return b
}

// classificationJSON is the wire form of a checker.Classification.
// CanonicalFingerprint, when present, is a label-free identity of the
// type's transition structure: two uploads of isomorphic tables (same
// structure, different state/op/response names) share it, letting API
// consumers deduplicate their own type collections.
type classificationJSON struct {
	Type                 string    `json:"type"`
	Readable             bool      `json:"readable"`
	Discerning           levelJSON `json:"discerning"`
	Recording            levelJSON `json:"recording"`
	Cons                 bandJSON  `json:"cons"`
	Rcons                bandJSON  `json:"rcons"`
	CanonicalFingerprint string    `json:"canonicalFingerprint,omitempty"`
}

func encodeClassification(c checker.Classification) classificationJSON {
	return classificationJSON{
		Type:       c.TypeName,
		Readable:   c.Readable,
		Discerning: encodeLevel(c.Discerning),
		Recording:  encodeLevel(c.Recording),
		Cons:       encodeBand(c.ConsLo, c.ConsHi, c.ConsBand()),
		Rcons:      encodeBand(c.RconsLo, c.RconsHi, c.RconsBand()),
	}
}

// encodeClassificationWithFP is the one encoder every classification
// response flows through: it stamps the memoized canonical fingerprint
// of t at limit, so /v1/classify, /v1/classify/batch, /v1/zoo,
// /v1/atlas/type and the zoo job all expose the same identity field.
func (s *Server) encodeClassificationWithFP(c checker.Classification, t spec.Type, limit int) classificationJSON {
	enc := encodeClassification(c)
	enc.CanonicalFingerprint = s.canonicalFingerprint(t, limit)
	return enc
}

// ---- handlers ----

// classifyItemKey keys the encoded-classification memo by the bytes
// the client itself sent: a built-in name, or the raw custom-table
// JSON verbatim (no canonicalization — differently formatted but
// equivalent tables simply miss and recompute). Both forms are scoped
// by limit and can never collide with each other.
func classifyItemKey(name string, table []byte, limit int) string {
	if name != "" {
		return "n|" + strconv.Itoa(limit) + "|" + name
	}
	return "t|" + strconv.Itoa(limit) + "|" + string(table)
}

// itemGet / itemPut guard the optional encoded-classification memo
// (nil when -cache is negative).
func (s *Server) itemGet(key string) ([]byte, bool) {
	if s.items == nil {
		return nil, false
	}
	return s.items.Get(key)
}

func (s *Server) itemPut(key string, payload []byte) {
	if s.items != nil {
		s.items.Put(key, payload)
	}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	limit, ok := s.intParam(w, r, "limit", 6)
	if !ok {
		return
	}
	var (
		name string
		body []byte
	)
	switch r.Method {
	case http.MethodGet:
		name = r.URL.Query().Get("type")
		if name == "" {
			writeError(w, http.StatusBadRequest, "missing type parameter")
			return
		}
	case http.MethodPost:
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			} else {
				writeError(w, http.StatusBadRequest, "could not read request body")
			}
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET with ?type= or POST a custom table")
		return
	}
	// A memo hit serves the finished payload before the type is even
	// parsed; misses resolve, classify and fill the memo below.
	itemKey := classifyItemKey(name, body, limit)
	if item, hit := s.itemGet(itemKey); hit {
		writeRawJSON(w, http.StatusOK, item)
		return
	}
	var t spec.Type
	if name != "" {
		tt, err := types.ByName(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		t = tt
	} else {
		tt, err := types.NewCustomFromJSON(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		t = tt
	}
	compute := func() ([]byte, error) {
		c, err := s.eng.Classify(r.Context(), t, limit)
		if err != nil {
			return nil, err
		}
		payload, err := marshalJSON(s.encodeClassificationWithFP(c, t, limit))
		if err != nil {
			return nil, err
		}
		s.itemPut(itemKey, payload)
		return payload, nil
	}
	// Coalesce on the exact (label-sensitive) fingerprint, not the
	// canonical one: the response embeds concrete state/op labels
	// (witnesses, the type name), so only byte-identical tables may
	// share a payload — isomorphic-but-relabeled uploads must not
	// inherit the leader's labels. Unfingerprintable types skip
	// coalescing entirely.
	key, ok := engine.Fingerprint(t, limit)
	if !ok {
		payload, err := compute()
		if err != nil {
			s.writeEngineError(w, r, err)
			return
		}
		writeRawJSON(w, http.StatusOK, payload)
		return
	}
	s.coalesced(w, r, "/v1/classify", key+"|"+strconv.Itoa(limit), compute)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	name := r.URL.Query().Get("type")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing type parameter")
		return
	}
	t, err := types.ByName(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	prop, err := engine.ParseProperty(r.URL.Query().Get("property"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	n, ok := s.intParam(w, r, "n", 2)
	if !ok {
		return
	}
	// Built-in types are identified by their display name, which is
	// stable across aliases, so the name is an exact coalescing key.
	key := fmt.Sprintf("%s|%s|%d", t.Name(), prop.String(), n)
	s.coalesced(w, r, "/v1/search", key, func() ([]byte, error) {
		witness, err := s.eng.Search(r.Context(), t, prop, n)
		if err != nil {
			return nil, err
		}
		return marshalJSON(map[string]any{
			"type":     t.Name(),
			"property": prop.String(),
			"n":        n,
			"found":    witness != nil,
			"witness":  encodeWitness(witness),
		})
	})
}

func (s *Server) handleZoo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	limit, ok := s.intParam(w, r, "limit", 5)
	if !ok {
		return
	}
	// The zoo payload is a pure function of limit, so repeats are served
	// straight from the response memo; only the cold computation (and
	// concurrent cold callers, via coalescing) pays for the scan and the
	// full re-encode.
	zooKey := "z|" + strconv.Itoa(limit)
	if payload, hit := s.itemGet(zooKey); hit {
		writeRawJSON(w, http.StatusOK, payload)
		return
	}
	s.coalesced(w, r, "/v1/zoo", strconv.Itoa(limit), func() ([]byte, error) {
		cs, err := s.eng.Scan(r.Context(), limit)
		if err != nil {
			return nil, err
		}
		// Scan classifies types.Zoo() in order, so zip the two to stamp
		// each entry's canonical fingerprint.
		zoo := types.Zoo()
		results := make([]classificationJSON, len(cs))
		for i, c := range cs {
			results[i] = s.encodeClassificationWithFP(c, zoo[i], limit)
		}
		payload, err := marshalJSON(map[string]any{
			"limit":   limit,
			"count":   len(results),
			"results": results,
		})
		if err != nil {
			return nil, err
		}
		s.itemPut(zooKey, payload)
		return payload, nil
	})
}

// Model-checking request caps: exhaustive schedule enumeration is
// exponential, so the service keeps the per-request problem size small
// and relies on the request deadline (plus the node budget) for the rest.
const (
	mcMaxN       = 3
	mcMaxDepth   = 12
	mcMaxCrashes = 3
	mcNodeBudget = 250_000
)

// counterexampleJSON is the wire form of an mc.Counterexample. The
// schedule is replayable: feed the tokens back through a sim script
// ("s0" = step of p0, "c1" = crash of p1, "C*" = simultaneous crash).
type counterexampleJSON struct {
	Schedule  []string `json:"schedule"`
	Display   string   `json:"display"`
	Violation string   `json:"violation"`
	Trace     []string `json:"trace"`
}

func encodeCounterexample(ce *mc.Counterexample) *counterexampleJSON {
	if ce == nil {
		return nil
	}
	out := &counterexampleJSON{
		Display:   sim.FormatScript(ce.Schedule),
		Violation: ce.Violation,
	}
	for _, a := range ce.Schedule {
		out.Schedule = append(out.Schedule, a.String())
	}
	for _, e := range ce.Trace {
		out.Trace = append(out.Trace, e.String())
	}
	return out
}

func (s *Server) handleModelCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	target := r.URL.Query().Get("target")
	if target == "" {
		writeError(w, http.StatusBadRequest, "missing target parameter (see /v1/mc/targets)")
		return
	}
	n, ok := s.boundedParam(w, r, "n", 2, 2, mcMaxN)
	if !ok {
		return
	}
	depth, ok := s.boundedParam(w, r, "depth", 8, 2, mcMaxDepth)
	if !ok {
		return
	}
	crashes, ok := s.boundedParam(w, r, "crashes", 1, 0, mcMaxCrashes)
	if !ok {
		return
	}
	if mc.TargetDoc(target) == "" {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown target %q (see /v1/mc/targets)", target))
		return
	}
	tgt, err := mc.TargetByName(target, n)
	if err != nil {
		// The target exists; the parameters don't fit it (e.g. a variant
		// that needs n ≥ 3) — a client error, not a missing resource.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := fmt.Sprintf("%s|%d|%d|%d", target, n, depth, crashes)
	s.coalesced(w, r, "/v1/mc", key, func() ([]byte, error) {
		res, err := mc.Check(r.Context(), tgt, mc.Options{
			MaxDepth:    depth,
			CrashBudget: crashes,
			NodeBudget:  mcNodeBudget,
			Workers:     s.cfg.workers, // honour the operator's -workers bound
			Progress:    s.progress,
		})
		if err != nil {
			return nil, err
		}
		s.recordMCRun(res)
		return marshalJSON(map[string]any{
			"target":         res.Target,
			"n":              n,
			"model":          res.Model.String(),
			"depth":          res.MaxDepth,
			"crashes":        res.CrashBudget,
			"safe":           res.Safe,
			"exhaustive":     res.Exhaustive,
			"complete":       res.Complete,
			"stats":          res.Stats,
			"counterexample": encodeCounterexample(res.CE),
		})
	})
}

func (s *Server) handleModelCheckTargets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	type targetJSON struct {
		Name string `json:"name"`
		Doc  string `json:"doc"`
	}
	var out []targetJSON
	for _, name := range mc.Targets() {
		out = append(out, targetJSON{Name: name, Doc: mc.TargetDoc(name)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"targets": out})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Every stat here is read back out of the metrics registry (whose
	// func-backed series sample the subsystems' own counters), so this
	// JSON and /metrics can never disagree. The structs keep the exact
	// pre-registry wire shape.
	resp := map[string]any{
		"status":  "ok",
		"workers": s.eng.Workers(),
		"cache":   s.cacheStatsFromRegistry(),
		"jobs":    s.jobsStatsFromRegistry(),
	}
	if s.store != nil {
		resp["store"] = s.storeStatsFromRegistry()
		resp["storeBudget"] = s.store.Budget()
	}
	if len(s.peers) > 0 {
		resp["storePeers"] = s.peerStatsFromRegistry()
	}
	writeJSON(w, http.StatusOK, resp)
}

// boundedParam parses an integer query parameter in [lo, hi] (defaulting
// to def when absent). Unlike intParam the cap is endpoint-specific, not
// the server's -max-limit.
func (s *Server) boundedParam(w http.ResponseWriter, r *http.Request, name string, def, lo, hi int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		// Clamp the default into [lo, hi] too: endpoint defaults are tuned
		// for the stock caps, and an operator-lowered cap (-max-limit 2)
		// must bound defaulted requests exactly like explicit ones —
		// otherwise a parameterless request runs above the server's cap.
		return min(max(def, lo), hi), true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < lo {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%s must be an integer ≥ %d", name, lo))
		return 0, false
	}
	if v > hi {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("%s=%d exceeds this server's cap of %d", name, v, hi))
		return 0, false
	}
	return v, true
}

// intParam parses a bounded integer query parameter in [2, maxLimit],
// the cap shared by all classification endpoints.
func (s *Server) intParam(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	return s.boundedParam(w, r, name, min(def, s.cfg.maxLimit), 2, s.cfg.maxLimit)
}

// statusClientClosedRequest is the de-facto-standard status (nginx's
// 499) for requests abandoned by the client before the response.
const statusClientClosedRequest = 499

// writeEngineError maps search failures to HTTP statuses: hitting the
// server-imposed deadline becomes 503 (the request exceeded its
// budget — a capacity signal), a client disconnect becomes 499 with
// its own outcome label (nobody reads the response; the operator must
// not chase it as a capacity problem), and everything else is a
// client-visible 422 (e.g. a custom table a theorem rejects).
func (s *Server) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		markOutcome(w, "deadline")
		writeError(w, http.StatusServiceUnavailable, "request exceeded its time budget")
	case errors.Is(err, context.Canceled):
		markOutcome(w, "cancelled")
		writeError(w, statusClientClosedRequest, "client closed request")
	default:
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// marshalJSON encodes v exactly as writeJSON would (no HTML escaping,
// trailing newline), so coalesced handlers can share one encoded
// payload across callers and every copy is byte-identical.
func marshalJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeRawJSON(w http.ResponseWriter, status int, payload []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(payload)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
