package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"rcons/internal/atlas/census"
	"rcons/internal/types"
)

// postJSONBody POSTs body and decodes the JSON response.
func postJSONBody(t *testing.T, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s = %d (want %d): %v", url, resp.StatusCode, wantStatus, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
}

// TestAtlasCensusEndpoint: /v1/atlas returns a verifiable census
// summary, identical across repeated (cached) calls.
func TestAtlasCensusEndpoint(t *testing.T) {
	_, ts := testServer(t)
	url := ts.URL + "/v1/atlas?states=2&ops=2&resps=2&random=60&mutants=1&seed=7&limit=3"
	var got census.Summary
	getJSON(t, url, http.StatusOK, &got)
	if got.Version != census.Version {
		t.Fatalf("summary version %d, want %d", got.Version, census.Version)
	}
	if got.Types == 0 || len(got.RconsBands) == 0 {
		t.Fatalf("empty census summary: %+v", got)
	}
	if len(got.Zoo) == 0 {
		t.Fatal("summary lacks the zoo comparison")
	}
	if len(got.Skipped) != 0 {
		t.Fatalf("census skipped types: %v", got.Skipped)
	}
	var again census.Summary
	getJSON(t, url, http.StatusOK, &again)
	if !reflect.DeepEqual(got, again) {
		t.Fatal("cached census summary differs from the first")
	}
}

// TestAtlasCensusCaps: oversized universes are refused up front.
func TestAtlasCensusCaps(t *testing.T) {
	_, ts := testServer(t)
	for _, q := range []string{
		"states=9",                    // above the states cap
		"random=100000",               // above the random cap
		"limit=99",                    // above the limit cap
		"seed=not-a-seed",             // malformed seed
		"random=0&mutants=0&states=0", // below the states floor
	} {
		resp, err := http.Get(ts.URL + "/v1/atlas?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/atlas?%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestAtlasRandomOnlyCensus: states=0 skips the enumeration stage.
func TestAtlasRandomOnlyCensus(t *testing.T) {
	_, ts := testServer(t)
	var got census.Summary
	getJSON(t, ts.URL+"/v1/atlas?states=0&random=40&mutants=0&seed=3&limit=2", http.StatusOK, &got)
	if got.Raw != 0 {
		t.Fatalf("random-only census still enumerated %d raw tables", got.Raw)
	}
	if got.Types == 0 {
		t.Fatal("random-only census produced no types")
	}
}

// TestAtlasConcurrentColdRequests: identical cold requests race through
// the in-flight dedup path; all must succeed and agree.
func TestAtlasConcurrentColdRequests(t *testing.T) {
	_, ts := testServer(t)
	url := ts.URL + "/v1/atlas?states=2&ops=1&resps=1&random=20&mutants=0&seed=5&limit=2"
	const n = 6
	results := make([]census.Summary, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- json.NewDecoder(resp.Body).Decode(&results[i])
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("concurrent requests disagree: %+v vs %+v", results[0], results[i])
		}
	}
}

// TestAtlasTypeEndpoint: /v1/atlas/type returns a re-importable table
// whose classification matches re-classifying that table directly, and
// the same seed always returns the same type.
func TestAtlasTypeEndpoint(t *testing.T) {
	_, ts := testServer(t)
	url := ts.URL + "/v1/atlas/type?seed=42&states=3&ops=2&resps=2&limit=3"
	var got struct {
		Seed           int64              `json:"seed"`
		Dims           string             `json:"dims"`
		Key            string             `json:"key"`
		Table          json.RawMessage    `json:"table"`
		Classification classificationJSON `json:"classification"`
	}
	getJSON(t, url, http.StatusOK, &got)
	if got.Seed != 42 || got.Key == "" {
		t.Fatalf("bad identity: %+v", got)
	}
	c, err := types.NewCustomFromJSON(got.Table)
	if err != nil {
		t.Fatalf("returned table does not re-import: %v", err)
	}
	if c.Name() != got.Classification.Type {
		t.Fatalf("table name %q vs classification type %q", c.Name(), got.Classification.Type)
	}

	var again struct {
		Key   string          `json:"key"`
		Table json.RawMessage `json:"table"`
	}
	getJSON(t, url, http.StatusOK, &again)
	if again.Key != got.Key {
		t.Fatalf("same seed, different type: %s vs %s", got.Key, again.Key)
	}

	// Round trip: POSTing the returned table to /v1/classify yields the
	// same bands.
	var direct classificationJSON
	postJSONBody(t, ts.URL+"/v1/classify?limit=3", got.Table, http.StatusOK, &direct)
	if direct.Rcons.Display != got.Classification.Rcons.Display ||
		direct.Cons.Display != got.Classification.Cons.Display {
		t.Fatalf("bands differ between /v1/atlas/type and /v1/classify: %+v vs %+v",
			got.Classification, direct)
	}
}
