package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// File is the BENCH_*.json artifact: environment header plus results.
type File struct {
	Schema  string   `json:"schema"`
	Created string   `json:"created"`
	Go      string   `json:"go"`
	Host    string   `json:"host"`
	CPUs    int      `json:"cpus"`
	Mode    string   `json:"mode"` // "full" or "quick"
	Results []Result `json:"results"`
	// Telemetry is a snapshot of the process-wide obs registry taken
	// after the run: the counters the benchmark runners published
	// (total mc nodes, census rows, ...), keyed by metric name. It
	// records how much work the run actually did, complementing the
	// per-benchmark rates above.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// SchemaV1 identifies the current artifact layout.
const SchemaV1 = "rcbench/v1"

// NewFile wraps results in the artifact envelope.
func NewFile(mode string, results []Result) *File {
	return &File{
		Schema:  SchemaV1,
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		Host:    runtime.GOOS + "/" + runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Mode:    mode,
		Results: results,
	}
}

// WriteJSON writes the artifact with stable indentation (committed to
// git, so diffs should be readable).
func (f *File) WriteJSON(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a BENCH_*.json artifact.
func ReadJSON(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != SchemaV1 {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	return &f, nil
}

var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// LatestArtifact finds the BENCH_<n>.json with the highest index in dir
// ("" when none exists) plus that index (-1 when none).
func LatestArtifact(dir string) (path string, index int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", -1, err
	}
	index = -1
	for _, e := range entries {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > index {
			index = n
			path = filepath.Join(dir, e.Name())
		}
	}
	return path, index, nil
}

// SortResults orders results by name for stable artifacts.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
}
