// Package bench is the measurement core behind cmd/rcbench: a registry
// of named benchmarks with fixed iteration budgets, a measurement
// harness producing machine-readable results (ns/op, allocs/op, custom
// rates like nodes/sec), and a baseline comparator with a configurable
// regression threshold. bench_test.go at the repository root remains the
// `go test -bench` view of the same workloads; this package exists so a
// plain binary can run them with deterministic budgets and emit
// BENCH_*.json artifacts that successive PRs are compared against.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Metrics carries benchmark-specific counters TOTALLED over all
// iterations of one measurement (e.g. search nodes executed). Measure
// derives per-op and per-second rates from them.
type Metrics map[string]float64

// Benchmark is one registered workload. Run must execute exactly iters
// iterations and return its total custom metrics (nil is fine).
type Benchmark struct {
	// Name identifies the benchmark in results and baselines, grouped
	// with slashes ("mc/fingerprint-incremental").
	Name string
	// Doc is a one-line description shown by rcbench -list.
	Doc string
	// Iters and QuickIters are the fixed iteration budgets for full and
	// -quick mode.
	Iters, QuickIters int
	// WorkloadVaries marks benchmarks whose PER-ITERATION work differs
	// between full and quick mode (the harness experiments trim their
	// seeds/sweeps, not just the iteration count). Their ns/op from one
	// mode is incomparable with the other, so the regression gate skips
	// them when the baseline was recorded in a different mode.
	WorkloadVaries bool
	// GateMetrics lists custom metric keys (after Measure's _per_op /
	// _per_sec suffixing, e.g. "p99_seconds_per_op") that the regression
	// gate checks in addition to ns/op. Gated metrics must be
	// lower-is-better quantities (latencies, sizes): a value more than
	// threshold above the baseline regresses.
	GateMetrics []string
	// Run executes iters iterations.
	Run func(iters int) (Metrics, error)
}

// Result is one measured benchmark in the wire format of BENCH_*.json.
type Result struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Measure runs one benchmark with the given iteration budget: one
// untimed warm-up iteration, a GC to settle the heap, then the timed
// iterations bracketed by memory-stats reads. Allocation figures are
// whole-process deltas, so benchmarks should avoid background work.
func Measure(bm Benchmark, iters int) (Result, error) {
	if iters <= 0 {
		iters = 1
	}
	if _, err := bm.Run(1); err != nil {
		return Result{}, fmt.Errorf("%s (warm-up): %w", bm.Name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	metrics, err := bm.Run(iters)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", bm.Name, err)
	}
	res := Result{
		Name:        bm.Name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
	if len(metrics) > 0 {
		res.Metrics = map[string]float64{}
		for k, total := range metrics {
			res.Metrics[k+"_per_op"] = total / float64(iters)
			if secs := elapsed.Seconds(); secs > 0 {
				res.Metrics[k+"_per_sec"] = total / secs
			}
		}
	}
	return res, nil
}

// cleanups collects teardown for benchmark fixtures that outlive their
// measurement (the serve/* entries keep a warm in-process server across
// calls). rcbench runs them once the measurement sweep is done, BEFORE
// any regression-confirming re-measurement: a leaked fixture inflates
// the live heap, and with it the GC cost every later allocating
// benchmark pays.
var cleanups []func()

// RegisterCleanup schedules f for RunCleanups.
func RegisterCleanup(f func()) { cleanups = append(cleanups, f) }

// RunCleanups tears down registered fixtures (idempotent).
func RunCleanups() {
	for _, f := range cleanups {
		f()
	}
	cleanups = nil
	runtime.GC()
}

// BestOf merges two measurements of the SAME benchmark into the most
// favorable observation per quantity: minimum ns/op, allocs, bytes and
// *_per_op metrics (costs), maximum *_per_sec metrics (rates). rcbench
// uses it when confirming a suspected regression — the extremum over
// repeated samples is the standard noise-robust estimator of a
// workload's true cost, and only a slowdown that survives it is real.
func BestOf(a, b Result) Result {
	out := a
	out.NsPerOp = min(a.NsPerOp, b.NsPerOp)
	out.AllocsPerOp = min(a.AllocsPerOp, b.AllocsPerOp)
	out.BytesPerOp = min(a.BytesPerOp, b.BytesPerOp)
	for k, v := range b.Metrics {
		ov, ok := out.Metrics[k]
		better := v < ov
		if strings.HasSuffix(k, "_per_sec") {
			better = v > ov
		}
		if !ok || better {
			if out.Metrics == nil {
				out.Metrics = map[string]float64{}
			}
			out.Metrics[k] = v
		}
	}
	return out
}

// Delta is one baseline-vs-current comparison row.
type Delta struct {
	Name string
	// Metric is the gated custom metric key, or "" for the ns/op row.
	Metric string
	// OldNs and NewNs are the baseline and current values (ns/op for the
	// default rows, the metric's own unit for metric rows).
	OldNs, NewNs float64
	// Ratio is NewNs/OldNs (>1 is slower).
	Ratio float64
	// Regressed is set when Ratio exceeds 1+threshold.
	Regressed bool
}

// Compare matches results by name and flags ns/op regressions beyond
// the threshold (0.25 = fail when more than 25% slower). Benchmarks
// present on only one side are ignored — adding or retiring a benchmark
// is not a regression.
func Compare(baseline, current []Result, threshold float64) []Delta {
	old := map[string]Result{}
	for _, r := range baseline {
		old[r.Name] = r
	}
	var out []Delta
	for _, r := range current {
		b, ok := old[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		d := Delta{Name: r.Name, OldNs: b.NsPerOp, NewNs: r.NsPerOp, Ratio: r.NsPerOp / b.NsPerOp}
		d.Regressed = d.Ratio > 1+threshold
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

// CompareMetrics extends the gate to explicitly opted-in custom metrics
// (Benchmark.GateMetrics): gates maps benchmark name to the metric keys
// to check. Like Compare, pairs are matched by name, and a metric
// missing on either side is skipped — this is how serve/p99 puts tail
// latency (p99_seconds_per_op) under the same threshold as ns/op.
func CompareMetrics(baseline, current []Result, threshold float64, gates map[string][]string) []Delta {
	old := map[string]Result{}
	for _, r := range baseline {
		old[r.Name] = r
	}
	var out []Delta
	for _, r := range current {
		b, ok := old[r.Name]
		if !ok {
			continue
		}
		for _, key := range gates[r.Name] {
			ov, cv := b.Metrics[key], r.Metrics[key]
			if ov <= 0 || cv <= 0 {
				continue
			}
			d := Delta{Name: r.Name, Metric: key, OldNs: ov, NewNs: cv, Ratio: cv / ov}
			d.Regressed = d.Ratio > 1+threshold
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}
