package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"rcons/internal/load"
	"rcons/internal/serve"
)

// serveP99Requests is the fixed request count behind serve/p99 in BOTH
// full and quick mode: the p99 of 1500 requests is a stable statistic,
// and keeping the count mode-independent keeps the whole-run ns/op and
// the gated p99_seconds_per_op comparable across modes.
const serveP99Requests = 1500

// serveBenchmarks returns the rcserve serving-path entries: the real
// HTTP handler (the same construction path as the rcserve binary)
// driven over a loopback socket by the rcload traffic engine, so the
// regression gate covers routing, coalescing, the item memo and JSON
// encoding — not just raw engine speed.
func serveBenchmarks() []Benchmark {
	return []Benchmark{
		{
			Name:  "serve/throughput",
			Doc:   "warm mixed rcload workload (classify/batch/zoo/search) against the in-process rcserve handler",
			Iters: 2_000, QuickIters: 400,
			Run: serveLoadRunner(func(iters int) load.Options {
				return load.Options{
					Requests:    iters,
					Concurrency: 4,
					Workload:    "mixed",
					Types:       100,
					BatchSize:   50,
					Limit:       3,
				}
			}, nil),
		},
		{
			Name:  "serve/p99",
			Doc:   fmt.Sprintf("p99 latency of %d warm single-classify requests (gated metric: p99_seconds_per_op)", serveP99Requests),
			Iters: 1, QuickIters: 1,
			GateMetrics: []string{"p99_seconds_per_op"},
			Run: serveLoadRunner(func(int) load.Options {
				// One "iteration" is the whole fixed-size run; the p99 of
				// the run lands in p99_seconds_per_op via Metrics.
				return load.Options{
					Requests:    serveP99Requests,
					Concurrency: 4,
					Workload:    "single",
					Types:       100,
					Limit:       3,
				}
			}, func(res *load.Result, m Metrics) {
				m["p99_seconds"] = res.P99
			}),
		},
	}
}

// serveLoadRunner drives the configured workload against a lazily
// built, pre-warmed in-process rcserve and reports served items (and
// whatever extract adds). Server construction and the cold cache warm
// (a batch sweep over the load pool plus a short mixed pass touching
// the zoo and search routes) happen on the first call — which is
// Measure's untimed warm-up — so the timed iterations measure
// steady-state serving, not process setup or cold search. The warm
// server is reused across calls and torn down by RunCleanups; a call
// after teardown (a regression-confirming re-measurement) rebuilds it.
func serveLoadRunner(opts func(iters int) load.Options, extract func(*load.Result, Metrics)) func(int) (Metrics, error) {
	var (
		mu sync.Mutex
		ts *httptest.Server
	)
	ensure := func(o load.Options) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		if ts != nil {
			return ts.URL, nil
		}
		// Fixed worker count: the engine barely matters once warm, and a
		// machine-dependent default would make ns/op incomparable across
		// hosts with different core counts.
		s, err := serve.NewFromFlags("-log-level", "error", "-workers", "4")
		if err != nil {
			return "", err
		}
		ts = httptest.NewServer(s.Handler())
		server := ts
		RegisterCleanup(func() {
			mu.Lock()
			if ts == server {
				ts = nil
			}
			mu.Unlock()
			server.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
		})
		warm := o
		warm.BaseURL = server.URL
		warm.Workload = "batch"
		warm.BatchSize = 100
		warm.Requests = 2
		warm.RPS = 0
		if _, err := load.Run(context.Background(), warm); err != nil {
			return "", err
		}
		warm.Workload = "mixed"
		warm.Requests = 5
		if _, err := load.Run(context.Background(), warm); err != nil {
			return "", err
		}
		return server.URL, nil
	}
	return func(iters int) (Metrics, error) {
		o := opts(iters)
		url, err := ensure(o)
		if err != nil {
			return nil, err
		}
		o.BaseURL = url
		res, err := load.Run(context.Background(), o)
		if err != nil {
			return nil, err
		}
		if res.Errors > 0 || res.Limited > 0 || res.Shed > 0 {
			return nil, fmt.Errorf("load run had failures: %+v", *res)
		}
		m := Metrics{"items": float64(res.Items)}
		if extract != nil {
			extract(res, m)
		}
		return m, nil
	}
}
