package bench

import (
	"context"
	"fmt"

	"rcons/internal/atlas"
	"rcons/internal/atlas/census"
	"rcons/internal/compile"
	"rcons/internal/engine"
	"rcons/internal/harness"
	"rcons/internal/mc"
	"rcons/internal/obs"
	"rcons/internal/sim"
	"rcons/internal/types"
)

// harnessOpts mirrors the budgets of the root bench_test.go experiment
// benchmarks; quickOpts trims the sampling dimensions further for CI.
func harnessOpts(quick bool) harness.Options {
	if quick {
		return harness.Options{Seeds: 4, MaxN: 3, Limit: 4}
	}
	return harness.Options{Seeds: 10, MaxN: 4, Limit: 5}
}

// Registry returns every registered benchmark: the harness experiment
// suite (the same workloads as the root bench_test.go), the model
// checker's search and fingerprint micro-benchmarks, the classification
// engine, and the simulator/memory primitives.
func Registry() []Benchmark {
	var out []Benchmark

	for _, e := range harness.All() {
		out = append(out, Benchmark{
			Name:  "harness/" + e.ID,
			Doc:   e.Title,
			Iters: 2, QuickIters: 1,
			WorkloadVaries: true, // quick mode trims the experiment itself
			Run:            experimentRunner(e),
		})
	}

	out = append(out,
		Benchmark{
			Name:  "mc/check-team-sn",
			Doc:   "exhaustive model check of Figure 2 over S_2 (depth 9, 1 crash)",
			Iters: 3, QuickIters: 3,
			Run: mcCheckRunner("team-sn", 2, mc.Options{MaxDepth: 9, CrashBudget: 1}, true),
		},
		Benchmark{
			Name:  "mc/check-cas-deep",
			Doc:   "exhaustive model check of CAS consensus (depth 12, 2 crashes)",
			Iters: 3, QuickIters: 3,
			Run: mcCheckRunner("cas", 2, mc.Options{MaxDepth: 12, CrashBudget: 2}, true),
		},
		Benchmark{
			Name:  "mc/counterexample-noyield",
			Doc:   "find+minimize the §3.1 no-yield agreement violation (depth 12)",
			Iters: 3, QuickIters: 3,
			Run: mcCheckRunner("unsafe-noyield", 2, mc.Options{MaxDepth: 12, CrashBudget: 1}, false),
		},
		Benchmark{
			Name:  "mc/fingerprint-incremental",
			Doc:   "incremental configuration fingerprint (interned digests) on a fixed prefix",
			Iters: 300_000, QuickIters: 50_000,
			Run: fingerprintRunner(false),
		},
		Benchmark{
			Name:  "mc/fingerprint-legacy",
			Doc:   "legacy Snapshot+trace+SHA-256 fingerprint on the same prefix",
			Iters: 300_000, QuickIters: 50_000,
			Run: fingerprintRunner(true),
		},
		Benchmark{
			Name:  "engine/classify-T5",
			Doc:   "cold sharded parallel classification of T_5 at limit 5",
			Iters: 3, QuickIters: 1,
			Run: func(iters int) (Metrics, error) {
				for i := 0; i < iters; i++ {
					eng := engine.New(engine.Options{})
					if _, err := eng.Classify(context.Background(), types.NewTn(5), 5); err != nil {
						return nil, err
					}
				}
				return nil, nil
			},
		},
		Benchmark{
			Name:  "engine/classify-compiled",
			Doc:   "cold compiled-path classification of the full zoo at limit 4",
			Iters: 3, QuickIters: 1,
			Run: func(iters int) (Metrics, error) {
				for i := 0; i < iters; i++ {
					eng := engine.New(engine.Options{})
					if _, err := eng.ClassifyAll(context.Background(), types.Zoo(), 4); err != nil {
						return nil, err
					}
				}
				return nil, nil
			},
		},
		Benchmark{
			Name:  "compile/build-table",
			Doc:   "dense transition-table compilation of T_5 (reachable sweep + interning)",
			Iters: 2_000, QuickIters: 500,
			Run: func(iters int) (Metrics, error) {
				t5 := types.NewTn(5)
				for i := 0; i < iters; i++ {
					if _, err := compile.Compile(t5, 5); err != nil {
						return nil, err
					}
				}
				return nil, nil
			},
		},
		Benchmark{
			Name:  "compile/apply",
			Doc:   "compiled table Apply: two flat array reads per protocol step",
			Iters: 20_000_000, QuickIters: 5_000_000,
			Run: func(iters int) (Metrics, error) {
				c, err := compile.Compile(types.NewTn(5), 5)
				if err != nil {
					return nil, err
				}
				nOps := uint16(c.NumOps())
				si, oi := uint16(0), uint16(0)
				var sink uint16
				for i := 0; i < iters; i++ {
					ns, r := c.Apply(si, oi)
					sink ^= r
					si = ns
					oi++
					if oi == nOps {
						oi = 0
					}
				}
				_ = sink
				return Metrics{"applies": float64(iters)}, nil
			},
		},
		Benchmark{
			Name:  "engine/classify-cached",
			Doc:   "steady-state classification served from the memoization cache",
			Iters: 20_000, QuickIters: 5_000,
			Run: func(iters int) (Metrics, error) {
				eng := engine.New(engine.Options{})
				t := types.NewSn(3)
				if _, err := eng.Classify(context.Background(), t, 5); err != nil {
					return nil, err
				}
				for i := 0; i < iters; i++ {
					if _, err := eng.Classify(context.Background(), t, 5); err != nil {
						return nil, err
					}
				}
				return nil, nil
			},
		},
		Benchmark{
			Name:  "sim/steps",
			Doc:   "raw simulator step throughput (1000 reads per execution)",
			Iters: 20, QuickIters: 5,
			Run: func(iters int) (Metrics, error) {
				const stepsPerRun = 1000
				for i := 0; i < iters; i++ {
					m := sim.NewMemory()
					m.AddRegister("R", sim.None)
					body := func(p *sim.Proc) sim.Value {
						for s := 0; s < stepsPerRun; s++ {
							p.Read("R")
						}
						return "done"
					}
					if _, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 1}).Run(); err != nil {
						return nil, err
					}
				}
				return Metrics{"steps": float64(iters * stepsPerRun)}, nil
			},
		},
		Benchmark{
			Name:  "sim/snapshot",
			Doc:   "textual Memory.Snapshot of a 40-cell heap (cached sorted names)",
			Iters: 200_000, QuickIters: 50_000,
			Run: memoryRunner(func(m *sim.Memory) { _ = m.Snapshot() }),
		},
		Benchmark{
			Name:  "sim/digest",
			Doc:   "incremental Memory.Digest of the same heap (O(1))",
			Iters: 2_000_000, QuickIters: 500_000,
			Run: memoryRunner(func(m *sim.Memory) { _ = m.Digest() }),
		},
		Benchmark{
			Name:  "store/get-hit",
			Doc:   "steady-state store read served by the in-memory LRU front",
			Iters: 200_000, QuickIters: 50_000,
			Run: storeGetHitRunner(),
		},
		Benchmark{
			Name:  "store/put",
			Doc:   "crash-safe store write (temp file + fsync + rename), distinct keys",
			Iters: 2_000, QuickIters: 500,
			Run: storePutRunner(),
		},
		Benchmark{
			Name:  "store/evict",
			Doc:   "budgeted store write paying one size-aware LRU eviction per put",
			Iters: 2_000, QuickIters: 500,
			Run: storeEvictRunner(),
		},
		Benchmark{
			Name:  "store/peer-hit",
			Doc:   "peer read-through round-trip: HTTP fetch + envelope re-verification",
			Iters: 5_000, QuickIters: 1_000,
			Run: storePeerHitRunner(),
		},
		Benchmark{
			Name:  "jobs/submit-poll",
			Doc:   "async job round-trip: submit a distinct job, poll it to completion",
			Iters: 2_000, QuickIters: 500,
			Run: jobsSubmitPollRunner(),
		},
		Benchmark{
			Name:  "obs/counter-inc",
			Doc:   "labelled counter increment on the telemetry registry hot path",
			Iters: 5_000_000, QuickIters: 1_000_000,
			Run: func(iters int) (Metrics, error) {
				c := obs.NewRegistry().
					Counter("bench_ops_total", "obs benchmark counter", "path").
					With("/bench")
				for i := 0; i < iters; i++ {
					c.Inc()
				}
				if c.Value() != int64(iters) {
					return nil, fmt.Errorf("counter lost increments: %d != %d", c.Value(), iters)
				}
				return nil, nil
			},
		},
		Benchmark{
			Name:  "obs/histogram-observe",
			Doc:   "histogram observation: bucket binary search + atomic count/sum",
			Iters: 2_000_000, QuickIters: 500_000,
			Run: func(iters int) (Metrics, error) {
				h := obs.NewRegistry().
					Histogram("bench_latency_seconds", "obs benchmark histogram", nil).
					With()
				for i := 0; i < iters; i++ {
					h.Observe(float64(i%97) / 1000)
				}
				return nil, nil
			},
		},
		Benchmark{
			Name:  "atlas/enumerate-3x3",
			Doc:   "canonical enumeration of every ≤3-state ≤3-op ack-only table",
			Iters: 3, QuickIters: 1,
			Run: func(iters int) (Metrics, error) {
				tables := 0.0
				for i := 0; i < iters; i++ {
					raw, _, err := atlas.Enumerate(atlas.Bounds{States: 3, Ops: 3, Resps: 1},
						func(string, *atlas.Table) bool { return true })
					if err != nil {
						return nil, err
					}
					tables += float64(raw)
				}
				return Metrics{"tables": tables}, nil
			},
		},
		Benchmark{
			Name:  "atlas/census-small",
			Doc:   "cold census of the ≤2-state ≤2-op universe + 100 random types at limit 3",
			Iters: 3, QuickIters: 1,
			Run: func(iters int) (Metrics, error) {
				rows := obs.Default().Counter("rc_bench_census_rows_total", "census rows classified by rcbench").With()
				classified := 0.0
				for i := 0; i < iters; i++ {
					a, err := census.Run(context.Background(), census.Options{
						Bounds: atlas.Bounds{States: 2, Ops: 2, Resps: 2},
						Random: 100,
						Seed:   1,
						Limit:  3,
						Engine: engine.New(engine.Options{}),
					})
					if err != nil {
						return nil, err
					}
					if len(a.Skipped) > 0 {
						return nil, fmt.Errorf("census skipped %d types", len(a.Skipped))
					}
					rows.Add(int64(a.Types))
					classified += float64(a.Types)
				}
				return Metrics{"types": classified}, nil
			},
		},
	)
	out = append(out, serveBenchmarks()...)
	return out
}

// Quick reports the iteration budget of bm for the given mode.
func (bm Benchmark) Budget(quick bool) int {
	if quick {
		return bm.QuickIters
	}
	return bm.Iters
}

// ExperimentOptions exposes the harness budgets rcbench runs with, so
// its -list output can say what "one iteration" means.
func ExperimentOptions(quick bool) (seeds, maxN, limit int) {
	o := harnessOpts(quick)
	return o.Seeds, o.MaxN, o.Limit
}

var quickMode bool

// SetQuick switches the registry's experiment runners to the trimmed
// budgets. It must be called before Measure (rcbench does it once at
// startup; tests may toggle it).
func SetQuick(q bool) { quickMode = q }

func experimentRunner(e harness.Experiment) func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		for i := 0; i < iters; i++ {
			rep, err := e.Run(harnessOpts(quickMode))
			if err != nil {
				return nil, err
			}
			if !rep.Pass {
				return nil, fmt.Errorf("experiment %s failed:\n%s", e.ID, rep)
			}
		}
		return nil, nil
	}
}

// mcCheckRunner model-checks a builtin target every iteration and
// totals the executed search nodes, so the result carries a
// nodes_per_sec rate — the model checker's primary throughput metric.
// The totals are also published through the process-wide telemetry
// registry, which rcbench snapshots into the artifact's telemetry map.
func mcCheckRunner(target string, n int, opts mc.Options, wantSafe bool) func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		runs := obs.Default().Counter("rc_bench_mc_runs_total", "model-checker runs executed by rcbench").With()
		benchNodes := obs.Default().Counter("rc_bench_mc_nodes_total", "search nodes executed by rcbench model-checker benchmarks").With()
		nodes := 0.0
		for i := 0; i < iters; i++ {
			tgt, err := mc.TargetByName(target, n)
			if err != nil {
				return nil, err
			}
			res, err := mc.Check(context.Background(), tgt, opts)
			if err != nil {
				return nil, err
			}
			if res.Safe != wantSafe {
				return nil, fmt.Errorf("mc %s: safe=%v, want %v", target, res.Safe, wantSafe)
			}
			runs.Inc()
			benchNodes.Add(int64(res.Stats.Nodes))
			nodes += float64(res.Stats.Nodes)
		}
		return Metrics{"nodes": nodes}, nil
	}
}

// StandardFingerprintProbe builds the canonical fingerprint-benchmark
// fixture: the Figure 2 target over S_2 at a fixed crash-containing
// prefix. Both rcbench's mc/fingerprint-* entries and the root
// bench_test.go BenchmarkMCFingerprint measure this exact probe, so the
// `go test -bench` view and the BENCH_*.json view stay the same
// workload by construction.
func StandardFingerprintProbe() (*mc.FingerprintProbe, error) {
	tgt, err := mc.TargetByName("team-sn", 2)
	if err != nil {
		return nil, err
	}
	script := []sim.Action{
		sim.Step(0), sim.Step(1), sim.Step(0), sim.Crash(0),
		sim.Step(0), sim.Step(1), sim.Step(0),
	}
	return mc.NewFingerprintProbe(tgt, script, mc.Options{})
}

// fingerprintRunner measures ONLY the fingerprint computation: the
// prefix is executed once (outside the timed region's per-op cost at
// realistic iteration counts) and then fingerprinted iters times.
func fingerprintRunner(legacy bool) func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		probe, err := StandardFingerprintProbe()
		if err != nil {
			return nil, err
		}
		if legacy {
			for i := 0; i < iters; i++ {
				_ = probe.Legacy()
			}
		} else {
			for i := 0; i < iters; i++ {
				_ = probe.Incremental()
			}
		}
		return nil, nil
	}
}

func memoryRunner(op func(*sim.Memory)) func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		m := sim.NewMemory()
		for i := 0; i < 32; i++ {
			m.AddRegister(fmt.Sprintf("R%02d", i), "v")
		}
		for i := 0; i < 8; i++ {
			m.AddRegister(fmt.Sprintf("S%d", i), sim.None)
		}
		for i := 0; i < iters; i++ {
			op(m)
		}
		return nil, nil
	}
}
