package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"rcons/internal/jobs"
	"rcons/internal/store"
)

// The persistence/async benchmarks measure the store and job subsystem
// the same way the engine and service use them: small JSON payloads,
// fingerprint-shaped keys, one manager reused across submissions.

// withTempStore opens a store in a fresh temp directory and cleans up
// after the measurement.
func withTempStore(fn func(*store.Store) (Metrics, error)) (Metrics, error) {
	dir, err := os.MkdirTemp("", "rcbench-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	return fn(st)
}

// storeGetHitRunner measures the hot-path read: the entry sits in the
// LRU front, so this is the steady-state cost a warm rcserve pays per
// memoized lookup.
func storeGetHitRunner() func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		return withTempStore(func(st *store.Store) (Metrics, error) {
			payload := []byte(`{"found":true,"witness":{"q0":"q1","teams":[0,1,0],"ops":["a","b","a"]}}`)
			if err := st.Put(context.Background(), "search", "bench-key", payload); err != nil {
				return nil, err
			}
			for i := 0; i < iters; i++ {
				if _, ok, err := st.Get(context.Background(), "search", "bench-key"); !ok || err != nil {
					return nil, fmt.Errorf("store/get-hit: ok=%v err=%v", ok, err)
				}
			}
			return nil, nil
		})
	}
}

// storePutRunner measures the full crash-safe write path — temp file,
// fsync, rename — with a distinct key per iteration (the realistic
// census/job write pattern; identical keys would short-circuit into the
// idempotence no-op).
func storePutRunner() func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		return withTempStore(func(st *store.Store) (Metrics, error) {
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("bench-key-%08d", i)
				payload := []byte(fmt.Sprintf(`{"row":%d}`, i))
				if err := st.Put(context.Background(), "census-row", key, payload); err != nil {
					return nil, err
				}
			}
			return nil, nil
		})
	}
}

// storeEvictRunner measures a budgeted put with eviction riding along:
// the store is held right at its byte budget, so every distinct-key
// write also pays one size-aware LRU eviction (victim selection plus
// unlink) — the steady-state write cost of a full store under
// -store-budget.
func storeEvictRunner() func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		dir, err := os.MkdirTemp("", "rcbench-evict-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		// Budget sized to ~64 entries of the fixed-shape payload below,
		// so the store saturates almost immediately and the measured loop
		// is all evict-on-put.
		payload := []byte(`{"row":1234567,"pad":"xxxxxxxxxxxxxxxx"}`)
		st, err := store.Open(dir, store.Options{CacheEntries: -1, BudgetBytes: 64 * 256})
		if err != nil {
			return nil, err
		}
		// Pre-fill past the budget so every measured put evicts.
		for i := 0; i < 100; i++ {
			if err := st.Put(context.Background(), "census-row", fmt.Sprintf("prefill-%08d", i), payload); err != nil {
				return nil, err
			}
		}
		if st.Stats().DiskEvictions == 0 {
			return nil, fmt.Errorf("store/evict: budget never saturated in pre-fill")
		}
		before := st.Stats().DiskEvictions
		for i := 0; i < iters; i++ {
			key := fmt.Sprintf("bench-key-%08d", i)
			if err := st.Put(context.Background(), "census-row", key, payload); err != nil {
				return nil, err
			}
		}
		if st.Stats().DiskEvictions == before {
			return nil, fmt.Errorf("store/evict: measured loop never evicted")
		}
		return nil, nil
	}
}

// storePeerHitRunner measures the full peer read-through round-trip on
// a warm peer: HTTP fetch from an in-process replica (served straight
// off GetRaw) plus the receiver-side envelope re-verification. This is
// the per-result cost a cold replica pays to warm itself off the fleet
// instead of recomputing.
func storePeerHitRunner() func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		return withTempStore(func(st *store.Store) (Metrics, error) {
			payload := []byte(`{"found":true,"witness":{"q0":"q1","teams":[0,1,0],"ops":["a","b","a"]}}`)
			if err := st.Put(context.Background(), "search", "bench-key", payload); err != nil {
				return nil, err
			}
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				// Minimal stand-in for rcserve's GET /v1/store/{kind}/{addr}.
				parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/store/"), "/")
				if len(parts) != 2 {
					http.NotFound(w, r)
					return
				}
				raw, ok, err := st.GetRaw(parts[0], parts[1])
				if err != nil || !ok {
					http.NotFound(w, r)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				w.Write(raw)
			}))
			defer srv.Close()
			p, err := store.NewPeer(srv.URL, 5*time.Second)
			if err != nil {
				return nil, err
			}
			for i := 0; i < iters; i++ {
				if _, ok, err := p.Get(context.Background(), "search", "bench-key"); !ok || err != nil {
					return nil, fmt.Errorf("store/peer-hit: ok=%v err=%v", ok, err)
				}
			}
			return nil, nil
		})
	}
}

// jobsSubmitPollRunner measures the manager's full round-trip overhead
// on a trivial handler: submit a distinct job, spin on Get until it is
// done. Retention covers the whole run so eviction churn is not part of
// the measured path.
func jobsSubmitPollRunner() func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		m := jobs.New(jobs.Options{Workers: 1, Queue: 16, Retention: iters + 1})
		defer func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_ = m.Drain(ctx)
		}()
		m.Register("noop", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
			return json.RawMessage(`{"ok":true}`), nil
		})
		for i := 0; i < iters; i++ {
			info, _, err := m.Submit(context.Background(), "noop", json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)))
			if err != nil {
				return nil, err
			}
			for {
				got, ok := m.Get(info.ID)
				if !ok {
					return nil, fmt.Errorf("jobs/submit-poll: job %s vanished", info.ID)
				}
				if got.State == jobs.StateDone {
					break
				}
				if got.State.Terminal() {
					return nil, fmt.Errorf("jobs/submit-poll: job ended %s: %s", got.State, got.Error)
				}
				runtime.Gosched()
			}
		}
		return nil, nil
	}
}
