package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"rcons/internal/jobs"
	"rcons/internal/store"
)

// The persistence/async benchmarks measure the store and job subsystem
// the same way the engine and service use them: small JSON payloads,
// fingerprint-shaped keys, one manager reused across submissions.

// withTempStore opens a store in a fresh temp directory and cleans up
// after the measurement.
func withTempStore(fn func(*store.Store) (Metrics, error)) (Metrics, error) {
	dir, err := os.MkdirTemp("", "rcbench-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	return fn(st)
}

// storeGetHitRunner measures the hot-path read: the entry sits in the
// LRU front, so this is the steady-state cost a warm rcserve pays per
// memoized lookup.
func storeGetHitRunner() func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		return withTempStore(func(st *store.Store) (Metrics, error) {
			payload := []byte(`{"found":true,"witness":{"q0":"q1","teams":[0,1,0],"ops":["a","b","a"]}}`)
			if err := st.Put("search", "bench-key", payload); err != nil {
				return nil, err
			}
			for i := 0; i < iters; i++ {
				if _, ok, err := st.Get("search", "bench-key"); !ok || err != nil {
					return nil, fmt.Errorf("store/get-hit: ok=%v err=%v", ok, err)
				}
			}
			return nil, nil
		})
	}
}

// storePutRunner measures the full crash-safe write path — temp file,
// fsync, rename — with a distinct key per iteration (the realistic
// census/job write pattern; identical keys would short-circuit into the
// idempotence no-op).
func storePutRunner() func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		return withTempStore(func(st *store.Store) (Metrics, error) {
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("bench-key-%08d", i)
				payload := []byte(fmt.Sprintf(`{"row":%d}`, i))
				if err := st.Put("census-row", key, payload); err != nil {
					return nil, err
				}
			}
			return nil, nil
		})
	}
}

// jobsSubmitPollRunner measures the manager's full round-trip overhead
// on a trivial handler: submit a distinct job, spin on Get until it is
// done. Retention covers the whole run so eviction churn is not part of
// the measured path.
func jobsSubmitPollRunner() func(int) (Metrics, error) {
	return func(iters int) (Metrics, error) {
		m := jobs.New(jobs.Options{Workers: 1, Queue: 16, Retention: iters + 1})
		defer func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_ = m.Drain(ctx)
		}()
		m.Register("noop", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
			return json.RawMessage(`{"ok":true}`), nil
		})
		for i := 0; i < iters; i++ {
			info, _, err := m.Submit("noop", json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)))
			if err != nil {
				return nil, err
			}
			for {
				got, ok := m.Get(info.ID)
				if !ok {
					return nil, fmt.Errorf("jobs/submit-poll: job %s vanished", info.ID)
				}
				if got.State == jobs.StateDone {
					break
				}
				if got.State.Terminal() {
					return nil, fmt.Errorf("jobs/submit-poll: job ended %s: %s", got.State, got.Error)
				}
				runtime.Gosched()
			}
		}
		return nil, nil
	}
}
