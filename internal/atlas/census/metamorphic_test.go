package census

import (
	"fmt"
	"math/rand"
	"testing"

	"rcons/internal/atlas"
	"rcons/internal/checker"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// classSummary is the label-free core of a Classification: everything
// except the type name and the witnesses' concrete state/op labels.
// Metamorphic relations compare these, since relabeling necessarily
// changes the labels inside witnesses.
type classSummary struct {
	Readable              bool
	RecMax, DiscMax       int
	RecAtLimit, DiscAtLim bool
	ConsLo, ConsHi        int
	RconsLo, RconsHi      int
}

func summarize(c checker.Classification) classSummary {
	return classSummary{
		Readable: c.Readable,
		RecMax:   c.Recording.Max, DiscMax: c.Discerning.Max,
		RecAtLimit: c.Recording.AtLimit, DiscAtLim: c.Discerning.AtLimit,
		ConsLo: c.ConsLo, ConsHi: c.ConsHi,
		RconsLo: c.RconsLo, RconsHi: c.RconsHi,
	}
}

// relabelCustom renames every state, op and response of c consistently
// with fresh, rng-shuffled names.
func relabelCustom(rng *rand.Rand, c *types.Custom) *types.Custom {
	var states, ops []string
	for s := range c.Transitions {
		states = append(states, s)
	}
	for op := range c.Transitions[states[0]] {
		ops = append(ops, op)
	}
	rset := map[string]bool{}
	for _, row := range c.Transitions {
		for _, e := range row {
			rset[e.Resp] = true
		}
	}
	var resps []string
	for r := range rset {
		resps = append(resps, r)
	}

	fresh := func(prefix string, names []string) map[string]string {
		perm := rng.Perm(len(names))
		m := make(map[string]string, len(names))
		for i, name := range names {
			m[name] = fmt.Sprintf("%s_%d_x", prefix, perm[i])
		}
		return m
	}
	sm := fresh("S", states)
	om := fresh("O", ops)
	rm := fresh("R", resps)

	out := &types.Custom{
		TypeName:    c.TypeName + "-relabeled",
		Transitions: map[string]map[string]types.CustomEdge{},
	}
	if c.ReadableFlag != nil {
		f := *c.ReadableFlag
		out.ReadableFlag = &f
	}
	for _, init := range c.Initial {
		out.Initial = append(out.Initial, sm[init])
	}
	for s, row := range c.Transitions {
		nrow := map[string]types.CustomEdge{}
		for op, e := range row {
			nrow[om[op]] = types.CustomEdge{Next: sm[e.Next], Resp: rm[e.Resp]}
		}
		out.Transitions[sm[s]] = nrow
	}
	return out
}

// TestMetamorphicRelabelingZoo: for every zoo type, the tabulated
// transition table and a random consistent relabeling of it classify
// identically (Classification is a function of structure, not labels).
func TestMetamorphicRelabelingZoo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const limit = 3
	for _, zt := range types.Zoo() {
		base, err := atlas.Tabulate(zt, limit, 2048)
		if err != nil {
			t.Logf("skipping %s: %v", zt.Name(), err)
			continue
		}
		rel := relabelCustom(rng, base)
		if err := rel.Validate(); err != nil {
			t.Fatalf("%s: relabeling broke the table: %v", zt.Name(), err)
		}
		cb, err := checker.Classify(base, limit, nil)
		if err != nil {
			t.Fatalf("%s: %v", zt.Name(), err)
		}
		cr, err := checker.Classify(rel, limit, nil)
		if err != nil {
			t.Fatalf("%s relabeled: %v", zt.Name(), err)
		}
		if summarize(cb) != summarize(cr) {
			t.Errorf("%s: classification not relabeling-invariant:\nbase      %+v\nrelabeled %+v",
				zt.Name(), summarize(cb), summarize(cr))
		}
	}
}

// TestMetamorphicRelabelingGenerated: the same relation over a seeded
// sample of generated tables, including non-ack response alphabets.
func TestMetamorphicRelabelingGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	const limit = 3
	for trial := 0; trial < trials; trial++ {
		tbl := atlas.Random(rng, 2+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3))
		base := tbl.Custom()
		rel := relabelCustom(rng, base)
		cb, err := checker.Classify(base, limit, nil)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := checker.Classify(rel, limit, nil)
		if err != nil {
			t.Fatal(err)
		}
		if summarize(cb) != summarize(cr) {
			t.Fatalf("trial %d: classification not relabeling-invariant for %s:\nbase      %+v\nrelabeled %+v",
				trial, tbl.Dims(), summarize(cb), summarize(cr))
		}
	}
}

// TestMetamorphicCanonicalization: a table and its atlas canonical form
// classify identically — canonicalization is a relabeling, nothing more.
func TestMetamorphicCanonicalization(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	trials := 80
	if testing.Short() {
		trials = 20
	}
	const limit = 3
	for trial := 0; trial < trials; trial++ {
		tbl := atlas.Random(rng, 2+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3))
		canon, ok := tbl.Canonical()
		if !ok {
			t.Fatalf("trial %d: %s not canonicalizable", trial, tbl.Dims())
		}
		cb, err := checker.Classify(tbl, limit, nil)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := checker.Classify(canon, limit, nil)
		if err != nil {
			t.Fatal(err)
		}
		sb, sc := summarize(cb), summarize(cc)
		// Canonicalization may drop unused response indices; that cannot
		// change any classification field (responses only matter through
		// the transition function, which is preserved).
		if sb != sc {
			t.Fatalf("trial %d: canonical form classifies differently for %s:\noriginal  %+v\ncanonical %+v",
				trial, tbl.Dims(), sb, sc)
		}
	}
}

// TestMetamorphicCanonicalZooTables: zoo types small enough to densify
// classify the same as their canonical all-initial Table form. (The
// all-initial semantics must match, so only types whose InitialStates
// already cover the reachable space qualify.)
func TestMetamorphicCanonicalZooTables(t *testing.T) {
	const limit = 3
	for _, zt := range []spec.Type{types.NewSticky(), types.TestAndSet{}, types.NewSn(2), types.NewSn(3)} {
		tbl, err := atlas.FromType(zt, limit, 64)
		if err != nil {
			t.Fatalf("%s: %v", zt.Name(), err)
		}
		if tbl.NumStates() != len(zt.InitialStates()) {
			continue // initial states don't cover the space; semantics differ
		}
		canon, ok := tbl.Canonical()
		if !ok {
			t.Fatalf("%s: not canonicalizable", zt.Name())
		}
		c1, err := checker.Classify(tbl, limit, nil)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := checker.Classify(canon, limit, nil)
		if err != nil {
			t.Fatal(err)
		}
		if summarize(c1) != summarize(c2) {
			t.Errorf("%s: canonical table classifies differently:\n%+v\nvs\n%+v",
				zt.Name(), summarize(c1), summarize(c2))
		}
	}
}
