package census

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"rcons/internal/atlas"
	"rcons/internal/engine"
	"rcons/internal/store"
)

// countingStore wraps a real on-disk store and counts census-row
// traffic so tests can prove reuse vs recomputation.
type countingStore struct {
	inner   *store.Store
	mu      sync.Mutex
	rowGets int
	rowHits int
	rowPuts int
}

func (c *countingStore) Get(ctx context.Context, kind, key string) ([]byte, bool, error) {
	data, ok, err := c.inner.Get(ctx, kind, key)
	if kind == rowStoreKind {
		c.mu.Lock()
		c.rowGets++
		if ok {
			c.rowHits++
		}
		c.mu.Unlock()
	}
	return data, ok, err
}

func (c *countingStore) Put(ctx context.Context, kind, key string, payload []byte) error {
	if kind == rowStoreKind {
		c.mu.Lock()
		c.rowPuts++
		c.mu.Unlock()
	}
	return c.inner.Put(ctx, kind, key, payload)
}

func smallStoreOptions(st engine.Persist, workers int) Options {
	return Options{
		Bounds:  atlas.Bounds{States: 2, Ops: 2, Resps: 1},
		Random:  40,
		Seed:    7,
		Limit:   3,
		Workers: workers,
		Engine:  engine.New(engine.Options{Workers: workers}),
		Store:   st,
	}
}

// TestStoreResumeAcrossRestart: the second run (fresh engine, fresh
// store handle on the same dir — a restarted process) must reuse every
// row from the store, classify nothing, and emit the identical artifact.
func TestStoreResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *countingStore {
		t.Helper()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return &countingStore{inner: s}
	}
	ctx := context.Background()

	st1 := open()
	a1, err := Run(ctx, smallStoreOptions(st1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st1.rowPuts != a1.Types {
		t.Fatalf("cold run persisted %d rows for %d types", st1.rowPuts, a1.Types)
	}
	enc1, err := a1.Encode()
	if err != nil {
		t.Fatal(err)
	}

	st2 := open()
	a2, err := Run(ctx, smallStoreOptions(st2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st2.rowHits != a2.Types {
		t.Fatalf("warm run reused %d of %d rows", st2.rowHits, a2.Types)
	}
	if st2.rowPuts != 0 {
		t.Fatalf("warm run re-classified %d rows", st2.rowPuts)
	}
	enc2, err := a2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("store-resumed artifact is not byte-identical to the cold one")
	}
}

// TestStoreDeterminismAcrossWorkerCounts is the PR's determinism
// acceptance gate with persistence enabled: cold store at workers=1,
// cold store at workers=4, and a warm-store rerun must all encode to
// identical bytes — and must match the storeless artifact.
func TestStoreDeterminismAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	baseline, err := Run(ctx, func() Options {
		o := smallStoreOptions(nil, 2)
		o.Store = nil
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		for round := 0; round < 2; round++ { // round 1 = cold, round 2 = warm
			s, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			a, err := Run(ctx, smallStoreOptions(s, workers))
			if err != nil {
				t.Fatal(err)
			}
			got, err := a.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("workers=%d round=%d: store-enabled artifact differs from baseline", workers, round)
			}
		}
	}
}

// TestStoreBudgetKeepsArtifactByteIdentical is the budget acceptance
// gate: a census through a store whose budget forces eviction mid-run
// must stay within that budget AND emit an artifact byte-identical to
// the unbudgeted run — the budget may only trade recomputation for
// disk, never results.
func TestStoreBudgetKeepsArtifactByteIdentical(t *testing.T) {
	ctx := context.Background()
	// Unbudgeted baseline, measuring how many bytes the run wants.
	full, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Run(ctx, smallStoreOptions(full, 4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := a1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	need := full.Stats().Bytes
	if need == 0 {
		t.Fatal("baseline run stored nothing")
	}

	// A budget of a third of that forces evictions during the run.
	budget := need / 3
	tight, err := store.Open(t.TempDir(), store.Options{BudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(ctx, smallStoreOptions(tight, 4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("budgeted census artifact differs from the unbudgeted one")
	}
	st := tight.Stats()
	if st.Bytes > budget {
		t.Fatalf("store over budget after the run: %d > %d", st.Bytes, budget)
	}
	if st.DiskEvictions == 0 {
		t.Fatalf("budget %d of %d bytes never evicted — test too loose: %+v", budget, need, st)
	}
	// A rerun over the evicted store still converges to the same bytes.
	a3, err := Run(ctx, smallStoreOptions(tight, 4))
	if err != nil {
		t.Fatal(err)
	}
	enc3, err := a3.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc3, want) {
		t.Fatal("rerun over the budgeted store drifted")
	}
}

// TestStoreScopedByLimit: rows stored at one scan limit must not leak
// into a census at another.
func TestStoreScopedByLimit(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingStore{inner: s}
	if _, err := Run(ctx, smallStoreOptions(cs, 2)); err != nil {
		t.Fatal(err)
	}
	o := smallStoreOptions(cs, 2)
	o.Limit = 2
	cs.rowHits = 0
	a, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if cs.rowHits != 0 {
		t.Fatalf("limit-3 rows answered a limit-2 census (%d hits)", cs.rowHits)
	}
	if a.Limit != 2 {
		t.Fatalf("artifact limit = %d", a.Limit)
	}
}

// TestStoreAndPriorCompose: Prior rows are preferred, but they are
// written through so the store still ends up complete.
func TestStoreAndPriorCompose(t *testing.T) {
	ctx := context.Background()
	prior, err := Run(ctx, func() Options {
		o := smallStoreOptions(nil, 2)
		o.Store = nil
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingStore{inner: s}
	o := smallStoreOptions(cs, 2)
	o.Prior = prior
	a, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if cs.rowPuts != a.Types {
		t.Fatalf("prior rows not written through: %d puts for %d types", cs.rowPuts, a.Types)
	}
	// A third run with only the store must now reuse everything.
	cs2 := &countingStore{inner: s}
	b, err := Run(ctx, smallStoreOptions(cs2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if cs2.rowHits != b.Types || cs2.rowPuts != 0 {
		t.Fatalf("store warmed via prior not reused: hits=%d puts=%d types=%d",
			cs2.rowHits, cs2.rowPuts, b.Types)
	}
}
