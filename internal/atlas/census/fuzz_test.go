package census

import (
	"testing"

	"rcons/internal/atlas"
	"rcons/internal/checker"
	"rcons/internal/types"
)

// decodeFuzzTable interprets raw bytes as a dense generator spec:
// byte 0 → states (1..4), byte 1 → ops (1..3), byte 2 → resps (1..3),
// then 2 bytes per cell. The same bytes always decode to the same
// table, so findings are reproducible.
func decodeFuzzTable(data []byte) (*atlas.Table, bool) {
	if len(data) < 3 {
		return nil, false
	}
	states := int(data[0])%4 + 1
	ops := int(data[1])%3 + 1
	resps := int(data[2])%3 + 1
	cells := states * ops
	if len(data) < 3+2*cells {
		return nil, false
	}
	next := make([]uint8, cells)
	resp := make([]uint8, cells)
	for i := 0; i < cells; i++ {
		next[i] = data[3+2*i] % uint8(states)
		resp[i] = data[4+2*i] % uint8(resps)
	}
	t, err := atlas.NewTable(states, ops, resps, next, resp)
	if err != nil {
		return nil, false
	}
	return t, true
}

// FuzzAtlasDecode feeds arbitrary bytes through both decode paths of
// the atlas pipeline — Custom JSON import and the dense generator
// spec — and checks the invariants the census relies on: valid inputs
// validate, classify at n = 2 without panicking, and canonical dedup is
// idempotent (the canonical form of a canonical form is itself).
func FuzzAtlasDecode(f *testing.F) {
	// JSON seeds: a valid two-state table, a non-readable variant, and
	// near-miss malformed inputs.
	f.Add([]byte(`{"name":"t","initial":["a"],"transitions":{"a":{"op":{"next":"b","resp":"x"}},"b":{"op":{"next":"b","resp":"y"}}}}`))
	f.Add([]byte(`{"name":"t","readable":false,"transitions":{"a":{"op":{"next":"a","resp":"x"}}}}`))
	f.Add([]byte(`{"name":"t","transitions":{"a":{"op":{"next":"MISSING","resp":"x"}}}}`))
	f.Add([]byte(`{"name":"","transitions":{}}`))
	// Dense generator-spec seeds.
	f.Add([]byte{0x01, 0x01, 0x01, 0x01, 0x00, 0x00, 0x01})
	f.Add([]byte{0x03, 0x02, 0x02, 0x00, 0x01, 0x02, 0x00, 0x01, 0x01, 0x00, 0x00, 0x02, 0x01, 0x00, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		var typ interface {
			Name() string
		}
		var tbl *atlas.Table
		if c, err := types.NewCustomFromJSON(data); err == nil {
			// JSON path: Validate accepted the table; it must classify
			// and densify without panicking (within small caps).
			if len(c.Transitions) > 16 || len(c.Ops()) > 6 {
				t.Skip()
			}
			if _, err := checker.Classify(c, 2, nil); err != nil {
				t.Fatalf("validated Custom failed to classify: %v", err)
			}
			dense, err := atlas.FromType(c, 2, 64)
			if err != nil {
				t.Skip() // oversized response alphabet etc.
			}
			tbl = dense
			typ = c
		} else {
			dense, ok := decodeFuzzTable(data)
			if !ok {
				t.Skip()
			}
			if _, err := checker.Classify(dense, 2, nil); err != nil {
				t.Fatalf("generated table failed to classify: %v", err)
			}
			tbl = dense
			typ = dense
		}

		key, ok := tbl.CanonicalKey()
		if !ok {
			t.Skip() // above the canonicalization caps
		}
		canon, ok := tbl.Canonical()
		if !ok {
			t.Fatalf("%s: CanonicalKey ok but Canonical failed", typ.Name())
		}
		again, ok := canon.CanonicalKey()
		if !ok || again != key {
			t.Fatalf("%s: canonical dedup not idempotent: %q vs %q", typ.Name(), key, again)
		}
		canon2, ok := canon.Canonical()
		if !ok {
			t.Fatalf("%s: canonical form not canonicalizable", typ.Name())
		}
		k2, _ := canon2.CanonicalKey()
		if k2 != key {
			t.Fatalf("%s: double canonicalization drifted: %q vs %q", typ.Name(), key, k2)
		}
	})
}
