package census

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rcons/internal/atlas"
	"rcons/internal/checker"
	"rcons/internal/engine"
	"rcons/internal/spec"
	"rcons/internal/types"
)

var updateGoldens = flag.Bool("update", false, "rewrite the zoo JSON goldens under testdata/zoo")

// goldenN freezes the process count at which zoo types are tabulated
// (spec.OpsForN types get their n=3 alphabet) and the limit the
// round-trip classifications scan to.
const goldenN = 3

// goldenFileName maps a zoo type name to a filesystem-safe golden path.
func goldenFileName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return filepath.Join("testdata", "zoo", b.String()+".json")
}

// exportZoo tabulates every exportable zoo type as indented, key-sorted
// (and therefore byte-stable) Custom JSON.
func exportZoo(t *testing.T) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, zt := range types.Zoo() {
		c, err := atlas.Tabulate(zt, goldenN, 2048)
		if err != nil {
			// read-only has no update operations; everything else must export.
			if strings.Contains(err.Error(), "no operations") {
				continue
			}
			t.Fatalf("%s: %v", zt.Name(), err)
		}
		data, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		out[zt.Name()] = append(data, '\n')
	}
	return out
}

// TestZooGoldenExports: the tabulated JSON export of every zoo type is
// byte-identical to the committed golden (regenerate with -update), and
// the number of exports is pinned so new zoo members must add goldens.
func TestZooGoldenExports(t *testing.T) {
	exports := exportZoo(t)
	if *updateGoldens {
		if err := os.MkdirAll(filepath.Join("testdata", "zoo"), 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range exports {
			if err := os.WriteFile(goldenFileName(name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, data := range exports {
		want, err := os.ReadFile(goldenFileName(name))
		if err != nil {
			t.Fatalf("%s: missing golden (run `go test ./internal/atlas/census -run TestZooGolden -update`): %v", name, err)
		}
		if string(want) != string(data) {
			t.Errorf("%s: export differs from committed golden %s (rerun with -update if intended)",
				name, goldenFileName(name))
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(exports) {
		t.Errorf("testdata/zoo has %d goldens but the zoo exports %d types", len(entries), len(exports))
	}
}

// TestZooRoundTripDifferential: for every committed golden, re-importing
// the JSON yields a type whose Classification is bit-identical to the
// in-memory export's and whose canonical fingerprint matches — the JSON
// codec loses nothing the checker can see.
func TestZooRoundTripDifferential(t *testing.T) {
	exports := exportZoo(t)
	eng := engine.New(engine.Options{})
	ctx := context.Background()
	for name, data := range exports {
		reimported, err := types.NewCustomFromJSON(data)
		if err != nil {
			t.Fatalf("%s: golden does not re-import: %v", name, err)
		}
		original, err := atlas.Tabulate(mustZoo(t, name), goldenN, 2048)
		if err != nil {
			t.Fatal(err)
		}

		c1, err := checker.Classify(original, goldenN, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c2, err := checker.Classify(reimported, goldenN, nil)
		if err != nil {
			t.Fatalf("%s reimported: %v", name, err)
		}
		if !reflect.DeepEqual(c1, c2) {
			t.Errorf("%s: classification changed through JSON:\nexport   %+v\nreimport %+v", name, c1, c2)
		}

		// The engine agrees, and the canonical fingerprints (when the
		// type is canonicalizable at all) are identical.
		e2, err := eng.Classify(ctx, reimported, goldenN)
		if err != nil {
			t.Fatalf("%s: engine: %v", name, err)
		}
		if !reflect.DeepEqual(c1, e2) {
			t.Errorf("%s: engine classification differs from sequential:\n%+v\nvs\n%+v", name, c1, e2)
		}
		fp1, ok1 := engine.CanonicalFingerprint(original, goldenN)
		fp2, ok2 := engine.CanonicalFingerprint(reimported, goldenN)
		if ok1 != ok2 || fp1 != fp2 {
			t.Errorf("%s: canonical fingerprint changed through JSON: (%s,%v) vs (%s,%v)",
				name, fp1, ok1, fp2, ok2)
		}
	}
}

// mustZoo resolves a zoo type by its display name.
func mustZoo(t *testing.T, name string) spec.Type {
	t.Helper()
	for _, zt := range types.Zoo() {
		if zt.Name() == name {
			return zt
		}
	}
	t.Fatalf("no zoo type named %q", name)
	return nil
}
