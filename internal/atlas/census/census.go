package census

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rcons/internal/atlas"
	"rcons/internal/engine"
	"rcons/internal/obs"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// Options configures a census run. The zero value is not runnable; use
// at least one generation stage (Bounds, Random or MutantsPerZoo) and a
// Limit ≥ 2.
type Options struct {
	// Bounds selects the exhaustive-enumeration stage; the zero value
	// skips it.
	Bounds atlas.Bounds
	// Random is the number of seeded random tables to sample; they are
	// drawn with dimensions uniform in 2..RandomBounds.States states,
	// 1..RandomBounds.Ops ops and 1..RandomBounds.Resps responses.
	Random       int
	RandomBounds atlas.Bounds
	// MutantsPerZoo applies this many mutation chains to every
	// tabulatable zoo type.
	MutantsPerZoo int
	// Seed drives the random and mutation stages.
	Seed int64
	// Limit is the classification scan limit (n = 2..Limit).
	Limit int
	// Workers bounds concurrent classifications; ≤ 0 means the engine's
	// worker count.
	Workers int
	// Timeout is the per-type classification deadline; 0 means 60s. A
	// fired timeout records the type under Skipped instead of failing
	// the census (and voids byte-reproducibility for that run).
	Timeout time.Duration
	// Engine is the classification engine to use; nil builds a fresh
	// one with default options.
	Engine *engine.Engine
	// Prior, when set, resumes from an earlier artifact: rows recorded
	// there at the same Limit are reused instead of re-classified.
	Prior *Artifact
	// Progress, when non-nil, receives periodic samples of rows done vs
	// total (plus the engine's memo/persist hit ratios) every
	// ProgressInterval during the classification stage, and one final
	// flush when the run ends. Publishing samples atomics off the worker
	// hot path; artifacts are byte-identical with or without a sink.
	Progress obs.Sink
	// ProgressInterval is the progress sampling period; 0 means 1s.
	ProgressInterval time.Duration
	// Store, when set, is the persistent resume path: rows found under
	// their dedup key (at the same Limit and schema version) are reused
	// instead of re-classified, and every classified row — including
	// ones reused from Prior — is written through, so census shards
	// survive restarts and are shared across binaries. Reused rows are
	// byte-identical to recomputed ones (classification is
	// deterministic), so the artifact's reproducibility guarantee holds
	// with or without a warm store.
	Store engine.Persist
}

// rowStoreKind namespaces census rows inside the shared store.
const rowStoreKind = "census-row"

// rowStoreKey addresses one classified row: the generation dedup key
// qualified by scan limit and artifact schema version.
func rowStoreKey(key string, limit int) string {
	return fmt.Sprintf("v%d/limit=%d/%s", Version, limit, key)
}

// DefaultRandomBounds is used when Options.RandomBounds is zero: up to 4
// states, 3 ops, 3 responses — the same envelope as the checker's
// brute-force differential tests.
var DefaultRandomBounds = atlas.Bounds{States: 4, Ops: 3, Resps: 3}

// item is one generated candidate awaiting classification.
type item struct {
	key    string
	source string
	dims   string
	typ    spec.Type
	table  json.RawMessage // Custom JSON for the gallery
}

// Run executes the census: generate (single-threaded, deterministic),
// dedup by canonical fingerprint, classify with bounded concurrency and
// per-type timeouts, then aggregate into an Artifact. See the package
// comment for the determinism guarantees.
func Run(ctx context.Context, o Options) (*Artifact, error) {
	ctx, span := obs.StartSpan(ctx, "census.run")
	defer span.End()
	if o.Limit < 2 {
		span.MarkError()
		return nil, fmt.Errorf("census: limit must be ≥ 2, got %d", o.Limit)
	}
	zero := atlas.Bounds{}
	if o.Bounds == zero && o.Random <= 0 && o.MutantsPerZoo <= 0 {
		return nil, fmt.Errorf("census: nothing to generate (set Bounds, Random or MutantsPerZoo)")
	}
	if o.RandomBounds == zero {
		o.RandomBounds = DefaultRandomBounds
	}
	if o.Random > 0 {
		rb := o.RandomBounds
		if rb.States < 2 || rb.Ops < 1 || rb.Resps < 1 {
			return nil, fmt.Errorf("census: random bounds need ≥2 states, ≥1 op and ≥1 resp, got %+v", rb)
		}
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	eng := o.Engine
	if eng == nil {
		eng = engine.New(engine.Options{})
	}
	workers := o.Workers
	if workers <= 0 {
		workers = eng.Workers()
	}

	art := &Artifact{Summary: Summary{
		Version: Version,
		Seed:    o.Seed,
		Limit:   o.Limit,
		Bounds:  o.Bounds, Random: o.Random, RandomBounds: o.RandomBounds,
		MutantsPerZoo:   o.MutantsPerZoo,
		RconsBands:      map[string]int{},
		ConsBands:       map[string]int{},
		Levels:          map[string]int{},
		NovelRconsBands: []string{},
		Skipped:         []string{},
		Extremal:        Extremal{PerRconsBand: map[string]Entry{}, Gaps: []Entry{}},
	}, Rows: map[string]Row{}}

	items, raw, dups, err := generate(o)
	if err != nil {
		return nil, err
	}
	art.Raw = raw
	art.Generated = len(items) + dups
	art.Duplicates = dups

	// Classify, reusing rows from the prior artifact and the persistent
	// store where possible. Prior wins (it needs no I/O); either way a
	// reused row is written through so the store warms up.
	putRow := func(key string, row Row) {
		if o.Store == nil {
			return
		}
		if data, err := json.Marshal(row); err == nil {
			// Store failures degrade future resumes, never this census.
			_ = o.Store.Put(ctx, rowStoreKind, rowStoreKey(key, o.Limit), data)
		}
	}
	var todo []item
	for _, it := range items {
		if o.Prior != nil && o.Prior.Limit == o.Limit {
			if row, ok := o.Prior.Rows[it.key]; ok {
				art.Rows[it.key] = row
				putRow(it.key, row)
				continue
			}
		}
		if o.Store != nil {
			if data, ok, err := o.Store.Get(ctx, rowStoreKind, rowStoreKey(it.key, o.Limit)); err == nil && ok {
				var row Row
				if json.Unmarshal(data, &row) == nil && row.Name != "" {
					art.Rows[it.key] = row
					continue
				}
			}
		}
		todo = append(todo, it)
	}

	// Progress: rows reused from Prior or the store count as done
	// immediately; workers bump the counter as they classify.
	var rowsDone atomic.Int64
	rowsDone.Store(int64(len(art.Rows)))
	start := time.Now()
	trace := obs.TraceID(ctx)
	stopProgress := obs.PublishEvery(o.ProgressInterval, o.Progress, func() obs.Progress {
		done := rowsDone.Load()
		elapsed := time.Since(start)
		var rate float64
		if secs := elapsed.Seconds(); secs > 0 {
			rate = float64(done) / secs
		}
		es := eng.Stats()
		return obs.Progress{
			Task:          "census",
			TraceID:       trace,
			Nodes:         done,
			NodesPerSec:   rate,
			RowsDone:      done,
			RowsTotal:     int64(len(items)),
			MemoHits:      es.Hits,
			MemoMisses:    es.Misses,
			PersistHits:   es.PersistHits,
			PersistMisses: es.PersistMisses,
			Elapsed:       elapsed,
		}
	})
	defer stopProgress()

	var (
		mu       sync.Mutex
		skipped  []string
		firstErr error
		wg       sync.WaitGroup
		ch       = make(chan item)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range ch {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop || ctx.Err() != nil {
					continue
				}
				ictx, cancel := context.WithTimeout(ctx, o.Timeout)
				c, err := eng.Classify(ictx, it.typ, o.Limit)
				cancel()
				rowsDone.Add(1)
				var row Row
				if err == nil {
					row = rowFromClassification(c, it.source, it.dims)
					putRow(it.key, row) // store I/O outside the artifact mutex
				}
				mu.Lock()
				switch {
				case err == nil:
					art.Rows[it.key] = row
				case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
					skipped = append(skipped, it.key)
				default:
					if firstErr == nil {
						firstErr = fmt.Errorf("census: classify %s: %w", it.typ.Name(), err)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, it := range todo {
		ch <- it
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sort.Strings(skipped)
	art.Skipped = skipped
	art.Types = len(art.Rows)

	// Zoo comparison at the same limit.
	zoo, err := eng.Scan(ctx, o.Limit)
	if err != nil {
		return nil, fmt.Errorf("census: zoo scan: %w", err)
	}
	zooBands := map[string]bool{}
	for _, c := range zoo {
		art.Zoo = append(art.Zoo, ZooEntry{
			Name: c.TypeName, Readable: c.Readable,
			Cons: c.ConsBand(), Rcons: c.RconsBand(),
		})
		zooBands[c.RconsBand()] = true
	}

	// Aggregates, all in deterministic (sorted-key) order.
	tables := make(map[string]item, len(items))
	for _, it := range items {
		tables[it.key] = it
	}
	for _, key := range sortedKeys(art.Rows) {
		r := art.Rows[key]
		art.RconsBands[r.Rcons.Display]++
		art.ConsBands[r.Cons.Display]++
		art.Levels[r.levelKey()]++
		if it, ok := tables[key]; ok {
			entry := Entry{
				Key: key, Name: r.Name, Source: r.Source,
				Cons: r.Cons.Display, Rcons: r.Rcons.Display,
				Table: it.table,
			}
			if _, have := art.Extremal.PerRconsBand[r.Rcons.Display]; !have {
				art.Extremal.PerRconsBand[r.Rcons.Display] = entry
			}
			if r.Rcons.Hi != UnboundedHi && r.Cons.Lo > r.Rcons.Hi && len(art.Extremal.Gaps) < GapCap {
				art.Extremal.Gaps = append(art.Extremal.Gaps, entry)
			}
		}
	}
	for band := range art.RconsBands {
		if !zooBands[band] {
			art.NovelRconsBands = append(art.NovelRconsBands, band)
		}
	}
	sort.Strings(art.NovelRconsBands)
	return art, nil
}

// generate produces the full candidate list deterministically:
// enumeration first, then random sampling, then zoo mutants. Dedup is by
// key — atlas canonical keys ("atlas:…" labels) for dense tables; for
// mutants, whose restricted initial-state sets the relabeling quotient
// cannot express, the exact engine fingerprint computed under a neutral
// name plus a readability bit (prefixed "f:").
func generate(o Options) (items []item, raw, dups int, err error) {
	seen := map[string]bool{}
	add := func(it item) {
		if seen[it.key] {
			dups++
			return
		}
		seen[it.key] = true
		items = append(items, it)
	}
	marshalTable := func(t spec.Type) (json.RawMessage, error) {
		var c *types.Custom
		switch v := t.(type) {
		case *atlas.Table:
			c = v.Custom()
		case *types.Custom:
			c = v
		default:
			return nil, fmt.Errorf("census: cannot marshal %T", t)
		}
		return json.Marshal(c)
	}

	zero := atlas.Bounds{}
	if o.Bounds != zero {
		var yieldErr error
		r, _, eerr := atlas.Enumerate(o.Bounds, func(key string, t *atlas.Table) bool {
			tj, merr := marshalTable(t)
			if merr != nil {
				yieldErr = merr
				return false
			}
			add(item{key: key, source: "enum", dims: t.Dims(), typ: t, table: tj})
			return true
		})
		if eerr != nil {
			return nil, 0, 0, eerr
		}
		if yieldErr != nil {
			return nil, 0, 0, yieldErr
		}
		raw = r
	}

	if o.Random > 0 {
		rb := o.RandomBounds // validated by Run
		rng := rand.New(rand.NewSource(o.Seed))
		for i := 0; i < o.Random; i++ {
			states := 2 + rng.Intn(rb.States-1)
			ops := 1 + rng.Intn(rb.Ops)
			resps := 1 + rng.Intn(rb.Resps)
			t := atlas.Random(rng, states, ops, resps)
			canon, key, ok := t.CanonicalWithKey()
			if !ok {
				return nil, 0, 0, fmt.Errorf("census: random table %s not canonicalizable", t.Dims())
			}
			canon = canon.WithLabel("atlas:" + key)
			tj, merr := marshalTable(canon)
			if merr != nil {
				return nil, 0, 0, merr
			}
			add(item{key: key, source: "random", dims: canon.Dims(), typ: canon, table: tj})
		}
	}

	if o.MutantsPerZoo > 0 {
		rng := rand.New(rand.NewSource(o.Seed + 1))
		for _, zt := range types.Zoo() {
			base, terr := atlas.Tabulate(zt, 3, 2048)
			if terr != nil {
				continue // deterministic: the same types always skip
			}
			for m := 0; m < o.MutantsPerZoo; m++ {
				mut := atlas.Mutate(rng, base, 1+rng.Intn(3))
				key, ok := mutantKey(mut, o.Limit)
				if !ok {
					continue
				}
				mut.TypeName = fmt.Sprintf("%s~m%d", zt.Name(), m)
				tj, merr := marshalTable(mut)
				if merr != nil {
					return nil, 0, 0, merr
				}
				add(item{key: key, source: "mutant", typ: mut, table: tj})
			}
		}
	}
	return items, raw, dups, nil
}

// mutantKey derives the dedup key of a mutated transition table: the
// exact engine fingerprint computed under a neutral name — so
// structurally identical mutants collide despite their distinct display
// names — plus a readability bit, which the transition-table
// fingerprint does not cover but the classification depends on.
func mutantKey(c *types.Custom, limit int) (string, bool) {
	anon := *c
	anon.TypeName = "mutant"
	fp, ok := engine.Fingerprint(&anon, limit)
	if !ok {
		return "", false
	}
	key := "f:" + fp
	if !c.IsReadable() {
		key += ":nr"
	}
	return key, true
}
