package census

import (
	"bytes"
	"context"
	"testing"

	"rcons/internal/atlas"
	"rcons/internal/engine"
	"rcons/internal/types"
)

// smallOpts is a census fixture small enough for unit tests but big
// enough to exercise every stage (enumeration, sampling, mutation).
func smallOpts() Options {
	return Options{
		Bounds:        atlas.Bounds{States: 2, Ops: 2, Resps: 2},
		Random:        150,
		RandomBounds:  atlas.Bounds{States: 3, Ops: 2, Resps: 2},
		MutantsPerZoo: 1,
		Seed:          1,
		Limit:         3,
	}
}

// TestCensusDeterministicAcrossWorkers: the artifact must be
// byte-identical for 1 worker and many workers, and across reruns.
func TestCensusDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	var encs [][]byte
	for _, workers := range []int{1, 4, 4} {
		o := smallOpts()
		o.Workers = workers
		o.Engine = engine.New(engine.Options{Workers: workers})
		a, err := Run(ctx, o)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, enc)
	}
	if !bytes.Equal(encs[0], encs[1]) {
		t.Fatal("artifact differs between 1 and 4 workers")
	}
	if !bytes.Equal(encs[1], encs[2]) {
		t.Fatal("artifact differs across reruns with identical options")
	}
}

// TestCensusInvariants: a healthy small census verifies, covers all
// three sources, and its aggregates are consistent.
func TestCensusInvariants(t *testing.T) {
	a, err := Run(context.Background(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(false); err != nil {
		t.Fatal(err)
	}
	sources := map[string]int{}
	for _, r := range a.Rows {
		sources[r.Source]++
	}
	for _, s := range []string{"enum", "random", "mutant"} {
		if sources[s] == 0 {
			t.Errorf("no rows from source %q (got %v)", s, sources)
		}
	}
	if a.Generated != a.Types+a.Duplicates {
		t.Errorf("generated %d != types %d + duplicates %d", a.Generated, a.Types, a.Duplicates)
	}
	if a.Raw < a.Types {
		t.Errorf("raw %d < types %d", a.Raw, a.Types)
	}
	// Every observed rcons band has a gallery entry with a table.
	for band := range a.RconsBands {
		e, ok := a.Extremal.PerRconsBand[band]
		if !ok {
			// Mutant-only bands may lack dense tables only if the mutant
			// item was dropped — which cannot happen: every item carries
			// its table.
			t.Errorf("band %q has no gallery entry", band)
			continue
		}
		if len(e.Table) == 0 {
			t.Errorf("gallery entry for band %q has no table", band)
		}
	}
}

// TestCensusResume: resuming from a prior artifact must reproduce the
// fresh artifact byte-for-byte (rows are reused, not recomputed).
func TestCensusResume(t *testing.T) {
	ctx := context.Background()
	fresh, err := Run(ctx, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := smallOpts()
	o.Prior = fresh
	resumed, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := fresh.Encode()
	e2, _ := resumed.Encode()
	if !bytes.Equal(e1, e2) {
		t.Fatal("resumed artifact differs from fresh artifact")
	}
	// A prior at a different limit must be ignored, not misused.
	o = smallOpts()
	o.Limit = 2
	o.Prior = fresh
	lower, err := Run(ctx, o)
	if err != nil {
		t.Fatal(err)
	}
	if lower.Limit != 2 {
		t.Fatalf("limit not honoured: %d", lower.Limit)
	}
	for key, r := range lower.Rows {
		if r.Rcons.Hi != UnboundedHi && r.Rcons.Hi > 2 {
			t.Fatalf("row %s leaked a limit-3 band into a limit-2 census: %+v", key, r.Rcons)
		}
	}
}

// TestCensusVerifyCatches: Verify rejects broken artifacts.
func TestCensusVerifyCatches(t *testing.T) {
	a, err := Run(context.Background(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(false); err != nil {
		t.Fatal(err)
	}
	bad := *a
	bad.Types = a.Types + 1
	if bad.Verify(false) == nil {
		t.Error("Verify accepted a row-count mismatch")
	}
	bad = *a
	bad.Skipped = []string{"deadbeef"}
	if bad.Verify(false) == nil {
		t.Error("Verify accepted skipped rows")
	}
	bad = *a
	bad.Rows = nil
	if bad.Verify(false) == nil {
		t.Error("Verify accepted an empty artifact")
	}
}

// TestMutantKeyIgnoresNameAndSeesReadability: structurally identical
// mutants share a dedup key regardless of display name, and flipping
// only the readability flag — which changes the classification — yields
// a different key.
func TestMutantKeyIgnoresNameAndSeesReadability(t *testing.T) {
	base, err := atlas.Tabulate(types.NewSticky(), 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	a := *base
	a.TypeName = "sticky~m0"
	b := *base
	b.TypeName = "sticky~m1"
	ka, okA := mutantKey(&a, 3)
	kb, okB := mutantKey(&b, 3)
	if !okA || !okB {
		t.Fatal("sticky tabulation not fingerprintable")
	}
	if ka != kb {
		t.Fatalf("identical structures got distinct keys:\n%s\n%s", ka, kb)
	}
	nr := *base
	f := false
	nr.ReadableFlag = &f
	kn, ok := mutantKey(&nr, 3)
	if !ok {
		t.Fatal("non-readable variant not fingerprintable")
	}
	if kn == ka {
		t.Fatal("readability flip did not change the dedup key")
	}

	// census.Run also rejects unusable random bounds instead of panicking.
	_, err = Run(context.Background(), Options{
		Random:       1,
		RandomBounds: atlas.Bounds{States: 4},
		Limit:        2,
	})
	if err == nil {
		t.Fatal("Run accepted a partially-set RandomBounds")
	}
}

// TestCensusSaveLoad round-trips the artifact through disk.
func TestCensusSaveLoad(t *testing.T) {
	a, err := Run(context.Background(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/atlas.json"
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := a.Encode()
	e2, _ := b.Encode()
	if !bytes.Equal(e1, e2) {
		t.Fatal("artifact changed through save/load")
	}
}
