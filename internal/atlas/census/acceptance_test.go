package census

import (
	"context"
	"testing"

	"rcons/internal/atlas"
)

// TestCensusAcceptance pins the PR's headline scenario: the full
// canonical enumeration at (≤3 states, ≤3 ops) plus 10k seeded random
// types classifies cleanly (no timeouts), and at least one generated
// type lands in an rcons band no zoo type occupies. ~6s, so skipped in
// -short (CI runs the same scenario through cmd/rcatlas).
func TestCensusAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second census; covered by the CI atlas smoke job")
	}
	a, err := Run(context.Background(), Options{
		Bounds:        atlas.Bounds{States: 3, Ops: 3, Resps: 1},
		Random:        10000,
		MutantsPerZoo: 2,
		Seed:          1,
		Limit:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(true); err != nil {
		t.Fatal(err)
	}
	t.Logf("types=%d (raw %d, dups %d), rcons bands %v, novel %v",
		a.Types, a.Raw, a.Duplicates, a.RconsBands, a.NovelRconsBands)
	if a.Types < 4000 {
		t.Errorf("suspiciously small universe: %d types", a.Types)
	}
}
