// Package census streams machine-generated types (package atlas)
// through the parallel classification engine and aggregates the results
// into a versioned, byte-reproducible JSON artifact: band histograms,
// recording/discerning level co-occurrence counts, the zoo's bands at
// the same scan limit for comparison, and a gallery of extremal
// witnesses — types in rcons bands no zoo type occupies, and types with
// a proven cons > rcons gap, the paper's title phenomenon.
//
// Determinism: generation is single-threaded and seed-driven,
// classification is engine-deterministic (the engine returns the same
// witness regardless of worker count), and aggregation is keyed by
// canonical fingerprints with every map and slice emitted in sorted
// order — so the artifact is byte-identical across reruns with the same
// parameters and across worker counts. The artifact doubles as a resume
// point: rows already classified at the same limit are reused instead of
// re-searched.
package census

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"rcons/internal/atlas"
	"rcons/internal/checker"
)

// Version identifies the artifact schema; bump on incompatible changes.
const Version = 1

// UnboundedHi is the JSON encoding of an upper band end that the scan
// could not bound ("≥ limit", possibly infinite).
const UnboundedHi = -1

// Band is a [lo, hi] bound on a consensus or recoverable-consensus
// number; Hi == UnboundedHi means the scan hit its limit.
type Band struct {
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
	Display string `json:"display"`
}

func encodeBand(lo, hi, limit int) Band {
	b := Band{Lo: lo, Hi: hi, Display: checker.BandString(lo, hi, limit)}
	if hi >= checker.Unbounded {
		b.Hi = UnboundedHi
	}
	return b
}

// Row is the per-type census record, keyed in Artifact.Rows by the
// type's dedup key.
type Row struct {
	// Name is the deterministic display name of the generated type.
	Name string `json:"name"`
	// Source records how the type was produced: "enum", "random" or
	// "mutant".
	Source string `json:"source"`
	// Dims is the table shape, e.g. "3s2o1r" (empty for mutants, whose
	// labels are not index-encoded).
	Dims string `json:"dims,omitempty"`
	// Readable mirrors types.Readable for the generated type.
	Readable bool `json:"readable"`
	// RecMax/DiscMax are the scanned maximal recording/discerning
	// levels; the AtLimit flags mark scans that still held at the limit.
	RecMax      int  `json:"recMax"`
	RecAtLimit  bool `json:"recAtLimit,omitempty"`
	DiscMax     int  `json:"discMax"`
	DiscAtLimit bool `json:"discAtLimit,omitempty"`
	// Cons and Rcons are the derived bands.
	Cons  Band `json:"cons"`
	Rcons Band `json:"rcons"`
}

func rowFromClassification(c checker.Classification, source, dims string) Row {
	return Row{
		Name:        c.TypeName,
		Source:      source,
		Dims:        dims,
		Readable:    c.Readable,
		RecMax:      c.Recording.Max,
		RecAtLimit:  c.Recording.AtLimit,
		DiscMax:     c.Discerning.Max,
		DiscAtLimit: c.Discerning.AtLimit,
		Cons:        encodeBand(c.ConsLo, c.ConsHi, c.Discerning.Limit),
		Rcons:       encodeBand(c.RconsLo, c.RconsHi, c.Recording.Limit),
	}
}

// levelKey renders the recording/discerning co-occurrence cell of a row,
// e.g. "rec=2,disc=3" or "rec=3+,disc=3+" when a scan hit the limit.
func (r Row) levelKey() string {
	suffix := func(at bool) string {
		if at {
			return "+"
		}
		return ""
	}
	return fmt.Sprintf("rec=%d%s,disc=%d%s", r.RecMax, suffix(r.RecAtLimit), r.DiscMax, suffix(r.DiscAtLimit))
}

// ZooEntry is one built-in zoo type's bands at the census limit.
type ZooEntry struct {
	Name     string `json:"name"`
	Readable bool   `json:"readable"`
	Cons     string `json:"cons"`
	Rcons    string `json:"rcons"`
}

// Entry is one gallery witness: a generated type worth looking at, with
// its full transition table so it can be re-examined with rcons/rcserve.
type Entry struct {
	Key    string `json:"key"`
	Name   string `json:"name"`
	Source string `json:"source"`
	Cons   string `json:"cons"`
	Rcons  string `json:"rcons"`
	// Table is the type's types.Custom JSON.
	Table json.RawMessage `json:"table"`
}

// Extremal is the witness gallery.
type Extremal struct {
	// PerRconsBand maps each observed rcons band to the smallest-keyed
	// generated type in it.
	PerRconsBand map[string]Entry `json:"perRconsBand"`
	// Gaps lists generated types whose bands prove cons > rcons
	// (ConsLo > RconsHi), capped at GapCap, sorted by key.
	Gaps []Entry `json:"gaps"`
}

// GapCap bounds the gap gallery.
const GapCap = 8

// Summary is everything in the artifact except the per-type rows — the
// payload rcserve's /v1/atlas endpoint returns.
type Summary struct {
	Version int   `json:"version"`
	Seed    int64 `json:"seed"`
	Limit   int   `json:"limit"`
	// Bounds is the exhaustive-enumeration block (zero when enumeration
	// was skipped); Random and RandomBounds describe the sampling stage;
	// MutantsPerZoo the zoo-mutation stage.
	Bounds        atlas.Bounds `json:"bounds"`
	Random        int          `json:"random"`
	RandomBounds  atlas.Bounds `json:"randomBounds"`
	MutantsPerZoo int          `json:"mutantsPerZoo"`
	// Raw counts enumerated tables before canonical dedup; Generated
	// counts all generated candidates (canonical enumeration + random +
	// mutants) before cross-source dedup; Duplicates of them hit an
	// existing key; Types is the final row count.
	Raw        int `json:"rawEnumerated"`
	Generated  int `json:"generated"`
	Duplicates int `json:"duplicates"`
	Types      int `json:"types"`
	// RconsBands / ConsBands are band histograms over the rows; Levels
	// counts (recording, discerning) level co-occurrences.
	RconsBands map[string]int `json:"rconsBands"`
	ConsBands  map[string]int `json:"consBands"`
	Levels     map[string]int `json:"levels"`
	// Zoo holds the built-in types' bands at the same limit.
	Zoo []ZooEntry `json:"zoo"`
	// NovelRconsBands lists rcons bands some generated type occupies but
	// no zoo type does.
	NovelRconsBands []string `json:"novelRconsBands"`
	Extremal        Extremal `json:"extremal"`
	// Skipped lists dedup keys whose classification exceeded the
	// per-type timeout (empty in any healthy run; a non-empty list also
	// voids the byte-reproducibility guarantee).
	Skipped []string `json:"skipped"`
}

// Artifact is the full census result: the summary plus one row per
// distinct generated type.
type Artifact struct {
	Summary
	Rows map[string]Row `json:"rows"`
}

// Encode renders the artifact as stable, human-diffable JSON (sorted
// keys, trailing newline). Two artifacts with equal contents encode to
// identical bytes.
func (a *Artifact) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("census: encode artifact: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes the artifact to path.
func (a *Artifact) Save(path string) error {
	data, err := a.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("census: save artifact: %w", err)
	}
	return nil
}

// Load reads an artifact from path, e.g. to resume a census.
func Load(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("census: load artifact: %w", err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("census: parse artifact %s: %w", path, err)
	}
	if a.Version != Version {
		return nil, fmt.Errorf("census: artifact %s has version %d, want %d", path, a.Version, Version)
	}
	return &a, nil
}

// Verify checks the structural invariants every healthy artifact
// satisfies; requireNovel additionally demands a generated type in an
// rcons band no zoo type occupies (the census's reason to exist).
func (a *Artifact) Verify(requireNovel bool) error {
	if a.Version != Version {
		return fmt.Errorf("census: version %d, want %d", a.Version, Version)
	}
	if len(a.Rows) == 0 {
		return fmt.Errorf("census: artifact has no rows")
	}
	if a.Types != len(a.Rows) {
		return fmt.Errorf("census: summary says %d types but artifact has %d rows", a.Types, len(a.Rows))
	}
	if len(a.Skipped) > 0 {
		return fmt.Errorf("census: %d types timed out (first: %s)", len(a.Skipped), a.Skipped[0])
	}
	total := 0
	for band, n := range a.RconsBands {
		if n <= 0 {
			return fmt.Errorf("census: empty band %q in histogram", band)
		}
		total += n
	}
	if total != len(a.Rows) {
		return fmt.Errorf("census: band histogram sums to %d, rows are %d", total, len(a.Rows))
	}
	for key, r := range a.Rows {
		if r.Rcons.Hi != UnboundedHi && r.Rcons.Lo > r.Rcons.Hi {
			return fmt.Errorf("census: row %s has inverted rcons band [%d,%d]", key, r.Rcons.Lo, r.Rcons.Hi)
		}
		if r.Rcons.Hi != UnboundedHi && r.Cons.Hi != UnboundedHi && r.Rcons.Hi > r.Cons.Hi {
			return fmt.Errorf("census: row %s violates rcons ≤ cons: rcons hi %d > cons hi %d",
				key, r.Rcons.Hi, r.Cons.Hi)
		}
	}
	if len(a.Zoo) == 0 {
		return fmt.Errorf("census: artifact has no zoo comparison")
	}
	if requireNovel && len(a.NovelRconsBands) == 0 {
		return fmt.Errorf("census: no generated type sits outside the zoo's rcons bands")
	}
	return nil
}

// sortedKeys returns the keys of m in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
