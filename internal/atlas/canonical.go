package atlas

import (
	"encoding/hex"
	"fmt"
	"sync"
)

// Caps on the canonical-form search: the minimization iterates all
// states! × ops! relabelings, so both factorials must stay small. The
// generator's own tables (≤ 5 states, ≤ 4 ops) are comfortably inside.
const (
	CanonMaxStates = 6
	CanonMaxOps    = 5
)

// Canonical returns the canonical representative of t's relabeling
// class — the relabeling of t whose byte encoding is lexicographically
// minimal over every state permutation × operation permutation, with
// responses renamed by first occurrence (so the response alphabet also
// shrinks to the responses actually used). Two tables have the same
// canonical representative exactly when one is a consistent renaming of
// the other's states, operations and responses.
//
// The representative carries no label (Name reports the dimensions), so
// canonicalization is a pure function of the transition structure and
// idempotent: t.Canonical().Canonical() == t.Canonical().
//
// ok is false when t exceeds the permutation caps.
func (t *Table) Canonical() (*Table, bool) {
	c, _, ok := t.CanonicalWithKey()
	return c, ok
}

// CanonicalKey returns the hex encoding of t's canonical byte form — a
// compact, relabeling-invariant identity used for dedup by Enumerate and
// by the census. ok is false when t exceeds the permutation caps.
func (t *Table) CanonicalKey() (string, bool) {
	enc, ok := t.canonicalBytes()
	if !ok {
		return "", false
	}
	return hex.EncodeToString(enc), true
}

// CanonicalWithKey returns the canonical representative and its key
// from a single minimization pass — the states!×ops! scan dominates
// canonicalization, so hot paths that need both (Enumerate, the census)
// should call this rather than Canonical + CanonicalKey.
func (t *Table) CanonicalWithKey() (*Table, string, bool) {
	enc, ok := t.canonicalBytes()
	if !ok {
		return nil, "", false
	}
	c, err := decodeCanonical(enc)
	if err != nil {
		// Unreachable: canonicalBytes emits well-formed encodings.
		panic(fmt.Sprintf("atlas: canonical decode: %v", err))
	}
	return c, hex.EncodeToString(enc), true
}

// canonicalBytes computes the minimal encoding over all relabelings.
func (t *Table) canonicalBytes() ([]byte, bool) {
	if t.states > CanonMaxStates || t.ops > CanonMaxOps {
		return nil, false
	}
	var best []byte
	buf := make([]byte, 3+2*t.states*t.ops)
	ren := make([]int, t.resps)
	for _, ps := range permutations(t.states) {
		for _, po := range permutations(t.ops) {
			t.encodePerm(ps, po, buf, ren)
			if best == nil || lessBytes(buf, best) {
				best = append(best[:0], buf...)
			}
		}
	}
	return best, true
}

// encodePerm writes the encoding of t relabeled by ps (old state → new
// state) and po (old op → new op) into buf: [S, O, R', next…, resp…],
// with responses renamed by first occurrence in the relabeled row-major
// order. buf must have length 3+2*S*O; ren must have length t.resps.
func (t *Table) encodePerm(ps, po []int, buf []byte, ren []int) {
	S, O := t.states, t.ops
	next := buf[3 : 3+S*O]
	resp := buf[3+S*O:]
	for s := 0; s < S; s++ {
		for o := 0; o < O; o++ {
			i := s*O + o
			j := ps[s]*O + po[o]
			next[j] = byte(ps[t.next[i]])
			resp[j] = t.resp[i]
		}
	}
	for r := range ren {
		ren[r] = -1
	}
	used := 0
	for i := range resp {
		if ren[resp[i]] < 0 {
			ren[resp[i]] = used
			used++
		}
		resp[i] = byte(ren[resp[i]])
	}
	buf[0], buf[1], buf[2] = byte(S), byte(O), byte(used)
}

// decodeCanonical rebuilds a Table from a canonical encoding.
func decodeCanonical(enc []byte) (*Table, error) {
	if len(enc) < 3 {
		return nil, fmt.Errorf("atlas: canonical encoding too short (%d bytes)", len(enc))
	}
	S, O, R := int(enc[0]), int(enc[1]), int(enc[2])
	if len(enc) != 3+2*S*O {
		return nil, fmt.Errorf("atlas: canonical encoding length %d does not match dims %dx%d", len(enc), S, O)
	}
	return NewTable(S, O, R, enc[3:3+S*O], enc[3+S*O:])
}

// lessBytes reports a < b lexicographically (equal lengths by
// construction: encodings within one minimization share dimensions).
func lessBytes(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Permutations returns all permutations of 0..k-1 in lexicographic
// order. The returned slices are shared and memoized process-wide for
// small k — callers must not mutate them. Exposed for the compiled
// core's automorphism-group search (internal/compile), which reuses the
// same relabeling machinery as canonicalization.
func Permutations(k int) [][]int {
	return permutations(k)
}

// permutations returns all permutations of 0..k-1 in lexicographic
// order. k is capped by CanonMaxStates/CanonMaxOps; results are memoized
// process-wide since the same small k values recur millions of times
// during enumeration.
func permutations(k int) [][]int {
	if k <= CanonMaxStates {
		permMu.Lock()
		defer permMu.Unlock()
		if permCache[k] == nil {
			permCache[k] = buildPermutations(k)
		}
		return permCache[k]
	}
	return buildPermutations(k)
}

var (
	permMu    sync.Mutex
	permCache [CanonMaxStates + 1][][]int
)

func buildPermutations(k int) [][]int {
	base := make([]int, k)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(prefix, rest []int)
	rec = func(prefix, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(append([]int(nil), prefix...), rest[i]), next)
		}
	}
	rec(nil, base)
	return out
}
