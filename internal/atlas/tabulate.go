package atlas

import (
	"fmt"
	"math/rand"
	"sort"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// Tabulate renders an arbitrary spec.Type as an explicit types.Custom
// transition table: it explores every state reachable from the type's
// initial states under its candidate operation alphabet for n processes
// and records the full table with the type's own state/op/response
// labels. Initial states and readability are preserved, so for
// fixed-alphabet types the tabulation classifies exactly like the
// original (the differential round-trip tests assert this); for
// spec.OpsForN types the alphabet is frozen at n.
//
// stateCap bounds the exploration; an error is returned when the
// reachable state space exceeds it.
func Tabulate(t spec.Type, n, stateCap int) (*types.Custom, error) {
	ops := spec.CandidateOps(t, n)
	if len(ops) == 0 {
		return nil, fmt.Errorf("atlas: %s has no operations to tabulate", t.Name())
	}
	inits := t.InitialStates()
	if len(inits) == 0 {
		return nil, fmt.Errorf("atlas: %s has no initial states", t.Name())
	}
	order, err := reachable(t, inits, ops, stateCap)
	if err != nil {
		return nil, err
	}
	tr := make(map[string]map[string]types.CustomEdge, len(order))
	for _, s := range order {
		row := make(map[string]types.CustomEdge, len(ops))
		for _, op := range ops {
			ns, r, err := t.Apply(s, op)
			if err != nil {
				return nil, fmt.Errorf("atlas: tabulate %s: %w", t.Name(), err)
			}
			row[string(op)] = types.CustomEdge{Next: string(ns), Resp: string(r)}
		}
		tr[string(s)] = row
	}
	initial := make([]string, 0, len(inits))
	seen := map[string]bool{}
	for _, s := range inits {
		if !seen[string(s)] {
			seen[string(s)] = true
			initial = append(initial, string(s))
		}
	}
	c := &types.Custom{TypeName: t.Name(), Initial: initial, Transitions: tr}
	if !types.Readable(t) {
		f := false
		c.ReadableFlag = &f
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("atlas: tabulate %s: %w", t.Name(), err)
	}
	return c, nil
}

// FromType renders an arbitrary spec.Type as a dense Table over the
// states reachable from its initial states under its candidate alphabet
// for n processes: states are numbered in breadth-first discovery order,
// operations in candidate order and responses by first occurrence.
//
// Note the semantic difference from Tabulate: a Table treats EVERY state
// as a candidate initial state, so when t restricts its initial states
// the resulting Table is a (possibly more powerful) all-initial variant.
// FromType exists for the canonicalization machinery — relabeling-class
// keys, dedup idempotence — not as a classification-preserving cast; use
// Tabulate for that.
func FromType(t spec.Type, n, stateCap int) (*Table, error) {
	if stateCap > MaxStates {
		stateCap = MaxStates
	}
	ops := spec.CandidateOps(t, n)
	if len(ops) == 0 {
		return nil, fmt.Errorf("atlas: %s has no operations", t.Name())
	}
	inits := t.InitialStates()
	if len(inits) == 0 {
		return nil, fmt.Errorf("atlas: %s has no initial states", t.Name())
	}
	order, err := reachable(t, inits, ops, stateCap)
	if err != nil {
		return nil, err
	}
	idx := make(map[spec.State]int, len(order))
	for i, s := range order {
		idx[s] = i
	}
	respIdx := map[spec.Response]int{}
	next := make([]uint8, len(order)*len(ops))
	resp := make([]uint8, len(order)*len(ops))
	for i, s := range order {
		for o, op := range ops {
			ns, r, err := t.Apply(s, op)
			if err != nil {
				return nil, fmt.Errorf("atlas: table %s: %w", t.Name(), err)
			}
			ri, ok := respIdx[r]
			if !ok {
				ri = len(respIdx)
				if ri >= MaxStates {
					return nil, fmt.Errorf("atlas: %s uses more than %d responses", t.Name(), MaxStates)
				}
				respIdx[r] = ri
			}
			next[i*len(ops)+o] = uint8(idx[ns])
			resp[i*len(ops)+o] = uint8(ri)
		}
	}
	tbl, err := NewTable(len(order), len(ops), len(respIdx), next, resp)
	if err != nil {
		return nil, err
	}
	return tbl.WithLabel(t.Name() + "#table"), nil
}

// reachable explores the state space breadth-first in deterministic
// order (initial states in order, then discovery order).
func reachable(t spec.Type, inits []spec.State, ops []spec.Op, cap int) ([]spec.State, error) {
	seen := make(map[spec.State]bool, len(inits))
	var order []spec.State
	for _, s := range inits {
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	for i := 0; i < len(order); i++ {
		for _, op := range ops {
			ns, _, err := t.Apply(order[i], op)
			if err != nil {
				return nil, fmt.Errorf("atlas: explore %s: %w", t.Name(), err)
			}
			if !seen[ns] {
				if len(order) >= cap {
					return nil, fmt.Errorf("atlas: %s exceeds the %d-state exploration cap", t.Name(), cap)
				}
				seen[ns] = true
				order = append(order, ns)
			}
		}
	}
	return order, nil
}

// Mutate returns a mutated deep copy of the transition table c, applying
// nmut mutations drawn uniformly from three kinds:
//
//   - edge rewire: one (state, op) transition is redirected to a random
//     existing state;
//   - response merge: all occurrences of one response value are renamed
//     to another, collapsing two response classes;
//   - readability toggle: the readable flag is flipped, moving the type
//     between the Theorem 3/8 regime and the unrestricted one.
//
// The result is always a valid (total, closed) table; state and
// operation sets are never changed, so mutants stay within the checker's
// reach. Mutation draws from rng deterministically (states, ops and
// responses are considered in sorted order).
func Mutate(rng *rand.Rand, c *types.Custom, nmut int) *types.Custom {
	states := make([]string, 0, len(c.Transitions))
	for s := range c.Transitions {
		states = append(states, s)
	}
	sort.Strings(states)
	var ops []string
	for op := range c.Transitions[states[0]] {
		ops = append(ops, op)
	}
	sort.Strings(ops)

	out := &types.Custom{
		TypeName:    c.TypeName + "~mut",
		Initial:     append([]string(nil), c.Initial...),
		Transitions: make(map[string]map[string]types.CustomEdge, len(states)),
	}
	if c.ReadableFlag != nil {
		f := *c.ReadableFlag
		out.ReadableFlag = &f
	}
	for _, s := range states {
		row := make(map[string]types.CustomEdge, len(ops))
		for _, op := range ops {
			row[op] = c.Transitions[s][op]
		}
		out.Transitions[s] = row
	}

	for m := 0; m < nmut; m++ {
		switch rng.Intn(3) {
		case 0: // edge rewire
			s := states[rng.Intn(len(states))]
			op := ops[rng.Intn(len(ops))]
			e := out.Transitions[s][op]
			e.Next = states[rng.Intn(len(states))]
			out.Transitions[s][op] = e
		case 1: // response merge
			rset := map[string]bool{}
			for _, s := range states {
				for _, op := range ops {
					rset[out.Transitions[s][op].Resp] = true
				}
			}
			resps := make([]string, 0, len(rset))
			for r := range rset {
				resps = append(resps, r)
			}
			sort.Strings(resps)
			if len(resps) < 2 {
				continue
			}
			from := resps[rng.Intn(len(resps))]
			to := resps[rng.Intn(len(resps))]
			for _, s := range states {
				for _, op := range ops {
					if e := out.Transitions[s][op]; e.Resp == from {
						e.Resp = to
						out.Transitions[s][op] = e
					}
				}
			}
		case 2: // readability toggle
			readable := out.ReadableFlag == nil || *out.ReadableFlag
			flipped := !readable
			out.ReadableFlag = &flipped
		}
	}
	return out
}
