package atlas

import (
	"fmt"
	"math/rand"
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// TestCanonicalInvariantUnderRelabeling: permuting states and ops of a
// random table never changes its canonical key, and the canonical form
// is idempotent.
func TestCanonicalInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		states := 1 + rng.Intn(4)
		ops := 1 + rng.Intn(3)
		resps := 1 + rng.Intn(3)
		tbl := Random(rng, states, ops, resps)
		key, ok := tbl.CanonicalKey()
		if !ok {
			t.Fatalf("trial %d: %s not canonicalizable", trial, tbl.Name())
		}

		// Random relabeling: permute states and ops, shuffle response ids.
		ps := rng.Perm(states)
		po := rng.Perm(ops)
		pr := rng.Perm(resps)
		next := make([]uint8, states*ops)
		resp := make([]uint8, states*ops)
		for s := 0; s < states; s++ {
			for o := 0; o < ops; o++ {
				i := s*ops + o
				j := ps[s]*ops + po[o]
				next[j] = uint8(ps[tbl.next[i]])
				resp[j] = uint8(pr[tbl.resp[i]])
			}
		}
		rel, err := NewTable(states, ops, resps, next, resp)
		if err != nil {
			t.Fatal(err)
		}
		relKey, ok := rel.CanonicalKey()
		if !ok || relKey != key {
			t.Fatalf("trial %d: canonical key not relabeling-invariant:\n%s\nvs\n%s", trial, key, relKey)
		}

		canon, ok := tbl.Canonical()
		if !ok {
			t.Fatalf("trial %d: Canonical failed", trial)
		}
		canonKey, _ := canon.CanonicalKey()
		if canonKey != key {
			t.Fatalf("trial %d: canonicalization not idempotent: %s vs %s", trial, key, canonKey)
		}
		canon2, _ := canon.Canonical()
		if canon2.Dims() != canon.Dims() {
			t.Fatalf("trial %d: Canonical(Canonical) changed dims: %s vs %s", trial, canon.Dims(), canon2.Dims())
		}
	}
}

// TestCanonicalDistinguishes: structurally different tiny tables get
// different keys.
func TestCanonicalDistinguishes(t *testing.T) {
	mk := func(next, resp []uint8) string {
		tbl, err := NewTable(2, 1, 2, next, resp)
		if err != nil {
			t.Fatal(err)
		}
		key, ok := tbl.CanonicalKey()
		if !ok {
			t.Fatal("not canonicalizable")
		}
		return key
	}
	loop := mk([]uint8{0, 1}, []uint8{0, 0}) // both states loop
	swap := mk([]uint8{1, 0}, []uint8{0, 0}) // states swap
	tell := mk([]uint8{0, 1}, []uint8{0, 1}) // loops with distinct resps
	if loop == swap || loop == tell || swap == tell {
		t.Fatalf("distinct structures share keys: loop=%s swap=%s tell=%s", loop, swap, tell)
	}
}

// TestEnumerateSmallCounts pins the raw and canonical counts of tiny
// universes (hand-checkable) and checks RawCount agrees with the
// enumeration.
func TestEnumerateSmallCounts(t *testing.T) {
	cases := []struct {
		b       Bounds
		wantRaw int
	}{
		// 1 state, 1 op, 1 resp: exactly the trivial loop.
		{Bounds{States: 1, Ops: 1, Resps: 1}, 1},
		// 2 states, 1 op, 1 resp: blocks (1,1)=1 and (2,1)=2^2=4.
		{Bounds{States: 2, Ops: 1, Resps: 1}, 5},
		// 2 states, 2 ops, 2 resps.
		{Bounds{States: 2, Ops: 2, Resps: 2}, 1*1 + 1*2 + 4*2 + 16*8},
	}
	for _, c := range cases {
		raw, kept, err := Enumerate(c.b, func(string, *Table) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if raw != c.wantRaw {
			t.Errorf("%v: raw = %d, want %d", c.b, raw, c.wantRaw)
		}
		if got := c.b.RawCount(); got != int64(c.wantRaw) {
			t.Errorf("%v: RawCount = %d, want %d", c.b, got, c.wantRaw)
		}
		if kept < 1 || kept > raw {
			t.Errorf("%v: implausible canonical count %d of %d", c.b, kept, raw)
		}
	}
}

// TestEnumerateYieldsCanonicalReps: every yielded table is its own
// canonical representative, keys are unique, and a rerun is identical.
func TestEnumerateYieldsCanonicalReps(t *testing.T) {
	b := Bounds{States: 2, Ops: 2, Resps: 2}
	var keys []string
	seen := map[string]bool{}
	_, _, err := Enumerate(b, func(key string, tbl *Table) bool {
		if seen[key] {
			t.Fatalf("duplicate key %s", key)
		}
		seen[key] = true
		keys = append(keys, key)
		self, ok := tbl.CanonicalKey()
		if !ok || self != key {
			t.Fatalf("yielded table is not canonical: key %s, self %s", key, self)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var keys2 []string
	_, _, err = Enumerate(b, func(key string, tbl *Table) bool {
		keys2 = append(keys2, key)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(keys2) {
		t.Fatalf("reruns disagree: %d vs %d keys", len(keys), len(keys2))
	}
	for i := range keys {
		if keys[i] != keys2[i] {
			t.Fatalf("rerun diverged at %d: %s vs %s", i, keys[i], keys2[i])
		}
	}
}

// TestRandomDeterministic: a fixed seed yields a fixed table.
func TestRandomDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(7)), 3, 2, 3)
	b := Random(rand.New(rand.NewSource(7)), 3, 2, 3)
	ka, _ := a.CanonicalKey()
	kb, _ := b.CanonicalKey()
	if ka != kb {
		t.Fatalf("same seed, different tables: %s vs %s", ka, kb)
	}
	for i := range a.next {
		if a.next[i] != b.next[i] || a.resp[i] != b.resp[i] {
			t.Fatalf("same seed, different cells at %d", i)
		}
	}
}

// TestTableSpecType exercises the spec.Type surface.
func TestTableSpecType(t *testing.T) {
	tbl, err := NewTable(2, 2, 2, []uint8{1, 0, 1, 1}, []uint8{0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.InitialStates()); got != 2 {
		t.Fatalf("InitialStates: got %d, want 2", got)
	}
	ns, r, err := tbl.Apply("s0", "o0")
	if err != nil || ns != "s1" || r != "r0" {
		t.Fatalf("Apply(s0,o0) = (%s,%s,%v)", ns, r, err)
	}
	if _, _, err := tbl.Apply("sX", "o0"); err == nil {
		t.Fatal("Apply accepted a bad state")
	}
	if _, _, err := tbl.Apply("s0", "oX"); err == nil {
		t.Fatal("Apply accepted a bad op")
	}
	if !types.Readable(tbl) {
		t.Fatal("Tables must be readable")
	}

	// Custom round trip preserves behaviour.
	c := tbl.Custom()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		for o := 0; o < 2; o++ {
			st := spec.State(fmt.Sprintf("s%d", s))
			op := spec.Op(fmt.Sprintf("o%d", o))
			n1, r1, _ := tbl.Apply(st, op)
			n2, r2, err := c.Apply(st, op)
			if err != nil || n1 != n2 || r1 != r2 {
				t.Fatalf("Custom disagrees at (%s,%s): (%s,%s) vs (%s,%s,%v)", st, op, n1, r1, n2, r2, err)
			}
		}
	}
}

// TestFromTypeRoundTrip: densifying a Table-born Custom recovers the
// same canonical class.
func TestFromTypeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		tbl := Random(rng, 2+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(3))
		back, err := FromType(tbl.Custom(), 2, 64)
		if err != nil {
			t.Fatal(err)
		}
		k1, _ := tbl.CanonicalKey()
		k2, _ := back.CanonicalKey()
		if k1 != k2 {
			t.Fatalf("trial %d: canonical class changed through Custom: %s vs %s", trial, k1, k2)
		}
	}
}

// TestTabulatePreservesBehaviour: the tabulation of a zoo type agrees
// with the original on every reachable (state, op) pair and preserves
// readability and initial states.
func TestTabulatePreservesBehaviour(t *testing.T) {
	for _, typ := range []spec.Type{
		types.NewSticky(),
		types.TestAndSet{},
		types.NewSn(3),
		types.NewTn(4),
		types.NewQueue(3),
	} {
		c, err := Tabulate(typ, 3, 1024)
		if err != nil {
			t.Fatalf("%s: %v", typ.Name(), err)
		}
		if types.Readable(typ) != types.Readable(c) {
			t.Fatalf("%s: readability not preserved", typ.Name())
		}
		inits := typ.InitialStates()
		if len(c.Initial) == 0 || c.Initial[0] != string(inits[0]) {
			t.Fatalf("%s: initial states not preserved: %v", typ.Name(), c.Initial)
		}
		for state := range c.Transitions {
			for _, op := range spec.CandidateOps(typ, 3) {
				n1, r1, err1 := typ.Apply(spec.State(state), op)
				n2, r2, err2 := c.Apply(spec.State(state), op)
				if err1 != nil || err2 != nil || n1 != n2 || r1 != r2 {
					t.Fatalf("%s: disagree at (%s,%s): (%s,%s,%v) vs (%s,%s,%v)",
						typ.Name(), state, op, n1, r1, err1, n2, r2, err2)
				}
			}
		}
	}
}

// TestMutateStaysValid: mutants always validate, keep the state/op sets,
// and the readability toggle is reachable.
func TestMutateStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base, err := Tabulate(types.NewSticky(), 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	sawNonReadable := false
	for trial := 0; trial < 200; trial++ {
		m := Mutate(rng, base, 1+rng.Intn(4))
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: mutant invalid: %v", trial, err)
		}
		if len(m.Transitions) != len(base.Transitions) {
			t.Fatalf("trial %d: state set changed", trial)
		}
		if !m.IsReadable() {
			sawNonReadable = true
		}
		// The original must never be touched.
		if err := base.Validate(); err != nil {
			t.Fatal(err)
		}
		if !base.IsReadable() {
			t.Fatalf("trial %d: mutation leaked into the base table", trial)
		}
	}
	if !sawNonReadable {
		t.Fatal("readability toggle never fired in 200 mutants")
	}
}
