// Package atlas generates the "type universe" the census pipeline
// surveys: machine-made deterministic readable types, produced three
// ways —
//
//   - exhaustive enumeration of all small transition tables up to
//     (states, ops, resps) bounds, deduplicated by canonical form so
//     each relabeling class is visited exactly once (Enumerate);
//   - seeded random sampling of larger tables (Random), the same
//     generator the checker's brute-force differential tests draw from;
//   - mutation of the hand-written zoo types (Tabulate + Mutate): edge
//     rewires, response merges and readability toggles applied to a
//     type's explicit transition table.
//
// Everything is emitted as a spec.Type — either the package's dense
// Table representation or a types.Custom transition table — so the
// checker, the classification engine and the census (package
// atlas/census) consume generated types exactly like hand-written ones.
//
// The package deliberately depends only on spec and types, so test
// packages anywhere (including internal/checker's own tests) can import
// it without import cycles.
package atlas

import (
	"fmt"
	"math/rand"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// MaxStates bounds the state count of a Table (indices are stored as
// bytes; the generator never needs more).
const MaxStates = 255

// Table is a dense, index-encoded finite deterministic readable type:
// states 0..S-1, operations 0..O-1 and responses 0..R-1, with the
// transition function stored as flat next/resp arrays indexed by
// s*O + o. States render as "s0", "s1", …, operations as "o0", … and
// responses as "r0", … .
//
// Every state is a candidate initial state (InitialStates returns all
// of them), and a Table is always readable in the paper's sense; the
// non-readable corner of the universe is covered by types.Custom values
// produced by Tabulate/Mutate. A Table is immutable after construction
// and safe for concurrent use.
type Table struct {
	states, ops, resps int
	next, resp         []uint8
	label              string

	stateNames []spec.State
	opNames    []spec.Op
	respNames  []spec.Response
	stateIdx   map[spec.State]int
	opIdx      map[spec.Op]int
}

var _ spec.Type = (*Table)(nil)

// NewTable builds a Table from its dimensions and flat transition
// arrays (next[s*ops+o] is the successor state, resp[s*ops+o] the
// response index). It validates that every entry is in range.
func NewTable(states, ops, resps int, next, resp []uint8) (*Table, error) {
	if states < 1 || states > MaxStates {
		return nil, fmt.Errorf("atlas: states must be in 1..%d, got %d", MaxStates, states)
	}
	if ops < 1 || ops > MaxStates {
		return nil, fmt.Errorf("atlas: ops must be in 1..%d, got %d", MaxStates, ops)
	}
	if resps < 1 || resps > MaxStates {
		return nil, fmt.Errorf("atlas: resps must be in 1..%d, got %d", MaxStates, resps)
	}
	if len(next) != states*ops || len(resp) != states*ops {
		return nil, fmt.Errorf("atlas: need %d next/resp entries, got %d/%d",
			states*ops, len(next), len(resp))
	}
	for i := range next {
		if int(next[i]) >= states {
			return nil, fmt.Errorf("atlas: next[%d]=%d out of range (states=%d)", i, next[i], states)
		}
		if int(resp[i]) >= resps {
			return nil, fmt.Errorf("atlas: resp[%d]=%d out of range (resps=%d)", i, resp[i], resps)
		}
	}
	t := &Table{
		states: states, ops: ops, resps: resps,
		next: append([]uint8(nil), next...),
		resp: append([]uint8(nil), resp...),
	}
	t.buildNames()
	return t, nil
}

func (t *Table) buildNames() {
	t.stateNames = make([]spec.State, t.states)
	t.stateIdx = make(map[spec.State]int, t.states)
	for s := 0; s < t.states; s++ {
		name := spec.State(fmt.Sprintf("s%d", s))
		t.stateNames[s] = name
		t.stateIdx[name] = s
	}
	t.opNames = make([]spec.Op, t.ops)
	t.opIdx = make(map[spec.Op]int, t.ops)
	for o := 0; o < t.ops; o++ {
		name := spec.Op(fmt.Sprintf("o%d", o))
		t.opNames[o] = name
		t.opIdx[name] = o
	}
	t.respNames = make([]spec.Response, t.resps)
	for r := 0; r < t.resps; r++ {
		t.respNames[r] = spec.Response(fmt.Sprintf("r%d", r))
	}
}

// Random draws a table with transition and response entries uniform over
// the given dimensions — the acid-test generator the checker's
// brute-force differential tests (and the census's sampling stage) use.
// It panics on invalid dimensions; callers pass literals or validated
// bounds. The rng consumption order (next then resp, row-major) is part
// of the contract: a fixed seed always yields the same table.
func Random(rng *rand.Rand, states, ops, resps int) *Table {
	next := make([]uint8, states*ops)
	resp := make([]uint8, states*ops)
	for s := 0; s < states; s++ {
		for o := 0; o < ops; o++ {
			next[s*ops+o] = uint8(rng.Intn(states))
			resp[s*ops+o] = uint8(rng.Intn(resps))
		}
	}
	t, err := NewTable(states, ops, resps, next, resp)
	if err != nil {
		panic(fmt.Sprintf("atlas: Random(%d,%d,%d): %v", states, ops, resps, err))
	}
	t.label = fmt.Sprintf("random(%d,%d)", states, ops)
	return t
}

// WithLabel returns a copy of t whose Name reports label. The transition
// arrays are shared (Tables are immutable).
func (t *Table) WithLabel(label string) *Table {
	c := *t
	c.label = label
	return &c
}

// NumStates returns the state count.
func (t *Table) NumStates() int { return t.states }

// NumOps returns the operation count.
func (t *Table) NumOps() int { return t.ops }

// NumResps returns the response-alphabet size.
func (t *Table) NumResps() int { return t.resps }

// Dims renders the dimensions compactly, e.g. "3s2o1r".
func (t *Table) Dims() string { return fmt.Sprintf("%ds%do%dr", t.states, t.ops, t.resps) }

// Name implements spec.Type.
func (t *Table) Name() string {
	if t.label != "" {
		return t.label
	}
	return "atlas(" + t.Dims() + ")"
}

// InitialStates implements spec.Type: every state is a candidate.
func (t *Table) InitialStates() []spec.State {
	return append([]spec.State(nil), t.stateNames...)
}

// Ops implements spec.Type.
func (t *Table) Ops() []spec.Op {
	return append([]spec.Op(nil), t.opNames...)
}

// Apply implements spec.Type.
func (t *Table) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	si, ok := t.stateIdx[s]
	if !ok {
		return "", "", fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	oi, ok := t.opIdx[op]
	if !ok {
		return "", "", fmt.Errorf("%w: %q", spec.ErrBadOp, op)
	}
	i := si*t.ops + oi
	return t.stateNames[t.next[i]], t.respNames[t.resp[i]], nil
}

// Custom converts the table to an equivalent types.Custom transition
// table (all states initial, readable), e.g. for JSON export.
func (t *Table) Custom() *types.Custom {
	tr := make(map[string]map[string]types.CustomEdge, t.states)
	for s := 0; s < t.states; s++ {
		row := make(map[string]types.CustomEdge, t.ops)
		for o := 0; o < t.ops; o++ {
			i := s*t.ops + o
			row[string(t.opNames[o])] = types.CustomEdge{
				Next: string(t.stateNames[t.next[i]]),
				Resp: string(t.respNames[t.resp[i]]),
			}
		}
		tr[string(t.stateNames[s])] = row
	}
	initial := make([]string, t.states)
	for s := 0; s < t.states; s++ {
		initial[s] = string(t.stateNames[s])
	}
	return &types.Custom{TypeName: t.Name(), Initial: initial, Transitions: tr}
}
