package atlas

import (
	"fmt"
)

// Bounds delimits an enumeration block: every table with at most States
// states, at most Ops operations and at most Resps distinct responses.
type Bounds struct {
	States int `json:"states"`
	Ops    int `json:"ops"`
	Resps  int `json:"resps"`
}

// Valid checks the bounds are usable by Enumerate (canonical dedup needs
// the permutation caps).
func (b Bounds) Valid() error {
	if b.States < 1 || b.States > CanonMaxStates {
		return fmt.Errorf("atlas: bounds states must be in 1..%d, got %d", CanonMaxStates, b.States)
	}
	if b.Ops < 1 || b.Ops > CanonMaxOps {
		return fmt.Errorf("atlas: bounds ops must be in 1..%d, got %d", CanonMaxOps, b.Ops)
	}
	if b.Resps < 1 {
		return fmt.Errorf("atlas: bounds resps must be ≥ 1, got %d", b.Resps)
	}
	return nil
}

// String renders the bounds, e.g. "≤3 states, ≤3 ops, ≤1 resps".
func (b Bounds) String() string {
	return fmt.Sprintf("≤%d states, ≤%d ops, ≤%d resps", b.States, b.Ops, b.Resps)
}

// RawCount returns the number of raw tables Enumerate visits before
// canonical dedup: for each (s, o) block, s^(s·o) next assignments times
// the number of response assignments in restricted-growth form with at
// most Resps classes. It overflows to a saturated math guard at 2^62 so
// callers can budget before enumerating.
func (b Bounds) RawCount() int64 {
	const sat = int64(1) << 62
	total := int64(0)
	for s := 1; s <= b.States; s++ {
		for o := 1; o <= b.Ops; o++ {
			cells := s * o
			block := int64(1)
			for i := 0; i < cells; i++ {
				if block > sat/int64(s) {
					return sat
				}
				block *= int64(s)
			}
			r := rgsCount(cells, b.Resps)
			if r == 0 || block > sat/r {
				return sat
			}
			block *= r
			if total > sat-block {
				return sat
			}
			total += block
		}
	}
	return total
}

// rgsCount counts restricted-growth strings of length m with at most r
// classes (= the number of partitions of m labeled cells into ≤ r
// response classes).
func rgsCount(m, r int) int64 {
	// f[k] = number of partial strings using exactly k classes so far.
	f := make([]int64, r+1)
	f[0] = 1
	for i := 0; i < m; i++ {
		nf := make([]int64, r+1)
		for k := 0; k <= r; k++ {
			if f[k] == 0 {
				continue
			}
			if k >= 1 {
				nf[k] += f[k] * int64(k) // reuse one of the k classes
			}
			if k < r {
				nf[k+1] += f[k] // open a new class
			}
		}
		f = nf
	}
	var out int64
	for k := 1; k <= r; k++ {
		out += f[k]
	}
	if m == 0 {
		out = 1
	}
	return out
}

// Enumerate visits every deterministic readable type within bounds
// exactly once up to relabeling: it iterates all raw transition tables
// (next assignments as a base-s odometer, response assignments as
// restricted-growth strings so response relabelings are never generated
// in the first place), canonicalizes each, and yields the canonical
// representative — labeled "atlas:<key-prefix>" — the first time its
// canonical key appears. Iteration order is deterministic.
//
// yield returns false to stop early. Enumerate reports the raw and
// canonical (yielded) counts.
func Enumerate(b Bounds, yield func(key string, t *Table) bool) (raw, kept int, err error) {
	if err := b.Valid(); err != nil {
		return 0, 0, err
	}
	seen := make(map[string]struct{})
	stopped := false
	for s := 1; s <= b.States && !stopped; s++ {
		for o := 1; o <= b.Ops && !stopped; o++ {
			cells := s * o
			next := make([]uint8, cells)
			resp := make([]uint8, cells)
			for {
				// All response assignments for this next vector, in
				// restricted-growth order.
				ok := rgsVisit(resp, b.Resps, func(used int) bool {
					raw++
					t, err2 := NewTable(s, o, used, next, resp)
					if err2 != nil {
						err = err2
						return false
					}
					canon, key, _ := t.CanonicalWithKey() // dims within caps by Valid
					if _, dup := seen[key]; dup {
						return true
					}
					seen[key] = struct{}{}
					kept++
					return yield(key, canon.WithLabel(labelForKey(key)))
				})
				if err != nil {
					return raw, kept, err
				}
				if !ok {
					stopped = true
					break
				}
				// Advance the next-state odometer.
				i := 0
				for ; i < cells; i++ {
					next[i]++
					if int(next[i]) < s {
						break
					}
					next[i] = 0
				}
				if i == cells {
					break
				}
			}
		}
	}
	return raw, kept, nil
}

// labelForKey derives the deterministic display name of a generated
// type from its canonical key. The full key is used: prefixes are not
// unique (keys share their leading dimension/transition bytes).
func labelForKey(key string) string {
	return "atlas:" + key
}

// rgsVisit enumerates all restricted-growth strings over resp (in
// place): resp[0] = 0 and resp[i] ≤ max(resp[:i])+1, capped at rmax
// classes. visit receives the number of classes used and returns false
// to stop; rgsVisit returns false if stopped early.
func rgsVisit(resp []uint8, rmax int, visit func(used int) bool) bool {
	var rec func(i, used int) bool
	rec = func(i, used int) bool {
		if i == len(resp) {
			return visit(used)
		}
		hi := used
		if hi >= rmax {
			hi = rmax - 1
		}
		for v := 0; v <= hi; v++ {
			resp[i] = uint8(v)
			nu := used
			if v == used {
				nu++
			}
			if !rec(i+1, nu) {
				return false
			}
		}
		return true
	}
	if len(resp) == 0 {
		return visit(0)
	}
	return rec(0, 0)
}
