package sim

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// TestMemoryDigestTracksSnapshot is the core incremental-hash invariant:
// across a series of mutations, two memories have equal digests exactly
// when they have equal snapshots.
func TestMemoryDigestTracksSnapshot(t *testing.T) {
	build := func(mutate func(*Memory)) *Memory {
		m := NewMemory()
		m.AddRegister("R", None)
		m.AddObject("O", types.NewCAS(), spec.State(types.Bottom))
		mutate(m)
		return m
	}
	variants := []*Memory{
		build(func(m *Memory) {}),
		build(func(m *Memory) { m.write("R", "x") }),
		build(func(m *Memory) { m.write("R", "x"); m.write("R", None) }), // back to initial
		build(func(m *Memory) { m.apply("O", "cas(_,x)") }),
		build(func(m *Memory) { m.AddRegister("S", "x") }),
		build(func(m *Memory) { m.FreshName("n") }), // only the counter differs
		build(func(m *Memory) { m.EnsureRegister("S", "x") }),
	}
	for i, a := range variants {
		for j, b := range variants {
			snapEq := a.Snapshot() == b.Snapshot()
			digEq := a.Digest() == b.Digest()
			if snapEq != digEq {
				t.Errorf("variant %d vs %d: snapshot equal=%v but digest equal=%v\n--- a ---\n%s--- b ---\n%s",
					i, j, snapEq, digEq, a.Snapshot(), b.Snapshot())
			}
		}
	}
}

// TestMemoryDigestIndependentOfAllocationOrder checks the property the
// model checker's pruning relies on: the digest (like the sorted
// snapshot) must not depend on the order in which cells were allocated
// or written back to the same final content.
func TestMemoryDigestIndependentOfAllocationOrder(t *testing.T) {
	a := NewMemory()
	a.AddRegister("x", "1")
	a.AddRegister("y", "2")
	a.AddObject("o", types.NewSticky(), spec.State(types.Bottom))

	b := NewMemory()
	b.AddObject("o", types.NewSticky(), spec.State(types.Bottom))
	b.AddRegister("y", None)
	b.AddRegister("x", "1")
	b.write("y", "2")

	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("test setup wrong: snapshots differ\n%s\n%s", a.Snapshot(), b.Snapshot())
	}
	if a.Digest() != b.Digest() {
		t.Fatal("digest depends on allocation/write order")
	}
}

// TestSnapshotConcurrentAllocation exercises the concurrent-allocation
// path the race detector guards: body preludes allocating (Ensure*)
// while other goroutines snapshot, digest and list names. All four
// operations share the cached sorted-name slices, so this doubles as the
// race test for the cache invalidation.
func TestSnapshotConcurrentAllocation(t *testing.T) {
	m := NewMemory()
	m.AddRegister("seed", None)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.EnsureRegister("r"+strconv.Itoa(g*50+i), "v")
				m.EnsureObject("o"+strconv.Itoa(g*50+i), types.NewSticky(), spec.State(types.Bottom))
				_ = m.Snapshot()
				_ = m.Digest()
				_ = m.RegisterNames()
			}
		}()
	}
	wg.Wait()
	if got := len(m.RegisterNames()); got != 201 {
		t.Fatalf("RegisterNames() has %d entries, want 201", got)
	}
	// The cached slice and a fresh sort must agree after the dust settles.
	names := m.RegisterNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("RegisterNames() not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}

// TestRegisterNamesCallerOwned pins that the returned slice is a copy:
// mutating it must not corrupt the memory's cached sorted names.
func TestRegisterNamesCallerOwned(t *testing.T) {
	m := NewMemory()
	m.AddRegister("a", None)
	m.AddRegister("b", None)
	names := m.RegisterNames()
	names[0] = "zzz"
	if got := m.RegisterNames()[0]; got != "a" {
		t.Fatalf("caller mutation leaked into the cache: first name = %q", got)
	}
}

// TestOutcomeDigestsMatchReexecution checks rolling event digests are a
// pure function of the executed schedule, and that a crash resets a
// process's history digest (post-crash digest equals a fresh process
// that performed only the post-crash events).
func TestOutcomeDigestsMatchReexecution(t *testing.T) {
	run := func(script []Action) *Outcome {
		m := NewMemory()
		m.AddRegister("R", None)
		body := func(p *Proc) Value {
			v := p.Read("R")
			p.Write("R", v+"x")
			p.Write("R", "done")
			return p.Read("R")
		}
		r := NewRunner(m, []Body{body, body}, Config{Script: script, HaltAtScriptEnd: true, MaxSteps: 100})
		r.RecordDigests()
		out, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	script := []Action{Step(0), Step(1), Step(0), Crash(0), Step(0)}
	a, b := run(script), run(script)
	for i := range a.EventHashes {
		if a.EventHashes[i] != b.EventHashes[i] || a.ClockHashes[i] != b.ClockHashes[i] {
			t.Fatalf("digests differ across identical executions for p%d", i)
		}
	}

	// Distinct histories produce distinct digests.
	c := run([]Action{Step(0), Step(1), Step(0)})
	if a.EventHashes[1] == c.EventHashes[1] && a.Steps != c.Steps {
		// p1 took the same single step in both — ITS digest may legally
		// match; p0's must not (three steps + crash + restart vs two).
		if a.EventHashes[0] == c.EventHashes[0] {
			t.Fatal("p0 digest ignores its crash/restart history")
		}
	}
}

// TestParseScriptRoundTrip checks FormatScript/ParseScript are inverses
// on every action kind, and that garbage is rejected.
func TestParseScriptRoundTrip(t *testing.T) {
	scripts := [][]Action{
		nil,
		{Step(0)},
		{Step(0), Step(12), Crash(3), CrashAll(), Step(1)},
	}
	for _, s := range scripts {
		got, err := ParseScript(FormatScript(s))
		if err != nil {
			t.Fatalf("ParseScript(%q): %v", FormatScript(s), err)
		}
		if FormatScript(got) != FormatScript(s) {
			t.Fatalf("round trip changed %q to %q", FormatScript(s), FormatScript(got))
		}
	}
	if got, err := ParseScript("  s0\n s1  "); err != nil || len(got) != 2 {
		t.Fatalf("whitespace-tolerant parse failed: %v %v", got, err)
	}
	for _, bad := range []string{"s", "sx", "c-1", "x0", "s0 q1", "C"} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) accepted garbage", bad)
		}
	}
}

// BenchmarkMemorySnapshot measures Snapshot on a steady-state heap (no
// allocation between calls) — the satellite fix: the sorted name slices
// are cached, so per-call allocations drop to the output string itself.
func BenchmarkMemorySnapshot(b *testing.B) {
	m := NewMemory()
	for i := 0; i < 32; i++ {
		m.AddRegister(fmt.Sprintf("R%02d", i), "v")
	}
	for i := 0; i < 8; i++ {
		m.AddObject(fmt.Sprintf("O%d", i), types.NewSticky(), spec.State(types.Bottom))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Snapshot()
	}
}

// BenchmarkMemoryDigest is the incremental counterpart: O(1) per call.
func BenchmarkMemoryDigest(b *testing.B) {
	m := NewMemory()
	for i := 0; i < 32; i++ {
		m.AddRegister(fmt.Sprintf("R%02d", i), "v")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Digest()
	}
}
