package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// Body is the code of one process: it computes a decision value using the
// shared memory reachable through p. A body must access shared state only
// through p's methods; its Go locals model volatile local memory. After a
// crash the body is invoked again from the beginning (the paper's
// restart-on-recovery assumption), so bodies must be written to tolerate
// re-execution — which is precisely the recoverable-algorithm design
// problem this repository studies.
type Body func(p *Proc) Value

// crashSignal is the private panic sentinel used to abort a run.
type crashSignal struct{}

// stopSignal aborts a run because the whole execution is being torn down
// (step budget exceeded); distinct from a crash so it is not retried.
type stopSignal struct{}

// ErrStepBudget is returned by Run when the execution exceeds
// Config.MaxSteps, which for the wait-free algorithms in this repository
// indicates a bug (a livelock or an unfair script).
var ErrStepBudget = errors.New("sim: step budget exhausted before all processes decided")

// ErrRunBudget is returned when a single run of some body exceeds
// Config.MaxStepsPerRun: recoverable wait-freedom demands every run
// decides (or crashes) within a bounded number of its own steps.
var ErrRunBudget = errors.New("sim: a single run exceeded its step budget (recoverable wait-freedom violation?)")

// ErrScript wraps every script-validation failure (unknown process,
// scheduling a decided process, a crash kind that is illegal under the
// configured failure model). Callers that perturb schedules mechanically
// — such as the model checker's counterexample minimizer — use it to
// tell "this candidate script is inadmissible" apart from a genuine
// execution failure.
var ErrScript = errors.New("sim: invalid script")

// FailureModel selects which crash events the adversary may inject.
type FailureModel int

const (
	// Independent lets each process crash and recover individually (the
	// paper's main model, introduced for recoverable mutual exclusion).
	Independent FailureModel = iota + 1
	// Simultaneous crashes all processes together (the system-wide
	// failures model of Section 2).
	Simultaneous
)

// String implements fmt.Stringer.
func (m FailureModel) String() string {
	switch m {
	case Independent:
		return "independent"
	case Simultaneous:
		return "simultaneous"
	default:
		return fmt.Sprintf("FailureModel(%d)", int(m))
	}
}

// Config parameterizes an execution.
type Config struct {
	// Seed drives the random scheduler and crash injection.
	Seed int64
	// Model selects the failure model; default Independent.
	Model FailureModel
	// CrashProb is the per-step probability that the adversary crashes
	// the chosen process (Independent) or everyone (Simultaneous)
	// instead of granting the step, while crash budget remains.
	CrashProb float64
	// MaxCrashes bounds the total number of crash events injected by the
	// random adversary (scripted crashes are not counted against it).
	MaxCrashes int
	// Script, when non-empty, is executed before random scheduling
	// begins: an exact adversarial prefix. Scripted actions referring to
	// processes that already decided are rejected as script bugs.
	Script []Action
	// MaxSteps bounds the total number of scheduling events; default
	// 1_000_000.
	MaxSteps int
	// MaxStepsPerRun bounds the steps of any single run of any body;
	// default 100_000. Exceeding it fails the execution with ErrRunBudget.
	MaxStepsPerRun int
	// HaltAtScriptEnd stops the execution (without error) once the
	// script is exhausted instead of continuing with random scheduling.
	// Packages explore and mc use it to enumerate schedule prefixes;
	// undecided processes simply have Decided[i] == false in the outcome.
	HaltAtScriptEnd bool
	// FairCompletion switches post-script scheduling from the seeded
	// random scheduler to a deterministic round-robin over the live
	// undecided processes, with no crash injection. The model checker
	// uses it to extend every explored prefix into a full execution that
	// is a pure function of the script — so a recorded schedule replays
	// byte-identically. Ignored when HaltAtScriptEnd is set.
	FairCompletion bool
	// Source, when non-nil, replaces the Seed-derived RNG driving random
	// scheduling and crash injection. It lets callers inject any
	// deterministic source; the default remains rand.NewSource(Seed), so
	// the runner never touches math/rand's global state either way.
	Source rand.Source
	// DecideRequiresStep inserts one extra scheduling point between a
	// body's return and the recording of its decision, so the adversary
	// can crash a process AFTER its last shared-memory access but BEFORE
	// it outputs — the window that breaks non-recoverable algorithms
	// like test&set consensus (their lost responses cannot be
	// reconstructed). Off by default to keep scripted step counts
	// simple; package explore always enables it, making its bounded
	// exhaustive adversary strictly stronger.
	DecideRequiresStep bool
}

// ActionKind discriminates scripted scheduler actions.
type ActionKind int

const (
	// ActStep grants one shared-memory step to Proc.
	ActStep ActionKind = iota + 1
	// ActCrash crashes Proc (Independent model).
	ActCrash
	// ActCrashAll crashes every live process (Simultaneous model, but
	// also usable under Independent as n individual crashes).
	ActCrashAll
)

// Action is one scripted scheduler decision.
type Action struct {
	Kind ActionKind
	Proc int
}

// Step returns a scripted step grant for process p.
func Step(p int) Action { return Action{Kind: ActStep, Proc: p} }

// Crash returns a scripted crash of process p.
func Crash(p int) Action { return Action{Kind: ActCrash, Proc: p} }

// CrashAll returns a scripted simultaneous crash.
func CrashAll() Action { return Action{Kind: ActCrashAll} }

// Outcome summarizes a finished execution.
type Outcome struct {
	// Decisions holds each process's output; Decided reports whether the
	// process produced one (with a finite crash budget and fair
	// scheduling every process decides).
	Decisions []Value
	Decided   []bool
	// Crashes counts the crash events delivered to each process.
	Crashes []int
	// Runs counts how many runs (1 + crashes while undecided) each
	// process executed.
	Runs []int
	// Steps is the total number of shared-memory steps granted.
	Steps int
	// Trace is the full event log (nil unless Config recording enabled
	// via Runner.RecordTrace).
	Trace []TraceEvent
	// Schedule is the exact sequence of scheduler actions executed —
	// scripted, random and fair-completion alike (nil unless enabled via
	// Runner.RecordSchedule). Re-running the same bodies with
	// Script: Schedule and HaltAtScriptEnd reproduces the execution
	// event-for-event, which is what makes model-checker counterexamples
	// replayable.
	Schedule []Action
	// EventHashes and ClockHashes are per-process rolling digests of each
	// process's events since its last crash, maintained incrementally
	// during the run (nil unless enabled via Runner.RecordDigests).
	// EventHashes fold what the process observed (event kind, cell,
	// values); ClockHashes additionally fold each event's global position
	// in the execution, for bodies whose local state depends on
	// Proc.Now. Together with Memory.Digest they give the model checker
	// an O(1) configuration fingerprint in place of re-hashing the trace.
	// Digests are process-local session identities (interned ids) — never
	// persist them.
	EventHashes []uint64
	ClockHashes []uint64
}

// procState tracks the scheduler's view of one process.
type procState struct {
	proc    *Proc
	body    Body
	parked  bool
	decided bool
}

// Runner executes a set of bodies over a shared memory under a schedule.
type Runner struct {
	mem *Memory
	cfg Config
	// rng is built lazily on the first random scheduling decision:
	// seeding a rand.Source costs microseconds, which dominates fully
	// scripted executions (the model checker replays one per search
	// node) that never draw from it. Laziness is unobservable — the
	// seed comes from cfg either way, and draws happen in the same
	// order.
	rng    *rand.Rand
	procs  []*procState
	events chan procEvent

	trace          []TraceEvent
	recordTrace    bool
	schedule       []Action
	recordSchedule bool
	recordDigest   bool
	evHash         []uint64 // rolling per-proc event digests (since last crash)
	ckHash         []uint64 // position-mixed variant for clock-sensitive bodies
	eventPos       int      // global event counter, aligned with trace indices

	stepCount   int
	crashBudget int
	rrNext      int   // round-robin cursor for FairCompletion
	failure     error // sticky ErrRunBudget etc.
}

type procEventKind int

const (
	evParked procEventKind = iota + 1
	evDone
)

type procEvent struct {
	proc int
	kind procEventKind
	out  Value
}

// NewRunner prepares an execution of the given bodies (one per process)
// over mem. The runner owns mem for the duration of Run.
func NewRunner(mem *Memory, bodies []Body, cfg Config) *Runner {
	if cfg.Model == 0 {
		cfg.Model = Independent
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1_000_000
	}
	if cfg.MaxStepsPerRun == 0 {
		cfg.MaxStepsPerRun = 100_000
	}
	r := &Runner{
		mem:         mem,
		cfg:         cfg,
		events:      make(chan procEvent),
		crashBudget: cfg.MaxCrashes,
	}
	for i, body := range bodies {
		p := &Proc{id: i, runner: r, grant: make(chan grantMsg)}
		r.procs = append(r.procs, &procState{proc: p, body: body})
	}
	return r
}

// rand returns the scheduling RNG, constructing it on first use.
func (r *Runner) rand() *rand.Rand {
	if r.rng == nil {
		src := r.cfg.Source
		if src == nil {
			src = rand.NewSource(r.cfg.Seed)
		}
		r.rng = rand.New(src)
	}
	return r.rng
}

// RecordTrace enables trace capture (off by default to keep stress tests
// allocation-light).
func (r *Runner) RecordTrace() { r.recordTrace = true }

// RecordSchedule enables capture of the executed scheduler actions into
// Outcome.Schedule (off by default, for the same reason as RecordTrace).
func (r *Runner) RecordSchedule() { r.recordSchedule = true }

// RecordDigests enables incremental per-process event digests
// (Outcome.EventHashes / ClockHashes). Unlike RecordTrace it allocates
// nothing per event — each event folds into two uint64s — so the model
// checker keeps it on for every explored prefix. Call before Run.
func (r *Runner) RecordDigests() {
	r.recordDigest = true
	if r.evHash == nil {
		r.evHash = make([]uint64, len(r.procs))
		r.ckHash = make([]uint64, len(r.procs))
	}
}

// Run executes until every process decides, the script and budgets are
// exhausted, or an invariant fails.
func (r *Runner) Run() (*Outcome, error) {
	live := 0
	for _, ps := range r.procs {
		go r.procLoop(ps)
		live++
	}
	outstanding := live // every process will report in without a grant

	out := &Outcome{
		Decisions: make([]Value, len(r.procs)),
		Decided:   make([]bool, len(r.procs)),
		Crashes:   make([]int, len(r.procs)),
		Runs:      make([]int, len(r.procs)),
	}

	finish := func(err error) (*Outcome, error) {
		// Tear down parked processes so no goroutine leaks.
		for _, ps := range r.procs {
			if ps.parked {
				ps.proc.grant <- grantMsg{stop: true}
				<-r.events // the stop acknowledgement (evDone)
			}
		}
		for i, ps := range r.procs {
			out.Crashes[i] = ps.proc.crashes
			out.Runs[i] = ps.proc.runs
		}
		out.Steps = r.stepCount
		out.Trace = r.trace
		out.Schedule = r.schedule
		if r.recordDigest {
			out.EventHashes = r.evHash
			out.ClockHashes = r.ckHash
		}
		if err == nil {
			err = r.failure
		}
		return out, err
	}

	scriptPos := 0
	for {
		for outstanding > 0 {
			ev := <-r.events
			outstanding--
			ps := r.procs[ev.proc]
			switch ev.kind {
			case evParked:
				ps.parked = true
			case evDone:
				ps.decided = true
				out.Decided[ev.proc] = true
				out.Decisions[ev.proc] = ev.out
				live--
				r.note(TraceDecide, ev.proc, "", ev.out, "")
			}
		}
		if r.failure != nil {
			return finish(nil)
		}
		if live == 0 {
			return finish(nil)
		}
		if r.stepCount >= r.cfg.MaxSteps {
			return finish(ErrStepBudget)
		}

		var act Action
		if scriptPos < len(r.cfg.Script) {
			act = r.cfg.Script[scriptPos]
			scriptPos++
			if err := r.validateAction(act); err != nil {
				return finish(err)
			}
		} else if r.cfg.HaltAtScriptEnd {
			return finish(nil)
		} else if r.cfg.FairCompletion {
			act = r.fairAction()
		} else {
			act = r.randomAction()
		}

		if r.recordSchedule {
			r.schedule = append(r.schedule, act)
		}
		switch act.Kind {
		case ActStep:
			r.stepCount++
			r.grant(act.Proc, false)
			outstanding = 1
		case ActCrash:
			r.grant(act.Proc, true)
			outstanding = 1
		case ActCrashAll:
			for id, ps := range r.procs {
				if ps.parked && !ps.decided {
					r.grant(id, true)
					// Wait for this process to re-park (or decide)
					// before crashing the next one, so the crash is
					// atomic with respect to steps.
					ev := <-r.events
					ps2 := r.procs[ev.proc]
					switch ev.kind {
					case evParked:
						ps2.parked = true
					case evDone:
						ps2.decided = true
						out.Decided[ev.proc] = true
						out.Decisions[ev.proc] = ev.out
						live--
					}
				}
			}
			outstanding = 0
		}
	}
}

func (r *Runner) validateAction(act Action) error {
	switch act.Kind {
	case ActStep, ActCrash:
		if act.Proc < 0 || act.Proc >= len(r.procs) {
			return fmt.Errorf("%w: script refers to unknown process %d", ErrScript, act.Proc)
		}
		ps := r.procs[act.Proc]
		if ps.decided {
			return fmt.Errorf("%w: script schedules process %d after it decided", ErrScript, act.Proc)
		}
		if act.Kind == ActCrash && r.cfg.Model == Simultaneous {
			return fmt.Errorf("%w: individual crash scripted under the simultaneous model", ErrScript)
		}
	case ActCrashAll:
		// always valid
	default:
		return fmt.Errorf("%w: unknown script action kind %d", ErrScript, act.Kind)
	}
	return nil
}

// fairAction implements Config.FairCompletion: a deterministic
// round-robin over the live undecided processes, never crashing. All
// undecided processes are parked when the scheduler picks an action, so
// the cursor scan below always finds one (Run guarantees live > 0).
func (r *Runner) fairAction() Action {
	n := len(r.procs)
	for i := 0; i < n; i++ {
		id := (r.rrNext + i) % n
		ps := r.procs[id]
		if ps.parked && !ps.decided {
			r.rrNext = id + 1
			return Action{Kind: ActStep, Proc: id}
		}
	}
	panic("sim: fairAction called with no live process")
}

// randomAction picks the next scheduling decision from the seeded RNG:
// a uniformly random live process, crashed with probability CrashProb
// while budget remains.
func (r *Runner) randomAction() Action {
	var liveIDs []int
	for id, ps := range r.procs {
		if ps.parked && !ps.decided {
			liveIDs = append(liveIDs, id)
		}
	}
	id := liveIDs[r.rand().Intn(len(liveIDs))]
	if r.crashBudget > 0 && r.cfg.CrashProb > 0 && r.rand().Float64() < r.cfg.CrashProb {
		r.crashBudget--
		if r.cfg.Model == Simultaneous {
			return Action{Kind: ActCrashAll}
		}
		return Action{Kind: ActCrash, Proc: id}
	}
	return Action{Kind: ActStep, Proc: id}
}

func (r *Runner) grant(id int, crash bool) {
	ps := r.procs[id]
	ps.parked = false
	if crash {
		ps.proc.crashes++
		r.note(TraceCrash, id, "", "", "")
	}
	ps.proc.grant <- grantMsg{crash: crash}
}

// procLoop runs one process: body attempts separated by crash recoveries.
func (r *Runner) procLoop(ps *procState) {
	p := ps.proc
	for {
		p.runs++
		p.runSteps = 0
		out, status := p.attempt(ps.body)
		if status == attemptDecided && r.cfg.DecideRequiresStep {
			status = p.commit()
		}
		switch status {
		case attemptDecided:
			r.events <- procEvent{proc: p.id, kind: evDone, out: out}
			return
		case attemptCrashed:
			continue // restart from the beginning: locals are gone
		case attemptStopped:
			r.events <- procEvent{proc: p.id, kind: evDone, out: None}
			return
		}
	}
}
