package sim

import (
	"fmt"

	"rcons/internal/spec"
)

// grantMsg is the scheduler's reply to a parked process.
type grantMsg struct {
	crash bool
	stop  bool
}

// attemptStatus reports how one run of a body ended.
type attemptStatus int

const (
	attemptDecided attemptStatus = iota + 1
	attemptCrashed
	attemptStopped
)

// Proc is a process's handle to the simulated system. All shared-memory
// accessors are scheduling points; everything between two scheduling
// points executes atomically with respect to other processes.
type Proc struct {
	id     int
	runner *Runner
	grant  chan grantMsg

	runs     int // 1 + number of crashes while undecided
	crashes  int
	runSteps int // steps taken by the current run
}

// ID returns the process index (0-based).
func (p *Proc) ID() int { return p.id }

// RunNumber returns which run of the body is executing (1 for the first
// attempt, incremented after every crash). Algorithms must not base
// decisions on it — local memory is volatile in the model — but tests and
// diagnostics may.
func (p *Proc) RunNumber() int { return p.runs }

// Now returns the total number of shared-memory steps granted so far in
// the execution — a logical clock usable for history timestamps. It is
// not a scheduling point.
func (p *Proc) Now() int { return p.runner.stepCount }

// attempt executes one run of body, converting the crash sentinel into a
// status. Any other panic is a bug in the body (e.g. accessing an unknown
// cell); it is captured as an execution failure so that Run returns an
// error instead of tearing down the whole program from a goroutine.
func (p *Proc) attempt(body Body) (out Value, status attemptStatus) {
	defer func() {
		if e := recover(); e != nil {
			switch e.(type) {
			case crashSignal:
				status = attemptCrashed
			case stopSignal:
				status = attemptStopped
			default:
				if p.runner.failure == nil {
					p.runner.failure = fmt.Errorf("sim: process %d panicked: %v", p.id, e)
				}
				status = attemptStopped
			}
		}
	}()
	out = body(p)
	return out, attemptDecided
}

// step parks until the scheduler grants a shared-memory step, panicking
// with the crash sentinel when the grant is a crash.
func (p *Proc) step() {
	p.runSteps++
	if p.runSteps > p.runner.cfg.MaxStepsPerRun {
		p.runner.failure = ErrRunBudget
		panic(stopSignal{})
	}
	p.runner.events <- procEvent{proc: p.id, kind: evParked}
	g := <-p.grant
	if g.stop {
		panic(stopSignal{})
	}
	if g.crash {
		panic(crashSignal{})
	}
}

// commit takes the extra decide scheduling point enabled by
// Config.DecideRequiresStep, converting its crash/stop panics back into
// statuses for procLoop.
func (p *Proc) commit() (st attemptStatus) {
	defer func() {
		if e := recover(); e != nil {
			switch e.(type) {
			case crashSignal:
				st = attemptCrashed
			case stopSignal:
				st = attemptStopped
			default:
				panic(e)
			}
		}
	}()
	p.step()
	return attemptDecided
}

// Read atomically reads a shared register (one step).
func (p *Proc) Read(reg string) Value {
	p.step()
	v := p.runner.mem.read(reg)
	p.runner.note(TraceRead, p.id, reg, v, "")
	return v
}

// Write atomically writes a shared register (one step).
func (p *Proc) Write(reg string, v Value) {
	p.step()
	p.runner.mem.write(reg, v)
	p.runner.note(TraceWrite, p.id, reg, v, "")
}

// Apply atomically applies an update operation to a shared object (one
// step) and returns its response.
func (p *Proc) Apply(obj string, op spec.Op) spec.Response {
	p.step()
	resp := p.runner.mem.apply(obj, op)
	p.runner.note(TraceApply, p.id, obj, string(op), string(resp))
	return resp
}

// ReadObject atomically reads a shared object's entire state (one step) —
// the Read operation of the paper's readable types. Algorithms
// reproducing results about non-readable types must not call it.
func (p *Proc) ReadObject(obj string) spec.State {
	p.step()
	s := p.runner.mem.readObj(obj)
	p.runner.note(TraceReadObj, p.id, obj, string(s), "")
	return s
}

// The allocation helpers below are NOT scheduling points: preparing fresh
// cells models initializing a node in non-volatile memory before any
// pointer to it is published, which no other process can observe. They
// may only be called from a body (i.e. inside a grant window).

// AllocRegister creates a fresh register with a unique name and the given
// initial value, returning its name.
func (p *Proc) AllocRegister(prefix string, init Value) string {
	name := p.runner.mem.FreshName(prefix)
	p.runner.mem.AddRegister(name, init)
	return name
}

// AllocObject creates a fresh object cell, returning its name.
func (p *Proc) AllocObject(prefix string, t spec.Type, q0 spec.State) string {
	name := p.runner.mem.FreshName(prefix)
	p.runner.mem.AddObject(name, t, q0)
	return name
}

// EnsureRegister creates the named register if it does not exist yet
// (idempotent, for lazily-extended unbounded arrays like D[1..∞] in the
// paper's Figure 4). Returns the name.
func (p *Proc) EnsureRegister(name string, init Value) string {
	p.runner.mem.EnsureRegister(name, init)
	return name
}

// EnsureObject creates the named object if it does not exist yet.
func (p *Proc) EnsureObject(name string, t spec.Type, q0 spec.State) string {
	p.runner.mem.EnsureObject(name, t, q0)
	return name
}
