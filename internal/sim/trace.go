package sim

import (
	"fmt"
	"strings"
)

// TraceKind discriminates execution trace events.
type TraceKind int

const (
	// TraceRead is a register read; Detail holds the value read.
	TraceRead TraceKind = iota + 1
	// TraceWrite is a register write; Detail holds the value written.
	TraceWrite
	// TraceApply is an object update; Detail holds "op->response".
	TraceApply
	// TraceReadObj is an object state read; Detail holds the state.
	TraceReadObj
	// TraceCrash is a crash delivery.
	TraceCrash
	// TraceDecide is a process producing its output; Detail holds it.
	TraceDecide
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceRead:
		return "read"
	case TraceWrite:
		return "write"
	case TraceApply:
		return "apply"
	case TraceReadObj:
		return "readobj"
	case TraceCrash:
		return "crash"
	case TraceDecide:
		return "decide"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one entry in an execution log.
type TraceEvent struct {
	Kind   TraceKind
	Proc   int
	Cell   string // register or object name; empty for crash/decide
	Detail string
}

// String renders the event compactly, e.g. "p2 write R_A=5".
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceCrash:
		return fmt.Sprintf("p%d CRASH", e.Proc)
	case TraceDecide:
		return fmt.Sprintf("p%d decide %s", e.Proc, e.Detail)
	case TraceWrite:
		return fmt.Sprintf("p%d write %s=%s", e.Proc, e.Cell, e.Detail)
	case TraceRead:
		return fmt.Sprintf("p%d read %s=%s", e.Proc, e.Cell, e.Detail)
	case TraceApply:
		return fmt.Sprintf("p%d apply %s.%s", e.Proc, e.Cell, e.Detail)
	case TraceReadObj:
		return fmt.Sprintf("p%d readobj %s=%s", e.Proc, e.Cell, e.Detail)
	default:
		return fmt.Sprintf("p%d %s %s %s", e.Proc, e.Kind, e.Cell, e.Detail)
	}
}

// String renders the action compactly: "s0" (step of p0), "c0" (crash of
// p0), "C*" (simultaneous crash).
func (a Action) String() string {
	switch a.Kind {
	case ActStep:
		return fmt.Sprintf("s%d", a.Proc)
	case ActCrash:
		return fmt.Sprintf("c%d", a.Proc)
	case ActCrashAll:
		return "C*"
	default:
		return fmt.Sprintf("?%d", int(a.Kind))
	}
}

// FormatScript renders a schedule compactly, e.g. "s0 s1 c0 s0".
func FormatScript(script []Action) string {
	if len(script) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(script))
	for i, a := range script {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ")
}

// FormatTrace renders a trace one event per line, for test failure
// diagnostics.
func FormatTrace(events []TraceEvent) string {
	var b strings.Builder
	for i, e := range events {
		fmt.Fprintf(&b, "%4d  %s\n", i, e)
	}
	return b.String()
}

func (r *Runner) traceEvent(e TraceEvent) {
	if r.recordTrace {
		r.trace = append(r.trace, e)
	}
}
