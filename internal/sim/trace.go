package sim

import (
	"fmt"
	"strconv"
	"strings"

	"rcons/internal/intern"
)

// TraceKind discriminates execution trace events.
type TraceKind int

const (
	// TraceRead is a register read; Detail holds the value read.
	TraceRead TraceKind = iota + 1
	// TraceWrite is a register write; Detail holds the value written.
	TraceWrite
	// TraceApply is an object update; Detail holds "op->response".
	TraceApply
	// TraceReadObj is an object state read; Detail holds the state.
	TraceReadObj
	// TraceCrash is a crash delivery.
	TraceCrash
	// TraceDecide is a process producing its output; Detail holds it.
	TraceDecide
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceRead:
		return "read"
	case TraceWrite:
		return "write"
	case TraceApply:
		return "apply"
	case TraceReadObj:
		return "readobj"
	case TraceCrash:
		return "crash"
	case TraceDecide:
		return "decide"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one entry in an execution log.
type TraceEvent struct {
	Kind   TraceKind
	Proc   int
	Cell   string // register or object name; empty for crash/decide
	Detail string
}

// String renders the event compactly, e.g. "p2 write R_A=5".
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceCrash:
		return fmt.Sprintf("p%d CRASH", e.Proc)
	case TraceDecide:
		return fmt.Sprintf("p%d decide %s", e.Proc, e.Detail)
	case TraceWrite:
		return fmt.Sprintf("p%d write %s=%s", e.Proc, e.Cell, e.Detail)
	case TraceRead:
		return fmt.Sprintf("p%d read %s=%s", e.Proc, e.Cell, e.Detail)
	case TraceApply:
		return fmt.Sprintf("p%d apply %s.%s", e.Proc, e.Cell, e.Detail)
	case TraceReadObj:
		return fmt.Sprintf("p%d readobj %s=%s", e.Proc, e.Cell, e.Detail)
	default:
		return fmt.Sprintf("p%d %s %s %s", e.Proc, e.Kind, e.Cell, e.Detail)
	}
}

// String renders the action compactly: "s0" (step of p0), "c0" (crash of
// p0), "C*" (simultaneous crash).
func (a Action) String() string {
	switch a.Kind {
	case ActStep:
		return fmt.Sprintf("s%d", a.Proc)
	case ActCrash:
		return fmt.Sprintf("c%d", a.Proc)
	case ActCrashAll:
		return "C*"
	default:
		return fmt.Sprintf("?%d", int(a.Kind))
	}
}

// FormatScript renders a schedule compactly, e.g. "s0 s1 c0 s0".
func FormatScript(script []Action) string {
	if len(script) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(script))
	for i, a := range script {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ")
}

// FormatTrace renders a trace one event per line, for test failure
// diagnostics.
func FormatTrace(events []TraceEvent) string {
	var b strings.Builder
	for i, e := range events {
		fmt.Fprintf(&b, "%4d  %s\n", i, e)
	}
	return b.String()
}

// ParseScript parses the compact schedule notation produced by
// FormatScript ("s0 s1 c0 C*") back into actions. It accepts the
// "(empty)" placeholder and arbitrary whitespace between actions, so
// recorded counterexamples round-trip through their textual golden form.
func ParseScript(s string) ([]Action, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "(empty)" {
		return nil, nil
	}
	var out []Action
	for _, tok := range strings.Fields(s) {
		switch {
		case tok == "C*":
			out = append(out, CrashAll())
		case len(tok) >= 2 && (tok[0] == 's' || tok[0] == 'c'):
			p, err := strconv.Atoi(tok[1:])
			if err != nil || p < 0 {
				return nil, fmt.Errorf("sim: bad script token %q", tok)
			}
			if tok[0] == 's' {
				out = append(out, Step(p))
			} else {
				out = append(out, Crash(p))
			}
		default:
			return nil, fmt.Errorf("sim: bad script token %q", tok)
		}
	}
	return out, nil
}

// note records one execution event: into the trace when trace recording
// is enabled, and into the per-process rolling digests when digest
// recording is enabled. d1 carries the event detail; d2 is the response
// part of an apply (trace renders it as "op->resp"). Keeping the two
// consumers behind one entry point guarantees the digest's global event
// positions always match trace indices — the property the model
// checker's clock-sensitive fingerprints and their parity tests rely on.
func (r *Runner) note(kind TraceKind, proc int, cell, d1, d2 string) {
	if r.recordTrace {
		detail := d1
		if kind == TraceApply {
			detail = d1 + "->" + d2
		}
		r.trace = append(r.trace, TraceEvent{Kind: kind, Proc: proc, Cell: cell, Detail: detail})
	}
	if !r.recordDigest {
		return
	}
	pos := r.eventPos
	r.eventPos++
	switch kind {
	case TraceCrash:
		// The history "since the last crash" restarts empty, exactly as
		// the legacy fingerprint clears its per-process event list.
		r.evHash[proc] = 0
		r.ckHash[proc] = 0
	case TraceDecide:
		// Decisions enter fingerprints through Outcome.Decisions; the
		// event still occupies a global position (it is in the trace).
	default:
		d := intern.MixPair(intern.MixPair(uint64(kind), uint64(intern.ID(cell))), uint64(intern.ID(d1)))
		if kind == TraceApply {
			d = intern.MixPair(d, uint64(intern.ID(d2)))
		}
		r.evHash[proc] = intern.MixPair(r.evHash[proc], d)
		r.ckHash[proc] = intern.MixPair(r.ckHash[proc], intern.MixPair(d, uint64(pos)))
	}
}
