package sim

import (
	"errors"
	"fmt"
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

func newTestMemory() *Memory {
	m := NewMemory()
	m.AddRegister("R", None)
	m.AddRegister("S", None)
	m.AddObject("O", types.NewCAS(), spec.State(types.Bottom))
	return m
}

func TestTwoProcessesRunToCompletion(t *testing.T) {
	m := newTestMemory()
	bodies := []Body{
		func(p *Proc) Value { p.Write("R", "a"); return p.Read("R") },
		func(p *Proc) Value { p.Write("S", "b"); return p.Read("S") },
	}
	out, err := NewRunner(m, bodies, Config{Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Decided[0] || !out.Decided[1] {
		t.Fatalf("not all processes decided: %+v", out)
	}
	if out.Decisions[0] != "a" || out.Decisions[1] != "b" {
		t.Fatalf("decisions = %v", out.Decisions)
	}
	if out.Steps != 4 {
		t.Fatalf("steps = %d, want 4", out.Steps)
	}
}

func TestDeterminismForFixedSeed(t *testing.T) {
	run := func() []TraceEvent {
		m := newTestMemory()
		bodies := []Body{
			func(p *Proc) Value { p.Write("R", "x"); return p.Read("S") },
			func(p *Proc) Value { p.Write("S", "y"); return p.Read("R") },
			func(p *Proc) Value { p.Apply("O", "cas(_,3)"); return Value(p.ReadObject("O")) },
		}
		r := NewRunner(m, bodies, Config{Seed: 42, CrashProb: 0.3, MaxCrashes: 5})
		r.RecordTrace()
		out, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out.Trace
	}
	t1, t2 := run(), run()
	if FormatTrace(t1) != FormatTrace(t2) {
		t.Fatalf("same seed produced different traces:\n%s\nvs\n%s", FormatTrace(t1), FormatTrace(t2))
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	trace := func(seed int64) string {
		m := newTestMemory()
		bodies := []Body{
			func(p *Proc) Value { p.Write("R", "x"); p.Write("R", "y"); return p.Read("R") },
			func(p *Proc) Value { p.Write("R", "z"); p.Write("R", "w"); return p.Read("R") },
		}
		r := NewRunner(m, bodies, Config{Seed: seed})
		r.RecordTrace()
		out, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return FormatTrace(out.Trace)
	}
	distinct := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		distinct[trace(seed)] = true
	}
	if len(distinct) < 2 {
		t.Fatal("20 seeds all produced the same interleaving; scheduler is not randomizing")
	}
}

func TestCrashRestartsBodyAndPreservesSharedMemory(t *testing.T) {
	m := newTestMemory()
	attempts := 0
	body := func(p *Proc) Value {
		attempts++ // volatile state proxy: counts runs
		v := p.Read("R")
		if v == None {
			p.Write("R", "once")
		}
		return p.Read("R")
	}
	cfg := Config{
		// Run to the write, crash, then run again to completion.
		Script: []Action{Step(0), Step(0), Crash(0), Step(0), Step(0)},
	}
	out, err := NewRunner(m, []Body{body}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("body ran %d times, want 2", attempts)
	}
	if out.Crashes[0] != 1 || out.Runs[0] != 2 {
		t.Fatalf("crashes=%v runs=%v", out.Crashes, out.Runs)
	}
	if out.Decisions[0] != "once" {
		t.Fatalf("decision = %q, want once (shared write must survive the crash)", out.Decisions[0])
	}
}

func TestCrashBeforeWriteLosesNothingShared(t *testing.T) {
	m := newTestMemory()
	body := func(p *Proc) Value {
		if p.Read("R") == None {
			p.Write("R", "v")
		}
		return p.Read("R")
	}
	// Crash after the read but before the write: the register must still
	// be unwritten on restart.
	cfg := Config{Script: []Action{Step(0), Crash(0)}}
	out, err := NewRunner(m, []Body{body}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != "v" {
		t.Fatalf("decision = %q", out.Decisions[0])
	}
	if out.Runs[0] != 2 {
		t.Fatalf("runs = %d, want 2", out.Runs[0])
	}
}

func TestScriptedInterleavingIsExact(t *testing.T) {
	m := newTestMemory()
	bodies := []Body{
		func(p *Proc) Value { p.Write("R", "first"); return p.Read("R") },
		func(p *Proc) Value { p.Write("R", "second"); return p.Read("R") },
	}
	cfg := Config{Script: []Action{Step(1), Step(0), Step(0), Step(1)}}
	r := NewRunner(m, bodies, cfg)
	r.RecordTrace()
	out, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// p1 writes, then p0 overwrites; both read "first".
	if out.Decisions[0] != "first" || out.Decisions[1] != "first" {
		t.Fatalf("decisions = %v\ntrace:\n%s", out.Decisions, FormatTrace(out.Trace))
	}
}

func TestScriptRejectsDecidedProcess(t *testing.T) {
	m := newTestMemory()
	bodies := []Body{
		func(p *Proc) Value { return p.Read("R") },
		func(p *Proc) Value { return p.Read("S") },
	}
	cfg := Config{Script: []Action{Step(0), Step(0)}}
	_, err := NewRunner(m, bodies, cfg).Run()
	if err == nil {
		t.Fatal("script scheduling a decided process was accepted")
	}
}

func TestScriptRejectsUnknownProcess(t *testing.T) {
	m := newTestMemory()
	bodies := []Body{func(p *Proc) Value { return p.Read("R") }}
	_, err := NewRunner(m, bodies, Config{Script: []Action{Step(7)}}).Run()
	if err == nil {
		t.Fatal("script with unknown process was accepted")
	}
}

func TestSimultaneousCrashAll(t *testing.T) {
	m := newTestMemory()
	mkBody := func(reg string) Body {
		return func(p *Proc) Value {
			if p.Read(reg) == None {
				p.Write(reg, "w")
			}
			return p.Read(reg)
		}
	}
	cfg := Config{
		Model:  Simultaneous,
		Script: []Action{Step(0), Step(1), CrashAll()},
	}
	out, err := NewRunner(m, []Body{mkBody("R"), mkBody("S")}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashes[0] != 1 || out.Crashes[1] != 1 {
		t.Fatalf("crashes = %v, want one each", out.Crashes)
	}
	if out.Decisions[0] != "w" || out.Decisions[1] != "w" {
		t.Fatalf("decisions = %v", out.Decisions)
	}
}

func TestSimultaneousModelRejectsIndividualCrash(t *testing.T) {
	m := newTestMemory()
	bodies := []Body{func(p *Proc) Value { return p.Read("R") }}
	cfg := Config{Model: Simultaneous, Script: []Action{Crash(0)}}
	if _, err := NewRunner(m, bodies, cfg).Run(); err == nil {
		t.Fatal("individual crash accepted under the simultaneous model")
	}
}

func TestRandomCrashesRespectBudget(t *testing.T) {
	m := newTestMemory()
	bodies := []Body{
		func(p *Proc) Value {
			if p.Read("R") == None {
				p.Write("R", "v")
			}
			return p.Read("R")
		},
		func(p *Proc) Value {
			if p.Read("S") == None {
				p.Write("S", "v")
			}
			return p.Read("S")
		},
	}
	out, err := NewRunner(m, bodies, Config{Seed: 7, CrashProb: 0.9, MaxCrashes: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	total := out.Crashes[0] + out.Crashes[1]
	if total > 3 {
		t.Fatalf("crash budget exceeded: %d", total)
	}
	if !out.Decided[0] || !out.Decided[1] {
		t.Fatal("processes failed to decide despite finite crash budget")
	}
}

func TestRunBudgetViolationDetected(t *testing.T) {
	m := newTestMemory()
	spin := func(p *Proc) Value {
		for {
			p.Read("R") // never decides: not recoverable wait-free
		}
	}
	cfg := Config{Seed: 1, MaxStepsPerRun: 100}
	_, err := NewRunner(m, []Body{spin}, cfg).Run()
	if !errors.Is(err, ErrRunBudget) {
		t.Fatalf("err = %v, want ErrRunBudget", err)
	}
}

func TestStepBudgetExhaustion(t *testing.T) {
	m := newTestMemory()
	// Two processes ping-ponging forever on a register they keep
	// resetting: each individual run is short (decides quickly), but we
	// give the execution a tiny global budget.
	bodies := []Body{
		func(p *Proc) Value { p.Read("R"); p.Read("R"); p.Read("R"); return "x" },
	}
	cfg := Config{Seed: 1, MaxSteps: 2}
	_, err := NewRunner(m, bodies, cfg).Run()
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestObjectOpsThroughProc(t *testing.T) {
	m := newTestMemory()
	bodies := []Body{
		func(p *Proc) Value {
			r := p.Apply("O", "cas(_,7)")
			if r != "true" {
				return "lost"
			}
			return Value(p.ReadObject("O"))
		},
		func(p *Proc) Value {
			r := p.Apply("O", "cas(_,9)")
			if r != "true" {
				return "lost"
			}
			return Value(p.ReadObject("O"))
		},
	}
	out, err := NewRunner(m, bodies, Config{Seed: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	winners := 0
	for i := range bodies {
		if out.Decisions[i] != "lost" {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("CAS produced %d winners: %v", winners, out.Decisions)
	}
}

func TestAllocAndEnsureHelpers(t *testing.T) {
	m := newTestMemory()
	body := func(p *Proc) Value {
		name := p.AllocRegister("node", "init")
		p.Write(name, "v1")
		same := p.EnsureRegister("lazy[3]", None)
		p.EnsureRegister("lazy[3]", "ignored") // idempotent
		p.Write(same, "v2")
		obj := p.AllocObject("cons", types.NewCAS(), spec.State(types.Bottom))
		p.Apply(obj, "cas(_,1)")
		return p.Read(name) + "/" + p.Read(same) + "/" + Value(p.ReadObject(obj))
	}
	out, err := NewRunner(m, []Body{body}, Config{Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != "v1/v2/1" {
		t.Fatalf("decision = %q", out.Decisions[0])
	}
}

func TestFreshNamesUniqueAcrossCrashes(t *testing.T) {
	m := newTestMemory()
	var names []string
	body := func(p *Proc) Value {
		names = append(names, p.AllocRegister("n", None))
		p.Read("R")
		return "done"
	}
	cfg := Config{Script: []Action{Crash(0), Crash(0)}}
	if _, err := NewRunner(m, []Body{body}, cfg).Run(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("allocation reused name %q after a crash", n)
		}
		seen[n] = true
	}
	if len(names) != 3 {
		t.Fatalf("allocations = %d, want 3 (two crashed runs + one complete)", len(names))
	}
}

func TestTraceRecording(t *testing.T) {
	m := newTestMemory()
	body := func(p *Proc) Value { p.Write("R", "1"); return p.Read("R") }
	r := NewRunner(m, []Body{body}, Config{Seed: 1})
	r.RecordTrace()
	out, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Trace) != 3 { // write, read, decide
		t.Fatalf("trace has %d events:\n%s", len(out.Trace), FormatTrace(out.Trace))
	}
	if out.Trace[0].Kind != TraceWrite || out.Trace[2].Kind != TraceDecide {
		t.Fatalf("unexpected trace:\n%s", FormatTrace(out.Trace))
	}
}

func TestManySeedsStress(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		m := newTestMemory()
		bodies := make([]Body, 4)
		for i := range bodies {
			i := i
			bodies[i] = func(p *Proc) Value {
				reg := fmt.Sprintf("cell%d", i)
				p.EnsureRegister(reg, None)
				p.Write(reg, "mine")
				p.Apply("O", spec.Op(fmt.Sprintf("cas(_,%d)", i)))
				return Value(p.ReadObject("O"))
			}
		}
		out, err := NewRunner(m, bodies, Config{Seed: seed, CrashProb: 0.2, MaxCrashes: 6}).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// All processes must agree on the CAS winner they observed at the
		// end (the object is write-once).
		first := out.Decisions[0]
		for i, d := range out.Decisions {
			if d != first {
				t.Fatalf("seed %d: divergent reads %d=%q vs 0=%q", seed, i, d, first)
			}
		}
	}
}
