package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// contendedBodies builds two processes racing on a register and a CAS
// object — enough shared traffic that any scheduling nondeterminism
// would show up in the trace.
func contendedMemory() *Memory {
	m := NewMemory()
	m.AddRegister("R", None)
	m.AddObject("O", types.NewCAS(), spec.State(types.Bottom))
	return m
}

func contendedBody(i int, v Value) Body {
	return func(p *Proc) Value {
		p.Write("R", v)
		p.Apply("O", spec.FormatOp("cas", types.Bottom, v))
		if got := Value(p.ReadObject("O")); got != None {
			return got
		}
		return p.Read("R")
	}
}

func runSeeded(t *testing.T, cfg Config) *Outcome {
	t.Helper()
	m := contendedMemory()
	bodies := []Body{contendedBody(0, "a"), contendedBody(1, "b")}
	r := NewRunner(m, bodies, cfg)
	r.RecordTrace()
	r.RecordSchedule()
	out, err := r.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

// TestSeedDeterminism is the regression test for injectable/deterministic
// runner RNG: the same seed must reproduce the identical execution —
// trace, schedule, decisions — which is what makes model-checker
// counterexamples replayable.
func TestSeedDeterminism(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, 42, 12345} {
		cfg := Config{Seed: seed, CrashProb: 0.3, MaxCrashes: 2}
		a := runSeeded(t, cfg)
		b := runSeeded(t, cfg)
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Fatalf("seed %d: traces differ:\n%s\nvs\n%s",
				seed, FormatTrace(a.Trace), FormatTrace(b.Trace))
		}
		if !reflect.DeepEqual(a.Schedule, b.Schedule) {
			t.Fatalf("seed %d: schedules differ: %s vs %s",
				seed, FormatScript(a.Schedule), FormatScript(b.Schedule))
		}
		if !reflect.DeepEqual(a.Decisions, b.Decisions) {
			t.Fatalf("seed %d: decisions differ: %v vs %v", seed, a.Decisions, b.Decisions)
		}
	}
}

// TestInjectedSourceMatchesSeed checks Config.Source is honoured: an
// explicitly injected rand.NewSource(seed) behaves exactly like Seed.
func TestInjectedSourceMatchesSeed(t *testing.T) {
	bySeed := runSeeded(t, Config{Seed: 99, CrashProb: 0.25, MaxCrashes: 1})
	bySrc := runSeeded(t, Config{Source: rand.NewSource(99), CrashProb: 0.25, MaxCrashes: 1})
	if !reflect.DeepEqual(bySeed.Trace, bySrc.Trace) {
		t.Fatalf("injected source diverged from seed:\n%s\nvs\n%s",
			FormatTrace(bySeed.Trace), FormatTrace(bySrc.Trace))
	}
}

// TestScheduleReplaysIdentically checks the core replay property: running
// the recorded Outcome.Schedule as a script (with HaltAtScriptEnd)
// reproduces the execution event-for-event.
func TestScheduleReplaysIdentically(t *testing.T) {
	orig := runSeeded(t, Config{Seed: 5, CrashProb: 0.3, MaxCrashes: 2})

	m := contendedMemory()
	bodies := []Body{contendedBody(0, "a"), contendedBody(1, "b")}
	r := NewRunner(m, bodies, Config{Script: orig.Schedule, HaltAtScriptEnd: true})
	r.RecordTrace()
	replay, err := r.Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reflect.DeepEqual(orig.Trace, replay.Trace) {
		t.Fatalf("replay trace differs:\n%s\nvs\n%s",
			FormatTrace(orig.Trace), FormatTrace(replay.Trace))
	}
	if !reflect.DeepEqual(orig.Decisions, replay.Decisions) {
		t.Fatalf("replay decisions differ: %v vs %v", orig.Decisions, replay.Decisions)
	}
}

// TestFairCompletionDeterministic checks FairCompletion is a pure
// function of the script prefix: two runs produce identical schedules,
// and the completion injects no crashes.
func TestFairCompletionDeterministic(t *testing.T) {
	run := func() *Outcome {
		m := contendedMemory()
		bodies := []Body{contendedBody(0, "a"), contendedBody(1, "b")}
		r := NewRunner(m, bodies, Config{
			Script:         []Action{Step(0), Crash(0), Step(1)},
			FairCompletion: true,
		})
		r.RecordTrace()
		r.RecordSchedule()
		out, err := r.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Schedule, b.Schedule) {
		t.Fatalf("fair completion schedules differ: %s vs %s",
			FormatScript(a.Schedule), FormatScript(b.Schedule))
	}
	for i, d := range a.Decided {
		if !d {
			t.Fatalf("process %d undecided after fair completion", i)
		}
	}
	crashes := 0
	for _, act := range a.Schedule[3:] { // past the scripted prefix
		if act.Kind != ActStep {
			crashes++
		}
	}
	if crashes != 0 {
		t.Fatalf("fair completion injected %d crashes: %s", crashes, FormatScript(a.Schedule))
	}
}

// TestSnapshotReflectsState checks Memory.Snapshot distinguishes states
// and is stable for identical heaps.
func TestSnapshotReplaysState(t *testing.T) {
	a, b := contendedMemory(), contendedMemory()
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("identical memories produced different snapshots:\n%s\nvs\n%s", a.Snapshot(), b.Snapshot())
	}
	b.write("R", "x")
	if a.Snapshot() == b.Snapshot() {
		t.Fatal("snapshot did not reflect a register write")
	}
	c := contendedMemory()
	c.FreshName("tmp")
	if a.Snapshot() == c.Snapshot() {
		t.Fatal("snapshot did not reflect the allocation counter")
	}
}
