package sim

import (
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

func TestNowAdvancesWithSteps(t *testing.T) {
	m := NewMemory()
	m.AddRegister("R", None)
	var stamps []int
	body := func(p *Proc) Value {
		stamps = append(stamps, p.Now())
		p.Read("R")
		stamps = append(stamps, p.Now())
		p.Read("R")
		stamps = append(stamps, p.Now())
		return "done"
	}
	if _, err := NewRunner(m, []Body{body}, Config{Seed: 1}).Run(); err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 3 || stamps[0] != 0 || stamps[1] != 1 || stamps[2] != 2 {
		t.Fatalf("stamps = %v, want [0 1 2]", stamps)
	}
}

func TestRunNumberAcrossCrashes(t *testing.T) {
	m := NewMemory()
	m.AddRegister("R", None)
	var runs []int
	body := func(p *Proc) Value {
		runs = append(runs, p.RunNumber())
		p.Read("R")
		p.Read("R")
		return "done"
	}
	cfg := Config{Script: []Action{Step(0), Crash(0), Step(0), Crash(0)}}
	out, err := NewRunner(m, []Body{body}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Runs[0] != 3 {
		t.Fatalf("runs = %d, want 3", out.Runs[0])
	}
	if len(runs) != 3 || runs[0] != 1 || runs[1] != 2 || runs[2] != 3 {
		t.Fatalf("observed run numbers %v, want [1 2 3]", runs)
	}
}

func TestSimultaneousRandomCrashes(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m := NewMemory()
		m.AddRegister("R", None)
		m.AddRegister("S", None)
		mk := func(reg string) Body {
			return func(p *Proc) Value {
				if p.Read(reg) == None {
					p.Write(reg, "v")
				}
				return p.Read(reg)
			}
		}
		cfg := Config{Seed: seed, Model: Simultaneous, CrashProb: 0.3, MaxCrashes: 3}
		out, err := NewRunner(m, []Body{mk("R"), mk("S")}, cfg).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Under the simultaneous model all live processes crash together,
		// so crash counts can differ only because one process decided
		// before a later crash-all event.
		if out.Crashes[0] != out.Crashes[1] && out.Crashes[0] > 0 && out.Crashes[1] > 0 {
			// Allowed: decided process missed later events. Just check
			// outputs stayed correct.
			t.Logf("seed %d: crash counts %v (one process decided early)", seed, out.Crashes)
		}
		if out.Decisions[0] != "v" || out.Decisions[1] != "v" {
			t.Fatalf("seed %d: decisions %v", seed, out.Decisions)
		}
	}
}

func TestTraceContainsCrashAndDecide(t *testing.T) {
	m := NewMemory()
	m.AddRegister("R", None)
	body := func(p *Proc) Value {
		p.Read("R")
		return "x"
	}
	r := NewRunner(m, []Body{body}, Config{Script: []Action{Crash(0), Step(0)}})
	r.RecordTrace()
	out, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TraceKind
	for _, e := range out.Trace {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) != 3 || kinds[0] != TraceCrash || kinds[1] != TraceRead || kinds[2] != TraceDecide {
		t.Fatalf("trace kinds = %v\n%s", kinds, FormatTrace(out.Trace))
	}
}

func TestTraceEventStrings(t *testing.T) {
	cases := []struct {
		e    TraceEvent
		want string
	}{
		{TraceEvent{Kind: TraceCrash, Proc: 2}, "p2 CRASH"},
		{TraceEvent{Kind: TraceDecide, Proc: 0, Detail: "v"}, "p0 decide v"},
		{TraceEvent{Kind: TraceWrite, Proc: 1, Cell: "R", Detail: "7"}, "p1 write R=7"},
		{TraceEvent{Kind: TraceRead, Proc: 1, Cell: "R", Detail: "7"}, "p1 read R=7"},
		{TraceEvent{Kind: TraceApply, Proc: 3, Cell: "O", Detail: "tas->0"}, "p3 apply O.tas->0"},
		{TraceEvent{Kind: TraceReadObj, Proc: 3, Cell: "O", Detail: "1"}, "p3 readobj O=1"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceRead.String() != "read" || TraceKind(99).String() == "" {
		t.Error("TraceKind.String broken")
	}
}

func TestHaltAtScriptEnd(t *testing.T) {
	m := NewMemory()
	m.AddRegister("R", None)
	body := func(p *Proc) Value {
		p.Read("R")
		p.Read("R")
		return "done"
	}
	cfg := Config{Script: []Action{Step(0)}, HaltAtScriptEnd: true}
	out, err := NewRunner(m, []Body{body}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decided[0] {
		t.Fatal("process decided despite halting mid-body")
	}
	if out.Steps != 1 {
		t.Fatalf("steps = %d, want 1", out.Steps)
	}
}

func TestMemoryAccessors(t *testing.T) {
	m := NewMemory()
	m.AddRegister("R", "7")
	m.AddObject("O", types.NewCAS(), spec.State(types.Bottom))
	if !m.HasRegister("R") || m.HasRegister("X") {
		t.Error("HasRegister broken")
	}
	if !m.HasObject("O") || m.HasObject("X") {
		t.Error("HasObject broken")
	}
	if m.PeekRegister("R") != "7" {
		t.Error("PeekRegister broken")
	}
	if got := m.RegisterNames(); len(got) != 1 || got[0] != "R" {
		t.Errorf("RegisterNames = %v", got)
	}
	if m.Object("O").Read() != spec.State(types.Bottom) {
		t.Error("Object accessor broken")
	}
}

func TestMemoryDuplicatePanics(t *testing.T) {
	m := NewMemory()
	m.AddRegister("R", None)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register accepted")
		}
	}()
	m.AddRegister("R", None)
}

func TestBodyBugSurfacesAsError(t *testing.T) {
	m := NewMemory()
	body := func(p *Proc) Value {
		p.Read("missing") // no such register: a bug in the body
		return ""
	}
	_, err := NewRunner(m, []Body{body}, Config{Script: []Action{Step(0)}}).Run()
	if err == nil {
		t.Fatal("read of unknown register did not fail the execution")
	}
}

func TestDecideRequiresStepAddsCrashWindow(t *testing.T) {
	// With the flag on, a process can be crashed between its last shared
	// access and its output; the body then re-runs.
	m := NewMemory()
	m.AddRegister("R", None)
	attempts := 0
	body := func(p *Proc) Value {
		attempts++
		return p.Read("R")
	}
	cfg := Config{
		DecideRequiresStep: true,
		// Step (the read), then crash at the decide point, then two more
		// grants for the re-run (read + decide).
		Script: []Action{Step(0), Crash(0), Step(0), Step(0)},
	}
	out, err := NewRunner(m, []Body{body}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (crashed at the decide point)", attempts)
	}
	if !out.Decided[0] || out.Crashes[0] != 1 {
		t.Fatalf("outcome: %+v", out)
	}
}

func TestDecideRequiresStepCountsSteps(t *testing.T) {
	m := NewMemory()
	m.AddRegister("R", None)
	body := func(p *Proc) Value { return p.Read("R") }
	out, err := NewRunner(m, []Body{body}, Config{Seed: 1, DecideRequiresStep: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Steps != 2 { // the read + the decide commit
		t.Fatalf("steps = %d, want 2", out.Steps)
	}
}
