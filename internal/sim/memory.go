// Package sim simulates the paper's system model: an asynchronous
// shared-memory system with *non-volatile* shared memory in which
// processes may crash and recover *independently* (or simultaneously),
// losing all local state — including their program counter — and
// restarting their code from the beginning.
//
// Processes are Go closures (Body) whose local variables play the role of
// volatile local memory: on a crash the closure is aborted (via a private
// panic sentinel) and simply invoked again, so locals vanish exactly as
// the model prescribes. All shared state lives in a Memory, which the
// crash machinery never touches — that is the non-volatile heap.
//
// Every shared-memory access is a *scheduling point*: the calling
// goroutine parks until the scheduler grants it a step, which makes
// executions fully deterministic for a fixed seed or script, lets
// adversarial schedules from the paper be replayed exactly, and
// serializes all memory accesses (at most one process runs between a
// grant and its next scheduling point).
package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rcons/internal/spec"
)

// Value is the content of a shared register and the type of process
// inputs and decisions.
type Value = string

// None is the distinguished "unwritten" register value ⊥.
const None Value = "_"

// Memory is the non-volatile shared heap: named atomic registers and
// named atomic objects of arbitrary spec types. It survives all crashes.
//
// The Runner serializes all *data* access (reads, writes, applies) by
// construction — at most one process runs between a grant and its next
// scheduling point. Structural access (allocation, existence checks) is
// additionally guarded by an internal mutex, because bodies legitimately
// allocate outside grant windows: the stretch of a body before its FIRST
// scheduling point runs concurrently with the other processes' preludes.
// Allocation models preparing a node in non-volatile memory before any
// pointer to it is published, so this concurrency is unobservable to the
// algorithms — but without the lock it is a data race on the maps.
type Memory struct {
	mu   sync.Mutex
	regs map[string]Value
	objs map[string]*spec.Object

	nextID int // allocation counter for fresh names (non-volatile)
}

// NewMemory returns an empty non-volatile heap.
func NewMemory() *Memory {
	return &Memory{regs: map[string]Value{}, objs: map[string]*spec.Object{}}
}

// AddRegister creates register name with the given initial value. It
// panics if the name is taken: memory layout mistakes are programming
// errors in experiment setup code.
func (m *Memory) AddRegister(name string, init Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.regs[name]; dup {
		panic(fmt.Sprintf("sim: register %q already exists", name))
	}
	m.regs[name] = init
}

// AddObject creates an object cell of type t initialized to q0.
func (m *Memory) AddObject(name string, t spec.Type, q0 spec.State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.objs[name]; dup {
		panic(fmt.Sprintf("sim: object %q already exists", name))
	}
	m.objs[name] = spec.NewObject(t, q0)
}

// FreshName mints a unique cell name with the given prefix. The counter
// is non-volatile, so names are unique across crashes.
func (m *Memory) FreshName(prefix string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return prefix + "#" + strconv.Itoa(m.nextID)
}

// EnsureRegister creates register name with the given initial value if
// it does not exist yet. The check-and-create is atomic, so concurrent
// body preludes ensuring the same cell cannot collide.
func (m *Memory) EnsureRegister(name string, init Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.regs[name]; !ok {
		m.regs[name] = init
	}
}

// EnsureObject creates an object cell of type t initialized to q0 if it
// does not exist yet (atomically, like EnsureRegister).
func (m *Memory) EnsureObject(name string, t spec.Type, q0 spec.State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objs[name]; !ok {
		m.objs[name] = spec.NewObject(t, q0)
	}
}

// HasRegister reports whether register name exists.
func (m *Memory) HasRegister(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.regs[name]
	return ok
}

// HasObject reports whether object name exists.
func (m *Memory) HasObject(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.objs[name]
	return ok
}

// Object returns the named object for post-execution inspection by tests.
func (m *Memory) Object(name string) *spec.Object {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.objs[name]
	if !ok {
		panic(fmt.Sprintf("sim: unknown object %q", name))
	}
	return o
}

// PeekRegister returns the named register's value for post-execution
// inspection by tests.
func (m *Memory) PeekRegister(name string) Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.regs[name]
	if !ok {
		panic(fmt.Sprintf("sim: unknown register %q", name))
	}
	return v
}

// Snapshot returns a canonical textual dump of the entire non-volatile
// heap: every register's value, every object's type and current state,
// and the fresh-name counter, in sorted order. Two memories with equal
// snapshots are indistinguishable to any future execution, which is what
// lets the model checker use snapshots as configuration fingerprints for
// state-space pruning.
func (m *Memory) Snapshot() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	for _, name := range m.registerNamesLocked() {
		fmt.Fprintf(&b, "r %q=%q\n", name, m.regs[name])
	}
	objNames := make([]string, 0, len(m.objs))
	for name := range m.objs {
		objNames = append(objNames, name)
	}
	sort.Strings(objNames)
	for _, name := range objNames {
		o := m.objs[name]
		fmt.Fprintf(&b, "o %q:%s=%q\n", name, o.Type().Name(), o.Read())
	}
	fmt.Fprintf(&b, "next=%d\n", m.nextID)
	return b.String()
}

// RegisterNames returns all register names, sorted (for deterministic
// diagnostics).
func (m *Memory) RegisterNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.registerNamesLocked()
}

func (m *Memory) registerNamesLocked() []string {
	out := make([]string, 0, len(m.regs))
	for name := range m.regs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (m *Memory) read(name string) Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.regs[name]
	if !ok {
		panic(fmt.Sprintf("sim: read of unknown register %q", name))
	}
	return v
}

func (m *Memory) write(name string, v Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.regs[name]; !ok {
		panic(fmt.Sprintf("sim: write to unknown register %q", name))
	}
	m.regs[name] = v
}

func (m *Memory) apply(name string, op spec.Op) spec.Response {
	m.mu.Lock()
	o, ok := m.objs[name]
	m.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("sim: apply to unknown object %q", name))
	}
	r, err := o.Apply(op)
	if err != nil {
		panic(fmt.Sprintf("sim: apply %s to %q: %v", op, name, err))
	}
	return r
}

func (m *Memory) readObj(name string) spec.State {
	m.mu.Lock()
	o, ok := m.objs[name]
	m.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("sim: read of unknown object %q", name))
	}
	return o.Read()
}
