// Package sim simulates the paper's system model: an asynchronous
// shared-memory system with *non-volatile* shared memory in which
// processes may crash and recover *independently* (or simultaneously),
// losing all local state — including their program counter — and
// restarting their code from the beginning.
//
// Processes are Go closures (Body) whose local variables play the role of
// volatile local memory: on a crash the closure is aborted (via a private
// panic sentinel) and simply invoked again, so locals vanish exactly as
// the model prescribes. All shared state lives in a Memory, which the
// crash machinery never touches — that is the non-volatile heap.
//
// Every shared-memory access is a *scheduling point*: the calling
// goroutine parks until the scheduler grants it a step, which makes
// executions fully deterministic for a fixed seed or script, lets
// adversarial schedules from the paper be replayed exactly, and
// serializes all memory accesses (at most one process runs between a
// grant and its next scheduling point).
package sim

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"rcons/internal/intern"
	"rcons/internal/spec"
)

// Value is the content of a shared register and the type of process
// inputs and decisions.
type Value = string

// None is the distinguished "unwritten" register value ⊥.
const None Value = "_"

// regCell is one register: its value plus the interned identity and
// digest contribution kept so writes update Memory.structHash in O(1)
// without re-hashing any strings.
type regCell struct {
	val    Value
	nameID uint32
	digest uint64
}

// objCell is one object cell; nameID and typeID are interned once at
// allocation. The cell's digest contribution is derived from the
// object's state on demand (see apply) rather than cached, so
// concurrent applies fold commutative XOR deltas and cannot leave a
// stale cached word behind.
type objCell struct {
	o      *spec.Object
	nameID uint32
	typeID uint32
}

// Cell-kind tags keep register and object digests in disjoint families
// even when a register value and an object state intern to the same id.
const (
	regTag uint64 = 0x5245 << 48 // "RE"
	objTag uint64 = 0x4f42 << 48 // "OB"
)

func regDigest(nameID, valID uint32) uint64 {
	return intern.Mix64(regTag ^ uint64(nameID)<<32 ^ uint64(valID))
}

func objDigest(nameID, typeID, stateID uint32) uint64 {
	return intern.MixPair(intern.Mix64(objTag^uint64(nameID)<<32^uint64(typeID)), uint64(stateID))
}

// Memory is the non-volatile shared heap: named atomic registers and
// named atomic objects of arbitrary spec types. It survives all crashes.
//
// The Runner serializes all *data* access (reads, writes, applies) by
// construction — at most one process runs between a grant and its next
// scheduling point. Structural access (allocation, existence checks) is
// additionally guarded by an internal mutex, because bodies legitimately
// allocate outside grant windows: the stretch of a body before its FIRST
// scheduling point runs concurrently with the other processes' preludes.
// Allocation models preparing a node in non-volatile memory before any
// pointer to it is published, so this concurrency is unobservable to the
// algorithms — but without the lock it is a data race on the maps.
//
// Alongside the cells the memory maintains structHash, an incrementally
// updated structural digest: the XOR of one well-mixed 64-bit word per
// cell (name, kind and current value all interned). XOR makes every
// update O(1) — a write removes the old cell word and adds the new one —
// and makes the digest independent of allocation interleaving, exactly
// like the sorted textual Snapshot it replaces on the model checker's
// hot path.
type Memory struct {
	mu   sync.Mutex
	regs map[string]regCell
	objs map[string]objCell

	nextID int // allocation counter for fresh names (non-volatile)

	structHash uint64 // XOR of per-cell digests, maintained on every mutation

	// Sorted name slices are cached between Snapshot/RegisterNames calls
	// and invalidated by allocation (values changing does not reorder
	// names), so steady-state snapshots stop re-sorting and reallocating.
	sortedRegs []string
	sortedObjs []string
}

// NewMemory returns an empty non-volatile heap.
func NewMemory() *Memory {
	return &Memory{regs: map[string]regCell{}, objs: map[string]objCell{}}
}

func (m *Memory) addRegisterLocked(name string, init Value) {
	nameID := intern.ID(name)
	cell := regCell{val: init, nameID: nameID, digest: regDigest(nameID, intern.ID(init))}
	m.regs[name] = cell
	m.structHash ^= cell.digest
	m.sortedRegs = nil
}

func (m *Memory) addObjectLocked(name string, t spec.Type, q0 spec.State) {
	nameID := intern.ID(name)
	typeID := intern.ID(t.Name())
	m.objs[name] = objCell{o: spec.NewObject(t, q0), nameID: nameID, typeID: typeID}
	m.structHash ^= objDigest(nameID, typeID, intern.ID(string(q0)))
	m.sortedObjs = nil
}

// AddRegister creates register name with the given initial value. It
// panics if the name is taken: memory layout mistakes are programming
// errors in experiment setup code.
func (m *Memory) AddRegister(name string, init Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.regs[name]; dup {
		panic(fmt.Sprintf("sim: register %q already exists", name))
	}
	m.addRegisterLocked(name, init)
}

// AddObject creates an object cell of type t initialized to q0.
func (m *Memory) AddObject(name string, t spec.Type, q0 spec.State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.objs[name]; dup {
		panic(fmt.Sprintf("sim: object %q already exists", name))
	}
	m.addObjectLocked(name, t, q0)
}

// FreshName mints a unique cell name with the given prefix. The counter
// is non-volatile, so names are unique across crashes.
func (m *Memory) FreshName(prefix string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return prefix + "#" + strconv.Itoa(m.nextID)
}

// EnsureRegister creates register name with the given initial value if
// it does not exist yet. The check-and-create is atomic, so concurrent
// body preludes ensuring the same cell cannot collide.
func (m *Memory) EnsureRegister(name string, init Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.regs[name]; !ok {
		m.addRegisterLocked(name, init)
	}
}

// EnsureObject creates an object cell of type t initialized to q0 if it
// does not exist yet (atomically, like EnsureRegister).
func (m *Memory) EnsureObject(name string, t spec.Type, q0 spec.State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objs[name]; !ok {
		m.addObjectLocked(name, t, q0)
	}
}

// HasRegister reports whether register name exists.
func (m *Memory) HasRegister(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.regs[name]
	return ok
}

// HasObject reports whether object name exists.
func (m *Memory) HasObject(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.objs[name]
	return ok
}

// Object returns the named object for post-execution inspection by tests.
func (m *Memory) Object(name string) *spec.Object {
	m.mu.Lock()
	defer m.mu.Unlock()
	cell, ok := m.objs[name]
	if !ok {
		panic(fmt.Sprintf("sim: unknown object %q", name))
	}
	return cell.o
}

// PeekRegister returns the named register's value for post-execution
// inspection by tests.
func (m *Memory) PeekRegister(name string) Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	cell, ok := m.regs[name]
	if !ok {
		panic(fmt.Sprintf("sim: unknown register %q", name))
	}
	return cell.val
}

// Digest returns the incrementally maintained structural digest of the
// heap: a 64-bit hash covering every register's value, every object's
// type and current state, and the fresh-name counter — the same
// configuration identity Snapshot renders textually, at O(1) instead of
// O(cells · log cells) per call. Two memories whose executions diverged
// anywhere collide only with hash probability; the model checker pairs
// it with per-process history digests, so a collision additionally
// requires identical histories (see mc's fingerprint and its parity
// fuzz target).
func (m *Memory) Digest() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return intern.MixPair(m.structHash, uint64(m.nextID))
}

// Snapshot returns a canonical textual dump of the entire non-volatile
// heap: every register's value, every object's type and current state,
// and the fresh-name counter, in sorted order. Two memories with equal
// snapshots are indistinguishable to any future execution. It remains
// the legacy (pre-incremental) configuration fingerprint for the model
// checker's parity tests, and the human-readable heap dump for
// diagnostics.
func (m *Memory) Snapshot() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Rendered by hand into one buffer (strconv.AppendQuote matches
	// fmt's %q byte for byte): the whole dump costs two allocations
	// instead of several per cell.
	buf := make([]byte, 0, 32+48*(len(m.regs)+len(m.objs)))
	for _, name := range m.sortedRegNamesLocked() {
		buf = append(buf, "r "...)
		buf = strconv.AppendQuote(buf, name)
		buf = append(buf, '=')
		buf = strconv.AppendQuote(buf, m.regs[name].val)
		buf = append(buf, '\n')
	}
	for _, name := range m.sortedObjNamesLocked() {
		cell := m.objs[name]
		buf = append(buf, "o "...)
		buf = strconv.AppendQuote(buf, name)
		buf = append(buf, ':')
		buf = append(buf, cell.o.Type().Name()...)
		buf = append(buf, '=')
		buf = strconv.AppendQuote(buf, string(cell.o.Read()))
		buf = append(buf, '\n')
	}
	buf = append(buf, "next="...)
	buf = strconv.AppendInt(buf, int64(m.nextID), 10)
	buf = append(buf, '\n')
	return string(buf)
}

// RegisterNames returns all register names, sorted (for deterministic
// diagnostics). The returned slice is the caller's to keep.
func (m *Memory) RegisterNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.sortedRegNamesLocked()...)
}

// sortedRegNamesLocked returns the cached sorted register-name slice,
// rebuilding it only after an allocation invalidated it. Callers must
// not retain or mutate the result past the lock.
func (m *Memory) sortedRegNamesLocked() []string {
	if m.sortedRegs == nil {
		m.sortedRegs = make([]string, 0, len(m.regs))
		for name := range m.regs {
			m.sortedRegs = append(m.sortedRegs, name)
		}
		sort.Strings(m.sortedRegs)
	}
	return m.sortedRegs
}

func (m *Memory) sortedObjNamesLocked() []string {
	if m.sortedObjs == nil {
		m.sortedObjs = make([]string, 0, len(m.objs))
		for name := range m.objs {
			m.sortedObjs = append(m.sortedObjs, name)
		}
		sort.Strings(m.sortedObjs)
	}
	return m.sortedObjs
}

func (m *Memory) read(name string) Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	cell, ok := m.regs[name]
	if !ok {
		panic(fmt.Sprintf("sim: read of unknown register %q", name))
	}
	return cell.val
}

func (m *Memory) write(name string, v Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cell, ok := m.regs[name]
	if !ok {
		panic(fmt.Sprintf("sim: write to unknown register %q", name))
	}
	m.structHash ^= cell.digest
	cell.val = v
	cell.digest = regDigest(cell.nameID, intern.ID(v))
	m.structHash ^= cell.digest
	m.regs[name] = cell
}

func (m *Memory) apply(name string, op spec.Op) spec.Response {
	m.mu.Lock()
	cell, ok := m.objs[name]
	m.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("sim: apply to unknown object %q", name))
	}
	prev, next, r, err := cell.o.ApplyStates(op)
	if err != nil {
		panic(fmt.Sprintf("sim: apply %s to %q: %v", op, name, err))
	}
	if prev != next {
		// Fold the delta of THIS transition (prev/next come from the same
		// atomic ApplyStates). XOR deltas commute, so even applies racing
		// from outside the simulator's serialization chain correctly:
		// D(S0)^D(S1) ^ D(S1)^D(S2) nets to D(S0)^D(S2) in any order.
		delta := objDigest(cell.nameID, cell.typeID, intern.ID(string(prev))) ^
			objDigest(cell.nameID, cell.typeID, intern.ID(string(next)))
		m.mu.Lock()
		m.structHash ^= delta
		m.mu.Unlock()
	}
	return r
}

func (m *Memory) readObj(name string) spec.State {
	m.mu.Lock()
	cell, ok := m.objs[name]
	m.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("sim: read of unknown object %q", name))
	}
	return cell.o.Read()
}
