// Package sim simulates the paper's system model: an asynchronous
// shared-memory system with *non-volatile* shared memory in which
// processes may crash and recover *independently* (or simultaneously),
// losing all local state — including their program counter — and
// restarting their code from the beginning.
//
// Processes are Go closures (Body) whose local variables play the role of
// volatile local memory: on a crash the closure is aborted (via a private
// panic sentinel) and simply invoked again, so locals vanish exactly as
// the model prescribes. All shared state lives in a Memory, which the
// crash machinery never touches — that is the non-volatile heap.
//
// Every shared-memory access is a *scheduling point*: the calling
// goroutine parks until the scheduler grants it a step, which makes
// executions fully deterministic for a fixed seed or script, lets
// adversarial schedules from the paper be replayed exactly, and
// serializes all memory accesses (at most one process runs between a
// grant and its next scheduling point).
package sim

import (
	"fmt"
	"sort"
	"strconv"

	"rcons/internal/spec"
)

// Value is the content of a shared register and the type of process
// inputs and decisions.
type Value = string

// None is the distinguished "unwritten" register value ⊥.
const None Value = "_"

// Memory is the non-volatile shared heap: named atomic registers and
// named atomic objects of arbitrary spec types. It survives all crashes.
//
// Memory is not safe for direct concurrent use; the Runner serializes all
// access. Bodies may allocate new cells at any time (allocation models
// preparing a node in shared memory before publishing a pointer to it).
type Memory struct {
	regs map[string]Value
	objs map[string]*spec.Object

	nextID int // allocation counter for fresh names (non-volatile)
}

// NewMemory returns an empty non-volatile heap.
func NewMemory() *Memory {
	return &Memory{regs: map[string]Value{}, objs: map[string]*spec.Object{}}
}

// AddRegister creates register name with the given initial value. It
// panics if the name is taken: memory layout mistakes are programming
// errors in experiment setup code.
func (m *Memory) AddRegister(name string, init Value) {
	if _, dup := m.regs[name]; dup {
		panic(fmt.Sprintf("sim: register %q already exists", name))
	}
	m.regs[name] = init
}

// AddObject creates an object cell of type t initialized to q0.
func (m *Memory) AddObject(name string, t spec.Type, q0 spec.State) {
	if _, dup := m.objs[name]; dup {
		panic(fmt.Sprintf("sim: object %q already exists", name))
	}
	m.objs[name] = spec.NewObject(t, q0)
}

// FreshName mints a unique cell name with the given prefix. The counter
// is non-volatile, so names are unique across crashes.
func (m *Memory) FreshName(prefix string) string {
	m.nextID++
	return prefix + "#" + strconv.Itoa(m.nextID)
}

// HasRegister reports whether register name exists.
func (m *Memory) HasRegister(name string) bool {
	_, ok := m.regs[name]
	return ok
}

// HasObject reports whether object name exists.
func (m *Memory) HasObject(name string) bool {
	_, ok := m.objs[name]
	return ok
}

// Object returns the named object for post-execution inspection by tests.
func (m *Memory) Object(name string) *spec.Object {
	o, ok := m.objs[name]
	if !ok {
		panic(fmt.Sprintf("sim: unknown object %q", name))
	}
	return o
}

// PeekRegister returns the named register's value for post-execution
// inspection by tests.
func (m *Memory) PeekRegister(name string) Value {
	v, ok := m.regs[name]
	if !ok {
		panic(fmt.Sprintf("sim: unknown register %q", name))
	}
	return v
}

// RegisterNames returns all register names, sorted (for deterministic
// diagnostics).
func (m *Memory) RegisterNames() []string {
	out := make([]string, 0, len(m.regs))
	for name := range m.regs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (m *Memory) read(name string) Value {
	v, ok := m.regs[name]
	if !ok {
		panic(fmt.Sprintf("sim: read of unknown register %q", name))
	}
	return v
}

func (m *Memory) write(name string, v Value) {
	if _, ok := m.regs[name]; !ok {
		panic(fmt.Sprintf("sim: write to unknown register %q", name))
	}
	m.regs[name] = v
}

func (m *Memory) apply(name string, op spec.Op) spec.Response {
	o, ok := m.objs[name]
	if !ok {
		panic(fmt.Sprintf("sim: apply to unknown object %q", name))
	}
	r, err := o.Apply(op)
	if err != nil {
		panic(fmt.Sprintf("sim: apply %s to %q: %v", op, name, err))
	}
	return r
}

func (m *Memory) readObj(name string) spec.State {
	o, ok := m.objs[name]
	if !ok {
		panic(fmt.Sprintf("sim: read of unknown object %q", name))
	}
	return o.Read()
}
