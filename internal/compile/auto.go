// Automorphism groups of compiled tables, powering search-time symmetry
// reduction.
//
// An automorphism is a pair of relabelings (π over state indices, σ over
// op indices) under which the table is invariant:
//
//	next[π(s), σ(o)] = π(next[s, o])    for every (s, o)
//	resp[π(s), σ(o)] = resp[s, o]       (responses preserved EXACTLY)
//	π(inits) = inits                    (initial-state set fixed setwise)
//
// Exact response preservation (rather than preservation up to renaming)
// is what makes the reduction sound for the n-discerning property, whose
// R-sets contain concrete (response, state) pairs: relabeling a witness
// by an automorphism maps its Q/R sets through π while leaving every
// response untouched, so all three recording conditions and the
// discerning disjointness condition hold for the witness iff they hold
// for its relabeling. Witness-search shards in the same orbit therefore
// contain witnesses iff their orbit-mates do, and all but the first
// shard of each orbit can be skipped without changing any verdict — see
// engine's symmetric-shard pruning for the determinism argument.
package compile

import (
	"rcons/internal/atlas"
)

// Caps on the brute-force automorphism search. The candidate space is
// states! × ops!; beyond these bounds Automorphisms reports the trivial
// group, which simply disables symmetry pruning.
const (
	autoMaxStates = 7
	autoMaxOps    = 6
	autoMaxCombos = 250000
)

// Element is one automorphism: State[s] is the relabeled index of state
// s, Op[o] the relabeled index of op o.
type Element struct {
	State []int
	Op    []int
}

// Group is the automorphism group of a compiled table. The identity is
// always elems[0]; a group of size 1 is trivial and disables pruning.
type Group struct {
	elems []Element
}

// Size returns the group order (≥ 1; the identity is always present).
func (g *Group) Size() int { return len(g.elems) }

// Nontrivial reports whether the group contains a non-identity element —
// the gate for all symmetry pruning.
func (g *Group) Nontrivial() bool { return len(g.elems) > 1 }

// Elements returns the group's elements, identity first. Callers must
// not mutate the returned slices.
func (g *Group) Elements() []Element { return g.elems }

// Automorphisms returns the table's automorphism group, computing it on
// first use and caching it. Tables beyond the brute-force caps get the
// trivial group (sound: pruning just never activates).
func (c *Compiled) Automorphisms() *Group {
	c.autoOnce.Do(func() { c.auto = c.computeAutomorphisms() })
	return c.auto
}

func (c *Compiled) computeAutomorphisms() *Group {
	S, O := len(c.states), len(c.ops)
	identity := func() *Group {
		return &Group{elems: []Element{{State: identityPerm(S), Op: identityPerm(O)}}}
	}
	if S > autoMaxStates || O > autoMaxOps {
		return identity()
	}
	statePerms := atlas.Permutations(S)
	opPerms := atlas.Permutations(O)
	if len(statePerms)*len(opPerms) > autoMaxCombos {
		return identity()
	}
	isInit := make([]bool, S)
	for _, i := range c.inits {
		isInit[i] = true
	}
	var elems []Element
	for _, ps := range statePerms {
		if !preservesInits(ps, isInit) {
			continue
		}
		for _, po := range opPerms {
			if c.isAutomorphism(ps, po) {
				elems = append(elems, Element{State: ps, Op: po})
			}
		}
	}
	// atlas.Permutations is lexicographic, so the identity pair is the
	// first accepted element by construction.
	return &Group{elems: elems}
}

// preservesInits reports whether ps maps the initial-state set onto
// itself.
func preservesInits(ps []int, isInit []bool) bool {
	for s, init := range isInit {
		if init && !isInit[ps[s]] {
			return false
		}
	}
	return true
}

// isAutomorphism checks table invariance under (ps, po).
func (c *Compiled) isAutomorphism(ps, po []int) bool {
	O := len(c.ops)
	for s := range c.states {
		for o := range c.ops {
			k := s*O + o
			pk := ps[s]*O + po[o]
			if int(c.nextTab[pk]) != ps[c.nextTab[k]] || c.respTab[pk] != c.respTab[k] {
				return false
			}
		}
	}
	return true
}

func identityPerm(k int) []int {
	p := make([]int, k)
	for i := range p {
		p[i] = i
	}
	return p
}

// CanonicalShardKey returns a key identifying the orbit of the witness
// shard (q0, team-A op multiset) under the group: the lexicographically
// minimal encoding of (π(q0), counts∘σ⁻¹) over all group elements. Two
// shards get the same key exactly when some automorphism maps one to
// the other; keeping only the first shard of each orbit preserves every
// search verdict. counts must have NumOps entries (the per-op team-A
// multiplicities in table op order).
func (g *Group) CanonicalShardKey(q0 uint16, counts []int) string {
	cand := make([]byte, 2+2*len(counts))
	var best []byte
	for _, el := range g.elems {
		q := el.State[q0]
		cand[0], cand[1] = byte(q), byte(q>>8)
		for o, c := range counts {
			no := el.Op[o]
			cand[2+2*no], cand[3+2*no] = byte(c), byte(c>>8)
		}
		if best == nil || lexLess(cand, best) {
			best = append(best[:0], cand...)
		}
	}
	return string(best)
}

// lexLess reports a < b lexicographically; lengths are equal by
// construction.
func lexLess(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
