package compile

import (
	"strings"
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// TestCompileZooTables compiles every compilable zoo type and checks
// each table cell against the interpreted Apply: same successor state,
// same response, for every (state, op) in the compiled universe.
func TestCompileZooTables(t *testing.T) {
	const n = 3
	compiledAny := false
	for _, typ := range types.Zoo() {
		c, err := Compile(typ, n)
		if err != nil {
			t.Logf("%s: not compiled: %v", typ.Name(), err)
			continue
		}
		compiledAny = true
		for si := 0; si < c.NumStates(); si++ {
			for oi := 0; oi < c.NumOps(); oi++ {
				ni, ri := c.Apply(uint16(si), uint16(oi))
				ns, r, err := typ.Apply(c.StateAt(uint16(si)), c.OpAt(uint16(oi)))
				if err != nil {
					t.Fatalf("%s: interpreted Apply(%q, %s): %v", typ.Name(), c.StateAt(uint16(si)), c.OpAt(uint16(oi)), err)
				}
				if c.StateAt(ni) != ns || c.RespAt(ri) != r {
					t.Fatalf("%s: cell (%q, %s): compiled (%q, %q) != interpreted (%q, %q)",
						typ.Name(), c.StateAt(uint16(si)), c.OpAt(uint16(oi)),
						c.StateAt(ni), c.RespAt(ri), ns, r)
				}
			}
		}
		// Every initial state must be in the table, round-tripping by
		// index.
		for _, q0 := range typ.InitialStates() {
			i, ok := c.StateIndex(q0)
			if !ok {
				t.Fatalf("%s: initial state %q missing from table", typ.Name(), q0)
			}
			if c.StateAt(i) != q0 {
				t.Fatalf("%s: state round trip %q -> %d -> %q", typ.Name(), q0, i, c.StateAt(i))
			}
		}
	}
	if !compiledAny {
		t.Fatal("no zoo type compiled")
	}
}

// TestWrapperDelegates pins the spec.Type view's contract: identical
// Name/InitialStates/Ops, identical Apply on table inputs, source
// fallback outside the table, and preserved OpsForN / readability.
func TestWrapperDelegates(t *testing.T) {
	src := types.NewSn(3)
	c, err := Compile(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Type()
	if w.Name() != src.Name() {
		t.Fatalf("Name = %q, want %q", w.Name(), src.Name())
	}
	if len(w.InitialStates()) != len(src.InitialStates()) || w.InitialStates()[0] != src.InitialStates()[0] {
		t.Fatalf("InitialStates = %v, want %v", w.InitialStates(), src.InitialStates())
	}
	for _, q0 := range src.InitialStates() {
		for _, op := range spec.CandidateOps(src, 3) {
			ns1, r1, err1 := w.Apply(q0, op)
			ns2, r2, err2 := src.Apply(q0, op)
			if ns1 != ns2 || r1 != r2 || (err1 == nil) != (err2 == nil) {
				t.Fatalf("Apply(%q, %s): view (%q,%q,%v) != src (%q,%q,%v)", q0, op, ns1, r1, err1, ns2, r2, err2)
			}
		}
	}
	// Out-of-table inputs fall back to the source, including its errors.
	if _, _, err := w.Apply("no-such-state", "opA"); err == nil {
		t.Fatal("view accepted a state the source rejects")
	}
	if _, _, err := w.Apply(src.InitialStates()[0], "no-such-op"); err == nil {
		t.Fatal("view accepted an op the source rejects")
	}
}

// TestWrapperPreservesInterfaces checks that the view keeps the
// source's OpsForN implementation and its readability classification.
func TestWrapperPreservesInterfaces(t *testing.T) {
	cas := types.NewCAS()
	c, err := Compile(cas, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := c.Type()
	g, ok := v.(spec.OpsForN)
	if !ok {
		t.Fatal("view of an OpsForN type lost OpsFor")
	}
	want := spec.CandidateOps(cas, 4)
	got := g.OpsFor(4)
	if len(got) != len(want) {
		t.Fatalf("OpsFor(4) = %v, want %v", got, want)
	}
	if !types.Readable(v) {
		t.Fatal("view of a readable type reports non-readable")
	}

	q := types.NewQueue(2) // non-readable by default
	if types.Readable(q) {
		t.Skip("queue unexpectedly readable; marker test void")
	}
	cq, err := Compile(q, 2)
	if err != nil {
		t.Skipf("queue not compilable: %v", err)
	}
	if types.Readable(cq.Type()) {
		t.Fatal("view of a non-readable type reports readable")
	}
}

// TestCompileRejectsMalformedOp exercises the ParseOp gate: an
// operation with unbalanced parentheses must fail compilation with
// ErrBadOp.
func TestCompileRejectsMalformedOp(t *testing.T) {
	bad := &types.Custom{
		TypeName: "badop",
		Initial:  []string{"q"},
		Transitions: map[string]map[string]types.CustomEdge{
			"q": {"f(a": {Next: "q", Resp: "ack"}},
		},
	}
	if _, err := Compile(bad, 2); err == nil || !strings.Contains(err.Error(), "unsupported operation") {
		t.Fatalf("Compile(badop) error = %v, want ErrBadOp", err)
	}
}

// symmetricType builds a two-state table with a state-swap automorphism:
// "flip" swaps the states, "stay" fixes them, every response is "ack",
// and both states are initial.
func symmetricType() *types.Custom {
	return &types.Custom{
		TypeName: "sym2",
		Initial:  []string{"a", "b"},
		Transitions: map[string]map[string]types.CustomEdge{
			"a": {"flip": {Next: "b", Resp: "ack"}, "stay": {Next: "a", Resp: "ack"}},
			"b": {"flip": {Next: "a", Resp: "ack"}, "stay": {Next: "b", Resp: "ack"}},
		},
	}
}

func TestAutomorphismsSymmetric(t *testing.T) {
	c, err := Compile(symmetricType(), 2)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Automorphisms()
	if !g.Nontrivial() {
		t.Fatal("state-swap symmetry not found")
	}
	if g.Size() != 2 {
		t.Fatalf("group size = %d, want 2 (identity + state swap)", g.Size())
	}
	// The identity must always be an element, listed first.
	id := g.Elements()[0]
	for i, v := range id.State {
		if v != i {
			t.Fatalf("first element is not the identity: %v", id.State)
		}
	}

	// Orbit keys: the shards (q0=a, counts) and (q0=b, counts) are
	// relabelings of each other, shards with different counts are not.
	ai, _ := c.StateIndex("a")
	bi, _ := c.StateIndex("b")
	if g.CanonicalShardKey(ai, []int{1, 0}) != g.CanonicalShardKey(bi, []int{1, 0}) {
		t.Fatal("orbit-mate shards got different canonical keys")
	}
	if g.CanonicalShardKey(ai, []int{1, 0}) == g.CanonicalShardKey(ai, []int{0, 1}) {
		t.Fatal("distinct-orbit shards share a canonical key")
	}
}

// TestAutomorphismsRespectResponses pins the exactness requirement:
// a swap that preserves transitions but exchanges observable responses
// is NOT an automorphism (it would be unsound for discerning checks).
func TestAutomorphismsRespectResponses(t *testing.T) {
	typ := &types.Custom{
		TypeName: "respsym",
		Initial:  []string{"a", "b"},
		Transitions: map[string]map[string]types.CustomEdge{
			"a": {"flip": {Next: "b", Resp: "ra"}, "stay": {Next: "a", Resp: "ra"}},
			"b": {"flip": {Next: "a", Resp: "rb"}, "stay": {Next: "b", Resp: "rb"}},
		},
	}
	c, err := Compile(typ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g := c.Automorphisms(); g.Nontrivial() {
		t.Fatalf("group size = %d; the state swap changes responses and must be rejected", g.Size())
	}
}

// TestAutomorphismsFixInits: symmetry that moves an initial state out
// of the initial set must be rejected.
func TestAutomorphismsFixInits(t *testing.T) {
	typ := symmetricType()
	typ.Initial = []string{"a"} // break the setwise init symmetry
	c, err := Compile(typ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g := c.Automorphisms(); g.Nontrivial() {
		t.Fatalf("group size = %d; the swap moves q0 out of the initial set", g.Size())
	}
}
