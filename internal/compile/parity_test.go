package compile_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"rcons/internal/atlas"
	"rcons/internal/compile"
	"rcons/internal/engine"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// TestCompiledParity is the differential battery for the compiled core:
// for every zoo type plus a sample of random tables, classify via the
// default (compiled + symmetry-pruned) engine and via the interpreted
// parity oracle, and require bit-identical classifications — same
// verdicts, same levels, same canonical witnesses. CanonicalFingerprint
// of a type and of its compiled view must also agree, since the view
// renders the same strings.
func TestCompiledParity(t *testing.T) {
	limit := 4
	samples := 40
	if testing.Short() {
		limit = 3
		samples = 15
	}

	compiled := engine.New(engine.Options{Workers: 4, CacheSize: -1})
	interp := engine.New(engine.Options{Workers: 4, CacheSize: -1, Interpreted: true})
	ctx := context.Background()

	targets := types.Zoo()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < samples; i++ {
		tbl := atlas.Random(rng, 2+rng.Intn(3), 2+rng.Intn(2), 2+rng.Intn(2))
		targets = append(targets, tbl)
	}

	for _, typ := range targets {
		got, err := compiled.Classify(ctx, typ, limit)
		if err != nil {
			t.Fatalf("%s: compiled classify: %v", typ.Name(), err)
		}
		want, err := interp.Classify(ctx, typ, limit)
		if err != nil {
			t.Fatalf("%s: interpreted classify: %v", typ.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: compiled %+v != interpreted %+v", typ.Name(), got, want)
		}

		// The compiled view must be indistinguishable at the
		// fingerprint level too: identical rendered artifacts.
		c, err := compile.Compile(typ, 2)
		if err != nil {
			continue
		}
		fp1, ok1 := engine.CanonicalFingerprint(typ, 2)
		fp2, ok2 := engine.CanonicalFingerprint(c.Type(), 2)
		if ok1 != ok2 || fp1 != fp2 {
			t.Errorf("%s: fingerprint of view diverged: (%q,%v) != (%q,%v)", typ.Name(), fp2, ok2, fp1, ok1)
		}
	}
}

// FuzzCompiledApply cross-checks the dense-table Apply against the
// interpreted source on arbitrary tables and arbitrary (state, op)
// indices, plus the spec.Type view's string-level Apply.
func FuzzCompiledApply(f *testing.F) {
	f.Add([]byte{3, 2, 2, 1, 0, 0, 1, 1, 2, 0, 0, 1, 1, 0}, uint16(1), uint16(1))
	f.Add([]byte{1, 1, 1, 0, 0, 0}, uint16(0), uint16(0))
	f.Add([]byte{4, 3, 3, 2, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, uint16(7), uint16(5))
	f.Fuzz(func(t *testing.T, data []byte, si, oi uint16) {
		src := decodeCustom(data)
		if src == nil {
			return
		}
		c, err := compile.Compile(src, 2)
		if err != nil {
			return // non-total or oversized tables are out of scope
		}
		si = si % uint16(c.NumStates())
		oi = oi % uint16(c.NumOps())
		ni, ri := c.Apply(si, oi)
		ns, r, err := src.Apply(c.StateAt(si), c.OpAt(oi))
		if err != nil {
			t.Fatalf("interpreted Apply(%q, %s): %v", c.StateAt(si), c.OpAt(oi), err)
		}
		if c.StateAt(ni) != ns || c.RespAt(ri) != r {
			t.Fatalf("Apply(%q, %s): compiled (%q, %q) != interpreted (%q, %q)",
				c.StateAt(si), c.OpAt(oi), c.StateAt(ni), c.RespAt(ri), ns, r)
		}
		vns, vr, verr := c.Type().Apply(c.StateAt(si), c.OpAt(oi))
		if verr != nil || vns != ns || vr != r {
			t.Fatalf("view Apply(%q, %s) = (%q, %q, %v), want (%q, %q, nil)",
				c.StateAt(si), c.OpAt(oi), vns, vr, verr, ns, r)
		}
	})
}

// decodeCustom builds a small total transition table from fuzz bytes:
// header [nStates, nOps, nResps, init], then two bytes per (state, op)
// cell selecting the successor state and the response. Returns nil when
// the data is too short to fill the table.
func decodeCustom(data []byte) *types.Custom {
	if len(data) < 4 {
		return nil
	}
	nStates := int(data[0])%4 + 1
	nOps := int(data[1])%3 + 1
	nResps := int(data[2])%3 + 1
	init := int(data[3]) % nStates
	body := data[4:]
	if len(body) < 2*nStates*nOps {
		return nil
	}
	stateName := func(i int) string { return string(rune('a' + i)) }
	cu := &types.Custom{
		TypeName:    "fuzz",
		Initial:     []string{stateName(init)},
		Transitions: map[string]map[string]types.CustomEdge{},
	}
	k := 0
	for s := 0; s < nStates; s++ {
		row := map[string]types.CustomEdge{}
		for o := 0; o < nOps; o++ {
			next := int(body[k]) % nStates
			resp := int(body[k+1]) % nResps
			k += 2
			row[string(spec.FormatOp("op", string(rune('A'+o))))] = types.CustomEdge{
				Next: stateName(next),
				Resp: string(rune('r' + resp)),
			}
		}
		cu.Transitions[stateName(s)] = row
	}
	return cu
}
