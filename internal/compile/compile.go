// Package compile turns any spec.Type into a dense, index-based
// transition table — the "compiled core" the hot search paths run on.
//
// The interpreted representation used throughout the repository keeps
// states, operations and responses as canonical strings, so every node
// the checker, engine or model checker explores pays for map lookups,
// string parsing inside Apply, and string-keyed memoization. Compiling
// replaces all of that with two flat arrays indexed by
// state*numOps+op: one for successor states, one for responses. The
// original strings are interned in index order, so anything rendered
// from a compiled run — verdicts, witnesses, fingerprints,
// counterexamples — is byte-identical to the interpreted output.
//
// A Compiled table is built once per (type, n) via spec.Reachable and
// shared across shards, memo probes and model-checking runs. Its
// optional automorphism group (see auto.go) powers search-time symmetry
// reduction.
package compile

import (
	"fmt"
	"sort"
	"sync"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// StateCap bounds the number of distinct states a compiled table may
// hold. It matches the engine's fingerprint exploration cap and keeps
// indices comfortably inside uint16.
const StateCap = 1 << 14

// Compiled is a spec.Type lowered to dense uint16 index space.
//
// States, ops and responses are assigned indices once at compile time;
// the transition function is the array pair next/resp with
// next[s*numOps+o] the successor state index and resp[s*numOps+o] the
// response index. All slices are immutable after Compile returns, so a
// Compiled value is safe for concurrent use.
type Compiled struct {
	src      spec.Type
	n        int
	states   []spec.State
	ops      []spec.Op
	resps    []spec.Response
	stateIdx map[spec.State]uint16
	opIdx    map[spec.Op]uint16
	nextTab  []uint16
	respTab  []uint16
	inits    []uint16 // sorted unique indices of src.InitialStates()
	readable bool

	autoOnce sync.Once
	auto     *Group
}

// Compile lowers t to a dense transition table for searches among n
// processes. The operation alphabet is spec.CandidateOps(t, n) — the
// same alphabet checker.Shards enumerates — and the state universe is
// the union of spec.Reachable closures from every initial state, so the
// table is closed: Apply never leaves it.
//
// Compile fails when an operation encoding is malformed (ParseOp), the
// alphabet contains duplicates, or the reachable state space exceeds
// StateCap; callers are expected to fall back to the interpreted path.
func Compile(t spec.Type, n int) (*Compiled, error) {
	ops := spec.CandidateOps(t, n)
	if len(ops) == 0 {
		return nil, fmt.Errorf("compile %s: type has no update operations", t.Name())
	}
	opIdx := make(map[spec.Op]uint16, len(ops))
	for i, op := range ops {
		if _, _, err := spec.ParseOp(op); err != nil {
			return nil, fmt.Errorf("compile %s: %w", t.Name(), err)
		}
		if _, dup := opIdx[op]; dup {
			return nil, fmt.Errorf("compile %s: duplicate operation %q in candidate alphabet", t.Name(), op)
		}
		opIdx[op] = uint16(i)
	}

	inits := t.InitialStates()
	if len(inits) == 0 {
		return nil, fmt.Errorf("compile %s: type has no initial states", t.Name())
	}
	union := map[spec.State]bool{}
	for _, q0 := range inits {
		reach, err := spec.Reachable(t, q0, ops, StateCap)
		if err != nil {
			return nil, fmt.Errorf("compile %s: %w", t.Name(), err)
		}
		for _, s := range reach {
			union[s] = true
		}
	}
	if len(union) > StateCap {
		return nil, fmt.Errorf("compile %s: %d reachable states exceed cap %d", t.Name(), len(union), StateCap)
	}
	states := make([]spec.State, 0, len(union))
	for s := range union {
		states = append(states, s)
	}
	sort.Slice(states, func(i, j int) bool { return states[i] < states[j] })

	c := &Compiled{
		src:      t,
		n:        n,
		states:   states,
		ops:      ops,
		stateIdx: make(map[spec.State]uint16, len(states)),
		opIdx:    opIdx,
		nextTab:  make([]uint16, len(states)*len(ops)),
		respTab:  make([]uint16, len(states)*len(ops)),
		readable: types.Readable(t),
	}
	for i, s := range states {
		c.stateIdx[s] = uint16(i)
	}
	// Responses are interned by first occurrence in row-major table
	// order — deterministic because the state list is sorted and the op
	// list is the fixed candidate order.
	respIdx := map[spec.Response]uint16{}
	for si, s := range states {
		for oi, op := range ops {
			ns, r, err := t.Apply(s, op)
			if err != nil {
				return nil, fmt.Errorf("compile %s: apply %s to %q: %w", t.Name(), op, s, err)
			}
			ni, ok := c.stateIdx[ns]
			if !ok {
				// Unreachable: the state set is a Reachable closure.
				return nil, fmt.Errorf("compile %s: successor %q of (%q, %s) escapes the reachable closure", t.Name(), ns, s, op)
			}
			ri, ok := respIdx[r]
			if !ok {
				ri = uint16(len(c.resps))
				respIdx[r] = ri
				c.resps = append(c.resps, r)
			}
			c.nextTab[si*len(ops)+oi] = ni
			c.respTab[si*len(ops)+oi] = ri
		}
	}
	seenInit := map[uint16]bool{}
	for _, q0 := range inits {
		i := c.stateIdx[q0] // present: Reachable includes its seed
		if !seenInit[i] {
			seenInit[i] = true
			c.inits = append(c.inits, i)
		}
	}
	sort.Slice(c.inits, func(i, j int) bool { return c.inits[i] < c.inits[j] })
	return c, nil
}

// Source returns the interpreted type the table was compiled from.
func (c *Compiled) Source() spec.Type { return c.src }

// N returns the process count the candidate alphabet was built for.
func (c *Compiled) N() int { return c.n }

// NumStates returns the number of states in the table.
func (c *Compiled) NumStates() int { return len(c.states) }

// NumOps returns the number of operations in the table.
func (c *Compiled) NumOps() int { return len(c.ops) }

// NumResps returns the number of distinct responses in the table.
func (c *Compiled) NumResps() int { return len(c.resps) }

// StateIndex resolves a state string to its table index.
func (c *Compiled) StateIndex(s spec.State) (uint16, bool) {
	i, ok := c.stateIdx[s]
	return i, ok
}

// OpIndex resolves an operation string to its table index.
func (c *Compiled) OpIndex(op spec.Op) (uint16, bool) {
	i, ok := c.opIdx[op]
	return i, ok
}

// StateAt returns the interned state string for a table index.
func (c *Compiled) StateAt(i uint16) spec.State { return c.states[i] }

// OpAt returns the interned operation string for a table index.
func (c *Compiled) OpAt(i uint16) spec.Op { return c.ops[i] }

// RespAt returns the interned response string for a table index.
func (c *Compiled) RespAt(i uint16) spec.Response { return c.resps[i] }

// Next returns the successor state index of applying op oi in state si.
func (c *Compiled) Next(si, oi uint16) uint16 {
	return c.nextTab[int(si)*len(c.ops)+int(oi)]
}

// Apply is the compiled transition function: a pair of flat array
// lookups, no strings, no allocation.
func (c *Compiled) Apply(si, oi uint16) (next, resp uint16) {
	k := int(si)*len(c.ops) + int(oi)
	return c.nextTab[k], c.respTab[k]
}

// InitIndices returns the (sorted, deduplicated) table indices of the
// source type's initial states. Callers must not mutate the slice.
func (c *Compiled) InitIndices() []uint16 { return c.inits }

// Type returns a spec.Type view of the table: Apply resolves both
// arguments through the index maps and answers from the flat arrays,
// falling back to the source type for states or operations outside the
// table (protocol code occasionally applies richer-argument ops than
// the candidate alphabet). Name, InitialStates and Ops delegate to the
// source, so every rendered artifact is unchanged.
//
// The view preserves the source's spec.OpsForN implementation and its
// types.NonReadable marker, so types.Readable reports the same answer
// for the view as for the source. Note that types.Readable special-cases
// some concrete types (Queue, Stack, Custom); the view freezes the
// answer observed at compile time.
func (c *Compiled) Type() spec.Type {
	_, hasN := c.src.(spec.OpsForN)
	switch {
	case c.readable && !hasN:
		return wrapped{c}
	case c.readable && hasN:
		return wrappedOps{wrapped{c}}
	case !c.readable && !hasN:
		return wrappedNR{wrapped{c}}
	default:
		return wrappedOpsNR{wrappedOps{wrapped{c}}}
	}
}

// wrapped is the spec.Type view over a compiled table.
type wrapped struct{ c *Compiled }

// Name implements spec.Type by delegating to the source type.
func (w wrapped) Name() string { return w.c.src.Name() }

// InitialStates implements spec.Type by delegating to the source type.
func (w wrapped) InitialStates() []spec.State { return w.c.src.InitialStates() }

// Ops implements spec.Type by delegating to the source type.
func (w wrapped) Ops() []spec.Op { return w.c.src.Ops() }

// Apply implements spec.Type via the flat tables, falling back to the
// source for inputs outside the compiled universe.
func (w wrapped) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	si, ok := w.c.stateIdx[s]
	if !ok {
		return w.c.src.Apply(s, op)
	}
	oi, ok := w.c.opIdx[op]
	if !ok {
		return w.c.src.Apply(s, op)
	}
	k := int(si)*len(w.c.ops) + int(oi)
	return w.c.states[w.c.nextTab[k]], w.c.resps[w.c.respTab[k]], nil
}

// wrappedOps adds the source's OpsForN implementation to the view.
type wrappedOps struct{ wrapped }

// OpsFor implements spec.OpsForN by delegating to the source type.
func (w wrappedOps) OpsFor(n int) []spec.Op { return w.c.src.(spec.OpsForN).OpsFor(n) }

// wrappedNR marks the view of a non-readable source type.
type wrappedNR struct{ wrapped }

// NonReadable implements the types.NonReadable marker.
func (wrappedNR) NonReadable() {}

// wrappedOpsNR combines OpsForN delegation with the NonReadable marker.
type wrappedOpsNR struct{ wrappedOps }

// NonReadable implements the types.NonReadable marker.
func (wrappedOpsNR) NonReadable() {}
