package spec

import (
	"fmt"
	"sync"
)

// Object is an atomic shared object: an instance of a Type holding a
// current state. Its methods are linearizable (each method call is a
// single atomic step); the simulator in package sim serializes access, and
// the mutex additionally makes Object safe for direct concurrent use in
// examples and benchmarks.
type Object struct {
	mu    sync.Mutex
	typ   Type
	state State

	ops int // number of update operations applied
}

// NewObject creates an object of type t initialized to state q0.
func NewObject(t Type, q0 State) *Object {
	return &Object{typ: t, state: q0}
}

// Type returns the object's sequential specification.
func (o *Object) Type() Type { return o.typ }

// Apply atomically applies an update operation and returns its response.
func (o *Object) Apply(op Op) (Response, error) {
	_, _, r, err := o.ApplyStates(op)
	return r, err
}

// ApplyStates atomically applies an update operation and returns the
// state transition it performed alongside the response. Incremental
// digest maintenance (sim.Memory) needs the before/after pair from the
// same atomic step; a Read/Apply/Read sequence would admit interleavings
// when the object is used concurrently outside the simulator.
func (o *Object) ApplyStates(op Op) (prev, next State, r Response, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()

	ns, r, err := o.typ.Apply(o.state, op)
	if err != nil {
		return "", "", "", fmt.Errorf("object %s: %w", o.typ.Name(), err)
	}
	prev, next = o.state, ns
	o.state = ns
	o.ops++
	return prev, next, r, nil
}

// Read atomically returns the object's entire current state without
// changing it (the paper's Read operation on readable types).
func (o *Object) Read() State {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.state
}

// UpdateCount returns the number of update operations applied so far.
// It is used by tests and by the execution tracer.
func (o *Object) UpdateCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ops
}

// Reset restores the object to state q0 and clears the update counter.
func (o *Object) Reset(q0 State) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.state = q0
	o.ops = 0
}
