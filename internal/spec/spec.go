// Package spec provides a framework for deterministic sequential
// specifications of shared object types, as used throughout the paper
// "When Is Recoverable Consensus Harder Than Consensus?" (PODC 2022).
//
// A type is defined by its set of states, its update operations, and a
// deterministic transition function Apply that maps a (state, operation)
// pair to a (new state, response) pair. Types in this package are
// "readable" in the paper's sense: an object of any type can additionally
// be read, returning its entire current state without changing it.
//
// States, operations and responses are represented as canonical strings so
// that they are comparable, hashable and printable. Each concrete type
// (see package types) documents its encoding.
package spec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// State is the canonical, comparable encoding of an object state.
type State string

// Op identifies an update operation together with its arguments,
// for example "write(3)" or "opA".
type Op string

// Response is the canonical encoding of an operation's response.
type Response string

// Ack is the response of operations that return no information.
const Ack Response = "ack"

// ErrBadState is wrapped by Apply implementations when given a state that
// is not a valid encoding for the type.
var ErrBadState = errors.New("invalid state encoding")

// ErrBadOp is wrapped by Apply implementations when given an operation the
// type does not support.
var ErrBadOp = errors.New("unsupported operation")

// Type is a deterministic sequential specification of a shared object type.
//
// Implementations must be deterministic: Apply must return the same
// (state, response) for the same input every time, with no hidden state.
type Type interface {
	// Name returns a short human-readable identifier, e.g. "stack(cap=4)".
	Name() string

	// InitialStates returns the candidate initial states considered when
	// searching for n-recording / n-discerning witnesses. It must be
	// non-empty, and for exhaustive impossibility arguments it should
	// cover all states that are not equivalent (up to symmetry) to a
	// listed one.
	InitialStates() []State

	// Ops returns the update operations considered when searching for
	// witnesses. Operations here carry concrete arguments. Types whose
	// natural operation alphabet depends on the number of processes
	// should also implement OpsForN.
	Ops() []Op

	// Apply applies op to an object in state s, returning the new state
	// and the operation's response. It returns an error wrapping
	// ErrBadState or ErrBadOp for invalid inputs.
	Apply(s State, op Op) (State, Response, error)
}

// OpsForN is implemented by types whose useful operation alphabet grows
// with the number of processes n (for example, registers need n distinct
// written values to be maximally discerning).
type OpsForN interface {
	// OpsFor returns the candidate operations for witness searches among
	// n processes.
	OpsFor(n int) []Op
}

// CandidateOps returns the candidate operation alphabet of t for n
// processes: t.OpsFor(n) when available, t.Ops() otherwise.
func CandidateOps(t Type, n int) []Op {
	if g, ok := t.(OpsForN); ok {
		return g.OpsFor(n)
	}
	return t.Ops()
}

// MustApply applies op to s and panics on error. It is intended for test
// code and for algorithm bodies where the operation set is fixed by
// construction and an error indicates a programming mistake.
func MustApply(t Type, s State, op Op) (State, Response) {
	ns, r, err := t.Apply(s, op)
	if err != nil {
		panic(fmt.Sprintf("spec: apply %s to %q of %s: %v", op, s, t.Name(), err))
	}
	return ns, r
}

// Reachable returns all states reachable from q0 by applying any sequence
// of operations from ops (operations may repeat). The result includes q0
// and is sorted for determinism. limit bounds the total number of states
// (including q0); Reachable returns an error only when the reachable set
// has MORE than limit states, which signals an unexpectedly infinite or
// huge state space — a state space of exactly limit states is fine.
func Reachable(t Type, q0 State, ops []Op, limit int) ([]State, error) {
	seen := map[State]bool{q0: true}
	frontier := []State{q0}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		for _, op := range ops {
			ns, _, err := t.Apply(next, op)
			if err != nil {
				return nil, fmt.Errorf("reachable from %q: %w", q0, err)
			}
			if !seen[ns] {
				seen[ns] = true
				if len(seen) > limit {
					return nil, fmt.Errorf("reachable: state space exceeds limit %d", limit)
				}
				frontier = append(frontier, ns)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Commute reports whether op1 and op2 commute from state q0: the sequences
// (op1, op2) and (op2, op1) leave the object in the same state
// (Herlihy's definition, used in Appendix D and H of the paper).
func Commute(t Type, q0 State, op1, op2 Op) (bool, error) {
	s1, _, err := t.Apply(q0, op1)
	if err != nil {
		return false, err
	}
	s12, _, err := t.Apply(s1, op2)
	if err != nil {
		return false, err
	}
	s2, _, err := t.Apply(q0, op2)
	if err != nil {
		return false, err
	}
	s21, _, err := t.Apply(s2, op1)
	if err != nil {
		return false, err
	}
	return s12 == s21, nil
}

// Overwrites reports whether op1 overwrites op2 from q0: the sequences
// (op1) and (op2, op1) take the object from q0 to the same state.
func Overwrites(t Type, q0 State, op1, op2 Op) (bool, error) {
	s1, _, err := t.Apply(q0, op1)
	if err != nil {
		return false, err
	}
	s2, _, err := t.Apply(q0, op2)
	if err != nil {
		return false, err
	}
	s21, _, err := t.Apply(s2, op1)
	if err != nil {
		return false, err
	}
	return s1 == s21, nil
}

// FormatOp builds an operation string "name(arg1,arg2,...)".
func FormatOp(name string, args ...string) Op {
	if len(args) == 0 {
		return Op(name)
	}
	return Op(name + "(" + strings.Join(args, ",") + ")")
}

// ParseOp splits an operation into its name and argument list. Operations
// without parentheses have no arguments. Arguments are split on top-level
// commas only, so nested encodings like "cas(pair(0,1),x)" parse as the
// two arguments "pair(0,1)" and "x". Malformed encodings — a missing
// closing parenthesis or unbalanced parentheses inside the argument
// list — yield an error wrapping ErrBadOp.
func ParseOp(op Op) (name string, args []string, err error) {
	s := string(op)
	i := strings.IndexByte(s, '(')
	if i < 0 {
		return s, nil, nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("%w: %q", ErrBadOp, op)
	}
	name = s[:i]
	inner := s[i+1 : len(s)-1]
	if inner == "" {
		return name, nil, nil
	}
	depth, start := 0, 0
	for j := 0; j < len(inner); j++ {
		switch inner[j] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return "", nil, fmt.Errorf("%w: unbalanced parentheses in %q", ErrBadOp, op)
			}
		case ',':
			if depth == 0 {
				args = append(args, inner[start:j])
				start = j + 1
			}
		}
	}
	if depth != 0 {
		return "", nil, fmt.Errorf("%w: unbalanced parentheses in %q", ErrBadOp, op)
	}
	return name, append(args, inner[start:]), nil
}
