package spec

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// toggle is a minimal two-state test type: "flip" swaps between "0" and
// "1", responding with the pre-flip state.
type toggle struct{}

func (toggle) Name() string           { return "toggle" }
func (toggle) InitialStates() []State { return []State{"0", "1"} }
func (toggle) Ops() []Op              { return []Op{"flip"} }
func (toggle) Apply(s State, op Op) (State, Response, error) {
	if op != "flip" {
		return "", "", fmt.Errorf("%w: %q", ErrBadOp, op)
	}
	switch s {
	case "0":
		return "1", "0", nil
	case "1":
		return "0", "1", nil
	default:
		return "", "", fmt.Errorf("%w: %q", ErrBadState, s)
	}
}

func TestMustApply(t *testing.T) {
	ns, r := MustApply(toggle{}, "0", "flip")
	if ns != "1" || r != "0" {
		t.Fatalf("MustApply = (%q, %q), want (1, 0)", ns, r)
	}
}

func TestMustApplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustApply did not panic on a bad op")
		}
	}()
	MustApply(toggle{}, "0", "bogus")
}

func TestApplyErrors(t *testing.T) {
	if _, _, err := (toggle{}).Apply("0", "bogus"); !errors.Is(err, ErrBadOp) {
		t.Errorf("bad op error = %v, want ErrBadOp", err)
	}
	if _, _, err := (toggle{}).Apply("zzz", "flip"); !errors.Is(err, ErrBadState) {
		t.Errorf("bad state error = %v, want ErrBadState", err)
	}
}

func TestReachable(t *testing.T) {
	states, err := Reachable(toggle{}, "0", []Op{"flip"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 || states[0] != "0" || states[1] != "1" {
		t.Fatalf("Reachable = %v, want [0 1]", states)
	}
}

func TestReachableLimit(t *testing.T) {
	if _, err := Reachable(toggle{}, "0", []Op{"flip"}, 1); err == nil {
		t.Fatal("Reachable did not report exceeding the state limit")
	}
}

// TestReachableExactLimit pins the limit semantics: a reachable set of
// exactly `limit` states is within bounds, not an overflow. toggle reaches
// exactly 2 states, so limit=2 must succeed while limit=1 fails above.
func TestReachableExactLimit(t *testing.T) {
	states, err := Reachable(toggle{}, "0", []Op{"flip"}, 2)
	if err != nil {
		t.Fatalf("Reachable with limit exactly equal to the state-space size failed: %v", err)
	}
	if len(states) != 2 {
		t.Fatalf("Reachable = %v, want exactly 2 states", states)
	}
}

func TestCommuteAndOverwrite(t *testing.T) {
	// flip then flip returns to the start in both orders: it commutes
	// with itself trivially.
	ok, err := Commute(toggle{}, "0", "flip", "flip")
	if err != nil || !ok {
		t.Fatalf("Commute(flip, flip) = %v, %v; want true", ok, err)
	}
	// flip does not overwrite flip: flip != flip∘flip.
	ok, err = Overwrites(toggle{}, "0", "flip", "flip")
	if err != nil || ok {
		t.Fatalf("Overwrites(flip, flip) = %v, %v; want false", ok, err)
	}
}

func TestObjectApplyAndRead(t *testing.T) {
	o := NewObject(toggle{}, "0")
	if got := o.Read(); got != "0" {
		t.Fatalf("initial Read = %q, want 0", got)
	}
	r, err := o.Apply("flip")
	if err != nil || r != "0" {
		t.Fatalf("Apply = (%q, %v), want (0, nil)", r, err)
	}
	if got := o.Read(); got != "1" {
		t.Fatalf("Read after flip = %q, want 1", got)
	}
	if got := o.UpdateCount(); got != 1 {
		t.Fatalf("UpdateCount = %d, want 1", got)
	}
	o.Reset("0")
	if o.Read() != "0" || o.UpdateCount() != 0 {
		t.Fatal("Reset did not restore the initial state")
	}
}

func TestObjectApplyError(t *testing.T) {
	o := NewObject(toggle{}, "0")
	if _, err := o.Apply("bogus"); !errors.Is(err, ErrBadOp) {
		t.Fatalf("Apply(bogus) error = %v, want ErrBadOp", err)
	}
	if got := o.Read(); got != "0" {
		t.Fatalf("failed Apply changed state to %q", got)
	}
}

func TestFormatParseOpRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"deq", nil},
		{"write", []string{"7"}},
		{"cas", []string{"_", "42"}},
	}
	for _, c := range cases {
		op := FormatOp(c.name, c.args...)
		name, args, err := ParseOp(op)
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op, err)
		}
		if name != c.name || len(args) != len(c.args) {
			t.Fatalf("round trip of %q: got (%q, %v)", op, name, args)
		}
		for i := range args {
			if args[i] != c.args[i] {
				t.Fatalf("round trip of %q: arg %d = %q, want %q", op, i, args[i], c.args[i])
			}
		}
	}
}

func TestParseOpMalformed(t *testing.T) {
	if _, _, err := ParseOp("write(3"); !errors.Is(err, ErrBadOp) {
		t.Fatalf("ParseOp(\"write(3\") error = %v, want ErrBadOp", err)
	}
}

func TestParseOpNested(t *testing.T) {
	cases := []struct {
		op   Op
		name string
		args []string
	}{
		{"cas(pair(0,1),x)", "cas", []string{"pair(0,1)", "x"}},
		{"f(g(a,b),h(c),d)", "f", []string{"g(a,b)", "h(c)", "d"}},
		{"f(g(h(1,2),3))", "f", []string{"g(h(1,2),3)"}},
		{"w(,)", "w", []string{"", ""}},
		{"w(a,,b)", "w", []string{"a", "", "b"}},
	}
	for _, c := range cases {
		name, args, err := ParseOp(c.op)
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", c.op, err)
		}
		if name != c.name || len(args) != len(c.args) {
			t.Fatalf("ParseOp(%q) = (%q, %v), want (%q, %v)", c.op, name, args, c.name, c.args)
		}
		for i := range args {
			if args[i] != c.args[i] {
				t.Fatalf("ParseOp(%q) arg %d = %q, want %q", c.op, i, args[i], c.args[i])
			}
		}
	}
}

func TestParseOpUnbalanced(t *testing.T) {
	for _, op := range []Op{"f(g(a)", "f(a))x(", "f((a)", "f(a)))", "f(g(a,b)"} {
		if _, _, err := ParseOp(op); !errors.Is(err, ErrBadOp) {
			t.Errorf("ParseOp(%q) error = %v, want ErrBadOp", op, err)
		}
	}
}

func TestParseOpEmptyArgs(t *testing.T) {
	name, args, err := ParseOp("deq()")
	if err != nil || name != "deq" || len(args) != 0 {
		t.Fatalf("ParseOp(\"deq()\") = (%q, %v, %v)", name, args, err)
	}
}

// TestFormatOpParseOpProperty checks the round-trip property on random
// argument-free names (names drawn from a safe alphabet).
func TestFormatOpParseOpProperty(t *testing.T) {
	prop := func(raw uint32, nargs uint8) bool {
		name := fmt.Sprintf("op%d", raw)
		n := int(nargs % 4)
		args := make([]string, 0, n)
		for i := 0; i < n; i++ {
			args = append(args, fmt.Sprintf("a%d", i))
		}
		op := FormatOp(name, args...)
		gname, gargs, err := ParseOp(op)
		if err != nil || gname != name || len(gargs) != len(args) {
			return false
		}
		for i := range args {
			if gargs[i] != args[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateOps(t *testing.T) {
	if got := CandidateOps(toggle{}, 5); len(got) != 1 || got[0] != "flip" {
		t.Fatalf("CandidateOps(toggle) = %v", got)
	}
}
