// Package checker implements decision procedures for the two structural
// properties at the heart of the paper "When Is Recoverable Consensus
// Harder Than Consensus?" (PODC 2022):
//
//   - the n-discerning property (Definition 2, due to Ruppert), which
//     characterizes the deterministic readable types that solve standard
//     n-process wait-free consensus (Theorem 3); and
//   - the n-recording property (Definition 4), which this paper
//     introduces: n-recording is sufficient (Theorem 8) and
//     (n-1)-recording necessary (Theorem 14) for solving n-process
//     recoverable consensus with independent crashes.
//
// Both properties quantify over sequences of *distinct* processes, so the
// checker collapses processes that are assigned the same operation and on
// the same team into counts, exploring the (state × remaining-counts)
// graph with memoization. This makes verification exact and fast even for
// exhaustive witness searches (all initial states × all team partitions ×
// all operation assignments), which is how the "not k-recording" /
// "not k-discerning" claims of Propositions 19 and 21 are reproduced.
package checker

import (
	"fmt"
	"sort"
	"strings"

	"rcons/internal/spec"
)

// TeamA and TeamB identify the two teams in a witness.
const (
	TeamA = 0
	TeamB = 1
)

// Witness is a candidate assignment for Definition 2 / Definition 4: an
// initial state, a partition of n processes into two non-empty teams, and
// an update operation per process.
type Witness struct {
	// Q0 is the initial object state.
	Q0 spec.State
	// Teams assigns each process (by index) to TeamA or TeamB.
	Teams []int
	// Ops assigns each process its update operation.
	Ops []spec.Op
}

// N returns the number of processes in the witness.
func (w Witness) N() int { return len(w.Teams) }

// TeamSize returns the number of processes on team x.
func (w Witness) TeamSize(x int) int {
	n := 0
	for _, t := range w.Teams {
		if t == x {
			n++
		}
	}
	return n
}

// Members returns the (sorted) process indices on team x.
func (w Witness) Members(x int) []int {
	var out []int
	for i, t := range w.Teams {
		if t == x {
			out = append(out, i)
		}
	}
	return out
}

// Validate reports whether the witness is structurally well-formed.
func (w Witness) Validate() error {
	if len(w.Teams) != len(w.Ops) {
		return fmt.Errorf("checker: %d team labels but %d ops", len(w.Teams), len(w.Ops))
	}
	if len(w.Teams) < 2 {
		return fmt.Errorf("checker: witness needs at least 2 processes, got %d", len(w.Teams))
	}
	for i, t := range w.Teams {
		if t != TeamA && t != TeamB {
			return fmt.Errorf("checker: process %d has invalid team %d", i, t)
		}
	}
	if w.TeamSize(TeamA) == 0 || w.TeamSize(TeamB) == 0 {
		return fmt.Errorf("checker: both teams must be non-empty (|A|=%d, |B|=%d)",
			w.TeamSize(TeamA), w.TeamSize(TeamB))
	}
	return nil
}

// String renders the witness compactly, e.g.
// "q0=_,0,0 A={0:opA 1:opA} B={2:opB}".
func (w Witness) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "q0=%s", w.Q0)
	for _, team := range []struct {
		id   int
		name string
	}{{TeamA, "A"}, {TeamB, "B"}} {
		fmt.Fprintf(&b, " %s={", team.name)
		first := true
		for _, i := range w.Members(team.id) {
			if !first {
				b.WriteByte(' ')
			}
			first = false
			fmt.Fprintf(&b, "%d:%s", i, w.Ops[i])
		}
		b.WriteByte('}')
	}
	return b.String()
}

// alphabet deduplicates the operations appearing in a witness, returning
// the distinct ops (sorted, for determinism) and, per team, the count of
// processes assigned each op.
func (w Witness) alphabet() (ops []spec.Op, counts [2][]int) {
	set := map[spec.Op]bool{}
	for _, op := range w.Ops {
		set[op] = true
	}
	for op := range set {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	idx := make(map[spec.Op]int, len(ops))
	for k, op := range ops {
		idx[op] = k
	}
	counts[0] = make([]int, len(ops))
	counts[1] = make([]int, len(ops))
	for i, op := range w.Ops {
		counts[w.Teams[i]][idx[op]]++
	}
	return ops, counts
}

// countsKey encodes a remaining-counts vector for memoization.
func countsKey(s spec.State, rem []int, extra string) string {
	var b strings.Builder
	b.WriteString(string(s))
	b.WriteByte('|')
	for _, c := range rem {
		fmt.Fprintf(&b, "%d,", c)
	}
	b.WriteString(extra)
	return b.String()
}

// qExplorer computes Q_X sets by DFS over (state, remaining counts).
type qExplorer struct {
	t    spec.Type
	ops  []spec.Op
	seen map[string]bool
	out  map[spec.State]bool
	err  error
}

func (e *qExplorer) dfs(s spec.State, rem []int) {
	if e.err != nil {
		return
	}
	key := countsKey(s, rem, "")
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	e.out[s] = true
	for k := range rem {
		if rem[k] == 0 {
			continue
		}
		ns, _, err := e.t.Apply(s, e.ops[k])
		if err != nil {
			e.err = fmt.Errorf("checker: Q exploration: %w", err)
			return
		}
		rem[k]--
		e.dfs(ns, rem)
		rem[k]++
	}
}

// QSet computes Q_X(q0, op_1, …, op_n) of Definition 4 for the witness's
// team x: the set of states reachable from w.Q0 by applying the
// operations of a sequence of distinct processes whose first process is
// on team x. The initial state itself is a member only if some such
// sequence returns to it.
func QSet(t spec.Type, w Witness, x int) (map[spec.State]bool, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	ops, counts := w.alphabet()
	merged := make([]int, len(ops))
	for k := range ops {
		merged[k] = counts[0][k] + counts[1][k]
	}
	e := &qExplorer{t: t, ops: ops, seen: map[string]bool{}, out: map[spec.State]bool{}}
	for k := range ops {
		if counts[x][k] == 0 {
			continue
		}
		ns, _, err := t.Apply(w.Q0, ops[k])
		if err != nil {
			return nil, fmt.Errorf("checker: Q first step: %w", err)
		}
		merged[k]--
		e.dfs(ns, merged)
		merged[k]++
		if e.err != nil {
			return nil, e.err
		}
	}
	return e.out, nil
}

// Result is the outcome of a property verification: OK, or a
// human-readable reason the property fails.
type Result struct {
	OK     bool
	Reason string
}

func fail(format string, args ...any) Result {
	return Result{Reason: fmt.Sprintf(format, args...)}
}

// VerifyRecording checks whether the witness satisfies all three
// conditions of Definition 4 (the n-recording property) for type t.
func VerifyRecording(t spec.Type, w Witness) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	qa, err := QSet(t, w, TeamA)
	if err != nil {
		return Result{}, err
	}
	qb, err := QSet(t, w, TeamB)
	if err != nil {
		return Result{}, err
	}
	for s := range qa {
		if qb[s] {
			return fail("condition 1: state %q is in both Q_A and Q_B", s), nil
		}
	}
	if qa[w.Q0] && w.TeamSize(TeamB) != 1 {
		return fail("condition 2: q0 ∈ Q_A but |B| = %d ≠ 1", w.TeamSize(TeamB)), nil
	}
	if qb[w.Q0] && w.TeamSize(TeamA) != 1 {
		return fail("condition 3: q0 ∈ Q_B but |A| = %d ≠ 1", w.TeamSize(TeamA)), nil
	}
	return Result{OK: true}, nil
}

// RPair is an element of the R_{X,j} sets of Definition 2: the response r
// that process j's operation returned in some admissible sequence and the
// state q the object was left in at the end of that sequence.
type RPair struct {
	Resp  spec.Response
	State spec.State
}

// rExplorer computes R_{X,j} sets by DFS over
// (state, remaining counts, j-used, j-response).
type rExplorer struct {
	t    spec.Type
	ops  []spec.Op
	opJ  spec.Op
	seen map[string]bool
	out  map[RPair]bool
	err  error
}

func (e *rExplorer) dfs(s spec.State, rem []int, jUsed bool, jResp spec.Response) {
	if e.err != nil {
		return
	}
	extra := "!"
	if jUsed {
		extra = "+" + string(jResp)
	}
	key := countsKey(s, rem, extra)
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	if jUsed {
		e.out[RPair{Resp: jResp, State: s}] = true
	}
	for k := range rem {
		if rem[k] == 0 {
			continue
		}
		ns, _, err := e.t.Apply(s, e.ops[k])
		if err != nil {
			e.err = fmt.Errorf("checker: R exploration: %w", err)
			return
		}
		rem[k]--
		e.dfs(ns, rem, jUsed, jResp)
		rem[k]++
	}
	if !jUsed {
		ns, r, err := e.t.Apply(s, e.opJ)
		if err != nil {
			e.err = fmt.Errorf("checker: R exploration: %w", err)
			return
		}
		e.dfs(ns, rem, true, r)
	}
}

// RSet computes R_{X,j}(q0, op_1, …, op_n) of Definition 2 for the
// witness's team x and process j: all (response, final state) pairs that
// op_j can produce in a sequence of distinct processes including j whose
// first process is on team x.
func RSet(t spec.Type, w Witness, x, j int) (map[RPair]bool, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if j < 0 || j >= w.N() {
		return nil, fmt.Errorf("checker: process index %d out of range", j)
	}
	// Build the alphabet over all processes except j; j is tracked
	// individually because its response matters.
	others := Witness{Q0: w.Q0}
	for i := range w.Teams {
		if i == j {
			continue
		}
		others.Teams = append(others.Teams, w.Teams[i])
		others.Ops = append(others.Ops, w.Ops[i])
	}
	set := map[spec.Op]bool{}
	for _, op := range others.Ops {
		set[op] = true
	}
	var ops []spec.Op
	for op := range set {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, k int) bool { return ops[i] < ops[k] })
	idx := make(map[spec.Op]int, len(ops))
	for k, op := range ops {
		idx[op] = k
	}
	countsX := make([]int, len(ops))
	merged := make([]int, len(ops))
	for i, op := range others.Ops {
		merged[idx[op]]++
		if others.Teams[i] == x {
			countsX[idx[op]]++
		}
	}

	e := &rExplorer{t: t, ops: ops, opJ: w.Ops[j], seen: map[string]bool{}, out: map[RPair]bool{}}
	// Case 1: process j goes first (only admissible if j is on team x).
	if w.Teams[j] == x {
		ns, r, err := t.Apply(w.Q0, w.Ops[j])
		if err != nil {
			return nil, fmt.Errorf("checker: R first step: %w", err)
		}
		e.dfs(ns, merged, true, r)
	}
	// Case 2: another process on team x goes first.
	for k := range ops {
		if countsX[k] == 0 {
			continue
		}
		ns, _, err := t.Apply(w.Q0, ops[k])
		if err != nil {
			return nil, fmt.Errorf("checker: R first step: %w", err)
		}
		merged[k]--
		e.dfs(ns, merged, false, "")
		merged[k]++
	}
	if e.err != nil {
		return nil, e.err
	}
	return e.out, nil
}

// VerifyDiscerning checks whether the witness satisfies Definition 2 (the
// n-discerning property) for type t: R_{A,j} ∩ R_{B,j} = ∅ for every j.
func VerifyDiscerning(t spec.Type, w Witness) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	for j := 0; j < w.N(); j++ {
		ra, err := RSet(t, w, TeamA, j)
		if err != nil {
			return Result{}, err
		}
		rb, err := RSet(t, w, TeamB, j)
		if err != nil {
			return Result{}, err
		}
		for p := range ra {
			if rb[p] {
				return fail("R_{A,%d} ∩ R_{B,%d} contains (resp=%q, state=%q)",
					j, j, p.Resp, p.State), nil
			}
		}
	}
	return Result{OK: true}, nil
}
