package checker

import (
	"context"
	"testing"

	"rcons/internal/compile"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// dualVerify returns a VerifyFunc that runs every candidate through
// both the interpreted verifier and the compiled one and fails the test
// on any OK disagreement. Reasons are not compared: fail messages
// legitimately differ in wording between the two paths.
func dualVerify(t *testing.T, typ spec.Type, c *compile.Compiled, recording bool) VerifyFunc {
	t.Helper()
	interp := VerifyRecording
	if !recording {
		interp = VerifyDiscerning
	}
	comp := CompiledVerify(c, recording)
	return func(_ spec.Type, w Witness) (Result, error) {
		ri, erri := interp(typ, w)
		rc, errc := comp(typ, w)
		if (erri == nil) != (errc == nil) {
			t.Fatalf("%s %v: interpreted err %v, compiled err %v", typ.Name(), w, erri, errc)
		}
		if erri == nil && ri.OK != rc.OK {
			t.Fatalf("%s %v (recording=%v): interpreted OK=%v, compiled OK=%v (%q vs %q)",
				typ.Name(), w, recording, ri.OK, rc.OK, ri.Reason, rc.Reason)
		}
		return rc, errc
	}
}

// TestCompiledVerifierMatchesInterpreted sweeps the full shard
// enumeration for every compilable zoo type at n = 2..3 and checks the
// compiled and interpreted verifiers agree candidate by candidate, for
// both properties, including the returned witnesses.
func TestCompiledVerifierMatchesInterpreted(t *testing.T) {
	maxN := 3
	if testing.Short() {
		maxN = 2
	}
	ctx := context.Background()
	for _, typ := range types.Zoo() {
		for n := 2; n <= maxN; n++ {
			c, err := compile.Compile(typ, n)
			if err != nil {
				continue
			}
			shards, err := Shards(typ, n, nil)
			if err != nil {
				t.Fatalf("%s n=%d: Shards: %v", typ.Name(), n, err)
			}
			for _, recording := range []bool{true, false} {
				verify := dualVerify(t, typ, c, recording)
				for _, s := range shards {
					if _, err := SearchShard(ctx, typ, s, verify); err != nil {
						t.Fatalf("%s n=%d: SearchShard: %v", typ.Name(), n, err)
					}
				}
			}
		}
	}
}

// TestCompiledVerifierFallback drives the compiled verifier with a
// witness whose operation is outside the compiled alphabet; it must
// fall back to the interpreted path and agree with it rather than
// erroring out.
func TestCompiledVerifierFallback(t *testing.T) {
	cas := types.NewCAS()
	c, err := compile.Compile(cas, 2)
	if err != nil {
		t.Fatal(err)
	}
	// "cas(⊥,zz)" is a valid CAS op but not in CandidateOps(cas, 2),
	// so it is absent from the compiled table.
	w := Witness{
		Q0:    spec.State(types.Bottom),
		Teams: []int{TeamA, TeamB},
		Ops:   []spec.Op{spec.FormatOp("cas", types.Bottom, "zz"), spec.FormatOp("cas", types.Bottom, "v0")},
	}
	ri, erri := VerifyRecording(cas, w)
	rc, errc := CompiledRecording(c)(cas, w)
	if (erri == nil) != (errc == nil) || (erri == nil && ri.OK != rc.OK) {
		t.Fatalf("fallback diverged: interpreted (%+v, %v), compiled (%+v, %v)", ri, erri, rc, errc)
	}
}
