package checker

import (
	"fmt"

	"rcons/internal/spec"
)

// This file provides brute-force reference implementations of the Q_X
// and R_{X,j} sets, enumerating every permutation of every subset of
// distinct processes directly from Definitions 2 and 4 — no counts
// abstraction, no memoization. They are exponentially slower than QSet
// and RSet but obviously correct, and the property tests cross-validate
// the fast implementations against them on randomly generated types
// (see brute_test.go). They also serve as executable statements of the
// definitions for readers of the code.

// QSetBrute computes Q_X by enumerating all sequences of distinct
// processes whose first process is on team x, applying Definitions 4's
// construction literally.
func QSetBrute(t spec.Type, w Witness, x int) (map[spec.State]bool, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	out := map[spec.State]bool{}
	n := w.N()
	used := make([]bool, n)
	var rec func(s spec.State, depth int) error
	rec = func(s spec.State, depth int) error {
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if depth == 0 && w.Teams[i] != x {
				continue // the first process must be on team x
			}
			ns, _, err := t.Apply(s, w.Ops[i])
			if err != nil {
				return fmt.Errorf("checker: brute Q: %w", err)
			}
			out[ns] = true
			used[i] = true
			if err := rec(ns, depth+1); err != nil {
				used[i] = false
				return err
			}
			used[i] = false
		}
		return nil
	}
	if err := rec(w.Q0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// RSetBrute computes R_{X,j} by enumerating all sequences of distinct
// processes that include j and start with a process on team x, recording
// the pair (response of op_j, final state) for every such sequence.
func RSetBrute(t spec.Type, w Witness, x, j int) (map[RPair]bool, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if j < 0 || j >= w.N() {
		return nil, fmt.Errorf("checker: process index %d out of range", j)
	}
	out := map[RPair]bool{}
	n := w.N()
	used := make([]bool, n)
	var rec func(s spec.State, depth int, jResp spec.Response, jUsed bool) error
	rec = func(s spec.State, depth int, jResp spec.Response, jUsed bool) error {
		if jUsed {
			out[RPair{Resp: jResp, State: s}] = true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if depth == 0 && w.Teams[i] != x {
				continue
			}
			ns, r, err := t.Apply(s, w.Ops[i])
			if err != nil {
				return fmt.Errorf("checker: brute R: %w", err)
			}
			nResp, nUsed := jResp, jUsed
			if i == j {
				nResp, nUsed = r, true
			}
			used[i] = true
			if err := rec(ns, depth+1, nResp, nUsed); err != nil {
				used[i] = false
				return err
			}
			used[i] = false
		}
		return nil
	}
	if err := rec(w.Q0, 0, "", false); err != nil {
		return nil, err
	}
	return out, nil
}

// VerifyRecordingBrute is VerifyRecording computed from the brute-force
// Q sets.
func VerifyRecordingBrute(t spec.Type, w Witness) (Result, error) {
	qa, err := QSetBrute(t, w, TeamA)
	if err != nil {
		return Result{}, err
	}
	qb, err := QSetBrute(t, w, TeamB)
	if err != nil {
		return Result{}, err
	}
	for s := range qa {
		if qb[s] {
			return fail("condition 1: state %q is in both Q_A and Q_B", s), nil
		}
	}
	if qa[w.Q0] && w.TeamSize(TeamB) != 1 {
		return fail("condition 2: q0 ∈ Q_A but |B| ≠ 1"), nil
	}
	if qb[w.Q0] && w.TeamSize(TeamA) != 1 {
		return fail("condition 3: q0 ∈ Q_B but |A| ≠ 1"), nil
	}
	return Result{OK: true}, nil
}
