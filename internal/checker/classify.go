package checker

import (
	"fmt"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// Unbounded is the upper-band marker meaning "at least the scan limit,
// possibly infinite" (printed as ∞ alongside AtLimit flags).
const Unbounded = 1 << 30

// Classification summarizes what the paper's results let us conclude
// about a type from its maximal discerning/recording levels (Figure 1):
//
//	readable types:   cons(T) = max discerning level          (Theorem 3)
//	                  rcons(T) ≥ max recording level          (Theorem 8)
//	all types:        rcons(T) ≤ max recording level + 1      (Theorem 14)
//	                  rcons(T) ≤ cons(T)                      (trivially)
//	readable types:   cons(T) − 2 ≤ rcons(T)                  (Corollary 17)
type Classification struct {
	// TypeName is the type's display name.
	TypeName string
	// Readable records whether Theorems 3/8 apply (see types.Readable).
	Readable bool
	// Discerning and Recording are the scanned maxima.
	Discerning MaxLevel
	Recording  MaxLevel
	// ConsLo/ConsHi bound cons(T); ConsHi = Unbounded means "≥ limit".
	ConsLo, ConsHi int
	// RconsLo/RconsHi bound rcons(T); RconsHi = Unbounded likewise.
	RconsLo, RconsHi int
}

// Classify scans type t up to the given process-count limit and derives
// the consensus and recoverable-consensus bands.
func Classify(t spec.Type, limit int, opts *SearchOptions) (Classification, error) {
	if limit < 2 {
		return Classification{}, fmt.Errorf("checker: classification limit must be ≥ 2, got %d", limit)
	}
	disc, err := MaxDiscerning(t, limit, opts)
	if err != nil {
		return Classification{}, fmt.Errorf("classify %s: %w", t.Name(), err)
	}
	rec, err := MaxRecording(t, limit, opts)
	if err != nil {
		return Classification{}, fmt.Errorf("classify %s: %w", t.Name(), err)
	}
	return Derive(t, disc, rec)
}

// Derive turns scanned discerning/recording maxima into the cons/rcons
// bands the paper's theorems imply. It is shared by the sequential
// Classify above and the concurrent scans in package engine, so both
// produce byte-identical classifications from the same levels.
func Derive(t spec.Type, disc, rec MaxLevel) (Classification, error) {
	c := Classification{
		TypeName:   t.Name(),
		Readable:   types.Readable(t),
		Discerning: disc,
		Recording:  rec,
	}

	// Consensus band. For readable deterministic types Theorem 3 makes
	// the discerning level exact; for non-readable types it is neither a
	// lower nor an upper bound, so we only report the trivial band.
	if c.Readable {
		c.ConsLo = disc.Max
		c.ConsHi = disc.Max
		if disc.AtLimit {
			c.ConsHi = Unbounded
		}
	} else {
		c.ConsLo = 1
		c.ConsHi = Unbounded
	}

	// Recoverable-consensus band.
	c.RconsLo = 1
	if c.Readable {
		// Theorem 8: an n-recording readable type solves n-process RC.
		c.RconsLo = max(1, rec.Max)
	}
	// Theorem 14 (holds for all deterministic types): solving n-process
	// RC for n ≥ 3 requires (n−1)-recording. Failing (rec.Max+1)-recording
	// therefore caps rcons at rec.Max+1 (and at 2 when even 2-recording
	// fails, since rcons = 3 would need 2-recording).
	c.RconsHi = max(rec.Max+1, 2)
	if rec.AtLimit {
		c.RconsHi = Unbounded
	}
	// rcons ≤ cons.
	if c.ConsHi < c.RconsHi {
		c.RconsHi = c.ConsHi
	}
	// Corollary 17 for readable types: rcons ≥ cons − 2.
	if c.Readable && c.ConsLo-2 > c.RconsLo {
		c.RconsLo = c.ConsLo - 2
	}
	if c.RconsLo > c.RconsHi {
		return Classification{}, fmt.Errorf(
			"classify %s: inconsistent bands rcons ∈ [%d, %d] — this contradicts the paper's theorems and indicates a checker bug",
			t.Name(), c.RconsLo, c.RconsHi)
	}
	return c, nil
}

// BandString renders a [lo, hi] band, e.g. "3", "2–3" or "≥5".
func BandString(lo, hi, limit int) string {
	if hi >= Unbounded {
		if lo >= limit {
			return fmt.Sprintf("≥%d", limit)
		}
		return fmt.Sprintf("≥%d", lo)
	}
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d–%d", lo, hi)
}

// ConsBand renders the consensus-number band of c.
func (c Classification) ConsBand() string {
	return BandString(c.ConsLo, c.ConsHi, c.Discerning.Limit)
}

// RconsBand renders the RC-number band of c.
func (c Classification) RconsBand() string {
	return BandString(c.RconsLo, c.RconsHi, c.Recording.Limit)
}

// CombineBounds applies Theorem 22 to a set of classifications: for a
// non-empty set 𝒯 of deterministic readable types,
// max{rcons(T)} ≤ rcons(𝒯) ≤ max{rcons(T)} + 1. It returns the derived
// band for the set (using each type's own band ends conservatively).
func CombineBounds(cs []Classification) (lo, hi int, err error) {
	if len(cs) == 0 {
		return 0, 0, fmt.Errorf("checker: CombineBounds needs at least one type")
	}
	for _, c := range cs {
		if !c.Readable {
			return 0, 0, fmt.Errorf("checker: Theorem 22 applies to readable types; %s is not readable", c.TypeName)
		}
		lo = max(lo, c.RconsLo)
		hi = max(hi, c.RconsHi)
	}
	if hi < Unbounded {
		hi++ // the "+1" slack of Theorem 22
	}
	return lo, hi, nil
}
