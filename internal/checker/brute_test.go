package checker

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rcons/internal/atlas"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// newRandomType draws a random deterministic readable type from the
// shared generator in internal/atlas — the SAME sampler the census
// pipeline surveys, so the brute-force differential tests and the
// production sampling can never drift apart. Random types are the acid
// test for the checker: the counts-abstracted engines must agree with
// the brute-force definitional enumeration on all of them, and the
// paper's implications (Observations 5/6, Theorem 16) must hold on
// every witness found. The response alphabet is fixed at 3, matching
// the generator's historic distribution here.
func newRandomType(rng *rand.Rand, states, ops int) *atlas.Table {
	return atlas.Random(rng, states, ops, 3)
}

// randomWitness draws a witness for t with n processes.
func randomWitness(rng *rand.Rand, t spec.Type, n int) Witness {
	states := t.InitialStates()
	ops := t.Ops()
	w := Witness{Q0: states[rng.Intn(len(states))]}
	// Ensure both teams non-empty: process 0 → A, process 1 → B.
	for i := 0; i < n; i++ {
		team := TeamA
		switch {
		case i == 1:
			team = TeamB
		case i > 1 && rng.Intn(2) == 1:
			team = TeamB
		}
		w.Teams = append(w.Teams, team)
		w.Ops = append(w.Ops, ops[rng.Intn(len(ops))])
	}
	return w
}

func setsEqualStates(a, b map[spec.State]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func setsEqualPairs(a, b map[RPair]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestQSetMatchesBruteOnRandomTypes cross-validates the memoized Q
// engine against the brute-force definitional enumeration.
func TestQSetMatchesBruteOnRandomTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		typ := newRandomType(rng, 2+rng.Intn(4), 1+rng.Intn(3))
		n := 2 + rng.Intn(4)
		w := randomWitness(rng, typ, n)
		for _, team := range []int{TeamA, TeamB} {
			fast, err := QSet(typ, w, team)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := QSetBrute(typ, w, team)
			if err != nil {
				t.Fatal(err)
			}
			if !setsEqualStates(fast, brute) {
				t.Fatalf("trial %d: QSet mismatch for %s team %d\nwitness %s\nfast  %v\nbrute %v",
					trial, typ.Name(), team, w, fast, brute)
			}
		}
	}
}

// TestRSetMatchesBruteOnRandomTypes cross-validates the R engine.
func TestRSetMatchesBruteOnRandomTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		typ := newRandomType(rng, 2+rng.Intn(3), 1+rng.Intn(3))
		n := 2 + rng.Intn(3)
		w := randomWitness(rng, typ, n)
		j := rng.Intn(n)
		for _, team := range []int{TeamA, TeamB} {
			fast, err := RSet(typ, w, team, j)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := RSetBrute(typ, w, team, j)
			if err != nil {
				t.Fatal(err)
			}
			if !setsEqualPairs(fast, brute) {
				t.Fatalf("trial %d: RSet mismatch for %s team %d j %d\nwitness %s\nfast  %v\nbrute %v",
					trial, typ.Name(), team, j, w, fast, brute)
			}
		}
	}
}

// TestVerifyRecordingMatchesBrute compares the full verification.
func TestVerifyRecordingMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		typ := newRandomType(rng, 2+rng.Intn(4), 1+rng.Intn(3))
		w := randomWitness(rng, typ, 2+rng.Intn(4))
		fast, err := VerifyRecording(typ, w)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := VerifyRecordingBrute(typ, w)
		if err != nil {
			t.Fatal(err)
		}
		if fast.OK != brute.OK {
			t.Fatalf("trial %d: verification mismatch for %s\nwitness %s\nfast %v brute %v",
				trial, typ.Name(), w, fast, brute)
		}
	}
}

// TestFigure1ImplicationsOnRandomTypes checks Observations 5/6 and
// Theorem 16 hold on random types — if any failed, either the checker or
// the paper would be wrong.
func TestFigure1ImplicationsOnRandomTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		typ := newRandomType(rng, 2+rng.Intn(3), 1+rng.Intn(2))
		has := map[[2]int]bool{} // (level, 0=rec/1=disc)
		for n := 2; n <= 4; n++ {
			wr, err := SearchRecording(typ, n, nil)
			if err != nil {
				t.Fatal(err)
			}
			wd, err := SearchDiscerning(typ, n, nil)
			if err != nil {
				t.Fatal(err)
			}
			has[[2]int{n, 0}] = wr != nil
			has[[2]int{n, 1}] = wd != nil
		}
		for n := 2; n <= 4; n++ {
			if has[[2]int{n, 0}] && !has[[2]int{n, 1}] {
				t.Fatalf("trial %d: %s is %d-recording but not %d-discerning (Observation 5)", trial, typ.Name(), n, n)
			}
			if n >= 3 && has[[2]int{n, 0}] && !has[[2]int{n - 1, 0}] {
				t.Fatalf("trial %d: %s violates Observation 6 at n=%d", trial, typ.Name(), n)
			}
			if n >= 4 && has[[2]int{n, 1}] && !has[[2]int{n - 2, 0}] {
				t.Fatalf("trial %d: %s violates Theorem 16 at n=%d", trial, typ.Name(), n)
			}
		}
		if has[[2]int{3, 1}] && !has[[2]int{2, 0}] {
			t.Fatalf("trial %d: %s violates Proposition 18", trial, typ.Name())
		}
	}
}

// TestQSetBruteAgreesOnZooWitnesses cross-validates on the hand-built
// paper witnesses too (cheap sizes only).
func TestQSetBruteAgreesOnZooWitnesses(t *testing.T) {
	cases := []struct {
		typ spec.Type
		w   Witness
	}{
		{types.NewSn(3), paperSnWitness(3)},
		{types.NewSn(4), paperSnWitness(4)},
		{types.NewTn(4), Witness{
			Q0:    types.TnBottom,
			Teams: []int{TeamA, TeamA, TeamB, TeamB},
			Ops:   []spec.Op{"opA", "opA", "opB", "opB"},
		}},
	}
	for _, c := range cases {
		for _, team := range []int{TeamA, TeamB} {
			fast, err := QSet(c.typ, c.w, team)
			if err != nil {
				t.Fatal(err)
			}
			brute, err := QSetBrute(c.typ, c.w, team)
			if err != nil {
				t.Fatal(err)
			}
			if !setsEqualStates(fast, brute) {
				t.Fatalf("%s team %d: fast %v brute %v", c.typ.Name(), team, fast, brute)
			}
		}
	}
}

// TestQuickWitnessEquivalence drives quick.Check over witness seeds for
// extra randomized coverage.
func TestQuickWitnessEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		typ := newRandomType(rng, 2+rng.Intn(3), 1+rng.Intn(2))
		w := randomWitness(rng, typ, 2+rng.Intn(3))
		fast, err1 := VerifyRecording(typ, w)
		brute, err2 := VerifyRecordingBrute(typ, w)
		return err1 == nil && err2 == nil && fast.OK == brute.OK
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestWitnessPermutationInvariance: the recording property depends only
// on (q0, per-team operation multisets), so permuting process indices
// within teams must not change the verdict.
func TestWitnessPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		typ := newRandomType(rng, 2+rng.Intn(3), 1+rng.Intn(3))
		w := randomWitness(rng, typ, 3+rng.Intn(2))
		base, err := VerifyRecording(typ, w)
		if err != nil {
			t.Fatal(err)
		}
		// Shuffle processes (keeping team/op pairs together).
		perm := rng.Perm(w.N())
		shuffled := Witness{Q0: w.Q0}
		for _, i := range perm {
			shuffled.Teams = append(shuffled.Teams, w.Teams[i])
			shuffled.Ops = append(shuffled.Ops, w.Ops[i])
		}
		got, err := VerifyRecording(typ, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if got.OK != base.OK {
			t.Fatalf("trial %d: permutation changed verdict for %s\noriginal %s: %v\nshuffled %s: %v",
				trial, typ.Name(), w, base, shuffled, got)
		}
	}
}

// TestTeamSwapSymmetry: swapping the two teams' labels must not change
// the recording verdict (the definition is symmetric in A and B).
func TestTeamSwapSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		typ := newRandomType(rng, 2+rng.Intn(3), 1+rng.Intn(3))
		w := randomWitness(rng, typ, 2+rng.Intn(3))
		base, err := VerifyRecording(typ, w)
		if err != nil {
			t.Fatal(err)
		}
		swapped := Witness{Q0: w.Q0, Ops: w.Ops}
		for _, team := range w.Teams {
			swapped.Teams = append(swapped.Teams, 1-team)
		}
		got, err := VerifyRecording(typ, swapped)
		if err != nil {
			t.Fatal(err)
		}
		if got.OK != base.OK {
			t.Fatalf("trial %d: team swap changed verdict for %s\n%s: %v vs %s: %v",
				trial, typ.Name(), w, base, swapped, got)
		}
	}
}
