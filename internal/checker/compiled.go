package checker

// Compiled-table verifiers: semantically exact mirrors of
// VerifyRecording / VerifyDiscerning that run on a compile.Compiled
// table instead of interpreting spec.Type. The (state × remaining
// counts [× j-response]) memoization graph is identical to the
// interpreted explorers'; only the representation changes — states,
// ops and responses become uint16 indices, Apply becomes two flat array
// reads, and the string memo keys become a mixed-radix integer (the
// remaining-counts vector is bounded by per-op totals, so each slot is
// a digit with radix total+1). Witnesses whose initial state or
// operations lie outside the table, or with more processes than the
// dense counts encoding supports, fall back to the interpreted
// verifier on the table's source type, so the compiled VerifyFuncs are
// total and return bit-identical verdicts everywhere.

import (
	"rcons/internal/compile"
	"rcons/internal/spec"
)

// maxCompiledN bounds the process count for the mixed-radix counts
// encoding: the product of (total_k+1) over alphabet slots is at most
// 2^n, kept below 2^15 so index arithmetic stays far from overflow even
// multiplied by the state and response dimensions.
const maxCompiledN = 15

// maxDenseBits is the visited-set size (in entries) up to which a flat
// bitset is used; larger key spaces fall back to a hash set, which is
// still allocation-light compared to the interpreted string keys.
const maxDenseBits = 1 << 25

// CompiledRecording returns a VerifyFunc that checks Definition 4 on
// c's flat tables. It ignores the spec.Type argument (the table already
// fixes the type) and is interchangeable with VerifyRecording: verdicts
// are bit-identical for every witness.
func CompiledRecording(c *compile.Compiled) VerifyFunc {
	return func(_ spec.Type, w Witness) (Result, error) {
		return compiledRecording(c, w)
	}
}

// CompiledDiscerning returns a VerifyFunc that checks Definition 2 on
// c's flat tables, interchangeable with VerifyDiscerning.
func CompiledDiscerning(c *compile.Compiled) VerifyFunc {
	return func(_ spec.Type, w Witness) (Result, error) {
		return compiledDiscerning(c, w)
	}
}

// CompiledVerify selects the compiled verifier for a recording
// (recording=true) or discerning property check.
func CompiledVerify(c *compile.Compiled, recording bool) VerifyFunc {
	if recording {
		return CompiledRecording(c)
	}
	return CompiledDiscerning(c)
}

// indexSet is a visited/membership set over dense integer keys: a flat
// bitset when the key space is small enough, a hash set otherwise.
type indexSet struct {
	bits []uint64
	m    map[int]struct{}
}

func newIndexSet(size int) *indexSet {
	if size <= maxDenseBits {
		return &indexSet{bits: make([]uint64, (size+63)/64)}
	}
	return &indexSet{m: make(map[int]struct{}, 1024)}
}

// insert adds key and reports whether it was absent.
func (s *indexSet) insert(key int) bool {
	if s.bits != nil {
		w, b := key/64, uint64(1)<<(key%64)
		if s.bits[w]&b != 0 {
			return false
		}
		s.bits[w] |= b
		return true
	}
	if _, ok := s.m[key]; ok {
		return false
	}
	s.m[key] = struct{}{}
	return true
}

func (s *indexSet) has(key int) bool {
	if s.bits != nil {
		return s.bits[key/64]&(uint64(1)<<(key%64)) != 0
	}
	_, ok := s.m[key]
	return ok
}

// memberSet is an indexSet that also records members in insertion
// order, for iteration (DFS order is deterministic, so so is this).
type memberSet struct {
	set     *indexSet
	members []int
}

func newMemberSet(size int) *memberSet { return &memberSet{set: newIndexSet(size)} }

func (s *memberSet) insert(key int) {
	if s.set.insert(key) {
		s.members = append(s.members, key)
	}
}

func (s *memberSet) has(key int) bool { return s.set.has(key) }

// cAlphabet is the compiled analogue of Witness.alphabet for a subset
// of the witness's processes: the distinct operations (sorted by their
// string encoding, matching the interpreted explorers exactly) resolved
// to table indices, with per-slot totals and the mixed-radix layout of
// the remaining-counts vector.
type cAlphabet struct {
	opTab   []uint16 // table op index per alphabet slot
	totals  []int    // per-slot process count (both teams)
	strides []int    // mixed-radix stride per slot
	prod    int      // Π(totals+1): size of the counts dimension
	fullIdx int      // radix index of the full totals vector
}

// buildAlphabet resolves the distinct ops of the selected witness
// processes (include(i) true) against the table. ok is false when any
// op is missing from the table, which forces the interpreted fallback.
func buildAlphabet(c *compile.Compiled, w Witness, include func(i int) bool) (a cAlphabet, slotOf map[spec.Op]int, ok bool) {
	set := map[spec.Op]bool{}
	for i, op := range w.Ops {
		if include(i) {
			set[op] = true
		}
	}
	ops := make([]spec.Op, 0, len(set))
	for op := range set {
		ops = append(ops, op)
	}
	// Insertion sort keeps this allocation-free for the tiny alphabets
	// (≤ n distinct ops) seen here, and matches the interpreted sort.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j] < ops[j-1]; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	a.opTab = make([]uint16, len(ops))
	slotOf = make(map[spec.Op]int, len(ops))
	for k, op := range ops {
		oi, found := c.OpIndex(op)
		if !found {
			return cAlphabet{}, nil, false
		}
		a.opTab[k] = oi
		slotOf[op] = k
	}
	a.totals = make([]int, len(ops))
	for i, op := range w.Ops {
		if include(i) {
			a.totals[slotOf[op]]++
		}
	}
	a.strides = make([]int, len(ops))
	a.prod = 1
	for k, t := range a.totals {
		a.strides[k] = a.prod
		a.prod *= t + 1
	}
	for k, t := range a.totals {
		a.fullIdx += t * a.strides[k]
	}
	return a, slotOf, true
}

// cqExplorer mirrors qExplorer on table indices.
type cqExplorer struct {
	c       *compile.Compiled
	a       cAlphabet
	visited *indexSet
	out     *memberSet
}

func (e *cqExplorer) dfs(si uint16, rem []int, remIdx int) {
	if !e.visited.insert(int(si)*e.a.prod + remIdx) {
		return
	}
	e.out.insert(int(si))
	for k := range rem {
		if rem[k] == 0 {
			continue
		}
		ns := e.c.Next(si, e.a.opTab[k])
		rem[k]--
		e.dfs(ns, rem, remIdx-e.a.strides[k])
		rem[k]++
	}
}

// compiledQSet computes the Q_x set of Definition 4 as a memberSet of
// state indices, mirroring QSet.
func compiledQSet(c *compile.Compiled, q0 uint16, a cAlphabet, countsX []int) *memberSet {
	e := &cqExplorer{
		c:       c,
		a:       a,
		visited: newIndexSet(c.NumStates() * a.prod),
		out:     newMemberSet(c.NumStates()),
	}
	merged := append([]int(nil), a.totals...)
	for k := range a.opTab {
		if countsX[k] == 0 {
			continue
		}
		ns := c.Next(q0, a.opTab[k])
		merged[k]--
		e.dfs(ns, merged, a.fullIdx-a.strides[k])
		merged[k]++
	}
	return e.out
}

func compiledRecording(c *compile.Compiled, w Witness) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	q0, ok := c.StateIndex(w.Q0)
	if !ok || w.N() > maxCompiledN {
		return VerifyRecording(c.Source(), w)
	}
	a, slotOf, ok := buildAlphabet(c, w, func(int) bool { return true })
	if !ok {
		return VerifyRecording(c.Source(), w)
	}
	counts := [2][]int{make([]int, len(a.opTab)), make([]int, len(a.opTab))}
	for i, op := range w.Ops {
		counts[w.Teams[i]][slotOf[op]]++
	}
	qa := compiledQSet(c, q0, a, counts[TeamA])
	qb := compiledQSet(c, q0, a, counts[TeamB])
	for _, s := range qa.members {
		if qb.has(s) {
			return fail("condition 1: state %q is in both Q_A and Q_B", c.StateAt(uint16(s))), nil
		}
	}
	if qa.has(int(q0)) && w.TeamSize(TeamB) != 1 {
		return fail("condition 2: q0 ∈ Q_A but |B| = %d ≠ 1", w.TeamSize(TeamB)), nil
	}
	if qb.has(int(q0)) && w.TeamSize(TeamA) != 1 {
		return fail("condition 3: q0 ∈ Q_B but |A| = %d ≠ 1", w.TeamSize(TeamA)), nil
	}
	return Result{OK: true}, nil
}

// crExplorer mirrors rExplorer on table indices. The j-tracking
// dimension folds into the memo key as a factor of NumResps+1: slot 0
// is "j not yet applied", slot 1+r is "j applied, returned response r".
type crExplorer struct {
	c          *compile.Compiled
	a          cAlphabet
	opJ        uint16
	respFactor int
	visited    *indexSet
	out        *memberSet // keys: respIdx*NumStates + stateIdx
}

func (e *crExplorer) dfs(si uint16, rem []int, remIdx, jSlot int) {
	if !e.visited.insert((int(si)*e.a.prod+remIdx)*e.respFactor + jSlot) {
		return
	}
	if jSlot > 0 {
		e.out.insert((jSlot-1)*e.c.NumStates() + int(si))
	}
	for k := range rem {
		if rem[k] == 0 {
			continue
		}
		ns := e.c.Next(si, e.a.opTab[k])
		rem[k]--
		e.dfs(ns, rem, remIdx-e.a.strides[k], jSlot)
		rem[k]++
	}
	if jSlot == 0 {
		ns, r := e.c.Apply(si, e.opJ)
		e.dfs(ns, rem, remIdx, 1+int(r))
	}
}

// compiledRSet computes R_{x,j} of Definition 2 as a memberSet of
// (response, state) index pairs, mirroring RSet. ok is false when some
// operation is outside the table.
func compiledRSet(c *compile.Compiled, w Witness, q0 uint16, x, j int) (*memberSet, bool) {
	a, slotOf, ok := buildAlphabet(c, w, func(i int) bool { return i != j })
	if !ok {
		return nil, false
	}
	opJ, ok := c.OpIndex(w.Ops[j])
	if !ok {
		return nil, false
	}
	countsX := make([]int, len(a.opTab))
	for i, op := range w.Ops {
		if i != j && w.Teams[i] == x {
			countsX[slotOf[op]]++
		}
	}
	e := &crExplorer{
		c:          c,
		a:          a,
		opJ:        opJ,
		respFactor: c.NumResps() + 1,
		visited:    newIndexSet(c.NumStates() * a.prod * (c.NumResps() + 1)),
		out:        newMemberSet(c.NumStates() * c.NumResps()),
	}
	merged := append([]int(nil), a.totals...)
	// Case 1: process j goes first (only admissible if j is on team x).
	if w.Teams[j] == x {
		ns, r := c.Apply(q0, opJ)
		e.dfs(ns, merged, a.fullIdx, 1+int(r))
	}
	// Case 2: another process on team x goes first.
	for k := range a.opTab {
		if countsX[k] == 0 {
			continue
		}
		ns := c.Next(q0, a.opTab[k])
		merged[k]--
		e.dfs(ns, merged, a.fullIdx-a.strides[k], 0)
		merged[k]++
	}
	return e.out, true
}

func compiledDiscerning(c *compile.Compiled, w Witness) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	q0, ok := c.StateIndex(w.Q0)
	if !ok || w.N() > maxCompiledN {
		return VerifyDiscerning(c.Source(), w)
	}
	for j := 0; j < w.N(); j++ {
		ra, ok := compiledRSet(c, w, q0, TeamA, j)
		if !ok {
			return VerifyDiscerning(c.Source(), w)
		}
		rb, ok := compiledRSet(c, w, q0, TeamB, j)
		if !ok {
			return VerifyDiscerning(c.Source(), w)
		}
		for _, p := range ra.members {
			if rb.has(p) {
				ri, si := p/c.NumStates(), p%c.NumStates()
				return fail("R_{A,%d} ∩ R_{B,%d} contains (resp=%q, state=%q)",
					j, j, c.RespAt(uint16(ri)), c.StateAt(uint16(si))), nil
			}
		}
	}
	return Result{OK: true}, nil
}
