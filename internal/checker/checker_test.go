package checker

import (
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// paperSnWitness is the witness from the proof of Proposition 21:
// q0 = (B,0), A = {p1} with opA, B = {p2, …, pn} with opB.
func paperSnWitness(n int) Witness {
	w := Witness{Q0: types.SnInitial, Teams: []int{TeamA}, Ops: []spec.Op{"opA"}}
	for i := 1; i < n; i++ {
		w.Teams = append(w.Teams, TeamB)
		w.Ops = append(w.Ops, "opB")
	}
	return w
}

func TestWitnessValidate(t *testing.T) {
	good := paperSnWitness(3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid witness rejected: %v", err)
	}
	bad := Witness{Q0: "x", Teams: []int{TeamA, TeamA}, Ops: []spec.Op{"a", "b"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("one-team witness accepted")
	}
	mismatched := Witness{Q0: "x", Teams: []int{TeamA, TeamB}, Ops: []spec.Op{"a"}}
	if err := mismatched.Validate(); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestQSetSnMatchesPaper(t *testing.T) {
	// Proof of Proposition 21: Q_A = {(A,row)} and Q_B = {(B,row)}.
	n := 4
	sn := types.NewSn(n)
	w := paperSnWitness(n)
	qa, err := QSet(sn, w, TeamA)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := QSet(sn, w, TeamB)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		if !qa[spec.State("A,"+itoa(row))] {
			t.Errorf("Q_A missing (A,%d); Q_A = %v", row, qa)
		}
	}
	for s := range qa {
		if s[0] != 'A' {
			t.Errorf("Q_A contains non-A state %q", s)
		}
	}
	for s := range qb {
		if s[0] != 'B' {
			t.Errorf("Q_B contains non-B state %q", s)
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestVerifyRecordingSnPaperWitness(t *testing.T) {
	for n := 2; n <= 6; n++ {
		sn := types.NewSn(n)
		res, err := VerifyRecording(sn, paperSnWitness(n))
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Errorf("S_%d paper witness rejected: %s", n, res.Reason)
		}
	}
}

func TestVerifyDiscerningSnPaperWitness(t *testing.T) {
	// Observation 5: the same witness must be n-discerning.
	for n := 2; n <= 5; n++ {
		sn := types.NewSn(n)
		res, err := VerifyDiscerning(sn, paperSnWitness(n))
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Errorf("S_%d paper witness not discerning: %s", n, res.Reason)
		}
	}
}

func TestSnExactLevels(t *testing.T) {
	// Proposition 21: S_n is n-recording but not (n+1)-discerning, hence
	// rcons(S_n) = cons(S_n) = n.
	for n := 2; n <= 5; n++ {
		sn := types.NewSn(n)
		rec, err := MaxRecording(sn, n+2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Max != n || rec.AtLimit {
			t.Errorf("MaxRecording(S_%d) = %s, want %d", n, rec, n)
		}
		disc, err := MaxDiscerning(sn, n+2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if disc.Max != n || disc.AtLimit {
			t.Errorf("MaxDiscerning(S_%d) = %s, want %d", n, disc, n)
		}
	}
}

func TestTnProposition19(t *testing.T) {
	// Proposition 19: T_n is n-discerning but not (n-1)-recording.
	for n := 4; n <= 6; n++ {
		tn := types.NewTn(n)
		w, err := SearchDiscerning(tn, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		if w == nil {
			t.Errorf("T_%d: no %d-discerning witness found", n, n)
		}
		w, err = SearchRecording(tn, n-1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if w != nil {
			t.Errorf("T_%d: unexpectedly (n-1)-recording via %s", n, w)
		}
	}
}

func TestTnPaperDiscerningWitness(t *testing.T) {
	// The witness from the proof: q0 = (⊥,0,0), team A of size ⌊n/2⌋ with
	// opA, team B of size ⌈n/2⌉ with opB.
	for n := 4; n <= 7; n++ {
		tn := types.NewTn(n)
		w := Witness{Q0: types.TnBottom}
		for i := 0; i < n/2; i++ {
			w.Teams = append(w.Teams, TeamA)
			w.Ops = append(w.Ops, "opA")
		}
		for i := 0; i < (n+1)/2; i++ {
			w.Teams = append(w.Teams, TeamB)
			w.Ops = append(w.Ops, "opB")
		}
		res, err := VerifyDiscerning(tn, w)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Errorf("T_%d paper discerning witness rejected: %s", n, res.Reason)
		}
	}
}

func TestTnIsNMinus2Recording(t *testing.T) {
	// Theorem 16 requires every n-discerning type to be (n-2)-recording;
	// check the checker finds the witness for T_n.
	for n := 4; n <= 6; n++ {
		tn := types.NewTn(n)
		w, err := SearchRecording(tn, n-2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if w == nil {
			t.Errorf("T_%d: no (n-2)-recording witness found, contradicting Theorem 16", n)
		}
	}
}

func TestCASRecordingAtEveryLevel(t *testing.T) {
	rec, err := MaxRecording(types.NewCAS(), 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.AtLimit {
		t.Errorf("MaxRecording(CAS) = %s, want ≥6", rec)
	}
}

func TestStickyAndConsensusUnbounded(t *testing.T) {
	for _, typ := range []spec.Type{types.NewSticky(), types.NewConsensus()} {
		rec, err := MaxRecording(typ, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.AtLimit {
			t.Errorf("MaxRecording(%s) = %s, want ≥5", typ.Name(), rec)
		}
		disc, err := MaxDiscerning(typ, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !disc.AtLimit {
			t.Errorf("MaxDiscerning(%s) = %s, want ≥5", typ.Name(), disc)
		}
	}
}

func TestRegisterIsWeak(t *testing.T) {
	reg := types.NewRegister()
	disc, err := MaxDiscerning(reg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if disc.Max != 1 {
		t.Errorf("MaxDiscerning(register) = %s, want 1 (cons(register)=1)", disc)
	}
	rec, err := MaxRecording(reg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Max != 1 {
		t.Errorf("MaxRecording(register) = %s, want 1", rec)
	}
}

func TestWeakTypesNotDiscerning(t *testing.T) {
	for _, typ := range []spec.Type{types.NewCounter(8), types.NewMaxRegister()} {
		disc, err := MaxDiscerning(typ, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if disc.Max != 1 {
			t.Errorf("MaxDiscerning(%s) = %s, want 1", typ.Name(), disc)
		}
	}
}

func TestTestAndSetLevels(t *testing.T) {
	tas := types.TestAndSet{}
	disc, err := MaxDiscerning(tas, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if disc.Max != 2 || disc.AtLimit {
		t.Errorf("MaxDiscerning(test&set) = %s, want 2 (cons=2)", disc)
	}
	rec, err := MaxRecording(tas, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Max != 1 {
		t.Errorf("MaxRecording(test&set) = %s, want 1 (its single reachable non-initial state cannot record the winner)", rec)
	}
}

func TestPlainStackRecordingButNotReadable(t *testing.T) {
	// The plain stack satisfies the *syntactic* n-recording property for
	// every n — a push-only witness works because the bottom element
	// permanently records which team pushed first. Yet rcons(stack) = 1
	// (Appendix H): Theorem 8 does not apply because the stack is not
	// readable (processes can only learn state through pop responses).
	// This test pins down both halves of that explanation: the recording
	// witness exists, and the type is flagged non-readable so the
	// classifier refuses to derive an rcons lower bound from it.
	st := types.NewStack(4)
	if types.Readable(st) {
		t.Fatal("plain stack must be non-readable")
	}
	for n := 2; n <= 4; n++ {
		w, err := SearchRecording(st, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		if w == nil {
			t.Errorf("plain stack: expected an %d-recording witness (readability, not recording, is what fails)", n)
		}
	}
	c, err := Classify(st, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.RconsLo != 1 {
		t.Errorf("classifier derived rcons ≥ %d for the non-readable stack; Theorem 8 must not be applied", c.RconsLo)
	}
}

func TestReadableStackIsStrong(t *testing.T) {
	st := &types.Stack{Cap: 6, Values: []string{"0", "1"}, AllowRead: true}
	rec, err := MaxRecording(st, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.AtLimit {
		t.Errorf("MaxRecording(readable stack) = %s, want ≥5", rec)
	}
}

func TestObservation5RecordingImpliesDiscerning(t *testing.T) {
	// Observation 5 on every recording witness the searches produce for
	// the whole zoo at n = 2..4.
	for _, typ := range types.Zoo() {
		for n := 2; n <= 4; n++ {
			w, err := SearchRecording(typ, n, nil)
			if err != nil {
				t.Fatalf("%s: %v", typ.Name(), err)
			}
			if w == nil {
				continue
			}
			res, err := VerifyDiscerning(typ, *w)
			if err != nil {
				t.Fatalf("%s: %v", typ.Name(), err)
			}
			if !res.OK {
				t.Errorf("%s: %d-recording witness %s is not discerning: %s — violates Observation 5",
					typ.Name(), n, w, res.Reason)
			}
		}
	}
}

func TestObservation6DropProcess(t *testing.T) {
	// Observation 6: from an n-recording witness (n ≥ 3), dropping one
	// process from the larger team yields an (n-1)-recording witness.
	for _, typ := range types.Zoo() {
		for n := 3; n <= 4; n++ {
			w, err := SearchRecording(typ, n, nil)
			if err != nil {
				t.Fatalf("%s: %v", typ.Name(), err)
			}
			if w == nil {
				continue
			}
			larger := TeamA
			if w.TeamSize(TeamB) > w.TeamSize(TeamA) {
				larger = TeamB
			}
			if w.TeamSize(larger) < 2 {
				continue
			}
			drop := w.Members(larger)[0]
			smaller := Witness{Q0: w.Q0}
			for i := range w.Teams {
				if i == drop {
					continue
				}
				smaller.Teams = append(smaller.Teams, w.Teams[i])
				smaller.Ops = append(smaller.Ops, w.Ops[i])
			}
			res, err := VerifyRecording(typ, smaller)
			if err != nil {
				t.Fatalf("%s: %v", typ.Name(), err)
			}
			if !res.OK {
				t.Errorf("%s: dropping a process broke recording (%s) — violates Observation 6",
					typ.Name(), res.Reason)
			}
		}
	}
}

func TestTheorem16DiscerningImpliesNMinus2Recording(t *testing.T) {
	// For every zoo type that is n-discerning (n = 4, 5), confirm it is
	// (n-2)-recording, per Theorem 16.
	for _, typ := range types.Zoo() {
		if !types.Readable(typ) {
			continue
		}
		for n := 4; n <= 5; n++ {
			wd, err := SearchDiscerning(typ, n, nil)
			if err != nil {
				t.Fatalf("%s: %v", typ.Name(), err)
			}
			if wd == nil {
				continue
			}
			wr, err := SearchRecording(typ, n-2, nil)
			if err != nil {
				t.Fatalf("%s: %v", typ.Name(), err)
			}
			if wr == nil {
				t.Errorf("%s: %d-discerning but not %d-recording — violates Theorem 16",
					typ.Name(), n, n-2)
			}
		}
	}
}

func TestProposition18ThreeDiscerningImpliesTwoRecording(t *testing.T) {
	for _, typ := range types.Zoo() {
		if !types.Readable(typ) {
			continue
		}
		wd, err := SearchDiscerning(typ, 3, nil)
		if err != nil {
			t.Fatalf("%s: %v", typ.Name(), err)
		}
		if wd == nil {
			continue
		}
		wr, err := SearchRecording(typ, 2, nil)
		if err != nil {
			t.Fatalf("%s: %v", typ.Name(), err)
		}
		if wr == nil {
			t.Errorf("%s: 3-discerning but not 2-recording — violates Proposition 18", typ.Name())
		}
	}
}

func TestRSetTestAndSet(t *testing.T) {
	// Hand-computed R sets for test&set with both processes assigned tas:
	// R_{A,0} = {(0,1) from [tas0], (0,1) from [tas0,tas1]} = {(0,"1")};
	// R_{B,0} = {(1,"1")}.
	w := Witness{Q0: "0", Teams: []int{TeamA, TeamB}, Ops: []spec.Op{"tas", "tas"}}
	ra, err := RSet(types.TestAndSet{}, w, TeamA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != 1 || !ra[RPair{Resp: "0", State: "1"}] {
		t.Errorf("R_{A,0} = %v, want {(0,1)}", ra)
	}
	rb, err := RSet(types.TestAndSet{}, w, TeamB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb) != 1 || !rb[RPair{Resp: "1", State: "1"}] {
		t.Errorf("R_{B,0} = %v, want {(1,1)}", rb)
	}
}

func TestMultisets(t *testing.T) {
	var got [][]int
	multisets(2, 3, func(c []int) bool {
		got = append(got, append([]int(nil), c...))
		return true
	})
	if len(got) != 4 { // (3,0) (2,1) (1,2) (0,3)
		t.Fatalf("multisets(2,3) produced %d vectors: %v", len(got), got)
	}
	for _, c := range got {
		if c[0]+c[1] != 3 {
			t.Errorf("multiset %v does not sum to 3", c)
		}
	}
}

func TestMultisetsEarlyStop(t *testing.T) {
	calls := 0
	ok := multisets(3, 2, func([]int) bool {
		calls++
		return calls < 2
	})
	if ok || calls != 2 {
		t.Errorf("early stop: ok=%v calls=%d", ok, calls)
	}
}

func TestSearchRejectsTinyN(t *testing.T) {
	if _, err := SearchRecording(types.NewCAS(), 1, nil); err == nil {
		t.Error("SearchRecording accepted n = 1")
	}
}

func TestReadOnlyHasNoWitness(t *testing.T) {
	w, err := SearchRecording(types.ReadOnly{}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("read-only type produced witness %s", w)
	}
}

func TestPeekQueueUnboundedLevels(t *testing.T) {
	// A queue with peek keeps its first element observable forever, so
	// enq-only witnesses make it n-recording (and n-discerning) for every
	// n — the classical cons(queue+peek) = ∞ carries over to rcons.
	q := types.NewPeekQueue(6)
	rec, err := MaxRecording(q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.AtLimit {
		t.Errorf("MaxRecording(peek-queue) = %s, want ≥5", rec)
	}
	disc, err := MaxDiscerning(q, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !disc.AtLimit {
		t.Errorf("MaxDiscerning(peek-queue) = %s, want ≥4", disc)
	}
}
