package checker

import (
	"context"
	"fmt"

	"rcons/internal/spec"
)

// SearchOptions configures witness searches. The zero value means "derive
// candidates from the type": initial states from Type.InitialStates and
// the operation alphabet from spec.CandidateOps.
//
// The searches are exhaustive over the candidate sets: because processes
// assigned the same operation on the same team are interchangeable in
// Definitions 2 and 4, enumerating (initial state × team sizes ×
// per-team operation multisets) covers every witness up to symmetry.
// A negative search result is therefore a proof of "not n-recording"
// (resp. "not n-discerning") relative to the candidate state set; for the
// paper's finite-state families the candidate set is the full state
// space, making the negative results unconditional.
type SearchOptions struct {
	// States are the candidate initial states q0.
	States []spec.State
	// Ops is the candidate operation alphabet.
	Ops []spec.Op
}

func (o *SearchOptions) fill(t spec.Type, n int) ([]spec.State, []spec.Op) {
	states := t.InitialStates()
	ops := spec.CandidateOps(t, n)
	if o != nil {
		if len(o.States) > 0 {
			states = o.States
		}
		if len(o.Ops) > 0 {
			ops = o.Ops
		}
	}
	return states, ops
}

// VerifyFunc is a property verifier for one candidate witness:
// VerifyRecording or VerifyDiscerning.
type VerifyFunc func(spec.Type, Witness) (Result, error)

// multisets enumerates all multisets of size k over m symbols, invoking
// yield with a count vector of length m for each. yield must not retain
// the slice. It returns false if yield returned false (early stop).
func multisets(m, k int, yield func(counts []int) bool) bool {
	counts := make([]int, m)
	var rec func(pos, left int) bool
	rec = func(pos, left int) bool {
		if pos == m-1 {
			counts[pos] = left
			ok := yield(counts)
			counts[pos] = 0
			return ok
		}
		for c := left; c >= 0; c-- {
			counts[pos] = c
			if !rec(pos+1, left-c) {
				counts[pos] = 0
				return false
			}
		}
		counts[pos] = 0
		return true
	}
	if m == 0 {
		return k != 0 || yield(nil)
	}
	return rec(0, k)
}

// witnessFromCounts materializes a concrete witness from per-team
// operation multisets: team A processes come first, then team B.
func witnessFromCounts(q0 spec.State, ops []spec.Op, aCounts, bCounts []int) Witness {
	w := Witness{Q0: q0}
	for k, c := range aCounts {
		for i := 0; i < c; i++ {
			w.Teams = append(w.Teams, TeamA)
			w.Ops = append(w.Ops, ops[k])
		}
	}
	for k, c := range bCounts {
		for i := 0; i < c; i++ {
			w.Teams = append(w.Teams, TeamB)
			w.Ops = append(w.Ops, ops[k])
		}
	}
	return w
}

// Shard is one independent slice of the witness enumeration space: the
// initial state and team-A operation multiset are fixed, and the shard
// spans every team-B multiset of size N − |A|. Distinct shards share no
// candidate witness, and the shards for (t, n) jointly cover the whole
// space, so they can be verified concurrently (package engine) or in
// sequence (searchWitness below) with identical outcomes.
type Shard struct {
	// Q0 is the fixed initial state.
	Q0 spec.State
	// Ops is the candidate operation alphabet shared by all shards.
	Ops []spec.Op
	// ACounts is the fixed per-op count vector for team A
	// (len(ACounts) == len(Ops), sum ≥ 1).
	ACounts []int
	// N is the total process count; team B gets N − sum(ACounts)
	// processes.
	N int
}

// teamBSize returns the number of team-B processes in the shard.
func (s Shard) teamBSize() int {
	b := s.N
	for _, c := range s.ACounts {
		b -= c
	}
	return b
}

// Shards partitions the (t, n, opts) search space into independent
// shards, in exactly the order searchWitness visits them: initial states
// first, then team-A size 1 … n−1, then team-A multisets in the
// enumeration order of multisets. An empty slice (with nil error) means
// the type has no update operations and therefore no witness.
func Shards(t spec.Type, n int, opts *SearchOptions) ([]Shard, error) {
	if n < 2 {
		return nil, fmt.Errorf("checker: the properties are defined for n ≥ 2, got %d", n)
	}
	states, ops := opts.fill(t, n)
	if len(ops) == 0 {
		return nil, nil
	}
	var out []Shard
	for _, q0 := range states {
		for a := 1; a < n; a++ {
			multisets(len(ops), a, func(aCounts []int) bool {
				out = append(out, Shard{
					Q0:      q0,
					Ops:     ops,
					ACounts: append([]int(nil), aCounts...),
					N:       n,
				})
				return true
			})
		}
	}
	return out, nil
}

// SearchShard verifies the shard's candidate witnesses in enumeration
// order until one passes, verify fails, or ctx is cancelled. It returns
// nil when the shard contains no witness.
func SearchShard(ctx context.Context, t spec.Type, s Shard, verify VerifyFunc) (*Witness, error) {
	var found *Witness
	var searchErr error
	multisets(len(s.Ops), s.teamBSize(), func(bCounts []int) bool {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				searchErr = err
				return false
			}
		}
		w := witnessFromCounts(s.Q0, s.Ops, s.ACounts, bCounts)
		res, err := verify(t, w)
		if err != nil {
			searchErr = err
			return false
		}
		if res.OK {
			found = &w
			return false
		}
		return true
	})
	if searchErr != nil {
		return nil, searchErr
	}
	return found, nil
}

// searchWitness runs the shared exhaustive enumeration, calling verify on
// each candidate witness until one passes. It is the sequential driver
// over Shards/SearchShard; package engine provides the concurrent one.
func searchWitness(
	t spec.Type, n int, opts *SearchOptions,
	verify VerifyFunc,
) (*Witness, error) {
	shards, err := Shards(t, n, opts)
	if err != nil {
		return nil, err
	}
	for _, s := range shards {
		w, err := SearchShard(context.Background(), t, s, verify)
		if err != nil {
			return nil, err
		}
		if w != nil {
			return w, nil
		}
	}
	return nil, nil
}

// SearchRecording looks for an n-recording witness (Definition 4) for
// type t. It returns nil if none exists over the candidate sets.
func SearchRecording(t spec.Type, n int, opts *SearchOptions) (*Witness, error) {
	return searchWitness(t, n, opts, VerifyRecording)
}

// SearchDiscerning looks for an n-discerning witness (Definition 2) for
// type t. It returns nil if none exists over the candidate sets.
func SearchDiscerning(t spec.Type, n int, opts *SearchOptions) (*Witness, error) {
	return searchWitness(t, n, opts, VerifyDiscerning)
}

// MaxLevel is the result of scanning a property up to a process-count
// limit.
type MaxLevel struct {
	// Max is the largest n ≤ Limit at which the property holds; 1 means
	// the property fails already at n = 2 (both properties are defined
	// only for n ≥ 2).
	Max int
	// AtLimit is true when the property still holds at n = Limit, i.e.
	// the true maximum may exceed Limit (e.g. compare&swap, which is
	// n-recording for every n).
	AtLimit bool
	// Limit echoes the scan bound.
	Limit int
	// Witness is a witness at level Max (nil when Max = 1).
	Witness *Witness
}

// String renders the level, e.g. "3" or "≥8".
func (m MaxLevel) String() string {
	if m.AtLimit {
		return fmt.Sprintf("≥%d", m.Limit)
	}
	return fmt.Sprintf("%d", m.Max)
}

// scanMax finds the largest n ≤ limit at which search succeeds, by
// scanning n = 2, 3, … upward and stopping at the first level whose
// search finds no witness. Stopping early is exact because both
// properties are downward closed: an n-recording type is k-recording
// for every 2 ≤ k ≤ n (Observation 6), and an n-discerning witness
// restricts to a (n−1)-discerning one by dropping a process from a
// team of size ≥ 2 — so the set of levels at which a property holds is
// always a prefix {2, …, max}, and no higher success can hide above a
// failure. This closure argument assumes the candidate sets cover the
// restricted witnesses, which holds for SearchOptions derived from the
// type (the default) since dropping a process only shrinks the ops
// used; with hand-picked candidate sets the result is still a sound
// lower bound on the maximum.
func scanMax(
	t spec.Type, limit int, opts *SearchOptions,
	search func(spec.Type, int, *SearchOptions) (*Witness, error),
) (MaxLevel, error) {
	out := MaxLevel{Max: 1, Limit: limit}
	for n := 2; n <= limit; n++ {
		w, err := search(t, n, opts)
		if err != nil {
			return MaxLevel{}, err
		}
		if w == nil {
			return out, nil
		}
		out.Max = n
		out.Witness = w
	}
	out.AtLimit = true
	return out, nil
}

// MaxRecording scans the n-recording property for n = 2 … limit.
func MaxRecording(t spec.Type, limit int, opts *SearchOptions) (MaxLevel, error) {
	return scanMax(t, limit, opts, SearchRecording)
}

// MaxDiscerning scans the n-discerning property for n = 2 … limit.
func MaxDiscerning(t spec.Type, limit int, opts *SearchOptions) (MaxLevel, error) {
	return scanMax(t, limit, opts, SearchDiscerning)
}
