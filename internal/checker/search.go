package checker

import (
	"fmt"

	"rcons/internal/spec"
)

// SearchOptions configures witness searches. The zero value means "derive
// candidates from the type": initial states from Type.InitialStates and
// the operation alphabet from spec.CandidateOps.
//
// The searches are exhaustive over the candidate sets: because processes
// assigned the same operation on the same team are interchangeable in
// Definitions 2 and 4, enumerating (initial state × team sizes ×
// per-team operation multisets) covers every witness up to symmetry.
// A negative search result is therefore a proof of "not n-recording"
// (resp. "not n-discerning") relative to the candidate state set; for the
// paper's finite-state families the candidate set is the full state
// space, making the negative results unconditional.
type SearchOptions struct {
	// States are the candidate initial states q0.
	States []spec.State
	// Ops is the candidate operation alphabet.
	Ops []spec.Op
}

func (o *SearchOptions) fill(t spec.Type, n int) ([]spec.State, []spec.Op) {
	states := t.InitialStates()
	ops := spec.CandidateOps(t, n)
	if o != nil {
		if len(o.States) > 0 {
			states = o.States
		}
		if len(o.Ops) > 0 {
			ops = o.Ops
		}
	}
	return states, ops
}

// multisets enumerates all multisets of size k over m symbols, invoking
// yield with a count vector of length m for each. yield must not retain
// the slice. It returns false if yield returned false (early stop).
func multisets(m, k int, yield func(counts []int) bool) bool {
	counts := make([]int, m)
	var rec func(pos, left int) bool
	rec = func(pos, left int) bool {
		if pos == m-1 {
			counts[pos] = left
			ok := yield(counts)
			counts[pos] = 0
			return ok
		}
		for c := left; c >= 0; c-- {
			counts[pos] = c
			if !rec(pos+1, left-c) {
				counts[pos] = 0
				return false
			}
		}
		counts[pos] = 0
		return true
	}
	if m == 0 {
		return k != 0 || yield(nil)
	}
	return rec(0, k)
}

// witnessFromCounts materializes a concrete witness from per-team
// operation multisets: team A processes come first, then team B.
func witnessFromCounts(q0 spec.State, ops []spec.Op, aCounts, bCounts []int) Witness {
	w := Witness{Q0: q0}
	for k, c := range aCounts {
		for i := 0; i < c; i++ {
			w.Teams = append(w.Teams, TeamA)
			w.Ops = append(w.Ops, ops[k])
		}
	}
	for k, c := range bCounts {
		for i := 0; i < c; i++ {
			w.Teams = append(w.Teams, TeamB)
			w.Ops = append(w.Ops, ops[k])
		}
	}
	return w
}

// searchWitness runs the shared exhaustive enumeration, calling verify on
// each candidate witness until one passes.
func searchWitness(
	t spec.Type, n int, opts *SearchOptions,
	verify func(spec.Type, Witness) (Result, error),
) (*Witness, error) {
	if n < 2 {
		return nil, fmt.Errorf("checker: the properties are defined for n ≥ 2, got %d", n)
	}
	states, ops := opts.fill(t, n)
	if len(ops) == 0 {
		return nil, nil // a type with no update operations has no witness
	}
	var found *Witness
	var searchErr error
	for _, q0 := range states {
		for a := 1; a < n; a++ {
			stop := !multisets(len(ops), a, func(aCounts []int) bool {
				aCopy := append([]int(nil), aCounts...)
				return multisets(len(ops), n-a, func(bCounts []int) bool {
					w := witnessFromCounts(q0, ops, aCopy, bCounts)
					res, err := verify(t, w)
					if err != nil {
						searchErr = err
						return false
					}
					if res.OK {
						found = &w
						return false
					}
					return true
				})
			})
			if searchErr != nil {
				return nil, searchErr
			}
			if stop {
				return found, nil
			}
		}
	}
	return nil, nil
}

// SearchRecording looks for an n-recording witness (Definition 4) for
// type t. It returns nil if none exists over the candidate sets.
func SearchRecording(t spec.Type, n int, opts *SearchOptions) (*Witness, error) {
	return searchWitness(t, n, opts, VerifyRecording)
}

// SearchDiscerning looks for an n-discerning witness (Definition 2) for
// type t. It returns nil if none exists over the candidate sets.
func SearchDiscerning(t spec.Type, n int, opts *SearchOptions) (*Witness, error) {
	return searchWitness(t, n, opts, VerifyDiscerning)
}

// MaxLevel is the result of scanning a property up to a process-count
// limit.
type MaxLevel struct {
	// Max is the largest n ≤ Limit at which the property holds; 1 means
	// the property fails already at n = 2 (both properties are defined
	// only for n ≥ 2).
	Max int
	// AtLimit is true when the property still holds at n = Limit, i.e.
	// the true maximum may exceed Limit (e.g. compare&swap, which is
	// n-recording for every n).
	AtLimit bool
	// Limit echoes the scan bound.
	Limit int
	// Witness is a witness at level Max (nil when Max = 1).
	Witness *Witness
}

// String renders the level, e.g. "3" or "≥8".
func (m MaxLevel) String() string {
	if m.AtLimit {
		return fmt.Sprintf("≥%d", m.Limit)
	}
	return fmt.Sprintf("%d", m.Max)
}

// scanMax finds the largest n ≤ limit at which search succeeds. Both
// properties are downward closed for n ≥ 3 (Observation 6 for recording;
// dropping a process preserves discerning likewise), so a linear upward
// scan that stops at the first failure is exact; to be robust against
// hypothetical non-monotone candidate sets we keep scanning after an
// early failure only if the next level succeeds is impossible — we stop,
// documenting the monotonicity assumption.
func scanMax(
	t spec.Type, limit int, opts *SearchOptions,
	search func(spec.Type, int, *SearchOptions) (*Witness, error),
) (MaxLevel, error) {
	out := MaxLevel{Max: 1, Limit: limit}
	for n := 2; n <= limit; n++ {
		w, err := search(t, n, opts)
		if err != nil {
			return MaxLevel{}, err
		}
		if w == nil {
			return out, nil
		}
		out.Max = n
		out.Witness = w
	}
	out.AtLimit = true
	return out, nil
}

// MaxRecording scans the n-recording property for n = 2 … limit.
func MaxRecording(t spec.Type, limit int, opts *SearchOptions) (MaxLevel, error) {
	return scanMax(t, limit, opts, SearchRecording)
}

// MaxDiscerning scans the n-discerning property for n = 2 … limit.
func MaxDiscerning(t spec.Type, limit int, opts *SearchOptions) (MaxLevel, error) {
	return scanMax(t, limit, opts, SearchDiscerning)
}
