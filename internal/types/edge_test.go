package types

import (
	"errors"
	"fmt"
	"testing"

	"rcons/internal/spec"
)

// These tests fill the error-path and edge-case gaps in weak.go and
// peekqueue.go: bad operations, bad states, boundary values and the
// empty-queue peeks the normal witness searches never hit.

func TestCounterEdgeCases(t *testing.T) {
	c := NewCounter(3)
	if got := c.Name(); got != "counter(mod=3)" {
		t.Errorf("Name() = %q", got)
	}
	if _, _, err := c.Apply("0", "dec"); !errors.Is(err, spec.ErrBadOp) {
		t.Errorf("unknown op: err = %v, want ErrBadOp", err)
	}
	for _, bad := range []spec.State{"", "x", "-1", "3", "99"} {
		if _, _, err := c.Apply(bad, "inc"); !errors.Is(err, spec.ErrBadState) {
			t.Errorf("state %q: err = %v, want ErrBadState", bad, err)
		}
	}
	// Wrap-around at the modulus.
	s, r, err := c.Apply("2", "inc")
	if err != nil || s != "0" || r != spec.Ack {
		t.Errorf("inc from 2 mod 3 = (%q, %q, %v), want (0, ack)", s, r, err)
	}
}

func TestMaxRegisterEdgeCases(t *testing.T) {
	m := NewMaxRegister()
	if got := m.Name(); got != "max-register" {
		t.Errorf("Name() = %q", got)
	}
	if _, _, err := m.Apply("0", "write(1)"); !errors.Is(err, spec.ErrBadOp) {
		t.Errorf("unknown op name: err = %v, want ErrBadOp", err)
	}
	if _, _, err := m.Apply("0", "writeMax(1,2)"); !errors.Is(err, spec.ErrBadOp) {
		t.Errorf("wrong arity: err = %v, want ErrBadOp", err)
	}
	if _, _, err := m.Apply("0", "writeMax(x)"); !errors.Is(err, spec.ErrBadOp) {
		t.Errorf("non-numeric value: err = %v, want ErrBadOp", err)
	}
	if _, _, err := m.Apply("zz", "writeMax(1)"); !errors.Is(err, spec.ErrBadState) {
		t.Errorf("bad state: err = %v, want ErrBadState", err)
	}
	// Equal value must NOT grow the register (strictly-greater semantics).
	s, r, err := m.Apply("2", "writeMax(2)")
	if err != nil || s != "2" || r != spec.Ack {
		t.Errorf("writeMax(2) on 2 = (%q, %q, %v), want no-op ack", s, r, err)
	}
	if s, _, _ := m.Apply("2", "writeMax(1)"); s != "2" {
		t.Errorf("writeMax(1) on 2 shrank the register to %q", s)
	}
	if s, _, _ := m.Apply("2", "writeMax(3)"); s != "3" {
		t.Errorf("writeMax(3) on 2 = %q, want 3", s)
	}
}

func TestReadOnlyName(t *testing.T) {
	if got := (ReadOnly{}).Name(); got != "read-only" {
		t.Errorf("Name() = %q", got)
	}
	if _, _, err := (ReadOnly{}).Apply("0", ""); !errors.Is(err, spec.ErrBadOp) {
		t.Errorf("empty op: err = %v, want ErrBadOp", err)
	}
}

func TestPeekQueueEdgeCases(t *testing.T) {
	q := NewPeekQueue(2)
	if got := q.Name(); got != "peek-queue(cap=2)" {
		t.Errorf("Name() = %q", got)
	}
	if got := len(q.Ops()); got != 2+len(q.Values) {
		t.Errorf("Ops() has %d entries, want deq+peek+%d enqueues", got, len(q.Values))
	}

	// Empty-queue observations: peek and deq both report empty and leave
	// the state untouched.
	for _, op := range []spec.Op{"peek", "deq"} {
		s, r, err := q.Apply("", op)
		if err != nil || s != "" || r != RespEmpty {
			t.Errorf("%s on empty = (%q, %q, %v), want (empty state, empty resp)", op, s, r, err)
		}
	}

	// Full-queue enqueue: rejected with RespFull, state untouched.
	full := "0,1"
	s, r, err := q.Apply(spec.State(full), "enq(1)")
	if err != nil || string(s) != full || r != RespFull {
		t.Errorf("enq on full = (%q, %q, %v), want (%q, full)", s, r, err, full)
	}

	// Malformed operations.
	for _, bad := range []spec.Op{"pop", "enq", "enq(a,b)", "deq(1)", "peek(1)", "("} {
		if _, _, err := q.Apply("", bad); err == nil {
			t.Errorf("op %q accepted on peek-queue", bad)
		}
	}

	// Peek is a pure partial read from EVERY reachable small state: the
	// footnote-3 property Figure 2 relies on.
	for _, st := range []spec.State{"", "0", "1,0", "0,1"} {
		s2, _, err := q.Apply(st, "peek")
		if err != nil || s2 != st {
			t.Errorf("peek mutated %q -> %q (%v)", st, s2, err)
		}
	}
}

// TestPeekQueueFrontStability pins the consensus-number-∞ mechanism: the
// first enqueued value stays at the front through any later enqueues and
// peeks, until dequeued — so the winner stays discoverable forever.
func TestPeekQueueFrontStability(t *testing.T) {
	q := NewPeekQueue(4)
	s := spec.State("")
	s, r, err := q.Apply(s, "enq(1)")
	if err != nil || r != spec.Ack {
		t.Fatalf("first enq: (%q, %v)", r, err)
	}
	for i := 0; i < 3; i++ {
		s, _, err = q.Apply(s, spec.Op(fmt.Sprintf("enq(%d)", i%2)))
		if err != nil {
			t.Fatal(err)
		}
		if _, front, _ := q.Apply(s, "peek"); front != "1" {
			t.Fatalf("front changed to %q after %d later enqueues", front, i+1)
		}
	}
	if _, got, _ := q.Apply(s, "deq"); got != "1" {
		t.Fatalf("deq returned %q, want the first-enqueued 1", got)
	}
}

// TestPeekQueueOpsForDistinctAlphabet checks the witness-search
// alphabet: n distinct enqueue values plus the two observations, with no
// duplicates (duplicate ops would blow up witness enumeration for free).
func TestPeekQueueOpsForDistinctAlphabet(t *testing.T) {
	q := NewPeekQueue(3)
	for _, n := range []int{2, 3, 5} {
		ops := q.OpsFor(n)
		if len(ops) != n+2 {
			t.Fatalf("OpsFor(%d) has %d ops, want %d", n, len(ops), n+2)
		}
		seen := map[spec.Op]bool{}
		for _, op := range ops {
			if seen[op] {
				t.Fatalf("OpsFor(%d) repeats %q", n, op)
			}
			seen[op] = true
		}
	}
}
