package types

import (
	"errors"
	"testing"

	"rcons/internal/spec"
)

// applyAll folds a sequence of operations over q0 and returns the final
// state and the sequence of responses.
func applyAll(t *testing.T, typ spec.Type, q0 spec.State, ops ...spec.Op) (spec.State, []spec.Response) {
	t.Helper()
	s := q0
	var rs []spec.Response
	for _, op := range ops {
		ns, r, err := typ.Apply(s, op)
		if err != nil {
			t.Fatalf("%s: apply %s to %q: %v", typ.Name(), op, s, err)
		}
		s, rs = ns, append(rs, r)
	}
	return s, rs
}

func TestRegisterSemantics(t *testing.T) {
	r := NewRegister()
	s, rs := applyAll(t, r, spec.State(Bottom), "write(0)", "write(1)")
	if s != "1" {
		t.Errorf("final state = %q, want 1", s)
	}
	for _, resp := range rs {
		if resp != spec.Ack {
			t.Errorf("write response = %q, want ack", resp)
		}
	}
	if _, _, err := r.Apply("0", "deq"); !errors.Is(err, spec.ErrBadOp) {
		t.Errorf("register accepted deq: %v", err)
	}
}

func TestRegisterOpsFor(t *testing.T) {
	r := NewRegister()
	ops := r.OpsFor(3)
	if len(ops) != 3 || ops[2] != "write(2)" {
		t.Errorf("OpsFor(3) = %v", ops)
	}
}

func TestTestAndSetSemantics(t *testing.T) {
	s, rs := applyAll(t, TestAndSet{}, "0", "tas", "tas")
	if s != "1" || rs[0] != "0" || rs[1] != "1" {
		t.Errorf("tas trace = state %q responses %v", s, rs)
	}
	if _, _, err := (TestAndSet{}).Apply("2", "tas"); !errors.Is(err, spec.ErrBadState) {
		t.Errorf("tas accepted bad state: %v", err)
	}
}

func TestFetchAddSemantics(t *testing.T) {
	f := NewFetchAdd(5)
	s, rs := applyAll(t, f, "0", "add(2)", "add(2)", "add(2)")
	if s != "1" { // 6 mod 5
		t.Errorf("final state = %q, want 1", s)
	}
	want := []spec.Response{"0", "2", "4"}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("response %d = %q, want %q", i, rs[i], want[i])
		}
	}
}

func TestSwapSemantics(t *testing.T) {
	sw := NewSwap()
	s, rs := applyAll(t, sw, spec.State(Bottom), "swap(0)", "swap(1)")
	if s != "1" || rs[0] != spec.Response(Bottom) || rs[1] != "0" {
		t.Errorf("swap trace = state %q responses %v", s, rs)
	}
}

func TestCASSemantics(t *testing.T) {
	c := NewCAS()
	s, rs := applyAll(t, c, spec.State(Bottom), "cas(_,0)", "cas(_,1)", "cas(0,1)")
	if s != "1" {
		t.Errorf("final state = %q, want 1", s)
	}
	want := []spec.Response{"true", "false", "true"}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("response %d = %q, want %q", i, rs[i], want[i])
		}
	}
}

func TestStickySemantics(t *testing.T) {
	st := NewSticky()
	s, rs := applyAll(t, st, spec.State(Bottom), "put(1)", "put(0)")
	if s != "1" || rs[0] != "1" || rs[1] != "1" {
		t.Errorf("sticky trace = state %q responses %v", s, rs)
	}
}

func TestCounterSemantics(t *testing.T) {
	c := NewCounter(3)
	s, _ := applyAll(t, c, "0", "inc", "inc", "inc")
	if s != "0" {
		t.Errorf("counter mod 3 after 3 incs = %q, want 0", s)
	}
}

func TestMaxRegisterSemantics(t *testing.T) {
	m := NewMaxRegister()
	s, _ := applyAll(t, m, "0", "writeMax(2)", "writeMax(1)", "writeMax(3)")
	if s != "3" {
		t.Errorf("max-register = %q, want 3", s)
	}
}

func TestReadOnlyRejectsEverything(t *testing.T) {
	if _, _, err := (ReadOnly{}).Apply("0", "inc"); !errors.Is(err, spec.ErrBadOp) {
		t.Errorf("read-only accepted an op: %v", err)
	}
	if got := len(ReadOnly{}.Ops()); got != 0 {
		t.Errorf("read-only has %d ops, want 0", got)
	}
}

func TestQueueSemantics(t *testing.T) {
	q := NewQueue(2)
	s, rs := applyAll(t, q, "", "enq(0)", "enq(1)", "enq(0)", "deq", "deq", "deq")
	if s != "" {
		t.Errorf("final state = %q, want empty", s)
	}
	want := []spec.Response{spec.Ack, spec.Ack, RespFull, "0", "1", RespEmpty}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("response %d = %q, want %q", i, rs[i], want[i])
		}
	}
}

func TestStackSemantics(t *testing.T) {
	st := NewStack(3)
	s, rs := applyAll(t, st, "", "push(0)", "push(1)", "pop", "pop", "pop")
	if s != "" {
		t.Errorf("final state = %q, want empty", s)
	}
	want := []spec.Response{spec.Ack, spec.Ack, "1", "0", RespEmpty}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("response %d = %q, want %q", i, rs[i], want[i])
		}
	}
}

func TestStackLIFOvsQueueFIFO(t *testing.T) {
	st, q := NewStack(4), NewQueue(4)
	sSt, rsSt := applyAll(t, st, "", "push(0)", "push(1)", "pop")
	sQ, rsQ := applyAll(t, q, "", "enq(0)", "enq(1)", "deq")
	if rsSt[2] != "1" || rsQ[2] != "0" {
		t.Errorf("LIFO/FIFO mismatch: pop=%q deq=%q", rsSt[2], rsQ[2])
	}
	if sSt != "0" || sQ != "1" {
		t.Errorf("states: stack=%q queue=%q", sSt, sQ)
	}
}

func TestConsensusObjectSemantics(t *testing.T) {
	c := NewConsensus()
	s, rs := applyAll(t, c, spec.State(Bottom), "propose(1)", "propose(0)")
	if s != "1" || rs[0] != "1" || rs[1] != "1" {
		t.Errorf("consensus trace = state %q responses %v", s, rs)
	}
}

func TestTnFigure5Trace(t *testing.T) {
	// Reproduce the Proposition 19 argument for n = 6: one opB followed
	// by ⌊6/2⌋ = 3 opA's returns the object from q0 to q0.
	tn := NewTn(6)
	s, rs := applyAll(t, tn, TnBottom, "opB", "opA", "opA", "opA")
	if s != TnBottom {
		t.Errorf("after opB + 3×opA state = %q, want %q", s, TnBottom)
	}
	// Every operation after the first must report the first team (B).
	for i, r := range rs {
		want := spec.Response("B")
		if r != want {
			t.Errorf("response %d = %q, want %q", i, r, want)
		}
	}
}

func TestTnForgetsAfterEnoughOpBs(t *testing.T) {
	// Symmetric direction: one opA then ⌈6/2⌉ = 3 opB's returns to q0.
	tn := NewTn(6)
	s, _ := applyAll(t, tn, TnBottom, "opA", "opB", "opB", "opB")
	if s != TnBottom {
		t.Errorf("after opA + 3×opB state = %q, want %q", s, TnBottom)
	}
}

func TestTnWinnerRecordsFirstUpdate(t *testing.T) {
	tn := NewTn(5)
	s, rs := applyAll(t, tn, TnBottom, "opA", "opB")
	if rs[0] != "A" || rs[1] != "A" {
		t.Errorf("responses = %v, want all A", rs)
	}
	if s != "A,1,0" {
		t.Errorf("state = %q, want A,1,0", s)
	}
}

func TestTnStateSpaceSize(t *testing.T) {
	tn := NewTn(6)
	states, err := spec.Reachable(tn, TnBottom, tn.Ops(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 1 bottom state + 2 winners × ⌈6/2⌉ rows × ⌊6/2⌋ cols = 19.
	if len(states) != 19 {
		t.Errorf("reachable states = %d, want 19", len(states))
	}
	if got := len(tn.InitialStates()); got != 19 {
		t.Errorf("InitialStates = %d, want 19", got)
	}
}

func TestSnFigure6Trace(t *testing.T) {
	sn := NewSn(3)
	// opA from (B,0) sets the winner to A.
	s, _ := applyAll(t, sn, SnInitial, "opA")
	if s != "A,0" {
		t.Errorf("opA from initial = %q, want A,0", s)
	}
	// Subsequent opB's count rows without clearing the winner …
	s, _ = applyAll(t, sn, "A,0", "opB", "opB")
	if s != "A,2" {
		t.Errorf("two opB = %q, want A,2", s)
	}
	// … until the n-th opB wraps and forgets.
	s, _ = applyAll(t, sn, "A,2", "opB")
	if s != SnInitial {
		t.Errorf("third opB = %q, want %q (forgotten)", s, SnInitial)
	}
}

func TestSnSecondOpAForgets(t *testing.T) {
	sn := NewSn(3)
	s, _ := applyAll(t, sn, SnInitial, "opA", "opA")
	if s != SnInitial {
		t.Errorf("double opA = %q, want %q", s, SnInitial)
	}
}

func TestSnOpBFirstKeepsWinnerB(t *testing.T) {
	sn := NewSn(4)
	s, _ := applyAll(t, sn, SnInitial, "opB", "opA")
	if s != SnInitial {
		t.Errorf("opB then opA = %q, want %q", s, SnInitial)
	}
	// And no sequence of ≤ n−1 opB's then one opA reaches an A-state.
	s, _ = applyAll(t, sn, SnInitial, "opB", "opB", "opB", "opA")
	if s != SnInitial {
		t.Errorf("3×opB then opA = %q, want %q", s, SnInitial)
	}
}

func TestReadableFlag(t *testing.T) {
	if Readable(NewQueue(4)) {
		t.Error("plain queue reported readable")
	}
	if Readable(NewStack(4)) {
		t.Error("plain stack reported readable")
	}
	if !Readable(&Stack{Cap: 4, Values: []string{"0"}, AllowRead: true}) {
		t.Error("readable stack reported non-readable")
	}
	if !Readable(NewRegister()) || !Readable(NewTn(5)) {
		t.Error("readable types reported non-readable")
	}
}

func TestZooAllApplyTotalOnReachableStates(t *testing.T) {
	// Determinism/totality smoke test: every op applies successfully to
	// every reachable state of every zoo type.
	for _, typ := range Zoo() {
		ops := spec.CandidateOps(typ, 4)
		for _, q0 := range typ.InitialStates() {
			states, err := spec.Reachable(typ, q0, ops, 100000)
			if err != nil {
				t.Fatalf("%s: %v", typ.Name(), err)
			}
			for _, s := range states {
				for _, op := range ops {
					if _, _, err := typ.Apply(s, op); err != nil {
						t.Fatalf("%s: apply %s to %q: %v", typ.Name(), op, s, err)
					}
				}
			}
		}
	}
}

func TestZooDeterminism(t *testing.T) {
	for _, typ := range Zoo() {
		for _, q0 := range typ.InitialStates() {
			for _, op := range spec.CandidateOps(typ, 4) {
				s1, r1, err1 := typ.Apply(q0, op)
				s2, r2, err2 := typ.Apply(q0, op)
				if s1 != s2 || r1 != r2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s: nondeterministic Apply(%q, %s)", typ.Name(), q0, op)
				}
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{
		"register", "tas", "faa", "swap", "cas", "sticky", "counter",
		"maxreg", "queue", "stack", "readable-queue", "readable-stack",
		"consensus", "read-only", "T_5", "S_3", "S_1",
	} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	for _, name := range []string{"bogus", "T_3", "T_x", "S_0"} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) unexpectedly succeeded", name)
		}
	}
}

func TestHerlihyCommuteOverwriteFacts(t *testing.T) {
	// Classical facts the impossibility arguments rely on.
	reg := NewRegister()
	ok, err := spec.Overwrites(reg, spec.State(Bottom), "write(1)", "write(0)")
	if err != nil || !ok {
		t.Errorf("write(1) should overwrite write(0): %v %v", ok, err)
	}
	cnt := NewCounter(8)
	ok, err = spec.Commute(cnt, "0", "inc", "inc")
	if err != nil || !ok {
		t.Errorf("increments should commute: %v %v", ok, err)
	}
	st := NewStack(4)
	ok, err = spec.Commute(st, "", "pop", "pop")
	if err != nil || !ok {
		t.Errorf("pops on an empty stack should commute: %v %v", ok, err)
	}
	ok, err = spec.Overwrites(st, "", "push(1)", "pop")
	if err != nil || !ok {
		t.Errorf("push should overwrite pop from the empty stack: %v %v", ok, err)
	}
}

func TestPeekQueueSemantics(t *testing.T) {
	q := NewPeekQueue(2)
	s, rs := applyAll(t, q, "", "peek", "enq(0)", "peek", "enq(1)", "enq(1)", "peek", "deq", "peek")
	if s != "1" {
		t.Errorf("final state = %q, want 1", s)
	}
	want := []spec.Response{RespEmpty, spec.Ack, "0", spec.Ack, RespFull, "0", "0", "1"}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("response %d = %q, want %q", i, rs[i], want[i])
		}
	}
}

func TestPeekQueueIsReadable(t *testing.T) {
	if !Readable(NewPeekQueue(4)) {
		t.Error("peek-queue reported non-readable")
	}
}

func TestPeekQueuePeekDoesNotMutate(t *testing.T) {
	q := NewPeekQueue(4)
	s0 := spec.State("0,1")
	s1, _, err := q.Apply(s0, "peek")
	if err != nil || s1 != s0 {
		t.Errorf("peek mutated state: %q -> %q (%v)", s0, s1, err)
	}
}
