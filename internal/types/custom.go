package types

import (
	"encoding/json"
	"fmt"
	"sort"

	"rcons/internal/spec"
)

// Custom is a user-defined deterministic type given by an explicit
// transition table, loadable from JSON. It lets downstream users ask
// "where does MY type sit in the recoverable consensus hierarchy?"
// through cmd/rcons without writing Go:
//
//	{
//	  "name": "my-type",
//	  "initial": ["q0"],
//	  "transitions": {
//	    "q0": {"opA": {"next": "q1", "resp": "A"},
//	           "opB": {"next": "q2", "resp": "B"}},
//	    "q1": {"opA": {"next": "q1", "resp": "A"},
//	           "opB": {"next": "q1", "resp": "A"}},
//	    "q2": {"opA": {"next": "q2", "resp": "B"},
//	           "opB": {"next": "q2", "resp": "B"}}
//	  }
//	}
//
// Every state must define every operation (the table must be total), and
// all successor states must themselves have rows — Validate checks both,
// so checker searches can never fall off the table.
type Custom struct {
	// TypeName is the display name.
	TypeName string `json:"name"`
	// Initial lists the candidate initial states for witness searches;
	// when empty, all states are candidates.
	Initial []string `json:"initial"`
	// Transitions maps state → operation → (next state, response).
	Transitions map[string]map[string]CustomEdge `json:"transitions"`
	// ReadableFlag marks the type readable (default true via
	// NewCustomFromJSON; Theorems 3/8 require it).
	ReadableFlag *bool `json:"readable"`
}

// CustomEdge is one transition of a Custom type.
type CustomEdge struct {
	Next string `json:"next"`
	Resp string `json:"resp"`
}

var (
	_ spec.Type   = (*Custom)(nil)
	_ NonReadable = (*Custom)(nil)
)

// NewCustomFromJSON parses and validates a JSON transition table.
func NewCustomFromJSON(data []byte) (*Custom, error) {
	var c Custom
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("types: parse custom type: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks the table is non-empty, total, and closed.
func (c *Custom) Validate() error {
	if c.TypeName == "" {
		return fmt.Errorf("types: custom type needs a name")
	}
	if len(c.Transitions) == 0 {
		return fmt.Errorf("types: custom type %q has no states", c.TypeName)
	}
	ops := c.opSet()
	if len(ops) == 0 {
		return fmt.Errorf("types: custom type %q has no operations", c.TypeName)
	}
	for state, row := range c.Transitions {
		for _, op := range ops {
			edge, ok := row[op]
			if !ok {
				return fmt.Errorf("types: custom type %q: state %q missing operation %q (the table must be total)",
					c.TypeName, state, op)
			}
			if _, ok := c.Transitions[edge.Next]; !ok {
				return fmt.Errorf("types: custom type %q: state %q op %q leads to unknown state %q",
					c.TypeName, state, op, edge.Next)
			}
		}
		if len(row) != len(ops) {
			return fmt.Errorf("types: custom type %q: state %q defines %d ops, others define %d",
				c.TypeName, state, len(row), len(ops))
		}
	}
	for _, init := range c.Initial {
		if _, ok := c.Transitions[init]; !ok {
			return fmt.Errorf("types: custom type %q: initial state %q not in the table", c.TypeName, init)
		}
	}
	return nil
}

// opSet returns the operation alphabet (from an arbitrary row; Validate
// enforces totality).
func (c *Custom) opSet() []string {
	for _, row := range c.Transitions {
		ops := make([]string, 0, len(row))
		for op := range row {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		return ops
	}
	return nil
}

// Name implements spec.Type.
func (c *Custom) Name() string { return c.TypeName }

// NonReadable implements the marker; Readable() consults ReadableFlag.
func (c *Custom) NonReadable() {}

// IsReadable reports the declared readability (default true).
func (c *Custom) IsReadable() bool { return c.ReadableFlag == nil || *c.ReadableFlag }

// InitialStates implements spec.Type.
func (c *Custom) InitialStates() []spec.State {
	names := c.Initial
	if len(names) == 0 {
		names = make([]string, 0, len(c.Transitions))
		for s := range c.Transitions {
			names = append(names, s)
		}
		sort.Strings(names)
	}
	out := make([]spec.State, len(names))
	for i, s := range names {
		out[i] = spec.State(s)
	}
	return out
}

// Ops implements spec.Type.
func (c *Custom) Ops() []spec.Op {
	ops := c.opSet()
	out := make([]spec.Op, len(ops))
	for i, o := range ops {
		out[i] = spec.Op(o)
	}
	return out
}

// Apply implements spec.Type.
func (c *Custom) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	row, ok := c.Transitions[string(s)]
	if !ok {
		return "", "", fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	edge, ok := row[string(op)]
	if !ok {
		return "", "", fmt.Errorf("%w: %s does not support %q", spec.ErrBadOp, c.TypeName, op)
	}
	return spec.State(edge.Next), spec.Response(edge.Resp), nil
}
