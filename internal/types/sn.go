package types

import (
	"fmt"
	"strings"

	"rcons/internal/spec"
)

// Sn is the family of Proposition 21 / Figure 6 of the paper: for every
// n ≥ 2, S_n satisfies rcons(S_n) = cons(S_n) = n — it is n-recording but
// not (n+1)-discerning. The family shows every level of the RC hierarchy
// is populated.
//
// State encoding: "winner,row" with winner ∈ {A, B} and 0 ≤ row < n.
//
// Operations (Figure 6 pseudocode, executed atomically):
//
//	opA: if (winner,row) = (B,0) { winner ← A } else { winner ← B; row ← 0 }
//	     return ack
//	opB: row ← (row+1) mod n; if row = 0 { winner ← B }
//	     return ack
//
// winner records whether the first update was opA; row counts opB
// applications. Applying opA more than once, or opB more than n−1 times,
// makes the object "forget" by returning to (B, 0).
type Sn struct {
	// N is the family parameter; it must be at least 2.
	N int
}

var _ spec.Type = Sn{}

// NewSn returns the type S_n.
func NewSn(n int) Sn { return Sn{N: n} }

// Name implements spec.Type.
func (t Sn) Name() string { return fmt.Sprintf("S_%d", t.N) }

// SnInitial is the initial state (B, 0) used by the paper's witness.
const SnInitial spec.State = "B,0"

// InitialStates implements spec.Type: the full state space.
func (t Sn) InitialStates() []spec.State {
	out := make([]spec.State, 0, 2*t.N)
	for _, w := range []string{"A", "B"} {
		for row := 0; row < t.N; row++ {
			out = append(out, snEncode(w, row))
		}
	}
	return out
}

// Ops implements spec.Type.
func (t Sn) Ops() []spec.Op { return []spec.Op{"opA", "opB"} }

func snEncode(winner string, row int) spec.State {
	return spec.State(fmt.Sprintf("%s,%d", winner, row))
}

func snDecode(s spec.State) (winner string, row int, err error) {
	parts := strings.Split(string(s), ",")
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	row, ok := atoi(parts[1])
	if !ok {
		return "", 0, fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	if parts[0] != "A" && parts[0] != "B" {
		return "", 0, fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	return parts[0], row, nil
}

// Apply implements spec.Type, transcribing Figure 6 verbatim.
func (t Sn) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	winner, row, err := snDecode(s)
	if err != nil {
		return "", "", err
	}
	if row < 0 || row >= t.N {
		return "", "", fmt.Errorf("%w: %q out of range for %s", spec.ErrBadState, s, t.Name())
	}
	switch op {
	case "opA":
		if winner == "B" && row == 0 {
			return snEncode("A", row), spec.Ack, nil
		}
		return snEncode("B", 0), spec.Ack, nil
	case "opB":
		row = (row + 1) % t.N
		if row == 0 {
			winner = "B"
		}
		return snEncode(winner, row), spec.Ack, nil
	default:
		return "", "", fmt.Errorf("%w: %s does not support %q", spec.ErrBadOp, t.Name(), op)
	}
}
