package types

import (
	"fmt"
	"strconv"
	"strings"

	"rcons/internal/spec"
)

// Zoo returns one representative instance of every type in the package,
// with parameters sized so that checker searches complete quickly.
func Zoo() []spec.Type {
	return []spec.Type{
		NewRegister(),
		TestAndSet{},
		NewFetchAdd(8),
		NewSwap(),
		NewCAS(),
		NewSticky(),
		NewCounter(8),
		NewMaxRegister(),
		NewQueue(4),
		NewStack(4),
		NewPeekQueue(4),
		&Queue{Cap: 4, Values: []string{"0", "1"}, AllowRead: true},
		&Stack{Cap: 4, Values: []string{"0", "1"}, AllowRead: true},
		NewConsensus(),
		ReadOnly{},
		NewTn(4),
		NewTn(5),
		NewTn(6),
		NewSn(2),
		NewSn(3),
		NewSn(4),
		NewSn(5),
	}
}

// ByName resolves a type by the name syntax used by the CLI tools:
// plain names ("register", "cas", "test&set", "tas", "fetch&add", "swap",
// "sticky", "counter", "max-register", "queue", "stack",
// "readable-queue", "readable-stack", "consensus", "read-only") and
// parameterized family members ("T_5", "S_3").
func ByName(name string) (spec.Type, error) {
	switch strings.ToLower(name) {
	case "register":
		return NewRegister(), nil
	case "test&set", "tas":
		return TestAndSet{}, nil
	case "fetch&add", "faa":
		return NewFetchAdd(8), nil
	case "swap":
		return NewSwap(), nil
	case "cas", "compare&swap":
		return NewCAS(), nil
	case "sticky":
		return NewSticky(), nil
	case "counter":
		return NewCounter(8), nil
	case "max-register", "maxreg":
		return NewMaxRegister(), nil
	case "queue":
		return NewQueue(4), nil
	case "stack":
		return NewStack(4), nil
	case "peek-queue", "peekqueue":
		return NewPeekQueue(4), nil
	case "readable-queue":
		return &Queue{Cap: 4, Values: []string{"0", "1"}, AllowRead: true}, nil
	case "readable-stack":
		return &Stack{Cap: 4, Values: []string{"0", "1"}, AllowRead: true}, nil
	case "consensus", "consensus-object":
		return NewConsensus(), nil
	case "read-only", "readonly":
		return ReadOnly{}, nil
	}
	if rest, ok := strings.CutPrefix(name, "T_"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 4 {
			return nil, fmt.Errorf("types: bad T_n parameter %q (need integer ≥ 4)", rest)
		}
		return NewTn(n), nil
	}
	if rest, ok := strings.CutPrefix(name, "S_"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("types: bad S_n parameter %q (need integer ≥ 1)", rest)
		}
		if n == 1 {
			return ReadOnly{}, nil
		}
		return NewSn(n), nil
	}
	return nil, fmt.Errorf("types: unknown type %q", name)
}
