package types

import (
	"fmt"

	"rcons/internal/spec"
)

// Counter is an increment-only counter modulo Mod.
// State encoding: decimal value. Operations: inc with response Ack.
//
// Classification: cons(counter) = 1; increments commute, so the counter
// is not 2-discerning.
type Counter struct {
	// Mod is the modulus; it must be at least 2.
	Mod int
}

var _ spec.Type = (*Counter)(nil)

// NewCounter returns a counter modulo mod.
func NewCounter(mod int) *Counter { return &Counter{Mod: mod} }

// Name implements spec.Type.
func (c *Counter) Name() string { return fmt.Sprintf("counter(mod=%d)", c.Mod) }

// InitialStates implements spec.Type.
func (c *Counter) InitialStates() []spec.State { return []spec.State{"0"} }

// Ops implements spec.Type.
func (c *Counter) Ops() []spec.Op { return []spec.Op{"inc"} }

// Apply implements spec.Type.
func (c *Counter) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	if op != "inc" {
		return "", "", fmt.Errorf("%w: counter does not support %q", spec.ErrBadOp, op)
	}
	v, ok := atoi(string(s))
	if !ok || v < 0 || v >= c.Mod {
		return "", "", fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	return spec.State(itoa((v + 1) % c.Mod)), spec.Ack, nil
}

// MaxRegister is a register that only grows: writeMax(v) replaces the
// state with v if v is larger.
// State encoding: decimal value. Operations: writeMax(v) with response Ack.
//
// Classification: cons(max-register) = 1; writeMax operations commute or
// overwrite from every state.
type MaxRegister struct {
	// Values are the candidate arguments for witness searches.
	Values []int
}

var _ spec.Type = (*MaxRegister)(nil)

// NewMaxRegister returns a max-register with candidate values {1, 2, 3}.
func NewMaxRegister() *MaxRegister { return &MaxRegister{Values: []int{1, 2, 3}} }

// Name implements spec.Type.
func (m *MaxRegister) Name() string { return "max-register" }

// InitialStates implements spec.Type.
func (m *MaxRegister) InitialStates() []spec.State { return []spec.State{"0"} }

// Ops implements spec.Type.
func (m *MaxRegister) Ops() []spec.Op {
	out := make([]spec.Op, 0, len(m.Values))
	for _, v := range m.Values {
		out = append(out, spec.FormatOp("writeMax", itoa(v)))
	}
	return out
}

// Apply implements spec.Type.
func (m *MaxRegister) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	if name != "writeMax" || len(args) != 1 {
		return "", "", fmt.Errorf("%w: max-register does not support %q", spec.ErrBadOp, op)
	}
	v, ok := atoi(args[0])
	if !ok {
		return "", "", fmt.Errorf("%w: bad value in %q", spec.ErrBadOp, op)
	}
	cur, ok := atoi(string(s))
	if !ok {
		return "", "", fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	if v > cur {
		return spec.State(itoa(v)), spec.Ack, nil
	}
	return s, spec.Ack, nil
}

// ReadOnly is the trivial type S_1 of Proposition 21: it supports no
// update operations at all, so its objects never change state.
//
// Classification: rcons(S_1) = cons(S_1) = 1.
type ReadOnly struct{}

var _ spec.Type = ReadOnly{}

// Name implements spec.Type.
func (ReadOnly) Name() string { return "read-only" }

// InitialStates implements spec.Type.
func (ReadOnly) InitialStates() []spec.State { return []spec.State{"0"} }

// Ops implements spec.Type.
func (ReadOnly) Ops() []spec.Op { return nil }

// Apply implements spec.Type.
func (ReadOnly) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	return "", "", fmt.Errorf("%w: read-only type has no update operations (got %q)", spec.ErrBadOp, op)
}
