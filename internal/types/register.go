package types

import (
	"fmt"

	"rcons/internal/spec"
)

// Bottom encodes the distinguished "unwritten" value ⊥ used by several
// types' initial states.
const Bottom = "_"

// Register is a read/write register over an arbitrary value alphabet.
// State encoding: the current value (Bottom when unwritten).
// Operations: write(v) with response Ack.
//
// Classification (paper §1, folklore): cons(register) = 1 and
// rcons(register) = 1; any two writes commute or overwrite, so the
// checker finds it not even 2-discerning.
type Register struct {
	// Values is the candidate alphabet offered to witness searches when
	// OpsFor is not used. Defaults (via NewRegister) to {"0", "1"}.
	Values []string
}

var (
	_ spec.Type    = (*Register)(nil)
	_ spec.OpsForN = (*Register)(nil)
)

// NewRegister returns a register with the default two-value alphabet.
func NewRegister() *Register { return &Register{Values: []string{"0", "1"}} }

// Name implements spec.Type.
func (r *Register) Name() string { return "register" }

// InitialStates implements spec.Type.
func (r *Register) InitialStates() []spec.State {
	out := []spec.State{Bottom}
	for _, v := range r.Values {
		out = append(out, spec.State(v))
	}
	return out
}

// Ops implements spec.Type.
func (r *Register) Ops() []spec.Op {
	out := make([]spec.Op, 0, len(r.Values))
	for _, v := range r.Values {
		out = append(out, spec.FormatOp("write", v))
	}
	return out
}

// OpsFor implements spec.OpsForN: n distinct written values.
func (r *Register) OpsFor(n int) []spec.Op {
	out := make([]spec.Op, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, spec.FormatOp("write", itoa(i)))
	}
	return out
}

// Apply implements spec.Type.
func (r *Register) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	if name != "write" || len(args) != 1 {
		return "", "", fmt.Errorf("%w: register does not support %q", spec.ErrBadOp, op)
	}
	return spec.State(args[0]), spec.Ack, nil
}
