package types

import (
	"fmt"
	"strings"

	"rcons/internal/spec"
)

// Tn is the separating family of Proposition 19 / Figure 5 of the paper:
// for every n ≥ 4, T_n is n-discerning (so cons(T_n) = n) but NOT
// (n-1)-recording (so rcons(T_n) < cons(T_n)).
//
// State encoding: "winner,row,col" with winner ∈ {A, B, _}, where "_"
// stands for the paper's ⊥; 0 ≤ row < ⌈n/2⌉ and 0 ≤ col < ⌊n/2⌋, and the
// only reachable state with winner = "_" is "_,0,0".
//
// Operations (Figure 5 pseudocode, executed atomically):
//
//	opA: if winner = ⊥ { winner ← A; return A }
//	     else { r ← winner; col ← (col+1) mod ⌊n/2⌋;
//	            if col = 0 { winner ← ⊥; row ← 0 }; return r }
//	opB: if winner = ⊥ { winner ← B; return B }
//	     else { r ← winner; row ← (row+1) mod ⌈n/2⌉;
//	            if row = 0 { winner ← ⊥; col ← 0 }; return r }
//
// Intuitively winner records which operation was applied first, col counts
// opA applications and row counts opB applications; after ⌊n/2⌋ further
// opA's (or ⌈n/2⌉ further opB's) the object "forgets" everything by
// returning to ⊥ — which is exactly what defeats the (n-1)-recording
// property while leaving n-discerning intact.
type Tn struct {
	// N is the family parameter; it must be at least 4.
	N int
}

var _ spec.Type = Tn{}

// NewTn returns the type T_n.
func NewTn(n int) Tn { return Tn{N: n} }

// Name implements spec.Type.
func (t Tn) Name() string { return fmt.Sprintf("T_%d", t.N) }

// rows returns ⌈n/2⌉, the modulus of the row counter.
func (t Tn) rows() int { return (t.N + 1) / 2 }

// cols returns ⌊n/2⌋, the modulus of the col counter.
func (t Tn) cols() int { return t.N / 2 }

// TnBottom is the encoding of T_n's distinguished state (⊥, 0, 0).
const TnBottom spec.State = "_,0,0"

// InitialStates implements spec.Type: the full state space, so that
// exhaustive impossibility searches consider every possible q0.
func (t Tn) InitialStates() []spec.State {
	out := []spec.State{TnBottom}
	for _, w := range []string{"A", "B"} {
		for row := 0; row < t.rows(); row++ {
			for col := 0; col < t.cols(); col++ {
				out = append(out, tnEncode(w, row, col))
			}
		}
	}
	return out
}

// Ops implements spec.Type.
func (t Tn) Ops() []spec.Op { return []spec.Op{"opA", "opB"} }

func tnEncode(winner string, row, col int) spec.State {
	return spec.State(fmt.Sprintf("%s,%d,%d", winner, row, col))
}

func tnDecode(s spec.State) (winner string, row, col int, err error) {
	parts := strings.Split(string(s), ",")
	if len(parts) != 3 {
		return "", 0, 0, fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	row, ok1 := atoi(parts[1])
	col, ok2 := atoi(parts[2])
	if !ok1 || !ok2 {
		return "", 0, 0, fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	switch parts[0] {
	case "A", "B", "_":
		return parts[0], row, col, nil
	default:
		return "", 0, 0, fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
}

// Apply implements spec.Type, transcribing Figure 5 verbatim.
func (t Tn) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	winner, row, col, err := tnDecode(s)
	if err != nil {
		return "", "", err
	}
	if row < 0 || row >= t.rows() || col < 0 || col >= t.cols() {
		return "", "", fmt.Errorf("%w: %q out of range for %s", spec.ErrBadState, s, t.Name())
	}
	switch op {
	case "opA":
		if winner == "_" {
			return tnEncode("A", row, col), "A", nil
		}
		result := winner
		col = (col + 1) % t.cols()
		if col == 0 {
			winner = "_"
			row = 0
		}
		return tnEncode(winner, row, col), spec.Response(result), nil
	case "opB":
		if winner == "_" {
			return tnEncode("B", row, col), "B", nil
		}
		result := winner
		row = (row + 1) % t.rows()
		if row == 0 {
			winner = "_"
			col = 0
		}
		return tnEncode(winner, row, col), spec.Response(result), nil
	default:
		return "", "", fmt.Errorf("%w: %s does not support %q", spec.ErrBadOp, t.Name(), op)
	}
}
