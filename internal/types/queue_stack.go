package types

import (
	"fmt"
	"strings"

	"rcons/internal/spec"
)

const (
	// RespEmpty is returned by deq/pop on an empty container.
	RespEmpty = "empty"
	// RespFull is returned by enq/push on a full container (the bounded
	// containers reject, rather than silently drop, overflowing items so
	// that the specification stays deterministic and finite-state).
	RespFull = "full"
)

// seqState encodes a bounded sequence of values as a comma-separated
// string; the empty sequence is "".
func seqEncode(items []string) spec.State {
	return spec.State(strings.Join(items, ","))
}

func seqDecode(s spec.State) []string {
	if s == "" {
		return nil
	}
	return strings.Split(string(s), ",")
}

// Queue is a bounded FIFO queue over a small value alphabet. The paper's
// Appendix H discusses the plain (non-readable) queue, whose consensus
// number is 2 and whose independent-crash RC number is 1.
//
// State encoding: comma-separated items, front first ("" when empty).
// Operations: enq(v) responding Ack (or RespFull), and deq responding with
// the removed front item (or RespEmpty).
//
// A Queue is NonReadable by default, matching Appendix H; set
// AllowRead to model the much stronger readable variant, whose full state
// records the order of the first enqueues forever (the checker shows the
// readable queue is n-recording for every n).
type Queue struct {
	// Cap bounds the number of stored items; must be at least 2.
	Cap int
	// Values is the candidate enqueue alphabet for witness searches.
	Values []string
	// AllowRead, if set, marks the queue readable.
	AllowRead bool
}

var (
	_ spec.Type   = (*Queue)(nil)
	_ NonReadable = (*Queue)(nil)
)

// NewQueue returns a non-readable bounded queue with alphabet {"0", "1"}.
func NewQueue(capacity int) *Queue {
	return &Queue{Cap: capacity, Values: []string{"0", "1"}}
}

// Name implements spec.Type.
func (q *Queue) Name() string {
	if q.AllowRead {
		return fmt.Sprintf("readable-queue(cap=%d)", q.Cap)
	}
	return fmt.Sprintf("queue(cap=%d)", q.Cap)
}

// NonReadable implements the NonReadable marker; Readable() honours
// AllowRead through the types.Readable helper.
func (q *Queue) NonReadable() {}

// InitialStates implements spec.Type: the empty queue and queues holding
// one or two alphabet items (used by impossibility searches).
func (q *Queue) InitialStates() []spec.State {
	out := []spec.State{""}
	for _, v := range q.Values {
		out = append(out, seqEncode([]string{v}))
	}
	if len(q.Values) >= 2 {
		out = append(out, seqEncode([]string{q.Values[0], q.Values[1]}))
	}
	return out
}

// Ops implements spec.Type.
func (q *Queue) Ops() []spec.Op {
	out := []spec.Op{"deq"}
	for _, v := range q.Values {
		out = append(out, spec.FormatOp("enq", v))
	}
	return out
}

// Apply implements spec.Type.
func (q *Queue) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	items := seqDecode(s)
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	switch {
	case name == "enq" && len(args) == 1:
		if len(items) >= q.Cap {
			return s, RespFull, nil
		}
		return seqEncode(append(items, args[0])), spec.Ack, nil
	case name == "deq" && len(args) == 0:
		if len(items) == 0 {
			return s, RespEmpty, nil
		}
		return seqEncode(items[1:]), spec.Response(items[0]), nil
	default:
		return "", "", fmt.Errorf("%w: queue does not support %q", spec.ErrBadOp, op)
	}
}

// Stack is a bounded LIFO stack over a small value alphabet — the central
// example of the paper's Appendix H, which proves rcons(stack) = 1 while
// cons(stack) = 2.
//
// State encoding: comma-separated items, bottom first ("" when empty).
// Operations: push(v) responding Ack (or RespFull), and pop responding
// with the removed top item (or RespEmpty).
//
// A Stack is NonReadable by default; set AllowRead for the readable
// variant (which the checker shows to be n-recording for every n,
// illustrating how essential non-readability is to Appendix H).
type Stack struct {
	// Cap bounds the number of stored items; must be at least 2.
	Cap int
	// Values is the candidate push alphabet for witness searches.
	Values []string
	// AllowRead, if set, marks the stack readable.
	AllowRead bool
}

var (
	_ spec.Type   = (*Stack)(nil)
	_ NonReadable = (*Stack)(nil)
)

// NewStack returns a non-readable bounded stack with alphabet {"0", "1"}.
func NewStack(capacity int) *Stack {
	return &Stack{Cap: capacity, Values: []string{"0", "1"}}
}

// Name implements spec.Type.
func (st *Stack) Name() string {
	if st.AllowRead {
		return fmt.Sprintf("readable-stack(cap=%d)", st.Cap)
	}
	return fmt.Sprintf("stack(cap=%d)", st.Cap)
}

// NonReadable implements the NonReadable marker.
func (st *Stack) NonReadable() {}

// InitialStates implements spec.Type.
func (st *Stack) InitialStates() []spec.State {
	out := []spec.State{""}
	for _, v := range st.Values {
		out = append(out, seqEncode([]string{v}))
	}
	if len(st.Values) >= 2 {
		out = append(out, seqEncode([]string{st.Values[0], st.Values[1]}))
	}
	return out
}

// Ops implements spec.Type.
func (st *Stack) Ops() []spec.Op {
	out := []spec.Op{"pop"}
	for _, v := range st.Values {
		out = append(out, spec.FormatOp("push", v))
	}
	return out
}

// Apply implements spec.Type.
func (st *Stack) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	items := seqDecode(s)
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	switch {
	case name == "push" && len(args) == 1:
		if len(items) >= st.Cap {
			return s, RespFull, nil
		}
		return seqEncode(append(items, args[0])), spec.Ack, nil
	case name == "pop" && len(args) == 0:
		if len(items) == 0 {
			return s, RespEmpty, nil
		}
		top := items[len(items)-1]
		return seqEncode(items[:len(items)-1]), spec.Response(top), nil
	default:
		return "", "", fmt.Errorf("%w: stack does not support %q", spec.ErrBadOp, op)
	}
}

// Consensus is a consensus object: propose(v) installs v if the object is
// undecided and responds with the decided value either way.
// State encoding: decided value, Bottom when undecided.
//
// Classification: cons = rcons = ∞; it is the strongest type in the zoo
// and serves as a sanity anchor for the checkers.
type Consensus struct {
	// Values is the candidate proposal alphabet for witness searches.
	Values []string
}

var (
	_ spec.Type    = (*Consensus)(nil)
	_ spec.OpsForN = (*Consensus)(nil)
)

// NewConsensus returns a consensus object with the default alphabet.
func NewConsensus() *Consensus { return &Consensus{Values: []string{"0", "1"}} }

// Name implements spec.Type.
func (c *Consensus) Name() string { return "consensus-object" }

// InitialStates implements spec.Type.
func (c *Consensus) InitialStates() []spec.State { return []spec.State{Bottom} }

// Ops implements spec.Type.
func (c *Consensus) Ops() []spec.Op {
	out := make([]spec.Op, 0, len(c.Values))
	for _, v := range c.Values {
		out = append(out, spec.FormatOp("propose", v))
	}
	return out
}

// OpsFor implements spec.OpsForN: n distinct proposals.
func (c *Consensus) OpsFor(n int) []spec.Op {
	out := make([]spec.Op, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, spec.FormatOp("propose", itoa(i)))
	}
	return out
}

// Apply implements spec.Type.
func (c *Consensus) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	if name != "propose" || len(args) != 1 {
		return "", "", fmt.Errorf("%w: consensus object does not support %q", spec.ErrBadOp, op)
	}
	if s == Bottom {
		return spec.State(args[0]), spec.Response(args[0]), nil
	}
	return s, spec.Response(s), nil
}
