package types

import (
	"fmt"

	"rcons/internal/spec"
)

// TestAndSet is a one-shot bit with the classical test&set operation.
// State encoding: "0" (clear) or "1" (set).
// Operations: tas, which sets the bit and responds with the old value.
//
// Classification: cons(test&set) = 2 (Herlihy); the checker shows it is
// 2-discerning but not 2-recording, so rcons ∈ {1, 2} by the paper's
// bounds (the exact value is outside the paper's scope).
type TestAndSet struct{}

var _ spec.Type = TestAndSet{}

// Name implements spec.Type.
func (TestAndSet) Name() string { return "test&set" }

// InitialStates implements spec.Type.
func (TestAndSet) InitialStates() []spec.State { return []spec.State{"0", "1"} }

// Ops implements spec.Type.
func (TestAndSet) Ops() []spec.Op { return []spec.Op{"tas"} }

// Apply implements spec.Type.
func (TestAndSet) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	if op != "tas" {
		return "", "", fmt.Errorf("%w: test&set does not support %q", spec.ErrBadOp, op)
	}
	switch s {
	case "0":
		return "1", "0", nil
	case "1":
		return "1", "1", nil
	default:
		return "", "", fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
}

// FetchAdd is a fetch&add object over the integers modulo Mod (bounding
// the state space keeps checker searches finite; Mod ≥ 2n suffices for
// all classification results at n processes).
// State encoding: decimal value. Operations: add(k), responding with the
// value before the addition.
//
// Classification: cons(fetch&add) = 2.
type FetchAdd struct {
	// Mod is the modulus of the counter; it must be at least 2.
	Mod int
	// Addends are the candidate increments offered to witness searches.
	Addends []int
}

var _ spec.Type = (*FetchAdd)(nil)

// NewFetchAdd returns a fetch&add object modulo mod with increments {1, 2}.
func NewFetchAdd(mod int) *FetchAdd { return &FetchAdd{Mod: mod, Addends: []int{1, 2}} }

// Name implements spec.Type.
func (f *FetchAdd) Name() string { return fmt.Sprintf("fetch&add(mod=%d)", f.Mod) }

// InitialStates implements spec.Type.
func (f *FetchAdd) InitialStates() []spec.State { return []spec.State{"0"} }

// Ops implements spec.Type.
func (f *FetchAdd) Ops() []spec.Op {
	out := make([]spec.Op, 0, len(f.Addends))
	for _, k := range f.Addends {
		out = append(out, spec.FormatOp("add", itoa(k)))
	}
	return out
}

// Apply implements spec.Type.
func (f *FetchAdd) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	if name != "add" || len(args) != 1 {
		return "", "", fmt.Errorf("%w: fetch&add does not support %q", spec.ErrBadOp, op)
	}
	k, ok := atoi(args[0])
	if !ok {
		return "", "", fmt.Errorf("%w: bad addend in %q", spec.ErrBadOp, op)
	}
	v, ok := atoi(string(s))
	if !ok || v < 0 || v >= f.Mod {
		return "", "", fmt.Errorf("%w: %q", spec.ErrBadState, s)
	}
	return spec.State(itoa(((v+k)%f.Mod + f.Mod) % f.Mod)), spec.Response(itoa(v)), nil
}

// Swap is a register with an atomic swap operation.
// State encoding: current value (Bottom when unwritten).
// Operations: swap(v), responding with the old value.
//
// Classification: cons(swap) = 2.
type Swap struct {
	// Values is the candidate alphabet for witness searches.
	Values []string
}

var (
	_ spec.Type    = (*Swap)(nil)
	_ spec.OpsForN = (*Swap)(nil)
)

// NewSwap returns a swap register with the default two-value alphabet.
func NewSwap() *Swap { return &Swap{Values: []string{"0", "1"}} }

// Name implements spec.Type.
func (s *Swap) Name() string { return "swap" }

// InitialStates implements spec.Type.
func (s *Swap) InitialStates() []spec.State {
	out := []spec.State{Bottom}
	for _, v := range s.Values {
		out = append(out, spec.State(v))
	}
	return out
}

// Ops implements spec.Type.
func (s *Swap) Ops() []spec.Op {
	out := make([]spec.Op, 0, len(s.Values))
	for _, v := range s.Values {
		out = append(out, spec.FormatOp("swap", v))
	}
	return out
}

// OpsFor implements spec.OpsForN: n distinct swapped values.
func (s *Swap) OpsFor(n int) []spec.Op {
	out := make([]spec.Op, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, spec.FormatOp("swap", itoa(i)))
	}
	return out
}

// Apply implements spec.Type.
func (s *Swap) Apply(st spec.State, op spec.Op) (spec.State, spec.Response, error) {
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	if name != "swap" || len(args) != 1 {
		return "", "", fmt.Errorf("%w: swap does not support %q", spec.ErrBadOp, op)
	}
	return spec.State(args[0]), spec.Response(st), nil
}

// CompareAndSwap is a compare&swap register.
// State encoding: current value (Bottom when unwritten).
// Operations: cas(old,new), responding with "true" and installing new when
// the state equals old, and with "false" (no change) otherwise.
//
// Classification: cons(CAS) = ∞ (Herlihy); the checker shows CAS is
// n-recording for every n, so rcons(CAS) = ∞ as well — CAS loses none of
// its power under crash/recovery, which is why it anchors the recoverable
// universal construction in package universal.
type CompareAndSwap struct {
	// Values is the candidate alphabet for witness searches.
	Values []string
}

var (
	_ spec.Type    = (*CompareAndSwap)(nil)
	_ spec.OpsForN = (*CompareAndSwap)(nil)
)

// NewCAS returns a compare&swap register with the default two-value alphabet.
func NewCAS() *CompareAndSwap { return &CompareAndSwap{Values: []string{"0", "1"}} }

// Name implements spec.Type.
func (c *CompareAndSwap) Name() string { return "compare&swap" }

// InitialStates implements spec.Type.
func (c *CompareAndSwap) InitialStates() []spec.State {
	out := []spec.State{Bottom}
	for _, v := range c.Values {
		out = append(out, spec.State(v))
	}
	return out
}

// Ops implements spec.Type.
func (c *CompareAndSwap) Ops() []spec.Op {
	out := make([]spec.Op, 0, len(c.Values))
	for _, v := range c.Values {
		out = append(out, spec.FormatOp("cas", Bottom, v))
	}
	return out
}

// OpsFor implements spec.OpsForN: cas(⊥, i) for n distinct values i.
func (c *CompareAndSwap) OpsFor(n int) []spec.Op {
	out := make([]spec.Op, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, spec.FormatOp("cas", Bottom, itoa(i)))
	}
	return out
}

// Apply implements spec.Type.
func (c *CompareAndSwap) Apply(st spec.State, op spec.Op) (spec.State, spec.Response, error) {
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	if name != "cas" || len(args) != 2 {
		return "", "", fmt.Errorf("%w: compare&swap does not support %q", spec.ErrBadOp, op)
	}
	if string(st) == args[0] {
		return spec.State(args[1]), "true", nil
	}
	return st, "false", nil
}

// Sticky is a sticky register: the first write sticks forever.
// State encoding: current value (Bottom when unwritten).
// Operations: put(v), responding with the (post-operation) stuck value.
//
// Classification: cons(sticky) = ∞ and rcons(sticky) = ∞; a sticky
// register is essentially a consensus object.
type Sticky struct {
	// Values is the candidate alphabet for witness searches.
	Values []string
}

var (
	_ spec.Type    = (*Sticky)(nil)
	_ spec.OpsForN = (*Sticky)(nil)
)

// NewSticky returns a sticky register with the default two-value alphabet.
func NewSticky() *Sticky { return &Sticky{Values: []string{"0", "1"}} }

// Name implements spec.Type.
func (s *Sticky) Name() string { return "sticky" }

// InitialStates implements spec.Type.
func (s *Sticky) InitialStates() []spec.State {
	out := []spec.State{Bottom}
	for _, v := range s.Values {
		out = append(out, spec.State(v))
	}
	return out
}

// Ops implements spec.Type.
func (s *Sticky) Ops() []spec.Op {
	out := make([]spec.Op, 0, len(s.Values))
	for _, v := range s.Values {
		out = append(out, spec.FormatOp("put", v))
	}
	return out
}

// OpsFor implements spec.OpsForN: n distinct put values.
func (s *Sticky) OpsFor(n int) []spec.Op {
	out := make([]spec.Op, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, spec.FormatOp("put", itoa(i)))
	}
	return out
}

// Apply implements spec.Type.
func (s *Sticky) Apply(st spec.State, op spec.Op) (spec.State, spec.Response, error) {
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	if name != "put" || len(args) != 1 {
		return "", "", fmt.Errorf("%w: sticky does not support %q", spec.ErrBadOp, op)
	}
	if st == Bottom {
		return spec.State(args[0]), spec.Response(args[0]), nil
	}
	return st, spec.Response(st), nil
}
