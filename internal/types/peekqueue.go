package types

import (
	"fmt"

	"rcons/internal/spec"
)

// PeekQueue is a bounded FIFO queue augmented with a peek operation that
// returns the front item without removing it. Unlike the plain queue
// (cons = 2), a queue with peek has consensus number ∞ — the first
// enqueued item stays observable at the front forever (until dequeued),
// so processes can always discover who enqueued first — and the same
// reasoning makes enq-only witnesses n-recording for every n, so
// rcons(peek-queue) = ∞ as well. The type rounds out the zoo with a
// "classically infinite" object whose power, like compare&swap's,
// survives crashes; it also illustrates the paper's footnote 3: peek is
// a partial read, and partial readability is all Figure 2 needs when the
// witness separates teams by the front element.
//
// State encoding: comma-separated items, front first ("" when empty).
// Operations: enq(v) → Ack/RespFull, deq → front/RespEmpty, and
// peek → front/RespEmpty (no state change).
type PeekQueue struct {
	// Cap bounds the number of stored items; must be at least 2.
	Cap int
	// Values is the candidate enqueue alphabet for witness searches.
	Values []string
}

var (
	_ spec.Type    = (*PeekQueue)(nil)
	_ spec.OpsForN = (*PeekQueue)(nil)
)

// NewPeekQueue returns a peek-queue with alphabet {"0", "1"}.
func NewPeekQueue(capacity int) *PeekQueue {
	return &PeekQueue{Cap: capacity, Values: []string{"0", "1"}}
}

// Name implements spec.Type.
func (q *PeekQueue) Name() string { return fmt.Sprintf("peek-queue(cap=%d)", q.Cap) }

// InitialStates implements spec.Type.
func (q *PeekQueue) InitialStates() []spec.State {
	out := []spec.State{""}
	for _, v := range q.Values {
		out = append(out, seqEncode([]string{v}))
	}
	return out
}

// Ops implements spec.Type.
func (q *PeekQueue) Ops() []spec.Op {
	out := []spec.Op{"deq", "peek"}
	for _, v := range q.Values {
		out = append(out, spec.FormatOp("enq", v))
	}
	return out
}

// OpsFor implements spec.OpsForN: n distinct enqueue values plus deq and
// peek.
func (q *PeekQueue) OpsFor(n int) []spec.Op {
	out := []spec.Op{"deq", "peek"}
	for i := 0; i < n; i++ {
		out = append(out, spec.FormatOp("enq", itoa(i)))
	}
	return out
}

// Apply implements spec.Type.
func (q *PeekQueue) Apply(s spec.State, op spec.Op) (spec.State, spec.Response, error) {
	items := seqDecode(s)
	name, args, err := spec.ParseOp(op)
	if err != nil {
		return "", "", err
	}
	switch {
	case name == "enq" && len(args) == 1:
		if len(items) >= q.Cap {
			return s, RespFull, nil
		}
		return seqEncode(append(items, args[0])), spec.Ack, nil
	case name == "deq" && len(args) == 0:
		if len(items) == 0 {
			return s, RespEmpty, nil
		}
		return seqEncode(items[1:]), spec.Response(items[0]), nil
	case name == "peek" && len(args) == 0:
		if len(items) == 0 {
			return s, RespEmpty, nil
		}
		return s, spec.Response(items[0]), nil
	default:
		return "", "", fmt.Errorf("%w: peek-queue does not support %q", spec.ErrBadOp, op)
	}
}
