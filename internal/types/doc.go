// Package types implements the zoo of deterministic shared object types
// used by the paper "When Is Recoverable Consensus Harder Than Consensus?"
// (PODC 2022) and its reproduction:
//
//   - classical types referenced by the paper: read/write register,
//     test&set, fetch&add, swap, compare&swap, sticky register, counter,
//     max-register, bounded FIFO queue and LIFO stack, and a consensus
//     object;
//   - the separating families the paper constructs: T_n (Figure 5,
//     Proposition 19: n-discerning but not (n-1)-recording) and S_n
//     (Figure 6, Proposition 21: rcons = cons = n), plus the read-only
//     type S_1;
//
// Every type implements spec.Type with canonical string state encodings.
// All types are "readable" in the paper's sense (an object's full state
// can be read atomically) except those marked with the NonReadable
// interface: the plain queue and plain stack of Appendix H, whose
// consensus power comes only from their update operations' responses.
package types

import (
	"strconv"

	"rcons/internal/spec"
)

// NonReadable marks types whose objects must NOT be read as a whole for
// the paper's classification results to apply (Appendix H analyses the
// plain, non-readable stack and queue). The simulator still allows Read
// on such objects, but algorithms reproducing paper results must not use
// it, and the checkers report readability so callers can interpret
// results correctly (Theorem 8 requires readability; Theorem 14 does not).
type NonReadable interface {
	NonReadable()
}

// Readable reports whether t is readable in the paper's sense. The queue
// and stack honour their AllowRead flag; every other type is readable
// unless it implements NonReadable.
func Readable(t spec.Type) bool {
	switch v := t.(type) {
	case *Queue:
		return v.AllowRead
	case *Stack:
		return v.AllowRead
	case *Custom:
		return v.IsReadable()
	default:
		_, nr := t.(NonReadable)
		return !nr
	}
}

// itoa is shorthand used by state encoders throughout the package.
func itoa(i int) string { return strconv.Itoa(i) }

// atoi parses a decimal integer, reporting ok=false on malformed input.
func atoi(s string) (int, bool) {
	v, err := strconv.Atoi(s)
	return v, err == nil
}
