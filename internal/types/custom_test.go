package types

import (
	"errors"
	"testing"

	"rcons/internal/spec"
)

// stickyJSON defines a 2-value sticky object as a custom type: the first
// operation wins and every later operation observes it.
const stickyJSON = `{
  "name": "json-sticky",
  "initial": ["q0"],
  "transitions": {
    "q0": {"opA": {"next": "qa", "resp": "A"}, "opB": {"next": "qb", "resp": "B"}},
    "qa": {"opA": {"next": "qa", "resp": "A"}, "opB": {"next": "qa", "resp": "A"}},
    "qb": {"opA": {"next": "qb", "resp": "B"}, "opB": {"next": "qb", "resp": "B"}}
  }
}`

func TestCustomFromJSON(t *testing.T) {
	c, err := NewCustomFromJSON([]byte(stickyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "json-sticky" || !Readable(c) {
		t.Fatalf("name=%q readable=%v", c.Name(), Readable(c))
	}
	if got := c.InitialStates(); len(got) != 1 || got[0] != "q0" {
		t.Fatalf("initial states = %v", got)
	}
	if got := c.Ops(); len(got) != 2 || got[0] != "opA" {
		t.Fatalf("ops = %v", got)
	}
	s, r, err := c.Apply("q0", "opB")
	if err != nil || s != "qb" || r != "B" {
		t.Fatalf("Apply = (%q,%q,%v)", s, r, err)
	}
}

func TestCustomApplyErrors(t *testing.T) {
	c, err := NewCustomFromJSON([]byte(stickyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Apply("nope", "opA"); !errors.Is(err, spec.ErrBadState) {
		t.Errorf("bad state error = %v", err)
	}
	if _, _, err := c.Apply("q0", "nope"); !errors.Is(err, spec.ErrBadOp) {
		t.Errorf("bad op error = %v", err)
	}
}

func TestCustomValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"syntax", `{`},
		{"no name", `{"transitions":{"q":{"o":{"next":"q","resp":"r"}}}}`},
		{"no states", `{"name":"x","transitions":{}}`},
		{"missing op", `{"name":"x","transitions":{
			"q0":{"a":{"next":"q0","resp":"r"},"b":{"next":"q0","resp":"r"}},
			"q1":{"a":{"next":"q1","resp":"r"}}}}`},
		{"dangling next", `{"name":"x","transitions":{
			"q0":{"a":{"next":"q9","resp":"r"}}}}`},
		{"bad initial", `{"name":"x","initial":["zz"],"transitions":{
			"q0":{"a":{"next":"q0","resp":"r"}}}}`},
	}
	for _, c := range cases {
		if _, err := NewCustomFromJSON([]byte(c.json)); err == nil {
			t.Errorf("%s: invalid spec accepted", c.name)
		}
	}
}

func TestCustomNonReadableFlag(t *testing.T) {
	j := `{"name":"x","readable":false,"transitions":{
		"q0":{"a":{"next":"q0","resp":"r"}}}}`
	c, err := NewCustomFromJSON([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	if Readable(c) {
		t.Error("readable=false ignored")
	}
}

func TestCustomDefaultInitialStatesAreAllStates(t *testing.T) {
	j := `{"name":"x","transitions":{
		"q0":{"a":{"next":"q1","resp":"r"}},
		"q1":{"a":{"next":"q0","resp":"r"}}}}`
	c, err := NewCustomFromJSON([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.InitialStates(); len(got) != 2 {
		t.Fatalf("initial states = %v, want both", got)
	}
}
