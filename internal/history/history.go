// Package history records operation histories of implemented shared
// objects and checks them for linearizability against a sequential
// specification (Wing & Gong-style exhaustive search with memoization).
// It is used to validate the recoverable universal construction of the
// paper's Section 4 / Figure 7: every execution, however the adversary
// crashes processes, must produce a history linearizable with respect to
// the implemented type — and, because recovery completes interrupted
// operations, a *complete* history.
package history

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rcons/internal/spec"
)

// OpEvent is one operation instance in a history.
type OpEvent struct {
	// Proc is the invoking process; Seq its per-process operation index.
	Proc, Seq int
	// Op is the operation applied to the implemented object.
	Op spec.Op
	// Resp is the response returned to the caller (valid iff Completed).
	Resp spec.Response
	// Invoke and Return are logical times (simulator step counts). For
	// operations retried after crashes, Invoke is the first attempt's
	// invocation and Return the final attempt's response time.
	Invoke, Return int
	// Completed reports whether the operation returned to its caller.
	Completed bool
}

// String renders the event compactly.
func (e OpEvent) String() string {
	status := "…"
	if e.Completed {
		status = string(e.Resp)
	}
	return fmt.Sprintf("p%d#%d %s → %s [%d,%d]", e.Proc, e.Seq, e.Op, status, e.Invoke, e.Return)
}

// Recorder accumulates operation events during a simulated execution.
// It is mutex-guarded: the scheduler serializes bodies between
// scheduling points, but the stretch of a body before its first
// shared-memory access runs concurrently with other processes'
// preludes, and recording happens inside those preludes.
type Recorder struct {
	mu     sync.Mutex
	events map[[2]int]*OpEvent // keyed by (proc, seq)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{events: map[[2]int]*OpEvent{}}
}

// Invoke records the start of operation (proc, seq); retries after a
// crash keep the earliest invocation time.
func (r *Recorder) Invoke(proc, seq int, op spec.Op, now int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := [2]int{proc, seq}
	if e, ok := r.events[key]; ok {
		_ = e // keep the first invocation time
		return
	}
	r.events[key] = &OpEvent{Proc: proc, Seq: seq, Op: op, Invoke: now, Return: -1}
}

// Return records the completion of operation (proc, seq).
func (r *Recorder) Return(proc, seq int, resp spec.Response, now int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := [2]int{proc, seq}
	e, ok := r.events[key]
	if !ok {
		panic(fmt.Sprintf("history: Return without Invoke for p%d#%d", proc, seq))
	}
	e.Resp, e.Return, e.Completed = resp, now, true
}

// Events returns the recorded history sorted by (Invoke, Proc, Seq).
func (r *Recorder) Events() []OpEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]OpEvent, 0, len(r.events))
	for _, e := range r.events {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Invoke != out[j].Invoke {
			return out[i].Invoke < out[j].Invoke
		}
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// CheckLinearizable searches for a linearization of hist that respects
// real-time order (an operation that returned before another was invoked
// must be linearized first) and the sequential specification of t
// starting from q0. Incomplete operations (crash-interrupted, never
// completed) may be linearized with any response or omitted, following
// strict linearizability's treatment.
//
// It returns a witness order (indices into hist) when one exists. The
// search is exponential in the worst case but memoized on
// (linearized-set, state); keep histories under ~20 operations.
func CheckLinearizable(t spec.Type, q0 spec.State, hist []OpEvent) ([]int, bool, error) {
	n := len(hist)
	if n > 63 {
		return nil, false, fmt.Errorf("history: %d operations exceed the checker's capacity", n)
	}
	// memo of failed (doneMask, state) configurations.
	failed := map[string]bool{}
	order := make([]int, 0, n)

	var dfs func(done uint64, state spec.State) bool
	dfs = func(done uint64, state spec.State) bool {
		if popcount(done) == n {
			return true
		}
		key := strconv.FormatUint(done, 16) + "|" + string(state)
		if failed[key] {
			return false
		}
		// minReturn: the earliest Return among completed, unlinearized
		// ops; any candidate must have been invoked before it finished.
		minReturn := int(^uint(0) >> 1)
		for i, e := range hist {
			if done&(1<<uint(i)) != 0 || !e.Completed {
				continue
			}
			if e.Return < minReturn {
				minReturn = e.Return
			}
		}
		for i, e := range hist {
			if done&(1<<uint(i)) != 0 {
				continue
			}
			if e.Invoke > minReturn {
				continue // would violate real-time order
			}
			ns, resp, err := t.Apply(state, e.Op)
			if err != nil {
				continue // op not applicable: cannot linearize here
			}
			if e.Completed && resp != e.Resp {
				continue
			}
			order = append(order, i)
			if dfs(done|1<<uint(i), ns) {
				return true
			}
			order = order[:len(order)-1]
		}
		// Incomplete operations may also be dropped entirely (they never
		// took effect), regardless of their invocation time.
		for i, e := range hist {
			if done&(1<<uint(i)) != 0 || e.Completed {
				continue
			}
			order = append(order, -1)
			if dfs(done|1<<uint(i), state) {
				return true
			}
			order = order[:len(order)-1]
		}
		failed[key] = true
		return false
	}
	if dfs(0, q0) {
		clean := make([]int, 0, len(order))
		for _, i := range order {
			if i >= 0 {
				clean = append(clean, i)
			}
		}
		return clean, true, nil
	}
	return nil, false, nil
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// FormatHistory renders a history one event per line for diagnostics.
func FormatHistory(hist []OpEvent) string {
	var b strings.Builder
	for i, e := range hist {
		fmt.Fprintf(&b, "%3d  %s\n", i, e)
	}
	return b.String()
}

// CheckProgramOrder verifies that each process's operations were invoked
// and completed in per-process sequence order (a sanity property every
// well-formed history must have).
func CheckProgramOrder(hist []OpEvent) error {
	byProc := map[int][]OpEvent{}
	for _, e := range hist {
		byProc[e.Proc] = append(byProc[e.Proc], e)
	}
	for proc, evs := range byProc {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
		for i, e := range evs {
			if e.Seq != i {
				return fmt.Errorf("history: process %d is missing operation #%d", proc, i)
			}
			if i > 0 && evs[i-1].Completed && e.Invoke < evs[i-1].Return {
				return fmt.Errorf("history: process %d invoked op #%d before op #%d returned", proc, e.Seq, evs[i-1].Seq)
			}
		}
	}
	return nil
}
