package history

import (
	"fmt"
	"math/rand"
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

func ev(proc, seq int, op spec.Op, resp spec.Response, inv, ret int) OpEvent {
	return OpEvent{Proc: proc, Seq: seq, Op: op, Resp: resp, Invoke: inv, Return: ret, Completed: true}
}

func TestLinearizableSequentialHistory(t *testing.T) {
	q := types.NewQueue(4)
	hist := []OpEvent{
		ev(0, 0, "enq(0)", spec.Ack, 0, 1),
		ev(1, 0, "enq(1)", spec.Ack, 2, 3),
		ev(0, 1, "deq", "0", 4, 5),
		ev(1, 1, "deq", "1", 6, 7),
	}
	order, ok, err := CheckLinearizable(q, "", hist)
	if err != nil || !ok {
		t.Fatalf("sequential history rejected: ok=%v err=%v", ok, err)
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
}

func TestLinearizableConcurrentHistory(t *testing.T) {
	q := types.NewQueue(4)
	// Two concurrent enqueues followed by two dequeues whose responses
	// force the enqueue order 1-before-0.
	hist := []OpEvent{
		ev(0, 0, "enq(0)", spec.Ack, 0, 10),
		ev(1, 0, "enq(1)", spec.Ack, 0, 10),
		ev(0, 1, "deq", "1", 11, 12),
		ev(1, 1, "deq", "0", 13, 14),
	}
	_, ok, err := CheckLinearizable(q, "", hist)
	if err != nil || !ok {
		t.Fatalf("linearizable concurrent history rejected: ok=%v err=%v", ok, err)
	}
}

func TestNonLinearizableResponse(t *testing.T) {
	q := types.NewQueue(4)
	// deq returns a value that was never enqueued first.
	hist := []OpEvent{
		ev(0, 0, "enq(0)", spec.Ack, 0, 1),
		ev(1, 0, "deq", "7", 2, 3),
	}
	_, ok, err := CheckLinearizable(q, "", hist)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impossible dequeue accepted")
	}
}

func TestNonLinearizableRealTimeOrder(t *testing.T) {
	q := types.NewQueue(4)
	// enq(0) completes before enq(1) begins, yet the dequeues claim the
	// opposite order — real-time order forbids it.
	hist := []OpEvent{
		ev(0, 0, "enq(0)", spec.Ack, 0, 1),
		ev(1, 0, "enq(1)", spec.Ack, 2, 3),
		ev(0, 1, "deq", "1", 4, 5),
		ev(1, 1, "deq", "0", 6, 7),
	}
	_, ok, err := CheckLinearizable(q, "", hist)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("real-time violation accepted")
	}
}

func TestIncompleteOpMayBeDropped(t *testing.T) {
	st := types.NewStack(4)
	hist := []OpEvent{
		ev(0, 0, "push(1)", spec.Ack, 0, 1),
		{Proc: 1, Seq: 0, Op: "push(0)", Invoke: 2, Return: -1}, // crashed, incomplete
		ev(0, 1, "pop", "1", 3, 4),
		ev(0, 2, "pop", types.RespEmpty, 5, 6),
	}
	_, ok, err := CheckLinearizable(st, "", hist)
	if err != nil || !ok {
		t.Fatalf("history with droppable incomplete op rejected: ok=%v err=%v", ok, err)
	}
}

func TestIncompleteOpMayTakeEffect(t *testing.T) {
	st := types.NewStack(4)
	hist := []OpEvent{
		{Proc: 1, Seq: 0, Op: "push(9)", Invoke: 0, Return: -1}, // incomplete but observed
		ev(0, 0, "pop", "9", 1, 2),
	}
	_, ok, err := CheckLinearizable(st, "", hist)
	if err != nil || !ok {
		t.Fatalf("history needing the incomplete op rejected: ok=%v err=%v", ok, err)
	}
}

func TestRecorderKeepsEarliestInvoke(t *testing.T) {
	r := NewRecorder()
	r.Invoke(0, 0, "inc", 5)
	r.Invoke(0, 0, "inc", 9) // crash retry: must keep Invoke = 5
	r.Return(0, 0, spec.Ack, 12)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Invoke != 5 || evs[0].Return != 12 || !evs[0].Completed {
		t.Fatalf("events = %v", evs)
	}
}

func TestRecorderReturnWithoutInvokePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRecorder().Return(0, 0, spec.Ack, 1)
}

func TestEventsSorted(t *testing.T) {
	r := NewRecorder()
	r.Invoke(1, 0, "inc", 7)
	r.Return(1, 0, spec.Ack, 8)
	r.Invoke(0, 0, "inc", 3)
	r.Return(0, 0, spec.Ack, 4)
	evs := r.Events()
	if evs[0].Proc != 0 || evs[1].Proc != 1 {
		t.Fatalf("events not sorted by invoke time: %v", evs)
	}
}

func TestCheckProgramOrder(t *testing.T) {
	good := []OpEvent{
		ev(0, 0, "inc", spec.Ack, 0, 1),
		ev(0, 1, "inc", spec.Ack, 2, 3),
	}
	if err := CheckProgramOrder(good); err != nil {
		t.Fatalf("good history rejected: %v", err)
	}
	overlap := []OpEvent{
		ev(0, 0, "inc", spec.Ack, 0, 5),
		ev(0, 1, "inc", spec.Ack, 2, 3), // invoked before #0 returned
	}
	if err := CheckProgramOrder(overlap); err == nil {
		t.Fatal("overlapping per-process ops accepted")
	}
	gap := []OpEvent{ev(0, 1, "inc", spec.Ack, 0, 1)}
	if err := CheckProgramOrder(gap); err == nil {
		t.Fatal("missing op #0 accepted")
	}
}

func TestCapacityGuard(t *testing.T) {
	big := make([]OpEvent, 64)
	for i := range big {
		big[i] = ev(0, i, "inc", spec.Ack, i, i)
	}
	if _, _, err := CheckLinearizable(types.NewCounter(100), "0", big); err == nil {
		t.Fatal("oversized history accepted")
	}
}

// TestSequentialHistoriesAlwaysLinearize generates random sequential
// histories (one op at a time, responses from the spec) and checks the
// checker accepts every one — soundness of CheckLinearizable.
func TestSequentialHistoriesAlwaysLinearize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := types.NewQueue(6)
	for trial := 0; trial < 100; trial++ {
		state := spec.State("")
		var hist []OpEvent
		now := 0
		nOps := 3 + rng.Intn(8)
		seqs := map[int]int{}
		for k := 0; k < nOps; k++ {
			proc := rng.Intn(3)
			var op spec.Op
			if rng.Intn(2) == 0 {
				op = spec.FormatOp("enq", fmt.Sprint(rng.Intn(2)))
			} else {
				op = "deq"
			}
			ns, resp, err := q.Apply(state, op)
			if err != nil {
				t.Fatal(err)
			}
			state = ns
			hist = append(hist, OpEvent{
				Proc: proc, Seq: seqs[proc], Op: op, Resp: resp,
				Invoke: now, Return: now + 1, Completed: true,
			})
			seqs[proc]++
			now += 2
		}
		_, ok, err := CheckLinearizable(q, "", hist)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: sequential history rejected:\n%s", trial, FormatHistory(hist))
		}
	}
}
