package engine

import (
	"container/list"
	"sync"
)

// LRU is a bounded least-recently-used map: Put past the capacity
// evicts the entry touched longest ago, one at a time — never the
// whole working set at once. It backs the engine's memo cache and is
// exported for the other small memos that used to wipe a full map at
// their cap (rcserve's canonical-fingerprint memo), so a burst of
// one-off keys ages out gradually while hot entries stay resident.
// Safe for concurrent use.
type LRU[K comparable, V any] struct {
	mu        sync.Mutex
	max       int
	entries   map[K]*list.Element
	order     *list.List // front = most recently used
	evictions int64
}

// lruEntry is the list payload.
type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU builds an LRU holding at most max entries (minimum 1).
func NewLRU[K comparable, V any](max int) *LRU[K, V] {
	if max < 1 {
		max = 1
	}
	return &LRU[K, V]{max: max, entries: make(map[K]*list.Element), order: list.New()}
}

// Get returns the value for key, refreshing its recency on a hit.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

// Put inserts or refreshes key, evicting least-recently-used entries
// as needed to respect the capacity.
func (l *LRU[K, V]) Put(key K, val V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		l.order.MoveToFront(el)
		return
	}
	for len(l.entries) >= l.max {
		back := l.order.Back()
		if back == nil {
			break
		}
		l.order.Remove(back)
		delete(l.entries, back.Value.(*lruEntry[K, V]).key)
		l.evictions++
	}
	l.entries[key] = l.order.PushFront(&lruEntry[K, V]{key: key, val: val})
}

// Len returns the current entry count.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Evictions returns the cumulative eviction count.
func (l *LRU[K, V]) Evictions() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}
