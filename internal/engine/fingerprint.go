package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rcons/internal/spec"
)

// fingerprintStateCap bounds the reachable-state exploration during
// fingerprinting; types whose state space exceeds it are not memoized.
const fingerprintStateCap = 1 << 14

// Fingerprint computes a canonical identity for the search problem
// "(property of) type t among n processes": a hash over the type's name,
// candidate initial states, the candidate operation alphabet for n, and
// the full transition table restricted to states reachable from the
// initial states under that alphabet. Two spec.Type values with equal
// fingerprints produce identical witness-search results, which is what
// makes the engine's cache sound for arbitrary (including user-supplied
// custom) types. ok is false when the type cannot be fingerprinted — an
// oversized state space or a transition error — in which case results
// for it are simply not cached.
func Fingerprint(t spec.Type, n int) (fp string, ok bool) {
	// This sits on the hot path of every memoized engine call (one
	// fingerprint per cache probe), so the hash input is assembled with
	// strconv appends into a reused buffer instead of fmt — the byte
	// stream is identical to the fmt.Fprintf formulation this replaces
	// (%q on the spec string kinds is strconv.Quote), which keeps
	// fingerprints stable across releases for the persistent store.
	h := sha256.New()
	buf := make([]byte, 0, 512)
	buf = append(buf, "name="...)
	buf = append(buf, t.Name()...)
	buf = append(buf, "\nn="...)
	buf = strconv.AppendInt(buf, int64(n), 10)
	buf = append(buf, '\n')
	states := t.InitialStates()
	for _, s := range states {
		buf = append(buf, "init="...)
		buf = appendQuoted(buf, string(s))
		buf = append(buf, '\n')
	}
	ops := spec.CandidateOps(t, n)
	for _, op := range ops {
		buf = append(buf, "op="...)
		buf = appendQuoted(buf, string(op))
		buf = append(buf, '\n')
	}
	h.Write(buf)

	// Explore every state reachable from any initial state, capturing
	// each state's transition row as it is discovered, and hash the
	// induced table in canonical (sorted) order. Capturing during the
	// walk halves the t.Apply calls of the old explore-then-rehash
	// two-pass shape.
	type edge struct {
		ns spec.State
		r  spec.Response
	}
	seen := map[spec.State]bool{}
	// Rows live in one flat slab (len(ops) edges per expanded state,
	// rowAt mapping each state to its slab offset) instead of one slice
	// allocation per state.
	rowAt := make(map[spec.State]int)
	edges := make([]edge, 0, 16*len(ops))
	var frontier []spec.State
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}
	var all []spec.State
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		all = append(all, s)
		rowAt[s] = len(edges)
		for _, op := range ops {
			ns, r, err := t.Apply(s, op)
			if err != nil {
				return "", false
			}
			edges = append(edges, edge{ns: ns, r: r})
			if !seen[ns] {
				if len(seen) >= fingerprintStateCap {
					return "", false
				}
				seen[ns] = true
				frontier = append(frontier, ns)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, s := range all {
		row := edges[rowAt[s] : rowAt[s]+len(ops)]
		buf = buf[:0]
		for i, op := range ops {
			buf = appendQuoted(buf, string(s))
			buf = append(buf, '/')
			buf = appendQuoted(buf, string(op))
			buf = append(buf, '-', '>')
			buf = appendQuoted(buf, string(row[i].ns))
			buf = append(buf, '/')
			buf = appendQuoted(buf, string(row[i].r))
			buf = append(buf, '\n')
		}
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// appendQuoted appends the strconv.Quote encoding of s. Labels are
// almost always printable ASCII, for which Quote is just the string
// wrapped in double quotes — that case skips strconv's per-rune
// escape analysis; anything else falls back to strconv.AppendQuote,
// so the output is byte-identical either way.
func appendQuoted(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c > 0x7e || c == '"' || c == '\\' {
			return strconv.AppendQuote(buf, s)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// Caps on the label-permutation search of CanonicalFingerprint; the
// combined permutation count is additionally capped so the candidate
// encodings stay cheap (each is linear in the reachable table).
const (
	canonicalOpCap    = 5
	canonicalInitCap  = 6
	canonicalComboCap = 20_000
)

// CanonicalFingerprint computes a label-free identity for the search
// problem "(property of) type t among n processes": states are numbered
// by breadth-first discovery order, responses by first occurrence, and
// operations by their position in a candidate ordering; the encoding is
// minimized over all operation orderings and initial-state orderings.
// The result is therefore invariant under any consistent renaming of
// states, operations and responses — two isomorphic transition tables
// (e.g. the same user-supplied type uploaded twice with different
// labels) share a canonical fingerprint even though their exact
// Fingerprints differ.
//
// It deliberately does NOT replace Fingerprint as the engine's cache
// key: cached witnesses name concrete states and operations, so serving
// a witness computed for an isomorphic-but-differently-labelled type
// would hand the caller op strings its type does not accept. Canonical
// fingerprints are an identity for humans and APIs (rcserve reports
// them), not a memoization key.
//
// ok is false when the type cannot be canonicalized: an oversized state
// space, a transition error, or more operations/initial states than the
// permutation caps allow.
func CanonicalFingerprint(t spec.Type, n int) (fp string, ok bool) {
	ops := spec.CandidateOps(t, n)
	inits := t.InitialStates()
	if len(ops) == 0 || len(inits) == 0 ||
		len(ops) > canonicalOpCap || len(inits) > canonicalInitCap {
		return "", false
	}
	if factorial(len(ops))*factorial(len(inits)) > canonicalComboCap {
		return "", false
	}
	best := ""
	for _, opPerm := range permutations(len(ops)) {
		permOps := make([]spec.Op, len(ops))
		for i, j := range opPerm {
			permOps[i] = ops[j]
		}
		for _, initPerm := range permutations(len(inits)) {
			permInits := make([]spec.State, len(inits))
			for i, j := range initPerm {
				permInits[i] = inits[j]
			}
			enc, ok := canonicalEncoding(t, permInits, permOps)
			if !ok {
				return "", false
			}
			if best == "" || enc < best {
				best = enc
			}
		}
	}
	sum := sha256.Sum256([]byte(best))
	return hex.EncodeToString(sum[:]), true
}

// canonicalEncoding renders the transition table reachable from inits
// (in order) under ops (in order) using only discovery indices — no
// state, operation or response label survives into the encoding.
func canonicalEncoding(t spec.Type, inits []spec.State, ops []spec.Op) (string, bool) {
	var b strings.Builder
	stateID := map[spec.State]int{}
	respID := map[spec.Response]int{}
	var order []spec.State
	intern := func(s spec.State) int {
		if id, ok := stateID[s]; ok {
			return id
		}
		id := len(stateID)
		stateID[s] = id
		order = append(order, s)
		return id
	}
	fmt.Fprintf(&b, "n_ops=%d\ninit=", len(ops))
	for _, s := range inits {
		fmt.Fprintf(&b, "%d,", intern(s))
	}
	b.WriteString("\n")
	for i := 0; i < len(order); i++ { // order grows as states are discovered
		if len(order) > fingerprintStateCap {
			return "", false
		}
		s := order[i]
		for j, op := range ops {
			ns, r, err := t.Apply(s, op)
			if err != nil {
				return "", false
			}
			rid, ok := respID[r]
			if !ok {
				rid = len(respID)
				respID[r] = rid
			}
			fmt.Fprintf(&b, "%d.%d->%d/%d\n", i, j, intern(ns), rid)
		}
	}
	return b.String(), true
}

func factorial(k int) int {
	out := 1
	for i := 2; i <= k; i++ {
		out *= i
	}
	return out
}

// permutations returns all permutations of 0..k-1 (k small, capped by
// the canonical* constants).
func permutations(k int) [][]int {
	base := make([]int, k)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(prefix []int, rest []int)
	rec = func(prefix, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(prefix, rest[i]), next)
		}
	}
	rec(nil, base)
	return out
}
