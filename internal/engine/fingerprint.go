package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"rcons/internal/spec"
)

// fingerprintStateCap bounds the reachable-state exploration during
// fingerprinting; types whose state space exceeds it are not memoized.
const fingerprintStateCap = 1 << 14

// Fingerprint computes a canonical identity for the search problem
// "(property of) type t among n processes": a hash over the type's name,
// candidate initial states, the candidate operation alphabet for n, and
// the full transition table restricted to states reachable from the
// initial states under that alphabet. Two spec.Type values with equal
// fingerprints produce identical witness-search results, which is what
// makes the engine's cache sound for arbitrary (including user-supplied
// custom) types. ok is false when the type cannot be fingerprinted — an
// oversized state space or a transition error — in which case results
// for it are simply not cached.
func Fingerprint(t spec.Type, n int) (fp string, ok bool) {
	h := sha256.New()
	fmt.Fprintf(h, "name=%s\nn=%d\n", t.Name(), n)
	states := t.InitialStates()
	for _, s := range states {
		fmt.Fprintf(h, "init=%q\n", s)
	}
	ops := spec.CandidateOps(t, n)
	for _, op := range ops {
		fmt.Fprintf(h, "op=%q\n", op)
	}

	// Explore every state reachable from any initial state and hash the
	// induced transition table in canonical (sorted) order.
	seen := map[spec.State]bool{}
	var frontier []spec.State
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}
	var all []spec.State
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		all = append(all, s)
		for _, op := range ops {
			ns, _, err := t.Apply(s, op)
			if err != nil {
				return "", false
			}
			if !seen[ns] {
				if len(seen) >= fingerprintStateCap {
					return "", false
				}
				seen[ns] = true
				frontier = append(frontier, ns)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, s := range all {
		for _, op := range ops {
			ns, r, err := t.Apply(s, op)
			if err != nil {
				return "", false
			}
			fmt.Fprintf(h, "%q/%q->%q/%q\n", s, op, ns, r)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}
