package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// TestLRUBasics pins the generic LRU's contract: recency-refreshing
// gets, one-at-a-time eviction of the least recently used entry (never
// a wholesale wipe), and accurate counters.
func TestLRUBasics(t *testing.T) {
	l := NewLRU[string, int](3)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("c", 3)
	if _, ok := l.Get("a"); !ok { // refresh a: b is now the oldest
		t.Fatal("a missing")
	}
	l.Put("d", 4) // evicts b only
	if _, ok := l.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := l.Get(k); !ok {
			t.Fatalf("%s evicted; overflow must evict one entry, not the working set", k)
		}
	}
	if n := l.Len(); n != 3 {
		t.Fatalf("Len = %d, want 3", n)
	}
	if ev := l.Evictions(); ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
	// Overwriting refreshes in place without eviction.
	l.Put("a", 10)
	if v, _ := l.Get("a"); v != 10 {
		t.Fatalf("a = %d after overwrite, want 10", v)
	}
	if ev := l.Evictions(); ev != 1 {
		t.Fatalf("Evictions after overwrite = %d, want 1", ev)
	}
}

// TestLRUSpamDoesNotWipeHotEntry is the regression the canonical-
// fingerprint memo needed: a spam of one-off keys past the cap must age
// entries out gradually, keeping a continuously-touched hot key
// resident — unlike the old wipe-the-map-at-cap policy.
func TestLRUSpamDoesNotWipeHotEntry(t *testing.T) {
	l := NewLRU[string, string](64)
	l.Put("hot", "v")
	for i := 0; i < 1000; i++ {
		l.Put(fmt.Sprintf("spam-%d", i), "x")
		if _, ok := l.Get("hot"); !ok {
			t.Fatalf("hot entry evicted after %d one-off inserts", i+1)
		}
	}
	if l.Len() != 64 {
		t.Fatalf("Len = %d, want capacity 64", l.Len())
	}
}

// errType is a spec.Type whose transition function always fails,
// forcing a per-item classification error.
type errType struct{}

func (errType) Name() string                { return "err-type" }
func (errType) InitialStates() []spec.State { return []spec.State{"q0"} }
func (errType) Ops() []spec.Op              { return []spec.Op{"op"} }
func (errType) Apply(spec.State, spec.Op) (spec.State, spec.Response, error) {
	return "", "", errors.New("apply exploded")
}

// TestClassifyEachPerItemErrors: one failing item must neither abort
// nor corrupt the other items' classifications, and ClassifyAll must
// keep its first-error contract.
func TestClassifyEachPerItemErrors(t *testing.T) {
	eng := New(Options{Workers: 4})
	good1, err := types.ByName("S_3")
	if err != nil {
		t.Fatal(err)
	}
	good2, err := types.ByName("cas")
	if err != nil {
		t.Fatal(err)
	}
	ts := []spec.Type{good1, errType{}, good2}
	out, errs := eng.ClassifyEach(context.Background(), ts, 3)
	if len(out) != 3 || len(errs) != 3 {
		t.Fatalf("lengths: out=%d errs=%d", len(out), len(errs))
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good items errored: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("failing item reported no error")
	}
	if out[0].TypeName != "S_3" || out[2].TypeName != "compare&swap" {
		t.Fatalf("good classifications corrupted: %q / %q", out[0].TypeName, out[2].TypeName)
	}
	// Per-item results match solo classification exactly.
	solo, err := eng.Classify(context.Background(), good1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if solo.RconsLo != out[0].RconsLo || solo.RconsHi != out[0].RconsHi {
		t.Fatalf("batch vs solo rcons band: [%d,%d] vs [%d,%d]",
			out[0].RconsLo, out[0].RconsHi, solo.RconsLo, solo.RconsHi)
	}

	if _, err := eng.ClassifyAll(context.Background(), ts, 3); err == nil {
		t.Fatal("ClassifyAll swallowed the per-item error")
	}
}
