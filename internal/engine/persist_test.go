package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"rcons/internal/store"
	"rcons/internal/types"
)

// fakePersist is an in-memory Persist double with call counters and a
// failure switch.
type fakePersist struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    int
	puts    int
	fail    bool
}

func newFakePersist() *fakePersist {
	return &fakePersist{entries: map[string][]byte{}}
}

func (f *fakePersist) Get(_ context.Context, kind, key string) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	if f.fail {
		return nil, false, errors.New("injected store failure")
	}
	data, ok := f.entries[kind+"\x00"+key]
	return data, ok, nil
}

func (f *fakePersist) Put(_ context.Context, kind, key string, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	if f.fail {
		return errors.New("injected store failure")
	}
	f.entries[kind+"\x00"+key] = append([]byte(nil), payload...)
	return nil
}

// TestPersistWriteThroughAndRestart: engine 1 computes and persists;
// engine 2 (a "restarted process" sharing the store) answers from disk
// without searching. The sentinel proves no recomputation: engine 2's
// memo cache is disabled and the stored entry is the only possible
// source of the exact bytes it returns.
func TestPersistWriteThroughAndRestart(t *testing.T) {
	ctx := context.Background()
	p := newFakePersist()
	typ := types.NewSn(3)

	e1 := New(Options{Workers: 2, Persist: p})
	w1, err := e1.Search(ctx, typ, Recording, 3)
	if err != nil || w1 == nil {
		t.Fatalf("search: %v, %v", w1, err)
	}
	if p.puts == 0 {
		t.Fatal("computed result not written through")
	}
	if s := e1.Stats(); s.PersistMisses == 0 || s.PersistHits != 0 {
		t.Fatalf("first-run persist stats: %+v", s)
	}
	// Negative results persist too.
	if w, err := e1.Search(ctx, typ, Recording, 4); err != nil || w != nil {
		t.Fatalf("negative search: %v, %v", w, err)
	}

	e2 := New(Options{Workers: 2, CacheSize: -1, Persist: p})
	w2, err := e2.Search(ctx, typ, Recording, 3)
	if err != nil || w2 == nil {
		t.Fatalf("restart search: %v, %v", w2, err)
	}
	if !reflect.DeepEqual(*w1, *w2) {
		t.Fatalf("persisted witness differs: %s vs %s", w1, w2)
	}
	if w, err := e2.Search(ctx, typ, Recording, 4); err != nil || w != nil {
		t.Fatalf("persisted negative result: %v, %v", w, err)
	}
	if s := e2.Stats(); s.PersistHits != 2 {
		t.Fatalf("restart persist stats: %+v", s)
	}
}

// TestPersistServesStoredResult plants a distinguishable witness in the
// store and checks the engine serves it verbatim — direct proof that a
// persist hit skips the search entirely.
func TestPersistServesStoredResult(t *testing.T) {
	ctx := context.Background()
	p := newFakePersist()
	typ := types.NewSn(3)
	fp, ok := Fingerprint(typ, 3)
	if !ok {
		t.Fatal("S_3 not fingerprintable")
	}
	sentinel := persistedSearch{Found: true, Witness: &persistedWitness{
		Q0: "sentinel-state", Teams: []int{0, 1, 0}, Ops: []string{"a", "b", "c"},
	}}
	data, err := json.Marshal(sentinel)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put(context.Background(), persistKind, persistKey(fp, Recording, 3), data); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2, Persist: p})
	w, err := e.Search(ctx, typ, Recording, 3)
	if err != nil || w == nil {
		t.Fatalf("search: %v, %v", w, err)
	}
	if string(w.Q0) != "sentinel-state" {
		t.Fatalf("engine recomputed instead of serving the store: %s", w)
	}
	// The hit was promoted to the memo cache: a second search must not
	// re-read the store.
	gets := p.gets
	if _, err := e.Search(ctx, typ, Recording, 3); err != nil {
		t.Fatal(err)
	}
	if p.gets != gets {
		t.Fatal("memo-cached search re-read the store")
	}
}

// TestPersistFailureIsSoft: a broken store degrades to plain
// computation, counted but never surfaced.
func TestPersistFailureIsSoft(t *testing.T) {
	ctx := context.Background()
	p := newFakePersist()
	p.fail = true
	e := New(Options{Workers: 2, Persist: p})
	w, err := e.Search(ctx, types.NewSn(3), Recording, 3)
	if err != nil || w == nil {
		t.Fatalf("search with broken store: %v, %v", w, err)
	}
	if s := e.Stats(); s.PersistErrors == 0 {
		t.Fatalf("store failures uncounted: %+v", s)
	}
}

// TestPersistCorruptEntryIsMiss: an undecodable stored entry falls back
// to computation and is healed by the write-through.
func TestPersistCorruptEntryIsMiss(t *testing.T) {
	ctx := context.Background()
	p := newFakePersist()
	typ := types.NewSn(3)
	fp, _ := Fingerprint(typ, 3)
	key := persistKey(fp, Recording, 3)
	if err := p.Put(context.Background(), persistKind, key, []byte(`{"found":true,"witness":null}`)); err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2, Persist: p})
	w, err := e.Search(ctx, typ, Recording, 3)
	if err != nil || w == nil {
		t.Fatalf("search over corrupt entry: %v, %v", w, err)
	}
	if string(w.Q0) == "" {
		t.Fatal("empty witness served")
	}
	healed, ok := p.entries[persistKind+"\x00"+key]
	if !ok {
		t.Fatal("write-through did not heal the entry")
	}
	r, ok := decodeSearchResult(healed)
	if !ok || !r.found {
		t.Fatalf("healed entry undecodable: %s", healed)
	}
}

// namedPersist adapts fakePersist to store.Backend for chain tests.
type namedPersist struct{ *fakePersist }

func (namedPersist) Name() string { return "fake" }

// TestPersistChainReadThrough wires the engine to a real store.Chain —
// a cold local store, a failing middle tier, a warm far store — and
// proves the far hit is served with zero search work (PersistMisses
// stays 0), the failing tier is absorbed, and write-back healing makes
// the local tier warm for the next process.
func TestPersistChainReadThrough(t *testing.T) {
	ctx := context.Background()
	typ := types.NewSn(3)

	warm, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Options{Workers: 2, Persist: warm})
	w1, err := e1.Search(ctx, typ, Recording, 3)
	if err != nil || w1 == nil {
		t.Fatalf("warming search: %v, %v", w1, err)
	}

	local, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flaky := newFakePersist()
	flaky.fail = true
	chain := store.NewChain(local, namedPersist{flaky}, warm)

	e2 := New(Options{Workers: 2, CacheSize: -1, Persist: chain})
	w2, err := e2.Search(ctx, typ, Recording, 3)
	if err != nil || w2 == nil {
		t.Fatalf("chained search: %v, %v", w2, err)
	}
	if !reflect.DeepEqual(*w1, *w2) {
		t.Fatalf("chained witness differs: %s vs %s", w1, w2)
	}
	s := e2.Stats()
	if s.PersistHits != 1 || s.PersistMisses != 0 {
		t.Fatalf("chain hit did not skip the search: %+v", s)
	}
	if st := local.Stats(); st.Puts != 1 {
		t.Fatalf("write-back did not heal the local tier: %+v", st)
	}
	// A third process over just the healed local tier hits immediately.
	e3 := New(Options{Workers: 2, CacheSize: -1, Persist: local})
	if w3, err := e3.Search(ctx, typ, Recording, 3); err != nil || w3 == nil {
		t.Fatalf("healed-tier search: %v, %v", w3, err)
	}
	if s := e3.Stats(); s.PersistHits != 1 || s.PersistMisses != 0 {
		t.Fatalf("healed tier did not serve: %+v", s)
	}
}

// TestSearchResultCodecRoundTrip exercises the stored-JSON codec over
// real search outcomes for the whole zoo at a couple of levels.
func TestSearchResultCodecRoundTrip(t *testing.T) {
	ctx := context.Background()
	e := New(Options{Workers: 4})
	for _, typ := range types.Zoo() {
		for n := 2; n <= 3; n++ {
			for _, prop := range []Property{Recording, Discerning} {
				w, err := e.Search(ctx, typ, prop, n)
				if err != nil {
					t.Fatalf("%s %s n=%d: %v", typ.Name(), prop, n, err)
				}
				r := searchResult{found: w != nil}
				if w != nil {
					r.witness = cloneWitness(*w)
				}
				data, err := encodeSearchResult(r)
				if err != nil {
					t.Fatal(err)
				}
				back, ok := decodeSearchResult(data)
				if !ok {
					t.Fatalf("%s %s n=%d: round-trip decode failed: %s", typ.Name(), prop, n, data)
				}
				if back.found != r.found || (r.found && !reflect.DeepEqual(back.witness, r.witness)) {
					t.Fatalf("%s %s n=%d: round trip changed the result:\n%+v\nvs\n%+v",
						typ.Name(), prop, n, back, r)
				}
			}
		}
	}
}

func TestDecodeSearchResultRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{"found":true}`, // found without witness
		`{"found":true,"witness":{"teams":[0],"ops":["a","b"]}}`, // length mismatch
	} {
		if _, ok := decodeSearchResult([]byte(bad)); ok {
			t.Errorf("decoded garbage %s", bad)
		}
	}
	if r, ok := decodeSearchResult([]byte(`{"found":false}`)); !ok || r.found {
		t.Error("negative result failed to decode")
	}
}

// TestPersistKeysAreDistinct guards the key schema: property, level and
// type must all separate.
func TestPersistKeysAreDistinct(t *testing.T) {
	fpA, _ := Fingerprint(types.NewSn(3), 3)
	fpB, _ := Fingerprint(types.NewSn(4), 3)
	keys := map[string]bool{}
	for _, fp := range []string{fpA, fpB} {
		for _, prop := range []Property{Recording, Discerning} {
			for n := 2; n <= 3; n++ {
				keys[persistKey(fp, prop, n)] = true
			}
		}
	}
	if len(keys) != 8 {
		t.Fatalf("key schema collides: %d distinct keys, want 8", len(keys))
	}
	_ = fmt.Sprintf("%v", keys)
}
