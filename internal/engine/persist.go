package engine

import (
	"context"
	"encoding/json"
	"strconv"
	"sync/atomic"

	"rcons/internal/checker"
	"rcons/internal/obs"
	"rcons/internal/spec"
)

// Persist is the narrow persistent-cache surface the engine writes
// memoized search results through. Every store.Backend satisfies it —
// *store.Store (local disk), *store.Peer (read-through to another
// replica's /v1/store routes) and *store.Chain (tiered composition with
// write-back healing) — and the engine deliberately depends only on
// this interface so the checker core stays storage-free and tests can
// stub persistence.
//
// Get's ok=false means "not stored" (never an integrity failure — the
// store quarantines locally and re-verifies peer envelopes on receipt);
// errors are operational (I/O, a down or slow peer) and the engine
// treats them as misses and recomputes. A persist hit is promoted to
// the memo cache, so a result fetched from a warm peer costs zero
// search work here and zero further peer traffic.
// The context is passed through so peer-backed stores can propagate
// the request's trace ID over the wire and hang their tier spans off
// the search's span.
type Persist interface {
	Get(ctx context.Context, kind, key string) ([]byte, bool, error)
	Put(ctx context.Context, kind, key string, payload []byte) error
}

// persistKind namespaces search results inside the shared store.
const persistKind = "search"

// persistStats are the engine's store-interaction counters, separate
// from the cache because persistence works with the memo cache disabled.
type persistStats struct {
	hits, misses, errors atomic.Int64
}

// persistKey names one search result: the exact type fingerprint (a
// hex SHA-256) qualified by property and level. Deterministic, so every
// binary sharing a store directory addresses the same computation at
// the same key.
func persistKey(fp string, p Property, n int) string {
	return fp + "/" + p.String() + "/" + strconv.Itoa(n)
}

// persistedWitness / persistedSearch are the stored JSON form of a
// search outcome. A stored found=false is as valuable as a witness: it
// is the exhaustive proof of absence, which is the expensive half.
type persistedWitness struct {
	Q0    string   `json:"q0"`
	Teams []int    `json:"teams"`
	Ops   []string `json:"ops"`
}

type persistedSearch struct {
	Found   bool              `json:"found"`
	Witness *persistedWitness `json:"witness,omitempty"`
}

func encodeSearchResult(r searchResult) ([]byte, error) {
	out := persistedSearch{Found: r.found}
	if r.found {
		ops := make([]string, len(r.witness.Ops))
		for i, op := range r.witness.Ops {
			ops[i] = string(op)
		}
		out.Witness = &persistedWitness{
			Q0:    string(r.witness.Q0),
			Teams: append([]int{}, r.witness.Teams...),
			Ops:   ops,
		}
	}
	return json.Marshal(out)
}

func decodeSearchResult(data []byte) (searchResult, bool) {
	var p persistedSearch
	if json.Unmarshal(data, &p) != nil {
		return searchResult{}, false
	}
	if !p.Found {
		return searchResult{found: false}, true
	}
	if p.Witness == nil || len(p.Witness.Teams) != len(p.Witness.Ops) {
		return searchResult{}, false
	}
	w := checker.Witness{Q0: spec.State(p.Witness.Q0), Teams: p.Witness.Teams}
	for _, op := range p.Witness.Ops {
		w.Ops = append(w.Ops, spec.Op(op))
	}
	return searchResult{found: true, witness: w}, true
}

// persistGet consults the store for a previously computed search
// result. Undecodable or erroring entries are treated as misses; the
// search simply recomputes and persistPut heals the entry.
func (e *Engine) persistGet(ctx context.Context, fp string, p Property, n int) (searchResult, bool) {
	ctx, span := obs.StartSpan(ctx, "engine.persist")
	defer span.End()
	data, ok, err := e.persist.Get(ctx, persistKind, persistKey(fp, p, n))
	if err != nil {
		e.pstats.errors.Add(1)
		span.MarkError()
		return searchResult{}, false
	}
	if !ok {
		e.pstats.misses.Add(1)
		span.SetAttr("hit", "false")
		return searchResult{}, false
	}
	r, ok := decodeSearchResult(data)
	if !ok {
		e.pstats.misses.Add(1)
		span.SetAttr("hit", "false")
		return searchResult{}, false
	}
	e.pstats.hits.Add(1)
	span.SetAttr("hit", "true")
	return r, true
}

// persistPut writes a computed search result through to the store.
// Failures are counted but never fail the search: persistence is an
// accelerator, not a correctness dependency.
func (e *Engine) persistPut(ctx context.Context, fp string, p Property, n int, r searchResult) {
	data, err := encodeSearchResult(r)
	if err != nil {
		e.pstats.errors.Add(1)
		return
	}
	if err := e.persist.Put(ctx, persistKind, persistKey(fp, p, n), data); err != nil {
		e.pstats.errors.Add(1)
	}
}
