package engine

import (
	"context"
	"reflect"
	"testing"

	"rcons/internal/checker"
	"rcons/internal/compile"
	"rcons/internal/types"
)

// symType is a two-state table with a state-swap automorphism: both
// states are initial, "flip" swaps them, "stay" fixes them, responses
// are constant. Its automorphism group has order 2, so shard pruning
// fires.
func symType() *types.Custom {
	return &types.Custom{
		TypeName: "prune-sym2",
		Initial:  []string{"a", "b"},
		Transitions: map[string]map[string]types.CustomEdge{
			"a": {"flip": {Next: "b", Resp: "ack"}, "stay": {Next: "a", Resp: "ack"}},
			"b": {"flip": {Next: "a", Resp: "ack"}, "stay": {Next: "b", Resp: "ack"}},
		},
	}
}

// TestPruneSymmetricShards checks the reduction itself: on a type with
// a nontrivial automorphism group the shard list shrinks, every kept
// shard is the first of its orbit, and on a trivial group the list is
// returned untouched.
func TestPruneSymmetricShards(t *testing.T) {
	typ := symType()
	const n = 3
	c, err := compile.Compile(typ, n)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Automorphisms().Nontrivial() {
		t.Fatal("expected a nontrivial automorphism group")
	}
	shards, err := checker.Shards(typ, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]checker.Shard(nil), shards...)
	pruned := pruneSymmetricShards(shards, c)
	if len(pruned) >= len(orig) {
		t.Fatalf("pruning kept %d of %d shards; expected a strict reduction", len(pruned), len(orig))
	}
	// Kept shards must be a subsequence of the original order (first
	// orbit occurrences), starting with shard 0.
	if !reflect.DeepEqual(pruned[0], orig[0]) {
		t.Fatalf("first shard was pruned: %+v", pruned[0])
	}
	j := 0
	for _, s := range pruned {
		for j < len(orig) && !reflect.DeepEqual(orig[j], s) {
			j++
		}
		if j == len(orig) {
			t.Fatalf("pruned shard %+v is not in original order", s)
		}
	}

	// A trivial group must leave the list untouched.
	asym := &types.Custom{
		TypeName: "prune-asym",
		Initial:  []string{"a"},
		Transitions: map[string]map[string]types.CustomEdge{
			"a": {"f": {Next: "b", Resp: "r0"}, "g": {Next: "a", Resp: "r1"}},
			"b": {"f": {Next: "b", Resp: "r1"}, "g": {Next: "a", Resp: "r0"}},
		},
	}
	ca, err := compile.Compile(asym, n)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Automorphisms().Nontrivial() {
		t.Fatal("asym type unexpectedly has symmetry")
	}
	shards2, err := checker.Shards(asym, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := pruneSymmetricShards(shards2, ca); len(got) != len(shards2) {
		t.Fatalf("trivial group pruned %d shards", len(shards2)-len(got))
	}
}

// TestPrunedSearchMatchesInterpreted pins end-to-end soundness: the
// default engine (compiled tables + symmetry pruning) must classify the
// symmetric type and return witnesses bit-identically to the
// interpreted engine, which enumerates every shard.
func TestPrunedSearchMatchesInterpreted(t *testing.T) {
	typ := symType()
	fast := New(Options{Workers: 4, CacheSize: -1})
	slow := New(Options{Workers: 4, CacheSize: -1, Interpreted: true})
	ctx := context.Background()
	for n := 2; n <= 4; n++ {
		for _, p := range []Property{Recording, Discerning} {
			wf, err := fast.Search(ctx, typ, p, n)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := slow.Search(ctx, typ, p, n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wf, ws) {
				t.Fatalf("n=%d %v: pruned witness %+v != interpreted %+v", n, p, wf, ws)
			}
		}
	}
}
