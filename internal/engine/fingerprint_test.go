package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"rcons/internal/spec"
	"rcons/internal/types"
)

// referenceFingerprint is the original fmt-based formulation of
// Fingerprint, kept verbatim as an oracle: the optimized builder must
// hash the exact same byte stream, because fingerprints key the
// persistent result store and must stay stable across releases.
func referenceFingerprint(t spec.Type, n int) (string, bool) {
	h := sha256.New()
	fmt.Fprintf(h, "name=%s\nn=%d\n", t.Name(), n)
	states := t.InitialStates()
	for _, s := range states {
		fmt.Fprintf(h, "init=%q\n", s)
	}
	ops := spec.CandidateOps(t, n)
	for _, op := range ops {
		fmt.Fprintf(h, "op=%q\n", op)
	}
	seen := map[spec.State]bool{}
	var frontier []spec.State
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}
	var all []spec.State
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		all = append(all, s)
		for _, op := range ops {
			ns, _, err := t.Apply(s, op)
			if err != nil {
				return "", false
			}
			if !seen[ns] {
				if len(seen) >= fingerprintStateCap {
					return "", false
				}
				seen[ns] = true
				frontier = append(frontier, ns)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, s := range all {
		for _, op := range ops {
			ns, r, err := t.Apply(s, op)
			if err != nil {
				return "", false
			}
			fmt.Fprintf(h, "%q/%q->%q/%q\n", s, op, ns, r)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// TestFingerprintMatchesReference locks the optimized Fingerprint to
// the fmt-based byte stream it replaced, over the whole zoo at several
// process counts.
func TestFingerprintMatchesReference(t *testing.T) {
	for _, typ := range types.Zoo() {
		for n := 2; n <= 4; n++ {
			got, gotOK := Fingerprint(typ, n)
			want, wantOK := referenceFingerprint(typ, n)
			if gotOK != wantOK || got != want {
				t.Errorf("Fingerprint(%s, %d) = %q, %v; reference = %q, %v",
					typ.Name(), n, got, gotOK, want, wantOK)
			}
		}
	}
}

// TestFingerprintStable pins one concrete digest so an accidental
// format change (which would orphan every persisted store entry) fails
// loudly, not just relative to an in-repo oracle.
func TestFingerprintStable(t *testing.T) {
	typ, err := types.ByName("test&set")
	if err != nil {
		t.Fatal(err)
	}
	fp, ok := Fingerprint(typ, 2)
	if !ok {
		t.Fatal("test&set must be fingerprintable")
	}
	ref, _ := referenceFingerprint(typ, 2)
	if fp != ref {
		t.Fatalf("digest drifted: %s != %s", fp, ref)
	}
	if len(fp) != 64 {
		t.Fatalf("fingerprint length = %d, want 64 hex chars", len(fp))
	}
}

// BenchmarkFingerprintZoo tracks the cost of the exact fingerprint —
// the per-call key computation on every memoized engine path.
func BenchmarkFingerprintZoo(b *testing.B) {
	zoo := types.Zoo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range zoo {
			Fingerprint(t, 3)
		}
	}
}
