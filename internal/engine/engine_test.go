package engine

import (
	"context"
	"reflect"
	"testing"

	"rcons/internal/checker"
	"rcons/internal/spec"
	"rcons/internal/types"
)

func newTestEngine() *Engine {
	// More workers than CPUs on purpose: determinism must not depend on
	// the pool width.
	return New(Options{Workers: 8})
}

// TestEngineMatchesSequentialZoo is the acceptance gate for the sharded
// search: for every type in the zoo, the engine's classification must be
// deeply identical — bands, levels, AtLimit flags and witnesses — to the
// sequential checker.Classify.
func TestEngineMatchesSequentialZoo(t *testing.T) {
	e := newTestEngine()
	ctx := context.Background()
	limit := 4
	if !testing.Short() {
		limit = 5
	}
	for _, typ := range types.Zoo() {
		want, err := checker.Classify(typ, limit, nil)
		if err != nil {
			t.Fatalf("%s: sequential: %v", typ.Name(), err)
		}
		got, err := e.Classify(ctx, typ, limit)
		if err != nil {
			t.Fatalf("%s: engine: %v", typ.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: engine classification differs\n got: %+v\nwant: %+v", typ.Name(), got, want)
		}
	}
}

// TestSearchMatchesSequentialWitness property-tests shard-partition
// completeness: across the zoo, both properties, and several levels, the
// parallel search finds a witness iff the sequential search does — and
// the identical witness, since the pool preserves enumeration order.
func TestSearchMatchesSequentialWitness(t *testing.T) {
	e := newTestEngine()
	ctx := context.Background()
	for _, typ := range types.Zoo() {
		for n := 2; n <= 4; n++ {
			for p, seq := range map[Property]func(spec.Type, int, *checker.SearchOptions) (*checker.Witness, error){
				Recording:  checker.SearchRecording,
				Discerning: checker.SearchDiscerning,
			} {
				want, err := seq(typ, n, nil)
				if err != nil {
					t.Fatalf("%s %s n=%d: sequential: %v", typ.Name(), p, n, err)
				}
				got, err := e.Search(ctx, typ, p, n)
				if err != nil {
					t.Fatalf("%s %s n=%d: engine: %v", typ.Name(), p, n, err)
				}
				if (got == nil) != (want == nil) {
					t.Fatalf("%s %s n=%d: engine found=%v, sequential found=%v",
						typ.Name(), p, n, got != nil, want != nil)
				}
				if got != nil && !reflect.DeepEqual(*got, *want) {
					t.Errorf("%s %s n=%d: witness differs\n got: %s\nwant: %s",
						typ.Name(), p, n, got, want)
				}
			}
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx := context.Background()
	typ := types.NewSn(3)

	if s := e.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("fresh engine has stats %+v", s)
	}
	w1, err := e.Search(ctx, typ, Recording, 3)
	if err != nil || w1 == nil {
		t.Fatalf("first search: w=%v err=%v", w1, err)
	}
	if s := e.Stats(); s.Hits != 0 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after miss: %+v", s)
	}
	w2, err := e.Search(ctx, typ, Recording, 3)
	if err != nil || w2 == nil {
		t.Fatalf("second search: w=%v err=%v", w2, err)
	}
	if s := e.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after hit: %+v", s)
	}
	if !reflect.DeepEqual(*w1, *w2) {
		t.Fatalf("cache returned a different witness: %s vs %s", w1, w2)
	}

	// Cached entries must be isolated from caller mutation.
	w1.Ops[0] = "corrupted"
	w3, err := e.Search(ctx, typ, Recording, 3)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(*w1, *w3) {
		t.Fatal("mutating a returned witness corrupted the cache")
	}

	// Negative results are memoized too: S_3 is not 4-recording.
	for i := 0; i < 2; i++ {
		w, err := e.Search(ctx, typ, Recording, 4)
		if err != nil || w != nil {
			t.Fatalf("S_3 4-recording round %d: w=%v err=%v", i, w, err)
		}
	}
	s := e.Stats()
	if s.Hits != 3 || s.Misses != 2 {
		t.Fatalf("after negative-result hit: %+v", s)
	}

	// Distinct properties and levels use distinct keys.
	if _, err := e.Search(ctx, typ, Discerning, 3); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Misses != 3 {
		t.Fatalf("property should not share cache keys: %+v", s)
	}
}

func TestCacheDisabled(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: -1})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := e.Search(ctx, types.NewSn(2), Recording, 2); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s != (CacheStats{}) {
		t.Fatalf("disabled cache reported %+v", s)
	}
}

func TestCacheEviction(t *testing.T) {
	e := New(Options{Workers: 2, CacheSize: 1})
	ctx := context.Background()
	if _, err := e.Search(ctx, types.NewSn(2), Recording, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(ctx, types.NewSn(3), Recording, 2); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Entries != 1 || s.Evictions != 1 {
		t.Fatalf("eviction stats: %+v", s)
	}
	// The first key was evicted, so searching it again is a miss.
	if _, err := e.Search(ctx, types.NewSn(2), Recording, 2); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Hits != 0 || s.Misses != 3 {
		t.Fatalf("post-eviction stats: %+v", s)
	}
}

// TestFingerprintIdentity checks that the cache key identifies the
// transition table, not the Go value: structurally equal types share a
// fingerprint, and any semantic difference separates them.
func TestFingerprintIdentity(t *testing.T) {
	a, ok := Fingerprint(types.NewSn(3), 3)
	if !ok {
		t.Fatal("S_3 not fingerprintable")
	}
	b, ok := Fingerprint(types.NewSn(3), 3)
	if !ok || a != b {
		t.Fatalf("equal types, unequal fingerprints: %s vs %s", a, b)
	}
	c, _ := Fingerprint(types.NewSn(4), 3)
	if a == c {
		t.Fatal("S_3 and S_4 share a fingerprint")
	}
	d, _ := Fingerprint(types.NewSn(3), 4)
	if a == d {
		t.Fatal("fingerprint ignores the level's op alphabet")
	}

	table := func(resp string) *types.Custom {
		tbl := &types.Custom{
			TypeName: "probe",
			Initial:  []string{"q0"},
			Transitions: map[string]map[string]types.CustomEdge{
				"q0": {"opA": {Next: "q1", Resp: "a"}, "opB": {Next: "q1", Resp: resp}},
				"q1": {"opA": {Next: "q1", Resp: "a"}, "opB": {Next: "q1", Resp: "a"}},
			},
		}
		if err := tbl.Validate(); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	f1, ok := Fingerprint(table("b"), 2)
	if !ok {
		t.Fatal("custom type not fingerprintable")
	}
	f2, _ := Fingerprint(table("b"), 2)
	if f1 != f2 {
		t.Fatal("identical custom tables, different fingerprints")
	}
	f3, _ := Fingerprint(table("B"), 2)
	if f1 == f3 {
		t.Fatal("fingerprint ignores responses")
	}
}

func TestScanCoversZoo(t *testing.T) {
	e := newTestEngine()
	cs, err := e.Scan(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	zoo := types.Zoo()
	if len(cs) != len(zoo) {
		t.Fatalf("Scan returned %d results for %d types", len(cs), len(zoo))
	}
	for i, c := range cs {
		if c.TypeName != zoo[i].Name() {
			t.Errorf("result %d is %q, want %q (order must be preserved)", i, c.TypeName, zoo[i].Name())
		}
	}
}

func TestContextCancellation(t *testing.T) {
	e := newTestEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Search(ctx, types.NewTn(5), Recording, 4); err == nil {
		t.Fatal("cancelled context accepted")
	}
	if _, err := e.ClassifyAll(ctx, types.Zoo(), 4); err == nil {
		t.Fatal("cancelled batch accepted")
	}
}

func TestEngineErrors(t *testing.T) {
	e := newTestEngine()
	ctx := context.Background()
	if _, err := e.Search(ctx, types.NewSn(2), Recording, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := e.Classify(ctx, types.NewSn(2), 1); err == nil {
		t.Fatal("limit=1 accepted")
	}
	if _, err := e.Search(ctx, types.NewSn(2), Property(99), 2); err == nil {
		t.Fatal("bogus property accepted")
	}
}

func TestParseProperty(t *testing.T) {
	for s, want := range map[string]Property{
		"recording": Recording, "rec": Recording,
		"discerning": Discerning, "disc": Discerning,
	} {
		got, err := ParseProperty(s)
		if err != nil || got != want {
			t.Errorf("ParseProperty(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseProperty("bogus"); err == nil {
		t.Error("bogus property parsed")
	}
	if Recording.String() != "recording" || Discerning.String() != "discerning" {
		t.Error("Property.String mismatch")
	}
}
