package engine

import (
	"container/list"
	"sync"

	"rcons/internal/checker"
)

// cacheKey identifies one memoized search: 128 bits of the type's
// canonical fingerprint (already a SHA-256; folding it keeps the
// collision probability negligible), the property, and the process
// count. A comparable struct of machine words keys the map with no
// per-lookup allocation or string building. Deliberately NOT routed
// through the process-wide intern table: rcserve classifies arbitrary
// user-supplied custom types, and interning every distinct fingerprint
// would grow the append-only table without bound while the cache itself
// stays bounded.
type cacheKey struct {
	fp   [2]uint64
	prop Property
	n    int
}

// CacheStats reports the engine cache's cumulative behavior.
type CacheStats struct {
	// Hits and Misses count lookups that did / did not find an entry.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Entries is the current number of memoized results.
	Entries int `json:"entries"`
	// Evictions counts entries dropped to respect the size bound.
	Evictions int64 `json:"evictions"`
	// PersistHits / PersistMisses count memo misses that were / were not
	// answered by the persistent result store (zero without one);
	// PersistErrors counts store reads or writes that failed (the search
	// proceeds regardless).
	PersistHits   int64 `json:"persistHits"`
	PersistMisses int64 `json:"persistMisses"`
	PersistErrors int64 `json:"persistErrors"`
}

// searchResult is a memoized witness-search outcome. Found=false is as
// meaningful as a witness: it records the (expensive) exhaustive proof
// that no witness exists for that (type, property, n).
type searchResult struct {
	found   bool
	witness checker.Witness
}

// cache is a bounded LRU memoization table for search results, keyed by
// fingerprint-derived cache keys. LRU (rather than the FIFO this used
// to be) keeps a steady request mix — rcserve serving a hot subset of
// the zoo while census traffic streams thousands of one-off generated
// types through the same engine — from evicting the hot entries: every
// hit refreshes its key, so the one-shot census keys age out first.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used
	stats   CacheStats
}

// cacheEntry is the list payload.
type cacheEntry struct {
	key    cacheKey
	result searchResult
}

func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	return &cache{max: max, entries: make(map[cacheKey]*list.Element), order: list.New()}
}

func (c *cache) get(key cacheKey) (searchResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return searchResult{}, false
	}
	c.stats.Hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

func (c *cache) put(key cacheKey, r searchResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = r
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.max {
		back := c.order.Back()
		if back == nil {
			break
		}
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: r})
}

func (c *cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}
