package engine

import (
	"sync/atomic"

	"rcons/internal/checker"
)

// cacheKey identifies one memoized search: 128 bits of the type's
// canonical fingerprint (already a SHA-256; folding it keeps the
// collision probability negligible), the property, and the process
// count. A comparable struct of machine words keys the map with no
// per-lookup allocation or string building. Deliberately NOT routed
// through the process-wide intern table: rcserve classifies arbitrary
// user-supplied custom types, and interning every distinct fingerprint
// would grow the append-only table without bound while the cache itself
// stays bounded.
type cacheKey struct {
	fp   [2]uint64
	prop Property
	n    int
}

// CacheStats reports the engine cache's cumulative behavior.
type CacheStats struct {
	// Hits and Misses count lookups that did / did not find an entry.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Entries is the current number of memoized results.
	Entries int `json:"entries"`
	// Evictions counts entries dropped to respect the size bound.
	Evictions int64 `json:"evictions"`
	// PersistHits / PersistMisses count memo misses that were / were not
	// answered by the persistent result store (zero without one);
	// PersistErrors counts store reads or writes that failed (the search
	// proceeds regardless).
	PersistHits   int64 `json:"persistHits"`
	PersistMisses int64 `json:"persistMisses"`
	PersistErrors int64 `json:"persistErrors"`
}

// searchResult is a memoized witness-search outcome. Found=false is as
// meaningful as a witness: it records the (expensive) exhaustive proof
// that no witness exists for that (type, property, n).
type searchResult struct {
	found   bool
	witness checker.Witness
}

// cache is a bounded LRU memoization table for search results, keyed by
// fingerprint-derived cache keys. LRU (rather than the FIFO this used
// to be) keeps a steady request mix — rcserve serving a hot subset of
// the zoo while census traffic streams thousands of one-off generated
// types through the same engine — from evicting the hot entries: every
// hit refreshes its key, so the one-shot census keys age out first.
// The eviction machinery lives in the generic LRU; this wrapper only
// adds the hit/miss accounting.
type cache struct {
	lru          *LRU[cacheKey, searchResult]
	hits, misses atomic.Int64
}

func newCache(max int) *cache {
	return &cache{lru: NewLRU[cacheKey, searchResult](max)}
}

func (c *cache) get(key cacheKey) (searchResult, bool) {
	r, ok := c.lru.Get(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return r, ok
}

func (c *cache) put(key cacheKey, r searchResult) {
	c.lru.Put(key, r)
}

func (c *cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Entries:   c.lru.Len(),
		Evictions: c.lru.Evictions(),
	}
}
