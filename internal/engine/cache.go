package engine

import (
	"sync"

	"rcons/internal/checker"
)

// cacheKey identifies one memoized search: 128 bits of the type's
// canonical fingerprint (already a SHA-256; folding it keeps the
// collision probability negligible), the property, and the process
// count. A comparable struct of machine words keys the map with no
// per-lookup allocation or string building. Deliberately NOT routed
// through the process-wide intern table: rcserve classifies arbitrary
// user-supplied custom types, and interning every distinct fingerprint
// would grow the append-only table without bound while the cache itself
// stays bounded.
type cacheKey struct {
	fp   [2]uint64
	prop Property
	n    int
}

// CacheStats reports the engine cache's cumulative behavior.
type CacheStats struct {
	// Hits and Misses count lookups that did / did not find an entry.
	Hits, Misses int64
	// Entries is the current number of memoized results.
	Entries int
	// Evictions counts entries dropped to respect the size bound.
	Evictions int64
}

// searchResult is a memoized witness-search outcome. Found=false is as
// meaningful as a witness: it records the (expensive) exhaustive proof
// that no witness exists for that (type, property, n).
type searchResult struct {
	found   bool
	witness checker.Witness
}

// cache is a bounded memoization table for search results, keyed by
// fingerprint-derived cache keys. Eviction is FIFO: witness searches
// have no meaningful recency structure (a zoo scan touches every key
// once), so the simple policy serves as well as LRU here and is cheaper.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]searchResult
	order   []cacheKey // insertion order, for FIFO eviction
	stats   CacheStats
}

func newCache(max int) *cache {
	return &cache{max: max, entries: make(map[cacheKey]searchResult)}
}

func (c *cache) get(key cacheKey) (searchResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[key]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return r, ok
}

func (c *cache) put(key cacheKey, r searchResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = r
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
		c.stats.Evictions++
	}
	c.entries[key] = r
	c.order = append(c.order, key)
}

func (c *cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}
