package engine

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"rcons/internal/checker"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// fuzzTable decodes fuzz bytes into a small total transition table:
// nStates ∈ 1..4, nOps ∈ 1..3, responses over an alphabet of ≤ 3, one
// initial state. The same bytes always decode to the same table, so
// fuzz findings are reproducible.
type fuzzTable struct {
	nStates, nOps, nResps int
	next, resp            [][]int // [state][op]
	init                  int
}

func decodeTable(data []byte) (*fuzzTable, bool) {
	if len(data) < 4 {
		return nil, false
	}
	ft := &fuzzTable{
		nStates: int(data[0])%4 + 1,
		nOps:    int(data[1])%3 + 1,
		nResps:  int(data[2])%3 + 1,
	}
	ft.init = int(data[3]) % ft.nStates
	need := ft.nStates * ft.nOps * 2
	if len(data) < 4+need {
		return nil, false
	}
	pos := 4
	for s := 0; s < ft.nStates; s++ {
		nrow := make([]int, ft.nOps)
		rrow := make([]int, ft.nOps)
		for o := 0; o < ft.nOps; o++ {
			nrow[o] = int(data[pos]) % ft.nStates
			rrow[o] = int(data[pos+1]) % ft.nResps
			pos += 2
		}
		ft.next = append(ft.next, nrow)
		ft.resp = append(ft.resp, rrow)
	}
	return ft, true
}

// build materializes the table as a Custom type with the given label
// functions, so the same structure can be produced under different
// labelings.
func (ft *fuzzTable) build(name string, state, op, resp func(int) string) *types.Custom {
	tr := map[string]map[string]types.CustomEdge{}
	for s := 0; s < ft.nStates; s++ {
		row := map[string]types.CustomEdge{}
		for o := 0; o < ft.nOps; o++ {
			row[op(o)] = types.CustomEdge{
				Next: state(ft.next[s][o]),
				Resp: resp(ft.resp[s][o]),
			}
		}
		tr[state(s)] = row
	}
	return &types.Custom{
		TypeName:    name,
		Initial:     []string{state(ft.init)},
		Transitions: tr,
	}
}

// perm3 derives a permutation of 0..k-1 (k ≤ 4) from one fuzz byte.
func permFromByte(b byte, k int) []int {
	p := make([]int, k)
	for i := range p {
		p[i] = i
	}
	// Fisher–Yates driven by the byte (enough entropy for k ≤ 4).
	x := int(b)
	for i := k - 1; i > 0; i-- {
		j := x % (i + 1)
		x /= i + 1
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FuzzFingerprint checks the canonical fingerprint's defining property:
// invariance under consistent relabeling of states, operations and
// responses. It also pins down determinism of both fingerprint flavours.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("\x01\x01\x01\x00\x01\x00\x00\x01\x01\x01\x01\x00"))
	f.Add([]byte("\x03\x02\x02\x01" +
		"\x01\x00\x02\x01\x03\x02" +
		"\x00\x01\x01\x02\x02\x00" +
		"\x03\x00\x00\x00\x01\x01" +
		"\x02\x02\x03\x01\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, ok := decodeTable(data)
		if !ok {
			t.Skip()
		}
		// Relabeling permutations come from the tail of the input so the
		// fuzzer can explore them independently of the table.
		var pb [3]byte
		for i := range pb {
			if len(data) > i {
				pb[i] = data[len(data)-1-i]
			}
		}
		ps := permFromByte(pb[0], ft.nStates)
		po := permFromByte(pb[1], ft.nOps)
		pr := permFromByte(pb[2], ft.nResps)

		orig := ft.build("fz",
			func(i int) string { return fmt.Sprintf("s%d", i) },
			func(i int) string { return fmt.Sprintf("a%d", i) },
			func(i int) string { return fmt.Sprintf("r%d", i) })
		relabeled := ft.build("fz-relabeled",
			func(i int) string { return fmt.Sprintf("state_%d", ps[i]) },
			func(i int) string { return fmt.Sprintf("op_%d", po[i]) },
			func(i int) string { return fmt.Sprintf("resp_%d", pr[i]) })
		if err := orig.Validate(); err != nil {
			t.Fatalf("decoder built an invalid table: %v", err)
		}

		const n = 2
		fpO, okO := CanonicalFingerprint(orig, n)
		fpR, okR := CanonicalFingerprint(relabeled, n)
		if okO != okR {
			t.Fatalf("canonicalizability differs under relabeling: %v vs %v", okO, okR)
		}
		if okO && fpO != fpR {
			t.Fatalf("canonical fingerprint not invariant under relabeling:\n%s\nvs\n%s", fpO, fpR)
		}

		// Determinism: both fingerprint flavours are pure functions.
		if fp2, _ := CanonicalFingerprint(orig, n); fp2 != fpO {
			t.Fatalf("CanonicalFingerprint nondeterministic: %s vs %s", fpO, fp2)
		}
		exact1, ok1 := Fingerprint(orig, n)
		exact2, ok2 := Fingerprint(orig, n)
		if ok1 != ok2 || exact1 != exact2 {
			t.Fatalf("Fingerprint nondeterministic: (%s,%v) vs (%s,%v)", exact1, ok1, exact2, ok2)
		}
	})
}

// parityEngine is shared across fuzz iterations so its memoization cache
// is exercised too — cache keys include the full transition table, so
// distinct fuzz tables cannot collide.
var parityEngine = New(Options{Workers: 4})

// FuzzClassifyParity checks the engine's core contract on arbitrary
// small types: the sharded concurrent classification must be
// byte-identical to the sequential checker's.
func FuzzClassifyParity(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("\x01\x01\x01\x00\x01\x00\x00\x01\x01\x01\x01\x00"))
	f.Add([]byte("\x01\x00\x01\x00\x01\x01\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, ok := decodeTable(data)
		if !ok {
			t.Skip()
		}
		typ := ft.build("fzp",
			func(i int) string { return fmt.Sprintf("s%d", i) },
			func(i int) string { return fmt.Sprintf("a%d", i) },
			func(i int) string { return fmt.Sprintf("r%d", i) })
		if err := typ.Validate(); err != nil {
			t.Fatalf("decoder built an invalid table: %v", err)
		}

		const limit = 3
		seq, seqErr := checker.Classify(typ, limit, nil)
		par, parErr := parityEngine.Classify(context.Background(), typ, limit)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("error parity broken: sequential=%v, engine=%v", seqErr, parErr)
		}
		if seqErr != nil {
			t.Skip()
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("engine diverged from sequential checker:\nseq: %+v\npar: %+v", seq, par)
		}
	})
}

// TestCanonicalFingerprintZoo sanity-checks the canonical fingerprint on
// real types: defined for the small zoo members, stable across calls,
// and distinct for structurally different types.
func TestCanonicalFingerprintZoo(t *testing.T) {
	fps := map[string]string{}
	for _, typ := range []spec.Type{types.NewCAS(), types.NewSn(2), types.NewSn(3), types.NewCounter(3)} {
		fp, ok := CanonicalFingerprint(typ, 2)
		if !ok {
			t.Fatalf("%s not canonicalizable", typ.Name())
		}
		fp2, _ := CanonicalFingerprint(typ, 2)
		if fp != fp2 {
			t.Fatalf("%s canonical fingerprint unstable", typ.Name())
		}
		fps[typ.Name()] = fp
	}
	if fps["S_2"] == fps["S_3"] {
		t.Fatal("S_2 and S_3 share a canonical fingerprint")
	}
}
