// Package engine is the concurrent classification engine layered over
// package checker. It answers the same questions — "is type T
// n-recording / n-discerning, and what cons/rcons bands follow?" — but
// partitions each exhaustive witness search into independent shards
// (checker.Shards), verifies the shards on a worker pool with early
// cancellation once a witness is found, and memoizes results behind a
// canonical type fingerprint so repeated queries (CLI runs, zoo scans,
// rcserve traffic) are served from cache.
//
// Determinism: the pool tracks the lowest-indexed shard that produced a
// witness and cancels only shards that enumerate later, so the engine
// returns exactly the witness the sequential search would, independent
// of worker count and scheduling. Classification results are therefore
// byte-identical to checker.Classify (asserted over the whole zoo by
// TestEngineMatchesSequentialZoo).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rcons/internal/checker"
	"rcons/internal/compile"
	"rcons/internal/obs"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// Property selects which of the paper's two structural properties a
// search targets.
type Property int

const (
	// Recording is the n-recording property (Definition 4).
	Recording Property = iota
	// Discerning is the n-discerning property (Definition 2).
	Discerning
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case Recording:
		return "recording"
	case Discerning:
		return "discerning"
	}
	return fmt.Sprintf("Property(%d)", int(p))
}

// ParseProperty resolves the names used by CLI flags and rcserve query
// parameters.
func ParseProperty(s string) (Property, error) {
	switch s {
	case "recording", "rec":
		return Recording, nil
	case "discerning", "disc":
		return Discerning, nil
	}
	return 0, fmt.Errorf("engine: unknown property %q (want recording or discerning)", s)
}

func (p Property) verify() (checker.VerifyFunc, error) {
	switch p {
	case Recording:
		return checker.VerifyRecording, nil
	case Discerning:
		return checker.VerifyDiscerning, nil
	}
	return nil, fmt.Errorf("engine: invalid property %d", int(p))
}

// Options configures an Engine. The zero value gives one worker per CPU
// and a 4096-entry cache.
type Options struct {
	// Workers is the number of concurrent shard verifications per
	// search; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize bounds the number of memoized search results (LRU);
	// 0 means 4096, negative disables in-memory memoization entirely.
	CacheSize int
	// Persist, when non-nil, backs the memo cache with a persistent
	// result store: cache misses consult it before searching, and every
	// computed result is written through — so classifications survive
	// restarts and are shared by every binary opening the same store.
	Persist Persist
	// Interpreted disables the compiled fast path: searches verify
	// witnesses by interpreting spec.Type directly instead of compiling
	// it to dense transition tables first, and symmetric-shard pruning
	// is off. This is the parity oracle — results must be bit-identical
	// either way (asserted by the compiled-parity batteries).
	Interpreted bool
}

// Engine runs sharded, memoized witness searches. It is safe for
// concurrent use; one Engine is meant to be shared (e.g. by all rcserve
// requests) so that the cache actually accumulates.
type Engine struct {
	workers int
	// sem globally bounds busy shard verifications: concurrent searches
	// (two property scans per Classify, many classifications per batch)
	// each spawn their own goroutines, but at most `workers` of them
	// hold a slot and burn CPU at any instant, so nested fan-out cannot
	// oversubscribe the machine quadratically.
	sem     chan struct{}
	cache   *cache  // nil when memoization is disabled
	persist Persist // nil when no persistent store is attached
	pstats  persistStats

	// classes memoizes whole classifications keyed by exact fingerprint
	// and limit. The search memo alone leaves a cached Classify paying
	// ~100µs of pure bookkeeping — two goroutine fan-outs plus one
	// SHA-256 fingerprint per (property, level) lookup — which dominates
	// hot serving paths like /v1/classify/batch over a warm engine. A
	// classification hit skips all of it. nil whenever cache is nil.
	classes                *LRU[classKey, checker.Classification]
	classHits, classMisses atomic.Int64

	// interpreted switches verification to the parity-oracle path.
	interpreted bool
	// compiled caches one dense transition table per (type, n), shared
	// by every shard and memo probe of every search on that type. A nil
	// entry value records that compilation failed (e.g. the state space
	// exceeds compile.StateCap) so the failure is not retried per search.
	cmu      sync.Mutex
	compiled map[compiledKey]*compiledEntry
}

// compiledKey identifies a compiled table by folded type fingerprint
// and process count.
type compiledKey struct {
	fp [2]uint64
	n  int
}

// compiledEntry delays compilation until the first search needs the
// table; concurrent searches share the one compile.
type compiledEntry struct {
	once sync.Once
	c    *compile.Compiled
}

// compiledCacheCap bounds the compiled-table cache; on overflow an
// arbitrary entry is evicted (tables are cheap to rebuild).
const compiledCacheCap = 4096

// New builds an Engine from opts.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:     w,
		sem:         make(chan struct{}, w),
		persist:     opts.Persist,
		interpreted: opts.Interpreted,
		compiled:    map[compiledKey]*compiledEntry{},
	}
	size := opts.CacheSize
	if size == 0 {
		size = 4096
	}
	if size > 0 {
		e.cache = newCache(size)
		e.classes = NewLRU[classKey, checker.Classification](size)
	}
	return e
}

// classKey identifies one memoized classification: the folded exact
// fingerprint at n = limit (which hashes the type's name, alphabet and
// full reachable transition table, so equal keys imply identical
// classifications including TypeName) plus the limit itself.
type classKey struct {
	fp    [2]uint64
	limit int
}

// cloneClassification deep-copies the witness pointers inside a
// classification so cached entries are immune to caller mutation (the
// value itself is copied by assignment; only MaxLevel.Witness aliases).
func cloneClassification(c checker.Classification) checker.Classification {
	if c.Discerning.Witness != nil {
		w := cloneWitness(*c.Discerning.Witness)
		c.Discerning.Witness = &w
	}
	if c.Recording.Witness != nil {
		w := cloneWitness(*c.Recording.Witness)
		c.Recording.Witness = &w
	}
	return c
}

// Workers returns the configured worker-pool width.
func (e *Engine) Workers() int { return e.workers }

// Stats returns cumulative cache statistics (zero values when the cache
// is disabled) merged with the persistent-store counters.
func (e *Engine) Stats() CacheStats {
	var s CacheStats
	if e.cache != nil {
		s = e.cache.Stats()
	}
	// Whole-classification memo hits are cache hits too: they answer a
	// Classify without any search-level lookups at all.
	s.Hits += e.classHits.Load()
	s.Misses += e.classMisses.Load()
	s.PersistHits = e.pstats.hits.Load()
	s.PersistMisses = e.pstats.misses.Load()
	s.PersistErrors = e.pstats.errors.Load()
	return s
}

// PublishProgress starts periodic publication of the engine's
// cumulative counters (lookups as the work unit, memo and persist hit
// ratios) to sink, tagged with the given trace ID. The returned stop
// function flushes one final sample and waits for the publisher to
// exit; a nil sink makes both no-ops. interval ≤ 0 means 1s.
func (e *Engine) PublishProgress(interval time.Duration, sink obs.Sink, trace string) (stop func()) {
	start := time.Now()
	return obs.PublishEvery(interval, sink, func() obs.Progress {
		s := e.Stats()
		nodes := s.Hits + s.Misses
		elapsed := time.Since(start)
		var rate float64
		if secs := elapsed.Seconds(); secs > 0 {
			rate = float64(nodes) / secs
		}
		return obs.Progress{
			Task:          "engine",
			TraceID:       trace,
			Nodes:         nodes,
			NodesPerSec:   rate,
			MemoHits:      s.Hits,
			MemoMisses:    s.Misses,
			PersistHits:   s.PersistHits,
			PersistMisses: s.PersistMisses,
			Elapsed:       elapsed,
		}
	})
}

// Search looks for a witness of property p for type t among n processes,
// verifying enumeration shards concurrently. It returns nil when no
// witness exists over the candidate sets — the same exhaustive guarantee
// as the sequential checker searches. Results (including negative ones)
// are memoized under the type's fingerprint, and — with a persistent
// store attached — written through to disk, so they survive restarts.
func (e *Engine) Search(ctx context.Context, t spec.Type, p Property, n int) (*checker.Witness, error) {
	verify, err := p.verify()
	if err != nil {
		return nil, err
	}
	var (
		key     cacheKey
		fp      string
		haveKey bool
	)
	if e.cache != nil || e.persist != nil {
		if f, ok := Fingerprint(t, n); ok {
			fp = f
			key = cacheKey{fp: foldFingerprint(fp), prop: p, n: n}
			haveKey = true
		}
	}
	if haveKey && e.cache != nil {
		if r, ok := e.cache.get(key); ok {
			return resultWitness(r), nil
		}
	}
	if haveKey && e.persist != nil {
		if r, ok := e.persistGet(ctx, fp, p, n); ok {
			// Promote to the memo cache so the disk is read once.
			if e.cache != nil {
				e.cache.put(key, r)
			}
			return resultWitness(r), nil
		}
	}
	// A genuinely computed search is the expensive stage worth its own
	// span; memo and persist hits returned above (persistGet spans
	// itself). Only computed searches pay for compilation either. A nil
	// table (interpreted mode, or the type exceeds the compiler's caps)
	// falls back to the interpreted verifier.
	sctx, span := obs.StartSpan(ctx, "engine.search")
	span.SetAttr("property", p.String())
	span.SetAttr("n", strconv.Itoa(n))
	defer span.End()
	comp := e.compiledFor(t, n, key, haveKey)
	if comp != nil {
		verify = checker.CompiledVerify(comp, p == Recording)
	}
	w, err := e.searchParallel(sctx, t, n, verify, comp)
	if err != nil {
		span.MarkError()
		return nil, err
	}
	// Cached paths return above untouched; only genuinely computed
	// searches are worth a (debug-level, usually discarded) log line.
	obs.LoggerFrom(ctx).Debug("engine search computed",
		"type", t.Name(), "property", p.String(), "n", n, "witness", w != nil)
	if haveKey {
		r := searchResult{found: w != nil}
		if w != nil {
			r.witness = cloneWitness(*w)
		}
		if e.cache != nil {
			e.cache.put(key, r)
		}
		if e.persist != nil {
			e.persistPut(sctx, fp, p, n, r)
		}
	}
	return w, nil
}

// resultWitness converts a cached/stored result back into the Search
// return convention, deep-copying so callers cannot corrupt the cache.
func resultWitness(r searchResult) *checker.Witness {
	if !r.found {
		return nil
	}
	w := cloneWitness(r.witness)
	return &w
}

// foldFingerprint packs the leading 128 bits of a canonical fingerprint
// (64 hex characters of SHA-256) into the cache key. Malformed input
// cannot occur — Fingerprint always hex-encodes — but is still mapped
// injectively enough for a cache (worst case: a shared bucket).
func foldFingerprint(fp string) [2]uint64 {
	var out [2]uint64
	for i := 0; i < 32 && i < len(fp); i++ {
		c := fp[i]
		var v uint64
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		}
		out[i/16] = out[i/16]<<4 | v
	}
	return out
}

// cloneWitness deep-copies a witness so cached entries are immune to
// caller mutation.
func cloneWitness(w checker.Witness) checker.Witness {
	return checker.Witness{
		Q0:    w.Q0,
		Teams: append([]int(nil), w.Teams...),
		Ops:   append([]spec.Op(nil), w.Ops...),
	}
}

// compiledFor returns the dense transition table for (t, n), compiling
// and caching it on first use, or nil when the engine runs interpreted
// or the type cannot be compiled (caps exceeded, malformed ops). The
// cache key reuses the already-folded search fingerprint; searches
// without one (memoization disabled and no store) compile fresh, which
// costs one Apply per table cell.
func (e *Engine) compiledFor(t spec.Type, n int, key cacheKey, haveKey bool) *compile.Compiled {
	if e.interpreted {
		return nil
	}
	if !haveKey {
		c, _ := compile.Compile(t, n)
		return c
	}
	ck := compiledKey{fp: key.fp, n: n}
	e.cmu.Lock()
	ent := e.compiled[ck]
	if ent == nil {
		if len(e.compiled) >= compiledCacheCap {
			for k := range e.compiled {
				delete(e.compiled, k)
				break
			}
		}
		ent = &compiledEntry{}
		e.compiled[ck] = ent
	}
	e.cmu.Unlock()
	ent.once.Do(func() { ent.c, _ = compile.Compile(t, n) })
	return ent.c
}

// pruneSymmetricShards drops witness-search shards that are relabelings
// of earlier ones under the table's automorphism group, keeping the
// first shard of each orbit. Keeping first occurrences preserves the
// search verdict AND the canonical witness: if the lowest-indexed
// witness-containing shard were pruned as the orbit-mate of an earlier
// kept shard, that earlier shard would contain the relabeled witness —
// contradicting minimality — so it is never pruned, and every shard
// before it is witness-free with or without pruning.
//
// The reduction only fires when the shard alphabet is exactly the
// compiled alphabet (it is, for searches with default candidate sets:
// both come from spec.CandidateOps) and the group is nontrivial.
func pruneSymmetricShards(shards []checker.Shard, c *compile.Compiled) []checker.Shard {
	if len(shards) == 0 {
		return shards
	}
	g := c.Automorphisms()
	if !g.Nontrivial() {
		return shards
	}
	ops := shards[0].Ops
	if len(ops) != c.NumOps() {
		return shards
	}
	for k, op := range ops {
		if c.OpAt(uint16(k)) != op {
			return shards
		}
	}
	seen := make(map[string]bool, len(shards))
	out := shards[:0]
	for _, s := range shards {
		q0, ok := c.StateIndex(s.Q0)
		if !ok {
			out = append(out, s)
			continue
		}
		key := g.CanonicalShardKey(q0, s.ACounts)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}

// searchParallel fans the enumeration shards for (t, n) out over the
// worker pool. To keep the result identical to the sequential search it
// tracks the lowest shard index that has produced a witness: workers
// stop claiming shards past it, in-flight later shards are cancelled
// through their contexts, and earlier in-flight shards run to completion
// because they could still yield the canonical (first-in-order) witness.
func (e *Engine) searchParallel(ctx context.Context, t spec.Type, n int, verify checker.VerifyFunc, comp *compile.Compiled) (*checker.Witness, error) {
	shards, err := checker.Shards(t, n, nil)
	if err != nil || len(shards) == 0 {
		return nil, err
	}
	if comp != nil {
		shards = pruneSymmetricShards(shards, comp)
	}
	workers := min(e.workers, len(shards))
	if workers <= 1 {
		for _, s := range shards {
			e.sem <- struct{}{}
			w, err := checker.SearchShard(ctx, t, s, verify)
			<-e.sem
			if err != nil {
				return nil, err
			}
			if w != nil {
				return w, nil
			}
		}
		return nil, nil
	}

	var (
		mu       sync.Mutex
		bestIdx  = len(shards)
		bestW    *checker.Witness
		firstErr error
		active   = map[int]context.CancelFunc{}
		next     int
	)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				if i >= len(shards) || i >= bestIdx || firstErr != nil {
					mu.Unlock()
					return
				}
				sctx, cancel := context.WithCancel(ctx)
				active[i] = cancel
				mu.Unlock()

				e.sem <- struct{}{}
				w, err := checker.SearchShard(sctx, t, shards[i], verify)
				<-e.sem

				mu.Lock()
				delete(active, i)
				cancel()
				switch {
				case err != nil:
					// A cancellation we triggered ourselves (the shard
					// became obsolete after a lower-indexed witness) is
					// not a search failure; everything else is.
					if errors.Is(err, context.Canceled) && ctx.Err() == nil {
						mu.Unlock()
						continue
					}
					if firstErr == nil {
						firstErr = err
						for _, c := range active {
							c()
						}
					}
					mu.Unlock()
					return
				case w != nil && i < bestIdx:
					bestIdx, bestW = i, w
					for j, c := range active {
						if j > i {
							c()
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return bestW, nil
}

// Max scans property p for n = 2 … limit, mirroring checker.MaxRecording
// / MaxDiscerning (including the downward-closure early stop) but with
// each level's search sharded and memoized.
func (e *Engine) Max(ctx context.Context, t spec.Type, p Property, limit int) (checker.MaxLevel, error) {
	out := checker.MaxLevel{Max: 1, Limit: limit}
	for n := 2; n <= limit; n++ {
		w, err := e.Search(ctx, t, p, n)
		if err != nil {
			return checker.MaxLevel{}, err
		}
		if w == nil {
			return out, nil
		}
		out.Max = n
		out.Witness = w
	}
	out.AtLimit = true
	return out, nil
}

// Classify derives type t's cons/rcons bands exactly like
// checker.Classify, with the two property scans running concurrently and
// every level search sharded over the worker pool.
func (e *Engine) Classify(ctx context.Context, t spec.Type, limit int) (checker.Classification, error) {
	if limit < 2 {
		return checker.Classification{}, fmt.Errorf("checker: classification limit must be ≥ 2, got %d", limit)
	}
	ctx, span := obs.StartSpan(ctx, "engine.classify")
	span.SetAttr("type", t.Name())
	span.SetAttr("limit", strconv.Itoa(limit))
	defer span.End()
	var (
		ckey    classKey
		haveKey bool
	)
	if e.classes != nil {
		if fp, ok := Fingerprint(t, limit); ok {
			ckey = classKey{fp: foldFingerprint(fp), limit: limit}
			haveKey = true
			if c, ok := e.classes.Get(ckey); ok {
				e.classHits.Add(1)
				span.SetAttr("memo", "hit")
				return cloneClassification(c), nil
			}
			e.classMisses.Add(1)
			span.SetAttr("memo", "miss")
		}
	}
	var (
		wg         sync.WaitGroup
		disc, rec  checker.MaxLevel
		dErr, rErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		disc, dErr = e.Max(ctx, t, Discerning, limit)
	}()
	go func() {
		defer wg.Done()
		rec, rErr = e.Max(ctx, t, Recording, limit)
	}()
	wg.Wait()
	if dErr != nil {
		span.MarkError()
		return checker.Classification{}, fmt.Errorf("classify %s: %w", t.Name(), dErr)
	}
	if rErr != nil {
		span.MarkError()
		return checker.Classification{}, fmt.Errorf("classify %s: %w", t.Name(), rErr)
	}
	c, err := checker.Derive(t, disc, rec)
	if err == nil && haveKey {
		e.classes.Put(ckey, cloneClassification(c))
	}
	return c, err
}

// ClassifyEach classifies every type in ts, running up to Workers
// classifications concurrently, and reports each item's outcome
// independently: errs[i] is non-nil exactly when out[i] is not valid.
// One bad item (a table a theorem rejects, a per-item failure) does not
// poison the rest of the batch — this is the per-item contract behind
// rcserve's POST /v1/classify/batch. Both slices keep the order of ts.
func (e *Engine) ClassifyEach(ctx context.Context, ts []spec.Type, limit int) (out []checker.Classification, errs []error) {
	out = make([]checker.Classification, len(ts))
	errs = make([]error, len(ts))
	sem := make(chan struct{}, max(e.workers, 1))
	var wg sync.WaitGroup
	for i, t := range ts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				errs[i] = ctx.Err()
				return
			}
			out[i], errs[i] = e.Classify(ctx, t, limit)
		}()
	}
	wg.Wait()
	return out, errs
}

// ClassifyAll classifies every type in ts, running up to Workers
// classifications concurrently. Results keep the order of ts; the first
// error aborts the batch.
func (e *Engine) ClassifyAll(ctx context.Context, ts []spec.Type, limit int) ([]checker.Classification, error) {
	out, errs := e.ClassifyEach(ctx, ts, limit)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Scan classifies the entire built-in type zoo at the given limit — the
// batch behind `rcserve /v1/zoo` and the harness hierarchy table.
func (e *Engine) Scan(ctx context.Context, limit int) ([]checker.Classification, error) {
	return e.ClassifyAll(ctx, types.Zoo(), limit)
}
