package engine

import (
	"context"
	"testing"

	"rcons/internal/types"
)

// BenchmarkClassifyWarmZoo measures a fully warm Classify over the
// whole zoo — the per-item floor of rcserve's batch endpoint. With the
// whole-classification memo this is one fingerprint, one LRU hit and
// one witness clone per type.
func BenchmarkClassifyWarmZoo(b *testing.B) {
	zoo := types.Zoo()
	e := New(Options{Workers: 4})
	ctx := context.Background()
	for _, t := range zoo {
		if _, err := e.Classify(ctx, t, 3); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range zoo {
			if _, err := e.Classify(ctx, t, 3); err != nil {
				b.Fatal(err)
			}
		}
	}
}
