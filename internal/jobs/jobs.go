// Package jobs is a generic asynchronous job manager: the subsystem
// behind rcserve's /v1/jobs endpoints, built for work (census runs,
// exhaustive model checks, zoo scans) that outlives any sane HTTP
// request deadline. Callers register handlers per job kind, submit a
// kind plus JSON parameters, and poll the returned ID.
//
// Execution is a bounded worker pool in the engine's sharding
// discipline: jobs queue FIFO, at most Workers run at once, and each
// running job gets its own cancellable context (plus the configured
// per-job deadline). Job IDs are deterministic fingerprints of
// (kind, canonicalized parameters), so duplicate submissions — from
// retrying clients or a million users asking the same question —
// coalesce onto one execution and one retained result.
//
// With a persistent store attached, finished results are written
// through and resubmissions after a process restart are answered from
// disk without recomputation. Terminal jobs are retained up to a cap
// and evicted oldest-first; Drain stops intake and lets queued and
// running work finish within a deadline, cancelling whatever remains.
package jobs

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"rcons/internal/obs"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Handler executes one job kind. The params are the canonical JSON the
// job was submitted with; the result must be JSON. Handlers must honour
// ctx — it is how cancellation, deadlines and draining reach them.
type Handler func(ctx context.Context, params json.RawMessage) (json.RawMessage, error)

// Persist is the narrow persistent-store surface the manager writes
// finished results through; *store.Store satisfies it. The context
// carries the trace ID and active span, so a store probe during a
// traced submission is attributed to the submitting request.
type Persist interface {
	Get(ctx context.Context, kind, key string) ([]byte, bool, error)
	Put(ctx context.Context, kind, key string, payload []byte) error
}

// storeKind namespaces job results inside the shared store.
const storeKind = "job"

// Errors returned by Submit and Cancel.
var (
	ErrUnknownKind = errors.New("jobs: unknown job kind")
	ErrQueueFull   = errors.New("jobs: queue full")
	ErrClosed      = errors.New("jobs: manager draining")
	ErrNotFound    = errors.New("jobs: no such job")
	ErrTerminal    = errors.New("jobs: job already finished")
)

// Options configures a Manager.
type Options struct {
	// Workers bounds concurrently running jobs; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Queue bounds jobs waiting to run; 0 means 256. Submissions beyond
	// it fail with ErrQueueFull (load shedding, not unbounded buffering).
	Queue int
	// Retention caps retained terminal jobs; 0 means 512. The oldest
	// terminal jobs are evicted first; queued/running jobs never are.
	Retention int
	// Timeout is the per-job execution deadline; 0 means none.
	Timeout time.Duration
	// Store, when non-nil, persists finished results and answers
	// resubmissions of completed work across process restarts.
	Store Persist
	// Logger, when non-nil, receives job-lifecycle records (start,
	// finish, state, duration), each tagged with the job's trace ID —
	// which IS the deterministic job ID, so one grep over server logs
	// reconstructs a job's full path through handler and engine.
	Logger *slog.Logger
	// Tracer, when non-nil, gives every job execution a force-sampled
	// trace (ID = job ID) rooted at a "job.<kind>" span, so async work
	// lands in the flight recorder beside the HTTP requests.
	Tracer *obs.Tracer
}

// Info is a point-in-time snapshot of one job, safe to retain and
// serialize (rcserve returns it verbatim).
type Info struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	State  State           `json:"state"`
	Params json.RawMessage `json:"params,omitempty"`
	// Result is set once State is done; Error once failed/cancelled.
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// FromStore marks a result served from the persistent store without
	// (re)execution — the cross-restart dedup guarantee in action.
	FromStore bool       `json:"fromStore,omitempty"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// Stats is the queue-health snapshot /healthz reports.
type Stats struct {
	Workers  int `json:"workers"`
	QueueCap int `json:"queueCap"`
	// Queued/Running are current; the rest are cumulative.
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Submitted int64 `json:"submitted"`
	// Coalesced counts submissions answered by an existing live job;
	// StoreHits those answered from the persistent store.
	Coalesced int64 `json:"coalesced"`
	StoreHits int64 `json:"storeHits"`
	Evicted   int64 `json:"evicted"`
}

// job is the manager's mutable record; Info snapshots are copied out
// under the manager lock.
type job struct {
	info        Info
	handler     Handler
	cancel      context.CancelFunc // set while running
	cancelAsked bool
}

// Manager runs jobs. Create with New; all methods are safe for
// concurrent use.
type Manager struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond // signalled when queue gains work or the manager closes
	handlers map[string]Handler
	jobs     map[string]*job
	order    []string // submission order, for listing + eviction
	queue    []*job   // FIFO of queued jobs (cancellation removes in place)
	closed   bool
	stats    Stats
	wg       sync.WaitGroup
}

// New builds a Manager and starts its worker pool.
func New(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Queue <= 0 {
		opts.Queue = 256
	}
	if opts.Retention <= 0 {
		opts.Retention = 512
	}
	m := &Manager{
		opts:     opts,
		handlers: map[string]Handler{},
		jobs:     map[string]*job{},
	}
	m.cond = sync.NewCond(&m.mu)
	m.stats.Workers = opts.Workers
	m.stats.QueueCap = opts.Queue
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Register installs the handler for a job kind. It must be called
// before any Submit of that kind; re-registering replaces the handler
// for future jobs.
func (m *Manager) Register(kind string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[kind] = h
}

// Kinds lists the registered job kinds in sorted order.
func (m *Manager) Kinds() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.handlers))
	for k := range m.handlers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ID derives the deterministic job ID of (kind, params): a SHA-256 over
// the kind and the canonicalized parameter JSON (object keys sorted,
// whitespace dropped), so any two requests for the same work — however
// formatted — share an ID. This is what makes duplicate submissions
// coalesce, in-process and across restarts.
func ID(kind string, params json.RawMessage) (string, error) {
	canon, err := canonicalJSON(params)
	if err != nil {
		return "", fmt.Errorf("jobs: parameters for %q are not valid JSON: %w", kind, err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(canon)
	return "j" + hex.EncodeToString(h.Sum(nil))[:24], nil
}

// canonicalJSON reduces any JSON document to canonical bytes:
// encoding/json sorts map keys and emits no insignificant whitespace.
// Numbers are decoded as json.Number so their digits survive verbatim —
// an int64 seed above 2^53 must neither collide with its float64
// neighbour in the job ID nor come back overflowed to the handler.
func canonicalJSON(raw json.RawMessage) ([]byte, error) {
	if len(raw) == 0 {
		raw = json.RawMessage("null")
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("trailing data after JSON document")
	}
	return json.Marshal(v)
}

// persisted is the store payload of a finished job.
type persisted struct {
	Kind   string          `json:"kind"`
	Result json.RawMessage `json:"result"`
}

// Submit enqueues (kind, params) and returns the job's snapshot.
// existing is true when no new execution was started: the ID matched a
// live or completed job (coalescing) or a stored result from a previous
// process. A job that previously failed or was cancelled is re-run
// under the same ID. ctx scopes only the submission itself (the store
// probe and its trace attribution) — never the job's execution, which
// outlives the submitting request.
func (m *Manager) Submit(ctx context.Context, kind string, params json.RawMessage) (Info, bool, error) {
	id, err := ID(kind, params)
	if err != nil {
		return Info{}, false, err
	}
	canon, err := canonicalJSON(params)
	if err != nil {
		return Info{}, false, err
	}

	m.mu.Lock()
	h, ok := m.handlers[kind]
	if !ok {
		m.mu.Unlock()
		return Info{}, false, fmt.Errorf("%w %q", ErrUnknownKind, kind)
	}
	info, existing, err, handled := m.submitLocked(kind, h, id, canon, m.opts.Store == nil)
	m.mu.Unlock()
	if handled {
		return info, existing, err
	}

	// Probe the persistent store for a finished result from a previous
	// process — deliberately outside the manager lock, so disk reads
	// never stall Get/List/Cancel/Stats.
	var stored *persisted
	if data, hit, gerr := m.opts.Store.Get(ctx, storeKind, id); gerr == nil && hit {
		var p persisted
		if json.Unmarshal(data, &p) == nil && p.Kind == kind {
			stored = &p
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if stored != nil {
		if m.closed {
			return Info{}, false, ErrClosed
		}
		if j, ok := m.jobs[id]; ok {
			// Raced with another submission while we read the disk.
			m.stats.Coalesced++
			return snapshot(j), true, nil
		}
		now := time.Now()
		j := &job{info: Info{
			ID: id, Kind: kind, State: StateDone,
			Params: canon, Result: stored.Result, FromStore: true,
			Created: now, Finished: &now,
		}}
		m.jobs[id] = j
		m.order = append(m.order, id)
		m.stats.StoreHits++
		m.stats.Done++
		m.evictLocked()
		return snapshot(j), true, nil
	}
	info, existing, err, _ = m.submitLocked(kind, h, id, canon, true)
	return info, existing, err
}

// submitLocked resolves a submission against the in-memory state:
// coalesce onto a live/completed job, re-queue failed/cancelled work,
// or — when enqueue is true — start a fresh queued job. handled=false
// (only possible with enqueue=false) means the caller should probe the
// store first. Requires m.mu.
func (m *Manager) submitLocked(kind string, h Handler, id string, canon json.RawMessage, enqueue bool) (Info, bool, error, bool) {
	if m.closed {
		return Info{}, false, ErrClosed, true
	}
	if j, ok := m.jobs[id]; ok {
		switch j.info.State {
		case StateFailed, StateCancelled:
			// A fresh attempt reuses the ID (the work is the same work).
			if len(m.queue) >= m.opts.Queue {
				return Info{}, false, ErrQueueFull, true
			}
			j.info.State = StateQueued
			j.info.Result = nil
			j.info.Error = ""
			j.info.FromStore = false
			j.info.Created = time.Now()
			j.info.Started, j.info.Finished = nil, nil
			j.cancelAsked, j.cancel = false, nil
			j.handler = h
			m.queue = append(m.queue, j)
			m.stats.Submitted++
			m.cond.Signal()
			return snapshot(j), false, nil, true
		default:
			m.stats.Coalesced++
			return snapshot(j), true, nil, true
		}
	}
	if !enqueue {
		return Info{}, false, nil, false
	}
	if len(m.queue) >= m.opts.Queue {
		return Info{}, false, ErrQueueFull, true
	}
	j := &job{
		info:    Info{ID: id, Kind: kind, State: StateQueued, Params: canon, Created: time.Now()},
		handler: h,
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.queue = append(m.queue, j)
	m.stats.Submitted++
	m.evictLocked()
	m.cond.Signal()
	return snapshot(j), false, nil, true
}

// worker pops queued jobs until the manager is closed AND the queue is
// empty — so a graceful drain still executes everything already queued.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.mu.Unlock()
			return
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		if j.info.State != StateQueued {
			m.mu.Unlock()
			continue
		}
		ctx := context.Background()
		var cancel context.CancelFunc
		if m.opts.Timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, m.opts.Timeout)
		} else {
			ctx, cancel = context.WithCancel(ctx)
		}
		j.cancel = cancel
		now := time.Now()
		j.info.State = StateRunning
		j.info.Started = &now
		m.stats.Running++
		handler, params := j.handler, j.info.Params
		m.mu.Unlock()

		// The deterministic job ID doubles as the trace ID: handler,
		// engine and census log lines all carry it via the context.
		// Without a configured logger this is trace propagation only —
		// no logger clone, no record building — so an uninstrumented
		// manager's per-job overhead stays one context allocation.
		ctx = obs.WithTrace(ctx, j.info.ID)
		// With a tracer, the execution is additionally a force-sampled
		// trace of its own (same ID), so every job's stage breakdown
		// lands in the flight recorder regardless of sampling rate.
		ctx, span := m.opts.Tracer.StartTrace(ctx, "job."+j.info.Kind, j.info.ID, true)
		logger := m.opts.Logger
		if logger != nil {
			logger = logger.With("trace", j.info.ID, "kind", j.info.Kind)
			ctx = obs.ContextWithLogger(ctx, logger)
			logger.Info("job start", "queuedFor", now.Sub(j.info.Created))
		}

		result, err := handler(ctx, params)
		cancel()
		if err != nil {
			span.MarkError()
		}
		state, dur := m.finish(j, result, err)
		span.End()
		if logger != nil {
			logger.Info("job finish", "state", state, "duration", dur)
		}
	}
}

// finish records a returned handler's outcome and, for completed work,
// persists the result (outside the manager lock: an fsync must never
// stall the API surface). It returns the final state and run duration
// for the worker's lifecycle log line.
func (m *Manager) finish(j *job, result json.RawMessage, err error) (State, time.Duration) {
	m.mu.Lock()
	fin := time.Now()
	j.info.Finished = &fin
	j.cancel = nil
	m.stats.Running--
	var persist []byte
	switch {
	case j.cancelAsked:
		// The result of cancelled work is discarded even if the handler
		// managed to finish before noticing the dead context.
		j.info.State = StateCancelled
		j.info.Error = "cancelled"
		m.stats.Cancelled++
	case err != nil:
		j.info.State = StateFailed
		j.info.Error = err.Error()
		m.stats.Failed++
	default:
		j.info.State = StateDone
		j.info.Result = result
		m.stats.Done++
		if m.opts.Store != nil {
			persist, _ = json.Marshal(persisted{Kind: j.info.Kind, Result: result})
		}
	}
	state := j.info.State
	var dur time.Duration
	if j.info.Started != nil {
		dur = fin.Sub(*j.info.Started)
	}
	m.evictLocked()
	m.mu.Unlock()
	if persist != nil {
		// Persistence failure degrades restart dedup, never the job.
		// The job's own context is cancelled by now; a fresh one (still
		// carrying the trace ID for peer-backed stores) writes the
		// result.
		_ = m.opts.Store.Put(obs.WithTrace(context.Background(), j.info.ID), storeKind, j.info.ID, persist)
	}
	return state, dur
}

// Get returns a snapshot of the job with the given ID.
func (m *Manager) Get(id string) (Info, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Info{}, false
	}
	return snapshot(j), true
}

// List returns snapshots of every retained job, newest submission
// first, with Params/Result stripped (poll the ID for the payload).
func (m *Manager) List() []Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Info, 0, len(m.order))
	for i := len(m.order) - 1; i >= 0; i-- {
		j, ok := m.jobs[m.order[i]]
		if !ok {
			continue
		}
		info := snapshot(j)
		info.Params, info.Result = nil, nil
		out = append(out, info)
	}
	return out
}

// Cancel stops the job with the given ID: a queued job is cancelled
// immediately, a running job has its context cancelled (the state
// flips to cancelled when the handler returns). Cancelling an
// already-cancelled job is a no-op; a done/failed one is ErrTerminal.
func (m *Manager) Cancel(id string) (Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Info{}, ErrNotFound
	}
	switch j.info.State {
	case StateQueued:
		m.unqueueLocked(j)
		now := time.Now()
		j.info.State = StateCancelled
		j.info.Error = "cancelled"
		j.info.Finished = &now
		j.cancelAsked = true
		m.stats.Cancelled++
		m.evictLocked()
	case StateRunning:
		j.cancelAsked = true
		if j.cancel != nil {
			j.cancel()
		}
	case StateCancelled:
		// idempotent
	default:
		return snapshot(j), ErrTerminal
	}
	return snapshot(j), nil
}

// unqueueLocked removes j from the pending queue, freeing its slot
// immediately (a cancelled job must not count against the queue cap).
// Requires m.mu.
func (m *Manager) unqueueLocked(j *job) {
	for i, q := range m.queue {
		if q == j {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return
		}
	}
}

// Stats returns the queue-health snapshot.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Queued = len(m.queue)
	return s
}

// Drain stops intake and shuts the pool down gracefully: queued and
// running jobs keep executing until done or ctx expires, at which point
// every remaining job is cancelled and the workers are awaited (their
// handlers observe the cancelled contexts and return). Returns ctx's
// error when the deadline forced cancellations, nil on a clean drain.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline hit: cancel everything still alive, then wait for the
	// workers (handlers return promptly once their contexts die).
	m.mu.Lock()
	for _, j := range m.jobs {
		switch j.info.State {
		case StateQueued:
			m.unqueueLocked(j)
			now := time.Now()
			j.info.State = StateCancelled
			j.info.Error = "cancelled: shutdown"
			j.info.Finished = &now
			j.cancelAsked = true
			m.stats.Cancelled++
		case StateRunning:
			j.cancelAsked = true
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	<-done
	return ctx.Err()
}

// evictLocked drops the oldest terminal jobs beyond the retention cap.
// Requires m.mu.
func (m *Manager) evictLocked() {
	terminal := 0
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok && j.info.State.Terminal() {
			terminal++
		}
	}
	if terminal <= m.opts.Retention {
		return
	}
	excess := terminal - m.opts.Retention
	keep := m.order[:0]
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		if excess > 0 && j.info.State.Terminal() {
			delete(m.jobs, id)
			m.stats.Evicted++
			excess--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

func snapshot(j *job) Info {
	return j.info // Info's reference fields are never mutated in place
}
