package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"rcons/internal/store"
)

// waitState polls until the job reaches a terminal state (or the given
// one) and returns its snapshot.
func waitState(t *testing.T, m *Manager, id string, want State) Info {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if info.State == want || (want.Terminal() && info.State.Terminal()) {
			return info
		}
		time.Sleep(time.Millisecond)
	}
	info, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s (want %s)", id, info.State, want)
	return Info{}
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("drain: %v", err)
	}
}

// TestJobLifecycle is the lifecycle table test: one scenario per row,
// covering submit→poll→result, duplicate-submit coalescing, cancel
// while queued and cancel mid-run, failure, and unknown kinds.
func TestJobLifecycle(t *testing.T) {
	type row struct {
		name string
		run  func(t *testing.T, m *Manager, runs *atomic.Int64, release chan struct{})
	}
	rows := []row{
		{"submit-poll-result", func(t *testing.T, m *Manager, runs *atomic.Int64, release chan struct{}) {
			close(release)
			info, existing, err := m.Submit(context.Background(), "echo", json.RawMessage(`{"x": 7}`))
			if err != nil || existing {
				t.Fatalf("submit: %+v existing=%v err=%v", info, existing, err)
			}
			if info.State != StateQueued && info.State != StateRunning && info.State != StateDone {
				t.Fatalf("fresh job in state %s", info.State)
			}
			got := waitState(t, m, info.ID, StateDone)
			if got.State != StateDone || string(got.Result) != `{"echo":{"x":7}}` {
				t.Fatalf("result: %+v", got)
			}
			if got.Started == nil || got.Finished == nil {
				t.Fatalf("timestamps missing: %+v", got)
			}
		}},
		{"duplicate-submit-coalesces", func(t *testing.T, m *Manager, runs *atomic.Int64, release chan struct{}) {
			// The handler blocks until released, so every duplicate lands
			// while the first execution is still in flight.
			a, existing, err := m.Submit(context.Background(), "gated", json.RawMessage(`{"q": 1}`))
			if err != nil || existing {
				t.Fatalf("first submit: existing=%v err=%v", existing, err)
			}
			// Same parameters, different formatting: same job.
			b, existing, err := m.Submit(context.Background(), "gated", json.RawMessage("{ \"q\" : 1 }"))
			if err != nil || !existing || b.ID != a.ID {
				t.Fatalf("duplicate not coalesced: %s vs %s (existing=%v err=%v)", b.ID, a.ID, existing, err)
			}
			close(release)
			waitState(t, m, a.ID, StateDone)
			// Coalescing after completion too: the retained result answers.
			c, existing, err := m.Submit(context.Background(), "gated", json.RawMessage(`{"q":1}`))
			if err != nil || !existing || c.State != StateDone {
				t.Fatalf("post-completion submit: %+v existing=%v err=%v", c, existing, err)
			}
			if n := runs.Load(); n != 1 {
				t.Fatalf("coalesced job executed %d times", n)
			}
		}},
		{"cancel-mid-run", func(t *testing.T, m *Manager, runs *atomic.Int64, release chan struct{}) {
			info, _, err := m.Submit(context.Background(), "hang", nil)
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, m, info.ID, StateRunning)
			got, err := m.Cancel(info.ID)
			if err != nil {
				t.Fatalf("cancel: %v", err)
			}
			if got.State != StateRunning && got.State != StateCancelled {
				t.Fatalf("state right after cancel: %s", got.State)
			}
			final := waitState(t, m, info.ID, StateCancelled)
			if final.State != StateCancelled || final.Result != nil {
				t.Fatalf("cancelled job: %+v", final)
			}
			// Cancelling again is a no-op; cancelling done work errors.
			if _, err := m.Cancel(info.ID); err != nil {
				t.Fatalf("re-cancel of cancelled job: %v", err)
			}
		}},
		{"failure-recorded", func(t *testing.T, m *Manager, runs *atomic.Int64, release chan struct{}) {
			info, _, err := m.Submit(context.Background(), "fail", nil)
			if err != nil {
				t.Fatal(err)
			}
			got := waitState(t, m, info.ID, StateFailed)
			if got.State != StateFailed || got.Error != "deliberate failure" || got.Result != nil {
				t.Fatalf("failed job: %+v", got)
			}
			if _, err := m.Cancel(info.ID); !errors.Is(err, ErrTerminal) {
				t.Fatalf("cancel of failed job: %v", err)
			}
			// Resubmission of failed work re-runs under the same ID.
			again, existing, err := m.Submit(context.Background(), "fail", nil)
			if err != nil || existing || again.ID != info.ID {
				t.Fatalf("failed-job resubmit: %+v existing=%v err=%v", again, existing, err)
			}
			waitState(t, m, again.ID, StateFailed)
			if n := runs.Load(); n != 2 {
				t.Fatalf("failed job re-ran %d times, want 2", n)
			}
		}},
		{"unknown-kind", func(t *testing.T, m *Manager, runs *atomic.Int64, release chan struct{}) {
			if _, _, err := m.Submit(context.Background(), "nope", nil); !errors.Is(err, ErrUnknownKind) {
				t.Fatalf("unknown kind: %v", err)
			}
			if _, _, err := m.Submit(context.Background(), "echo", json.RawMessage(`{broken`)); err == nil {
				t.Fatal("invalid params accepted")
			}
			if _, ok := m.Get("jdeadbeef"); ok {
				t.Fatal("phantom job found")
			}
			if _, err := m.Cancel("jdeadbeef"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("cancel of phantom: %v", err)
			}
		}},
	}
	for _, tc := range rows {
		t.Run(tc.name, func(t *testing.T) {
			var runs atomic.Int64
			release := make(chan struct{})
			m := New(Options{Workers: 2, Queue: 8})
			m.Register("echo", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
				runs.Add(1)
				canon, _ := canonicalJSON(p)
				return json.RawMessage(fmt.Sprintf(`{"echo":%s}`, canon)), nil
			})
			m.Register("gated", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
				runs.Add(1)
				select {
				case <-release:
					return json.RawMessage(`{"ok":true}`), nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			})
			m.Register("hang", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
				runs.Add(1)
				<-ctx.Done()
				return nil, ctx.Err()
			})
			m.Register("fail", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
				runs.Add(1)
				return nil, errors.New("deliberate failure")
			})
			defer drain(t, m)
			tc.run(t, m, &runs, release)
		})
	}
}

func TestDeterministicIDs(t *testing.T) {
	a, err := ID("census", json.RawMessage(`{"states": 2, "ops": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ID("census", json.RawMessage("{\"ops\":3,  \"states\":2}"))
	if err != nil || a != b {
		t.Fatalf("key order / whitespace changed the ID: %s vs %s (%v)", a, b, err)
	}
	c, _ := ID("census", json.RawMessage(`{"states":2,"ops":4}`))
	if a == c {
		t.Fatal("different params share an ID")
	}
	d, _ := ID("mc", json.RawMessage(`{"states":2,"ops":3}`))
	if a == d {
		t.Fatal("different kinds share an ID")
	}
	if _, err := ID("census", json.RawMessage(`{bad`)); err == nil {
		t.Fatal("invalid JSON got an ID")
	}
	nil1, _ := ID("census", nil)
	nil2, _ := ID("census", json.RawMessage(`null`))
	if nil1 != nil2 {
		t.Fatal("nil and null params differ")
	}
}

func TestQueueFullSheds(t *testing.T) {
	block := make(chan struct{})
	m := New(Options{Workers: 1, Queue: 1})
	m.Register("hang", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	})
	defer func() { close(block); drain(t, m) }()

	first, _, err := m.Submit(context.Background(), "hang", json.RawMessage(`{"i":0}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateRunning)
	if _, _, err := m.Submit(context.Background(), "hang", json.RawMessage(`{"i":1}`)); err != nil {
		t.Fatalf("queue slot 1: %v", err)
	}
	if _, _, err := m.Submit(context.Background(), "hang", json.RawMessage(`{"i":2}`)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue: %v", err)
	}
	if st := m.Stats(); st.Queued != 1 || st.Running != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRetentionEviction(t *testing.T) {
	m := New(Options{Workers: 1, Queue: 32, Retention: 3})
	m.Register("echo", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	})
	defer drain(t, m)
	var ids []string
	for i := 0; i < 8; i++ {
		info, _, err := m.Submit(context.Background(), "echo", json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		waitState(t, m, info.ID, StateDone)
	}
	if st := m.Stats(); st.Evicted != 5 {
		t.Fatalf("evictions: %+v", st)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest job survived retention")
	}
	if _, ok := m.Get(ids[7]); !ok {
		t.Fatal("newest job evicted")
	}
	if got := len(m.List()); got != 3 {
		t.Fatalf("listing has %d jobs, want 3", got)
	}
}

func TestListOrderAndStripping(t *testing.T) {
	m := New(Options{Workers: 1, Queue: 8})
	m.Register("echo", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		return json.RawMessage(`{"big":"payload"}`), nil
	})
	defer drain(t, m)
	var ids []string
	for i := 0; i < 3; i++ {
		info, _, err := m.Submit(context.Background(), "echo", json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		waitState(t, m, info.ID, StateDone)
	}
	list := m.List()
	if len(list) != 3 || list[0].ID != ids[2] || list[2].ID != ids[0] {
		t.Fatalf("listing order: %+v", list)
	}
	for _, info := range list {
		if info.Params != nil || info.Result != nil {
			t.Fatalf("listing leaks payloads: %+v", info)
		}
	}
}

// TestStoreRoundTrip is the restart-dedup acceptance at the manager
// level: a second manager on the same store answers a duplicate
// submission from disk, without re-running the handler.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	handler := func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		runs.Add(1)
		return json.RawMessage(`{"answer":42}`), nil
	}
	m1 := New(Options{Workers: 1, Store: st})
	m1.Register("census", handler)
	info, _, err := m1.Submit(context.Background(), "census", json.RawMessage(`{"limit":3}`))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m1, info.ID, StateDone)
	drain(t, m1)

	// "Restart": fresh manager, fresh store handle, same directory.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(Options{Workers: 1, Store: st2})
	m2.Register("census", handler)
	defer drain(t, m2)
	again, existing, err := m2.Submit(context.Background(), "census", json.RawMessage(`{ "limit": 3 }`))
	if err != nil {
		t.Fatal(err)
	}
	if !existing || !again.FromStore || again.State != StateDone || again.ID != info.ID {
		t.Fatalf("restart submit not served from store: %+v existing=%v", again, existing)
	}
	if string(again.Result) != string(done.Result) {
		t.Fatalf("stored result differs: %s vs %s", again.Result, done.Result)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("handler ran %d times across restart, want 1", n)
	}
	// A different kind must not be answered by that entry even if the
	// params digest happens to be probed.
	m2.Register("other", handler)
	fresh, existing, err := m2.Submit(context.Background(), "other", json.RawMessage(`{"limit":3}`))
	if err != nil || existing {
		t.Fatalf("cross-kind store hit: %+v existing=%v err=%v", fresh, existing, err)
	}
}

func TestDrainGraceful(t *testing.T) {
	m := New(Options{Workers: 1, Queue: 8})
	started := make(chan struct{}, 8)
	m.Register("slow", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		started <- struct{}{}
		select {
		case <-time.After(20 * time.Millisecond):
			return json.RawMessage(`{}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	a, _, err := m.Submit(context.Background(), "slow", json.RawMessage(`{"i":1}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.Submit(context.Background(), "slow", json.RawMessage(`{"i":2}`))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	// Both the running and the queued job completed during the drain.
	for _, id := range []string{a.ID, b.ID} {
		info, ok := m.Get(id)
		if !ok || info.State != StateDone {
			t.Fatalf("job %s after drain: %+v", id, info)
		}
	}
	if _, _, err := m.Submit(context.Background(), "slow", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after drain: %v", err)
	}
	if err := m.Drain(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("double drain: %v", err)
	}
}

func TestDrainDeadlineCancels(t *testing.T) {
	m := New(Options{Workers: 1, Queue: 8})
	running := make(chan struct{})
	m.Register("hang", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		close(running)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	a, _, err := m.Submit(context.Background(), "hang", json.RawMessage(`{"i":1}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.Submit(context.Background(), "hang", json.RawMessage(`{"i":2}`))
	if err != nil {
		t.Fatal(err)
	}
	<-running
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain: %v", err)
	}
	ia, _ := m.Get(a.ID)
	ib, _ := m.Get(b.ID)
	if ia.State != StateCancelled || ib.State != StateCancelled {
		t.Fatalf("states after forced drain: %s, %s", ia.State, ib.State)
	}
}

func TestJobTimeout(t *testing.T) {
	m := New(Options{Workers: 1, Timeout: 30 * time.Millisecond})
	m.Register("hang", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	defer drain(t, m)
	info, _, err := m.Submit(context.Background(), "hang", nil)
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, info.ID, StateFailed)
	if got.State != StateFailed {
		t.Fatalf("timed-out job: %+v", got)
	}
}

// TestIDPreservesLargeIntegers guards the canonicalization against
// float64 round-tripping: int64 parameters above 2^53 must neither
// collide in the ID nor come back altered in the canonical params.
func TestIDPreservesLargeIntegers(t *testing.T) {
	a, err := ID("census", json.RawMessage(`{"seed":9007199254740993}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ID("census", json.RawMessage(`{"seed":9007199254740992}`))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("adjacent 2^53-scale seeds share a job ID")
	}
	canon, err := canonicalJSON(json.RawMessage(`{"seed": 9223372036854775807}`))
	if err != nil {
		t.Fatal(err)
	}
	var p struct {
		Seed int64 `json:"seed"`
	}
	if err := json.Unmarshal(canon, &p); err != nil || p.Seed != 9223372036854775807 {
		t.Fatalf("MaxInt64 seed corrupted by canonicalization: %s (%v)", canon, err)
	}
	if _, err := canonicalJSON(json.RawMessage(`{"a":1} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// TestCancelQueuedFreesSlot guards the queue accounting: cancelling a
// queued job must free its slot immediately, and resubmitting it must
// not double-run it.
func TestCancelQueuedFreesSlot(t *testing.T) {
	var runs atomic.Int64
	block := make(chan struct{})
	m := New(Options{Workers: 1, Queue: 2})
	m.Register("hang", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	})
	m.Register("count", func(ctx context.Context, p json.RawMessage) (json.RawMessage, error) {
		runs.Add(1)
		select {
		case <-block:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	})
	defer func() { close(block); drain(t, m) }()

	hog, _, err := m.Submit(context.Background(), "hang", json.RawMessage(`{"i":0}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, hog.ID, StateRunning)
	q1, _, err := m.Submit(context.Background(), "count", json.RawMessage(`{"i":1}`))
	if err != nil {
		t.Fatal(err)
	}
	q2, _, err := m.Submit(context.Background(), "count", json.RawMessage(`{"i":2}`))
	if err != nil {
		t.Fatal(err)
	}
	// Queue is now full; cancelling a queued job must free its slot.
	if _, _, err := m.Submit(context.Background(), "count", json.RawMessage(`{"i":3}`)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full: %v", err)
	}
	if _, err := m.Cancel(q1.ID); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Queued != 1 {
		t.Fatalf("cancelled job still occupies the queue: %+v", st)
	}
	// Resubmitting the cancelled job re-queues it exactly once, in the
	// freed slot.
	again, existing, err := m.Submit(context.Background(), "count", json.RawMessage(`{"i":1}`))
	if err != nil || existing || again.ID != q1.ID || again.State != StateQueued {
		t.Fatalf("resubmit after cancel: %+v existing=%v err=%v", again, existing, err)
	}
	if st := m.Stats(); st.Queued != 2 {
		t.Fatalf("queue depth after resubmit: %+v", st)
	}
	close(block)
	waitState(t, m, hog.ID, StateDone)
	waitState(t, m, q2.ID, StateDone)
	waitState(t, m, again.ID, StateDone)
	// hang ran once (uncounted); count ran exactly twice — i=2 and the
	// re-queued i=1; the cancelled submission itself never executed and
	// the resubmission did not run twice.
	if n := runs.Load(); n != 2 {
		t.Fatalf("count handler ran %d times, want 2", n)
	}
	block = make(chan struct{}) // neutralize the deferred close
}
