package universal

import (
	"strconv"
	"testing"

	"rcons/internal/checker"
	"rcons/internal/history"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// TestTwoUniversalObjectsShareMemory runs two independent constructions
// (a counter and a queue) in one memory, composed inside the same
// bodies, under crashes — operations on both must stay exactly-once.
func TestTwoUniversalObjectsShareMemory(t *testing.T) {
	const n = 2
	for seed := int64(0); seed < 40; seed++ {
		uc := New(n, types.NewFetchAdd(1000), "0", "cnt")
		uq := New(n, types.NewQueue(8), "", "q")
		m := sim.NewMemory()
		uc.Setup(m)
		uq.Setup(m)
		bodies := make([]sim.Body, n)
		for i := range bodies {
			i := i
			bodies[i] = func(p *sim.Proc) sim.Value {
				pos := uc.Invoke(p, i, 0, "add(1)")
				uq.Invoke(p, i, 1, spec.FormatOp("enq", string(pos)))
				uc.Invoke(p, i, 2, "add(1)")
				return sim.Value(pos)
			}
		}
		if _, err := sim.NewRunner(m, bodies, sim.Config{Seed: seed, CrashProb: 0.25, MaxCrashes: 6}).Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := uc.VerifyList(m); err != nil {
			t.Fatalf("seed %d: counter: %v", seed, err)
		}
		if err := uq.VerifyList(m); err != nil {
			t.Fatalf("seed %d: queue: %v", seed, err)
		}
		cl, _ := uc.ListOrder(m)
		ql, _ := uq.ListOrder(m)
		if len(cl) != 2*n || len(ql) != n {
			t.Fatalf("seed %d: counter %d ops (want %d), queue %d ops (want %d)",
				seed, len(cl), 2*n, len(ql), n)
		}
	}
}

// TestUniversalOverS3Tournament raises the tournament-RC integration to
// three processes over S_3 — the paper's full positive machinery at
// level 3 driving the universal construction.
func TestUniversalOverS3Tournament(t *testing.T) {
	n := 3
	w := checker.Witness{
		Q0:    types.SnInitial,
		Teams: []int{checker.TeamA, checker.TeamB, checker.TeamB},
		Ops:   []spec.Op{"opA", "opB", "opB"},
	}
	inst, err := rc.NewTournamentInstance(types.NewSn(n), w, n)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 15; seed++ {
		u := New(n, types.NewFetchAdd(1000), "0", "u")
		u.RC = inst
		m := sim.NewMemory()
		u.Setup(m)
		bodies := make([]sim.Body, n)
		for i := range bodies {
			i := i
			bodies[i] = func(p *sim.Proc) sim.Value {
				return sim.Value(u.Invoke(p, i, 0, "add(1)"))
			}
		}
		if _, err := sim.NewRunner(m, bodies, sim.Config{Seed: seed, CrashProb: 0.1, MaxCrashes: 3}).Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := u.VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		list, _ := u.ListOrder(m)
		if len(list) != n {
			t.Fatalf("seed %d: %d ops, want %d", seed, len(list), n)
		}
	}
}

// TestLongSoloRun checks a single process performing many operations
// (list growth, sequence numbers, head advancement).
func TestLongSoloRun(t *testing.T) {
	const ops = 40
	u := New(1, types.NewFetchAdd(10000), "0", "u")
	m := sim.NewMemory()
	u.Setup(m)
	body := func(p *sim.Proc) sim.Value {
		last := sim.Value("")
		for k := 0; k < ops; k++ {
			last = sim.Value(u.Invoke(p, 0, k, "add(1)"))
		}
		return last
	}
	out, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != strconv.Itoa(ops-1) {
		t.Fatalf("last response = %q, want %d", out.Decisions[0], ops-1)
	}
	if err := u.VerifyList(m); err != nil {
		t.Fatal(err)
	}
	list, _ := u.ListOrder(m)
	if len(list) != ops {
		t.Fatalf("list has %d ops, want %d", len(list), ops)
	}
	// Sequence numbers must be 2..ops+1 (dummy is 1).
	for i, nd := range list {
		if nd.Seq != i+2 {
			t.Fatalf("node %d has seq %d", i, nd.Seq)
		}
	}
}

// TestHistoryRecorderTimestamps checks invocation/return times are
// plausible: invoke ≤ return, and both bounded by total steps.
func TestHistoryRecorderTimestamps(t *testing.T) {
	u := New(2, types.NewCounter(100), "0", "u")
	u.Rec = history.NewRecorder()
	m := sim.NewMemory()
	u.Setup(m)
	bodies := []sim.Body{
		func(p *sim.Proc) sim.Value { return sim.Value(u.Invoke(p, 0, 0, "inc")) },
		func(p *sim.Proc) sim.Value { return sim.Value(u.Invoke(p, 1, 0, "inc")) },
	}
	out, err := sim.NewRunner(m, bodies, sim.Config{Seed: 3, CrashProb: 0.3, MaxCrashes: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range u.Rec.Events() {
		if !e.Completed {
			t.Fatalf("incomplete event %v despite all processes deciding", e)
		}
		if e.Invoke > e.Return || e.Return > out.Steps {
			t.Fatalf("implausible timestamps: %v (total steps %d)", e, out.Steps)
		}
	}
}

// TestSlotSurvivesCrashBeforeAnnounce pins the recovery subtlety: a
// crash after the slot write but before the announce write must still
// resume the SAME node on re-run.
func TestSlotSurvivesCrashBeforeAnnounce(t *testing.T) {
	u := New(1, types.NewFetchAdd(100), "0", "u")
	m := sim.NewMemory()
	u.Setup(m)
	body := func(p *sim.Proc) sim.Value {
		return sim.Value(u.Invoke(p, 0, 0, "add(1)"))
	}
	// Steps of run 1: read slot (⊥), write slot, CRASH (before the
	// announce write). Run 2 must read the slot and reuse the node.
	script := []sim.Action{sim.Step(0), sim.Step(0), sim.Crash(0)}
	out, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 1, Script: script}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != "0" {
		t.Fatalf("decision = %q, want 0", out.Decisions[0])
	}
	list, _ := u.ListOrder(m)
	if len(list) != 1 {
		t.Fatalf("%d nodes appended, want 1", len(list))
	}
}

// TestTournamentRCHeavyCrashStress is the regression lock for a bug the
// benchmark crash sweep found: without the Appendix F input pinning
// inside rc.TournamentInstance, a recovered helper could re-enter a
// next-pointer RC instance with a drifted input, flip the decided
// pointer, and double-append a node (two list entries with the same
// sequence number). The parameters below — a tournament instance SHARED
// across executions, four operations per process, crash probability
// 0.1 — reproduce the original failure at seed 776 when the pinning is
// removed.
func TestTournamentRCHeavyCrashStress(t *testing.T) {
	w := checker.Witness{
		Q0:    types.SnInitial,
		Teams: []int{checker.TeamA, checker.TeamB},
		Ops:   []spec.Op{"opA", "opB"},
	}
	inst, err := rc.NewTournamentInstance(types.NewSn(2), w, 2)
	if err != nil {
		t.Fatal(err)
	}
	const opsEach = 4
	for seed := int64(0); seed < 1000; seed++ {
		u := New(2, types.NewFetchAdd(1_000_000), "0", "u")
		u.RC = inst
		m := sim.NewMemory()
		u.Setup(m)
		bodies := make([]sim.Body, 2)
		for pi := 0; pi < 2; pi++ {
			pi := pi
			bodies[pi] = func(p *sim.Proc) sim.Value {
				last := sim.Value("")
				for k := 0; k < opsEach; k++ {
					last = sim.Value(u.Invoke(p, pi, k, "add(1)"))
				}
				return last
			}
		}
		cfg := sim.Config{Seed: seed, CrashProb: 0.1, MaxCrashes: 4}
		if _, err := sim.NewRunner(m, bodies, cfg).Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := u.VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		list, err := u.ListOrder(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(list) != 2*opsEach {
			t.Fatalf("seed %d: %d ops appended, want %d", seed, len(list), 2*opsEach)
		}
	}
}
