package universal

import (
	"strconv"
	"testing"

	"rcons/internal/checker"
	"rcons/internal/history"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// clientBody builds a process body that performs the given operations in
// order through the universal construction and returns the concatenated
// responses. Re-execution after a crash re-walks completed operations,
// whose persisted responses make the walk idempotent.
func clientBody(u *Universal, i int, ops []spec.Op) sim.Body {
	return func(p *sim.Proc) sim.Value {
		out := ""
		for k, op := range ops {
			resp := u.Invoke(p, i, k, op)
			if k > 0 {
				out += "|"
			}
			out += string(resp)
		}
		return out
	}
}

func runUniversal(t *testing.T, u *Universal, opsPer [][]spec.Op, cfg sim.Config) (*sim.Outcome, *sim.Memory) {
	t.Helper()
	m := sim.NewMemory()
	u.Setup(m)
	bodies := make([]sim.Body, len(opsPer))
	for i := range opsPer {
		bodies[i] = clientBody(u, i, opsPer[i])
	}
	out, err := sim.NewRunner(m, bodies, cfg).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out, m
}

func TestCounterSequentialTotal(t *testing.T) {
	n, opsEach := 3, 3
	u := New(n, types.NewCounter(100), "0", "u")
	opsPer := make([][]spec.Op, n)
	for i := range opsPer {
		for k := 0; k < opsEach; k++ {
			opsPer[i] = append(opsPer[i], "inc")
		}
	}
	for seed := int64(0); seed < 100; seed++ {
		out, m := runUniversal(t, u, opsPer, sim.Config{Seed: seed, CrashProb: 0.15, MaxCrashes: 6})
		for i := range out.Decided {
			if !out.Decided[i] {
				t.Fatalf("seed %d: process %d did not finish", seed, i)
			}
		}
		if err := u.VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		list, err := u.ListOrder(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(list) != n*opsEach {
			t.Fatalf("seed %d: list has %d ops, want %d", seed, len(list), n*opsEach)
		}
		if got := list[len(list)-1].State; got != spec.State(strconv.Itoa(n*opsEach)) {
			t.Fatalf("seed %d: final state %q, want %d", seed, got, n*opsEach)
		}
	}
}

func TestQueueLinearizableUnderCrashes(t *testing.T) {
	n := 3
	for seed := int64(0); seed < 60; seed++ {
		u := New(n, types.NewQueue(10), "", "u")
		u.Rec = history.NewRecorder()
		opsPer := [][]spec.Op{
			{"enq(0)", "deq", "enq(0)"},
			{"enq(1)", "deq"},
			{"deq", "enq(1)"},
		}
		_, m := runUniversal(t, u, opsPer, sim.Config{Seed: seed, CrashProb: 0.2, MaxCrashes: 5})
		if err := u.VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		hist := u.Rec.Events()
		if err := history.CheckProgramOrder(hist); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, history.FormatHistory(hist))
		}
		_, ok, err := history.CheckLinearizable(types.NewQueue(10), "", hist)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: non-linearizable history:\n%s", seed, history.FormatHistory(hist))
		}
	}
}

func TestStackImplementedRecoverably(t *testing.T) {
	// rcons(stack) = 1 says a stack cannot *solve* 2-process RC; the
	// universal construction shows the converse direction is fine: RC
	// implements a crash-recoverable stack for any number of processes.
	n := 2
	for seed := int64(0); seed < 60; seed++ {
		u := New(n, types.NewStack(10), "", "u")
		u.Rec = history.NewRecorder()
		opsPer := [][]spec.Op{
			{"push(0)", "pop", "push(1)"},
			{"push(1)", "pop", "pop"},
		}
		_, m := runUniversal(t, u, opsPer, sim.Config{Seed: seed, CrashProb: 0.25, MaxCrashes: 5})
		if err := u.VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, ok, err := history.CheckLinearizable(types.NewStack(10), "", u.Rec.Events())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: non-linearizable:\n%s", seed, history.FormatHistory(u.Rec.Events()))
		}
	}
}

func TestDetectabilityAcrossScriptedCrash(t *testing.T) {
	// A process crashes immediately after its operation is appended but
	// before it reads the response; on recovery it must return the
	// persisted response of the SAME operation rather than re-applying.
	u := New(2, types.NewFetchAdd(100), "0", "u")
	u.Rec = history.NewRecorder()
	m := sim.NewMemory()
	u.Setup(m)
	responses := map[int][]spec.Response{}
	body := func(i int) sim.Body {
		return func(p *sim.Proc) sim.Value {
			r := u.Invoke(p, i, 0, "add(1)")
			responses[i] = append(responses[i], r)
			return sim.Value(r)
		}
	}
	cfg := sim.Config{
		Seed:      11,
		CrashProb: 0.4, MaxCrashes: 8,
	}
	out, err := sim.NewRunner(m, []sim.Body{body(0), body(1)}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.VerifyList(m); err != nil {
		t.Fatal(err)
	}
	list, err := u.ListOrder(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list has %d entries, want exactly 2 (one per op, no duplicates despite crashes):\n%+v", len(list), list)
	}
	// The two responses must be the two distinct counter readings 0,1 in
	// some order, and each process's decision must match a listed node.
	got := map[sim.Value]bool{out.Decisions[0]: true, out.Decisions[1]: true}
	if !got["0"] || !got["1"] {
		t.Fatalf("decisions = %v, want {0,1}", out.Decisions)
	}
}

func TestExactlyOnceUnderHeavyCrashes(t *testing.T) {
	// Hammer the construction: every operation must appear exactly once
	// in the list no matter how many crashes occur.
	n := 3
	for seed := int64(0); seed < 100; seed++ {
		u := New(n, types.NewFetchAdd(1000), "0", "u")
		opsPer := make([][]spec.Op, n)
		total := 0
		for i := range opsPer {
			for k := 0; k <= i; k++ { // 1 + 2 + 3 = 6 ops
				opsPer[i] = append(opsPer[i], "add(1)")
				total++
			}
		}
		_, m := runUniversal(t, u, opsPer, sim.Config{Seed: seed, CrashProb: 0.3, MaxCrashes: 9})
		list, err := u.ListOrder(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(list) != total {
			t.Fatalf("seed %d: %d listed ops, want %d", seed, len(list), total)
		}
		if err := u.VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestUniversalOverSnTournamentRC(t *testing.T) {
	// The full stack of the paper in one test: S_n (an n-recording
	// readable type, Proposition 21) → Figure 2 team consensus →
	// Appendix B tournament → Figure 7 universal construction → a
	// crash-recoverable queue. This is Berryhill-Golab-Tripunitara
	// universality carried to the independent-crash model (Section 4).
	n := 2
	w := checker.Witness{
		Q0:    types.SnInitial,
		Teams: []int{checker.TeamA, checker.TeamB},
		Ops:   []spec.Op{"opA", "opB"},
	}
	inst, err := rc.NewTournamentInstance(types.NewSn(n), w, n)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 40; seed++ {
		u := New(n, types.NewQueue(8), "", "u")
		u.RC = inst
		u.Rec = history.NewRecorder()
		opsPer := [][]spec.Op{
			{"enq(0)", "deq"},
			{"enq(1)", "deq"},
		}
		_, m := runUniversal(t, u, opsPer, sim.Config{Seed: seed, CrashProb: 0.1, MaxCrashes: 4})
		if err := u.VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, ok, err := history.CheckLinearizable(types.NewQueue(8), "", u.Rec.Events())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: non-linearizable:\n%s", seed, history.FormatHistory(u.Rec.Events()))
		}
	}
}

func TestListOrderEmpty(t *testing.T) {
	u := New(2, types.NewCounter(10), "0", "u")
	m := sim.NewMemory()
	u.Setup(m)
	list, err := u.ListOrder(m)
	if err != nil || len(list) != 0 {
		t.Fatalf("fresh list = %v, err %v", list, err)
	}
	if err := u.VerifyList(m); err != nil {
		t.Fatal(err)
	}
}

func TestHelpingGuaranteesWaitFreedom(t *testing.T) {
	// Starve process 1: schedule only process 0 after both announce.
	// Helping (round-robin priority) must still append p1's op so that
	// p0 terminates and, once p1 is scheduled again, it finds its
	// response ready.
	u := New(2, types.NewCounter(100), "0", "u")
	m := sim.NewMemory()
	u.Setup(m)
	bodies := []sim.Body{
		clientBody(u, 0, []spec.Op{"inc", "inc"}),
		clientBody(u, 1, []spec.Op{"inc"}),
	}
	// Let p1 run just far enough to announce (slot + announce writes),
	// then give p0 a long solo run.
	script := []sim.Action{}
	for i := 0; i < 4; i++ {
		script = append(script, sim.Step(1))
	}
	for i := 0; i < 60; i++ {
		script = append(script, sim.Step(0))
	}
	out, err := sim.NewRunner(m, bodies, sim.Config{Seed: 1, Script: script}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Decided[0] {
		t.Fatal("process 0 did not finish during its solo run despite helping")
	}
	if err := u.VerifyList(m); err != nil {
		t.Fatal(err)
	}
	list, _ := u.ListOrder(m)
	if len(list) != 3 {
		t.Fatalf("list has %d ops, want 3 (p1's op must be helped in)", len(list))
	}
}

func TestManyProcessesSmoke(t *testing.T) {
	n := 5
	u := New(n, types.NewCounter(1000), "0", "u")
	opsPer := make([][]spec.Op, n)
	for i := range opsPer {
		opsPer[i] = []spec.Op{"inc", "inc"}
	}
	for seed := int64(0); seed < 20; seed++ {
		_, m := runUniversal(t, u, opsPer, sim.Config{Seed: seed, CrashProb: 0.1, MaxCrashes: 2 * n})
		if err := u.VerifyList(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		list, _ := u.ListOrder(m)
		if len(list) != 2*n {
			t.Fatalf("seed %d: %d ops listed, want %d", seed, len(list), 2*n)
		}
	}
}

func TestResponsesMatchListPositions(t *testing.T) {
	// fetch&add responses reveal exact linearization positions; check
	// the returned values are the positions in the final list.
	n := 3
	u := New(n, types.NewFetchAdd(1000), "0", "u")
	opsPer := [][]spec.Op{{"add(1)"}, {"add(1)"}, {"add(1)"}}
	out, m := runUniversal(t, u, opsPer, sim.Config{Seed: 99, CrashProb: 0.2, MaxCrashes: 4})
	seen := map[sim.Value]bool{}
	for i := 0; i < n; i++ {
		seen[out.Decisions[i]] = true
	}
	for _, want := range []sim.Value{"0", "1", "2"} {
		if !seen[want] {
			t.Fatalf("responses %v missing %q", out.Decisions, want)
		}
	}
	if err := u.VerifyList(m); err != nil {
		t.Fatal(err)
	}
}

func TestClientBodyIdempotence(t *testing.T) {
	// Force crashes between the two operations of one process and check
	// that op 0 is not re-applied: with a counter, total must equal the
	// number of distinct ops.
	u := New(1, types.NewFetchAdd(100), "0", "u")
	m := sim.NewMemory()
	u.Setup(m)
	body := clientBody(u, 0, []spec.Op{"add(1)", "add(1)"})
	crashes := make([]sim.Action, 0, 40)
	// Random steps punctuated by crashes.
	for i := 0; i < 6; i++ {
		crashes = append(crashes, sim.Step(0), sim.Step(0), sim.Step(0), sim.Crash(0))
	}
	cfg := sim.Config{Seed: 5, Script: crashes}
	out, err := sim.NewRunner(m, []sim.Body{body}, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Decisions[0] != "0|1" {
		t.Fatalf("responses = %q, want 0|1", out.Decisions[0])
	}
	list, _ := u.ListOrder(m)
	if len(list) != 2 {
		t.Fatalf("list has %d ops, want 2:\n%+v", len(list), list)
	}
}

func TestVerifyListDetectsCorruption(t *testing.T) {
	u := New(2, types.NewCounter(100), "0", "u")
	m := sim.NewMemory()
	u.Setup(m)
	bodies := []sim.Body{
		clientBody(u, 0, []spec.Op{"inc"}),
		clientBody(u, 1, []spec.Op{"inc"}),
	}
	if _, err := sim.NewRunner(m, bodies, sim.Config{Seed: 2}).Run(); err != nil {
		t.Fatal(err)
	}
	list, err := u.ListOrder(m)
	if err != nil || len(list) != 2 {
		t.Fatalf("setup: list %v err %v", list, err)
	}
	// Corrupt a persisted response and expect VerifyList to notice.
	mRegName := list[0].Node + ".resp"
	mutateRegister(m, mRegName, "999")
	if err := u.VerifyList(m); err == nil {
		t.Fatal("corrupted response not detected")
	}
}

// mutateRegister reaches around the Proc API for test corruption.
func mutateRegister(m *sim.Memory, name string, v sim.Value) {
	// PeekRegister panics if missing; use a throwaway runner step to
	// rewrite the register through the public machinery.
	body := func(p *sim.Proc) sim.Value {
		p.Write(name, v)
		return ""
	}
	if _, err := sim.NewRunner(m, []sim.Body{body}, sim.Config{Seed: 0}).Run(); err != nil {
		panic(err)
	}
}
