// Package universal implements RUniversal, the recoverable universal
// construction of the paper's Section 4 (pseudocode in Figure 7 /
// Appendix F): a wait-free, crash-recoverable linearizable implementation
// of an arbitrary deterministic object type from recoverable consensus
// instances and registers in non-volatile memory.
//
// The construction maintains a linked list of operation nodes; the list
// order is the linearization order. Each node's next pointer is decided
// by a recoverable consensus instance; processes announce their
// operations and help each other append (round-robin priority on the
// announce array), which yields wait-freedom. Recovery after a crash
// simply re-runs the pending operation: a per-(process, operation)
// announce slot in non-volatile memory makes re-execution idempotent, so
// an operation that already took effect is never applied twice and its
// persisted response is returned again — the paper's detectability
// property.
package universal

import (
	"fmt"
	"strconv"

	"rcons/internal/history"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
)

// Universal is a recoverable universal implementation of one object.
type Universal struct {
	// N is the number of client processes.
	N int
	// Typ and Init define the implemented object's sequential behaviour.
	Typ  spec.Type
	Init spec.State
	// NS namespaces the construction's shared cells.
	NS string
	// RC supplies the per-node recoverable consensus instances; defaults
	// to rc.CASInstance via New.
	RC rc.Instance
	// Rec, when non-nil, records the operation history for
	// linearizability checking.
	Rec *history.Recorder
}

// New returns a universal construction for n processes implementing an
// object of type t initialized to q0.
func New(n int, t spec.Type, q0 spec.State, ns string) *Universal {
	return &Universal{N: n, Typ: t, Init: q0, NS: ns, RC: rc.CASInstance{}}
}

// Shared cell names. A "node" nd is a name prefix; its fields are the
// registers nd.seq / nd.op / nd.state / nd.resp, and its next pointer is
// the RC instance named nd.next.
func (u *Universal) announce(i int) string { return fmt.Sprintf("%s/Announce[%d]", u.NS, i) }
func (u *Universal) head(i int) string     { return fmt.Sprintf("%s/Head[%d]", u.NS, i) }
func (u *Universal) slot(i, k int) string  { return fmt.Sprintf("%s/slot[%d][%d]", u.NS, i, k) }
func (u *Universal) dummy() string         { return u.NS + "/node0" }

func fieldSeq(nd string) string   { return nd + ".seq" }
func fieldOp(nd string) string    { return nd + ".op" }
func fieldState(nd string) string { return nd + ".state" }
func fieldResp(nd string) string  { return nd + ".resp" }
func fieldNext(nd string) string  { return nd + ".next" }

// fieldNextWinner caches the decided value of nd's next-pointer RC
// instance in a plain register, so that the final list can be walked
// after an execution regardless of how the RC instance represents its
// decision internally (a single CAS object, a whole tournament, …).
func fieldNextWinner(nd string) string { return nd + ".nextWinner" }

// Setup creates the dummy node (seq = 1, holding the initial state) and
// the announce/head arrays, all pointing at the dummy (Figure 7 lines
// 97–99).
func (u *Universal) Setup(m *sim.Memory) {
	d := u.dummy()
	m.AddRegister(fieldSeq(d), "1")
	m.AddRegister(fieldOp(d), sim.None)
	m.AddRegister(fieldState(d), sim.Value(u.Init))
	m.AddRegister(fieldResp(d), sim.None)
	for i := 0; i < u.N; i++ {
		m.AddRegister(u.announce(i), d)
		m.AddRegister(u.head(i), d)
	}
}

// allocNode prepares a fresh node in non-volatile memory with seq = 0 and
// the given operation. The node is private until published through an
// announce slot, so a crash mid-allocation merely leaks an unreachable
// node.
func (u *Universal) allocNode(p *sim.Proc, op spec.Op) string {
	nd := p.AllocRegister(u.NS+"/node", "0") // nd itself is the seq field… see below
	// AllocRegister created a register named nd holding "0"; use it as
	// the seq field directly and add the remaining fields.
	return u.initNodeFields(p, nd, op)
}

func (u *Universal) initNodeFields(p *sim.Proc, nd string, op spec.Op) string {
	// The allocated register nd serves as a name anchor; real fields are
	// nd.seq etc. Initialize them (idempotence is irrelevant: an
	// unpublished node is invisible).
	p.EnsureRegister(fieldSeq(nd), "0")
	p.EnsureRegister(fieldOp(nd), sim.Value(op))
	p.EnsureRegister(fieldState(nd), sim.None)
	p.EnsureRegister(fieldResp(nd), sim.None)
	return nd
}

// Invoke executes the k-th operation of process i on the implemented
// object and returns its response. It is the body-side entry point
// (Universal + Recover of Figure 7 fused): calling it again after a
// crash resumes the same operation instead of creating a new one.
func (u *Universal) Invoke(p *sim.Proc, i, k int, op spec.Op) spec.Response {
	if u.Rec != nil {
		u.Rec.Invoke(i, k, op, p.Now())
	}
	// Persistent announce slot: at most one node per (process, op index),
	// across any number of crashes (lines 117–120 made recoverable).
	slot := u.slot(i, k)
	p.EnsureRegister(slot, sim.None)
	nd := p.Read(slot)
	if nd == sim.None {
		nd = u.allocNode(p, op)
		p.Write(slot, nd)
	}
	p.Write(u.announce(i), nd)

	// Refresh Head[i] from the other processes (lines 121–125).
	for j := 0; j < u.N; j++ {
		hj := p.Read(u.head(j))
		if u.seqOf(p, hj) > u.seqOf(p, p.Read(u.head(i))) {
			p.Write(u.head(i), hj)
		}
	}

	resp := u.applyOperation(p, i, nd)
	if u.Rec != nil {
		u.Rec.Return(i, k, resp, p.Now())
	}
	return resp
}

func (u *Universal) seqOf(p *sim.Proc, nd string) int {
	v, err := strconv.Atoi(p.Read(fieldSeq(nd)))
	if err != nil {
		panic(fmt.Sprintf("universal: corrupt seq of %s: %v", nd, err))
	}
	return v
}

// applyOperation is Figure 7 lines 100–115: help append announced nodes
// until our own node nd has been appended, then return its response.
func (u *Universal) applyOperation(p *sim.Proc, i int, nd string) spec.Response {
	for p.Read(fieldSeq(nd)) == "0" { // line 101
		h := p.Read(u.head(i))
		hseq := u.seqOf(p, h)
		priority := (hseq + 1) % u.N // line 102
		annP := p.Read(u.announce(priority))
		var pointer string
		if p.Read(fieldSeq(annP)) == "0" { // line 103
			pointer = annP // line 104: help the priority process
		} else {
			pointer = p.Read(u.announce(i)) // line 106: my own operation
		}
		// line 108: agree on the next node via recoverable consensus.
		winner := u.RC.Decide(p, fieldNext(h), pointer)
		// Cache the decision in a register for post-execution list
		// walking. Creation-if-missing suffices: RC agreement makes
		// every process's value identical, so this is observationally
		// part of the Decide step (and costs no scheduling point).
		p.EnsureRegister(fieldNextWinner(h), winner)
		// line 110: compute and persist the winner's state & response.
		st := spec.State(p.Read(fieldState(h)))
		op := spec.Op(p.Read(fieldOp(winner)))
		ns, resp, err := u.Typ.Apply(st, op)
		if err != nil {
			panic(fmt.Sprintf("universal: applying %s to %q: %v", op, st, err))
		}
		p.Write(fieldState(winner), sim.Value(ns))
		p.Write(fieldResp(winner), sim.Value(resp))
		p.Write(fieldSeq(winner), strconv.Itoa(hseq+1)) // line 111
		p.Write(u.head(i), winner)                      // line 112
	}
	return spec.Response(p.Read(fieldResp(nd))) // line 114
}

// ListedOp is one appended node as seen when walking the final list.
type ListedOp struct {
	Node  string
	Seq   int
	Op    spec.Op
	State spec.State
	Resp  spec.Response
}

// ListOrder walks the construction's linked list in memory after an
// execution finishes, returning the appended operations in linearization
// order (excluding the dummy). Tests use it to validate the construction
// against the sequential specification.
func (u *Universal) ListOrder(m *sim.Memory) ([]ListedOp, error) {
	var out []ListedOp
	nd := u.dummy()
	for {
		next := fieldNextWinner(nd)
		if !m.HasRegister(next) {
			return out, nil // next pointer not yet decided (or cached)
		}
		winner := m.PeekRegister(next)
		if winner == sim.None {
			return out, nil
		}
		seq, err := strconv.Atoi(m.PeekRegister(fieldSeq(winner)))
		if err != nil {
			return nil, fmt.Errorf("universal: corrupt node %s: %w", winner, err)
		}
		out = append(out, ListedOp{
			Node:  winner,
			Seq:   seq,
			Op:    spec.Op(m.PeekRegister(fieldOp(winner))),
			State: spec.State(m.PeekRegister(fieldState(winner))),
			Resp:  spec.Response(m.PeekRegister(fieldResp(winner))),
		})
		nd = winner
	}
}

// VerifyList replays the final list against the sequential specification:
// sequence numbers must be consecutive, each node's persisted state and
// response must equal the specification's output, and no node may appear
// twice. This is the construction-level correctness check; package
// history provides the client-level linearizability check.
func (u *Universal) VerifyList(m *sim.Memory) error {
	list, err := u.ListOrder(m)
	if err != nil {
		return err
	}
	state := u.Init
	seen := map[string]bool{}
	for idx, node := range list {
		if seen[node.Node] {
			return fmt.Errorf("universal: node %s appended twice", node.Node)
		}
		seen[node.Node] = true
		if node.Seq != idx+2 { // dummy has seq 1
			return fmt.Errorf("universal: node %s has seq %d at position %d", node.Node, node.Seq, idx)
		}
		ns, resp, err := u.Typ.Apply(state, node.Op)
		if err != nil {
			return fmt.Errorf("universal: replay: %w", err)
		}
		if ns != node.State || resp != node.Resp {
			return fmt.Errorf("universal: node %s persisted (%q,%q), spec says (%q,%q)",
				node.Node, node.State, node.Resp, ns, resp)
		}
		state = ns
	}
	return nil
}
