package harness

import (
	"context"
	"fmt"
	"strconv"

	"rcons/internal/checker"
	"rcons/internal/history"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
	"rcons/internal/universal"
)

// newUniversal wires a universal construction with a history recorder.
func newUniversal(n int, t spec.Type, q0 spec.State) *universal.Universal {
	u := universal.New(n, t, q0, "u")
	u.Rec = history.NewRecorder()
	return u
}

// e1Types is the representative readable subset swept by the structural
// experiments (family members are covered by E4/E5 in depth).
func e1Types() []spec.Type {
	return []spec.Type{
		types.NewRegister(),
		types.TestAndSet{},
		types.NewFetchAdd(8),
		types.NewSwap(),
		types.NewCAS(),
		types.NewSticky(),
		types.NewCounter(8),
		types.NewMaxRegister(),
		types.NewConsensus(),
		types.NewTn(5),
		types.NewSn(3),
	}
}

// Fig1Implications reproduces Figure 1: for every type in the subset and
// every n, it computes whether the type is n-recording / n-discerning and
// checks all four implication arrows of the figure (restricted to the
// checkable, property-level ones):
//
//	n-recording ⇒ n-discerning            (Observation 5)
//	n-recording ⇒ (n-1)-recording, n ≥ 3  (Observation 6)
//	n-discerning ⇒ (n-2)-recording, n ≥ 4 (Theorem 16)
//	3-discerning ⇒ 2-recording            (Proposition 18)
func Fig1Implications(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E1", Artifact: "Figure 1", Title: "property implications",
		Header: []string{"type"},
		Pass:   true,
	}
	maxN := opts.MaxN
	for n := 2; n <= maxN; n++ {
		r.Header = append(r.Header, fmt.Sprintf("rec%d", n), fmt.Sprintf("disc%d", n))
	}
	for _, t := range e1Types() {
		rec := map[int]bool{}
		disc := map[int]bool{}
		row := []string{t.Name()}
		for n := 2; n <= maxN; n++ {
			wr, err := checker.SearchRecording(t, n, nil)
			if err != nil {
				return nil, err
			}
			wd, err := checker.SearchDiscerning(t, n, nil)
			if err != nil {
				return nil, err
			}
			rec[n], disc[n] = wr != nil, wd != nil
			row = append(row, mark(rec[n]), mark(disc[n]))
		}
		r.Rows = append(r.Rows, row)
		for n := 2; n <= maxN; n++ {
			if rec[n] && !disc[n] {
				r.Pass = false
				r.Notes = append(r.Notes, fmt.Sprintf("%s violates Observation 5 at n=%d", t.Name(), n))
			}
			if n >= 3 && rec[n] && !rec[n-1] {
				r.Pass = false
				r.Notes = append(r.Notes, fmt.Sprintf("%s violates Observation 6 at n=%d", t.Name(), n))
			}
			if n >= 4 && disc[n] && !rec[n-2] {
				r.Pass = false
				r.Notes = append(r.Notes, fmt.Sprintf("%s violates Theorem 16 at n=%d", t.Name(), n))
			}
		}
		if maxN >= 3 && disc[3] && !rec[2] {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("%s violates Proposition 18", t.Name()))
		}
	}
	if r.Pass {
		r.Notes = append(r.Notes, "all implications of Figure 1 hold on the zoo")
	}
	return r, nil
}

// Fig2TeamConsensus executes the Figure 2 algorithm for every readable
// type/level with a recording witness, under randomized independent
// crash schedules, validating agreement + validity on every execution.
func Fig2TeamConsensus(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E2", Artifact: "Figure 2", Title: "recoverable team consensus executions",
		Header: []string{"type", "n", "|B|=1 path", "swapped", "execs", "crashes", "ok"},
		Pass:   true,
	}
	for _, t := range e1Types() {
		if !types.Readable(t) {
			continue
		}
		for n := 2; n <= min(4, opts.MaxN); n++ {
			w, err := checker.SearchRecording(t, n, nil)
			if err != nil {
				return nil, err
			}
			if w == nil {
				continue
			}
			tc, err := rc.NewTeamConsensus(t, *w, "e2")
			if err != nil {
				return nil, err
			}
			inputs := tc.TeamInputs("valA", "valB")
			crashes, ok := 0, true
			for seed := 0; seed < opts.Seeds; seed++ {
				out, err := rc.Run(tc, inputs, sim.Config{
					Seed: int64(seed), CrashProb: 0.25, MaxCrashes: 2 * n,
				})
				if err != nil {
					ok = false
					r.Pass = false
					r.Notes = append(r.Notes, fmt.Sprintf("%s n=%d seed=%d: %v", t.Name(), n, seed, err))
					break
				}
				for _, c := range out.Crashes {
					crashes += c
				}
			}
			roles := tc.RoleTeams()
			sizeB := 0
			for _, b := range roles {
				if b {
					sizeB++
				}
			}
			r.Rows = append(r.Rows, []string{
				t.Name(), strconv.Itoa(n), mark(sizeB == 1), mark(tcSwapped(tc)),
				strconv.Itoa(opts.Seeds), strconv.Itoa(crashes), mark(ok),
			})
		}
	}
	return r, nil
}

// tcSwapped exposes whether the constructor swapped team roles; kept here
// (rather than as an exported accessor with no production use) via the
// RoleTeams/Members comparison.
func tcSwapped(tc *rc.TeamConsensus) bool {
	// Role of the first witness-team-A process: if it plays role B, the
	// teams were swapped.
	return tc.RoleTeams()[0]
}

// Fig4Simultaneous executes the Figure 4 transform under simultaneous
// crash schedules and reports the deepest round reached.
func Fig4Simultaneous(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E3", Artifact: "Figure 4", Title: "RC from consensus, simultaneous crashes",
		Header: []string{"n", "execs", "crash events", "max round", "avg steps", "ok"},
		Pass:   true,
	}
	for n := 2; n <= opts.MaxN; n++ {
		alg := rc.NewSimultaneousRC(n, "e3")
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		crashes, maxRound, steps, ok := 0, 1, 0, true
		for seed := 0; seed < opts.Seeds; seed++ {
			m := sim.NewMemory()
			alg.Setup(m)
			bodies := make([]sim.Body, n)
			for i := range bodies {
				bodies[i] = alg.Body(i, inputs[i])
			}
			cfg := sim.Config{Seed: int64(seed), Model: sim.Simultaneous, CrashProb: 0.1, MaxCrashes: 3}
			out, err := sim.NewRunner(m, bodies, cfg).Run()
			if err == nil {
				err = rc.CheckOutcome(inputs, out)
			}
			if err != nil {
				ok = false
				r.Pass = false
				r.Notes = append(r.Notes, fmt.Sprintf("n=%d seed=%d: %v", n, seed, err))
				break
			}
			steps += out.Steps
			if out.Crashes[0] > 0 {
				crashes++ // crash events hit all processes at once
			}
			for j := 0; j < n; j++ {
				round, _ := strconv.Atoi(m.PeekRegister(fmt.Sprintf("e3/Round[%d]", j)))
				if round > maxRound {
					maxRound = round
				}
			}
		}
		r.Rows = append(r.Rows, []string{
			strconv.Itoa(n), strconv.Itoa(opts.Seeds), strconv.Itoa(crashes),
			strconv.Itoa(maxRound), strconv.Itoa(steps / opts.Seeds), mark(ok),
		})
	}
	return r, nil
}

// Fig5Tn verifies Proposition 19 for each family member: T_n is
// n-discerning (paper witness + search), not (n-1)-recording (exhaustive
// search over the full state space), and — per Theorem 16 —
// (n-2)-recording.
func Fig5Tn(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E4", Artifact: "Figure 5", Title: "T_n separations",
		Header: []string{"type", "states", "n-discerning", "(n-1)-recording", "(n-2)-recording", "matches paper"},
		Pass:   true,
	}
	top := max(6, min(opts.Limit+1, 8))
	for n := 4; n <= top; n++ {
		tn := types.NewTn(n)
		res, err := checker.VerifyDiscerning(tn, TnPaperWitness(n))
		if err != nil {
			return nil, err
		}
		disc := res.OK
		wRec1, err := checker.SearchRecording(tn, n-1, nil)
		if err != nil {
			return nil, err
		}
		wRec2, err := checker.SearchRecording(tn, n-2, nil)
		if err != nil {
			return nil, err
		}
		okRow := disc && wRec1 == nil && wRec2 != nil
		if !okRow {
			r.Pass = false
		}
		r.Rows = append(r.Rows, []string{
			tn.Name(), strconv.Itoa(len(tn.InitialStates())),
			mark(disc), mark(wRec1 != nil), mark(wRec2 != nil), mark(okRow),
		})
	}
	r.Notes = append(r.Notes,
		"expected pattern per Proposition 19: ✓ / ✗ / ✓ (so rcons(T_n) ∈ {n-2, n-1} < cons(T_n) = n)")
	return r, nil
}

// Fig6Sn verifies Proposition 21 for each family member: S_n is exactly
// n-recording and exactly n-discerning, hence rcons(S_n) = cons(S_n) = n:
// every level of the RC hierarchy is populated.
func Fig6Sn(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E5", Artifact: "Figure 6", Title: "S_n exact levels",
		Header: []string{"type", "states", "max recording", "max discerning", "rcons", "cons", "matches paper"},
		Pass:   true,
	}
	for n := 2; n <= opts.MaxN; n++ {
		sn := types.NewSn(n)
		rec, err := checker.MaxRecording(sn, n+2, nil)
		if err != nil {
			return nil, err
		}
		disc, err := checker.MaxDiscerning(sn, n+2, nil)
		if err != nil {
			return nil, err
		}
		okRow := rec.Max == n && !rec.AtLimit && disc.Max == n && !disc.AtLimit
		if !okRow {
			r.Pass = false
		}
		r.Rows = append(r.Rows, []string{
			sn.Name(), strconv.Itoa(2 * n), rec.String(), disc.String(),
			strconv.Itoa(n), strconv.Itoa(n), mark(okRow),
		})
	}
	return r, nil
}

// Fig7Universal executes RUniversal over several implemented objects
// under randomized independent crash schedules, validating the list
// replay (construction-level) and client-level linearizability.
func Fig7Universal(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E6", Artifact: "Figure 7", Title: "recoverable universal construction",
		Header: []string{"object", "n", "execs", "ops/exec", "crashes", "linearizable", "ok"},
		Pass:   true,
	}
	workloads := []struct {
		name string
		typ  spec.Type
		q0   spec.State
		ops  [][]spec.Op
	}{
		{"queue", types.NewQueue(10), "", [][]spec.Op{{"enq(0)", "deq"}, {"enq(1)", "deq"}, {"deq", "enq(1)"}}},
		{"stack", types.NewStack(10), "", [][]spec.Op{{"push(0)", "pop"}, {"push(1)", "pop"}, {"pop", "push(1)"}}},
		{"fetch&add", types.NewFetchAdd(1000), "0", [][]spec.Op{{"add(1)", "add(1)"}, {"add(1)"}, {"add(1)", "add(1)"}}},
	}
	for _, wl := range workloads {
		for n := 2; n <= min(3, opts.MaxN); n++ {
			crashes, totalOps, linOK, ok := 0, 0, true, true
			for seed := 0; seed < opts.Seeds; seed++ {
				rep, err := runUniversalOnce(wl.typ, wl.q0, wl.ops[:n], int64(seed))
				if err != nil {
					ok = false
					r.Pass = false
					r.Notes = append(r.Notes, fmt.Sprintf("%s n=%d seed=%d: %v", wl.name, n, seed, err))
					break
				}
				crashes += rep.crashes
				totalOps += rep.ops
				linOK = linOK && rep.linearizable
			}
			if !linOK {
				ok = false
				r.Pass = false
			}
			opsPerExec := 0
			if opts.Seeds > 0 {
				opsPerExec = totalOps / opts.Seeds
			}
			r.Rows = append(r.Rows, []string{
				wl.name, strconv.Itoa(n), strconv.Itoa(opts.Seeds),
				strconv.Itoa(opsPerExec), strconv.Itoa(crashes), mark(linOK), mark(ok),
			})
		}
	}
	return r, nil
}

type universalRun struct {
	ops          int
	crashes      int
	linearizable bool
}

func runUniversalOnce(t spec.Type, q0 spec.State, opsPer [][]spec.Op, seed int64) (*universalRun, error) {
	u := newUniversal(len(opsPer), t, q0)
	m := sim.NewMemory()
	u.Setup(m)
	bodies := make([]sim.Body, len(opsPer))
	for i := range opsPer {
		i := i
		ops := opsPer[i]
		bodies[i] = func(p *sim.Proc) sim.Value {
			last := sim.Value("")
			for k, op := range ops {
				last = sim.Value(u.Invoke(p, i, k, op))
			}
			return last
		}
	}
	cfg := sim.Config{Seed: seed, CrashProb: 0.2, MaxCrashes: 3 * len(opsPer)}
	out, err := sim.NewRunner(m, bodies, cfg).Run()
	if err != nil {
		return nil, err
	}
	if err := u.VerifyList(m); err != nil {
		return nil, err
	}
	list, err := u.ListOrder(m)
	if err != nil {
		return nil, err
	}
	hist := u.Rec.Events()
	if err := history.CheckProgramOrder(hist); err != nil {
		return nil, err
	}
	_, lin, err := history.CheckLinearizable(t, q0, hist)
	if err != nil {
		return nil, err
	}
	crashes := 0
	for _, c := range out.Crashes {
		crashes += c
	}
	return &universalRun{ops: len(list), crashes: crashes, linearizable: lin}, nil
}

// Fig8Stack mechanically verifies the six case equalities of Figure 8
// (the valency argument for rcons(stack) = 1) and executes Herlihy's
// 2-process stack consensus to confirm cons(stack) = 2's possibility
// half; the classifier row shows why Theorem 8 cannot rescue the stack
// (non-readability).
func Fig8Stack(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E7", Artifact: "Figure 8", Title: "stack: rcons = 1 < cons = 2",
		Header: []string{"check", "result"},
		Pass:   true,
	}
	st := types.NewStack(8)
	addCheck := func(name string, ok bool, err error) {
		if err != nil {
			ok = false
			r.Notes = append(r.Notes, fmt.Sprintf("%s: %v", name, err))
		}
		if !ok {
			r.Pass = false
		}
		r.Rows = append(r.Rows, []string{name, mark(ok)})
	}

	// (a) two pops commute from every sampled state.
	okA := true
	for _, q := range []spec.State{"", "x", "x,y"} {
		c, err := spec.Commute(st, q, "pop", "pop")
		if err != nil {
			return nil, err
		}
		okA = okA && c
	}
	addCheck("(a) Pop/Pop commute", okA, nil)

	// (b) push overwrites pop from the empty stack.
	okB, err := spec.Overwrites(st, "", "push(v)", "pop")
	addCheck("(b) Push overwrites Pop on empty", okB, err)

	// (c) Push(v)/Pop from a non-empty stack: the two orders differ only
	// in the top element; one further pop equalizes the states.
	okC, err := differOnlyInTop(st, "a,x", "push(v)", "pop")
	addCheck("(c) Push/Pop non-empty: equal after popping the top", okC, err)

	// (d) Pop/Push(v) from the empty stack: equal after popping the top.
	okD, err := differOnlyInTop(st, "", "pop", "push(v)")
	addCheck("(d) Pop/Push on empty: equal after popping the top", okD, err)

	// (e) Pop/Push(v) from a non-empty stack.
	okE, err := differOnlyInTop(st, "a,x", "pop", "push(v)")
	addCheck("(e) Pop/Push non-empty: equal after popping the top", okE, err)

	// (f) Push(v)/Push(x): equal after popping both tops.
	s1 := applySeq(st, "a", "push(v)", "push(x)", "pop", "pop")
	s2 := applySeq(st, "a", "push(x)", "push(v)", "pop", "pop")
	addCheck("(f) Push/Push: equal after popping both", s1 == s2, nil)

	// Appendix H closes by noting "a similar argument could be used to
	// show that rcons(queue) = 1"; verify the analogous queue
	// ingredients mechanically.
	qu := types.NewQueue(8)
	okQa := true
	for _, q := range []spec.State{"", "x", "x,y"} {
		c, err := spec.Commute(qu, q, "deq", "deq")
		if err != nil {
			return nil, err
		}
		okQa = okQa && c
	}
	addCheck("(queue) Deq/Deq commute in state", okQa, nil)
	okQb, err := spec.Overwrites(qu, "", "enq(v)", "deq")
	addCheck("(queue) Enq overwrites Deq on empty", okQb, err)
	// Enq/Enq from any state: the differing elements sit at the BACK of
	// the queue, so the equalizing run drains past them.
	qs1 := applySeq(qu, "a", "enq(v)", "enq(x)", "deq", "deq", "deq")
	qs2 := applySeq(qu, "a", "enq(x)", "enq(v)", "deq", "deq", "deq")
	addCheck("(queue) Enq/Enq: equal after draining", qs1 == qs2, nil)

	// Herlihy-style 2-process consensus from one stack + registers:
	// stack holds [lose, win]; first popper wins.
	okH := true
	for seed := 0; seed < opts.Seeds; seed++ {
		if err := runStackConsensus(int64(seed)); err != nil {
			okH = false
			r.Notes = append(r.Notes, fmt.Sprintf("stack consensus seed %d: %v", seed, err))
			break
		}
	}
	addCheck("Herlihy 2-process stack consensus (halting failures)", okH, nil)

	// Classifier: the plain stack is syntactically recording (push-only
	// witnesses) but non-readable, so no rcons lower bound follows; the
	// valency argument of Appendix H pins rcons(stack) = 1.
	c, err := checker.Classify(st, 4, nil)
	if err != nil {
		return nil, err
	}
	addCheck("classifier derives no rcons lower bound (non-readable)", c.RconsLo == 1, nil)
	r.Notes = append(r.Notes,
		"rcons(stack) = 1 is an impossibility (valency argument, Appendix H); the six case",
		"equalities above are the mechanical ingredients its case analysis relies on")
	return r, nil
}

// differOnlyInTop checks the Figure 8 pattern: applying op1 then op2
// versus op2 then op1 from q0, the states become equal after removing
// the top element from each.
func differOnlyInTop(t spec.Type, q0 spec.State, op1, op2 spec.Op) (bool, error) {
	s12 := applySeq(t, q0, op1, op2, "pop")
	s21 := applySeq(t, q0, op2, op1, "pop")
	return s12 == s21, nil
}

func applySeq(t spec.Type, q0 spec.State, ops ...spec.Op) spec.State {
	s := q0
	for _, op := range ops {
		s, _ = spec.MustApply(t, s, op)
	}
	return s
}

// runStackConsensus executes the classical 2-process stack consensus
// under a random halting-free schedule and checks agreement + validity.
func runStackConsensus(seed int64) error {
	m := sim.NewMemory()
	m.AddObject("S", types.NewStack(4), "lose,win")
	m.AddRegister("in[0]", sim.None)
	m.AddRegister("in[1]", sim.None)
	inputs := []sim.Value{"x", "y"}
	body := func(i int) sim.Body {
		return func(p *sim.Proc) sim.Value {
			p.Write(fmt.Sprintf("in[%d]", i), inputs[i])
			if r := p.Apply("S", "pop"); r == "win" {
				return inputs[i]
			}
			return p.Read(fmt.Sprintf("in[%d]", 1-i))
		}
	}
	out, err := sim.NewRunner(m, []sim.Body{body(0), body(1)}, sim.Config{Seed: seed}).Run()
	if err != nil {
		return err
	}
	return rc.CheckOutcome(inputs, out)
}

// knownClassification records the exact values the paper (or classical
// results it cites) states for zoo members, for cross-checking the
// derived bands.
type knownClassification struct {
	cons, rcons string
}

func knowns() map[string]knownClassification {
	return map[string]knownClassification{
		"register":          {"1", "1"},
		"test&set":          {"2", "1–2"},
		"fetch&add(mod=8)":  {"2", "1–2"},
		"swap":              {"2", "1–2"},
		"compare&swap":      {"∞", "∞"},
		"sticky":            {"∞", "∞"},
		"counter(mod=8)":    {"1", "1"},
		"max-register":      {"1", "1"},
		"queue(cap=4)":      {"2", "1"},
		"peek-queue(cap=4)": {"∞", "∞"},
		"stack(cap=4)":      {"2", "1"},
		"consensus-object":  {"∞", "∞"},
		"read-only":         {"1", "1"},
	}
}

// HierarchyTable classifies the whole zoo — on the sharded parallel
// engine, which is also what keeps this experiment tractable as the zoo
// grows — reporting the derived cons/rcons bands next to the values the
// paper states. Engine and sequential classifications are byte-identical
// (asserted by the engine tests), so the table is the same either way.
func HierarchyTable(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E8", Artifact: "hierarchy table", Title: "cons/rcons bands for the zoo",
		Header: []string{"type", "readable", "max disc", "max rec", "cons band", "rcons band", "paper cons", "paper rcons"},
		Pass:   true,
	}
	kn := knowns()
	cs, err := opts.eng.Scan(context.Background(), opts.Limit)
	if err != nil {
		return nil, err
	}
	for i, t := range types.Zoo() {
		c := cs[i]
		k, hasKnown := kn[t.Name()]
		paperCons, paperRcons := "—", "—"
		if hasKnown {
			paperCons, paperRcons = k.cons, k.rcons
		}
		switch tt := t.(type) {
		case types.Tn:
			paperCons = strconv.Itoa(tt.N)
			paperRcons = fmt.Sprintf("%d–%d", tt.N-2, tt.N-1)
		case types.Sn:
			paperCons = strconv.Itoa(tt.N)
			paperRcons = strconv.Itoa(tt.N)
		}
		r.Rows = append(r.Rows, []string{
			t.Name(), mark(c.Readable), c.Discerning.String(), c.Recording.String(),
			c.ConsBand(), c.RconsBand(), paperCons, paperRcons,
		})
	}
	r.Notes = append(r.Notes,
		"bands derive from Theorems 3/8/14 and Corollary 17 (Figure 1); '≥k' means the scan limit was reached",
		"for non-readable types the recording levels carry no rcons lower bound (Theorem 8 needs readability)")
	return r, nil
}

// Thm22Sets applies Theorem 22 to sample sets of readable types and
// checks the derived band is consistent with the individual bands.
func Thm22Sets(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E9", Artifact: "Theorem 22", Title: "RC power of sets of types",
		Header: []string{"set", "member rcons bands", "set band (Thm 22)", "ok"},
		Pass:   true,
	}
	sets := [][]spec.Type{
		{types.NewRegister(), types.TestAndSet{}},
		{types.NewSn(2), types.NewSn(3)},
		{types.TestAndSet{}, types.NewSn(3)},
		{types.NewRegister(), types.NewCAS()},
	}
	for _, set := range sets {
		cs, err := opts.eng.ClassifyAll(context.Background(), set, opts.Limit)
		if err != nil {
			return nil, err
		}
		name := ""
		bands := ""
		for i, c := range cs {
			if i > 0 {
				name += "+"
				bands += ", "
			}
			name += c.TypeName
			bands += c.RconsBand()
		}
		lo, hi, err := checker.CombineBounds(cs)
		if err != nil {
			return nil, err
		}
		ok := true
		for _, c := range cs {
			if c.RconsLo > lo {
				ok = false
			}
		}
		if hi != checker.Unbounded {
			// hi must be max member hi + 1.
			maxHi := 0
			for _, c := range cs {
				if c.RconsHi > maxHi {
					maxHi = c.RconsHi
				}
			}
			ok = ok && hi == maxHi+1
		}
		if !ok {
			r.Pass = false
		}
		r.Rows = append(r.Rows, []string{
			name, bands, checker.BandString(lo, hi, opts.Limit), mark(ok),
		})
	}
	r.Notes = append(r.Notes,
		"Theorem 22: max{rcons(T)} ≤ rcons(𝒯) ≤ max{rcons(T)} + 1 — weak readable types gain at most one level when combined")
	return r, nil
}
