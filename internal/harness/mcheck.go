package harness

import (
	"context"
	"fmt"
	"strconv"

	"rcons/internal/mc"
	"rcons/internal/sim"
)

// MCProtocols (E13) runs the systematic crash-schedule model checker
// (internal/mc) over EVERY recoverable-consensus protocol in the
// repository — the Figure 2 team consensus, the Appendix B tournament,
// the Figure 4 simultaneous-crash transform, the CAS baseline and the
// Figure 7 universal construction — under the failure model each is
// designed for, plus the two deliberately broken §3.1 variants, which
// must yield minimal replayable counterexamples. Where E10 exhausts one
// hand-wired instance, E13 is the productized sweep: every protocol,
// both failure models, parallel search, counterexamples replayed through
// the simulator before being reported.
func MCProtocols(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E13", Artifact: "§2 failure models", Title: "systematic crash-schedule model checking of all RC protocols",
		Header: []string{"target", "n", "model", "depth", "crashes", "nodes", "pruned", "verdict", "expected"},
		Pass:   true,
	}

	type checkCase struct {
		target  string
		n       int
		opts    mc.Options
		wantBug bool
	}
	cases := []checkCase{
		{"cas", 2, mc.Options{MaxDepth: 10, CrashBudget: 2}, false},
		{"team-sn", 2, mc.Options{MaxDepth: 9, CrashBudget: 1}, false},
		{"team-cas", 2, mc.Options{MaxDepth: 9, CrashBudget: 1}, false},
		{"tournament", 2, mc.Options{MaxDepth: 8, CrashBudget: 1}, false},
		{"simultaneous", 2, mc.Options{MaxDepth: 8, CrashBudget: 1}, false},
		{"universal", 2, mc.Options{MaxDepth: 6, MinDepth: 6, CrashBudget: 1}, false},
		{"unsafe-noyield", 2, mc.Options{MaxDepth: 12, CrashBudget: 1}, true},
		{"unsafe-yieldalways", 3, mc.Options{MaxDepth: 10, CrashBudget: 1}, true},
	}

	for _, c := range cases {
		c.opts.Workers = opts.Workers
		tgt, err := mc.TargetByName(c.target, c.n)
		if err != nil {
			return nil, fmt.Errorf("E13 %s: %w", c.target, err)
		}
		res, err := mc.Check(context.Background(), tgt, c.opts)
		if err != nil {
			return nil, fmt.Errorf("E13 %s: %w", c.target, err)
		}

		verdict := "safe"
		if !res.Safe {
			verdict = "violation found"
		}
		expected := "safe"
		if c.wantBug {
			expected = "violation found"
		}
		ok := res.Safe != c.wantBug && res.Exhaustive
		if !res.Exhaustive {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: search fell back to swarm (nodes=%d)", c.target, res.Stats.Nodes))
		}

		// Counterexamples must replay: a fresh simulator run of the
		// minimized schedule has to reproduce a checker violation.
		if res.CE != nil {
			inputs, m, out, rerr := mc.Replay(tgt, res.CE.Schedule, 0)
			replayFails := rerr != nil || tgt.Check(inputs, m, out) != nil
			if !replayFails {
				ok = false
				r.Notes = append(r.Notes, fmt.Sprintf("%s: counterexample did not replay!", c.target))
			} else {
				r.Notes = append(r.Notes, fmt.Sprintf("%s counterexample (replayed): %s",
					c.target, sim.FormatScript(res.CE.Schedule)))
			}
		}
		if !ok {
			r.Pass = false
		}

		r.Rows = append(r.Rows, []string{
			c.target, strconv.Itoa(c.n), res.Model.String(),
			strconv.Itoa(c.opts.MaxDepth), strconv.Itoa(c.opts.CrashBudget),
			strconv.Itoa(res.Stats.Nodes), strconv.Itoa(res.Stats.Pruned),
			verdict, expected,
		})
	}
	r.Notes = append(r.Notes,
		"every schedule ≤ depth with ≤ crashes crash events is explored (modulo configuration",
		"equivalence); broken-variant counterexamples are minimized and re-executed through sim")
	return r, nil
}
