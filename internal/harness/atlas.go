package harness

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"rcons/internal/atlas"
	"rcons/internal/atlas/census"
	"rcons/internal/engine"
)

// AtlasCensus (E14) surveys a machine-generated type universe with the
// census pipeline and checks the properties the paper's Figure 1 regime
// imposes on ANY deterministic type, not just the curated zoo: every
// generated type lands in a theorem-consistent band, the census is
// byte-deterministic across worker counts, and the survey reaches bands
// the zoo never exhibits (the scenario-diversity point of the atlas).
func AtlasCensus(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E14", Artifact: "type atlas", Title: "machine-generated type census",
		Header: []string{"rcons band", "types", "example"},
		Pass:   true,
	}
	limit := opts.Limit
	if limit > 3 {
		limit = 3 // the structure of interest saturates early; keep E14 cheap
	}
	co := census.Options{
		Bounds:        atlas.Bounds{States: 2, Ops: 2, Resps: 2},
		Random:        25 * opts.Seeds,
		RandomBounds:  atlas.Bounds{States: 3, Ops: 2, Resps: 2},
		MutantsPerZoo: 1,
		Seed:          1,
		Limit:         limit,
		Engine:        opts.eng,
	}
	ctx := context.Background()
	a, err := census.Run(ctx, co)
	if err != nil {
		return nil, err
	}
	if err := a.Verify(false); err != nil {
		r.Pass = false
		r.Notes = append(r.Notes, fmt.Sprintf("FAIL: artifact invariants: %v", err))
	}

	// Determinism: a single-worker rerun must reproduce the artifact
	// byte-for-byte. The rerun gets a FRESH engine — reusing opts.eng
	// would serve every classification from the first run's memoization
	// cache and make the assertion vacuous.
	co2 := co
	co2.Workers = 1
	co2.Engine = engine.New(engine.Options{Workers: 1})
	b, err := census.Run(ctx, co2)
	if err != nil {
		return nil, err
	}
	enc1, err := a.Encode()
	if err != nil {
		return nil, err
	}
	enc2, err := b.Encode()
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(enc1, enc2) {
		r.Pass = false
		r.Notes = append(r.Notes, "FAIL: census artifact differs across worker counts")
	}

	bands := make([]string, 0, len(a.RconsBands))
	for band := range a.RconsBands {
		bands = append(bands, band)
	}
	sort.Strings(bands)
	for _, band := range bands {
		example := ""
		if e, ok := a.Extremal.PerRconsBand[band]; ok {
			example = e.Name
			if len(example) > 28 {
				example = example[:28] + "…"
			}
		}
		r.Rows = append(r.Rows, []string{band, fmt.Sprintf("%d", a.RconsBands[band]), example})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("universe: %d raw tables → %d distinct types (%d duplicates) at limit %d",
			a.Raw, a.Types, a.Duplicates, a.Limit),
		fmt.Sprintf("zoo comparison: %d types; novel rcons bands: %v", len(a.Zoo), a.NovelRconsBands),
		fmt.Sprintf("cons>rcons gap gallery: %d entries", len(a.Extremal.Gaps)))
	if len(a.NovelRconsBands) > 0 {
		r.Notes = append(r.Notes, "the generated universe reaches bands no curated zoo type occupies")
	}
	return r, nil
}
