// Package harness regenerates every figure-level artifact of the paper
// "When Is Recoverable Consensus Harder Than Consensus?" (PODC 2022) as a
// reproducible experiment. The paper is a theory paper, so its "tables
// and figures" are algorithms, type transition diagrams and proof
// structures; each experiment either verifies the corresponding claim
// mechanically (via package checker) or executes the corresponding
// algorithm under randomized and adversarial crash schedules (via
// packages rc, universal and sim), reporting the same content the figure
// conveys. See All below for the experiment index; `rcexp` prints the
// reports.
package harness

import (
	"fmt"
	"strings"

	"rcons/internal/engine"
)

// Options tunes experiment effort. The zero value is replaced by
// DefaultOptions.
type Options struct {
	// Seeds is the number of random schedules per configuration in
	// execution experiments.
	Seeds int
	// MaxN bounds the process counts swept by the experiments.
	MaxN int
	// Limit bounds checker property scans.
	Limit int
	// Workers sets the classification engine's worker-pool width for the
	// batch experiments (E8/E9); 0 means one worker per CPU.
	Workers int

	// eng is the shared classification engine, created by filled() so a
	// RunAll invocation reuses one memoization cache across experiments
	// (E9 is largely served from E8's zoo scan).
	eng *engine.Engine
}

// DefaultOptions returns the effort used by `go test` and cmd/rcexp.
func DefaultOptions() Options { return Options{Seeds: 60, MaxN: 5, Limit: 6} }

func (o Options) filled() Options {
	d := DefaultOptions()
	if o.Seeds <= 0 {
		o.Seeds = d.Seeds
	}
	if o.MaxN < 2 {
		o.MaxN = d.MaxN
	}
	if o.Limit < 2 {
		o.Limit = d.Limit
	}
	if o.eng == nil {
		o.eng = engine.New(engine.Options{Workers: o.Workers})
	}
	return o
}

// Report is the outcome of one experiment: a table plus free-form notes
// and an overall pass flag (false means a paper claim failed to
// reproduce, which would be a bug in this repository).
type Report struct {
	ID       string
	Artifact string
	Title    string
	Header   []string
	Rows     [][]string
	Notes    []string
	Pass     bool
}

// Table renders the report's rows as an aligned text table.
func (r *Report) Table() string {
	if len(r.Header) == 0 {
		return ""
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = visualLen(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && visualLen(cell) > widths[i] {
				widths[i] = visualLen(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-visualLen(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "== %s (%s) %s — %s\n", r.ID, r.Artifact, r.Title, status)
	b.WriteString(r.Table())
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// visualLen approximates the printed width of a cell (rune count; the
// tables use only single-width runes).
func visualLen(s string) int { return len([]rune(s)) }

// Experiment couples an experiment with its paper artifact.
type Experiment struct {
	ID       string
	Artifact string
	Title    string
	Run      func(Options) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Artifact: "Figure 1", Title: "implication diagram between n-recording, n-discerning and solvability", Run: Fig1Implications},
		{ID: "E2", Artifact: "Figure 2", Title: "recoverable team consensus from n-recording readable types", Run: Fig2TeamConsensus},
		{ID: "E3", Artifact: "Figure 4", Title: "RC from consensus under simultaneous crashes (Theorem 1)", Run: Fig4Simultaneous},
		{ID: "E4", Artifact: "Figure 5", Title: "T_n is n-discerning but not (n-1)-recording (Proposition 19)", Run: Fig5Tn},
		{ID: "E5", Artifact: "Figure 6", Title: "rcons(S_n) = cons(S_n) = n (Proposition 21)", Run: Fig6Sn},
		{ID: "E6", Artifact: "Figure 7", Title: "recoverable universal construction RUniversal", Run: Fig7Universal},
		{ID: "E7", Artifact: "Figure 8", Title: "stack impossibility ingredients (rcons(stack) = 1, Appendix H)", Run: Fig8Stack},
		{ID: "E8", Artifact: "hierarchy table", Title: "cons/rcons bands for the type zoo", Run: HierarchyTable},
		{ID: "E9", Artifact: "Theorem 22", Title: "RC power of sets of readable types", Run: Thm22Sets},
		{ID: "E10", Artifact: "§3.1 / Theorem 8", Title: "bounded exhaustive model checking of Figure 2", Run: ModelCheck},
		{ID: "E11", Artifact: "§1 motivation", Title: "consensus vs recoverable consensus, executably", Run: Motivation},
		{ID: "E12", Artifact: "scaling", Title: "cost scaling of the constructions with process count", Run: Scaling},
		{ID: "E13", Artifact: "§2 failure models", Title: "systematic crash-schedule model checking of all RC protocols", Run: MCProtocols},
		{ID: "E14", Artifact: "type atlas", Title: "census of a machine-generated type universe (beyond the curated zoo)", Run: AtlasCensus},
	}
}

// RunAll executes every experiment and returns the reports. Options are
// filled once up front so all experiments share one classification
// engine (and thus one memoization cache).
func RunAll(opts Options) ([]*Report, error) {
	opts = opts.filled()
	var out []*Report
	for _, e := range All() {
		r, err := e.Run(opts)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
