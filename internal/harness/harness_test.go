package harness

import (
	"strings"
	"testing"

	"rcons/internal/checker"
	"rcons/internal/types"
)

// fastOpts keeps the full suite quick enough for go test.
func fastOpts() Options { return Options{Seeds: 25, MaxN: 4, Limit: 5} }

func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(fastOpts())
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Artifact, err)
			}
			if !rep.Pass {
				t.Fatalf("%s (%s) failed:\n%s", e.ID, e.Artifact, rep)
			}
			if len(rep.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	reps, err := RunAll(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(All()) {
		t.Fatalf("got %d reports, want %d", len(reps), len(All()))
	}
}

func TestReportTableRendering(t *testing.T) {
	r := &Report{
		ID: "X", Artifact: "test", Title: "rendering",
		Header: []string{"col", "value"},
		Rows:   [][]string{{"a", "1"}, {"longer", "2"}},
		Pass:   true,
	}
	tbl := r.Table()
	if !strings.Contains(tbl, "col") || !strings.Contains(tbl, "longer") {
		t.Fatalf("table rendering broken:\n%s", tbl)
	}
	full := r.String()
	if !strings.Contains(full, "PASS") {
		t.Fatalf("report string missing status:\n%s", full)
	}
}

func TestDiagramSn(t *testing.T) {
	d, err := Diagram(types.NewSn(3), types.SnInitial)
	if err != nil {
		t.Fatal(err)
	}
	// 2n = 6 states, one line each plus a header.
	if got := strings.Count(d, "\n"); got != 7 {
		t.Fatalf("diagram has %d lines:\n%s", got, d)
	}
	if !strings.Contains(d, "--opA/ack-->") {
		t.Fatalf("diagram missing transitions:\n%s", d)
	}
}

func TestDiagramTn(t *testing.T) {
	d, err := Diagram(types.NewTn(4), types.TnBottom)
	if err != nil {
		t.Fatal(err)
	}
	// T_4: 1 + 2·2·2 = 9 states.
	if got := strings.Count(d, "\n"); got != 10 {
		t.Fatalf("diagram has %d lines:\n%s", got, d)
	}
}

func TestPaperWitnessesAreValid(t *testing.T) {
	for n := 2; n <= 5; n++ {
		res, err := checker.VerifyRecording(types.NewSn(n), SnPaperWitness(n))
		if err != nil || !res.OK {
			t.Fatalf("S_%d paper witness: %v %v", n, res, err)
		}
	}
	for n := 4; n <= 6; n++ {
		res, err := checker.VerifyDiscerning(types.NewTn(n), TnPaperWitness(n))
		if err != nil || !res.OK {
			t.Fatalf("T_%d paper witness: %v %v", n, res, err)
		}
	}
	for a := 1; a <= 2; a++ {
		res, err := checker.VerifyRecording(types.NewCAS(), CASWitness(a, 4))
		if err != nil || !res.OK {
			t.Fatalf("CAS witness a=%d: %v %v", a, res, err)
		}
	}
}

func TestOptionsFilled(t *testing.T) {
	o := Options{}.filled()
	d := DefaultOptions()
	if o.Seeds != d.Seeds || o.MaxN != d.MaxN || o.Limit != d.Limit {
		t.Fatalf("filled zero options = %+v, want defaults %+v", o, d)
	}
	if o.eng == nil {
		t.Fatal("filled options carry no shared engine")
	}
	o = Options{Seeds: 3, MaxN: 2, Limit: 2}.filled()
	if o.Seeds != 3 || o.MaxN != 2 || o.Limit != 2 {
		t.Fatalf("explicit options overridden: %+v", o)
	}
	// Refilling preserves an existing engine, so RunAll's one-time fill
	// shares its cache with every experiment.
	if o2 := o.filled(); o2.eng != o.eng {
		t.Fatal("filled replaced the shared engine")
	}
}
