package harness

import (
	"fmt"

	"rcons/internal/checker"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// SnPaperWitness is the witness from the proof of Proposition 21:
// q0 = (B,0), team A = {p_1} with opA, team B = {p_2, …, p_n} with opB.
func SnPaperWitness(n int) checker.Witness {
	w := checker.Witness{Q0: types.SnInitial, Teams: []int{checker.TeamA}, Ops: []spec.Op{"opA"}}
	for i := 1; i < n; i++ {
		w.Teams = append(w.Teams, checker.TeamB)
		w.Ops = append(w.Ops, "opB")
	}
	return w
}

// TnPaperWitness is the n-discerning witness from the proof of
// Proposition 19: q0 = (⊥,0,0), team A of size ⌊n/2⌋ with opA, team B of
// size ⌈n/2⌉ with opB.
func TnPaperWitness(n int) checker.Witness {
	w := checker.Witness{Q0: types.TnBottom}
	for i := 0; i < n/2; i++ {
		w.Teams = append(w.Teams, checker.TeamA)
		w.Ops = append(w.Ops, "opA")
	}
	for i := 0; i < (n+1)/2; i++ {
		w.Teams = append(w.Teams, checker.TeamB)
		w.Ops = append(w.Ops, "opB")
	}
	return w
}

// CASWitness is the canonical n-recording witness for compare&swap:
// q0 = ⊥, the first a processes form team A, and every process proposes
// a distinct value.
func CASWitness(a, n int) checker.Witness {
	w := checker.Witness{Q0: spec.State(types.Bottom)}
	for i := 0; i < n; i++ {
		team := checker.TeamA
		if i >= a {
			team = checker.TeamB
		}
		w.Teams = append(w.Teams, team)
		w.Ops = append(w.Ops, spec.FormatOp("cas", types.Bottom, fmt.Sprintf("v%d", i)))
	}
	return w
}

// mark renders a boolean as a table cell.
func mark(b bool) string {
	if b {
		return "✓"
	}
	return "✗"
}
