package harness

import (
	"errors"
	"fmt"
	"strconv"

	"rcons/internal/explore"
	"rcons/internal/rc"
	"rcons/internal/sim"
)

// Motivation (E11) makes the paper's opening question — *when* is
// recoverable consensus harder than consensus? — executable. It model-
// checks two classical consensus algorithms with and without crash
// recovery:
//
//   - Herlihy's test&set consensus (cons(test&set) = 2) is exhaustively
//     safe under halting failures (crash budget 0) but violates
//     agreement once a single crash-recovery is allowed: test&set's
//     state does not record the winner, so a crashed winner cannot
//     recover its response. Test&set is 2-discerning but not
//     2-recording.
//   - Compare&swap consensus is exhaustively safe in BOTH regimes: a
//     CAS object's state does record the winner. CAS is n-recording for
//     every n.
//
// The pattern "discerning but not recording ⇒ breaks under recovery" is
// the paper's characterization in miniature.
func Motivation(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E11", Artifact: "§1 motivation", Title: "consensus vs recoverable consensus, executably",
		Header: []string{"algorithm", "crash budget", "depth", "prefixes", "verdict", "expected"},
		Pass:   true,
	}
	// Figure 4 with a NON-recoverable sub-consensus (test&set): safe under
	// simultaneous crashes (Theorem 1's Round guard ensures single access
	// per instance) but broken under independent crashes.
	fig4tas := func() rc.Algorithm {
		alg := rc.NewSimultaneousRC(2, "e11f")
		alg.Sub = rc.TASInstance{}
		return alg
	}

	cases := []struct {
		name         string
		alg          rc.Algorithm
		budget       int
		depth        int
		simultaneous bool
		wantBug      bool
	}{
		{"test&set consensus", rc.NewTASConsensus("e11t"), 0, 8, false, false},
		{"test&set consensus", rc.NewTASConsensus("e11t"), 1, 9, false, true},
		{"cas consensus", rc.NewCASConsensus(2, "e11c"), 0, 8, false, false},
		{"cas consensus", rc.NewCASConsensus(2, "e11c"), 1, 8, false, false},
		{"figure-4[tas] (simultaneous)", fig4tas(), 1, 9, true, false},
		// Open-question probe (paper Discussion, §5): test&set is
		// 2-discerning but NOT 2-recording, and whether 2-recording is
		// necessary for 2-process RC is open. If Figure 4 over test&set
		// solved independent-crash RC, that would answer it negatively.
		// Bounded exploration finds no violation — consistent with (but
		// of course not proving) rcons(test&set) = 2.
		{"figure-4[tas] (independent, open-question probe)", fig4tas(), 1, 10, false, false},
	}
	for _, c := range cases {
		alg := c.alg
		inputs := []sim.Value{"x", "y"}
		factory := func() (*sim.Memory, []sim.Body, []sim.Value) {
			m := sim.NewMemory()
			alg.Setup(m)
			bodies := make([]sim.Body, alg.N())
			for i := range bodies {
				bodies[i] = alg.Body(i, inputs[i])
			}
			return m, bodies, inputs
		}
		stats, err := explore.Exhaustive(factory, explore.Options{
			MaxDepth:     c.depth,
			CrashBudget:  c.budget,
			Simultaneous: c.simultaneous,
			Check:        rc.CheckOutcome,
		})
		foundBug := errors.Is(err, explore.ErrViolation)
		if err != nil && !foundBug {
			return nil, err
		}
		verdict, expected := "safe", "safe"
		if foundBug {
			verdict = "violation found"
		}
		if c.wantBug {
			expected = "violation found"
		}
		if foundBug != c.wantBug {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("%s budget=%d: verdict %q, expected %q",
				c.name, c.budget, verdict, expected))
		}
		r.Rows = append(r.Rows, []string{
			c.name, strconv.Itoa(c.budget), strconv.Itoa(c.depth),
			strconv.Itoa(stats.Prefixes), verdict, expected,
		})
	}
	r.Notes = append(r.Notes,
		"test&set: 2-discerning but not 2-recording → standard consensus works, recovery breaks it;",
		"compare&swap: n-recording for every n → consensus power survives crashes intact;",
		"figure-4[tas]: Theorem 1's Round guard makes even a NON-recoverable sub-consensus",
		"compose safely under simultaneous crashes; the independent-crash row probes the paper's",
		"OPEN question (§5: is 2-recording necessary for 2-process RC?) — bounded exploration",
		"finds no violation, consistent with rcons(test&set) = 2 but proving nothing")
	return r, nil
}
