package harness

import (
	"context"
	"fmt"
	"strconv"

	"rcons/internal/checker"
	"rcons/internal/mc"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// ModelCheck (E10) goes beyond the paper's figures: it *exhaustively*
// verifies the Figure 2 algorithm on small instances — every
// interleaving and every crash placement within the bounds — and, as a
// sensitivity check, confirms the checker rediscovers the agreement
// violations of both §3.1 counterexamples when the corresponding guard
// is removed. Random schedules (E2) sample the adversary; this
// experiment enumerates it.
//
// The enumeration runs on internal/mc — configuration-fingerprint
// pruning (incremental interned digests) plus parallel root
// partitioning — rather than the pruning-free sequential explorer it
// originally used; mc's own tests pin the two enumerators to identical
// verdicts, and TestPruningSoundness cross-validates the pruning against
// the explorer oracle, so the verdict here is the same, orders of
// magnitude cheaper.
func ModelCheck(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E10", Artifact: "§3.1 / Theorem 8", Title: "bounded exhaustive model checking of Figure 2",
		Header: []string{"instance", "variant", "depth", "crashes", "nodes", "pruned", "completions", "verdict", "expected"},
		Pass:   true,
	}

	type instance struct {
		name    string
		typ     spec.Type
		witness checker.Witness
		variant rc.Variant
		depth   int
		budget  int
		wantBug bool
	}
	cas3 := checker.Witness{
		Q0:    spec.State(types.Bottom),
		Teams: []int{checker.TeamA, checker.TeamB, checker.TeamB},
		Ops:   []spec.Op{"cas(_,a)", "cas(_,b)", "cas(_,c)"},
	}
	cases := []instance{
		{"S_2 paper witness", types.NewSn(2), SnPaperWitness(2), rc.VariantPaper, 10, 1, false},
		{"S_3 paper witness", types.NewSn(3), SnPaperWitness(3), rc.VariantPaper, 7, 1, false},
		{"CAS |A|=1,|B|=2", types.NewCAS(), cas3, rc.VariantPaper, 7, 1, false},
		{"S_2 paper witness", types.NewSn(2), SnPaperWitness(2), rc.VariantNoYield, 10, 1, true},
		{"CAS |A|=1,|B|=2", types.NewCAS(), cas3, rc.VariantYieldAlways, 9, 0, true},
	}

	for _, c := range cases {
		tc, err := rc.NewTeamConsensus(c.typ, c.witness, "e10")
		if err != nil {
			return nil, err
		}
		alg := rc.NewTeamConsensusVariant(tc, c.variant)
		tgt, err := mc.FromAlgorithm(alg, alg.TeamInputs("vA", "vB"), sim.Independent)
		if err != nil {
			return nil, err
		}
		res, err := mc.Check(context.Background(), tgt, mc.Options{
			MaxDepth:    c.depth,
			CrashBudget: c.budget,
			Workers:     opts.Workers,
		})
		if err != nil {
			return nil, err
		}
		foundBug := !res.Safe
		verdict := "safe"
		if foundBug {
			verdict = "violation found"
		}
		expected := "safe"
		if c.wantBug {
			expected = "violation found"
		}
		// Safe rows claim the WHOLE bounded space, so they additionally
		// require exhaustive coverage; a violation is a violation no
		// matter which search mode surfaced it.
		ok := foundBug == c.wantBug && (res.Exhaustive || c.wantBug)
		if !res.Exhaustive {
			r.Notes = append(r.Notes, fmt.Sprintf("%s/%s: search fell back to swarm (nodes=%d)",
				c.name, variantName(c.variant), res.Stats.Nodes))
		}
		if !ok {
			r.Pass = false
			reason := fmt.Sprintf("verdict %q, expected %q", verdict, expected)
			if foundBug == c.wantBug {
				reason = "verdict correct but the search was not exhaustive"
			}
			r.Notes = append(r.Notes, fmt.Sprintf("%s/%s: %s", c.name, variantName(c.variant), reason))
		}
		if res.CE != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s/%s counterexample: %s",
				c.name, variantName(c.variant), sim.FormatScript(res.CE.Schedule)))
		}
		r.Rows = append(r.Rows, []string{
			c.name, variantName(c.variant), strconv.Itoa(c.depth), strconv.Itoa(c.budget),
			strconv.Itoa(res.Stats.Nodes), strconv.Itoa(res.Stats.Pruned),
			strconv.Itoa(res.Stats.Completions), verdict, expected,
		})
	}
	r.Notes = append(r.Notes,
		"paper-variant rows must be safe over the WHOLE bounded schedule space;",
		"broken-variant rows must yield a violation — the checker rediscovers the §3.1 schedules")
	return r, nil
}

func variantName(v rc.Variant) string {
	switch v {
	case rc.VariantNoYield:
		return "no-yield (broken)"
	case rc.VariantYieldAlways:
		return "yield-always (broken)"
	default:
		return "paper"
	}
}
