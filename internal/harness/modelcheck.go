package harness

import (
	"errors"
	"fmt"
	"strconv"

	"rcons/internal/checker"
	"rcons/internal/explore"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
)

// ModelCheck (E10) goes beyond the paper's figures: it *exhaustively*
// verifies the Figure 2 algorithm on small instances — every
// interleaving and every crash placement within the bounds — and, as a
// sensitivity check, confirms the explorer rediscovers the agreement
// violations of both §3.1 counterexamples when the corresponding guard
// is removed. Random schedules (E2) sample the adversary; this
// experiment enumerates it.
func ModelCheck(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E10", Artifact: "§3.1 / Theorem 8", Title: "bounded exhaustive model checking of Figure 2",
		Header: []string{"instance", "variant", "depth", "crashes", "prefixes", "completions", "verdict", "expected"},
		Pass:   true,
	}

	type instance struct {
		name    string
		typ     spec.Type
		witness checker.Witness
		variant rc.Variant
		depth   int
		budget  int
		wantBug bool
	}
	cas3 := checker.Witness{
		Q0:    spec.State(types.Bottom),
		Teams: []int{checker.TeamA, checker.TeamB, checker.TeamB},
		Ops:   []spec.Op{"cas(_,a)", "cas(_,b)", "cas(_,c)"},
	}
	cases := []instance{
		{"S_2 paper witness", types.NewSn(2), SnPaperWitness(2), rc.VariantPaper, 10, 1, false},
		{"S_3 paper witness", types.NewSn(3), SnPaperWitness(3), rc.VariantPaper, 7, 1, false},
		{"CAS |A|=1,|B|=2", types.NewCAS(), cas3, rc.VariantPaper, 7, 1, false},
		{"S_2 paper witness", types.NewSn(2), SnPaperWitness(2), rc.VariantNoYield, 10, 1, true},
		{"CAS |A|=1,|B|=2", types.NewCAS(), cas3, rc.VariantYieldAlways, 9, 0, true},
	}

	for _, c := range cases {
		tc, err := rc.NewTeamConsensus(c.typ, c.witness, "e10")
		if err != nil {
			return nil, err
		}
		alg := rc.NewTeamConsensusVariant(tc, c.variant)
		inputs := alg.TeamInputs("vA", "vB")
		factory := func() (*sim.Memory, []sim.Body, []sim.Value) {
			m := sim.NewMemory()
			alg.Setup(m)
			bodies := make([]sim.Body, alg.N())
			for i := range bodies {
				bodies[i] = alg.Body(i, inputs[i])
			}
			return m, bodies, inputs
		}
		stats, err := explore.Exhaustive(factory, explore.Options{
			MaxDepth:    c.depth,
			CrashBudget: c.budget,
			Check:       rc.CheckOutcome,
		})
		foundBug := errors.Is(err, explore.ErrViolation)
		if err != nil && !foundBug {
			return nil, err
		}
		verdict := "safe"
		if foundBug {
			verdict = "violation found"
		}
		expected := "safe"
		if c.wantBug {
			expected = "violation found"
		}
		ok := foundBug == c.wantBug
		if !ok {
			r.Pass = false
			r.Notes = append(r.Notes, fmt.Sprintf("%s/%s: verdict %q, expected %q (%v)",
				c.name, variantName(c.variant), verdict, expected, err))
		}
		r.Rows = append(r.Rows, []string{
			c.name, variantName(c.variant), strconv.Itoa(c.depth), strconv.Itoa(c.budget),
			strconv.Itoa(stats.Prefixes), strconv.Itoa(stats.Completions), verdict, expected,
		})
	}
	r.Notes = append(r.Notes,
		"paper-variant rows must be safe over the WHOLE bounded schedule space;",
		"broken-variant rows must yield a violation — the explorer rediscovers the §3.1 schedules")
	return r, nil
}

func variantName(v rc.Variant) string {
	switch v {
	case rc.VariantNoYield:
		return "no-yield (broken)"
	case rc.VariantYieldAlways:
		return "yield-always (broken)"
	default:
		return "paper"
	}
}
