package harness

import (
	"fmt"
	"strings"

	"rcons/internal/spec"
)

// Diagram renders a type's full transition diagram as text — the
// reproduction of the state diagrams shown in the paper's Figures 5
// (T_n) and 6 (S_n). Each line lists a state and, per operation, the
// successor state and the operation's response.
func Diagram(t spec.Type, q0 spec.State) (string, error) {
	ops := t.Ops()
	states, err := spec.Reachable(t, q0, ops, 10_000)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "transition diagram of %s (initial state %q, %d states)\n", t.Name(), q0, len(states))
	for _, s := range states {
		fmt.Fprintf(&b, "  %-10s", string(s))
		for _, op := range ops {
			ns, resp, err := t.Apply(s, op)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "  --%s/%s--> %-10s", op, resp, string(ns))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
