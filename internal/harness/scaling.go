package harness

import (
	"fmt"
	"strconv"

	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
	"rcons/internal/universal"
)

// Scaling (E12) is the ablation table a systems reader asks for: how the
// step cost of each construction grows with the number of processes, and
// what crash recovery adds. The paper proves solvability, not cost; this
// experiment documents the cost of OUR constructions so that downstream
// users can budget:
//
//   - cas-consensus: the flat baseline (2 steps per process);
//   - tournament over S_n: the Figure 2 + Appendix B stack — the price
//     of using a minimal n-recording type instead of CAS;
//   - RUniversal per-operation cost (CAS-backed RC instances).
//
// Columns report mean steps per execution over the seed sweep, crash-free
// versus with crash injection (CrashProb 0.25, budget 2n).
func Scaling(opts Options) (*Report, error) {
	opts = opts.filled()
	r := &Report{
		ID: "E12", Artifact: "scaling", Title: "construction cost scaling",
		Header: []string{"construction", "n", "steps (no crashes)", "steps (crashes)", "crash events"},
		Pass:   true,
	}

	measureRC := func(alg rc.Algorithm, crash bool) (int, int, error) {
		n := alg.N()
		inputs := make([]sim.Value, n)
		for i := range inputs {
			inputs[i] = fmt.Sprintf("v%d", i)
		}
		steps, crashes := 0, 0
		for seed := 0; seed < opts.Seeds; seed++ {
			cfg := sim.Config{Seed: int64(seed)}
			if crash {
				cfg.CrashProb = 0.25
				cfg.MaxCrashes = 2 * n
			}
			out, err := rc.Run(alg, inputs, cfg)
			if err != nil {
				return 0, 0, err
			}
			steps += out.Steps
			for _, c := range out.Crashes {
				crashes += c
			}
		}
		return steps / opts.Seeds, crashes, nil
	}

	for n := 2; n <= opts.MaxN; n++ {
		alg := rc.NewCASConsensus(n, "e12c")
		s0, _, err := measureRC(alg, false)
		if err != nil {
			return nil, err
		}
		s1, c1, err := measureRC(alg, true)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			"cas-consensus", strconv.Itoa(n), strconv.Itoa(s0), strconv.Itoa(s1), strconv.Itoa(c1),
		})
	}

	for n := 2; n <= opts.MaxN; n++ {
		tr, err := rc.NewTournament(types.NewSn(n), SnPaperWitness(n), n, "e12t")
		if err != nil {
			return nil, err
		}
		s0, _, err := measureRC(tr, false)
		if err != nil {
			return nil, err
		}
		s1, c1, err := measureRC(tr, true)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			"tournament[S_n]", strconv.Itoa(n), strconv.Itoa(s0), strconv.Itoa(s1), strconv.Itoa(c1),
		})
	}

	measureUniversal := func(n int, crash bool) (int, int, error) {
		steps, crashes := 0, 0
		const opsEach = 2
		for seed := 0; seed < opts.Seeds; seed++ {
			u := universal.New(n, types.NewFetchAdd(100000), "0", "e12u")
			m := sim.NewMemory()
			u.Setup(m)
			bodies := make([]sim.Body, n)
			for i := range bodies {
				i := i
				bodies[i] = func(p *sim.Proc) sim.Value {
					last := sim.Value("")
					for k := 0; k < opsEach; k++ {
						last = sim.Value(u.Invoke(p, i, k, spec.Op("add(1)")))
					}
					return last
				}
			}
			cfg := sim.Config{Seed: int64(seed)}
			if crash {
				cfg.CrashProb = 0.25
				cfg.MaxCrashes = 2 * n
			}
			out, err := sim.NewRunner(m, bodies, cfg).Run()
			if err != nil {
				return 0, 0, err
			}
			if err := u.VerifyList(m); err != nil {
				return 0, 0, err
			}
			steps += out.Steps
			for _, c := range out.Crashes {
				crashes += c
			}
		}
		return steps / opts.Seeds, crashes, nil
	}
	for n := 2; n <= min(4, opts.MaxN); n++ {
		s0, _, err := measureUniversal(n, false)
		if err != nil {
			return nil, err
		}
		s1, c1, err := measureUniversal(n, true)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			"RUniversal (2 ops/proc)", strconv.Itoa(n), strconv.Itoa(s0), strconv.Itoa(s1), strconv.Itoa(c1),
		})
	}

	r.Notes = append(r.Notes,
		"steps are shared-memory accesses, the simulator's unit of cost; the paper proves",
		"solvability only — these numbers characterize this reproduction's constructions")
	return r, nil
}
