// Package mc is a bounded, parallel model checker for the recoverable
// consensus protocols in this repository. Where package explore samples
// one hand-wired system and package rc's tests replay hand-picked
// schedules, mc systematically enumerates EVERY interleaving of process
// steps and EVERY placement of crash/recovery events — under both of the
// paper's failure models — up to a schedule depth and crash budget, and
// checks a safety predicate on every resulting execution.
//
// The bounds mirror the paper's adversary definitions ("When Is
// Recoverable Consensus Harder Than Consensus?", PODC 2022, §2):
//
//   - Options.CrashBudget bounds the number of crash events the adversary
//     may inject. Under sim.Independent each event crashes one process
//     (the paper's main model); under sim.Simultaneous each event crashes
//     all live processes at once (the system-wide failures model of
//     Theorem 1). A budget of c therefore explores exactly the
//     c-crash-bounded adversaries of the respective model.
//   - Options.MaxDepth bounds the length of the adversarially chosen
//     schedule prefix. Every prefix at the bound is extended by a
//     deterministic, crash-free round-robin "fair completion"
//     (sim.Config.FairCompletion), so every explored prefix contributes a
//     full execution — the recoverable wait-freedom assumption (every run
//     decides absent further crashes) makes the completion finite.
//
// Guarantee: a Safe result with Exhaustive set means no schedule of
// length ≤ MaxDepth with ≤ CrashBudget crashes (each leaf extended by one
// fair completion) violates the target's checker, up to configuration
// equivalence — a prefix that reaches a previously explored configuration
// (identical non-volatile heap, identical per-process histories since
// each process's last crash, identical decisions and crash usage) at the
// SAME remaining depth is pruned, because the earlier visit's subtree —
// including every depth-bound leaf's fair completion — generates exactly
// the execution set the pruned subtree would. Complete additionally
// means the depth bound was never hit, i.e. the WHOLE schedule space
// within the crash budget was covered.
//
// When the exhaustive frontier exceeds Options.NodeBudget, the checker
// degrades gracefully into deterministic "swarm" fuzzing: a fixed,
// seed-derived fleet of randomized crash schedules is executed across the
// worker pool instead. Swarm results never claim exhaustiveness — the
// Result says which mode produced it.
//
// Violations come back as a minimal, replayable counterexample: the full
// recorded schedule is shrunk by greedy action deletion until 1-minimal,
// then re-executed (Replay) to capture the violating trace.
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"rcons/internal/obs"
	"rcons/internal/sim"
)

// Checker validates one finished (or prefix-halted) execution. Unlike
// explore.Checker it also receives the run's memory, so construction-
// level invariants (e.g. universal.VerifyList) can be checked alongside
// outcome-level ones.
type Checker func(inputs []sim.Value, m *sim.Memory, out *sim.Outcome) error

// OutcomeCheck adapts an outcome-only predicate (such as rc.CheckOutcome)
// to the Checker signature.
func OutcomeCheck(check func(inputs []sim.Value, out *sim.Outcome) error) Checker {
	return func(inputs []sim.Value, _ *sim.Memory, out *sim.Outcome) error {
		return check(inputs, out)
	}
}

// Target is a system under check: a fresh-instance factory (the checker
// re-executes from scratch for every explored prefix), the failure model
// the adversary plays, and the safety predicate.
type Target struct {
	// Name identifies the target in reports and API responses.
	Name string
	// Model selects the failure model; zero means sim.Independent.
	Model sim.FailureModel
	// Factory returns an equivalent fresh instance on every call.
	Factory func() (*sim.Memory, []sim.Body, []sim.Value)
	// Check is the safety predicate; it must not be nil.
	Check Checker
	// ClockSensitive must be set when bodies observe the global step
	// counter (sim.Proc.Now): a process's local state then depends on
	// when (in global steps) it observed events, not just on what it
	// observed, so configuration fingerprints must carry per-event
	// global positions — which defeats most pruning but keeps it sound.
	ClockSensitive bool
}

// Options bounds a Check run. The zero value of any field selects the
// documented default.
type Options struct {
	// MaxDepth bounds the adversarial schedule prefix length. Default 8.
	MaxDepth int
	// MinDepth is where iterative deepening starts. Default
	// min(4, MaxDepth). Deepening re-explores shallow rounds, but finds
	// shallow counterexamples first and closes small systems early.
	MinDepth int
	// CrashBudget bounds the number of crash events (see the package
	// comment for the model correspondence). Negative means the default
	// of 1; zero genuinely means "no crashes".
	CrashBudget int
	// NodeBudget caps the number of prefixes the exhaustive search may
	// execute before falling back to swarm mode. Default 400_000.
	NodeBudget int
	// Workers is the parallel search width; ≤ 0 means GOMAXPROCS.
	Workers int
	// SwarmSchedules is the number of randomized schedules the swarm
	// fallback executes. Default 2048.
	SwarmSchedules int
	// SwarmSeed offsets the deterministic swarm seed sequence.
	SwarmSeed int64
	// SwarmCrashProb is the per-step crash probability in swarm mode.
	// Default 0.25.
	SwarmCrashProb float64
	// MaxSteps caps any single execution (guards accidental livelock in
	// fair completions). Default 20_000.
	MaxSteps int
	// Progress, when non-nil, receives periodic search-progress samples
	// (nodes explored, rate, current depth, frontier) every
	// ProgressInterval, plus one final flush when the run ends. The
	// publisher samples lock-free counters off the search's hot path, so
	// a nil sink costs nothing and verdicts are identical either way.
	Progress obs.Sink
	// ProgressInterval is the progress sampling period; 0 means 1s.
	ProgressInterval time.Duration
	// LegacyFingerprint switches configuration-fingerprint pruning back
	// to the original pipeline: a full textual Memory.Snapshot plus a
	// re-walk of the entire event trace, hashed with SHA-256, at every
	// search node. The default incremental pipeline combines digests
	// maintained during the run (interned values, rolling per-process
	// event hashes) in O(processes) with no allocation. Verdicts are
	// bit-identical either way — asserted by the parity tests and
	// FuzzFingerprintParity — so the flag exists only for those tests and
	// for benchmarking the two pipelines against each other.
	LegacyFingerprint bool
}

func (o Options) filled() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.MinDepth <= 0 {
		o.MinDepth = 4
	}
	if o.MinDepth > o.MaxDepth {
		o.MinDepth = o.MaxDepth
	}
	if o.CrashBudget < 0 {
		o.CrashBudget = 1
	}
	if o.NodeBudget <= 0 {
		o.NodeBudget = 400_000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SwarmSchedules <= 0 {
		o.SwarmSchedules = 2048
	}
	if o.SwarmCrashProb <= 0 {
		o.SwarmCrashProb = 0.25
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 20_000
	}
	return o
}

// Stats summarizes the search effort. The json tags define the wire
// form rcserve's /v1/mc exposes (lowercase, like every other API field).
type Stats struct {
	// Nodes is the number of schedule prefixes executed exhaustively.
	Nodes int `json:"nodes"`
	// Pruned counts prefixes skipped by configuration-fingerprint
	// pruning.
	Pruned int `json:"pruned"`
	// Completions is the number of full executions checked.
	Completions int `json:"completions"`
	// BoundaryHits counts leaves that hit the depth bound with live
	// processes (zero at the final depth ⇒ the space is Complete).
	BoundaryHits int `json:"boundaryHits"`
	// SwarmRuns is the number of randomized schedules executed by the
	// swarm fallback (zero unless the node budget was exceeded).
	SwarmRuns int `json:"swarmRuns"`
	// Rounds is the number of iterative-deepening rounds run.
	Rounds int `json:"rounds"`
	// DepthReached is the deepest prefix length explored.
	DepthReached int `json:"depthReached"`
}

// Counterexample is a violating execution, minimized and replayable.
type Counterexample struct {
	// Schedule is the 1-minimal action sequence: replaying it as a
	// sim script (HaltAtScriptEnd) reproduces the violation, and
	// removing any single action no longer does.
	Schedule []sim.Action
	// Violation is the checker (or simulator) error message.
	Violation string
	// Trace is the full event log of the minimized replay.
	Trace []sim.TraceEvent
}

// String renders the counterexample for CLI and report output.
func (c *Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule: %s\nviolation: %s\n", sim.FormatScript(c.Schedule), c.Violation)
	if len(c.Trace) > 0 {
		b.WriteString("trace:\n")
		b.WriteString(sim.FormatTrace(c.Trace))
	}
	return b.String()
}

// Result is the verdict of one Check run.
type Result struct {
	// Target, Model, MaxDepth and CrashBudget echo the checked problem.
	Target      string
	Model       sim.FailureModel
	MaxDepth    int
	CrashBudget int
	// Safe reports that no violation was found.
	Safe bool
	// Exhaustive reports the bounded schedule space was fully
	// enumerated; false means the node budget forced swarm fallback, so
	// Safe is only a fuzzing verdict.
	Exhaustive bool
	// Complete reports the search closed without ever hitting the depth
	// bound: the verdict covers ALL schedules within the crash budget,
	// not just those up to MaxDepth.
	Complete bool
	// CE is the minimal counterexample; nil when Safe.
	CE *Counterexample
	// Stats summarizes the effort.
	Stats Stats
}

// Check model-checks tgt under opts. The context cancels the search (a
// cancellation error is returned); every other outcome — safe, violation
// found, swarm fallback — is reported in the Result.
func Check(ctx context.Context, tgt Target, opts Options) (*Result, error) {
	if tgt.Factory == nil || tgt.Check == nil {
		return nil, errors.New("mc: Target.Factory and Target.Check must be set")
	}
	ctx, span := obs.StartSpan(ctx, "mc.check")
	span.SetAttr("target", tgt.Name)
	defer span.End()
	opts = opts.filled()
	model := tgt.Model
	if model == 0 {
		model = sim.Independent
	}
	tgt.Model = model

	res := &Result{
		Target:      tgt.Name,
		Model:       model,
		MaxDepth:    opts.MaxDepth,
		CrashBudget: opts.CrashBudget,
	}
	s := &search{tgt: tgt, opts: opts, start: time.Now()}
	trace := obs.TraceID(ctx)
	stopProgress := obs.PublishEvery(opts.ProgressInterval, opts.Progress, func() obs.Progress {
		return s.progress(trace)
	})
	defer stopProgress()
	logger := obs.LoggerFrom(ctx)

	for depth := opts.MinDepth; ; {
		s.curDepth.Store(int64(depth))
		viol, closed, err := s.round(ctx, depth)
		logger.Debug("mc round done",
			"target", tgt.Name, "depth", depth,
			"nodes", s.nodes.Load(), "pruned", s.pruned.Load(),
			"violation", viol != nil, "closed", closed)
		res.Stats = s.snapshotStats()
		if err != nil {
			return nil, err
		}
		if viol != nil {
			// A violation found in the round where another worker blew
			// the node budget came from a truncated (and therefore
			// scheduling-dependent) search — label it honestly.
			res.Exhaustive = !s.exceeded.Load()
			return s.finishViolation(ctx, res, viol)
		}
		if s.exceeded.Load() {
			// Exhaustive frontier over budget: degrade to swarm fuzzing.
			viol, err := s.swarm(ctx)
			res.Stats = s.snapshotStats()
			if err != nil {
				return nil, err
			}
			res.Exhaustive = false
			if viol != nil {
				return s.finishViolation(ctx, res, viol)
			}
			res.Safe = true
			return res, nil
		}
		if closed {
			// No leaf hit the depth bound: deepening cannot reach
			// anything new, the whole crash-bounded space is covered.
			res.Safe, res.Exhaustive, res.Complete = true, true, true
			return res, nil
		}
		if depth >= opts.MaxDepth {
			res.Safe, res.Exhaustive = true, true
			return res, nil
		}
		depth = min(depth+deepenStep, opts.MaxDepth)
	}
}

// deepenStep is the depth increment between iterative-deepening rounds.
// Branching factors here are ≥ 2, so each round dominates the cost of all
// shallower ones and re-exploration stays cheap.
const deepenStep = 3

// finishViolation minimizes, replays and packages a violation.
func (s *search) finishViolation(ctx context.Context, res *Result, v *violation) (*Result, error) {
	minimal := Minimize(ctx, s.tgt, v.schedule, s.opts.MaxSteps)
	ce := &Counterexample{Schedule: minimal}
	inputs, m, out, err := Replay(s.tgt, minimal, s.opts.MaxSteps)
	switch {
	case err != nil:
		ce.Violation = err.Error()
	default:
		if cerr := s.tgt.Check(inputs, m, out); cerr != nil {
			ce.Violation = cerr.Error()
		} else {
			// Minimize guarantees the minimal schedule still violates;
			// reaching here would be a checker nondeterminism bug.
			ce.Violation = v.err.Error()
		}
	}
	if out != nil {
		ce.Trace = out.Trace
	}
	res.Safe = false
	res.CE = ce
	return res, nil
}
