package mc

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rcons/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden counterexample files")

// goldenCases are the deliberately broken §3.1 protocol variants whose
// minimized violation schedules are pinned byte-for-byte under
// testdata/golden. The checker's canonical-order guarantee makes the
// minimized counterexample a pure function of (target, bounds), so any
// change to these files means the search, the minimizer or the
// simulator changed observable behaviour — which must be deliberate
// (re-bless with -update) and explained in the commit.
var goldenCases = []struct {
	file   string
	target string
	n      int
	opts   Options
}{
	{"unsafe-noyield_n2.txt", "unsafe-noyield", 2, Options{MaxDepth: 12, CrashBudget: 1}},
	{"unsafe-yieldalways_n3.txt", "unsafe-yieldalways", 3, Options{MaxDepth: 10, CrashBudget: 1}},
}

// renderGolden is the committed form: target, bounds, minimized
// schedule, violation text.
func renderGolden(c struct {
	file   string
	target string
	n      int
	opts   Options
}, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "target: %s\n", res.Target)
	fmt.Fprintf(&b, "bounds: depth=%d crashes=%d\n", c.opts.MaxDepth, c.opts.CrashBudget)
	fmt.Fprintf(&b, "schedule: %s\n", sim.FormatScript(res.CE.Schedule))
	fmt.Fprintf(&b, "violation: %s\n", res.CE.Violation)
	return b.String()
}

// TestGoldenCounterexamples re-discovers each pinned violation under
// several worker counts (scheduling diversity stands in for seeds — the
// exhaustive search takes none) and asserts the minimized, replayed
// counterexample matches the committed golden file byte-for-byte.
func TestGoldenCounterexamples(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.target, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", c.file)
			var rendered string
			for _, workers := range []int{1, 4, 8} {
				opts := c.opts
				opts.Workers = workers
				res := check(t, mustTarget(t, c.target, c.n), opts)
				if res.Safe || res.CE == nil {
					t.Fatalf("workers=%d: broken target reported safe: %+v", workers, res)
				}
				got := renderGolden(c, res)
				if rendered == "" {
					rendered = got
				} else if got != rendered {
					t.Fatalf("counterexample depends on worker count %d:\n%s\nvs\n%s", workers, got, rendered)
				}
			}

			if *updateGolden {
				if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if rendered != string(want) {
				t.Fatalf("counterexample drifted from golden file %s:\n--- got ---\n%s--- want ---\n%s",
					path, rendered, want)
			}
		})
	}
}

// TestGoldenSchedulesReplay closes the loop from the committed artifact
// side: the schedule parsed back out of each golden FILE must replay
// through a fresh simulator into exactly the committed violation text,
// and must still be 1-minimal. This keeps the files honest even if the
// search that regenerates them were broken.
func TestGoldenSchedulesReplay(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.target, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", "golden", c.file))
			if err != nil {
				t.Fatalf("missing golden file (run TestGoldenCounterexamples with -update): %v", err)
			}
			fields := map[string]string{}
			for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
				k, v, ok := strings.Cut(line, ": ")
				if !ok {
					t.Fatalf("malformed golden line %q", line)
				}
				fields[k] = v
			}
			schedule, err := sim.ParseScript(fields["schedule"])
			if err != nil {
				t.Fatal(err)
			}

			tgt := mustTarget(t, c.target, c.n)
			inputs, m, out, rerr := Replay(tgt, schedule, 0)
			if rerr != nil {
				t.Fatalf("golden schedule failed to execute: %v", rerr)
			}
			cerr := tgt.Check(inputs, m, out)
			if cerr == nil {
				t.Fatal("golden schedule no longer violates")
			}
			if cerr.Error() != fields["violation"] {
				t.Fatalf("replayed violation %q differs from committed %q", cerr, fields["violation"])
			}
			for i := range schedule {
				cand := append(append([]sim.Action(nil), schedule[:i]...), schedule[i+1:]...)
				if scheduleViolates(tgt, cand, 0) {
					t.Fatalf("golden schedule not 1-minimal: dropping action %d (%s) still violates",
						i, schedule[i])
				}
			}
		})
	}
}

// TestGoldenMatchesMinimize ties the two golden tests together: running
// the minimizer from scratch on the golden schedule returns it
// unchanged (Minimize is a fixpoint on 1-minimal schedules).
func TestGoldenMatchesMinimize(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.target, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", "golden", c.file))
			if err != nil {
				t.Skip("golden file missing")
			}
			for _, line := range strings.Split(string(raw), "\n") {
				sched, ok := strings.CutPrefix(line, "schedule: ")
				if !ok {
					continue
				}
				schedule, err := sim.ParseScript(sched)
				if err != nil {
					t.Fatal(err)
				}
				tgt := mustTarget(t, c.target, c.n)
				min := Minimize(context.Background(), tgt, schedule, 0)
				if sim.FormatScript(min) != sched {
					t.Fatalf("Minimize is not a fixpoint on the golden schedule: %s -> %s",
						sched, sim.FormatScript(min))
				}
			}
		})
	}
}
