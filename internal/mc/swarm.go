package mc

import (
	"context"
	"sync"

	"rcons/internal/sim"
)

// swarm is the randomized fallback for state spaces whose exhaustive
// frontier exceeds the node budget: a fleet of Options.SwarmSchedules
// executions, each driven by the seeded random scheduler with crash
// injection (seed = SwarmSeed + index, so the whole fleet is
// deterministic and any violation it reports is reproducible). Schedules
// are recorded, so a violating run yields a replayable script exactly
// like the exhaustive search. The first violation in seed order wins,
// independent of worker count.
func (s *search) swarm(ctx context.Context) (*violation, error) {
	var (
		mu      sync.Mutex
		next    int
		bestIdx = s.opts.SwarmSchedules
		best    *violation
	)
	var wg sync.WaitGroup
	for range min(s.opts.Workers, s.opts.SwarmSchedules) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				if i >= s.opts.SwarmSchedules || i >= bestIdx {
					mu.Unlock()
					return
				}
				mu.Unlock()
				if ctx.Err() != nil {
					return
				}

				v := s.swarmOne(int64(i))
				s.swarmRuns.Add(1)

				if v != nil {
					mu.Lock()
					if i < bestIdx {
						bestIdx, best = i, v
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return best, nil
}

// swarmOne executes one randomized schedule and returns its violation,
// if any.
func (s *search) swarmOne(idx int64) *violation {
	m, bodies, inputs := s.tgt.Factory()
	cfg := sim.Config{
		Seed:               s.opts.SwarmSeed + idx,
		Model:              s.tgt.Model,
		CrashProb:          s.opts.SwarmCrashProb,
		MaxCrashes:         s.opts.CrashBudget,
		DecideRequiresStep: true,
		MaxSteps:           s.opts.MaxSteps,
	}
	r := sim.NewRunner(m, bodies, cfg)
	r.RecordSchedule()
	out, err := r.Run()
	if err != nil {
		return &violation{schedule: out.Schedule, err: err}
	}
	if cerr := s.tgt.Check(inputs, m, out); cerr != nil {
		return &violation{schedule: out.Schedule, err: cerr}
	}
	return nil
}
