package mc

import (
	"fmt"
	"sort"

	"rcons/internal/checker"
	"rcons/internal/compile"
	"rcons/internal/rc"
	"rcons/internal/sim"
	"rcons/internal/spec"
	"rcons/internal/types"
	"rcons/internal/universal"
)

// compiledSpec lowers a builtin target's object type to its dense
// transition-table view, so every protocol step the simulator executes
// during model checking is two array reads instead of an interpreted
// Apply (state-string parsing, map lookups). The view renders identical
// state/response strings, so schedules, fingerprints and
// counterexamples are byte-for-byte unchanged. Types the compiler
// cannot handle run interpreted, and operations outside the compiled
// alphabet fall back per call inside the view.
func compiledSpec(t spec.Type, n int) spec.Type {
	if c, err := compile.Compile(t, n); err == nil {
		return c.Type()
	}
	return t
}

// FromAlgorithm wraps an rc.Algorithm as a model-checking target: fresh
// memory + bodies per explored prefix, validated by rc.CheckOutcome.
func FromAlgorithm(alg rc.Algorithm, inputs []sim.Value, model sim.FailureModel) (Target, error) {
	if len(inputs) != alg.N() {
		return Target{}, fmt.Errorf("mc: %s wants %d inputs, got %d", alg.Name(), alg.N(), len(inputs))
	}
	return Target{
		Name:  alg.Name(),
		Model: model,
		Factory: func() (*sim.Memory, []sim.Body, []sim.Value) {
			m := sim.NewMemory()
			alg.Setup(m)
			bodies := make([]sim.Body, alg.N())
			for i := range bodies {
				bodies[i] = alg.Body(i, inputs[i])
			}
			return m, bodies, inputs
		},
		Check: OutcomeCheck(rc.CheckOutcome),
	}, nil
}

// snWitness replicates the S_n witness from the proof of Proposition 21
// (harness.SnPaperWitness; duplicated here because harness builds its
// experiments on top of this package).
func snWitness(n int) checker.Witness {
	w := checker.Witness{Q0: types.SnInitial, Teams: []int{checker.TeamA}, Ops: []spec.Op{"opA"}}
	for i := 1; i < n; i++ {
		w.Teams = append(w.Teams, checker.TeamB)
		w.Ops = append(w.Ops, "opB")
	}
	return w
}

// casWitness is the canonical n-recording compare&swap witness: the
// first a processes form team A, every process proposes a distinct value.
func casWitness(a, n int) checker.Witness {
	w := checker.Witness{Q0: spec.State(types.Bottom)}
	for i := 0; i < n; i++ {
		team := checker.TeamA
		if i >= a {
			team = checker.TeamB
		}
		w.Teams = append(w.Teams, team)
		w.Ops = append(w.Ops, spec.FormatOp("cas", types.Bottom, fmt.Sprintf("v%d", i)))
	}
	return w
}

// distinctInputs returns n pairwise distinct proposal values.
func distinctInputs(n int) []sim.Value {
	out := make([]sim.Value, n)
	for i := range out {
		out[i] = fmt.Sprintf("v%d", i)
	}
	return out
}

// targetBuilder constructs a named builtin target for n processes.
type targetBuilder struct {
	doc   string
	build func(n int) (Target, error)
}

// builtins indexes every protocol in internal/rc and internal/universal
// by the names used by `rcons -mc`, `rcserve /v1/mc` and the harness.
var builtins = map[string]targetBuilder{
	"cas": {
		doc: "CASConsensus baseline (independent crashes, natively recoverable)",
		build: func(n int) (Target, error) {
			return FromAlgorithm(rc.NewCASConsensus(n, "mc"), distinctInputs(n), sim.Independent)
		},
	},
	"team-sn": {
		doc: "TeamConsensus (Figure 2) over the S_n paper witness, independent crashes",
		build: func(n int) (Target, error) {
			tc, err := rc.NewTeamConsensus(compiledSpec(types.NewSn(n), n), snWitness(n), "mc")
			if err != nil {
				return Target{}, err
			}
			return FromAlgorithm(tc, tc.TeamInputs("vA", "vB"), sim.Independent)
		},
	},
	"team-cas": {
		doc: "TeamConsensus (Figure 2) over the CAS witness with |A|=1, independent crashes",
		build: func(n int) (Target, error) {
			tc, err := rc.NewTeamConsensus(compiledSpec(types.NewCAS(), n), casWitness(1, n), "mc")
			if err != nil {
				return Target{}, err
			}
			return FromAlgorithm(tc, tc.TeamInputs("vA", "vB"), sim.Independent)
		},
	},
	"tournament": {
		doc: "Tournament (Proposition 30) over the S_n witness, full RC, independent crashes",
		build: func(n int) (Target, error) {
			tr, err := rc.NewTournament(compiledSpec(types.NewSn(n), n), snWitness(n), n, "mc")
			if err != nil {
				return Target{}, err
			}
			return FromAlgorithm(tr, distinctInputs(n), sim.Independent)
		},
	},
	"simultaneous": {
		doc: "SimultaneousRC (Figure 4 / Theorem 1) under system-wide crashes",
		build: func(n int) (Target, error) {
			return FromAlgorithm(rc.NewSimultaneousRC(n, "mc"), distinctInputs(n), sim.Simultaneous)
		},
	},
	"universal": {
		doc: "RUniversal (Figure 7): each process appends one register write; list verified",
		build: universalTarget,
	},
	"unsafe-noyield": {
		doc: "BROKEN TeamConsensus missing the line 19-20 yield (agreement violation expected)",
		build: func(n int) (Target, error) {
			tc, err := rc.NewTeamConsensus(compiledSpec(types.NewSn(n), n), snWitness(n), "mc")
			if err != nil {
				return Target{}, err
			}
			broken := rc.NewTeamConsensusVariant(tc, rc.VariantNoYield)
			t, err := FromAlgorithm(broken, broken.TeamInputs("vA", "vB"), sim.Independent)
			t.Name = "unsafe-noyield[" + t.Name + "]"
			return t, err
		},
	},
	"unsafe-yieldalways": {
		doc: "BROKEN TeamConsensus yielding regardless of |B| (agreement violation expected; n≥3)",
		build: func(n int) (Target, error) {
			if n < 3 {
				return Target{}, fmt.Errorf("mc: unsafe-yieldalways needs n ≥ 3 (|B| > 1), got %d", n)
			}
			tc, err := rc.NewTeamConsensus(compiledSpec(types.NewCAS(), n), casWitness(1, n), "mc")
			if err != nil {
				return Target{}, err
			}
			broken := rc.NewTeamConsensusVariant(tc, rc.VariantYieldAlways)
			t, err := FromAlgorithm(broken, broken.TeamInputs("vA", "vB"), sim.Independent)
			t.Name = "unsafe-yieldalways[" + t.Name + "]"
			return t, err
		},
	},
}

// universalTarget drives the recoverable universal construction: process
// i performs a single write(i) on a universally-constructed register.
// The checker validates the construction's linked list against the
// sequential specification (universal.VerifyList) — agreement/validity do
// not apply, the list IS the linearization.
//
// VerifyList is a QUIESCENT invariant, not a prefix invariant: mid-append
// a node's next pointer is already decided (the nextWinner cache is
// written in the Decide grant window) while the winner's seq/state/resp
// registers are written by later steps, so a prefix halted between those
// points legitimately shows a half-initialized node. The check therefore
// runs only once every process has decided — which every explored prefix
// reaches via its fair completion, and list corruption (double append,
// seq gap) is permanent in the append-only list, so nothing is missed.
func universalTarget(n int) (Target, error) {
	reg := &types.Register{Values: func() []string {
		vs := make([]string, n)
		for i := range vs {
			vs[i] = fmt.Sprintf("%d", i)
		}
		return vs
	}()}
	u := universal.New(n, compiledSpec(reg, n), spec.State(types.Bottom), "mc/u")
	return Target{
		Name:  "universal[register]",
		Model: sim.Independent,
		Factory: func() (*sim.Memory, []sim.Body, []sim.Value) {
			m := sim.NewMemory()
			u.Setup(m)
			bodies := make([]sim.Body, n)
			for i := range bodies {
				op := spec.FormatOp("write", fmt.Sprintf("%d", i))
				bodies[i] = func(p *sim.Proc) sim.Value {
					return sim.Value(u.Invoke(p, p.ID(), 0, op))
				}
			}
			return m, bodies, distinctInputs(n)
		},
		Check: func(_ []sim.Value, m *sim.Memory, out *sim.Outcome) error {
			for _, d := range out.Decided {
				if !d {
					return nil // mid-append prefix: list may be half-built
				}
			}
			return u.VerifyList(m)
		},
	}, nil
}

// Targets lists the builtin target names, sorted.
func Targets() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TargetDoc returns the one-line description of a builtin target
// ("" for unknown names).
func TargetDoc(name string) string { return builtins[name].doc }

// TargetByName builds the named builtin target for n processes.
func TargetByName(name string, n int) (Target, error) {
	b, ok := builtins[name]
	if !ok {
		return Target{}, fmt.Errorf("mc: unknown target %q (have %v)", name, Targets())
	}
	if n < 2 {
		return Target{}, fmt.Errorf("mc: target %q needs n ≥ 2, got %d", name, n)
	}
	return b.build(n)
}
