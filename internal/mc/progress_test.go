package mc

import (
	"context"
	"sync"
	"testing"

	"rcons/internal/obs"
)

// captureSink records every published progress sample.
type captureSink struct {
	mu      sync.Mutex
	samples []obs.Progress
}

func (s *captureSink) Publish(p obs.Progress) {
	s.mu.Lock()
	s.samples = append(s.samples, p)
	s.mu.Unlock()
}

func (s *captureSink) last(t *testing.T) obs.Progress {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		t.Fatal("no progress samples published")
	}
	return s.samples[len(s.samples)-1]
}

// TestProgressFrontierDrains asserts the frontier gauge's exact
// accounting: every search root leaves the frontier exactly once — via
// its dfs, via the claim-and-skip drain after an early stop, or via the
// post-wait sweep for never-claimed roots — so the final flushed sample
// reads 0 with no blanket reset hiding a leak. The violating target is
// the sensitive case: its search stops early with most roots
// unexplored.
func TestProgressFrontierDrains(t *testing.T) {
	cases := []struct {
		target string
		n      int
		opts   Options
		safe   bool
	}{
		{"team-sn", 2, Options{MaxDepth: 8, CrashBudget: 1}, true},
		{"unsafe-noyield", 2, Options{MaxDepth: 12, CrashBudget: 1}, false},
	}
	for _, c := range cases {
		t.Run(c.target, func(t *testing.T) {
			sink := &captureSink{}
			opts := c.opts
			opts.Progress = sink
			res, err := Check(context.Background(), mustTarget(t, c.target, c.n), opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Safe != c.safe {
				t.Fatalf("Safe = %v, want %v", res.Safe, c.safe)
			}
			final := sink.last(t)
			if final.Frontier != 0 {
				t.Fatalf("final frontier = %d, want 0 (leaked roots)", final.Frontier)
			}
			if final.Nodes <= 0 {
				t.Fatalf("final nodes = %d, want > 0", final.Nodes)
			}
		})
	}
}
