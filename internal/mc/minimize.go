package mc

import (
	"context"
	"errors"

	"rcons/internal/sim"
)

// Replay re-executes a recorded schedule against a fresh instance of the
// target: the schedule becomes the exact script and the run halts at its
// end, so the execution is a pure function of the schedule. The returned
// outcome has its trace recorded for diagnostics.
func Replay(tgt Target, schedule []sim.Action, maxSteps int) ([]sim.Value, *sim.Memory, *sim.Outcome, error) {
	if maxSteps <= 0 {
		maxSteps = Options{}.filled().MaxSteps
	}
	m, bodies, inputs := tgt.Factory()
	cfg := sim.Config{
		Model:              tgt.Model,
		Script:             schedule,
		HaltAtScriptEnd:    true,
		DecideRequiresStep: true,
		MaxSteps:           maxSteps,
	}
	r := sim.NewRunner(m, bodies, cfg)
	r.RecordTrace()
	out, err := r.Run()
	return inputs, m, out, err
}

// minimizeCap bounds the schedule length Minimize will shrink: greedy
// deletion is O(L²) replays of O(L) steps, so a step-budget violation
// whose recorded schedule has tens of thousands of actions (a livelock —
// exactly the kind of bug the checker exists to find) would otherwise
// take effectively forever. Longer schedules are reported un-minimized.
const minimizeCap = 512

// Minimize shrinks a violating schedule by greedy action deletion until
// it is 1-minimal: removing any single remaining action no longer
// violates the target's checker. Candidate schedules that sim rejects as
// inadmissible scripts (sim.ErrScript — e.g. deleting a crash made a
// later step refer to a process that has already decided) do not count
// as violations; any other simulator failure does, since it is itself a
// finding (a panic or a recoverable wait-freedom violation).
//
// Context cancellation (e.g. an rcserve request deadline) stops the
// shrinking early and returns the best schedule found so far — still a
// valid, replayable violation, just not necessarily 1-minimal.
func Minimize(ctx context.Context, tgt Target, schedule []sim.Action, maxSteps int) []sim.Action {
	cur := append([]sim.Action(nil), schedule...)
	if len(cur) > minimizeCap {
		return cur
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur); i++ {
			if ctx.Err() != nil {
				return cur
			}
			cand := append(append(make([]sim.Action, 0, len(cur)-1), cur[:i]...), cur[i+1:]...)
			if scheduleViolates(tgt, cand, maxSteps) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur
}

// scheduleViolates reports whether replaying the schedule still fails
// the target's checker (or the simulator itself).
func scheduleViolates(tgt Target, schedule []sim.Action, maxSteps int) bool {
	inputs, m, out, err := Replay(tgt, schedule, maxSteps)
	if err != nil {
		return !errors.Is(err, sim.ErrScript)
	}
	return tgt.Check(inputs, m, out) != nil
}
