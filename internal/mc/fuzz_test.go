package mc

import (
	"errors"
	"sync"
	"testing"

	"rcons/internal/sim"
)

// fuzzTargets are the systems FuzzFingerprintParity probes: cheap
// builtin targets covering plain registers+objects (cas), the Figure 2
// machine (team-sn/team-cas), a broken variant (whose configurations
// include post-violation states), and the simultaneous failure model.
// Targets are built once — the fuzzer executes thousands of prefixes and
// construction is pure setup.
var fuzzTargets = struct {
	once sync.Once
	tgts []Target
	errs []error
}{}

func fuzzTargetList(t testing.TB) []Target {
	fuzzTargets.once.Do(func() {
		for _, name := range []string{"cas", "team-sn", "team-cas", "unsafe-noyield", "simultaneous"} {
			tgt, err := TargetByName(name, 2)
			fuzzTargets.tgts = append(fuzzTargets.tgts, tgt)
			fuzzTargets.errs = append(fuzzTargets.errs, err)
		}
	})
	for _, err := range fuzzTargets.errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return fuzzTargets.tgts
}

// decodeSchedule turns fuzz bytes into a schedule for a 2-process
// target: each byte selects a step of p0/p1, a crash of p0/p1 (CrashAll
// under the simultaneous model), biased 3:1 toward steps so prefixes
// usually make progress. Length is capped to keep each probe bounded.
func decodeSchedule(raw []byte, model sim.FailureModel) []sim.Action {
	const maxLen = 10
	var out []sim.Action
	for _, b := range raw {
		if len(out) >= maxLen {
			break
		}
		switch v := b % 8; {
		case v < 3:
			out = append(out, sim.Step(0))
		case v < 6:
			out = append(out, sim.Step(1))
		default:
			if model == sim.Simultaneous {
				out = append(out, sim.CrashAll())
			} else {
				out = append(out, sim.Crash(int(v)-6))
			}
		}
	}
	return out
}

// FuzzFingerprintParity drives random schedule prefixes through both
// fingerprint pipelines and asserts they induce the SAME equivalence on
// configurations: two prefixes get equal incremental fingerprints
// exactly when they get equal legacy (Snapshot+trace+SHA-256)
// fingerprints. Divergence in either direction would be a pruning
// soundness bug (incremental merges configurations the legacy oracle
// separates) or a pruning-power regression (incremental separates what
// legacy merges). It also asserts incremental fingerprints are
// reproducible across independent executions of the same prefix.
func FuzzFingerprintParity(f *testing.F) {
	f.Add(uint8(0), []byte{0, 3, 6}, []byte{3, 0, 6})
	f.Add(uint8(1), []byte{0, 0, 1, 7}, []byte{0, 0, 1, 6})
	f.Add(uint8(2), []byte{6, 0, 1, 0}, []byte{0, 1, 0, 6})
	f.Add(uint8(3), []byte{0, 3, 0, 3, 6, 0}, []byte{3, 0, 3, 0, 6, 0})
	f.Add(uint8(4), []byte{0, 1, 7, 0, 1}, []byte{1, 0, 7, 1, 0})

	f.Fuzz(func(t *testing.T, tgtSel uint8, rawA, rawB []byte) {
		tgts := fuzzTargetList(t)
		tgt := tgts[int(tgtSel)%len(tgts)]

		probe := func(raw []byte) *FingerprintProbe {
			p, err := NewFingerprintProbe(tgt, decodeSchedule(raw, tgt.Model), Options{})
			if err != nil {
				if errors.Is(err, sim.ErrScript) {
					return nil // inadmissible prefix (e.g. steps a decided process)
				}
				t.Fatalf("probe %v: %v", raw, err)
			}
			return p
		}
		pa, pb := probe(rawA), probe(rawB)
		if pa == nil || pb == nil {
			return
		}

		incEq := pa.Incremental() == pb.Incremental()
		legEq := pa.Legacy() == pb.Legacy()
		if incEq != legEq {
			t.Fatalf("fingerprint parity broken on %s:\n  a=%s\n  b=%s\n  incremental equal=%v, legacy equal=%v",
				tgt.Name,
				sim.FormatScript(decodeSchedule(rawA, tgt.Model)),
				sim.FormatScript(decodeSchedule(rawB, tgt.Model)),
				incEq, legEq)
		}

		// Reproducibility: a second independent execution of prefix A
		// must land on the identical incremental fingerprint.
		if again := probe(rawA); again == nil || again.Incremental() != pa.Incremental() {
			t.Fatalf("incremental fingerprint of %v not reproducible", rawA)
		}
	})
}
