package mc

import (
	"fmt"

	"rcons/internal/sim"
)

// Fingerprint is the search's 128-bit configuration-pruning key: two
// equal fingerprints mean (up to hash collision) the same non-volatile
// heap, the same per-process histories since each process's last crash,
// the same decisions and the same crash usage. Values are comparable;
// they are meaningful only within one process (the incremental pipeline
// builds on the process-wide intern table) and must never be persisted.
type Fingerprint [2]uint64

// String renders the fingerprint for test diagnostics.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f[0], f[1]) }

// FingerprintProbe holds the executed state of one schedule prefix of a
// target — memory, outcome, crash usage — with BOTH fingerprint inputs
// recorded (the event trace for the legacy pipeline, the rolling digests
// for the incremental one), so the two pipelines can be evaluated and
// compared on exactly the same configuration. It exists for the parity
// tests, the FuzzFingerprintParity target and the fingerprint
// benchmarks; the search itself records only what its active pipeline
// needs.
type FingerprintProbe struct {
	s       *search
	m       *sim.Memory
	out     *sim.Outcome
	crashes int
}

// NewFingerprintProbe executes the schedule prefix against a fresh
// instance of tgt (halting at the script's end, exactly like a search
// node) and captures the reached configuration. Inadmissible scripts
// surface as errors wrapping sim.ErrScript.
func NewFingerprintProbe(tgt Target, script []sim.Action, opts Options) (*FingerprintProbe, error) {
	if tgt.Factory == nil || tgt.Check == nil {
		return nil, fmt.Errorf("mc: Target.Factory and Target.Check must be set")
	}
	if tgt.Model == 0 {
		tgt.Model = sim.Independent
	}
	s := &search{tgt: tgt, opts: opts.filled()}
	m, bodies, _ := tgt.Factory()
	cfg := sim.Config{
		Model:              tgt.Model,
		Script:             script,
		HaltAtScriptEnd:    true,
		DecideRequiresStep: true,
		MaxSteps:           s.opts.MaxSteps,
	}
	r := sim.NewRunner(m, bodies, cfg)
	r.RecordTrace()
	r.RecordDigests()
	out, err := r.Run()
	if err != nil {
		return nil, err
	}
	crashes := 0
	for _, a := range script {
		if a.Kind != sim.ActStep {
			crashes++
		}
	}
	return &FingerprintProbe{s: s, m: m, out: out, crashes: crashes}, nil
}

// Incremental computes the configuration fingerprint with the default
// pipeline: Memory.Digest plus the per-process rolling event hashes.
func (p *FingerprintProbe) Incremental() Fingerprint {
	return p.s.incrementalFingerprint(p.out, p.m, p.crashes)
}

// Legacy computes the same configuration's fingerprint with the
// original Snapshot+trace+SHA-256 pipeline.
func (p *FingerprintProbe) Legacy() Fingerprint {
	return p.s.legacyFingerprint(p.out, p.m, p.crashes)
}
