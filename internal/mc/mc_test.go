package mc

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"rcons/internal/explore"
	"rcons/internal/rc"
	"rcons/internal/sim"
)

func mustTarget(t *testing.T, name string, n int) Target {
	t.Helper()
	tgt, err := TargetByName(name, n)
	if err != nil {
		t.Fatalf("TargetByName(%q, %d): %v", name, n, err)
	}
	return tgt
}

func check(t *testing.T, tgt Target, opts Options) *Result {
	t.Helper()
	res, err := Check(context.Background(), tgt, opts)
	if err != nil {
		t.Fatalf("Check(%s): %v", tgt.Name, err)
	}
	return res
}

// TestExhaustiveSafeProtocols is the acceptance check: the paper's
// protocols must survive the FULL bounded adversary — every interleaving
// and crash placement within the depth/crash budget — for n = 2.
func TestExhaustiveSafeProtocols(t *testing.T) {
	cases := []struct {
		target string
		opts   Options
	}{
		{"cas", Options{MaxDepth: 10, CrashBudget: 2}},
		{"team-sn", Options{MaxDepth: 10, CrashBudget: 1}},
		{"team-cas", Options{MaxDepth: 10, CrashBudget: 1}},
		{"simultaneous", Options{MaxDepth: 8, CrashBudget: 1}},
		{"tournament", Options{MaxDepth: 8, CrashBudget: 1}},
	}
	for _, c := range cases {
		t.Run(c.target, func(t *testing.T) {
			res := check(t, mustTarget(t, c.target, 2), c.opts)
			if !res.Safe {
				t.Fatalf("%s reported unsafe:\n%s", c.target, res.CE)
			}
			if !res.Exhaustive {
				t.Fatalf("%s fell back to swarm (nodes=%d)", c.target, res.Stats.Nodes)
			}
			if res.Stats.Completions == 0 {
				t.Fatalf("%s checked no full executions", c.target)
			}
			t.Logf("%s: nodes=%d pruned=%d completions=%d rounds=%d complete=%v",
				c.target, res.Stats.Nodes, res.Stats.Pruned, res.Stats.Completions,
				res.Stats.Rounds, res.Complete)
		})
	}
}

// TestCASCompletes shows the checker CLOSES small state spaces: CAS
// consensus for n=2 has so few configurations that the search terminates
// before the depth bound, covering every schedule within the crash
// budget outright.
func TestCASCompletes(t *testing.T) {
	res := check(t, mustTarget(t, "cas", 2), Options{MaxDepth: 16, CrashBudget: 1})
	if !res.Safe || !res.Exhaustive {
		t.Fatalf("cas n=2 not verified: %+v", res)
	}
	if !res.Complete {
		t.Fatalf("cas n=2 should close before depth 16 (boundary hits %d)", res.Stats.BoundaryHits)
	}
}

// TestUniversalConstruction model-checks RUniversal's list invariant for
// n=2 under independent crashes at a modest depth.
func TestUniversalConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("universal bodies are long; skip in -short")
	}
	res := check(t, mustTarget(t, "universal", 2), Options{MaxDepth: 7, MinDepth: 7, CrashBudget: 1})
	if !res.Safe || !res.Exhaustive {
		t.Fatalf("universal n=2 not verified: %+v", res)
	}
}

// TestUniversalDeepPrefixNoFalsePositive is the regression test for the
// quiescent-only list check: a schedule prefix halted mid-append (next
// pointer decided, winner node's seq/state/resp not yet written) shows a
// half-built list, which must NOT be reported as a violation. Depth 20
// crash-free reaches such prefixes; the old prefix-time VerifyList call
// flagged them.
func TestUniversalDeepPrefixNoFalsePositive(t *testing.T) {
	if testing.Short() {
		t.Skip("deep universal search; skip in -short")
	}
	res := check(t, mustTarget(t, "universal", 2), Options{
		MaxDepth: 20, MinDepth: 20, CrashBudget: 0,
	})
	if !res.Safe {
		t.Fatalf("false violation on a correct universal construction:\n%s", res.CE)
	}
	if !res.Exhaustive {
		t.Fatalf("search fell back to swarm (nodes=%d)", res.Stats.Nodes)
	}
}

// TestBrokenProtocolCounterexample is the second acceptance check: the
// deliberately broken Figure 2 variant must produce a minimal,
// replayable counterexample, and replaying it through a raw sim runner
// must reproduce the same violation.
func TestBrokenProtocolCounterexample(t *testing.T) {
	tgt := mustTarget(t, "unsafe-noyield", 2)
	res := check(t, tgt, Options{MaxDepth: 12, CrashBudget: 1})
	if res.Safe || res.CE == nil {
		t.Fatalf("broken protocol reported safe: %+v", res)
	}
	if !strings.Contains(res.CE.Violation, "agreement") {
		t.Fatalf("expected an agreement violation, got: %s", res.CE.Violation)
	}

	// Replayable: an independent sim execution of the schedule, built
	// from a fresh instance, reproduces the identical violation.
	inputs, m, out, err := Replay(tgt, res.CE.Schedule, 0)
	if err != nil {
		t.Fatalf("replay failed to execute: %v", err)
	}
	cerr := tgt.Check(inputs, m, out)
	if cerr == nil {
		t.Fatal("replay of the counterexample did not violate")
	}
	if cerr.Error() != res.CE.Violation {
		t.Fatalf("replay violation %q differs from reported %q", cerr, res.CE.Violation)
	}

	// Minimal: removing ANY single action must make the violation
	// disappear (or the script inadmissible).
	for i := range res.CE.Schedule {
		cand := append(append([]sim.Action(nil), res.CE.Schedule[:i]...), res.CE.Schedule[i+1:]...)
		if scheduleViolates(tgt, cand, 0) {
			t.Fatalf("counterexample not minimal: dropping action %d (%s) still violates\nfull: %s",
				i, res.CE.Schedule[i], sim.FormatScript(res.CE.Schedule))
		}
	}
	t.Logf("counterexample: %s", sim.FormatScript(res.CE.Schedule))
}

// TestYieldAlwaysCounterexample rediscovers the paper's second §3.1 bad
// scenario: yielding with |B| > 1 breaks agreement.
func TestYieldAlwaysCounterexample(t *testing.T) {
	if testing.Short() {
		t.Skip("n=3 search; skip in -short")
	}
	res := check(t, mustTarget(t, "unsafe-yieldalways", 3), Options{MaxDepth: 10, CrashBudget: 1})
	if res.Safe || res.CE == nil {
		t.Fatalf("yield-always variant reported safe: %+v", res)
	}
	if !strings.Contains(res.CE.Violation, "agreement") {
		t.Fatalf("expected an agreement violation, got: %s", res.CE.Violation)
	}
}

// TestSwarmFallback forces the node budget under the exhaustive
// frontier and checks the checker degrades to deterministic swarm
// fuzzing — and that the swarm still finds the broken protocol's bug.
func TestSwarmFallback(t *testing.T) {
	// Safe target: swarm finds nothing, result is Safe but not Exhaustive.
	res := check(t, mustTarget(t, "team-sn", 2), Options{
		MaxDepth: 10, CrashBudget: 1, NodeBudget: 40, SwarmSchedules: 64,
	})
	if res.Exhaustive {
		t.Fatalf("node budget 40 should have forced swarm fallback (nodes=%d)", res.Stats.Nodes)
	}
	if !res.Safe {
		t.Fatalf("swarm found a spurious violation:\n%s", res.CE)
	}
	if res.Stats.SwarmRuns == 0 {
		t.Fatal("swarm fallback executed no schedules")
	}

	// Broken target: the swarm fleet must rediscover the violation.
	resBad := check(t, mustTarget(t, "unsafe-noyield", 2), Options{
		MaxDepth: 10, CrashBudget: 1, NodeBudget: 10, SwarmSchedules: 512,
	})
	if resBad.Exhaustive {
		t.Fatal("node budget 10 should have forced swarm fallback")
	}
	if resBad.Safe || resBad.CE == nil {
		t.Fatal("swarm failed to find the known agreement violation")
	}
	if !strings.Contains(resBad.CE.Violation, "agreement") {
		t.Fatalf("expected an agreement violation, got: %s", resBad.CE.Violation)
	}
}

// TestDeterministicVerdict runs the same broken-protocol search twice
// with different worker counts and expects the identical counterexample
// — the canonical-order guarantee of the parallel search.
func TestDeterministicVerdict(t *testing.T) {
	tgt := mustTarget(t, "unsafe-noyield", 2)
	opts1 := Options{MaxDepth: 12, CrashBudget: 1, Workers: 1}
	optsN := Options{MaxDepth: 12, CrashBudget: 1, Workers: 8}
	a := check(t, tgt, opts1)
	b := check(t, tgt, optsN)
	if a.Safe || b.Safe {
		t.Fatal("broken protocol reported safe")
	}
	if !reflect.DeepEqual(a.CE.Schedule, b.CE.Schedule) {
		t.Fatalf("verdict depends on worker count:\n1 worker:  %s\n8 workers: %s",
			sim.FormatScript(a.CE.Schedule), sim.FormatScript(b.CE.Schedule))
	}
	if a.CE.Violation != b.CE.Violation {
		t.Fatalf("violation message depends on worker count: %q vs %q", a.CE.Violation, b.CE.Violation)
	}
}

// TestPruningSoundness cross-validates fingerprint pruning two ways:
// against clock-sensitive (per-event-timestamped, nearly path-unique)
// fingerprints that defeat most pruning, and against the pruning-free
// enumeration of package explore — neither oracle may disagree with the
// pruned verdict.
func TestPruningSoundness(t *testing.T) {
	tgt := mustTarget(t, "unsafe-noyield", 2)
	opts := Options{MaxDepth: 12, CrashBudget: 1}
	pruned := check(t, tgt, opts)

	noPrune := tgt
	noPrune.ClockSensitive = true // timestamped events ⇒ almost no pruning
	full := check(t, noPrune, opts)

	if pruned.Safe != full.Safe {
		t.Fatalf("pruning changed the verdict: pruned safe=%v, full safe=%v", pruned.Safe, full.Safe)
	}
	if !reflect.DeepEqual(pruned.CE.Schedule, full.CE.Schedule) {
		t.Fatalf("pruning changed the counterexample:\npruned: %s\nfull:   %s",
			sim.FormatScript(pruned.CE.Schedule), sim.FormatScript(full.CE.Schedule))
	}

	// On a safe target the whole space is explored, so the finer
	// clock-sensitive fingerprints must expand the node count while
	// leaving the verdict untouched.
	safe := mustTarget(t, "team-sn", 2)
	safeNoPrune := safe
	safeNoPrune.ClockSensitive = true
	safeOpts := Options{MaxDepth: 8, MinDepth: 8, CrashBudget: 1}
	a := check(t, safe, safeOpts)
	b := check(t, safeNoPrune, safeOpts)
	if !a.Safe || !b.Safe {
		t.Fatalf("team-sn reported unsafe (pruned safe=%v, full safe=%v)", a.Safe, b.Safe)
	}
	if b.Stats.Nodes <= a.Stats.Nodes {
		t.Fatalf("expected clock-sensitive fingerprints to explore more nodes (%d vs %d)",
			b.Stats.Nodes, a.Stats.Nodes)
	}

	// Independent oracle: package explore enumerates without pruning;
	// its verdict must agree on both a safe and a broken target.
	for _, c := range []struct {
		target  string
		wantBug bool
	}{{"team-sn", false}, {"unsafe-noyield", true}} {
		ex := mustTarget(t, c.target, 2)
		_, err := explore.Exhaustive(func() (*sim.Memory, []sim.Body, []sim.Value) {
			return ex.Factory()
		}, explore.Options{
			MaxDepth:    10,
			CrashBudget: 1,
			Check:       rc.CheckOutcome,
		})
		exploreBug := errors.Is(err, explore.ErrViolation)
		if err != nil && !exploreBug {
			t.Fatal(err)
		}
		mcRes := check(t, ex, Options{MaxDepth: 10, CrashBudget: 1})
		if exploreBug != !mcRes.Safe {
			t.Fatalf("%s: explore verdict (bug=%v) disagrees with mc (safe=%v)",
				c.target, exploreBug, mcRes.Safe)
		}
		if exploreBug != c.wantBug {
			t.Fatalf("%s: explore oracle itself unexpected (bug=%v, want %v)", c.target, exploreBug, c.wantBug)
		}
	}
}

// TestContextCancellation checks the search honours its context.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Check(ctx, mustTarget(t, "team-sn", 2), Options{MaxDepth: 10})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestTargetByNameErrors covers the registry's error paths.
func TestTargetByNameErrors(t *testing.T) {
	if _, err := TargetByName("no-such-protocol", 2); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := TargetByName("cas", 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := TargetByName("unsafe-yieldalways", 2); err == nil {
		t.Fatal("unsafe-yieldalways with n=2 accepted (needs |B| > 1)")
	}
	for _, name := range Targets() {
		if TargetDoc(name) == "" {
			t.Fatalf("target %q has no doc string", name)
		}
	}
}

// TestCheckValidation covers Check's own argument validation.
func TestCheckValidation(t *testing.T) {
	if _, err := Check(context.Background(), Target{}, Options{}); err == nil {
		t.Fatal("empty target accepted")
	}
}

// TestFromAlgorithmInputMismatch covers the adapter's validation.
func TestFromAlgorithmInputMismatch(t *testing.T) {
	if _, err := FromAlgorithm(rc.NewCASConsensus(2, "x"), []sim.Value{"only-one"}, sim.Independent); err == nil {
		t.Fatal("input arity mismatch accepted")
	}
}
