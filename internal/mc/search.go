package mc

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rcons/internal/intern"
	"rcons/internal/obs"
	"rcons/internal/sim"
)

// violation is an internal violation record before minimization.
type violation struct {
	schedule []sim.Action
	err      error
}

// search carries the shared state of one Check invocation across
// deepening rounds, worker goroutines and the swarm fallback.
type search struct {
	tgt   Target
	opts  Options
	start time.Time

	nodes        atomic.Int64
	pruned       atomic.Int64
	completions  atomic.Int64
	boundaryHits atomic.Int64
	swarmRuns    atomic.Int64
	depthReached atomic.Int64
	rounds       int
	exceeded     atomic.Bool
	// curDepth and frontier exist only for progress reporting: the
	// deepening round in flight and the number of root subtrees not yet
	// finished in it.
	curDepth atomic.Int64
	frontier atomic.Int64
}

// progress samples the search counters for the progress publisher. It
// reads only atomics, so it is safe concurrently with the search and
// perturbs nothing.
func (s *search) progress(trace string) obs.Progress {
	nodes := s.nodes.Load() + s.swarmRuns.Load()
	elapsed := time.Since(s.start)
	var rate float64
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(nodes) / secs
	}
	return obs.Progress{
		Task:        "mc",
		TraceID:     trace,
		Nodes:       nodes,
		NodesPerSec: rate,
		Depth:       int(s.curDepth.Load()),
		Frontier:    s.frontier.Load(),
		Elapsed:     elapsed,
	}
}

func (s *search) snapshotStats() Stats {
	return Stats{
		Nodes:        int(s.nodes.Load()),
		Pruned:       int(s.pruned.Load()),
		Completions:  int(s.completions.Load()),
		BoundaryHits: int(s.boundaryHits.Load()),
		SwarmRuns:    int(s.swarmRuns.Load()),
		Rounds:       s.rounds,
		DepthReached: int(s.depthReached.Load()),
	}
}

// runScript executes one scripted prefix of the target. halt selects
// prefix enumeration (stop at script end) versus full execution (extend
// the prefix with the deterministic crash-free fair completion). The
// default (incremental) fingerprint pipeline records only the O(1)
// rolling digests; the legacy pipeline needs the full event trace.
func (s *search) runScript(script []sim.Action, halt bool) ([]sim.Value, *sim.Memory, *sim.Outcome, error) {
	m, bodies, inputs := s.tgt.Factory()
	cfg := sim.Config{
		Model:              s.tgt.Model,
		Script:             script,
		HaltAtScriptEnd:    halt,
		FairCompletion:     !halt,
		DecideRequiresStep: true,
		MaxSteps:           s.opts.MaxSteps,
	}
	r := sim.NewRunner(m, bodies, cfg)
	if s.opts.LegacyFingerprint {
		r.RecordTrace()
	} else {
		r.RecordDigests()
	}
	r.RecordSchedule()
	out, err := r.Run()
	return inputs, m, out, err
}

// fingerprint hashes the configuration a prefix reached: the non-volatile
// heap, each process's decision or event history since its last crash
// (bodies are deterministic, so that history pins down the process's
// local state exactly), and the crash usage. For clock-sensitive targets
// — bodies observing sim.Proc.Now — every event additionally carries its
// global position in the execution, because such a body's local state
// depends on WHEN (in global steps) it ran, not just on what it observed;
// this makes fingerprints nearly path-unique and costs most of the
// pruning, but keeps it sound.
//
// The default pipeline combines digests that were maintained
// incrementally DURING the run — Memory.Digest for the heap,
// Outcome.EventHashes/ClockHashes for the histories — so the per-node
// cost is O(processes) integer mixing with zero allocation. The legacy
// pipeline (Options.LegacyFingerprint) rebuilds the textual
// Snapshot/trace form and hashes it with SHA-256; it is kept as the
// independent oracle for the parity tests and fuzz target.
func (s *search) fingerprint(out *sim.Outcome, m *sim.Memory, crashesUsed int) Fingerprint {
	if s.opts.LegacyFingerprint {
		return s.legacyFingerprint(out, m, crashesUsed)
	}
	return s.incrementalFingerprint(out, m, crashesUsed)
}

// Per-process state tags keep the three cases (decided, running, running
// under a clock-sensitive body) in disjoint digest families.
const (
	fpDecided uint64 = 0xD1
	fpRunning uint64 = 0xD2
	fpClocked uint64 = 0xD3
)

func (s *search) incrementalFingerprint(out *sim.Outcome, m *sim.Memory, crashesUsed int) Fingerprint {
	h := m.Digest()
	p := uint64(len(out.Decided))
	for i, decided := range out.Decided {
		var w uint64
		switch {
		case decided:
			w = intern.MixPair(fpDecided, uint64(intern.ID(out.Decisions[i])))
		case s.tgt.ClockSensitive:
			w = intern.MixPair(fpClocked, out.ClockHashes[i])
		default:
			w = intern.MixPair(fpRunning, out.EventHashes[i])
		}
		p = intern.MixPair(p, w)
	}
	p = intern.MixPair(p, uint64(crashesUsed))
	return Fingerprint{intern.MixPair(h, p), intern.MixPair(p, h)}
}

func (s *search) legacyFingerprint(out *sim.Outcome, m *sim.Memory, crashesUsed int) Fingerprint {
	var b strings.Builder
	b.WriteString(m.Snapshot())

	n := len(out.Decided)
	sinceCrash := make([][]string, n)
	for pos, e := range out.Trace {
		if e.Proc < 0 || e.Proc >= n {
			continue
		}
		if e.Kind == sim.TraceCrash {
			sinceCrash[e.Proc] = sinceCrash[e.Proc][:0]
			continue
		}
		ev := e.String()
		if s.tgt.ClockSensitive {
			ev = fmt.Sprintf("@%d:%s", pos, ev)
		}
		sinceCrash[e.Proc] = append(sinceCrash[e.Proc], ev)
	}
	for i := 0; i < n; i++ {
		if out.Decided[i] {
			fmt.Fprintf(&b, "p%d=decided:%q\n", i, out.Decisions[i])
			continue
		}
		fmt.Fprintf(&b, "p%d=run:%s\n", i, strings.Join(sinceCrash[i], ";"))
	}
	fmt.Fprintf(&b, "crashes=%d\n", crashesUsed)
	sum := sha256.Sum256([]byte(b.String()))
	return Fingerprint{
		binary.LittleEndian.Uint64(sum[0:8]),
		binary.LittleEndian.Uint64(sum[8:16]),
	}
}

// rootDepth is the prefix length at which the search hands subtrees to
// the worker pool; 2 levels give branching² ≥ workers roots for n ≥ 2
// while keeping the sequential enumeration trivial.
const rootDepth = 2

// round runs one iterative-deepening round at the given depth bound. It
// returns the first violation in canonical order (nil when safe so far)
// and whether the round closed the search (no leaf hit the depth bound).
func (s *search) round(ctx context.Context, depth int) (*violation, bool, error) {
	s.rounds++
	hitsBefore := s.boundaryHits.Load()

	roots, viol, err := s.enumerateRoots(ctx, depth)
	if err != nil || viol != nil {
		return viol, false, err
	}
	if s.exceeded.Load() {
		return nil, false, nil
	}

	roots, err = s.dedupRoots(ctx, roots)
	if err != nil {
		return nil, false, err
	}

	viol, err = s.searchRoots(ctx, roots, depth)
	if err != nil || viol != nil {
		return viol, false, err
	}
	closed := !s.exceeded.Load() && s.boundaryHits.Load() == hitsBefore
	return nil, closed, nil
}

// node holds one root prefix together with its crash usage.
type node struct {
	script  []sim.Action
	crashes int
}

// enumerateRoots explores the first rootDepth levels sequentially (in
// canonical order, so violations found here are deterministic) and
// returns the live frontier prefixes to be partitioned across workers.
func (s *search) enumerateRoots(ctx context.Context, depth int) ([]node, *violation, error) {
	frontier := []node{{}}
	for level := 0; level < min(rootDepth, depth); level++ {
		var next []node
		for _, nd := range frontier {
			ext, viol, err := s.expand(ctx, nd, depth)
			if err != nil || viol != nil {
				return nil, viol, err
			}
			next = append(next, ext...)
		}
		frontier = next
	}
	return frontier, nil, nil
}

// expand executes one prefix, checks it, and returns its enabled
// one-action extensions (empty when all processes decided or the node
// was pruned — roots are never pruned, see dfs).
func (s *search) expand(ctx context.Context, nd node, depth int) ([]node, *violation, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if s.nodes.Add(1) > int64(s.opts.NodeBudget) {
		s.exceeded.Store(true)
		return nil, nil, nil
	}
	s.observeDepth(len(nd.script))

	inputs, m, out, err := s.runScript(nd.script, true)
	if err != nil {
		return nil, &violation{schedule: out.Schedule, err: err}, nil
	}
	if cerr := s.tgt.Check(inputs, m, out); cerr != nil {
		return nil, &violation{schedule: out.Schedule, err: cerr}, nil
	}
	live := liveProcs(out)
	if len(live) == 0 {
		s.completions.Add(1)
		return nil, nil, nil
	}
	return s.extensions(nd, live), nil, nil
}

// extensions lists nd's one-action continuations in canonical order:
// steps of every live process first, then crash placements while budget
// remains. Exploring all step extensions before any crash extension
// biases the first violation found toward fewer crashes — the implicit
// crash-budget deepening companion to the explicit depth deepening.
func (s *search) extensions(nd node, live []int) []node {
	var out []node
	for _, p := range live {
		out = append(out, node{script: appendAction(nd.script, sim.Step(p)), crashes: nd.crashes})
	}
	if nd.crashes < s.opts.CrashBudget {
		if s.tgt.Model == sim.Simultaneous {
			out = append(out, node{script: appendAction(nd.script, sim.CrashAll()), crashes: nd.crashes + 1})
		} else {
			for _, p := range live {
				out = append(out, node{script: appendAction(nd.script, sim.Crash(p)), crashes: nd.crashes + 1})
			}
		}
	}
	return out
}

func appendAction(script []sim.Action, a sim.Action) []sim.Action {
	return append(append(make([]sim.Action, 0, len(script)+1), script...), a)
}

func liveProcs(out *sim.Outcome) []int {
	var live []int
	for i, d := range out.Decided {
		if !d {
			live = append(live, i)
		}
	}
	return live
}

func (s *search) observeDepth(d int) {
	for {
		cur := s.depthReached.Load()
		if int64(d) <= cur || s.depthReached.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// dedupRoots drops root prefixes that reach a configuration an earlier
// root already reached with the same crash usage (and, by construction,
// the same remaining depth — every root has the same script length).
// Such a root's bounded subtree and every leaf completion in it are an
// exact replay of its twin's — the same argument that justifies dfs's
// within-root fingerprint pruning, applied across roots — so dropping
// it changes no verdict. Dropping only LATER duplicates of earlier
// roots, sequentially in canonical root order, also preserves the
// reported counterexample byte-for-byte: the lowest-indexed root whose
// subtree violates is never dropped (its earlier twin would violate
// too), and within it the canonical first-in-order violation is
// unchanged. Dropped roots are counted as pruned; the probe executions
// are root-enumeration bookkeeping, not search nodes.
func (s *search) dedupRoots(ctx context.Context, roots []node) ([]node, error) {
	if len(roots) < 2 {
		return roots, nil
	}
	type rootKey struct {
		fp      Fingerprint
		crashes int
	}
	seen := make(map[rootKey]bool, len(roots))
	out := roots[:0]
	for _, nd := range roots {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, m, o, err := s.runScript(nd.script, true)
		if err != nil {
			// A violating root must survive to be (re)discovered and
			// reported by dfs in canonical order.
			out = append(out, nd)
			continue
		}
		key := rootKey{fp: s.fingerprint(o, m, nd.crashes), crashes: nd.crashes}
		if seen[key] {
			s.pruned.Add(1)
			continue
		}
		seen[key] = true
		out = append(out, nd)
	}
	return out, nil
}

// searchRoots fans the root subtrees out over the worker pool. To keep
// the reported violation independent of worker count and scheduling, the
// pool tracks the lowest root index that produced a violation, stops
// claiming later roots, and cancels later in-flight subtrees; earlier
// subtrees run to completion because they could still yield the
// canonical (first-in-order) violation.
//
// Determinism caveat: the guarantee holds only while the search stays
// within NodeBudget. Near the budget, workers race the shared node
// counter, so WHERE the search is truncated — and hence whether a
// violation is seen before the swarm fallback takes over — is
// scheduling-dependent. Such runs are labelled Exhaustive: false.
func (s *search) searchRoots(ctx context.Context, roots []node, depth int) (*violation, error) {
	if len(roots) == 0 {
		return nil, nil
	}
	// The frontier gauge counts roots not yet finished this round. Every
	// root leaves it exactly once: when its subtree search returns, when
	// a worker claims-and-skips it after a lower root's violation made it
	// obsolete, or in the post-wait sweep for roots no worker claimed
	// (budget-exhausted early exits). No blanket reset hides an
	// accounting miss, so a nonzero final frontier is a real leak.
	s.frontier.Store(int64(len(roots)))
	workers := min(s.opts.Workers, len(roots))
	var (
		mu      sync.Mutex
		next    int
		bestIdx = len(roots)
		viols   = make([]*violation, len(roots))
		active  = map[int]context.CancelFunc{}
	)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				if i >= len(roots) {
					mu.Unlock()
					return
				}
				if i >= bestIdx {
					// Obsolete root: a lower-indexed subtree already
					// produced the canonical violation. Claim it so it
					// leaves the frontier, and keep draining.
					mu.Unlock()
					s.frontier.Add(-1)
					continue
				}
				rctx, cancel := context.WithCancel(ctx)
				active[i] = cancel
				mu.Unlock()

				visited := map[Fingerprint]uint64{}
				v, err := s.dfs(rctx, roots[i], depth, visited)
				s.frontier.Add(-1)

				mu.Lock()
				delete(active, i)
				cancel()
				// A cancellation we triggered ourselves (the subtree
				// became obsolete) is not a failure; real context
				// cancellation surfaces via ctx.Err() after Wait.
				if err == nil && v != nil && i < bestIdx {
					bestIdx = i
					viols[i] = v
					for j, c := range active {
						if j > i {
							c()
						}
					}
				}
				mu.Unlock()
				if s.exceeded.Load() {
					return
				}
			}
		}()
	}
	wg.Wait()
	// Workers exit without draining when the node budget trips (or the
	// context dies); account for the roots nobody claimed.
	if next < len(roots) {
		s.frontier.Add(-int64(len(roots) - next))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if bestIdx < len(roots) {
		return viols[bestIdx], nil
	}
	return nil, nil
}

// dfs exhaustively explores all continuations of nd up to the depth
// bound, pruning prefixes that reach an already-explored configuration
// with EXACTLY the same remaining depth. Exact matching (rather than
// "no more remaining than before") keeps the pruning argument airtight:
// a pruned node has an identical twin — same configuration, same
// remaining depth — whose whole subtree, including every depth-bound
// leaf's fair completion, was already explored, so the pruned subtree's
// execution set is literally a replay. With ≥-matching the twin's leaf
// completions start at different round-robin offsets, and the pruned
// leaf's exact completion might never be simulated.
func (s *search) dfs(ctx context.Context, nd node, depth int, visited map[Fingerprint]uint64) (*violation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.nodes.Add(1) > int64(s.opts.NodeBudget) {
		s.exceeded.Store(true)
		return nil, nil
	}
	s.observeDepth(len(nd.script))

	inputs, m, out, err := s.runScript(nd.script, true)
	if err != nil {
		return &violation{schedule: out.Schedule, err: err}, nil
	}
	if cerr := s.tgt.Check(inputs, m, out); cerr != nil {
		return &violation{schedule: out.Schedule, err: cerr}, nil
	}
	live := liveProcs(out)
	if len(live) == 0 {
		s.completions.Add(1)
		return nil, nil
	}

	remaining := depth - len(nd.script)
	fp := s.fingerprint(out, m, nd.crashes)
	// visited holds a bitmask of remaining depths already explored for
	// each configuration (remaining < 64 always: depths are small).
	bit := uint64(1) << uint(remaining)
	if visited[fp]&bit != 0 {
		s.pruned.Add(1)
		return nil, nil
	}
	visited[fp] |= bit

	if remaining <= 0 {
		s.boundaryHits.Add(1)
		return s.checkCompletion(nd)
	}
	for _, ext := range s.extensions(nd, live) {
		v, err := s.dfs(ctx, ext, depth, visited)
		if err != nil || v != nil {
			return v, err
		}
		if s.exceeded.Load() {
			return nil, nil
		}
	}
	return nil, nil
}

// checkCompletion extends a depth-bound leaf with the deterministic fair
// completion and checks the resulting full execution.
func (s *search) checkCompletion(nd node) (*violation, error) {
	inputs, m, out, err := s.runScript(nd.script, false)
	s.completions.Add(1)
	if err != nil {
		return &violation{schedule: out.Schedule, err: err}, nil
	}
	if cerr := s.tgt.Check(inputs, m, out); cerr != nil {
		return &violation{schedule: out.Schedule, err: cerr}, nil
	}
	return nil, nil
}
