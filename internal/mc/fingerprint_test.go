package mc

import (
	"context"
	"reflect"
	"testing"

	"rcons/internal/sim"
)

// e13Cases mirrors the depth/budget table harness.MCProtocols (E13) runs
// the builtin registry at; the parity tests below re-check every builtin
// target at exactly these bounds under both fingerprint pipelines.
var e13Cases = []struct {
	target string
	n      int
	opts   Options
}{
	{"cas", 2, Options{MaxDepth: 10, CrashBudget: 2}},
	{"team-sn", 2, Options{MaxDepth: 9, CrashBudget: 1}},
	{"team-cas", 2, Options{MaxDepth: 9, CrashBudget: 1}},
	{"tournament", 2, Options{MaxDepth: 8, CrashBudget: 1}},
	{"simultaneous", 2, Options{MaxDepth: 8, CrashBudget: 1}},
	{"universal", 2, Options{MaxDepth: 6, MinDepth: 6, CrashBudget: 1}},
	{"unsafe-noyield", 2, Options{MaxDepth: 12, CrashBudget: 1}},
	{"unsafe-yieldalways", 3, Options{MaxDepth: 10, CrashBudget: 1}},
}

// TestVerdictParityAllTargets is the rewrite's acceptance gate: for
// EVERY builtin target, at the depths harness E13 uses, the incremental
// fingerprint pipeline and the legacy Snapshot+trace pipeline must
// produce bit-identical results — same verdict, same exhaustiveness and
// completeness, same minimized counterexample schedule, same violation
// text, and (since both pipelines prune soundly and deterministically)
// the same node and pruning counts.
func TestVerdictParityAllTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry parity at E13 depths; skip in -short")
	}
	covered := map[string]bool{}
	for _, c := range e13Cases {
		covered[c.target] = true
	}
	for _, name := range Targets() {
		if !covered[name] {
			t.Fatalf("builtin target %q missing from the E13 parity table", name)
		}
	}

	for _, c := range e13Cases {
		t.Run(c.target, func(t *testing.T) {
			tgt := mustTarget(t, c.target, c.n)
			inc := check(t, tgt, c.opts)
			legacyOpts := c.opts
			legacyOpts.LegacyFingerprint = true
			leg := check(t, tgt, legacyOpts)

			if inc.Safe != leg.Safe || inc.Exhaustive != leg.Exhaustive || inc.Complete != leg.Complete {
				t.Fatalf("verdict differs: incremental (safe=%v exh=%v comp=%v) vs legacy (safe=%v exh=%v comp=%v)",
					inc.Safe, inc.Exhaustive, inc.Complete, leg.Safe, leg.Exhaustive, leg.Complete)
			}
			if (inc.CE == nil) != (leg.CE == nil) {
				t.Fatalf("counterexample presence differs: %v vs %v", inc.CE, leg.CE)
			}
			if inc.CE != nil {
				if !reflect.DeepEqual(inc.CE.Schedule, leg.CE.Schedule) {
					t.Fatalf("counterexample differs:\nincremental: %s\nlegacy:      %s",
						sim.FormatScript(inc.CE.Schedule), sim.FormatScript(leg.CE.Schedule))
				}
				if inc.CE.Violation != leg.CE.Violation {
					t.Fatalf("violation text differs: %q vs %q", inc.CE.Violation, leg.CE.Violation)
				}
			}
			if inc.Stats.Nodes != leg.Stats.Nodes || inc.Stats.Pruned != leg.Stats.Pruned {
				t.Fatalf("search shape differs: incremental nodes=%d pruned=%d, legacy nodes=%d pruned=%d",
					inc.Stats.Nodes, inc.Stats.Pruned, leg.Stats.Nodes, leg.Stats.Pruned)
			}
			t.Logf("%s: nodes=%d pruned=%d safe=%v (both pipelines)",
				c.target, inc.Stats.Nodes, inc.Stats.Pruned, inc.Safe)
		})
	}
}

// TestFingerprintProbeParity spot-checks the probe helper itself: on a
// handful of concrete prefixes the two pipelines must agree on
// equality/inequality of fingerprints pairwise, and re-probing the same
// prefix must reproduce the same incremental fingerprint (digest
// determinism across executions).
func TestFingerprintProbeParity(t *testing.T) {
	tgt := mustTarget(t, "team-sn", 2)
	prefixes := [][]sim.Action{
		{},
		{sim.Step(0)},
		{sim.Step(1)},
		{sim.Step(0), sim.Step(1)},
		{sim.Step(0), sim.Crash(0)},
		{sim.Step(0), sim.Crash(0), sim.Step(0)},
		{sim.Step(0), sim.Step(0), sim.Step(1)},
	}
	probes := make([]*FingerprintProbe, len(prefixes))
	for i, p := range prefixes {
		probe, err := NewFingerprintProbe(tgt, p, Options{})
		if err != nil {
			t.Fatalf("prefix %s: %v", sim.FormatScript(p), err)
		}
		probes[i] = probe
	}
	for i := range probes {
		for j := range probes {
			incEq := probes[i].Incremental() == probes[j].Incremental()
			legEq := probes[i].Legacy() == probes[j].Legacy()
			if incEq != legEq {
				t.Errorf("parity broken between %s and %s: incremental equal=%v, legacy equal=%v",
					sim.FormatScript(prefixes[i]), sim.FormatScript(prefixes[j]), incEq, legEq)
			}
		}
	}
	for i, p := range prefixes {
		again, err := NewFingerprintProbe(tgt, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again.Incremental() != probes[i].Incremental() {
			t.Errorf("incremental fingerprint of %s not reproducible across executions",
				sim.FormatScript(p))
		}
	}
}

// TestClockSensitiveFingerprintDistinguishesPositions checks the
// clock-mixed digest path: two prefixes whose per-process observations
// are identical but globally shifted in time must fingerprint equal for
// a clock-blind target and DIFFERENT for a clock-sensitive one, under
// both pipelines.
func TestClockSensitiveFingerprintDistinguishesPositions(t *testing.T) {
	base := mustTarget(t, "cas", 3)
	clocked := base
	clocked.ClockSensitive = true

	// p2's single step happens at global position 0 vs position 2; p0/p1
	// observe the same CAS responses either way (p2 only reads its own
	// input register first).
	a := []sim.Action{sim.Step(2), sim.Step(0), sim.Step(1)}
	b := []sim.Action{sim.Step(0), sim.Step(1), sim.Step(2)}

	fp := func(tgt Target, script []sim.Action) (Fingerprint, Fingerprint) {
		p, err := NewFingerprintProbe(tgt, script, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p.Incremental(), p.Legacy()
	}
	for _, tc := range []struct {
		name string
		tgt  Target
	}{{"clock-blind", base}, {"clock-sensitive", clocked}} {
		incA, legA := fp(tc.tgt, a)
		incB, legB := fp(tc.tgt, b)
		if (incA == incB) != (legA == legB) {
			t.Fatalf("%s: pipelines disagree (incremental equal=%v, legacy equal=%v)",
				tc.name, incA == incB, legA == legB)
		}
		if tc.name == "clock-sensitive" && incA == incB {
			t.Fatal("clock-sensitive fingerprints ignore global positions")
		}
	}
}

// TestLegacyFingerprintOptionStillChecks is a smoke test that the legacy
// pipeline remains fully wired end to end (it is exercised heavily only
// by the non-short parity test).
func TestLegacyFingerprintOptionStillChecks(t *testing.T) {
	res, err := Check(context.Background(), mustTarget(t, "cas", 2),
		Options{MaxDepth: 8, CrashBudget: 1, LegacyFingerprint: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Safe || !res.Exhaustive {
		t.Fatalf("legacy pipeline verdict wrong: %+v", res)
	}
	if res.Stats.Pruned == 0 {
		t.Fatal("legacy pipeline pruned nothing; fingerprints are not being computed")
	}
}
