package obs

import (
	"math"
	"testing"
)

// TestHistogramBuckets checks the bucket assignment rule: an
// observation lands in the first bucket whose upper bound is >= the
// value (Prometheus "le" semantics), with values above every bound in
// the implicit +Inf bucket.
func TestHistogramBuckets(t *testing.T) {
	bounds := []float64{1, 5, 10}
	cases := []struct {
		v    float64
		want int // bucket index; 3 = +Inf
	}{
		{0, 0},
		{0.5, 0},
		{1, 0},    // on the bound: le semantics include it
		{1.001, 1},
		{5, 1},
		{7, 2},
		{10, 2},
		{10.1, 3},
		{1e9, 3},
		{-3, 0}, // below every bound: lowest bucket
	}
	for _, c := range cases {
		h := newHistogram(bounds)
		h.Observe(c.v)
		counts, _, total := h.snapshot()
		if total != 1 {
			t.Fatalf("Observe(%v): total = %d", c.v, total)
		}
		for i, n := range counts {
			want := int64(0)
			if i == c.want {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", c.v, i, n, want)
			}
		}
	}
}

func TestHistogramSumCount(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 3, 0.25} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := h.Sum(); math.Abs(got-5.25) > 1e-12 {
		t.Fatalf("Sum = %v, want 5.25", got)
	}
}

// TestHistogramQuantile pins the linear-interpolation estimate against
// hand-computed values.
func TestHistogramQuantile(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
		q      float64
		want   float64
	}{
		{
			// 10 observations spread uniformly in (0,1]: the median rank 5
			// falls in bucket (0,1] with all 10 → interpolate 0 + 1*(5/10).
			name:   "uniform single bucket",
			bounds: []float64{1, 2},
			obs:    []float64{.1, .2, .3, .4, .5, .6, .7, .8, .9, 1},
			q:      0.5,
			want:   0.5,
		},
		{
			// 4 obs in (0,1], 4 in (1,2]. p75 rank=6 is 2nd of 4 in the
			// second bucket: 1 + (2-1)*(6-4)/4 = 1.5.
			name:   "two buckets p75",
			bounds: []float64{1, 2},
			obs:    []float64{.5, .5, .5, .5, 1.5, 1.5, 1.5, 1.5},
			q:      0.75,
			want:   1.5,
		},
		{
			// Everything in the +Inf bucket: estimate clamps to the highest
			// finite bound.
			name:   "overflow clamps",
			bounds: []float64{1, 2},
			obs:    []float64{5, 6, 7},
			q:      0.5,
			want:   2,
		},
		{
			name:   "q0 lower edge",
			bounds: []float64{1, 2},
			obs:    []float64{.5, 1.5},
			q:      0,
			want:   0,
		},
		{
			name:   "q1 upper edge",
			bounds: []float64{1, 2},
			obs:    []float64{.5, 1.5},
			q:      1,
			want:   2,
		},
		{
			// p99 with 100 obs in (0,1]: 0 + 1*(99/100).
			name:   "p99 interpolation",
			bounds: []float64{1},
			obs:    repeat(0.5, 100),
			q:      0.99,
			want:   0.99,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newHistogram(c.bounds)
			for _, v := range c.obs {
				h.Observe(v)
			}
			if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
				t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
			}
		})
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram([]float64{1})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty Quantile = %v, want NaN", got)
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.5)
	if got := h.Quantile(-1); got != 0 {
		t.Fatalf("Quantile(-1) = %v, want 0", got)
	}
	if got := h.Quantile(2); got != 1 {
		t.Fatalf("Quantile(2) = %v, want 1", got)
	}
}

func TestHistogramDefBucketsIncreasing(t *testing.T) {
	for _, bs := range [][]float64{DefBuckets, SizeBuckets} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("buckets not strictly increasing at %d: %v", i, bs)
			}
		}
	}
}

func TestHistogramBadBucketsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets must panic")
		}
	}()
	r.Histogram("rc_bad", "", []float64{1, 1})
}
