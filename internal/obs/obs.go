// Package obs is the repository's telemetry layer: a dependency-free
// (standard library only) metrics registry, Prometheus text exposition,
// structured-logging and trace-ID propagation helpers, and a progress
// API for long-running searches.
//
// The registry holds three metric kinds — monotone counters, free-moving
// gauges, and fixed-bucket histograms (quantiles derivable client-side
// or via Histogram.Quantile) — each optionally split by a small set of
// labels. Subsystems that already maintain their own atomic counters
// (engine memo cache, store, job manager) re-publish them through
// CounterFunc/GaugeFunc callbacks sampled at collection time, so the
// subsystem's counter stays the single source of truth: /metrics and
// any JSON view built from Registry.Value can never drift apart.
//
// Everything is safe for concurrent use; the hot-path operations
// (Counter.Inc, Gauge.Set, Histogram.Observe) are single atomic
// instructions plus, for labelled metrics resolved via With, one
// read-locked map lookup. Callers on genuinely hot paths should resolve
// With(...) once and retain the handle.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer with the Prometheus TYPE spelling.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Registry is a set of named metric families. The zero value is not
// usable; create with NewRegistry or use the process-wide Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric: a kind, a help string, a label schema and
// the live series (one per distinct label-value tuple).
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series
}

// series is one (family, label values) instance. Exactly one of the
// payload fields is non-nil; fn-backed series are sampled at read time.
type series struct {
	values []string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, used by binaries that have
// no per-server registry of their own (rcons, rcatlas, rcbench).
func Default() *Registry { return defaultRegistry }

// family returns (creating if needed) the named family, enforcing that
// re-registrations agree on kind and label schema — disagreement is a
// programming error, not a runtime condition.
func (r *Registry) family(name, help string, kind Kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labels: append([]string(nil), labels...),
			series: map[string]*series{},
		}
		if kind == KindHistogram {
			f.buckets = append([]float64(nil), buckets...)
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
			name, kind, labels, f.kind, f.labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with labels %v, was %v",
				name, labels, f.labels))
		}
	}
	return f
}

// seriesKey joins label values into the map key. The separator cannot
// appear in a label value unescaped and still collide: 0x00 is invalid
// in the values this repository uses (metric labels are paths, methods,
// task names), and even a collision would only merge two series.
func seriesKey(values []string) string { return strings.Join(values, "\x00") }

// lookup returns (creating via make if needed) the series for values.
func (f *family) lookup(values []string, make func() *series) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = make()
	s.values = append([]string(nil), values...)
	f.series[key] = s
	return s
}

// ---- counters ----

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a counter family; With resolves one labelled series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first
// use). With no registered labels, call With() for the single series.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.lookup(values, func() *series { return &series{ctr: &Counter{}} }).ctr
}

// Counter registers (idempotently) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, nil, labels)}
}

// CounterFunc registers a callback-backed counter series: fn is sampled
// at every collection, so a subsystem's own atomic counter remains the
// single source of truth. labelPairs alternate key, value and define
// both the family's label schema and this series' position in it; every
// CounterFunc of one name must use the same keys.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.fnSeries(name, help, KindCounter, fn, labelPairs)
}

// ---- gauges ----

// Gauge is a metric that can go up and down. It stores a float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a gauge family; With resolves one labelled series.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.lookup(values, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// Gauge registers (idempotently) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, nil, labels)}
}

// GaugeFunc registers a callback-backed gauge series (see CounterFunc).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.fnSeries(name, help, KindGauge, fn, labelPairs)
}

// fnSeries installs one callback-backed series under (name, labelPairs).
func (r *Registry) fnSeries(name, help string, kind Kind, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: label pairs must alternate key, value", name))
	}
	keys := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		keys = append(keys, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.family(name, help, kind, nil, keys)
	s := f.lookup(values, func() *series { return &series{} })
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// ---- histograms ----

// HistogramVec is a histogram family; With resolves one labelled series.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.lookup(values, func() *series {
		return &series{hist: newHistogram(f.buckets)}
	}).hist
}

// Histogram registers (idempotently) a histogram family with the given
// bucket upper bounds (nil means DefBuckets). Bounds must be strictly
// increasing; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing: %v", name, buckets))
		}
	}
	return &HistogramVec{f: r.family(name, help, KindHistogram, buckets, labels)}
}

// ---- reading the registry back ----

// Value returns the current value of one series ("" NaN-free: 0 when
// the family or series does not exist — absent metrics read as zero,
// which is what JSON health views want). For histograms it returns the
// observation count.
func (r *Registry) Value(name string, labelValues ...string) float64 {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	f.mu.RLock()
	s, ok := f.series[seriesKey(labelValues)]
	f.mu.RUnlock()
	if !ok {
		return 0
	}
	return s.value()
}

// value reads a series' current value (histograms: observation count).
func (s *series) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.ctr != nil:
		return float64(s.ctr.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	case s.hist != nil:
		return float64(s.hist.Count())
	}
	return 0
}

// Snapshot flattens every series into a map keyed by the rendered
// series name (name{k="v",...}; histograms contribute _count and _sum).
// It is the machine-readable sibling of WritePrometheus, used by
// rcbench to embed telemetry in BENCH artifacts and by tests.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	for _, f := range r.sortedFamilies() {
		f.mu.RLock()
		for _, s := range f.series {
			id := renderSeriesName(f.name, f.labels, s.values)
			if s.hist != nil {
				out[renderSeriesName(f.name+"_count", f.labels, s.values)] = float64(s.hist.Count())
				out[renderSeriesName(f.name+"_sum", f.labels, s.values)] = s.hist.Sum()
				continue
			}
			out[id] = s.value()
		}
		f.mu.RUnlock()
	}
	return out
}

// sortedFamilies returns the families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
