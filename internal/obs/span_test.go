package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestStartTraceBuildsSpanTree(t *testing.T) {
	rec := NewRecorder(8)
	tr := NewTracer(1, rec)
	var stages []string
	tr.SetStageObserver(func(name string, seconds float64) {
		if seconds < 0 {
			t.Errorf("negative stage duration for %s", name)
		}
		stages = append(stages, name)
	})

	ctx, root := tr.StartTrace(context.Background(), "/v1/classify", "abc123", false)
	if root == nil {
		t.Fatal("sampled StartTrace returned nil root")
	}
	if got := TraceID(ctx); got != "abc123" {
		t.Fatalf("ctx trace ID = %q, want abc123", got)
	}
	if got := root.TraceID(); got != "abc123" {
		t.Fatalf("root.TraceID() = %q", got)
	}

	cctx, child := StartSpan(ctx, "engine.classify")
	child.SetAttr("memo", "miss")
	_, grand := StartSpan(cctx, "store.local")
	grand.SetAttr("tier", "disk")
	grand.End()
	child.End()
	root.End()
	root.End() // idempotent

	if rec.Total() != 1 {
		t.Fatalf("recorder total = %d, want 1", rec.Total())
	}
	got := rec.Lookup("abc123")
	if got == nil {
		t.Fatal("Lookup(abc123) = nil")
	}
	if got.Name != "/v1/classify" || len(got.Spans) != 3 || got.Err || got.Dropped != 0 {
		t.Fatalf("unexpected record: %+v", got)
	}
	// The flat span list must encode root → child → grandchild.
	byName := map[string]SpanData{}
	for _, sp := range got.Spans {
		byName[sp.Name] = sp
	}
	if byName["/v1/classify"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["/v1/classify"].Parent)
	}
	if byName["engine.classify"].Parent != byName["/v1/classify"].ID {
		t.Errorf("child not parented to root")
	}
	if byName["store.local"].Parent != byName["engine.classify"].ID {
		t.Errorf("grandchild not parented to child")
	}
	if len(byName["store.local"].Attrs) != 1 || byName["store.local"].Attrs[0].Value != "disk" {
		t.Errorf("grandchild attrs = %+v", byName["store.local"].Attrs)
	}
	if len(stages) != 3 {
		t.Errorf("stage observer fired %d times, want 3: %v", len(stages), stages)
	}
}

func TestUnsampledIsNilAndSafe(t *testing.T) {
	// No trace in ctx at all.
	ctx, sp := StartSpan(context.Background(), "anything")
	if sp != nil {
		t.Fatal("StartSpan without a trace must return nil")
	}
	sp.SetAttr("k", "v")
	sp.MarkError()
	sp.End()
	if sp.TraceID() != "" {
		t.Fatal("nil span TraceID must be empty")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("SpanFrom on a bare context must be nil")
	}

	// Disabled tracer.
	var nilTracer *Tracer
	if _, sp := nilTracer.StartTrace(ctx, "x", "", true); sp != nil {
		t.Fatal("nil tracer must not sample")
	}
	off := NewTracer(0, NewRecorder(4))
	if _, sp := off.StartTrace(ctx, "x", "", false); sp != nil {
		t.Fatal("sampleEvery=0 must disable tracing")
	}
	if off.Recorder() == nil || nilTracer.Recorder() != nil {
		t.Fatal("Recorder accessor wrong")
	}
}

func TestSamplingOneInN(t *testing.T) {
	rec := NewRecorder(64)
	tr := NewTracer(4, rec)
	sampled := 0
	for i := 0; i < 40; i++ {
		_, sp := tr.StartTrace(context.Background(), "r", "", false)
		if sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 10 {
		t.Fatalf("1-in-4 sampling over 40 requests sampled %d, want 10", sampled)
	}
	// force bypasses sampling.
	_, sp := tr.StartTrace(context.Background(), "r", "forced1", true)
	if sp == nil {
		t.Fatal("force=true must always sample")
	}
	sp.End()
	if rec.Lookup("forced1") == nil {
		t.Fatal("forced trace not recorded")
	}
}

func TestRecorderRingSlowestErrored(t *testing.T) {
	rec := NewRecorder(4)
	tr := NewTracer(1, rec)
	mk := func(id string, d time.Duration, fail bool) {
		_, sp := tr.StartTrace(context.Background(), "r", id, false)
		if fail {
			sp.MarkError()
		}
		// Fix the duration by backdating the start (monotonic-safe for
		// the test: durations just need distinct positive values).
		sp.start = sp.start.Add(-d)
		sp.End()
	}
	mk("t1", 10*time.Millisecond, false)
	mk("t2", 50*time.Millisecond, true)
	mk("t3", 20*time.Millisecond, false)
	mk("t4", 5*time.Millisecond, false)
	mk("t5", 30*time.Millisecond, false)
	mk("t6", 1*time.Millisecond, false)

	recent := rec.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	if recent[0].TraceID != "t6" || recent[3].TraceID != "t3" {
		ids := []string{}
		for _, r := range recent {
			ids = append(ids, r.TraceID)
		}
		t.Fatalf("ring order = %v, want [t6 t5 t4 t3]", ids)
	}
	// t1/t2 left the ring, but t2 survives as errored and in slowest.
	if rec.Lookup("t2") == nil {
		t.Fatal("errored trace t2 must survive ring recycling")
	}
	slow := rec.Slowest()
	if slow[0].TraceID != "t2" || slow[1].TraceID != "t5" {
		t.Fatalf("slowest order wrong: %s, %s", slow[0].TraceID, slow[1].TraceID)
	}
	errs := rec.Errored()
	if len(errs) != 1 || errs[0].TraceID != "t2" || !errs[0].Err {
		t.Fatalf("errored = %+v", errs)
	}
	if rec.Total() != 6 {
		t.Fatalf("total = %d", rec.Total())
	}
	if rec.Lookup("nope") != nil {
		t.Fatal("Lookup of unknown ID must be nil")
	}
}

func TestSpanCapCountsDropped(t *testing.T) {
	rec := NewRecorder(2)
	tr := NewTracer(1, rec)
	ctx, root := tr.StartTrace(context.Background(), "big", "big1", false)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := StartSpan(ctx, "leaf")
		sp.End()
	}
	root.End()
	got := rec.Lookup("big1")
	if got == nil {
		t.Fatal("trace not recorded")
	}
	if len(got.Spans) != maxSpansPerTrace {
		t.Fatalf("retained %d spans, want %d", len(got.Spans), maxSpansPerTrace)
	}
	if got.Dropped != 11 {
		t.Fatalf("dropped = %d, want 11 (10 over cap + root re-adding itself is not a thing)", got.Dropped)
	}
}

func TestAttrBounds(t *testing.T) {
	tr := NewTracer(1, NewRecorder(2))
	_, root := tr.StartTrace(context.Background(), "r", "a1", false)
	long := strings.Repeat("x", maxAttrValueLen+50)
	for i := 0; i < maxAttrsPerSpan+5; i++ {
		root.SetAttr("k", long)
	}
	root.mu.Lock()
	n, v := len(root.attrs), root.attrs[0].Value
	root.mu.Unlock()
	if n != maxAttrsPerSpan {
		t.Fatalf("attrs = %d, want cap %d", n, maxAttrsPerSpan)
	}
	if len(v) > maxAttrValueLen+len("…") || !strings.HasSuffix(v, "…") {
		t.Fatalf("attr value not truncated: len=%d", len(v))
	}
	root.End()
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"a", "abc-DEF_123", strings.Repeat("f", 64), "j0042"} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", strings.Repeat("f", 65), "has space", "inj\nnewline", `quo"te`, "semi;colon", "Ω"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}

func TestWriteTraceTree(t *testing.T) {
	rec := NewRecorder(2)
	tr := NewTracer(1, rec)
	ctx, root := tr.StartTrace(context.Background(), "/v1/classify", "w1", false)
	_, sp := StartSpan(ctx, "store.peer")
	sp.SetAttr("peer", "http://a:1")
	sp.MarkError()
	sp.End()
	root.End()

	var b strings.Builder
	WriteTraceTree(&b, rec.Lookup("w1"))
	out := b.String()
	for _, want := range []string{"trace w1 /v1/classify", "  store.peer", "peer=http://a:1", "ERR"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}
