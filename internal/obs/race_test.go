package obs

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentUpdatesWhileRendering hammers counters, gauges and
// histograms — including creation of new labelled series — while other
// goroutines render the exposition and take snapshots. Run under
// -race this is the package's main concurrency safety net.
func TestConcurrentUpdatesWhileRendering(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("rc_race_total", "", "worker")
	g := r.Gauge("rc_race_gauge", "")
	h := r.Histogram("rc_race_seconds", "", []float64{0.01, 0.1, 1}, "worker")

	const (
		writers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			label := string(rune('a' + id))
			c := ctr.With(label)
			hist := h.With(label)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.With().Add(1)
				hist.Observe(float64(i%100) / 100)
				if i%100 == 0 {
					// Exercise series creation racing with rendering.
					ctr.With(label + "-extra").Inc()
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("render: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
			_ = r.Value("rc_race_total", "a")
			_ = h.With("a").Quantile(0.99)
		}
	}()
	wg.Wait()

	var total int64
	for w := 0; w < writers; w++ {
		total += ctr.With(string(rune('a' + w))).Value()
	}
	wantMin := int64(writers * iters)
	if total < wantMin {
		t.Fatalf("counters lost updates: total = %d, want >= %d", total, wantMin)
	}
	if got := g.With().Value(); got != float64(writers*iters) {
		t.Fatalf("gauge = %v, want %v", got, writers*iters)
	}
}

// TestConcurrentValueDuringScrape hammers Registry.Value — hits,
// misses, labelled histogram counts and func-backed series — while
// other goroutines render the exposition and new series are still
// being created. Run under -race this guards the read path the
// /healthz handlers use mid-scrape.
func TestConcurrentValueDuringScrape(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("rc_vrace_total", "", "worker")
	h := r.Histogram("rc_vrace_seconds", "", []float64{0.01, 0.1}, "worker")
	r.CounterFunc("rc_vrace_func_total", "", func() float64 { return 42 })

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			label := string(rune('a' + i%8))
			ctr.With(label).Inc()
			h.With(label).Observe(float64(i%100) / 1000)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("render: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			_ = r.Value("rc_vrace_total", string(rune('a'+i%8)))
			_ = r.Value("rc_vrace_seconds", "a") // histogram: observation count
			_ = r.Value("rc_vrace_func_total")
			_ = r.Value("rc_vrace_total", "never-written") // miss, same lock path
			_ = r.Value("rc_no_such_family")
		}
	}()
	wg.Wait()

	if v := r.Value("rc_vrace_func_total"); v != 42 {
		t.Fatalf("func-backed Value = %v, want 42", v)
	}
	var total float64
	for w := 0; w < 8; w++ {
		total += r.Value("rc_vrace_total", string(rune('a'+w)))
	}
	if total != 2000 {
		t.Fatalf("counter total via Value = %v, want 2000", total)
	}
}
