package obs

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentUpdatesWhileRendering hammers counters, gauges and
// histograms — including creation of new labelled series — while other
// goroutines render the exposition and take snapshots. Run under
// -race this is the package's main concurrency safety net.
func TestConcurrentUpdatesWhileRendering(t *testing.T) {
	r := NewRegistry()
	ctr := r.Counter("rc_race_total", "", "worker")
	g := r.Gauge("rc_race_gauge", "")
	h := r.Histogram("rc_race_seconds", "", []float64{0.01, 0.1, 1}, "worker")

	const (
		writers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			label := string(rune('a' + id))
			c := ctr.With(label)
			hist := h.With(label)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.With().Add(1)
				hist.Observe(float64(i%100) / 100)
				if i%100 == 0 {
					// Exercise series creation racing with rendering.
					ctr.With(label + "-extra").Inc()
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("render: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
			_ = r.Value("rc_race_total", "a")
			_ = h.With("a").Quantile(0.99)
		}
	}()
	wg.Wait()

	var total int64
	for w := 0; w < writers; w++ {
		total += ctr.With(string(rune('a' + w))).Value()
	}
	wantMin := int64(writers * iters)
	if total < wantMin {
		t.Fatalf("counters lost updates: total = %d, want >= %d", total, wantMin)
	}
	if got := g.With().Value(); got != float64(writers*iters) {
		t.Fatalf("gauge = %v, want %v", got, writers*iters)
	}
}
