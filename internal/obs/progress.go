package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress is one sample of a long-running search's state. Producers
// fill the fields that make sense for them (mc fills depth and
// frontier, census fills rows, the engine fills memo/persist counters);
// zero-valued fields mean "not applicable" and sinks skip them.
type Progress struct {
	// Task names the producer: "mc", "census", "engine".
	Task string
	// TraceID correlates the sample with the request or job that
	// started the search ("" for bare CLI runs).
	TraceID string
	// Nodes is the cumulative work unit count (schedule prefixes for
	// mc, classified types for census, classifications for engine).
	Nodes int64
	// NodesPerSec is the rate over the whole run so far.
	NodesPerSec float64
	// Depth is the current search depth (mc iterative deepening).
	Depth int
	// Frontier is the number of in-flight roots/branches (mc).
	Frontier int64
	// MemoHits/MemoMisses are engine memo-cache counters.
	MemoHits, MemoMisses int64
	// PersistHits/PersistMisses are engine persistent-store counters.
	PersistHits, PersistMisses int64
	// RowsDone/RowsTotal are census row progress (RowsTotal 0 when the
	// total is unknown).
	RowsDone, RowsTotal int64
	// Elapsed is time since the run started.
	Elapsed time.Duration
	// Final marks the flush emitted when the run finishes.
	Final bool
}

// Sink receives progress samples. Publish must be safe for concurrent
// use and must not block for long — it is called from a ticker
// goroutine inside the producing search.
type Sink interface {
	Publish(Progress)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Progress)

// Publish implements Sink.
func (f SinkFunc) Publish(p Progress) { f(p) }

// MultiSink fans one sample out to several sinks.
func MultiSink(sinks ...Sink) Sink {
	return SinkFunc(func(p Progress) {
		for _, s := range sinks {
			if s != nil {
				s.Publish(p)
			}
		}
	})
}

// NewLineSink returns a sink printing one human-readable line per
// sample to w (intended for stderr behind the CLI -progress flags).
// Lines are serialized under a mutex so concurrent producers interleave
// cleanly.
func NewLineSink(w io.Writer) Sink {
	var mu sync.Mutex
	return SinkFunc(func(p Progress) {
		var b strings.Builder
		fmt.Fprintf(&b, "progress task=%s", p.Task)
		if p.TraceID != "" {
			fmt.Fprintf(&b, " trace=%s", p.TraceID)
		}
		fmt.Fprintf(&b, " nodes=%d", p.Nodes)
		if p.NodesPerSec > 0 {
			fmt.Fprintf(&b, " nodes/s=%.0f", p.NodesPerSec)
		}
		if p.Depth > 0 {
			fmt.Fprintf(&b, " depth=%d", p.Depth)
		}
		if p.Frontier > 0 {
			fmt.Fprintf(&b, " frontier=%d", p.Frontier)
		}
		if hits, misses := p.MemoHits, p.MemoMisses; hits+misses > 0 {
			fmt.Fprintf(&b, " memo=%.1f%%", 100*float64(hits)/float64(hits+misses))
		}
		if hits, misses := p.PersistHits, p.PersistMisses; hits+misses > 0 {
			fmt.Fprintf(&b, " persist=%.1f%%", 100*float64(hits)/float64(hits+misses))
		}
		if p.RowsTotal > 0 {
			fmt.Fprintf(&b, " rows=%d/%d", p.RowsDone, p.RowsTotal)
		} else if p.RowsDone > 0 {
			fmt.Fprintf(&b, " rows=%d", p.RowsDone)
		}
		fmt.Fprintf(&b, " elapsed=%s", p.Elapsed.Round(time.Millisecond))
		if p.Final {
			b.WriteString(" final=true")
		}
		b.WriteByte('\n')
		mu.Lock()
		defer mu.Unlock()
		io.WriteString(w, b.String())
	})
}

// RegistrySink mirrors samples into rc_progress_* gauges labelled by
// task, so /metrics shows live search state without the producer
// knowing about the registry.
func RegistrySink(r *Registry) Sink {
	nodes := r.Gauge("rc_progress_nodes", "Work units completed by the in-flight search.", "task")
	rate := r.Gauge("rc_progress_nodes_per_sec", "Work rate of the in-flight search.", "task")
	depth := r.Gauge("rc_progress_depth", "Current depth of the in-flight search.", "task")
	frontier := r.Gauge("rc_progress_frontier", "In-flight branches of the current search.", "task")
	rows := r.Gauge("rc_progress_rows_done", "Census rows completed by the in-flight run.", "task")
	return SinkFunc(func(p Progress) {
		task := p.Task
		if task == "" {
			task = "unknown"
		}
		nodes.With(task).Set(float64(p.Nodes))
		rate.With(task).Set(p.NodesPerSec)
		depth.With(task).Set(float64(p.Depth))
		frontier.With(task).Set(float64(p.Frontier))
		rows.With(task).Set(float64(p.RowsDone))
	})
}

// PublishEvery starts a goroutine sampling snap every interval and
// publishing to sink. The returned stop function publishes one final
// sample (Final=true), then waits for the goroutine to exit — callers
// defer it, so a finished run always flushes and never leaks the
// goroutine. A nil sink returns a no-op stop without starting anything,
// making instrumentation free when nobody is listening.
func PublishEvery(interval time.Duration, sink Sink, snap func() Progress) (stop func()) {
	if sink == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sink.Publish(snap())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			p := snap()
			p.Final = true
			sink.Publish(p)
		})
	}
}
