package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type for WritePrometheus output,
// per the Prometheus text exposition format version 0.0.4.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the registry in Prometheus
// text exposition format: families in name order, series within a
// family in label-value order, histograms expanded into cumulative
// _bucket series plus _sum and _count. Output is deterministic for a
// fixed registry state, which the golden test relies on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the registry as /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		_ = r.WritePrometheus(w)
	})
}

// write renders one family: HELP, TYPE, then each series.
func (f *family) write(w io.Writer) error {
	f.mu.RLock()
	all := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		all = append(all, s)
	}
	f.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		return seriesKey(all[i].values) < seriesKey(all[j].values)
	})

	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, s := range all {
		if err := f.writeSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeSeries(w io.Writer, s *series) error {
	if s.hist != nil {
		return f.writeHistogram(w, s)
	}
	_, err := fmt.Fprintf(w, "%s %s\n",
		renderSeriesName(f.name, f.labels, s.values), formatValue(s.value()))
	return err
}

// writeHistogram renders the cumulative bucket series, sum and count.
func (f *family) writeHistogram(w io.Writer, s *series) error {
	counts, sum, total := s.hist.snapshot()
	cum := int64(0)
	for i, bound := range s.hist.bounds {
		cum += counts[i]
		name := renderSeriesName(f.name+"_bucket", append(f.labels, "le"),
			append(s.values, formatValue(bound)))
		if _, err := fmt.Fprintf(w, "%s %d\n", name, cum); err != nil {
			return err
		}
	}
	cum += counts[len(s.hist.bounds)]
	inf := renderSeriesName(f.name+"_bucket", append(f.labels, "le"),
		append(s.values, "+Inf"))
	if _, err := fmt.Fprintf(w, "%s %d\n", inf, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n",
		renderSeriesName(f.name+"_sum", f.labels, s.values), formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n",
		renderSeriesName(f.name+"_count", f.labels, s.values), total)
	return err
}

// renderSeriesName renders name{k1="v1",k2="v2"} (bare name when there
// are no labels), escaping label values per the exposition format.
func renderSeriesName(name string, keys, values []string) string {
	if len(keys) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote and newline, the
// three characters the exposition format requires escaping in values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatValue renders a float the way Prometheus clients expect:
// integers without a decimal point, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
