package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets is the default latency bucket layout, in seconds: tuned so
// sub-millisecond cache hits, multi-second census jobs and everything
// between land in distinct buckets. p50/p99/p999 are derivable from the
// cumulative counts (see Quantile).
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is a coarse power-of-roughly-4 layout for byte and count
// distributions (request bodies, result sizes, nodes per search).
var SizeBuckets = []float64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
}

// Histogram is a fixed-bucket histogram. Observations land in the first
// bucket whose upper bound is ≥ the value; values above every bound go
// to the implicit +Inf bucket. All updates are lock-free atomics, so
// Observe is safe on hot paths; snapshots taken during concurrent
// observation are internally consistent enough for monitoring (counts
// and sum may be momentarily offset by in-flight observations, never
// corrupted).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	total  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s finds the first bound >= v via "!(bound < v)".
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot reads per-bucket counts, sum and total in one pass.
func (h *Histogram) snapshot() (counts []int64, sum float64, total int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.Sum(), h.total.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank, the same estimate
// Prometheus's histogram_quantile computes. The lowest bucket
// interpolates from 0; a rank landing in the +Inf bucket returns the
// highest finite bound (the estimate is then a lower bound). Returns
// NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, total := h.snapshot()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			if len(h.bounds) == 0 {
				return math.NaN()
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		prev := float64(cum - c)
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}
