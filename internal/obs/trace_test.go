package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Fatalf("empty ctx trace = %q, want \"\"", got)
	}
	ctx = WithTrace(ctx, "abc123")
	if got := TraceID(ctx); got != "abc123" {
		t.Fatalf("trace = %q, want abc123", got)
	}
}

func TestEnsureTrace(t *testing.T) {
	ctx, id := EnsureTrace(context.Background())
	if id == "" || TraceID(ctx) != id {
		t.Fatalf("EnsureTrace minted %q, ctx carries %q", id, TraceID(ctx))
	}
	ctx2, id2 := EnsureTrace(ctx)
	if ctx2 != ctx || id2 != id {
		t.Fatal("EnsureTrace must be a no-op when a trace exists")
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestLoggerFromDefaultsToNop(t *testing.T) {
	l := LoggerFrom(context.Background())
	if l == nil {
		t.Fatal("LoggerFrom returned nil")
	}
	// Must not panic; output is discarded.
	l.Info("dropped")
}

func TestContextWithLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "text", "info")
	ctx := ContextWithLogger(context.Background(), l)
	LoggerFrom(ctx).Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "hello") || !strings.Contains(buf.String(), "k=v") {
		t.Fatalf("log output missing fields: %q", buf.String())
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, "json", "info").Info("m", "a", 1)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json format did not produce JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "m" {
		t.Fatalf("json record = %v", rec)
	}

	buf.Reset()
	NewLogger(&buf, "text", "warn").Info("suppressed")
	if buf.Len() != 0 {
		t.Fatalf("info at warn level should be suppressed: %q", buf.String())
	}
	NewLogger(&buf, "text", "warn").Warn("kept")
	if !strings.Contains(buf.String(), "kept") {
		t.Fatalf("warn at warn level should appear: %q", buf.String())
	}

	buf.Reset()
	NewLogger(&buf, "bogus", "bogus").Info("fallback")
	if !strings.Contains(buf.String(), "fallback") {
		t.Fatalf("unknown format/level must fall back to text/info: %q", buf.String())
	}
}
