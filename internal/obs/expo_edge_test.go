package obs

import (
	"math"
	"strings"
	"testing"
)

// TestEscapeLabelValueEdgeCases pins the exposition escaping on inputs
// made entirely of escapable characters, where an off-by-one in the
// rewriting loop would corrupt the output silently.
func TestEscapeLabelValueEdgeCases(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", ""},
		{`\`, `\\`},
		{`\\`, `\\\\`},
		{"\"\n\\", `\"\n\\`},
		{"\n\n", `\n\n`},
		{`a\nb`, `a\\nb`}, // literal backslash-n is NOT a newline
		{"already clean", "already clean"},
	} {
		if got := escapeLabelValue(tc.in); got != tc.want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestHistogramExpositionEscapedLabels renders a labelled histogram
// whose label value needs escaping: every derived series (_bucket with
// its le label, _sum, _count) must carry the escaped value, and the
// output must stay line-parseable (no raw newlines inside a series).
func TestHistogramExpositionEscapedLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rc_edge_seconds", "edge\nhelp", []float64{1}, "who")
	h.With("a\"b\\c\nd").Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP rc_edge_seconds edge\nhelp`) {
		t.Errorf("HELP newline not escaped:\n%s", out)
	}
	esc := `who="a\"b\\c\nd"`
	for _, series := range []string{
		`rc_edge_seconds_bucket{` + esc + `,le="1"} 1`,
		`rc_edge_seconds_bucket{` + esc + `,le="+Inf"} 1`,
		`rc_edge_seconds_count{` + esc + `} 1`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %q:\n%s", series, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, "1") && !strings.Contains(line, "_sum") {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

// TestHistogramQuantileSingleBucket covers the smallest layout: one
// finite bound, so every rank is either interpolated from 0 or clamped
// at the bound by the +Inf rule.
func TestHistogramQuantileSingleBucket(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.5)
	h.Observe(0.5)
	// Both observations in [0,1]: the median interpolates inside it.
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("Quantile(0.5) = %v, want within (0,1]", q)
	}
	// An overflow observation pushes the top quantile into +Inf, which
	// must clamp to the highest finite bound, never extrapolate.
	h.Observe(5)
	if q := h.Quantile(1); q != 1 {
		t.Errorf("Quantile(1) with +Inf mass = %v, want clamp to 1", q)
	}
}

// TestHistogramQuantileAllOverflow puts every observation above the
// highest bound: all quantiles degrade to the highest finite bound (a
// documented lower-bound estimate), and never NaN or +Inf.
func TestHistogramQuantileAllOverflow(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1})
	for i := 0; i < 10; i++ {
		h.Observe(99)
	}
	// (q=0 is excluded: rank 0 resolves in the first — empty — bucket
	// and reports its bound, a separate documented lower-bound case.)
	for _, q := range []float64{0.5, 0.99, 1} {
		got := h.Quantile(q)
		if math.IsNaN(got) || math.IsInf(got, 0) || got != 0.1 {
			t.Errorf("Quantile(%v) = %v, want 0.1 (highest finite bound)", q, got)
		}
	}
}

// TestHistogramQuantileEmptyVsZeroQ separates "no data" from "q=0 on
// data": the former is NaN, the latter a real number.
func TestHistogramQuantileEmptyVsZeroQ(t *testing.T) {
	h := newHistogram([]float64{1})
	if q := h.Quantile(0.99); !math.IsNaN(q) {
		t.Errorf("empty Quantile = %v, want NaN", q)
	}
	h.Observe(0.5)
	if q := h.Quantile(0); math.IsNaN(q) {
		t.Error("Quantile(0) on data must not be NaN")
	}
}
