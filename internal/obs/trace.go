package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
	"strings"
)

// ctxKey is the private key type for context values stored by this
// package (trace IDs and loggers).
type ctxKey int

const (
	traceKey ctxKey = iota
	loggerKey
	spanKey
)

// NewTraceID mints a 16-hex-character random trace ID. Job handlers use
// the deterministic job ID instead; this is for HTTP requests and CLI
// invocations, where IDs only need to be unique, not reproducible.
func NewTraceID() string {
	var b [8]byte
	if _, err := io.ReadFull(rand.Reader, b[:]); err != nil {
		// crypto/rand failing means the platform is broken; a fixed ID
		// still lets the request proceed and correlates its log lines.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithTrace returns ctx carrying the given trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey, id)
}

// TraceID returns the trace ID carried by ctx, or "" if none.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey).(string)
	return id
}

// EnsureTrace returns ctx unchanged if it already carries a trace ID,
// otherwise a child context carrying a freshly minted one. The second
// return is the effective ID either way.
func EnsureTrace(ctx context.Context) (context.Context, string) {
	if id := TraceID(ctx); id != "" {
		return ctx, id
	}
	id := NewTraceID()
	return WithTrace(ctx, id), id
}

// ContextWithLogger returns ctx carrying l for retrieval by LoggerFrom.
func ContextWithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the logger carried by ctx. When none is present it
// returns a discard logger, so deep call sites can log unconditionally
// without nil checks and without forcing every caller to wire one.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return nopLogger
}

var nopLogger = slog.New(slog.DiscardHandler)

// NopLogger returns a logger that discards everything, for tests and
// for subsystems whose caller passed no logger.
func NopLogger() *slog.Logger { return nopLogger }

// NewLogger builds a slog.Logger writing to w in the given format
// ("json" or "text"; anything else falls back to text) at the given
// minimum level ("debug", "info", "warn", "error"; default info).
func NewLogger(w io.Writer, format, level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	if strings.ToLower(format) == "json" {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
