package obs

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPublishEveryFlushesAndStops(t *testing.T) {
	var mu sync.Mutex
	var samples []Progress
	sink := SinkFunc(func(p Progress) {
		mu.Lock()
		samples = append(samples, p)
		mu.Unlock()
	})
	var nodes atomic.Int64
	stop := PublishEvery(time.Millisecond, sink, func() Progress {
		return Progress{Task: "test", Nodes: nodes.Load()}
	})
	nodes.Store(42)
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent

	mu.Lock()
	defer mu.Unlock()
	if len(samples) == 0 {
		t.Fatal("no samples published")
	}
	last := samples[len(samples)-1]
	if !last.Final {
		t.Fatalf("last sample not Final: %+v", last)
	}
	if last.Nodes != 42 {
		t.Fatalf("final sample Nodes = %d, want 42", last.Nodes)
	}
	for _, p := range samples[:len(samples)-1] {
		if p.Final {
			t.Fatal("non-last sample marked Final")
		}
	}
}

func TestPublishEveryNilSink(t *testing.T) {
	before := runtime.NumGoroutine()
	stop := PublishEvery(time.Millisecond, nil, func() Progress { return Progress{} })
	stop()
	// Generous settle window: no goroutine should have been started.
	time.Sleep(5 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("nil sink leaked goroutines: %d -> %d", before, after)
	}
}

func TestPublishEveryNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		stop := PublishEvery(time.Millisecond, SinkFunc(func(Progress) {}),
			func() Progress { return Progress{} })
		stop()
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("publisher goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
}

func TestLineSink(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	sink := NewLineSink(syncWriter{&mu, &buf})
	sink.Publish(Progress{
		Task: "mc", TraceID: "t1", Nodes: 100, NodesPerSec: 50,
		Depth: 7, Frontier: 3, MemoHits: 3, MemoMisses: 1,
		RowsDone: 5, RowsTotal: 10, Elapsed: 2 * time.Second, Final: true,
	})
	line := buf.String()
	for _, want := range []string{
		"task=mc", "trace=t1", "nodes=100", "nodes/s=50", "depth=7",
		"frontier=3", "memo=75.0%", "rows=5/10", "elapsed=2s", "final=true",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q: %s", want, line)
		}
	}
	if !strings.HasSuffix(line, "\n") {
		t.Errorf("line not newline-terminated: %q", line)
	}

	// Zero-valued optional fields stay off the line.
	buf.Reset()
	sink.Publish(Progress{Task: "engine", Nodes: 1})
	line = buf.String()
	for _, absent := range []string{"depth=", "frontier=", "rows=", "trace=", "memo="} {
		if strings.Contains(line, absent) {
			t.Errorf("line has zero-valued field %q: %s", absent, line)
		}
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestRegistrySink(t *testing.T) {
	r := NewRegistry()
	sink := RegistrySink(r)
	sink.Publish(Progress{Task: "mc", Nodes: 500, NodesPerSec: 100, Depth: 6, Frontier: 2})
	if got := r.Value("rc_progress_nodes", "mc"); got != 500 {
		t.Fatalf("rc_progress_nodes = %v, want 500", got)
	}
	if got := r.Value("rc_progress_depth", "mc"); got != 6 {
		t.Fatalf("rc_progress_depth = %v, want 6", got)
	}
	sink.Publish(Progress{Task: "mc", Nodes: 900})
	if got := r.Value("rc_progress_nodes", "mc"); got != 900 {
		t.Fatalf("rc_progress_nodes after update = %v, want 900", got)
	}
}

func TestMultiSink(t *testing.T) {
	var a, b int
	MultiSink(SinkFunc(func(Progress) { a++ }), nil, SinkFunc(func(Progress) { b++ })).
		Publish(Progress{})
	if a != 1 || b != 1 {
		t.Fatalf("fan-out a=%d b=%d, want 1/1", a, b)
	}
}
