package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the full exposition output: family
// ordering, series ordering within a family, HELP/TYPE lines, label
// escaping and histogram expansion. Any format drift fails here first.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	req := r.Counter("rc_http_requests_total", "HTTP requests served.", "method", "path", "code")
	req.With("GET", "/healthz", "200").Add(2)
	req.With("POST", "/v1/classify", "422").Inc()
	r.Gauge("rc_http_in_flight", "Requests currently being served.").With().Set(1)
	h := r.Histogram("rc_http_request_duration_seconds", "Request latency.", []float64{0.01, 0.1, 1}, "path")
	h.With("/healthz").Observe(0.005)
	h.With("/healthz").Observe(0.005)
	h.With("/healthz").Observe(0.5)
	r.Counter("rc_escape_total", `help with \ backslash`, "v").
		With("quote\"back\\slash\nnewline").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rc_escape_total help with \\ backslash
# TYPE rc_escape_total counter
rc_escape_total{v="quote\"back\\slash\nnewline"} 1
# HELP rc_http_in_flight Requests currently being served.
# TYPE rc_http_in_flight gauge
rc_http_in_flight 1
# HELP rc_http_request_duration_seconds Request latency.
# TYPE rc_http_request_duration_seconds histogram
rc_http_request_duration_seconds_bucket{path="/healthz",le="0.01"} 2
rc_http_request_duration_seconds_bucket{path="/healthz",le="0.1"} 2
rc_http_request_duration_seconds_bucket{path="/healthz",le="1"} 3
rc_http_request_duration_seconds_bucket{path="/healthz",le="+Inf"} 3
rc_http_request_duration_seconds_sum{path="/healthz"} 0.51
rc_http_request_duration_seconds_count{path="/healthz"} 3
# HELP rc_http_requests_total HTTP requests served.
# TYPE rc_http_requests_total counter
rc_http_requests_total{method="GET",path="/healthz",code="200"} 2
rc_http_requests_total{method="POST",path="/v1/classify",code="422"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusDeterministic renders twice and requires byte equality.
func TestPrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("rc_z_total", "", "a", "b")
	for _, pair := range [][2]string{{"1", "x"}, {"0", "y"}, {"2", "w"}} {
		v.With(pair[0], pair[1]).Inc()
	}
	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("rendering not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	// Series must come out in label-value order.
	out := b1.String()
	i0 := strings.Index(out, `a="0"`)
	i1 := strings.Index(out, `a="1"`)
	i2 := strings.Index(out, `a="2"`)
	if !(i0 < i1 && i1 < i2) {
		t.Errorf("series not sorted by label values:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("rc_x_total", "").With().Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ExpositionContentType {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "rc_x_total 1") {
		t.Fatalf("body missing series:\n%s", rec.Body.String())
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
	}
	for _, c := range cases {
		if got := escapeLabelValue(c.in); got != c.want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
