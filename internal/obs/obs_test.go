package obs

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rc_test_total", "help", "op").With("get")
	c.Inc()
	c.Add(4)
	c.Add(-10) // monotone: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.Value("rc_test_total", "get"); got != 5 {
		t.Fatalf("registry value = %v, want 5", got)
	}
	// Absent series and absent family both read as zero.
	if got := r.Value("rc_test_total", "put"); got != 0 {
		t.Fatalf("absent series = %v, want 0", got)
	}
	if got := r.Value("rc_missing_total"); got != 0 {
		t.Fatalf("absent family = %v, want 0", got)
	}
}

func TestCounterVecSeparatesSeries(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("rc_ops_total", "", "op")
	v.With("a").Add(2)
	v.With("b").Add(3)
	if got := v.With("a").Value(); got != 2 {
		t.Fatalf("series a = %d, want 2", got)
	}
	if got := v.With("b").Value(); got != 3 {
		t.Fatalf("series b = %d, want 3", got)
	}
	// Same labels resolve to the same underlying counter.
	if v.With("a") != v.With("a") {
		t.Fatal("With not idempotent")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("rc_inflight", "").With()
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	var hits atomic.Int64
	r.CounterFunc("rc_cache_hits_total", "", func() float64 {
		return float64(hits.Load())
	}, "tier", "mem")
	hits.Store(7)
	if got := r.Value("rc_cache_hits_total", "mem"); got != 7 {
		t.Fatalf("func counter = %v, want 7", got)
	}
	hits.Store(9)
	if got := r.Value("rc_cache_hits_total", "mem"); got != 9 {
		t.Fatalf("func counter after update = %v, want 9 (must sample live)", got)
	}

	r.GaugeFunc("rc_goroutines", "", func() float64 { return 12 })
	if got := r.Value("rc_goroutines"); got != 12 {
		t.Fatalf("func gauge = %v, want 12", got)
	}
}

func TestReRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("rc_x_total", "", "k").With("v")
	b := r.Counter("rc_x_total", "", "k").With("v")
	if a != b {
		t.Fatal("re-registration must return the same series")
	}
}

func TestReRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("rc_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict must panic")
		}
	}()
	r.Gauge("rc_x_total", "")
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("rc_a_total", "", "op").With("get").Add(3)
	r.Gauge("rc_b", "").With().Set(1.5)
	h := r.Histogram("rc_lat_seconds", "", []float64{1, 2}).With()
	h.Observe(0.5)
	h.Observe(3)

	snap := r.Snapshot()
	want := map[string]float64{
		`rc_a_total{op="get"}`: 3,
		`rc_b`:                 1.5,
		`rc_lat_seconds_count`: 2,
		`rc_lat_seconds_sum`:   3.5,
	}
	for k, v := range want {
		if got := snap[k]; got != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, got, v)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindCounter.String() != "counter" || KindGauge.String() != "gauge" ||
		KindHistogram.String() != "histogram" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{-3, "-3"},
		{2.5, "2.5"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{0.001, "0.001"},
	}
	for _, c := range cases {
		if got := formatValue(c.in); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}
