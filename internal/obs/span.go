package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span-based tracing. A Tracer decides (1-in-N sampling) whether a
// request becomes a Trace; a sampled trace carries a tree of Spans —
// one per stage the request passes through (handler, coalescing,
// engine, store tier, peer hop, ...) — and, when its root span ends,
// lands in the Recorder's flight ring for /debug/requests.
//
// The design goal is near-zero cost off the sampled path: StartSpan on
// a context without a sampled trace returns a nil *Span, and every
// Span method is a nil-safe no-op, so instrumentation points never
// branch on "is tracing on?". Durations are monotonic (time.Since on
// the span's start), so wall-clock steps can't produce negative spans.

// TraceHeader is the HTTP header that carries a trace ID across
// process boundaries: store.Peer and rcload stamp outbound requests
// with it, and the serve instrument middleware honors it inbound so a
// classify on replica B answered by replica A's store is one trace.
const TraceHeader = "X-RC-Trace"

// ValidTraceID reports whether id is safe to adopt from the wire:
// 1-64 characters of [0-9a-zA-Z_-]. Anything else (empty, oversized,
// control characters, log-injection attempts) is rejected and the
// receiver mints its own ID instead.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Bounds on a single trace, so a pathological request (a census
// touching 50k store keys) can't balloon the recorder: past the span
// cap new spans are counted as dropped, past the attr caps extra
// attrs are ignored and long values truncated.
const (
	maxSpansPerTrace = 512
	maxAttrsPerSpan  = 16
	maxAttrValueLen  = 256
)

// Attr is one key=value annotation on a span (the peer URL, the store
// tier that hit, the memo outcome). Attrs are bounded — they identify
// the span's circumstances, they are not a log stream.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is one completed span, as retained by the Recorder. IDs are
// per-trace (root = 1, Parent = 0 means "root of the trace"), assigned
// in start order.
type SpanData struct {
	ID       uint32        `json:"id"`
	Parent   uint32        `json:"parent"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Err      bool          `json:"err,omitempty"`
}

// TraceRecord is one completed trace: the flat list of its spans (tree
// shape recoverable via Parent IDs) plus root-level summary fields.
type TraceRecord struct {
	TraceID  string
	Name     string // root span name, e.g. the route pattern
	Start    time.Time
	Duration time.Duration
	Err      bool
	Dropped  int // spans discarded past maxSpansPerTrace
	Spans    []SpanData
}

// trace is one sampled request's live span collection. Spans from
// concurrent goroutines (engine workers, chain tiers) append under mu.
type trace struct {
	id     string
	tracer *Tracer

	mu      sync.Mutex
	spans   []SpanData
	started int
	dropped int
	done    bool
	next    uint32
}

// Span is a live, unfinished span. The zero of usefulness: all methods
// are safe (and free) on a nil receiver, which is what StartSpan hands
// out when the request is not sampled.
type Span struct {
	tr     *trace
	id     uint32
	parent uint32
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	err   bool
	ended bool
}

// start allocates a child span, or nil when the trace is finished or
// at its span cap.
func (t *trace) start(name string, parent uint32) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done || t.started >= maxSpansPerTrace {
		t.dropped++
		return nil
	}
	t.started++
	t.next++
	return &Span{tr: t, id: t.next, parent: parent, name: name, start: time.Now()}
}

// SetAttr annotates the span. Values are truncated and the attr count
// capped; on a nil or already-ended span it is a no-op.
func (sp *Span) SetAttr(key, value string) {
	if sp == nil {
		return
	}
	if len(value) > maxAttrValueLen {
		value = value[:maxAttrValueLen] + "…"
	}
	sp.mu.Lock()
	if !sp.ended && len(sp.attrs) < maxAttrsPerSpan {
		sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	}
	sp.mu.Unlock()
}

// MarkError flags the span (and therefore its trace) as failed, which
// reserves the trace a slot in the recorder's errored list.
func (sp *Span) MarkError() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.err = true
	sp.mu.Unlock()
}

// End completes the span: its monotonic duration is fixed, it is
// appended to the trace, and its (name, seconds) pair feeds the
// tracer's stage observer (rc_stage_duration_seconds). Ending the root
// span finishes the whole trace into the recorder. Nil-safe;
// idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	d := time.Since(sp.start)
	data := SpanData{
		ID: sp.id, Parent: sp.parent, Name: sp.name,
		Start: sp.start, Duration: d, Attrs: sp.attrs, Err: sp.err,
	}
	sp.mu.Unlock()

	t := sp.tr
	if obsv := t.tracer.stage; obsv != nil {
		obsv(sp.name, d.Seconds())
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.spans = append(t.spans, data)
	if sp.parent != 0 {
		t.mu.Unlock()
		return
	}
	// Root span ended: seal the trace and hand it to the recorder.
	// Stragglers (a goroutine outliving the request) count as dropped.
	t.done = true
	rec := TraceRecord{
		TraceID: t.id, Name: sp.name, Start: data.Start,
		Duration: d, Dropped: t.dropped, Spans: t.spans,
	}
	for i := range t.spans {
		if t.spans[i].Err {
			rec.Err = true
			break
		}
	}
	t.mu.Unlock()
	if r := t.tracer.rec; r != nil {
		r.add(&rec)
	}
}

// TraceID returns the ID of the trace the span belongs to ("" on nil).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.tr.id
}

// Tracer owns the sampling decision and the recorder. A nil *Tracer is
// valid and traces nothing, so subsystems take one unconditionally.
type Tracer struct {
	every int64 // sample 1 in every; 0 disables, 1 samples all
	n     atomic.Int64
	rec   *Recorder
	stage func(name string, seconds float64)
}

// NewTracer builds a tracer sampling 1 in sampleEvery traces
// (0 disables tracing entirely, 1 traces everything) that completes
// traces into rec (may be nil to trace for the stage observer alone).
func NewTracer(sampleEvery int, rec *Recorder) *Tracer {
	if sampleEvery < 0 {
		sampleEvery = 0
	}
	return &Tracer{every: int64(sampleEvery), rec: rec}
}

// SetStageObserver installs the per-span-completion callback (the
// rc_stage_duration_seconds feed). Not safe to call once spans are in
// flight — wire it during setup.
func (t *Tracer) SetStageObserver(f func(name string, seconds float64)) {
	if t != nil {
		t.stage = f
	}
}

// Recorder returns the tracer's recorder (nil when none).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// StartTrace begins a new trace rooted at a span called name, subject
// to sampling unless force is set (propagated traces and jobs are
// force-sampled so the fleet view is complete). id "" mints a fresh
// trace ID. The returned context carries both the span (for StartSpan)
// and the trace ID (for WithTrace/TraceID log correlation); the caller
// must End the returned root span. (ctx, nil) when not sampled.
func (t *Tracer) StartTrace(ctx context.Context, name, id string, force bool) (context.Context, *Span) {
	if t == nil || t.every <= 0 {
		return ctx, nil
	}
	if !force && t.every > 1 && t.n.Add(1)%t.every != 0 {
		return ctx, nil
	}
	if id == "" {
		id = NewTraceID()
	}
	tr := &trace{id: id, tracer: t}
	sp := tr.start(name, 0)
	ctx = WithTrace(ctx, id)
	return context.WithValue(ctx, spanKey, sp), sp
}

// StartSpan begins a child of the span carried by ctx. When ctx has no
// sampled trace (the overwhelmingly common case at default sampling on
// a busy server) it returns (ctx, nil) after one context lookup — the
// near-zero unsampled cost the instrumentation points rely on.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.start(name, parent.id)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// SpanFrom returns the live span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// Recorder is the flight recorder: a fixed-size ring of the last N
// completed traces, plus reserved slots for the slowest traces seen
// and for errored ones — so the interesting traces survive even when
// the ring has long since recycled them.
type Recorder struct {
	mu       sync.Mutex
	ringCap  int
	ring     []*TraceRecord // newest at ringNext-1, circular
	ringNext int
	slowest  []*TraceRecord // up to slowCap, sorted slowest-first
	errored  []*TraceRecord // up to errCap, newest-first
	total    int64
}

const (
	recorderSlowCap = 16
	recorderErrCap  = 64
)

// NewRecorder builds a recorder retaining the last capacity completed
// traces (plus the slowest/errored reservations); capacity ≤ 0 means
// the default of 128.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 128
	}
	return &Recorder{ringCap: capacity}
}

func (r *Recorder) add(tr *TraceRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.ring) < r.ringCap {
		r.ring = append(r.ring, tr)
		r.ringNext = len(r.ring) % r.ringCap
	} else {
		r.ring[r.ringNext] = tr
		r.ringNext = (r.ringNext + 1) % r.ringCap
	}
	// Slowest reservation: insert in order, trim to cap.
	i := sort.Search(len(r.slowest), func(i int) bool {
		return r.slowest[i].Duration < tr.Duration
	})
	if i < recorderSlowCap {
		r.slowest = append(r.slowest, nil)
		copy(r.slowest[i+1:], r.slowest[i:])
		r.slowest[i] = tr
		if len(r.slowest) > recorderSlowCap {
			r.slowest = r.slowest[:recorderSlowCap]
		}
	}
	if tr.Err {
		r.errored = append([]*TraceRecord{tr}, r.errored...)
		if len(r.errored) > recorderErrCap {
			r.errored = r.errored[:recorderErrCap]
		}
	}
}

// Total returns how many traces have completed into the recorder over
// its lifetime (including ones since recycled).
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Capacity returns the ring capacity.
func (r *Recorder) Capacity() int { return r.ringCap }

// Recent returns the retained ring traces, newest first. Records are
// immutable once added; callers must not modify them.
func (r *Recorder) Recent() []*TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceRecord, 0, len(r.ring))
	for i := 0; i < len(r.ring); i++ {
		j := (r.ringNext - 1 - i + 2*len(r.ring)) % len(r.ring)
		out = append(out, r.ring[j])
	}
	return out
}

// Slowest returns the reserved slowest traces, slowest first.
func (r *Recorder) Slowest() []*TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*TraceRecord(nil), r.slowest...)
}

// Errored returns the reserved errored traces, newest first.
func (r *Recorder) Errored() []*TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*TraceRecord(nil), r.errored...)
}

// Lookup returns the retained trace with the given ID (searching the
// ring, then the slowest and errored reservations), or nil.
func (r *Recorder) Lookup(id string) *TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(r.ring); i++ {
		j := (r.ringNext - 1 - i + 2*len(r.ring)) % len(r.ring)
		if r.ring[j].TraceID == id {
			return r.ring[j]
		}
	}
	for _, tr := range r.slowest {
		if tr.TraceID == id {
			return tr
		}
	}
	for _, tr := range r.errored {
		if tr.TraceID == id {
			return tr
		}
	}
	return nil
}

// WriteTraceTree renders tr as an indented text tree (rcons -trace and
// debugging output):
//
//	trace 4f1d... /v1/classify 12.4ms
//	  engine.classify 12.1ms memo=miss type=S_3
//	    engine.search 5.0ms n=3
func WriteTraceTree(w io.Writer, tr *TraceRecord) {
	fmt.Fprintf(w, "trace %s %s %.1fms", tr.TraceID, tr.Name, float64(tr.Duration)/float64(time.Millisecond))
	if tr.Err {
		fmt.Fprint(w, " ERR")
	}
	if tr.Dropped > 0 {
		fmt.Fprintf(w, " (%d spans dropped)", tr.Dropped)
	}
	fmt.Fprintln(w)
	children := map[uint32][]SpanData{}
	var root *SpanData
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.Parent == 0 {
			root = sp
			continue
		}
		children[sp.Parent] = append(children[sp.Parent], *sp)
	}
	var walk func(parent uint32, depth int)
	walk = func(parent uint32, depth int) {
		kids := children[parent]
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
		for _, sp := range kids {
			fmt.Fprintf(w, "%s%s %.1fms", strings.Repeat("  ", depth), sp.Name, float64(sp.Duration)/float64(time.Millisecond))
			for _, a := range sp.Attrs {
				fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
			}
			if sp.Err {
				fmt.Fprint(w, " ERR")
			}
			fmt.Fprintln(w)
			walk(sp.ID, depth+1)
		}
	}
	if root != nil {
		walk(root.ID, 1)
	}
}
