package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestIDStableAndRoundTrips(t *testing.T) {
	a := ID("intern-test-a")
	b := ID("intern-test-b")
	if a == b {
		t.Fatalf("distinct strings share id %d", a)
	}
	if got := ID("intern-test-a"); got != a {
		t.Fatalf("re-intern changed id: %d then %d", a, got)
	}
	if got := String(a); got != "intern-test-a" {
		t.Fatalf("String(%d) = %q", a, got)
	}
	if Size() < 2 {
		t.Fatalf("Size() = %d after two interns", Size())
	}
}

func TestIDDetachesFromCallerBuffer(t *testing.T) {
	buf := []byte("intern-test-buffer")
	id := ID(string(buf[:13])) // "intern-test-b" + "uffer" sliced off
	copy(buf, "XXXXXXXXXXXXXXXXXX")
	if got := String(id); got != "intern-test-b" {
		t.Fatalf("interned string mutated through caller buffer: %q", got)
	}
}

func TestConcurrentInternAgree(t *testing.T) {
	const goroutines, words = 8, 64
	ids := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	for g := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[g] = make([]uint32, words)
			for w := 0; w < words; w++ {
				ids[g][w] = ID(fmt.Sprintf("intern-test-race-%d", w))
			}
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for w := 0; w < words; w++ {
			if ids[g][w] != ids[0][w] {
				t.Fatalf("goroutines disagree on id for word %d: %d vs %d", w, ids[0][w], ids[g][w])
			}
		}
	}
}

func TestMixPairOrderSensitive(t *testing.T) {
	if MixPair(1, 2) == MixPair(2, 1) {
		t.Fatal("MixPair is commutative; rolling digests would not see order")
	}
	if Mix64(0) == Mix64(1) {
		t.Fatal("Mix64 collides on 0 and 1")
	}
}
