// Package intern maintains a process-wide table mapping strings to
// small, dense integer ids. The simulator's values, cell names,
// operations and responses are all strings drawn from tiny per-system
// alphabets but compared and hashed millions of times during model
// checking; interning turns every such string into a uint32 once, after
// which digests and comparisons are integer operations with no
// allocation.
//
// Ids are assigned in first-intern order and are stable for the life of
// the process, so any two digests computed in the same process are
// comparable. They are NOT stable across processes — callers must never
// persist interned ids or digests derived from them (the model checker's
// golden artifacts therefore store schedules and violation text, not
// fingerprints).
//
// The table is append-only and read-mostly: after the first execution of
// a system, every lookup hits the read path. A sync.RWMutex keeps the
// fast path a shared lock acquisition plus one map read.
package intern

import "sync"

var tab = struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}{ids: make(map[string]uint32, 256)}

// ID returns the id for s, assigning the next free id on first sight.
func ID(s string) uint32 {
	tab.mu.RLock()
	id, ok := tab.ids[s]
	tab.mu.RUnlock()
	if ok {
		return id
	}
	tab.mu.Lock()
	defer tab.mu.Unlock()
	if id, ok := tab.ids[s]; ok {
		return id
	}
	id = uint32(len(tab.strs))
	// strings.Clone semantics: s may be a slice of a larger buffer
	// (e.g. a fuzz input); copying detaches the table from it.
	owned := string(append([]byte(nil), s...))
	tab.ids[owned] = id
	tab.strs = append(tab.strs, owned)
	return id
}

// String returns the string interned under id; it panics on ids never
// returned by ID (a programming error, like an out-of-range slice index).
func String(id uint32) string {
	tab.mu.RLock()
	defer tab.mu.RUnlock()
	return tab.strs[id]
}

// Size returns the number of distinct strings interned so far.
func Size() int {
	tab.mu.RLock()
	defer tab.mu.RUnlock()
	return len(tab.strs)
}

// Mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixing function. Digest maintenance throughout sim and mc builds on it
// so that structurally different configurations scatter across the full
// 64-bit space even though the inputs (interned ids, counters) are tiny
// integers.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MixPair combines two 64-bit words non-commutatively — MixPair(a, b)
// and MixPair(b, a) differ — for order-sensitive rolling digests.
func MixPair(a, b uint64) uint64 {
	return Mix64(a*0x9e3779b97f4a7c15 + b)
}
