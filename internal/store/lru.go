package store

import "container/list"

// lruFront is the store's bounded in-memory payload cache: a plain
// doubly-linked-list LRU keyed by "kind\x00key". It is not safe for
// concurrent use on its own — the Store's mutex guards it.
type lruFront struct {
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type frontEntry struct {
	key     string
	payload []byte
}

func newLRUFront(max int) *lruFront {
	if max < 1 {
		max = 1
	}
	return &lruFront{max: max, entries: map[string]*list.Element{}, order: list.New()}
}

// get returns the cached payload and marks it most recently used. The
// returned slice is the cache's own copy; callers must not mutate it.
func (l *lruFront) get(key string) ([]byte, bool) {
	el, ok := l.entries[key]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*frontEntry).payload, true
}

// put inserts or refreshes key and returns how many entries were
// evicted to respect the bound (0 or 1).
func (l *lruFront) put(key string, payload []byte) (evicted int64) {
	if el, ok := l.entries[key]; ok {
		el.Value.(*frontEntry).payload = append([]byte(nil), payload...)
		l.order.MoveToFront(el)
		return 0
	}
	for len(l.entries) >= l.max {
		back := l.order.Back()
		if back == nil {
			break
		}
		l.order.Remove(back)
		delete(l.entries, back.Value.(*frontEntry).key)
		evicted++
	}
	l.entries[key] = l.order.PushFront(&frontEntry{key: key, payload: append([]byte(nil), payload...)})
	return evicted
}

// len reports the current entry count.
func (l *lruFront) len() int { return len(l.entries) }
