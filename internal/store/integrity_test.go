package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestIdentityMismatchQuarantinesEntry is the regression test for the
// Get identity-mismatch path: an entry file moved by hand to another
// key's address parses and checksums fine but carries the wrong
// identity. The old code reported a miss and left the file in place —
// every future Get re-read and re-missed it forever. It must be
// quarantined like any other corruption, with Entries decremented.
func TestIdentityMismatchQuarantinesEntry(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CacheEntries: -1})
	if err := s.Put(context.Background(), "search", "honest", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	src, _ := s.entryPath("search", "honest")
	dst, _ := s.entryPath("search", "imposter")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	// Hand-move the entry to the wrong address.
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}

	if _, ok, err := s.Get(context.Background(), "search", "imposter"); ok || err != nil {
		t.Fatalf("misplaced entry served: ok=%v err=%v", ok, err)
	}
	st := s.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if st.Entries != 0 {
		t.Fatalf("Entries = %d, want 0 after the only entry was quarantined", st.Entries)
	}
	if _, err := os.Lstat(dst); !os.IsNotExist(err) {
		t.Fatal("misplaced entry still at the wrong address")
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineSub))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine holds %d files (err %v), want 1", len(q), err)
	}
	// The second Get must be a plain miss, not a second quarantine.
	if _, ok, _ := s.Get(context.Background(), "search", "imposter"); ok {
		t.Fatal("second Get served the quarantined entry")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Misses != 2 {
		t.Fatalf("after second Get: %+v", st)
	}
}

// TestGetRawQuarantinesMisplacedEntry: the peer-serving read applies
// the same identity check, so a replica never ships a misplaced entry.
func TestGetRawQuarantinesMisplacedEntry(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CacheEntries: -1})
	if err := s.Put(context.Background(), "search", "honest", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	src, _ := s.entryPath("search", "honest")
	wrong := addr("search", "imposter")
	dst := filepath.Join(dir, layoutDir, "search", wrong[:2], wrong+".json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetRaw("search", wrong); ok || err != nil {
		t.Fatalf("misplaced entry served raw: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestQuarantineNameCollision is the regression test for the
// fixed-destination quarantine: two successive corruptions of one entry
// produce two quarantine files with the same base name. The old code's
// second rename silently overwrote the first corpse; now a unique
// suffix keeps both.
func TestQuarantineNameCollision(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{CacheEntries: -1})
	for i, rot := range []string{"first rot", "second rot"} {
		if err := s.Put(context.Background(), "search", "k", []byte(`{"n":1}`)); err != nil {
			t.Fatal(err)
		}
		path, _ := s.entryPath("search", "k")
		if err := os.WriteFile(path, []byte(rot), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := s.Get(context.Background(), "search", "k"); ok {
			t.Fatalf("corruption %d served", i)
		}
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineSub))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 {
		t.Fatalf("quarantine holds %d files, want both corpses", len(q))
	}
	// Both bodies survived — nothing was overwritten.
	bodies := map[string]bool{}
	base := filepath.Base(mustPath(t, s, "search", "k"))
	for _, d := range q {
		if !strings.HasPrefix(d.Name(), base) {
			t.Fatalf("unexpected quarantine name %q (want prefix %q)", d.Name(), base)
		}
		b, err := os.ReadFile(filepath.Join(dir, quarantineSub, d.Name()))
		if err != nil {
			t.Fatal(err)
		}
		bodies[string(b)] = true
	}
	if !bodies["first rot"] || !bodies["second rot"] {
		t.Fatalf("a corpse was overwritten; surviving bodies: %v", bodies)
	}
	if st := s.Stats(); st.Quarantined != 2 {
		t.Fatalf("Quarantined = %d, want 2", st.Quarantined)
	}
}

func mustPath(t *testing.T, s *Store, kind, key string) string {
	t.Helper()
	p, err := s.entryPath(kind, key)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
