package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// entrySize returns the on-disk envelope size for a payload written
// under (kind, key) — the unit the budget is accounted in.
func entrySize(t *testing.T, kind, key string, payload []byte) int64 {
	t.Helper()
	data, _, err := encodeEnvelope(kind, key, payload)
	if err != nil {
		t.Fatal(err)
	}
	return int64(len(data))
}

// diskFiles returns every entry file under dir/v1.
func diskFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	root := filepath.Join(dir, layoutDir)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBudgetEvictsLRUOnPut(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"v":"0123456789abcdef"}`)
	one := entrySize(t, "search", "k0", payload)
	// Room for three entries, not four.
	s := mustOpen(t, dir, Options{BudgetBytes: 3*one + one/2})
	for i := 0; i < 3; i++ {
		if err := s.Put(context.Background(), "search", fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.DiskEvictions != 0 || st.Entries != 3 || st.Bytes != 3*one {
		t.Fatalf("under budget yet evicted: %+v", st)
	}
	// Touch k0 so k1 is the LRU victim of the next Put.
	if _, ok, _ := s.Get(context.Background(), "search", "k0"); !ok {
		t.Fatal("k0 lost")
	}
	if err := s.Put(context.Background(), "search", "k3", payload); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DiskEvictions != 1 || st.Entries != 3 || st.Bytes != 3*one {
		t.Fatalf("stats after over-budget put: %+v", st)
	}
	// k1 was evicted from disk; k0, k2, k3 survive. The memory front may
	// still answer for k1, so check the disk directly.
	p1, _ := s.entryPath("search", "k1")
	if _, err := os.Lstat(p1); !os.IsNotExist(err) {
		t.Fatal("LRU victim k1 still on disk")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		p, _ := s.entryPath("search", k)
		if _, err := os.Lstat(p); err != nil {
			t.Fatalf("%s missing after eviction: %v", k, err)
		}
	}
	// A fresh handle (no warm front) confirms the evicted entry is gone.
	s2 := mustOpen(t, dir, Options{CacheEntries: -1})
	if _, ok, _ := s2.Get(context.Background(), "search", "k1"); ok {
		t.Fatal("evicted entry served from disk")
	}
}

// TestBudgetNeverEvictsJustWritten: an entry bigger than the whole
// budget is kept (evicting it would make every Put a write-then-delete).
func TestBudgetNeverEvictsJustWritten(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"v":"a long payload that will not fit the tiny budget at all"}`)
	s := mustOpen(t, dir, Options{BudgetBytes: 10})
	if err := s.Put(context.Background(), "search", "big", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(context.Background(), "search", "big"); !ok {
		t.Fatal("oversized entry evicted by its own put")
	}
	if st := s.Stats(); st.Entries != 1 || st.DiskEvictions != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestOpenEnforcesBudget: reopening an unbudgeted directory with a
// budget evicts deterministically, oldest mtime first.
func TestOpenEnforcesBudget(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"v":"0123456789abcdef"}`)
	one := entrySize(t, "search", "k0", payload)
	s := mustOpen(t, dir, Options{})
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := s.Put(context.Background(), "search", key, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes make the recovery order unambiguous: k0 oldest.
		path, _ := s.entryPath("search", key)
		if err := os.Chtimes(path, base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}

	s2 := mustOpen(t, dir, Options{CacheEntries: -1, BudgetBytes: 3 * one})
	st := s2.Stats()
	if st.Entries != 3 || st.Bytes != 3*one || st.DiskEvictions != 3 {
		t.Fatalf("stats after budgeted reopen: %+v", st)
	}
	for i := 0; i < 3; i++ {
		if _, ok, _ := s2.Get(context.Background(), "search", fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("k%d (oldest) survived the budgeted reopen", i)
		}
	}
	for i := 3; i < 6; i++ {
		if _, ok, _ := s2.Get(context.Background(), "search", fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d (newest) lost in the budgeted reopen", i)
		}
	}
}

func TestOpenRejectsNegativeBudget(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{BudgetBytes: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestCompactDropsQuarantineAndReconciles covers the two non-eviction
// compaction duties: quarantine debris is deleted, and the Entries
// drift between two Stores sharing one directory (each Put only counts
// what its own handle saw) is healed by the recount — afterwards both
// handles' Entries equal the files on disk.
func TestCompactDropsQuarantineAndReconciles(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, Options{CacheEntries: -1})
	b := mustOpen(t, dir, Options{CacheEntries: -1})
	for i := 0; i < 3; i++ {
		if err := a.Put(context.Background(), "job", fmt.Sprintf("a%d", i), []byte(`{"w":"a"}`)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := b.Put(context.Background(), "job", fmt.Sprintf("b%d", i), []byte(`{"w":"b"}`)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one of A's entries and Get it so it lands in quarantine.
	path, _ := a.entryPath("job", "a0")
	if err := os.WriteFile(path, []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Get(context.Background(), "job", "a0"); ok {
		t.Fatal("rotten entry served")
	}
	if q, _ := os.ReadDir(filepath.Join(dir, quarantineSub)); len(q) != 1 {
		t.Fatalf("quarantine holds %d files, want 1", len(q))
	}

	// Drifted views: A saw its own 3 puts minus the quarantined one,
	// B saw only its own 2; disk holds 4 valid entries.
	if st := a.Stats(); st.Entries != 2 {
		t.Fatalf("a.Entries = %d, want 2 pre-compaction", st.Entries)
	}
	if st := b.Stats(); st.Entries != 2 {
		t.Fatalf("b.Entries = %d, want 2 pre-compaction", st.Entries)
	}

	for name, s := range map[string]*Store{"a": a, "b": b} {
		cs, err := s.Compact(context.Background())
		if err != nil {
			t.Fatalf("%s.Compact: %v", name, err)
		}
		files := diskFiles(t, dir)
		if st := s.Stats(); st.Entries != int64(len(files)) || st.Entries != 4 {
			t.Fatalf("%s post-compaction Entries = %d, files on disk = %d (want 4): %+v",
				name, st.Entries, len(files), st)
		}
		if cs.EntriesAfter != 4 {
			t.Fatalf("%s CompactStats: %+v", name, cs)
		}
	}
	// A's compaction dropped the corpse; B's found an empty quarantine.
	if q, _ := os.ReadDir(filepath.Join(dir, quarantineSub)); len(q) != 0 {
		t.Fatalf("quarantine not emptied: %d files", len(q))
	}
	// Every entry is readable through either handle after reconciliation.
	for _, k := range []string{"a1", "a2", "b0", "b1"} {
		if _, ok, _ := a.Get(context.Background(), "job", k); !ok {
			t.Fatalf("a lost %s", k)
		}
		if _, ok, _ := b.Get(context.Background(), "job", k); !ok {
			t.Fatalf("b lost %s", k)
		}
	}
	if st := a.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions counter: %+v", st)
	}
}

// TestCompactEvictsToBudget: a compaction on an over-budget store (the
// budget was exceeded by files another writer added) evicts down to it.
func TestCompactEvictsToBudget(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"v":"0123456789abcdef"}`)
	one := entrySize(t, "search", "k0", payload)
	budgeted := mustOpen(t, dir, Options{CacheEntries: -1, BudgetBytes: 2 * one})
	// A second, unbudgeted writer floods the directory.
	flooder := mustOpen(t, dir, Options{CacheEntries: -1})
	for i := 0; i < 5; i++ {
		if err := flooder.Put(context.Background(), "search", fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := budgeted.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := budgeted.Stats()
	if st.Bytes > 2*one || st.Entries != 2 || cs.Evicted != 3 {
		t.Fatalf("post-compaction: stats %+v, compact %+v", st, cs)
	}
	if files := diskFiles(t, dir); len(files) != 2 {
		t.Fatalf("%d files on disk, want 2", len(files))
	}
}

// TestCrashMidCompactionRecovery: every mutation a compaction makes is
// one atomic unlink (a quarantine corpse or an evicted entry), so any
// crash point leaves a disk state that is a prefix of those unlinks.
// This test constructs representative prefix states by hand and proves
// a budgeted Open recovers each to a valid, budget-respecting store.
func TestCrashMidCompactionRecovery(t *testing.T) {
	payload := []byte(`{"v":"0123456789abcdef"}`)
	one := entrySize(t, "search", "k0", payload)
	build := func(t *testing.T) string {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{CacheEntries: -1})
		for i := 0; i < 6; i++ {
			if err := s.Put(context.Background(), "search", fmt.Sprintf("k%d", i), payload); err != nil {
				t.Fatal(err)
			}
		}
		// Two quarantined corpses from successive corruptions of k5.
		for range 2 {
			p, _ := s.entryPath("search", "k5")
			if err := os.WriteFile(p, []byte("rot"), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := s.Get(context.Background(), "search", "k5"); ok {
				t.Fatal("rot served")
			}
			if err := s.Put(context.Background(), "search", "k5", payload); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}

	crashPoints := []struct {
		name  string
		crash func(t *testing.T, dir string)
	}{
		{"mid-quarantine-clear", func(t *testing.T, dir string) {
			// Compaction deleted one of the two corpses, then died.
			q, _ := os.ReadDir(filepath.Join(dir, quarantineSub))
			if len(q) != 2 {
				t.Fatalf("setup: quarantine has %d files", len(q))
			}
			if err := os.Remove(filepath.Join(dir, quarantineSub, q[0].Name())); err != nil {
				t.Fatal(err)
			}
		}},
		{"mid-eviction", func(t *testing.T, dir string) {
			// Quarantine cleared, then died after evicting two entries.
			q, _ := os.ReadDir(filepath.Join(dir, quarantineSub))
			for _, d := range q {
				if err := os.Remove(filepath.Join(dir, quarantineSub, d.Name())); err != nil {
					t.Fatal(err)
				}
			}
			files := diskFiles(t, dir)
			for _, f := range files[:2] {
				if err := os.Remove(f); err != nil {
					t.Fatal(err)
				}
			}
		}},
	}
	for _, cp := range crashPoints {
		t.Run(cp.name, func(t *testing.T) {
			dir := build(t)
			cp.crash(t, dir)
			s, err := Open(dir, Options{CacheEntries: -1, BudgetBytes: 3 * one})
			if err != nil {
				t.Fatalf("Open after crash: %v", err)
			}
			st := s.Stats()
			if st.Bytes > 3*one {
				t.Fatalf("recovered store over budget: %+v", st)
			}
			files := diskFiles(t, dir)
			if st.Entries != int64(len(files)) || st.Bytes != int64(len(files))*one {
				t.Fatalf("recovered stats %+v do not match %d files on disk", st, len(files))
			}
			// Every surviving file is a valid, servable entry.
			for _, f := range files {
				if _, _, ok := readEnvelope(f); !ok {
					t.Fatalf("invalid entry survived recovery: %s", f)
				}
			}
		})
	}
}

func TestParseSize(t *testing.T) {
	good := map[string]int64{
		"0":      0,
		"12345":  12345,
		"64K":    64 << 10,
		"64k":    64 << 10,
		"64KB":   64 << 10,
		"64KiB":  64 << 10,
		" 2M ":   2 << 20,
		"3G":     3 << 30,
		"1T":     1 << 40,
		"512MB":  512 << 20,
		"512mib": 512 << 20,
	}
	for in, want := range good {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "-1", "x", "64X", "M", "1.5G", "99999999999T"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) accepted", in)
		}
	}
}
