package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"rcons/internal/obs"
)

// maxPeerEnvelope bounds how much of a peer response a Get will read;
// entries in this repository are small JSON results, so anything
// approaching this is a misbehaving peer, not a result.
const maxPeerEnvelope = 8 << 20

// Peer is the HTTP read-through backend: it fetches entries from
// another replica's GET /v1/store/{kind}/{addr} route and (when used as
// the first tier of a diskless chain) pushes results to the matching
// PUT route. Every envelope received is re-verified — version, identity
// and payload checksum — before a byte of it is trusted, so a confused
// or corrupted peer degrades to misses, never to wrong results. A down
// or slow peer is an operational error the Chain (and the engine's
// persist path) treats as a miss: peer reads accelerate the fleet, they
// are never a correctness dependency.
type Peer struct {
	base   string
	client *http.Client

	hits      atomic.Int64
	misses    atomic.Int64
	errors    atomic.Int64
	puts      atomic.Int64
	putErrors atomic.Int64
	gets      atomic.Int64
	getNanos  atomic.Int64
}

// PeerStats reports one peer tier's cumulative behavior. GetSeconds is
// the summed wall-clock latency of all Gets (hits, misses and errors
// alike); GetSeconds/Gets is the mean peer fetch latency.
type PeerStats struct {
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Errors     int64   `json:"errors"`
	Puts       int64   `json:"puts"`
	PutErrors  int64   `json:"putErrors"`
	Gets       int64   `json:"gets"`
	GetSeconds float64 `json:"getSeconds"`
}

// NewPeer builds a peer backend for the replica at base (e.g.
// "http://replica-a:8372"). timeout bounds each fetch; ≤ 0 means 2s —
// a peer is only worth waiting for while it is faster than recomputing.
func NewPeer(base string, timeout time.Duration) (*Peer, error) {
	base = strings.TrimRight(strings.TrimSpace(base), "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("store: peer URL %q must start with http:// or https://", base)
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Peer{base: base, client: &http.Client{Timeout: timeout}}, nil
}

// Name returns the peer's base URL (the metrics label).
func (p *Peer) Name() string { return p.base }

func (p *Peer) entryURL(kind, address string) string {
	return p.base + "/v1/store/" + kind + "/" + address
}

// stampTrace forwards the context's trace ID (when one is present and
// wire-safe) on an outbound peer request, so the peer's access log and
// recorder join this request to the originating trace fleet-wide.
func stampTrace(ctx context.Context, req *http.Request) {
	if id := obs.TraceID(ctx); obs.ValidTraceID(id) {
		req.Header.Set(obs.TraceHeader, id)
	}
}

// Get fetches (kind, key) from the peer. 404 is a plain miss; any
// transport failure, unexpected status, oversized body or envelope that
// fails re-verification is an error (counted, and reported so chains
// and the engine can tally it) — but never a hit. The request is bound
// to ctx (cancellation on top of the client timeout), carries the
// context's trace ID as X-RC-Trace, and contributes a "store.peer"
// span tagged with the peer URL — the cross-process hop a fleet trace
// hinges on.
func (p *Peer) Get(ctx context.Context, kind, key string) ([]byte, bool, error) {
	if !validKind(kind) {
		return nil, false, fmt.Errorf("store: invalid kind %q (want lowercase [a-z0-9-])", kind)
	}
	_, span := obs.StartSpan(ctx, "store.peer")
	span.SetAttr("peer", p.base)
	defer span.End()
	start := time.Now()
	defer func() {
		p.gets.Add(1)
		p.getNanos.Add(time.Since(start).Nanoseconds())
	}()
	fail := func(err error) ([]byte, bool, error) {
		p.errors.Add(1)
		span.MarkError()
		return nil, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.entryURL(kind, addr(kind, key)), nil)
	if err != nil {
		return fail(fmt.Errorf("store: peer %s: %w", p.base, err))
	}
	stampTrace(ctx, req)
	resp, err := p.client.Do(req)
	if err != nil {
		return fail(fmt.Errorf("store: peer %s: %w", p.base, err))
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		p.misses.Add(1)
		span.SetAttr("hit", "false")
		return nil, false, nil
	default:
		return fail(fmt.Errorf("store: peer %s: unexpected status %d", p.base, resp.StatusCode))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEnvelope+1))
	if err != nil {
		return fail(fmt.Errorf("store: peer %s: read body: %w", p.base, err))
	}
	if len(data) > maxPeerEnvelope {
		return fail(fmt.Errorf("store: peer %s: envelope exceeds %d bytes", p.base, maxPeerEnvelope))
	}
	// Checksum re-verified on receipt: trust nothing a wire delivered.
	var env envelope
	if json.Unmarshal(data, &env) != nil || env.Version != Version ||
		env.Kind != kind || env.Key != key || env.Checksum != checksum(env.Payload) {
		return fail(fmt.Errorf("store: peer %s served a corrupt or mismatched envelope for %s", p.base, kind))
	}
	p.hits.Add(1)
	span.SetAttr("hit", "true")
	return append([]byte(nil), env.Payload...), true, nil
}

// Put ships (kind, key, payload) to the peer as a canonical envelope
// via PUT /v1/store/{kind}/{addr}. This is how a diskless worker (a
// chain with no local tier) contributes results back to the shared
// pool; the receiving replica re-verifies the envelope before storing.
func (p *Peer) Put(ctx context.Context, kind, key string, payload []byte) error {
	data, env, err := encodeEnvelope(kind, key, payload)
	if err != nil {
		return err
	}
	_, span := obs.StartSpan(ctx, "store.peer.put")
	span.SetAttr("peer", p.base)
	defer span.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.entryURL(kind, addr(env.Kind, env.Key)), bytes.NewReader(data))
	if err != nil {
		p.putErrors.Add(1)
		span.MarkError()
		return fmt.Errorf("store: peer %s: %w", p.base, err)
	}
	req.Header.Set("Content-Type", "application/json")
	stampTrace(ctx, req)
	resp, err := p.client.Do(req)
	if err != nil {
		p.putErrors.Add(1)
		span.MarkError()
		return fmt.Errorf("store: peer %s: %w", p.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		p.putErrors.Add(1)
		span.MarkError()
		return fmt.Errorf("store: peer %s: put rejected with status %d", p.base, resp.StatusCode)
	}
	p.puts.Add(1)
	return nil
}

// Stats returns a snapshot of the peer's counters.
func (p *Peer) Stats() PeerStats {
	return PeerStats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		Errors:     p.errors.Load(),
		Puts:       p.puts.Load(),
		PutErrors:  p.putErrors.Load(),
		Gets:       p.gets.Load(),
		GetSeconds: float64(p.getNanos.Load()) / float64(time.Second),
	}
}
